// Cross-backend parity + end-to-end throughput per engine backplane.
//
// Runs the same golden SystemConfig through all three backends of the
// experiment engine (sim, tcp-inprocess, multiprocess) for the two
// deterministic-routing policies (RR and BASE), asserts that every backend
// reports the identical pair set size and epsilon with zero decode
// failures and zero false pairs, and records wall-clock time per backend —
// the perf trajectory now tracks end-to-end runs over real sockets, not
// just the simulator's hot path.
//
// The parity contract needs deterministic routing (RR / BASE), full drain,
// and no backpressure feedback (max_backlog_s = 0 keeps the simulator's
// arrivals equal to the materialized schedule the socket backends ingest);
// the summary-driven policies route on message timing and are compared on
// epsilon by the figure benches instead.
//
// Flags:
//   --quick      smaller tuple count (CI smoke)
//   --check      exit 1 on any parity violation across backends
//   --out=PATH   JSON output path (default BENCH_backends.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dsjoin/core/experiment.hpp"
#include "dsjoin/core/system.hpp"
#include "dsjoin/runtime/engine.hpp"

namespace {

using namespace dsjoin;

struct Entry {
  std::string policy;
  std::string backend;
  bool clean = false;
  std::uint64_t reported_pairs = 0;
  std::uint64_t exact_pairs = 0;
  std::uint64_t false_pairs = 0;
  std::uint64_t decode_failures = 0;
  double epsilon = 0.0;
  std::uint64_t frames = 0;
  double wall_ms = 0.0;
  double results_per_second = 0.0;
};

core::SystemConfig golden_config(core::PolicyKind policy, bool quick) {
  core::SystemConfig config;
  config.nodes = 4;
  config.seed = 7;
  config.workload = "ZIPF";
  config.policy = policy;
  config.tuples_per_node = quick ? 120 : 300;
  config.arrivals_per_second = 50.0;
  config.join_half_width_s = 2.0;
  config.dft_window = 256;
  config.kappa = 32.0;
  config.summary_epoch_tuples = 64;
  // No backpressure feedback: the simulator's on-the-fly arrivals then
  // equal the materialized ArrivalSchedule bit for bit, so all backends
  // ingest the identical tuple sequence.
  config.max_backlog_s = 0.0;
  return config;
}

Entry run_one(core::PolicyKind policy, core::Backend backend, bool quick) {
  const auto config = golden_config(policy, quick);
  runtime::EngineOptions options;
  options.backend = backend;
  const auto start = std::chrono::steady_clock::now();
  const auto result = runtime::run_experiment(config, options);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Entry e;
  e.policy = core::to_string(policy);
  e.backend = core::to_string(backend);
  e.clean = result.clean;
  e.reported_pairs = result.reported_pairs;
  e.exact_pairs = result.exact_pairs;
  e.false_pairs = result.false_pairs;
  e.decode_failures = result.decode_failures;
  e.epsilon = result.epsilon;
  e.frames = result.traffic.total_frames();
  e.wall_ms = wall_s * 1e3;
  e.results_per_second =
      wall_s > 0.0 ? static_cast<double>(result.reported_pairs) / wall_s : 0.0;
  return e;
}

void write_json(const std::vector<Entry>& entries, const std::string& path) {
  std::ofstream out(path);
  // Every backend contributes rows; the per-row "backend" field names it.
  out << "{\n  \"meta\": " << bench::json_meta("all")
      << ",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "  {\"policy\": \"%s\", \"backend\": \"%s\", \"clean\": %s, "
        "\"reported_pairs\": %llu, \"exact_pairs\": %llu, "
        "\"epsilon\": %.6f, \"decode_failures\": %llu, \"frames\": %llu, "
        "\"wall_ms\": %.2f, \"results_per_second\": %.1f}%s\n",
        e.policy.c_str(), e.backend.c_str(), e.clean ? "true" : "false",
        static_cast<unsigned long long>(e.reported_pairs),
        static_cast<unsigned long long>(e.exact_pairs), e.epsilon,
        static_cast<unsigned long long>(e.decode_failures),
        static_cast<unsigned long long>(e.frames), e.wall_ms,
        e.results_per_second, i + 1 < entries.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string out_path = "BENCH_backends.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::fprintf(stderr,
                   "usage: bench_backend_parity [--quick] [--check] "
                   "[--out=PATH]\n");
      return 2;
    }
  }

  const core::Backend backends[] = {core::Backend::kSim,
                                    core::Backend::kTcpInprocess,
                                    core::Backend::kMultiprocess};
  std::puts(
      "Cross-backend parity: one golden config on every engine backplane.");
  std::printf("%-6s %-14s %6s %8s %8s %9s %8s %10s %12s\n", "policy",
              "backend", "clean", "pairs", "exact", "epsilon", "frames",
              "wall_ms", "results/s");

  std::vector<Entry> entries;
  bool violation = false;
  for (const auto policy :
       {core::PolicyKind::kRoundRobin, core::PolicyKind::kBase}) {
    const Entry* reference = nullptr;
    for (const auto backend : backends) {
      entries.push_back(run_one(policy, backend, quick));
      const Entry& e = entries.back();
      std::printf("%-6s %-14s %6s %8llu %8llu %9.4f %8llu %10.2f %12.1f\n",
                  e.policy.c_str(), e.backend.c_str(), e.clean ? "yes" : "NO",
                  static_cast<unsigned long long>(e.reported_pairs),
                  static_cast<unsigned long long>(e.exact_pairs), e.epsilon,
                  static_cast<unsigned long long>(e.frames), e.wall_ms,
                  e.results_per_second);
      if (!e.clean || e.decode_failures != 0 || e.false_pairs != 0) {
        violation = true;
      }
      if (reference == nullptr) {
        reference = &entries.back();
      } else if (e.reported_pairs != reference->reported_pairs ||
                 e.exact_pairs != reference->exact_pairs ||
                 e.epsilon != reference->epsilon) {
        violation = true;
      }
    }
  }
  write_json(entries, out_path);
  std::printf("\nwrote %s (%zu entries)\n", out_path.c_str(), entries.size());

  if (violation) {
    std::fprintf(stderr,
                 "%s: backends disagree on the golden config (or a run was "
                 "unclean / reported false pairs)\n",
                 check ? "FAIL" : "warning");
    if (check) return 1;
  }
  return 0;
}
