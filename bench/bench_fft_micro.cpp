// Microbenchmark of the FFT substrate itself (supporting Table 1): radix-2
// complex transform, Bluestein arbitrary-size transform, the packed real
// transform, and the per-tuple sliding-DFT update.
#include <benchmark/benchmark.h>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/dsp/fft.hpp"
#include "dsjoin/dsp/sliding_dft.hpp"

namespace {

using namespace dsjoin;

std::vector<dsp::Complex> complex_signal(std::size_t n) {
  common::Xoshiro256 rng(1);
  std::vector<dsp::Complex> out(n);
  for (auto& v : out) {
    v = dsp::Complex(rng.next_double_in(-1, 1), rng.next_double_in(-1, 1));
  }
  return out;
}

void BM_Radix2Complex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::Fft fft(n);
  auto signal = complex_signal(n);
  std::vector<dsp::Complex> scratch(n);
  for (auto _ : state) {
    std::copy(signal.begin(), signal.end(), scratch.begin());
    fft.forward(scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BluesteinArbitrary(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::Fft fft(n);
  auto signal = complex_signal(n);
  std::vector<dsp::Complex> scratch(n);
  for (auto _ : state) {
    std::copy(signal.begin(), signal.end(), scratch.begin());
    fft.forward(scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PackedReal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::Fft fft(n);
  common::Xoshiro256 rng(2);
  std::vector<double> signal(n);
  for (auto& v : signal) v = rng.next_double_in(-1000, 1000);
  for (auto _ : state) {
    auto spectrum = fft.forward_real(signal);
    benchmark::DoNotOptimize(spectrum.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SlidingDftPush(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  dsp::SlidingDft dft(1 << 16, k);
  common::Xoshiro256 rng(3);
  for (auto _ : state) {
    dft.push(rng.next_double_in(-1000, 1000));
    benchmark::DoNotOptimize(dft.coefficients().data());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("FFT substrate microbenchmark (supports Table 1's cost model).");
  for (std::int64_t n : {1 << 10, 1 << 14, 1 << 18}) {
    benchmark::RegisterBenchmark("fft/radix2_complex", BM_Radix2Complex)->Arg(n);
    benchmark::RegisterBenchmark("fft/packed_real", BM_PackedReal)->Arg(n);
  }
  for (std::int64_t n : {1000, 10007, 100003}) {  // non-powers (prime sizes)
    benchmark::RegisterBenchmark("fft/bluestein", BM_BluesteinArbitrary)->Arg(n);
  }
  for (std::int64_t k : {4, 64, 1024}) {
    benchmark::RegisterBenchmark("fft/sliding_dft_push", BM_SlidingDftPush)->Arg(k);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
