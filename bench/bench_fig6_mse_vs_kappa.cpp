// Figure 6: mean +/- one standard deviation of the reconstruction MSE as a
// function of the compression factor, with the E[MSE] < 0.25 lossless
// threshold line; plus the compression-factor recommendation the paper
// derives from it (kappa = 256 transmits W/256 coefficients yet reproduces
// ~80% of the attribute values exactly).
#include "bench_util.hpp"

#include "dsjoin/analysis/mse_model.hpp"
#include "dsjoin/common/stats.hpp"
#include "dsjoin/dsp/compression.hpp"
#include "dsjoin/stream/generator.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("Figure 6 reproduction: MSE vs compression factor");
  flags.add_int("window", 65536, "window size per trial");
  flags.add_int("trials", 8, "independent stock streams per kappa");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const auto window = static_cast<std::size_t>(flags.get_int("window"));
  const auto trials = static_cast<std::uint64_t>(flags.get_int("trials"));
  dsp::Fft fft(window);

  common::TablePrinter table(
      "Figure 6: MSE vs kappa (threshold E[MSE] < 0.25)",
      {"kappa", "mean_mse", "stddev", "mean+sd_below_0.25", "analytic_mse"});
  double recommended = 1.0;
  for (double kappa = 2.0; kappa <= 1024.0; kappa *= 2.0) {
    common::RunningStats stats;
    double analytic = 0.0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      const auto signal = stream::generate_stock_series(window, 100 + t);
      const auto approx = dsp::reconstruct(dsp::compress(signal, kappa, fft));
      stats.add(dsp::mean_squared_error(signal, approx));
      const auto spectrum = fft.forward_real(signal);
      analytic += analysis::predicted_mse(
          spectrum, dsp::retained_for_kappa(window, kappa));
    }
    analytic /= static_cast<double>(trials);
    const bool lossless = stats.mean() < 0.25;
    if (lossless) recommended = kappa;
    table.add(kappa, stats.mean(), stats.stddev(),
              (stats.mean() + stats.stddev()) < 0.25 ? "yes" : "no", analytic);
  }
  bench::emit(table);

  std::printf("Largest kappa with E[MSE] < 0.25 (measured): %g\n", recommended);
  const auto probe = stream::generate_stock_series(window, 100);
  std::printf("recommend_kappa() on one stream: %g\n",
              dsp::recommend_kappa(probe, 0.25, fft));
  std::puts("\nShape check (paper): the mean-MSE curve crosses the 0.25 line");
  std::puts("in the low hundreds of kappa (the paper settles on 256).");
  return 0;
}
