// Multi-query serving cost: ingest-side amortization of the shared
// summary substrate (DESIGN.md section 15).
//
// One experiment, Q registered queries cycling through the summary-driven
// policies with distinct throttles and window widths. The substrate
// ingests every tuple ONCE per summary *family*, however many queries
// subscribe to it — so the ingest-side maintenance cost (engine
// observe_local calls, reported by SummarySubstrate::ingest_ops) must grow
// with the family count (<= 4 here), not with Q. This bench sweeps
// Q in {1, 2, 4, 8, 16} on the simulator backplane, prints the per-query
// amortization, and writes BENCH_multiquery.json.
//
// Flags:
//   --quick      smaller tuple count (CI smoke)
//   --check      exit 1 when a run is unclean, a per-query epsilon leaves
//                [0, 1], per-query counters fail to sum to the aggregates,
//                or the Q=16 ingest cost is NOT sub-linear (>= 8x Q=1)
//   --out=PATH   JSON output path (default BENCH_multiquery.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace dsjoin;

struct Entry {
  std::size_t queries = 0;
  bool clean = false;
  std::uint64_t ingest_ops = 0;   // substrate engine observes, all nodes
  std::uint64_t total_arrivals = 0;
  std::uint64_t reported_pairs = 0;
  std::uint64_t exact_pairs = 0;
  std::uint64_t total_bytes = 0;
  double mean_epsilon = 0.0;
  double max_epsilon = 0.0;
  double wall_ms = 0.0;
  bool sums_match = false;  // per-query counters == aggregates
};

/// The mixed query set: cycle the summary-driven policies with distinct
/// budgets and windows so all four families stay live at Q >= 4.
std::vector<core::QuerySpec> mixed_queries(const core::SystemConfig& base,
                                           std::size_t count) {
  const core::PolicyKind kCycle[] = {
      core::PolicyKind::kDftt, core::PolicyKind::kSample,
      core::PolicyKind::kBloom, core::PolicyKind::kSketch};
  std::vector<core::QuerySpec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::QuerySpec spec;
    spec.id = static_cast<std::uint32_t>(i);
    spec.policy = kCycle[i % 4];
    spec.throttle = 0.3 + 0.1 * static_cast<double>(i % 5);
    spec.join_half_width_s =
        base.join_half_width_s * (0.5 + 0.25 * static_cast<double>(i % 4));
    specs.push_back(spec);
  }
  return specs;
}

Entry run_point(std::size_t query_count, std::uint64_t tuples) {
  auto config = bench::figure_config("ZIPF", 8, tuples);
  config.policy = core::PolicyKind::kDftt;
  config.queries = mixed_queries(config, query_count);
  bench::validate_or_die(config);

  const auto start = std::chrono::steady_clock::now();
  core::DspSystem system(config);
  const auto result = system.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Entry e;
  e.queries = query_count;
  e.clean = result.clean && result.decode_failures == 0;
  e.total_arrivals = result.total_arrivals;
  e.reported_pairs = result.reported_pairs;
  e.exact_pairs = result.exact_pairs;
  e.total_bytes = result.traffic.total_bytes();
  e.wall_ms = wall_s * 1e3;
  for (net::NodeId id = 0; id < config.nodes; ++id) {
    e.ingest_ops += system.node(id).substrate().ingest_ops();
  }
  std::uint64_t reported_sum = 0, exact_sum = 0;
  for (const auto& query : result.per_query) {
    e.mean_epsilon += query.epsilon;
    if (query.epsilon > e.max_epsilon) e.max_epsilon = query.epsilon;
    reported_sum += query.reported_pairs;
    exact_sum += query.exact_pairs;
  }
  if (!result.per_query.empty()) {
    e.mean_epsilon /= static_cast<double>(result.per_query.size());
  }
  e.sums_match = reported_sum == result.reported_pairs &&
                 exact_sum == result.exact_pairs;
  return e;
}

void write_json(const std::vector<Entry>& entries, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"meta\": " << bench::json_meta("sim") << ",\n";
  out << "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    char buf[384];
    std::snprintf(
        buf, sizeof buf,
        "    {\"queries\": %zu, \"clean\": %s, \"ingest_ops\": %llu, "
        "\"arrivals\": %llu, \"reported_pairs\": %llu, "
        "\"exact_pairs\": %llu, \"total_bytes\": %llu, "
        "\"mean_epsilon\": %.6f, \"max_epsilon\": %.6f, "
        "\"sums_match\": %s, \"wall_ms\": %.2f}%s\n",
        e.queries, e.clean ? "true" : "false",
        static_cast<unsigned long long>(e.ingest_ops),
        static_cast<unsigned long long>(e.total_arrivals),
        static_cast<unsigned long long>(e.reported_pairs),
        static_cast<unsigned long long>(e.exact_pairs),
        static_cast<unsigned long long>(e.total_bytes), e.mean_epsilon,
        e.max_epsilon, e.sums_match ? "true" : "false", e.wall_ms,
        i + 1 < entries.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string out_path = "BENCH_multiquery.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::fprintf(stderr,
                   "usage: bench_multiquery [--quick] [--check] [--out=PATH]\n");
      return 2;
    }
  }

  const std::uint64_t tuples = quick ? 200 : 600;
  const std::size_t counts[] = {1, 2, 4, 8, 16};

  std::puts("Multi-query serving: shared-substrate ingest amortization "
            "(ZIPF, N=8, mixed policies).");
  std::printf("%8s %6s %12s %14s %10s %10s %10s\n", "queries", "clean",
              "ingest_ops", "ops/query", "mean_eps", "max_eps", "wall_ms");

  std::vector<Entry> entries;
  for (const std::size_t count : counts) {
    entries.push_back(run_point(count, tuples));
    const Entry& e = entries.back();
    std::printf("%8zu %6s %12llu %14.1f %10.4f %10.4f %10.2f\n", e.queries,
                e.clean ? "yes" : "NO",
                static_cast<unsigned long long>(e.ingest_ops),
                static_cast<double>(e.ingest_ops) /
                    static_cast<double>(e.queries),
                e.mean_epsilon, e.max_epsilon, e.wall_ms);
  }
  write_json(entries, out_path);
  std::printf("\nwrote %s (%zu entries)\n", out_path.c_str(), entries.size());

  if (!check) return 0;
  bool violation = false;
  for (const Entry& e : entries) {
    if (!e.clean) {
      std::fprintf(stderr, "unclean run at %zu queries\n", e.queries);
      violation = true;
    }
    if (!e.sums_match) {
      std::fprintf(stderr,
                   "per-query pair counts do not sum to the aggregates at "
                   "%zu queries\n",
                   e.queries);
      violation = true;
    }
    if (e.mean_epsilon < 0.0 || e.max_epsilon > 1.0) {
      std::fprintf(stderr, "epsilon out of [0, 1] at %zu queries\n",
                   e.queries);
      violation = true;
    }
  }
  // The tentpole claim: ingest-side maintenance is shared across queries.
  // Four summary families serve all 16 queries, so the Q=16 ingest cost
  // must stay well under 16x the Q=1 cost (8x = half the naive slope).
  const Entry& one = entries.front();
  const Entry& sixteen = entries.back();
  if (sixteen.ingest_ops >= 8 * one.ingest_ops) {
    std::fprintf(stderr,
                 "ingest cost is not sub-linear in queries: Q=16 ops %llu "
                 ">= 8x Q=1 ops %llu\n",
                 static_cast<unsigned long long>(sixteen.ingest_ops),
                 static_cast<unsigned long long>(one.ingest_ops));
    violation = true;
  }
  if (violation) return 1;
  std::puts("check: all invariants hold");
  return 0;
}
