// Policy frontier: epsilon vs summary bytes vs CPU for every routing
// policy, on one grid (ZIPF, Figure 8/11 scale, simulator backplane so the
// in-run oracle prices epsilon exactly).
//
// Each approximate policy sweeps the throttle exponent (its budget knob
// T = (N-1)^throttle); SMPL additionally sweeps the reservoir capacity so
// the artifact exposes its accuracy-vs-summary-bytes trade independently
// of the flow budget. BASE runs once — it is the exact, full-budget corner
// of the frontier. Every row also records SMPL's oracle-free
// predicted_epsilon_bound so the artifact shows how tight (and how safe)
// the Horvitz-Thompson bound is against the measured epsilon.
//
// Flags:
//   --quick      smaller grid + tuple count (CI smoke)
//   --check      exit 1 when a run is unclean, a policy is missing, BASE
//                reports epsilon != 0, or the SMPL bound fails to cover the
//                measured epsilon on most SMPL rows
//   --out=PATH   JSON output path (default BENCH_frontier.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace dsjoin;

struct Entry {
  std::string policy;
  double throttle = 0.0;
  std::uint32_t sample_capacity = 0;  // 0 for non-SMPL rows
  bool clean = false;
  double epsilon = 0.0;
  double predicted_bound = -1.0;  // -1: policy has no error model
  std::uint64_t reported_pairs = 0;
  std::uint64_t exact_pairs = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t summary_bytes = 0;  // standalone summary frames + piggyback
  std::uint64_t total_bytes = 0;
  double wall_ms = 0.0;
  double ingest_per_second = 0.0;  // CPU-side cost proxy: tuples/s of wall
};

Entry run_point(core::PolicyKind policy, double throttle,
                std::uint32_t sample_capacity, std::uint64_t tuples) {
  auto config = bench::figure_config("ZIPF", 8, tuples);
  config.policy = policy;
  config.throttle = throttle;
  config.sample_capacity = sample_capacity;

  const auto start = std::chrono::steady_clock::now();
  const auto result = bench::run_with_backend(core::Backend::kSim, config);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Entry e;
  e.policy = core::to_string(policy);
  e.throttle = throttle;
  e.sample_capacity = sample_capacity;
  e.clean = result.clean;
  e.epsilon = result.epsilon;
  e.predicted_bound = result.predicted_epsilon_bound;
  e.reported_pairs = result.reported_pairs;
  e.exact_pairs = result.exact_pairs;
  e.decode_failures = result.decode_failures;
  e.summary_bytes = result.traffic.bytes(net::FrameKind::kSummary) +
                    result.traffic.piggyback_bytes;
  e.total_bytes = result.traffic.total_bytes();
  e.wall_ms = wall_s * 1e3;
  e.ingest_per_second = wall_s > 0.0
                            ? static_cast<double>(result.total_arrivals) / wall_s
                            : 0.0;
  return e;
}

void write_json(const std::vector<Entry>& entries, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"meta\": " << bench::json_meta("sim") << ",\n";
  out << "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"policy\": \"%s\", \"throttle\": %.2f, "
        "\"sample_capacity\": %u, \"clean\": %s, \"epsilon\": %.6f, "
        "\"predicted_bound\": %.6f, \"reported_pairs\": %llu, "
        "\"exact_pairs\": %llu, \"summary_bytes\": %llu, "
        "\"total_bytes\": %llu, \"wall_ms\": %.2f, "
        "\"ingest_per_second\": %.1f}%s\n",
        e.policy.c_str(), e.throttle, e.sample_capacity,
        e.clean ? "true" : "false", e.epsilon, e.predicted_bound,
        static_cast<unsigned long long>(e.reported_pairs),
        static_cast<unsigned long long>(e.exact_pairs),
        static_cast<unsigned long long>(e.summary_bytes),
        static_cast<unsigned long long>(e.total_bytes), e.wall_ms,
        e.ingest_per_second, i + 1 < entries.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string out_path = "BENCH_frontier.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::fprintf(stderr,
                   "usage: bench_policy_frontier [--quick] [--check] "
                   "[--out=PATH]\n");
      return 2;
    }
  }

  const std::uint64_t tuples = quick ? 250 : 1400;
  const std::vector<double> throttles =
      quick ? std::vector<double>{0.0, 0.5, 1.0}
            : std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<std::uint32_t> capacities =
      quick ? std::vector<std::uint32_t>{64, 512}
            : std::vector<std::uint32_t>{64, 256, 1024, 4096};

  std::puts("Policy frontier: epsilon vs summary bytes vs CPU (ZIPF, N=8).");
  std::printf("%-6s %9s %9s %6s %9s %9s %12s %12s %10s\n", "policy",
              "throttle", "capacity", "clean", "epsilon", "bound",
              "summary_B", "total_B", "wall_ms");

  std::vector<Entry> entries;
  auto run_and_print = [&](core::PolicyKind policy, double throttle,
                           std::uint32_t capacity) -> const Entry& {
    entries.push_back(run_point(policy, throttle, capacity, tuples));
    const Entry& e = entries.back();
    char bound[16];
    if (e.predicted_bound >= 0.0) {
      std::snprintf(bound, sizeof bound, "%9.4f", e.predicted_bound);
    } else {
      std::snprintf(bound, sizeof bound, "%9s", "-");
    }
    std::printf("%-6s %9.2f %9u %6s %9.4f %s %12llu %12llu %10.2f\n",
                e.policy.c_str(), e.throttle, e.sample_capacity,
                e.clean ? "yes" : "NO", e.epsilon, bound,
                static_cast<unsigned long long>(e.summary_bytes),
                static_cast<unsigned long long>(e.total_bytes), e.wall_ms);
    return e;
  };

  for (const auto policy : bench::evaluated_policies()) {
    if (policy == core::PolicyKind::kBase) {
      // BASE ignores the budget knobs: one run, the exact corner.
      run_and_print(policy, 0.0, 0);
      continue;
    }
    for (const double throttle : throttles) {
      run_and_print(policy, throttle, 0);
    }
    if (policy == core::PolicyKind::kSample) {
      // The reservoir size is SMPL's second budget axis; sweep it at the
      // midpoint throttle so the capacity effect is isolated.
      for (const auto capacity : capacities) {
        run_and_print(policy, 0.5, capacity);
      }
    }
  }
  write_json(entries, out_path);
  std::printf("\nwrote %s (%zu entries)\n", out_path.c_str(), entries.size());

  // --check invariants (CI smoke gate).
  bool violation = false;
  std::set<std::string> policies_seen;
  std::size_t smpl_rows = 0, smpl_covered = 0;
  for (const Entry& e : entries) {
    policies_seen.insert(e.policy);
    if (!e.clean || e.decode_failures != 0) {
      std::fprintf(stderr, "unclean run: %s throttle=%.2f\n", e.policy.c_str(),
                   e.throttle);
      violation = true;
    }
    if (e.policy == "BASE" && e.epsilon != 0.0) {
      std::fprintf(stderr, "BASE must be exact, got epsilon=%.6f\n", e.epsilon);
      violation = true;
    }
    if (e.policy == "SMPL") {
      ++smpl_rows;
      if (e.predicted_bound < 0.0 || e.predicted_bound > 1.0) {
        std::fprintf(stderr, "SMPL bound out of range: %.6f\n",
                     e.predicted_bound);
        violation = true;
      } else if (e.predicted_bound >= e.epsilon) {
        ++smpl_covered;
      }
    }
  }
  if (policies_seen.size() != bench::evaluated_policies().size()) {
    std::fprintf(stderr, "expected %zu policies, saw %zu\n",
                 bench::evaluated_policies().size(), policies_seen.size());
    violation = true;
  }
  // The bound is a 95% one-sided confidence statement; the dedicated test
  // pins the 95% coverage over seeded runs, this gate only rejects a
  // systematically broken bound (majority of rows uncovered).
  if (smpl_rows > 0 && smpl_covered * 2 < smpl_rows) {
    std::fprintf(stderr, "SMPL bound covered epsilon on %zu/%zu rows\n",
                 smpl_covered, smpl_rows);
    violation = true;
  }
  if (violation) {
    std::fprintf(stderr, "%s: frontier invariants violated\n",
                 check ? "FAIL" : "warning");
    if (check) return 1;
  }
  return 0;
}
