// Ablation A1: what does each component of the DFT flow filter contribute?
//
// The DESIGN.md notes two implementation-level choices on top of the
// paper's Eq. 4: (1) the lag-searched cross-correlation is combined with a
// DC-affinity term, and (2) DFTT adds reconstruction-based membership on
// top of the pairwise score. This ablation compares, at a fixed forwarding
// budget on the skewed workload:
//   RR    — no signal at all (uniform fallback),
//   DFT   — pairwise flow coefficients only,
//   SPEC  — pairwise histogram-DFT join-size estimates (deterministic
//           SKCH; ablation A3),
//   DFTT  — pairwise + per-key membership,
// and reports epsilon and traffic so the marginal value of each signal is
// visible.
#include "bench_util.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("Ablation: routing-signal contributions");
  flags.add_int("nodes", 8, "cluster size");
  flags.add_int("tuples", 1500, "tuples per node per side");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const auto nodes = static_cast<std::uint32_t>(flags.get_int("nodes"));
  const auto tuples = static_cast<std::uint64_t>(flags.get_int("tuples"));

  for (const std::string workload : {"ZIPF", "NWRK"}) {
    common::TablePrinter table(
        "Ablation A1 (" + workload + "): signal value at fixed budget",
        {"policy", "throttle", "epsilon", "tuple_frames", "msgs_per_result"});
    for (auto kind : {core::PolicyKind::kRoundRobin, core::PolicyKind::kDft,
                      core::PolicyKind::kSpectrum, core::PolicyKind::kDftt}) {
      for (double throttle : {0.3, 0.5, 0.7}) {
        auto config = bench::figure_config(workload, nodes, tuples);
        config.policy = kind;
        config.throttle = throttle;
        const auto result = core::run_experiment(config);
        table.add(core::to_string(kind), throttle, result.epsilon,
                  result.traffic.frames(net::FrameKind::kTuple),
                  result.messages_per_result);
      }
    }
    bench::emit(table);
  }

  std::puts("Reading: at equal budget, DFT's pairwise filter should cut");
  std::puts("epsilon versus blind round-robin, and DFTT's membership test");
  std::puts("should cut it further (or reach the same epsilon with fewer");
  std::puts("tuple frames).");
  return 0;
}
