// Figure 9: messages transmitted per result tuple, with epsilon fixed at
// 15%, under uniform (top) and Zipfian (bottom) data, for BASE / DFT /
// DFTT / BLOOM / SKCH across cluster sizes.
//
// The approximate policies are calibrated per (policy, N, workload) by
// bisecting the forwarding budget until measured epsilon lands in the 15%
// band; BASE runs as-is (epsilon 0) for reference.
#include "bench_util.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("Figure 9 reproduction: messages per result tuple");
  flags.add_int("tuples", 1200, "tuples per node per side");
  flags.add_double("target_eps", 0.15, "calibrated error rate");
  flags.add_int("bisections", 5, "calibration bisection steps");
  bench::add_workers_flag(flags);
  bench::add_backend_flag(flags);
  bench::add_coalesce_flags(flags);
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const auto backend = bench::parse_backend_flag(flags);
  const auto tuples = static_cast<std::uint64_t>(flags.get_int("tuples"));
  const double target = flags.get_double("target_eps");
  const int bisections = static_cast<int>(flags.get_int("bisections"));

  for (const std::string workload : {"UNI", "ZIPF"}) {
    common::TablePrinter table(
        "Figure 9 (" + workload + "): messages per result tuple at eps=" +
            std::to_string(target),
        {"nodes", "policy", "msgs_per_result", "epsilon", "throttle",
         "frames", "converged"});
    for (std::uint32_t n : {4u, 8u, 14u, 20u}) {
      for (auto kind : bench::evaluated_policies()) {
        auto config = bench::figure_config(workload, n, tuples);
        config.policy = kind;
        bench::apply_workers_flag(flags, config);
        bench::apply_coalesce_flags(flags, config);
        // Calibration always runs on the simulator (it needs the in-run
        // oracle); the operating point is then measured on the chosen
        // backplane — identical routing decisions, real sockets.
        const auto calibrated =
            core::calibrate_throttle(config, target, 0.02, bisections);
        auto result = calibrated.result;
        if (backend != core::Backend::kSim) {
          config.throttle = calibrated.throttle;
          result = bench::run_with_backend(backend, config);
        }
        table.add(n, core::to_string(kind), result.messages_per_result,
                  result.epsilon, calibrated.throttle,
                  result.traffic.total_frames(),
                  calibrated.converged ? "yes" : "no");
      }
    }
    bench::emit(table);
  }

  std::puts("Shape check (paper): under UNI all approximate algorithms");
  std::puts("behave similarly; under skew DFTT transmits the fewest messages");
  std::puts("per result (1.6-2x better than the competitors), BASE the most.");
  return 0;
}
