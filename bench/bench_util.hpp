// Shared helpers for the figure/table reproduction harnesses.
//
// Every bench prints (a) an aligned table mirroring the paper's figure and
// (b) a CSV block for plotting, then exits 0. Scales are laptop-sized; the
// reproduction target is the *shape* of each figure (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dsjoin/common/cli.hpp"
#include "dsjoin/common/simd.hpp"
#include "dsjoin/common/table.hpp"
#include "dsjoin/core/calibration.hpp"
#include "dsjoin/core/system.hpp"
#include "dsjoin/runtime/engine.hpp"

// Stamped into every BENCH_*.json by json_meta(); the build injects the
// real short hash via target_compile_definitions in bench/CMakeLists.txt.
#ifndef DSJOIN_GIT_HASH
#define DSJOIN_GIT_HASH "unknown"
#endif

namespace dsjoin::bench {

/// The algorithm set of Section 6, in the paper's presentation order,
/// plus the sampling-based SMPL policy (DESIGN.md section 14).
inline const std::vector<core::PolicyKind>& evaluated_policies() {
  static const std::vector<core::PolicyKind> kPolicies{
      core::PolicyKind::kDftt,   core::PolicyKind::kDft,
      core::PolicyKind::kBloom,  core::PolicyKind::kSketch,
      core::PolicyKind::kSample, core::PolicyKind::kBase};
  return kPolicies;
}

/// One-line run-provenance object for BENCH_*.json artifacts: which build,
/// which SIMD dispatch level, and which engine backplane produced the
/// numbers. Comparing two artifacts starts with comparing these.
inline std::string json_meta(const std::string& backend) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"git_hash\": \"%s\", \"simd\": \"%s\", \"backend\": \"%s\"}",
                DSJOIN_GIT_HASH,
                common::simd::level_name(common::simd::active_level()),
                backend.c_str());
  return buf;
}

/// Baseline experiment configuration shared by the system-level figures.
inline core::SystemConfig figure_config(const std::string& workload,
                                        std::uint32_t nodes,
                                        std::uint64_t tuples_per_node,
                                        std::uint64_t seed = 42) {
  core::SystemConfig config;
  config.workload = workload;
  config.nodes = nodes;
  config.regions = nodes <= 4 ? 2 : nodes / 3 + 1;
  config.tuples_per_node = tuples_per_node;
  config.seed = seed;
  if (workload == "UNI") {
    // The uniform worst case needs a denser key domain at laptop scale or
    // the exact join is too small to measure epsilon against.
    config.domain = 1 << 13;
  }
  return config;
}

/// Funnels a fully assembled config through the one validity gate
/// (core::validate_config) and exits with the violation message on
/// failure — every bench calls this after applying its flags, so the
/// accepted ranges live in exactly one place.
inline void validate_or_die(const core::SystemConfig& config) {
  const common::Status status = core::validate_config(config);
  if (!status.is_ok()) {
    std::fprintf(stderr, "error: %s\n", status.message().c_str());
    std::exit(1);
  }
}

/// Declares the shared `--queries` flag (multi-query serving).
inline void add_queries_flag(common::CliFlags& flags) {
  flags.add_string(
      "queries", "",
      "registered join queries, semicolon-separated POLICY[:throttle"
      "[:half_width_s]] specs (e.g. \"DFTT:0.5:10;SMPL:0.7:4\"); omitted "
      "fields inherit the base config; empty = single-query mode");
}

/// Applies `--queries`, rejecting syntax errors with the message from
/// core::parse_queries. Call after the base scalars are applied so
/// omitted per-query fields inherit the final values.
inline void apply_queries_flag(const common::CliFlags& flags,
                               core::SystemConfig& config) {
  const auto parsed = core::parse_queries(flags.get_string("queries"), config);
  if (!parsed) {
    std::fprintf(stderr, "error: %s\n", parsed.status().message().c_str());
    std::exit(1);
  }
  config.queries = parsed.value();
}

/// Declares the shared `--workers` flag (parallel simulator driver).
inline void add_workers_flag(common::CliFlags& flags) {
  flags.add_int("workers", 0,
                "execution strands for the simulator (0 = serial driver; "
                "k >= 1 is bit-identical to serial unless backpressure "
                "engages, see DESIGN.md section 6)");
}

/// Applies `--workers` to a config. A negative count would wrap to a huge
/// unsigned thread total and abort inside the pool, so reject it here.
inline void apply_workers_flag(const common::CliFlags& flags,
                               core::SystemConfig& config) {
  const std::int64_t workers = flags.get_int("workers");
  if (workers < 0 || workers > 4096) {
    std::fprintf(stderr, "error: --workers must be in [0, 4096], got %lld\n",
                 static_cast<long long>(workers));
    std::exit(1);
  }
  config.worker_threads = static_cast<std::uint32_t>(workers);
}

/// Declares the shared data-plane batching knobs (socket backends only;
/// the simulator models links, not sockets — see DESIGN.md section 11).
inline void add_coalesce_flags(common::CliFlags& flags) {
  flags.add_int("coalesce-frames", 32,
                "max logical frames per wire record on the socket backends "
                "(1 = one record per frame, i.e. coalescing off; max 65535)");
  flags.add_int("coalesce-bytes", 1 << 16,
                "payload-byte budget per coalesced wire record; a link "
                "buffer at or above this flushes immediately");
  flags.add_double("summary-sync-epoch", 0.25,
                   "visibility grid (seconds, virtual time) for stamped "
                   "summary exchange; summaries apply at the next grid "
                   "point after emit + min link latency on every backend "
                   "(DESIGN.md section 12)");
}

/// Applies the batching knobs. The accepted ranges live in
/// core::validate_config — out-of-range values are rejected there with
/// the same print-and-exit treatment a negative `--workers` gets.
inline void apply_coalesce_flags(const common::CliFlags& flags,
                                 core::SystemConfig& config) {
  config.coalesce_frames =
      static_cast<std::uint32_t>(flags.get_int("coalesce-frames"));
  config.coalesce_bytes =
      static_cast<std::uint32_t>(flags.get_int("coalesce-bytes"));
  config.summary_sync_epoch_s = flags.get_double("summary-sync-epoch");
  validate_or_die(config);
}

/// Declares the shared `--quant-bits` flag (quantized coefficient wire
/// format, DESIGN.md section 13).
inline void add_quant_flag(common::CliFlags& flags) {
  flags.add_int("quant-bits", 0,
                "preferred mantissa width for coefficient summaries: 0 = "
                "f64 (off), 8 or 16 = fixed-point with per-block scale and "
                "automatic escalation to the next width when the predicted "
                "reconstruction MSE would breach the Section 5.3 budget");
}

/// Applies `--quant-bits`; widths outside {0, 8, 16} are rejected by
/// core::validate_config.
inline void apply_quant_flag(const common::CliFlags& flags,
                             core::SystemConfig& config) {
  config.summary_quant_bits =
      static_cast<std::uint32_t>(flags.get_int("quant-bits"));
  validate_or_die(config);
}

/// Declares the shared sampling knobs (SMPL policy, DESIGN.md section 14).
inline void add_sample_flags(common::CliFlags& flags) {
  flags.add_int("sample-capacity", 0,
                "reservoir capacity per (node, side) for the SMPL policy "
                "(0 = derive from the summary byte budget; max 32768)");
  flags.add_int("sample-strata", 8,
                "hash strata per reservoir for the SMPL policy (1..4096)");
}

/// Applies the sampling knobs; the ranges are enforced once, in
/// core::validate_config (shared with deserialize_config).
inline void apply_sample_flags(const common::CliFlags& flags,
                               core::SystemConfig& config) {
  const std::int64_t capacity = flags.get_int("sample-capacity");
  const std::int64_t strata = flags.get_int("sample-strata");
  config.sample_capacity =
      capacity < 0 ? ~0u : static_cast<std::uint32_t>(capacity);
  config.sample_strata = strata < 0 ? 0 : static_cast<std::uint32_t>(strata);
  validate_or_die(config);
}

/// Declares the shared `--backend` flag (experiment engine backplane).
inline void add_backend_flag(common::CliFlags& flags) {
  flags.add_string(
      "backend", "sim",
      "execution backplane: sim | tcp-inprocess | multiprocess. sim is the "
      "deterministic WAN simulator (virtual time); the socket backends run "
      "the same experiment over real loopback TCP and measure wall-clock "
      "time (see DESIGN.md section 10)");
}

/// Parses `--backend`, rejecting unknown names cleanly (the same treatment
/// negative `--workers` gets): print the valid spellings and exit 1.
inline core::Backend parse_backend_flag(const common::CliFlags& flags) {
  const auto backend = core::backend_from_string(flags.get_string("backend"));
  if (!backend) {
    std::fprintf(stderr, "error: %s\n", backend.status().message().c_str());
    std::exit(1);
  }
  return backend.value();
}

/// Runs one experiment on the chosen backplane. Calibration always happens
/// on the simulator (it needs the in-run oracle and virtual time); this is
/// the measurement run a figure reports.
inline core::ExperimentResult run_with_backend(core::Backend backend,
                                               const core::SystemConfig& config) {
  runtime::EngineOptions options;
  options.backend = backend;
  return runtime::run_experiment(config, options);
}

/// Prints both renderings of a finished table.
inline void emit(common::TablePrinter& table) {
  table.print();
  table.print_csv();
  std::puts("");
}

}  // namespace dsjoin::bench
