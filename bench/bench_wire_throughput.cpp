// Data-plane batching payoff: tuple throughput of the in-process TCP
// backend with frame coalescing + batch ingest on vs the per-tuple
// baseline (coalesce_frames = 1: one wire record, one handler invocation
// and one ingest lock acquisition per tuple).
//
// The measured metric is end-to-end ingest throughput — total arrivals
// divided by wall-clock makespan (run start to drain complete) — at the
// Figure 11 experiment scale. The batched path must win by sharing length
// headers (one write(2) per record), amortizing the delivery lock across a
// whole decoded record, and slicing the arrival schedule into
// Node::on_local_batch calls.
//
// Flags:
//   --quick          smaller run (CI smoke)
//   --check          exit 1 if the batched path is slower than
//                    --min-speedup x baseline, or any run is unclean
//   --min-speedup=X  gate for --check (default 1.5; CI machines are noisy,
//                    the committed BENCH_wire.json records the full-scale
//                    ratio)
//   --out=PATH       JSON output path (default BENCH_wire.json)
//   --coalesce-frames / --coalesce-bytes   batched-mode budgets
#include "bench_util.hpp"

#include <chrono>
#include <fstream>

using namespace dsjoin;

namespace {

struct Entry {
  std::string mode;
  std::uint32_t coalesce_frames = 0;
  bool clean = false;
  std::uint64_t total_arrivals = 0;
  std::uint64_t frames = 0;
  std::uint64_t wire_records = 0;
  std::uint64_t header_bytes_saved = 0;
  double makespan_s = 0.0;
  double tuples_per_second = 0.0;
};

Entry run_mode(core::SystemConfig config, const std::string& mode) {
  const auto result =
      bench::run_with_backend(core::Backend::kTcpInprocess, config);
  Entry e;
  e.mode = mode;
  e.coalesce_frames = config.coalesce_frames;
  e.clean = result.clean;
  e.total_arrivals = result.total_arrivals;
  e.frames = result.traffic.total_frames();
  e.wire_records = result.traffic.wire_records;
  e.header_bytes_saved = result.traffic.header_bytes_saved;
  e.makespan_s = result.makespan_s;
  e.tuples_per_second = result.ingest_per_second;
  return e;
}

void write_json(const std::vector<Entry>& entries, double speedup,
                const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"meta\": " << bench::json_meta("tcp-inprocess")
      << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"mode\": \"%s\", \"coalesce_frames\": %u, \"clean\": %s, "
        "\"total_arrivals\": %llu, \"frames\": %llu, \"wire_records\": %llu, "
        "\"header_bytes_saved\": %llu, \"makespan_s\": %.4f, "
        "\"tuples_per_second\": %.1f}%s\n",
        e.mode.c_str(), e.coalesce_frames, e.clean ? "true" : "false",
        static_cast<unsigned long long>(e.total_arrivals),
        static_cast<unsigned long long>(e.frames),
        static_cast<unsigned long long>(e.wire_records),
        static_cast<unsigned long long>(e.header_bytes_saved), e.makespan_s,
        e.tuples_per_second, i + 1 < entries.size() ? "," : "");
    out << buf;
  }
  char tail[64];
  std::snprintf(tail, sizeof tail, "  ],\n  \"speedup\": %.2f\n}\n", speedup);
  out << tail;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags flags(
      "Socket data-plane throughput: coalesced wire records + batch ingest "
      "vs the per-tuple baseline (tcp-inprocess backend)");
  flags.add_bool("quick", false, "smaller run for CI smoke");
  flags.add_bool("check", false,
                 "exit 1 unless batched >= min-speedup x baseline");
  flags.add_double("min-speedup", 1.5, "gate for --check");
  flags.add_string("out", "BENCH_wire.json", "JSON output path");
  bench::add_coalesce_flags(flags);
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const bool quick = flags.get_bool("quick");
  const bool check = flags.get_bool("check");
  const double min_speedup = flags.get_double("min-speedup");

  // Figure 11's measurement scale (8 nodes, ZIPF), routed round-robin so
  // the data plane — not summary math — dominates; no backpressure and no
  // in-run oracle, so makespan is pure transport + node work.
  auto config = bench::figure_config("ZIPF", quick ? 4u : 8u,
                                     quick ? 300u : 1400u);
  config.policy = core::PolicyKind::kRoundRobin;
  config.max_backlog_s = 0.0;
  config.oracle_enabled = false;
  bench::apply_coalesce_flags(flags, config);

  auto baseline_config = config;
  baseline_config.coalesce_frames = 1;
  if (config.coalesce_frames <= 1) {
    std::fprintf(stderr,
                 "error: --coalesce-frames must be > 1 to compare against "
                 "the per-tuple baseline\n");
    return 1;
  }

  std::puts("Wire throughput: per-tuple baseline vs batched data plane.");
  std::printf("%-10s %8s %10s %10s %12s %12s %12s\n", "mode", "frames/rec",
              "arrivals", "records", "hdr_saved", "makespan_s", "tuples/s");
  std::vector<Entry> entries;
  for (int i = 0; i < 2; ++i) {
    const bool batched = i == 1;
    Entry e = run_mode(batched ? config : baseline_config,
                       batched ? "batched" : "per-tuple");
    std::printf("%-10s %8u %10llu %10llu %12llu %12.4f %12.1f\n",
                e.mode.c_str(), e.coalesce_frames,
                static_cast<unsigned long long>(e.total_arrivals),
                static_cast<unsigned long long>(e.wire_records),
                static_cast<unsigned long long>(e.header_bytes_saved),
                e.makespan_s, e.tuples_per_second);
    entries.push_back(std::move(e));
  }
  const double speedup = entries[0].tuples_per_second > 0.0
                             ? entries[1].tuples_per_second /
                                   entries[0].tuples_per_second
                             : 0.0;
  std::printf("\nbatched / per-tuple speedup: %.2fx\n", speedup);
  write_json(entries, speedup, flags.get_string("out"));
  std::printf("wrote %s\n", flags.get_string("out").c_str());

  const bool unclean = !entries[0].clean || !entries[1].clean;
  if (unclean || (check && speedup < min_speedup)) {
    std::fprintf(stderr, "%s: %s\n", check ? "FAIL" : "warning",
                 unclean ? "a run did not drain cleanly"
                         : "batched path below the speedup gate");
    if (check) return 1;
  }
  return 0;
}
