// Figure 11: throughput (result tuples reported per second) with epsilon
// fixed at 15%, across cluster sizes, on the shaped WAN (20-100 ms latency,
// 90 kbps per workstation, bounded send queues).
//
// Approximate policies are first calibrated to the target epsilon on a
// shorter run, then measured at that operating point; BASE runs as-is and
// collapses under its own O(N^2) traffic, exactly as in the paper.
#include "bench_util.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("Figure 11 reproduction: throughput at eps=15%");
  flags.add_int("tuples", 1400, "tuples per node per side (measurement run)");
  flags.add_int("calib_tuples", 800, "tuples per node per side (calibration)");
  flags.add_double("target_eps", 0.15, "calibrated error rate");
  bench::add_workers_flag(flags);
  bench::add_backend_flag(flags);
  bench::add_coalesce_flags(flags);
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const auto backend = bench::parse_backend_flag(flags);
  const auto tuples = static_cast<std::uint64_t>(flags.get_int("tuples"));
  const auto calib_tuples =
      static_cast<std::uint64_t>(flags.get_int("calib_tuples"));
  const double target = flags.get_double("target_eps");

  common::TablePrinter table(
      "Figure 11: results/second vs nodes (ZIPF, eps target 15%)",
      {"nodes", "policy", "results_per_s", "epsilon", "makespan_s",
       "ingest_per_s"});
  for (std::uint32_t n : {4u, 8u, 14u, 20u}) {
    for (auto kind : bench::evaluated_policies()) {
      auto config = bench::figure_config("ZIPF", n, tuples);
      config.policy = kind;
      bench::apply_workers_flag(flags, config);
      bench::apply_coalesce_flags(flags, config);
      if (kind != core::PolicyKind::kBase) {
        auto calib_config = config;
        calib_config.tuples_per_node = calib_tuples;
        const auto calibrated =
            core::calibrate_throttle(calib_config, target, 0.025, 4);
        config.throttle = calibrated.throttle;
      }
      const auto result = bench::run_with_backend(backend, config);
      table.add(n, core::to_string(kind), result.results_per_second,
                result.epsilon, result.makespan_s, result.ingest_per_second);
    }
  }
  bench::emit(table);

  std::puts("Shape check (paper): DFTT sustains the highest throughput (its");
  std::puts("messages contend least for the shaped links); BASE is crushed by");
  std::puts("its N-1 message complexity as the cluster grows.");
  return 0;
}
