// Figure 10(b): error rate as the cluster grows from 2 to 20 nodes, with
// the compression factor fixed at kappa = 256 and a fixed forwarding
// budget knob (the paper reports error growth at fixed resources).
#include "bench_util.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("Figure 10(b) reproduction: error vs cluster size");
  flags.add_int("tuples", 1200, "tuples per node per side");
  flags.add_double("throttle", 0.5, "fixed forwarding budget knob");
  bench::add_workers_flag(flags);
  bench::add_backend_flag(flags);
  bench::add_coalesce_flags(flags);
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const auto backend = bench::parse_backend_flag(flags);
  const auto tuples = static_cast<std::uint64_t>(flags.get_int("tuples"));

  common::TablePrinter table(
      "Figure 10(b): epsilon vs nodes (ZIPF, kappa=256)",
      {"nodes", "DFTT", "DFT", "BLOOM", "SKCH"});
  for (std::uint32_t n : {2u, 4u, 6u, 10u, 14u, 20u}) {
    std::vector<std::string> row;
    row.push_back(std::to_string(n));
    for (auto kind : {core::PolicyKind::kDftt, core::PolicyKind::kDft,
                      core::PolicyKind::kBloom, core::PolicyKind::kSketch}) {
      auto config = bench::figure_config("ZIPF", n, tuples);
      config.policy = kind;
      config.throttle = flags.get_double("throttle");
      bench::apply_workers_flag(flags, config);
      bench::apply_coalesce_flags(flags, config);
      const auto result = bench::run_with_backend(backend, config);
      row.push_back(common::str_format("%.4f", result.epsilon));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table);

  std::puts("Shape check (paper): all algorithms hold up to mid-size");
  std::puts("clusters; beyond that DFTT's error grows the slowest.");
  return 0;
}
