// Figure 3: analytic error bounds (a) and message complexity (b) under the
// uniform worst case, for per-node budgets T = 1 and T = log(N), versus the
// BASE broadcast (Theorems 1-2).
#include "bench_util.hpp"

#include "dsjoin/analysis/bounds.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("Figure 3 reproduction: uniform-distribution bounds");
  flags.add_int("max_nodes", 64, "largest cluster size in the sweep");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const auto max_nodes = static_cast<std::uint32_t>(flags.get_int("max_nodes"));

  common::TablePrinter error_table(
      "Figure 3(a): error bound vs nodes, uniform data",
      {"nodes", "epsilon_T1", "epsilon_TlogN"});
  common::TablePrinter message_table(
      "Figure 3(b): system messages per tuple, uniform data",
      {"nodes", "BASE(N-1)", "T=1", "T=log2(N)"});
  for (std::uint32_t n = 2; n <= max_nodes; n += (n < 8 ? 1 : (n < 24 ? 2 : 8))) {
    error_table.add(n, analysis::uniform_error_bound_t1(n),
                    analysis::uniform_error_bound_tlog(n));
    message_table.add(
        n, analysis::system_messages_per_tuple(n, analysis::budget_base(n)),
        analysis::system_messages_per_tuple(n, analysis::budget_t1()),
        analysis::system_messages_per_tuple(n, analysis::budget_tlog(n)));
  }
  bench::emit(error_table);
  bench::emit(message_table);

  std::puts("Shape check (paper): both error curves grow quickly toward 1;");
  std::puts("T=log(N) transmits several-fold fewer messages than BASE while");
  std::puts("keeping a strictly lower error bound than T=1.");
  return 0;
}
