// Figure 4: analytic error bounds under Zipfian data (alpha = 0.4) for
// message complexities O(1) and O(log N), up to 20 sites (Theorem 3).
//
// Both the formulae exactly as printed in the paper and the normalized
// Zipf-mass variant are emitted (see DESIGN.md §4 on the discrepancy).
#include "bench_util.hpp"

#include <cmath>

#include "dsjoin/analysis/bounds.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("Figure 4 reproduction: Zipfian error bounds");
  flags.add_double("alpha", 0.4, "Zipf skew parameter");
  flags.add_int("max_nodes", 20, "largest site count");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const double alpha = flags.get_double("alpha");
  const auto max_nodes = static_cast<std::uint32_t>(flags.get_int("max_nodes"));

  common::TablePrinter table(
      "Figure 4: Zipf error bounds (alpha = " + std::to_string(alpha) + ")",
      {"nodes", "O(1)_printed", "O(logN)_printed", "O(1)_normalized",
       "O(logN)_normalized"});
  for (std::uint32_t n = 2; n <= max_nodes; ++n) {
    table.add(n, analysis::zipf_error_bound_t1_printed(n, alpha),
              analysis::zipf_error_bound_tlog_printed(n, alpha),
              analysis::zipf_error_bound_normalized(n, alpha, 2.0),
              analysis::zipf_error_bound_normalized(
                  n, alpha, 1.0 + std::log2(static_cast<double>(n))));
  }
  bench::emit(table);

  std::puts("Shape check (paper): unlike the uniform case, the O(log N)");
  std::puts("bound *improves* as sites are added under skew.");
  return 0;
}
