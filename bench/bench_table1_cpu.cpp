// Table 1: CPU time to maintain DFTs, incremental DFTs and AGMS sketches.
//
// The paper reports seconds on a 400 MHz UltraSPARC for windows of
// 80k..1M tuples with updates applied per tuple over a long stream. We
// measure the same three maintenance strategies on this machine:
//   DFT  — recompute the full transform on every arriving tuple (the
//          non-incremental strawman; measured per-op via FFT cost),
//   iDFT — the sliding DFT's per-tuple incremental update,
//   AGMS — per-tuple sketch update at the matched summary budget.
// The reproduction target is the *ratio structure* (iDFT ~ AGMS << DFT,
// all growing roughly linearly in W), not 2007-era absolute seconds.
#include <benchmark/benchmark.h>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/dsp/fft.hpp"
#include "dsjoin/dsp/sliding_dft.hpp"
#include "dsjoin/sketch/agms.hpp"

namespace {

using namespace dsjoin;

constexpr double kKappa = 256.0;

std::vector<double> values(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.next_double_in(1.0, 1 << 19);
  return out;
}

// Full recompute per tuple: one FFT of the window per arriving value.
void BM_FullDftPerTuple(benchmark::State& state) {
  const auto w = static_cast<std::size_t>(state.range(0));
  dsp::Fft fft(w);
  auto signal = values(w, 1);
  std::vector<dsp::Complex> scratch(w);
  for (auto _ : state) {
    std::copy(signal.begin(), signal.end(), scratch.begin());
    fft.forward(scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations());
}

// Incremental update per tuple (K = W / kappa retained coefficients).
void BM_IncrementalDftPerTuple(benchmark::State& state) {
  const auto w = static_cast<std::size_t>(state.range(0));
  const auto k = std::max<std::size_t>(static_cast<std::size_t>(w / kKappa), 1);
  dsp::SlidingDft dft(w, k);
  const auto feed = values(w + 4096, 2);
  std::size_t i = 0;
  for (double v : feed) dft.push(v);  // warm the window
  for (auto _ : state) {
    dft.push(feed[i++ % feed.size()]);
    benchmark::DoNotOptimize(dft.coefficients().data());
  }
  state.SetItemsProcessed(state.iterations());
}

// AGMS update per tuple at the byte-equal budget (W/kappa complex coeffs ->
// 4x as many i32 counters).
void BM_AgmsPerTuple(benchmark::State& state) {
  const auto w = static_cast<std::size_t>(state.range(0));
  const auto budget_bytes = std::max<std::size_t>(
      static_cast<std::size_t>(w / kKappa) * 16, 16);
  sketch::AgmsSketch sketch(sketch::AgmsShape::for_budget(budget_bytes / 4), 3);
  common::Xoshiro256 rng(4);
  for (auto _ : state) {
    sketch.update(rng.next() % (1 << 19));
    benchmark::DoNotOptimize(sketch.counters().data());
  }
  state.SetItemsProcessed(state.iterations());
}

constexpr std::int64_t kWindows[] = {80'000, 250'000, 500'000, 1'000'000};

void register_all() {
  for (std::int64_t w : kWindows) {
    benchmark::RegisterBenchmark("Table1/DFT_recompute", BM_FullDftPerTuple)
        ->Arg(w)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("Table1/iDFT_update", BM_IncrementalDftPerTuple)
        ->Arg(w)
        ->Unit(benchmark::kNanosecond);
    benchmark::RegisterBenchmark("Table1/AGMS_update", BM_AgmsPerTuple)
        ->Arg(w)
        ->Unit(benchmark::kNanosecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("Table 1 reproduction: per-tuple maintenance cost of DFT (full");
  std::puts("recompute), incremental DFT, and AGMS sketches, kappa = 256.");
  std::puts("Paper (400 MHz UltraSPARC, seconds per 100M-tuple stream):");
  std::puts("  W=80k:  DFT 9    iDFT <1    AGMS <1");
  std::puts("  W=250k: DFT 34   iDFT 3.2   AGMS 2.1");
  std::puts("  W=500k: DFT 70   iDFT 7.4   AGMS 5.6");
  std::puts("  W=1M:   DFT 149  iDFT 18.1  AGMS 12.7");
  std::puts("Expected shape here: iDFT and AGMS within ~2x of each other,");
  std::puts("both orders of magnitude cheaper than full DFT recompute.\n");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
