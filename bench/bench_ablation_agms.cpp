// Ablation A2: classic AGMS vs Fast-AGMS.
//
// The paper's SKCH baseline uses classic AGMS sketches [1], whose update
// touches every counter; Cormode-Garofalakis' Fast-AGMS touches one bucket
// per row at equal space. This ablation measures both the update cost
// (google-benchmark) and the join-size estimation error at equal space —
// quantifying what the paper's 2005-era choice left on the table.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/common/zipf.hpp"
#include "dsjoin/sketch/agms.hpp"

namespace {

using namespace dsjoin;

void BM_ClassicAgmsUpdate(benchmark::State& state) {
  const auto counters = static_cast<std::size_t>(state.range(0));
  sketch::AgmsSketch sk(sketch::AgmsShape::for_budget(counters), 1);
  common::Xoshiro256 rng(2);
  for (auto _ : state) {
    sk.update(rng.next() % 100000);
    benchmark::DoNotOptimize(sk.counters().data());
  }
}

void BM_FastAgmsUpdate(benchmark::State& state) {
  const auto counters = static_cast<std::size_t>(state.range(0));
  // Same space: 5 rows, counters/5 buckets.
  sketch::FastAgmsSketch sk(5, static_cast<std::uint32_t>(counters / 5 + 1), 1);
  common::Xoshiro256 rng(2);
  for (auto _ : state) {
    sk.update(rng.next() % 100000);
    benchmark::DoNotOptimize(&sk);
  }
}

void accuracy_comparison() {
  std::puts("\nJoin-size estimation error at equal space (mean relative");
  std::puts("error over 12 seeds, Zipf(1.0) streams of 4000 tuples):");
  common::Xoshiro256 rng(5);
  common::ZipfDistribution zipf(200, 1.0);
  std::vector<std::uint64_t> fs, gs;
  std::map<std::uint64_t, std::int64_t> fm, gm;
  for (int i = 0; i < 4000; ++i) {
    const auto a = zipf(rng), b = zipf(rng);
    fs.push_back(a);
    gs.push_back(b);
    ++fm[a];
    ++gm[b];
  }
  double exact = 0.0;
  for (const auto& [key, count] : fm) {
    const auto it = gm.find(key);
    if (it != gm.end()) exact += static_cast<double>(count * it->second);
  }
  for (std::size_t counters : {50u, 200u, 800u}) {
    double classic_err = 0.0, fast_err = 0.0;
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
      sketch::AgmsSketch cf(sketch::AgmsShape::for_budget(counters), seed);
      sketch::AgmsSketch cg(sketch::AgmsShape::for_budget(counters), seed);
      sketch::FastAgmsSketch ff(5, static_cast<std::uint32_t>(counters / 5), seed);
      sketch::FastAgmsSketch fg(5, static_cast<std::uint32_t>(counters / 5), seed);
      for (auto v : fs) {
        cf.update(v);
        ff.update(v);
      }
      for (auto v : gs) {
        cg.update(v);
        fg.update(v);
      }
      classic_err +=
          std::abs(sketch::AgmsSketch::estimate_join(cf, cg) - exact) / exact;
      fast_err +=
          std::abs(sketch::FastAgmsSketch::estimate_join(ff, fg) - exact) / exact;
    }
    std::printf("  %4zu counters: classic %.3f   fast %.3f\n", counters,
                classic_err / 12, fast_err / 12);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("Ablation A2: classic AGMS (per-update cost O(s0*s1)) vs");
  std::puts("Fast-AGMS (O(rows)) at equal space.");
  for (std::int64_t counters : {50, 200, 800}) {
    benchmark::RegisterBenchmark("AblationA2/classic_update", BM_ClassicAgmsUpdate)
        ->Arg(counters);
    benchmark::RegisterBenchmark("AblationA2/fast_update", BM_FastAgmsUpdate)
        ->Arg(counters);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  accuracy_comparison();
  return 0;
}
