// Figure 5: absolute squared per-value errors when a stock stream of
// W ~ 80000 values is reconstructed from W/1024, W/256 and W/64 DFT
// coefficients.
//
// The paper plots the raw per-position squared errors; we report, per
// compression factor, the distribution summary of those squared errors plus
// the fraction below 0.25 (the lossless-after-rounding criterion) — the
// quantities the paper reads off the scatter plots ("when we use 1/256'th
// of the coefficients we introduce marginal loss", "80% of the MSEs are
// below 0.25").
#include "bench_util.hpp"

#include "dsjoin/common/stats.hpp"
#include "dsjoin/dsp/compression.hpp"
#include "dsjoin/stream/generator.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("Figure 5 reproduction: per-value reconstruction errors");
  flags.add_int("window", 65536, "stream length W (power of two)");
  flags.add_int("seed", 42, "stock stream seed");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const auto window = static_cast<std::size_t>(flags.get_int("window"));
  const auto signal = stream::generate_stock_series(
      window, static_cast<std::uint64_t>(flags.get_int("seed")));
  dsp::Fft fft(window);

  common::TablePrinter table(
      "Figure 5: squared reconstruction errors, stock stream W=" +
          std::to_string(window),
      {"kappa", "coeffs", "mean_sq_err", "median", "p90", "max",
       "frac_below_0.25"});
  for (double kappa : {1024.0, 256.0, 64.0}) {
    const auto compressed = dsp::compress(signal, kappa, fft);
    const auto approx = dsp::reconstruct(compressed);
    const auto errors = dsp::squared_errors(signal, approx);
    common::SampleSet samples;
    for (double e : errors) samples.add(e);
    table.add(kappa, compressed.coeffs.size(),
              dsp::mean_squared_error(signal, approx), samples.quantile(0.5),
              samples.quantile(0.9), samples.quantile(1.0),
              samples.fraction_below(0.25));
  }
  bench::emit(table);

  std::puts("Shape check (paper): W/1024 coefficients lose real information,");
  std::puts("W/256 is marginal (most squared errors below 0.25), and W/64 is");
  std::puts("comfortably lossless after rounding.");
  return 0;
}
