// Scalar vs. batch vs. SIMD ingestion cost for every hot-path operator
// (sliding DFT, AGMS / Fast-AGMS sketches, counting Bloom filter, window
// stores).
//
// Each operator runs the same value/key stream through three paths:
//   scalar  the tuple-at-a-time reference path
//   batch   the batch API with the simd:: kernels forced to their scalar
//           level — i.e. the PR-2 batch path, kept comparable across PRs
//   simd    the batch API at the best kernel level the host dispatches
//           (avx512 / avx2 / neon; identical bits by construction)
// and reports ns per item plus the scalar/batch and batch/simd speedups.
// Results go to stdout as an aligned table and to BENCH_hotpath.json (one
// entry per operator per config) so later PRs have a machine-readable perf
// trajectory. Operators without dedicated kernels (counting_bloom,
// count_window, tuple_store insert+evict) run the same code in both batch
// and simd columns; the tuple_store probe rows dispatch the §16 match-scan
// kernels.
//
// Flags:
//   --quick      fewer configs, shorter timing windows (CI smoke)
//   --check      exit 1 if any operator's batch path is >10% slower than
//                scalar, or a kernel-backed operator's simd path is >10%
//                slower than batch (regression guard, not an absolute-speed
//                gate; operators without kernels time identical code in
//                both columns, so their simd ratio is noise and is not
//                gated — and the probe rows' scalar-vs-batch ratio is
//                likewise ungated, see Entry::gate_batch)
//   --out=PATH   JSON output path (default BENCH_hotpath.json)
#include <algorithm>
#include <chrono>

#include "bench_util.hpp"
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/common/simd.hpp"
#include "dsjoin/dsp/sliding_dft.hpp"
#include "dsjoin/sketch/agms.hpp"
#include "dsjoin/sketch/bloom.hpp"
#include "dsjoin/stream/tuple.hpp"
#include "dsjoin/stream/window.hpp"

namespace {

using namespace dsjoin;

// Matches SystemConfig::summary_epoch_tuples — the batch size the simulator
// driver actually forms between summary refreshes.
constexpr std::size_t kBatchSize = 256;

struct Entry {
  std::string op;      // operator name
  std::string config;  // human-readable config, e.g. "W=2048 K=32"
  double scalar_ns = 0.0;
  double batch_ns = 0.0;  // batch API, kernels forced scalar (PR-2 path)
  double simd_ns = 0.0;   // batch API at the dispatched kernel level
  // Whether the operator has a dedicated simd:: kernel. When false the
  // batch and simd columns time identical code (counting Bloom stays on
  // the per-key path at every level — it is touch-bound, DESIGN.md §13),
  // so their ratio is pure measurement noise and --check must not gate it.
  bool has_kernel = false;
  // Whether the scalar-vs-batch ratio is meaningful. The tuple_store probe
  // rows set this false: their batch column (batched API, kernels forced
  // scalar) does the same per-probe work as the scalar point loop, so the
  // ratio hovers around 1.0 and --check gates only the kernel ratio there.
  bool gate_batch = true;
  std::size_t batch_size = kBatchSize;

  double speedup() const { return batch_ns > 0.0 ? scalar_ns / batch_ns : 0.0; }
  double simd_speedup() const { return simd_ns > 0.0 ? batch_ns / simd_ns : 0.0; }
};

/// Runs fn() (which processes `items` items per call) repeatedly for at
/// least `min_time_s`, three repetitions, and returns the best ns/item.
template <typename F>
double measure_ns_per_item(std::size_t items, double min_time_s, F&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    std::size_t calls = 0;
    const auto start = clock::now();
    double elapsed = 0.0;
    do {
      fn();
      ++calls;
      elapsed = std::chrono::duration<double>(clock::now() - start).count();
    } while (elapsed < min_time_s);
    const double ns =
        elapsed * 1e9 / (static_cast<double>(calls) * static_cast<double>(items));
    best = std::min(best, ns);
  }
  return best;
}

/// Measures one batch-path lambda twice: once with the kernels forced to
/// scalar (the `batch` column) and once at the default dispatched level
/// (the `simd` column). `make_fresh` re-creates operator state between the
/// two so neither measurement runs on the other's warmed allocations.
template <typename MakeFresh, typename Run>
void measure_batch_and_simd(Entry& e, std::size_t items, double min_time_s,
                            MakeFresh&& make_fresh, Run&& run) {
  make_fresh();
  common::simd::force_level(common::simd::Level::kScalar);
  e.batch_ns = measure_ns_per_item(items, min_time_s, run);
  common::simd::reset_level();
  make_fresh();
  e.simd_ns = measure_ns_per_item(items, min_time_s, run);
}

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.next_double_in(-1000.0, 1000.0);
  return out;
}

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng.next() % 100000;
  return out;
}

std::vector<stream::Tuple> random_tuples(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<stream::Tuple> out(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i].id = i + 1;
    out[i].key = static_cast<std::int64_t>(rng.next() % 100000);
    ts += 0.001;
    out[i].timestamp = ts;
    out[i].origin = 0;
    out[i].side = stream::StreamSide::kR;
  }
  return out;
}

Entry bench_sliding_dft(std::size_t window, std::size_t retained,
                        double min_time_s) {
  Entry e;
  e.op = "sliding_dft";
  e.has_kernel = true;
  e.config = "W=" + std::to_string(window) + " K=" + std::to_string(retained);
  const auto values = random_values(4 * kBatchSize, 11);

  dsp::SlidingDft scalar(window, retained);
  e.scalar_ns = measure_ns_per_item(values.size(), min_time_s, [&] {
    for (double v : values) scalar.push(v);
  });

  std::optional<dsp::SlidingDft> batch;
  measure_batch_and_simd(
      e, values.size(), min_time_s, [&] { batch.emplace(window, retained); },
      [&] {
        for (std::size_t base = 0; base < values.size(); base += kBatchSize) {
          batch->push_batch(
              std::span<const double>(values).subspan(base, kBatchSize));
        }
      });
  return e;
}

Entry bench_agms(std::size_t budget_counters, double min_time_s) {
  Entry e;
  const auto shape = sketch::AgmsShape::for_budget(budget_counters);
  e.op = "agms";
  e.has_kernel = true;
  e.config = "s0=" + std::to_string(shape.s0) + " s1=" + std::to_string(shape.s1);
  const auto keys = random_keys(4 * kBatchSize, 12);

  sketch::AgmsSketch scalar(shape, 42);
  e.scalar_ns = measure_ns_per_item(keys.size(), min_time_s, [&] {
    for (std::uint64_t k : keys) scalar.update(k, +1);
  });

  std::optional<sketch::AgmsSketch> batch;
  measure_batch_and_simd(
      e, keys.size(), min_time_s, [&] { batch.emplace(shape, 42); },
      [&] {
        for (std::size_t base = 0; base < keys.size(); base += kBatchSize) {
          batch->update_batch(
              std::span<const std::uint64_t>(keys).subspan(base, kBatchSize), +1);
        }
      });
  return e;
}

Entry bench_fast_agms(std::uint32_t rows, std::uint32_t buckets,
                      double min_time_s) {
  Entry e;
  e.op = "fast_agms";
  e.has_kernel = true;
  e.config =
      "rows=" + std::to_string(rows) + " buckets=" + std::to_string(buckets);
  const auto keys = random_keys(4 * kBatchSize, 13);

  sketch::FastAgmsSketch scalar(rows, buckets, 42);
  e.scalar_ns = measure_ns_per_item(keys.size(), min_time_s, [&] {
    for (std::uint64_t k : keys) scalar.update(k, +1);
  });

  std::optional<sketch::FastAgmsSketch> batch;
  measure_batch_and_simd(
      e, keys.size(), min_time_s, [&] { batch.emplace(rows, buckets, 42); },
      [&] {
        for (std::size_t base = 0; base < keys.size(); base += kBatchSize) {
          batch->update_batch(
              std::span<const std::uint64_t>(keys).subspan(base, kBatchSize), +1);
        }
      });
  return e;
}

Entry bench_counting_bloom(std::size_t counters, std::size_t expected_keys,
                           double min_time_s) {
  Entry e;
  const auto hashes = sketch::optimal_hash_count(counters, expected_keys);
  e.op = "counting_bloom";
  e.config = "m=" + std::to_string(counters) + " k=" + std::to_string(hashes);
  const auto keys = random_keys(4 * kBatchSize, 14);

  // Insert + erase of the same keys per round keeps counter state bounded,
  // so both paths measure the steady-state branch pattern.
  sketch::CountingBloomFilter scalar(counters, hashes, 42);
  e.scalar_ns = measure_ns_per_item(2 * keys.size(), min_time_s, [&] {
    for (std::uint64_t k : keys) scalar.insert(k);
    for (std::uint64_t k : keys) scalar.erase(k);
  });

  std::optional<sketch::CountingBloomFilter> batch;
  measure_batch_and_simd(
      e, 2 * keys.size(), min_time_s,
      [&] { batch.emplace(counters, hashes, 42); },
      [&] {
        for (std::size_t base = 0; base < keys.size(); base += kBatchSize) {
          batch->insert_batch(
              std::span<const std::uint64_t>(keys).subspan(base, kBatchSize));
        }
        for (std::size_t base = 0; base < keys.size(); base += kBatchSize) {
          batch->erase_batch(
              std::span<const std::uint64_t>(keys).subspan(base, kBatchSize));
        }
      });
  return e;
}

Entry bench_count_window(std::size_t capacity, double min_time_s) {
  Entry e;
  e.op = "count_window";
  e.config = "W=" + std::to_string(capacity);
  const auto tuples = random_tuples(4 * kBatchSize, 15);

  stream::CountWindow scalar(capacity);
  e.scalar_ns = measure_ns_per_item(tuples.size(), min_time_s, [&] {
    for (const auto& t : tuples) (void)scalar.insert(t);
  });

  std::optional<stream::CountWindow> batch;
  std::vector<stream::Tuple> evicted;
  measure_batch_and_simd(
      e, tuples.size(), min_time_s, [&] { batch.emplace(capacity); },
      [&] {
        for (std::size_t base = 0; base < tuples.size(); base += kBatchSize) {
          evicted.clear();
          batch->insert_batch(
              std::span<const stream::Tuple>(tuples).subspan(base, kBatchSize),
              evicted);
        }
      });
  return e;
}

Entry bench_tuple_store(double min_time_s) {
  Entry e;
  e.op = "tuple_store";
  e.config = "insert+evict";
  const auto tuples = random_tuples(4 * kBatchSize, 16);
  const double horizon = tuples.back().timestamp + 1.0;

  stream::TupleStore scalar;
  e.scalar_ns = measure_ns_per_item(tuples.size(), min_time_s, [&] {
    for (const auto& t : tuples) scalar.insert(t);
    scalar.evict_before(horizon);
  });

  std::optional<stream::TupleStore> batch;
  measure_batch_and_simd(
      e, tuples.size(), min_time_s, [&] { batch.emplace(); },
      [&] {
        batch->insert_batch(tuples);
        batch->evict_before(horizon);
      });
  return e;
}

// Fig. 11 scale: a retention window's worth of stored tuples (Zipf-ish key
// reuse via `% 512`) probed by an arrival slice. The scalar column is the
// point probe with kernels forced scalar (the pre-§16 reference path); the
// batch column is the batched probe API still forced scalar; the simd
// column dispatches the match-scan kernels.
Entry bench_tuple_store_probe(double min_time_s) {
  Entry e;
  e.op = "tuple_store";
  e.config = "probe count";
  e.has_kernel = true;
  e.gate_batch = false;

  common::Xoshiro256 rng(17);
  std::vector<stream::Tuple> stored(4096);
  double ts = 0.0;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    stored[i].id = i + 1;
    stored[i].key = static_cast<std::int64_t>(rng.next() % 512);
    ts += 0.001;
    stored[i].timestamp = ts;
    stored[i].origin = 0;
    stored[i].side = stream::StreamSide::kR;
  }
  std::vector<stream::Tuple> probes(4 * kBatchSize);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    probes[i].id = 100000 + i;
    probes[i].key = static_cast<std::int64_t>(rng.next() % 512);
    probes[i].timestamp = rng.next_double_in(0.0, ts);
    probes[i].side = stream::StreamSide::kS;
  }
  const double half_width = 0.5;

  stream::TupleStore store;
  store.insert_batch(stored);

  volatile std::uint64_t sink = 0;
  common::simd::force_level(common::simd::Level::kScalar);
  e.scalar_ns = measure_ns_per_item(probes.size(), min_time_s, [&] {
    std::uint64_t total = 0;
    for (const auto& p : probes) {
      total += store.count_matches(p.key, p.timestamp, half_width);
    }
    sink = sink + total;
  });
  common::simd::reset_level();

  std::vector<std::uint64_t> counts(probes.size());
  measure_batch_and_simd(
      e, probes.size(), min_time_s, [] {},
      [&] {
        for (std::size_t base = 0; base < probes.size(); base += kBatchSize) {
          store.count_matches_batch(
              std::span<const stream::Tuple>(probes).subspan(base, kBatchSize),
              half_width, counts.data() + base);
        }
        sink = sink + counts[0];
      });
  return e;
}

// Same store and probe slice through the materializing path
// (for_each_match / for_each_match_batch), which is what the node's result
// shipping runs on.
Entry bench_tuple_store_collect(double min_time_s) {
  Entry e;
  e.op = "tuple_store";
  e.config = "probe collect";
  e.has_kernel = true;
  e.gate_batch = false;

  common::Xoshiro256 rng(18);
  std::vector<stream::Tuple> stored(4096);
  double ts = 0.0;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    stored[i].id = i + 1;
    stored[i].key = static_cast<std::int64_t>(rng.next() % 512);
    ts += 0.001;
    stored[i].timestamp = ts;
    stored[i].origin = 0;
    stored[i].side = stream::StreamSide::kR;
  }
  std::vector<stream::Tuple> probes(4 * kBatchSize);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    probes[i].id = 100000 + i;
    probes[i].key = static_cast<std::int64_t>(rng.next() % 512);
    probes[i].timestamp = rng.next_double_in(0.0, ts);
    probes[i].side = stream::StreamSide::kS;
  }
  const double half_width = 0.5;

  stream::TupleStore store;
  store.insert_batch(stored);

  volatile std::uint64_t sink = 0;
  common::simd::force_level(common::simd::Level::kScalar);
  e.scalar_ns = measure_ns_per_item(probes.size(), min_time_s, [&] {
    std::uint64_t total = 0;
    for (const auto& p : probes) {
      store.for_each_match(p.key, p.timestamp, half_width,
                           [&](const stream::StoredTuple& m) { total += m.id; });
    }
    sink = sink + total;
  });
  common::simd::reset_level();

  measure_batch_and_simd(
      e, probes.size(), min_time_s, [] {},
      [&] {
        std::uint64_t total = 0;
        for (std::size_t base = 0; base < probes.size(); base += kBatchSize) {
          store.for_each_match_batch(
              std::span<const stream::Tuple>(probes).subspan(base, kBatchSize),
              half_width,
              [&](std::size_t, const stream::StoredTuple& m) { total += m.id; });
        }
        sink = sink + total;
      });
  return e;
}

void write_json(const std::vector<Entry>& entries, const std::string& path) {
  const char* level = common::simd::level_name(common::simd::detected_level());
  std::ofstream out(path);
  // Kernel micro-bench: no engine backplane behind these numbers.
  out << "{\n  \"meta\": " << bench::json_meta("none")
      << ",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "  {\"operator\": \"%s\", \"config\": \"%s\", "
                  "\"scalar_ns_per_item\": %.2f, \"batch_ns_per_item\": %.2f, "
                  "\"simd_ns_per_item\": %.2f, \"speedup\": %.3f, "
                  "\"simd_speedup\": %.3f, \"simd_level\": \"%s\", "
                  "\"has_kernel\": %s, \"gate_batch\": %s, "
                  "\"batch_size\": %zu}%s\n",
                  e.op.c_str(), e.config.c_str(), e.scalar_ns, e.batch_ns,
                  e.simd_ns, e.speedup(), e.simd_speedup(), level,
                  e.has_kernel ? "true" : "false",
                  e.gate_batch ? "true" : "false", e.batch_size,
                  i + 1 < entries.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::fprintf(stderr, "usage: bench_hotpath [--quick] [--check] [--out=PATH]\n");
      return 2;
    }
  }

  const double min_time_s = quick ? 0.05 : 0.2;
  std::printf(
      "Hot-path ingestion: scalar vs batch (kernels forced scalar) vs simd "
      "(dispatched level: %s).\n",
      common::simd::level_name(common::simd::detected_level()));
  std::vector<Entry> entries;

  if (quick) {
    entries.push_back(bench_sliding_dft(2048, 32, min_time_s));
    entries.push_back(bench_agms(80, min_time_s));
    entries.push_back(bench_fast_agms(5, 256, min_time_s));
    entries.push_back(bench_counting_bloom(16384, 2048, min_time_s));
    entries.push_back(bench_count_window(2048, min_time_s));
    entries.push_back(bench_tuple_store(min_time_s));
    entries.push_back(bench_tuple_store_probe(min_time_s));
    entries.push_back(bench_tuple_store_collect(min_time_s));
  } else {
    entries.push_back(bench_sliding_dft(2048, 8, min_time_s));
    entries.push_back(bench_sliding_dft(2048, 32, min_time_s));
    entries.push_back(bench_sliding_dft(2048, 128, min_time_s));
    entries.push_back(bench_sliding_dft(8192, 256, min_time_s));
    entries.push_back(bench_agms(20, min_time_s));
    entries.push_back(bench_agms(80, min_time_s));
    entries.push_back(bench_agms(320, min_time_s));
    entries.push_back(bench_fast_agms(5, 64, min_time_s));
    entries.push_back(bench_fast_agms(5, 256, min_time_s));
    entries.push_back(bench_fast_agms(7, 512, min_time_s));
    entries.push_back(bench_counting_bloom(16384, 2048, min_time_s));
    entries.push_back(bench_counting_bloom(65536, 2048, min_time_s));
    entries.push_back(bench_count_window(2048, min_time_s));
    entries.push_back(bench_count_window(8192, min_time_s));
    entries.push_back(bench_tuple_store(min_time_s));
    entries.push_back(bench_tuple_store_probe(min_time_s));
    entries.push_back(bench_tuple_store_collect(min_time_s));
  }

  std::printf("%-16s %-22s %12s %12s %12s %9s %9s\n", "operator", "config",
              "scalar ns/it", "batch ns/it", "simd ns/it", "speedup",
              "simd spd");
  bool regression = false;
  for (const Entry& e : entries) {
    std::printf("%-16s %-22s %12.2f %12.2f %12.2f %8.2fx %8.2fx\n",
                e.op.c_str(), e.config.c_str(), e.scalar_ns, e.batch_ns,
                e.simd_ns, e.speedup(), e.simd_speedup());
    if (e.gate_batch && e.speedup() < 0.9) regression = true;
    if (e.has_kernel && e.simd_speedup() < 0.9) regression = true;
  }
  write_json(entries, out_path);
  std::printf("\nwrote %s (%zu entries, batch size %zu)\n", out_path.c_str(),
              entries.size(), kBatchSize);

  if (check && regression) {
    std::fprintf(stderr,
                 "FAIL: batch path >10%% slower than scalar, or simd path "
                 ">10%% slower than batch, on at least one operator\n");
    return 1;
  }
  return 0;
}
