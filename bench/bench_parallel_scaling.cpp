// Parallel simulator scaling: serial vs epoch-parallel wall clock.
//
// Runs the same experiment twice per cluster size — worker_threads = 0 (the
// historical serial driver) and worker_threads = W — and reports wall-clock
// seconds and speedup. The parallel driver is bit-identical to serial (see
// DESIGN.md section 6), which the harness asserts on every row by comparing
// |Psi-hat| and total frames; any divergence aborts the bench.
//
// The oracle is disabled for these runs: it is inherently global/serial and
// at scaling-bench rates would dominate the serial fraction (Amdahl), hiding
// the driver's own scaling. Epsilon is therefore not reported here.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.hpp"

using namespace dsjoin;

namespace {

double run_timed(const core::SystemConfig& config, core::ExperimentResult* out) {
  const auto start = std::chrono::steady_clock::now();
  *out = core::run_experiment(config);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags flags("Parallel driver scaling: serial vs epoch-parallel");
  flags.add_int("tuples", 2500, "tuples per node per side");
  flags.add_int("workers", 8, "strands for the parallel runs");
  flags.add_double("rate", 120.0, "arrivals per second per node per side");
  flags.add_double("window", 30.0, "join half-width in seconds");
  flags.add_int("seed", 42, "experiment seed");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const auto tuples = static_cast<std::uint64_t>(flags.get_int("tuples"));
  if (flags.get_int("workers") < 1) {
    std::fprintf(stderr, "error: --workers must be >= 1, got %lld\n",
                 static_cast<long long>(flags.get_int("workers")));
    return 1;
  }
  const auto workers = static_cast<std::uint32_t>(flags.get_int("workers"));

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n", cores);
  if (cores < 2) {
    std::puts(
        "NOTE: single-hardware-thread host — wall-clock speedup cannot "
        "exceed ~1x here; the table below still verifies bit-identity and "
        "measures the epoch machinery's overhead.");
  }

  common::TablePrinter table(
      "Parallel scaling (DFTT, ZIPF, " + std::to_string(workers) +
          " strands, oracle off)",
      {"nodes", "serial_s", "parallel_s", "speedup", "pairs", "frames"});
  for (std::uint32_t n : {4u, 8u, 16u, 20u}) {
    auto config = bench::figure_config("ZIPF", n, tuples,
                                       static_cast<std::uint64_t>(
                                           flags.get_int("seed")));
    config.policy = core::PolicyKind::kDftt;
    config.arrivals_per_second = flags.get_double("rate");
    config.join_half_width_s = flags.get_double("window");
    config.oracle_enabled = false;
    // Pure-latency WAN: bandwidth shaping off keeps the run compute-bound
    // at these rates and keeps backpressure — the one documented
    // serial/parallel divergence caveat — from ever engaging (the identity
    // assertion below would catch it).
    config.wan.unlimited_bandwidth = true;

    core::ExperimentResult serial;
    config.worker_threads = 0;
    const double serial_s = run_timed(config, &serial);

    core::ExperimentResult parallel;
    config.worker_threads = workers;
    const double parallel_s = run_timed(config, &parallel);

    if (parallel.reported_pairs != serial.reported_pairs ||
        parallel.traffic.total_frames() != serial.traffic.total_frames()) {
      std::fprintf(stderr,
                   "FATAL: parallel run diverged from serial at N=%u "
                   "(pairs %llu vs %llu, frames %llu vs %llu)\n",
                   n,
                   static_cast<unsigned long long>(parallel.reported_pairs),
                   static_cast<unsigned long long>(serial.reported_pairs),
                   static_cast<unsigned long long>(
                       parallel.traffic.total_frames()),
                   static_cast<unsigned long long>(
                       serial.traffic.total_frames()));
      return 1;
    }
    table.add(n, serial_s, parallel_s, serial_s / parallel_s,
              serial.reported_pairs, serial.traffic.total_frames());
  }
  bench::emit(table);

  std::puts("Shape check: speedup grows with N (more independent strands per");
  std::puts("epoch); at N=16 with 8 strands the target is >= 2x over serial.");
  return 0;
}
