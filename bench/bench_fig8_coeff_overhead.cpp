// Figure 8: DFT coefficient updates as a percentage of the net data
// transmitted, kappa = 256, Zipfian workload, as the cluster grows.
//
// Coefficient deltas ride piggybacked on tuple frames (plus occasional
// standalone summary frames to silent peers); the ratio reported is
// (piggybacked summary bytes + standalone summary bytes) / total bytes.
//
// A second sweep compares the quantized coefficient wire format (wire v4,
// --quant-bits) against the f64 baseline at the same settings: end-to-end
// summary bytes, per-coefficient codec payload, and the epsilon drift the
// lossy encoding introduces. Results go to BENCH_quant.json.
#include <fstream>

#include "bench_util.hpp"
#include "dsjoin/core/summary_state.hpp"

using namespace dsjoin;

namespace {

/// Codec-level payload per coefficient delta at Figure 8 geometry: one
/// sub-block of `count` deltas, bytes divided by count (header amortized).
double codec_bytes_per_coeff(unsigned bits, std::size_t count) {
  std::vector<dsp::CoeffDelta> deltas;
  for (std::size_t k = 0; k < count; ++k) {
    deltas.push_back(dsp::CoeffDelta{
        static_cast<std::uint32_t>(k),
        dsp::Complex(1000.0 + static_cast<double>(k), -3.5)});
  }
  common::BufferWriter w;
  if (bits == 0) {
    core::summary_codec::encode_dft(w, stream::StreamSide::kR, 2048, 8, deltas);
  } else {
    std::vector<dsp::Complex> values;
    for (const auto& d : deltas) values.push_back(d.value);
    core::summary_codec::encode_dft_quant(w, stream::StreamSide::kR, 2048, 8,
                                          deltas, bits,
                                          dsp::quant_scale(values));
  }
  return static_cast<double>(std::move(w).take().size()) /
         static_cast<double>(count);
}

struct QuantCell {
  std::uint32_t nodes;
  std::uint32_t quant_bits;
  std::uint64_t summary_bytes;  ///< piggyback + standalone summary frames
  double summary_pct;
  double epsilon;
  std::uint64_t pairs;
};

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags flags("Figure 8 reproduction: summary byte overhead vs nodes");
  flags.add_int("tuples", 2000, "tuples per node per side");
  flags.add_double("throttle", 0.5, "forwarding budget knob");
  bench::add_workers_flag(flags);
  bench::add_backend_flag(flags);
  bench::add_coalesce_flags(flags);
  bench::add_quant_flag(flags);
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const auto backend = bench::parse_backend_flag(flags);

  common::TablePrinter table(
      "Figure 8: DFT coefficient bytes as % of net data (kappa=256, ZIPF)",
      {"nodes", "summary_pct", "piggyback_bytes", "summary_frames",
       "total_bytes"});
  for (std::uint32_t n : {2u, 4u, 6u, 8u, 12u, 16u, 20u}) {
    auto config = bench::figure_config(
        "ZIPF", n, static_cast<std::uint64_t>(flags.get_int("tuples")));
    config.policy = core::PolicyKind::kDft;
    config.throttle = flags.get_double("throttle");
    bench::apply_workers_flag(flags, config);
    bench::apply_coalesce_flags(flags, config);
    bench::apply_quant_flag(flags, config);
    const auto result = bench::run_with_backend(backend, config);
    table.add(n, 100.0 * result.summary_byte_fraction,
              result.traffic.piggyback_bytes,
              result.traffic.frames(net::FrameKind::kSummary),
              result.traffic.total_bytes());
  }
  bench::emit(table);

  std::puts("Shape check (paper): a small single-digit percentage (1.38-2.84%");
  std::puts("on their testbed) that does not grow with the cluster size.");

  // ---------------------------------------------------------------------
  // Quantized vs f64 coefficient encoding at the same Figure 8 settings.
  common::TablePrinter quant_table(
      "Quantized coefficient wire format vs f64 (DFT policy, ZIPF)",
      {"nodes", "quant_bits", "summary_bytes", "reduction", "epsilon",
       "pairs"});
  std::vector<QuantCell> cells;
  for (std::uint32_t n : {4u, 8u}) {
    std::uint64_t f64_bytes = 0;
    for (std::uint32_t bits : {0u, 16u, 8u}) {
      auto config = bench::figure_config(
          "ZIPF", n, static_cast<std::uint64_t>(flags.get_int("tuples")));
      config.policy = core::PolicyKind::kDft;
      config.throttle = flags.get_double("throttle");
      config.summary_quant_bits = bits;
      bench::apply_workers_flag(flags, config);
      const auto result = bench::run_with_backend(backend, config);
      const std::uint64_t summary_bytes =
          result.traffic.piggyback_bytes +
          result.traffic.bytes(net::FrameKind::kSummary);
      if (bits == 0) f64_bytes = summary_bytes;
      cells.push_back(QuantCell{n, bits, summary_bytes,
                                100.0 * result.summary_byte_fraction,
                                result.epsilon, result.reported_pairs});
      quant_table.add(n, bits, summary_bytes,
                      summary_bytes > 0 ? static_cast<double>(f64_bytes) /
                                              static_cast<double>(summary_bytes)
                                        : 0.0,
                      result.epsilon, result.reported_pairs);
    }
  }
  bench::emit(quant_table);

  std::puts("End-to-end summary bytes include per-frame stamps and per-block");
  std::puts("headers; the codec payload itself shrinks 20 -> 6 bytes per");
  std::puts("coefficient at int16 (3.33x) and 20 -> 4 at int8 (5x).");

  std::ofstream out("BENCH_quant.json");
  char buf[256];
  out << "{\n  \"meta\": " << bench::json_meta(core::to_string(backend))
      << ",\n";
  // Pure per-coefficient payload (index + components, no block header):
  // u32 + 2 f64 = 20 bytes at f64; u16 + 2 mantissas = 6 (int16) / 4 (int8).
  out << "  \"payload_bytes_per_coeff\": "
         "{\"f64\": 20, \"int16\": 6, \"int8\": 4},\n"
         "  \"payload_reduction\": {\"int16\": 3.33, \"int8\": 5.0},\n";
  // Header-amortized sub-block bytes per coefficient at a full K=8 flush
  // (the f64 scale and width byte dilute small blocks; see DESIGN.md §13).
  const double f64_coeff = codec_bytes_per_coeff(0, 8);
  std::snprintf(buf, sizeof buf,
                "  \"block_bytes_per_coeff_k8\": "
                "{\"f64\": %.2f, \"int16\": %.2f, \"int8\": %.2f},\n",
                f64_coeff, codec_bytes_per_coeff(16, 8),
                codec_bytes_per_coeff(8, 8));
  out << buf;
  std::snprintf(buf, sizeof buf,
                "  \"block_reduction_k8\": {\"int16\": %.2f, \"int8\": %.2f},\n",
                f64_coeff / codec_bytes_per_coeff(16, 8),
                f64_coeff / codec_bytes_per_coeff(8, 8));
  out << buf;
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"nodes\": %u, \"quant_bits\": %u, "
                  "\"summary_bytes\": %llu, \"summary_pct\": %.3f, "
                  "\"epsilon\": %.5f, \"pairs\": %llu}%s\n",
                  c.nodes, c.quant_bits,
                  static_cast<unsigned long long>(c.summary_bytes),
                  c.summary_pct, c.epsilon,
                  static_cast<unsigned long long>(c.pairs),
                  i + 1 < cells.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::puts("wrote BENCH_quant.json");
  return 0;
}
