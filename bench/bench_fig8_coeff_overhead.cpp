// Figure 8: DFT coefficient updates as a percentage of the net data
// transmitted, kappa = 256, Zipfian workload, as the cluster grows.
//
// Coefficient deltas ride piggybacked on tuple frames (plus occasional
// standalone summary frames to silent peers); the ratio reported is
// (piggybacked summary bytes + standalone summary bytes) / total bytes.
#include "bench_util.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("Figure 8 reproduction: summary byte overhead vs nodes");
  flags.add_int("tuples", 2000, "tuples per node per side");
  flags.add_double("throttle", 0.5, "forwarding budget knob");
  bench::add_workers_flag(flags);
  bench::add_backend_flag(flags);
  bench::add_coalesce_flags(flags);
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const auto backend = bench::parse_backend_flag(flags);

  common::TablePrinter table(
      "Figure 8: DFT coefficient bytes as % of net data (kappa=256, ZIPF)",
      {"nodes", "summary_pct", "piggyback_bytes", "summary_frames",
       "total_bytes"});
  for (std::uint32_t n : {2u, 4u, 6u, 8u, 12u, 16u, 20u}) {
    auto config = bench::figure_config(
        "ZIPF", n, static_cast<std::uint64_t>(flags.get_int("tuples")));
    config.policy = core::PolicyKind::kDft;
    config.throttle = flags.get_double("throttle");
    bench::apply_workers_flag(flags, config);
    bench::apply_coalesce_flags(flags, config);
    const auto result = bench::run_with_backend(backend, config);
    table.add(n, 100.0 * result.summary_byte_fraction,
              result.traffic.piggyback_bytes,
              result.traffic.frames(net::FrameKind::kSummary),
              result.traffic.total_bytes());
  }
  bench::emit(table);

  std::puts("Shape check (paper): a small single-digit percentage (1.38-2.84%");
  std::puts("on their testbed) that does not grow with the cluster size.");
  return 0;
}
