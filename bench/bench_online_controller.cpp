// Extension bench: online epsilon controller vs offline calibration.
//
// The paper evaluates at "epsilon fixed at 15%" without describing the
// mechanism; our reproduction calibrates offline (bisection over whole
// runs). This bench compares that oracle-calibrated operating point with
// the decentralized online controller (audit sampling + proportional
// control), which needs no offline phase: each node steers its own
// forwarding budget from live feedback.
#include "bench_util.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("Extension: online controller vs offline calibration");
  flags.add_int("nodes", 8, "cluster size");
  flags.add_int("tuples", 3000, "tuples per node per side");
  flags.add_double("target_eps", 0.15, "epsilon target");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const auto nodes = static_cast<std::uint32_t>(flags.get_int("nodes"));
  const auto tuples = static_cast<std::uint64_t>(flags.get_int("tuples"));
  const double target = flags.get_double("target_eps");

  common::TablePrinter table(
      "online controller vs offline calibration (DFTT, ZIPF)",
      {"mode", "epsilon", "tuple_frames", "total_frames", "offline_runs"});

  for (auto kind : {core::PolicyKind::kDftt, core::PolicyKind::kSketch}) {
    // Offline: bisect on full runs (what the figures do).
    auto config = bench::figure_config("ZIPF", nodes, tuples);
    config.policy = kind;
    const auto offline = core::calibrate_throttle(config, target, 0.02, 5);
    table.add(std::string(core::to_string(kind)) + "/offline",
              offline.result.epsilon,
              offline.result.traffic.frames(net::FrameKind::kTuple),
              offline.result.traffic.total_frames(), offline.runs);

    // Online: one run, controller active, from a deliberately bad start.
    for (double start : {0.1, 0.9}) {
      auto online_config = config;
      online_config.throttle = start;
      online_config.online_target_eps = target;
      const auto online = core::run_experiment(online_config);
      table.add(std::string(core::to_string(kind)) + "/online(start=" +
                    common::str_format("%.1f", start) + ")",
                online.epsilon,
                online.traffic.frames(net::FrameKind::kTuple),
                online.traffic.total_frames(), 1);
    }
  }
  bench::emit(table);

  std::puts("Reading: the online controller reaches a valid (conservative)");
  std::puts("operating point in a single run from either extreme, without");
  std::puts("the offline bisection's repeated full runs. Its audit estimate");
  std::puts("over-counts misses, so it lands at or below the target.");
  return 0;
}
