// Figure 10(a): error rate as a function of the compression factor kappa,
// with all algorithms granted byte-equal summaries (Section 6: summary
// sizes of Bloom filters, sketches and DFT coefficient sets are matched).
//
// The paper fixes W = 2^19 and sweeps kappa in [2, 1024]; at laptop scale
// we fix the (scaled) summary window and sweep kappa over the same range of
// *ratios* — the summary sizes span [W/kappa_max, W/2] values as in the
// paper.
#include "bench_util.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("Figure 10(a) reproduction: error vs compression factor");
  flags.add_int("nodes", 8, "cluster size");
  flags.add_int("tuples", 1500, "tuples per node per side");
  flags.add_double("throttle", 0.5, "fixed forwarding budget knob");
  bench::add_workers_flag(flags);
  bench::add_backend_flag(flags);
  bench::add_coalesce_flags(flags);
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  const auto backend = bench::parse_backend_flag(flags);
  const auto nodes = static_cast<std::uint32_t>(flags.get_int("nodes"));
  const auto tuples = static_cast<std::uint64_t>(flags.get_int("tuples"));

  common::TablePrinter table(
      "Figure 10(a): epsilon vs kappa (ZIPF, equal summary budgets)",
      {"kappa", "summary_bytes", "DFTT", "DFT", "BLOOM", "SKCH"});
  for (double kappa : {2.0, 8.0, 32.0, 128.0, 256.0, 512.0}) {
    std::vector<std::string> row;
    auto probe = bench::figure_config("ZIPF", nodes, tuples);
    probe.kappa = kappa;
    row.push_back(common::str_format("%g", kappa));
    row.push_back(std::to_string(probe.summary_budget_bytes()));
    for (auto kind : {core::PolicyKind::kDftt, core::PolicyKind::kDft,
                      core::PolicyKind::kBloom, core::PolicyKind::kSketch}) {
      auto config = probe;
      config.policy = kind;
      config.throttle = flags.get_double("throttle");
      bench::apply_workers_flag(flags, config);
      bench::apply_coalesce_flags(flags, config);
      const auto result = bench::run_with_backend(backend, config);
      row.push_back(common::str_format("%.4f", result.epsilon));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table);

  std::puts("Shape check (paper): DFTT degrades most gracefully as kappa");
  std::puts("grows (summaries shrink); BLOOM collapses first (its bit vector");
  std::puts("saturates); SKCH sits between.");
  return 0;
}
