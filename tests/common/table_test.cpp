#include "dsjoin/common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace dsjoin::common {
namespace {

std::string render(TablePrinter& table, bool csv) {
  std::FILE* tmp = std::tmpfile();
  if (csv) {
    table.print_csv(tmp);
  } else {
    table.print(tmp);
  }
  std::fseek(tmp, 0, SEEK_END);
  const long size = std::ftell(tmp);
  std::rewind(tmp);
  std::string out(static_cast<std::size_t>(size), '\0');
  EXPECT_EQ(std::fread(out.data(), 1, out.size(), tmp), out.size());
  std::fclose(tmp);
  return out;
}

TEST(TablePrinter, RendersTitleHeaderAndRows) {
  TablePrinter table("Figure X", {"n", "value"});
  table.add(1, 2.5);
  table.add(20, "text");
  const std::string out = render(table, false);
  EXPECT_NE(out.find("Figure X"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_NE(out.find("text"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter table("series", {"a", "b"});
  table.add(1, 2);
  table.add(3, 4);
  const std::string out = render(table, true);
  EXPECT_NE(out.find("# csv series"), std::string::npos);
  EXPECT_NE(out.find("a,b"), std::string::npos);
  EXPECT_NE(out.find("1,2"), std::string::npos);
  EXPECT_NE(out.find("3,4"), std::string::npos);
}

TEST(TablePrinter, CsvEscapesSpecialCharacters) {
  TablePrinter table("esc", {"col"});
  table.add_row({"a,b"});
  table.add_row({"quote\"inside"});
  const std::string out = render(table, true);
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TablePrinter, IntegerFormatting) {
  TablePrinter table("ints", {"signed", "unsigned"});
  table.add(-5, std::uint64_t{18446744073709551615ull});
  const std::string out = render(table, true);
  EXPECT_NE(out.find("-5"), std::string::npos);
  EXPECT_NE(out.find("18446744073709551615"), std::string::npos);
}

}  // namespace
}  // namespace dsjoin::common
