#include "dsjoin/common/cli.hpp"

#include <gtest/gtest.h>

namespace dsjoin::common {
namespace {

CliFlags make_flags() {
  CliFlags flags("test program");
  flags.add_int("count", 10, "a count")
      .add_double("rate", 2.5, "a rate")
      .add_string("name", "default", "a name")
      .add_bool("verbose", false, "verbosity");
  return flags;
}

TEST(CliFlags, DefaultsApply) {
  auto flags = make_flags();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.get_int("count"), 10);
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 2.5);
  EXPECT_EQ(flags.get_string("name"), "default");
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(CliFlags, EqualsSyntax) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--count=42", "--rate=0.125", "--name=abc",
                        "--verbose=true"};
  ASSERT_TRUE(flags.parse(5, argv));
  EXPECT_EQ(flags.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 0.125);
  EXPECT_EQ(flags.get_string("name"), "abc");
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(CliFlags, SpaceSyntax) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--count", "-7", "--name", "xyz"};
  ASSERT_TRUE(flags.parse(5, argv));
  EXPECT_EQ(flags.get_int("count"), -7);
  EXPECT_EQ(flags.get_string("name"), "xyz");
}

TEST(CliFlags, BareBoolFlag) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(CliFlags, UnknownFlagFails) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--bogus=1"};
  auto status = flags.parse(2, argv);
  ASSERT_FALSE(status);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

TEST(CliFlags, BadIntegerFails) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, BadDoubleFails) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--rate=fast"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, BadBoolFails) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--verbose=maybe"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, MissingValueFails) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, PositionalArgumentFails) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, UsageListsAllFlags) {
  auto flags = make_flags();
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("--rate"), std::string::npos);
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("test program"), std::string::npos);
}

}  // namespace
}  // namespace dsjoin::common
