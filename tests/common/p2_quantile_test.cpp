#include "dsjoin/common/p2_quantile.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/common/stats.hpp"

namespace dsjoin::common {
namespace {

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile p(0.5);
  EXPECT_EQ(p.value(), 0.0);
  EXPECT_EQ(p.count(), 0u);
}

TEST(P2Quantile, SmallSamplesAreExact) {
  P2Quantile median(0.5);
  median.add(3.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  median.add(1.0);
  EXPECT_DOUBLE_EQ(median.value(), 2.0);  // interpolated median of {1,3}
  median.add(2.0);
  EXPECT_DOUBLE_EQ(median.value(), 2.0);
}

TEST(P2Quantile, MedianOfUniform) {
  P2Quantile p(0.5);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100000; ++i) p.add(rng.next_double_in(0, 100));
  EXPECT_NEAR(p.value(), 50.0, 2.0);
}

TEST(P2Quantile, TailQuantileOfUniform) {
  P2Quantile p(0.95);
  Xoshiro256 rng(2);
  for (int i = 0; i < 100000; ++i) p.add(rng.next_double_in(0, 1));
  EXPECT_NEAR(p.value(), 0.95, 0.01);
}

TEST(P2Quantile, GaussianQuantiles) {
  // Standard normal: q(0.5)=0, q(0.9)~1.2816.
  P2Quantile median(0.5), p90(0.9);
  Xoshiro256 rng(3);
  for (int i = 0; i < 200000; ++i) {
    const double g = rng.next_gaussian();
    median.add(g);
    p90.add(g);
  }
  EXPECT_NEAR(median.value(), 0.0, 0.03);
  EXPECT_NEAR(p90.value(), 1.2816, 0.05);
}

TEST(P2Quantile, AgreesWithExactOnSkewedData) {
  P2Quantile p(0.75);
  SampleSet exact;
  Xoshiro256 rng(4);
  for (int i = 0; i < 50000; ++i) {
    const double x = std::exp(rng.next_gaussian());  // lognormal
    p.add(x);
    exact.add(x);
  }
  const double truth = exact.quantile(0.75);
  EXPECT_NEAR(p.value(), truth, 0.08 * truth);
}

TEST(P2Quantile, MonotoneInputStreams) {
  P2Quantile p(0.5);
  for (int i = 1; i <= 10001; ++i) p.add(i);
  EXPECT_NEAR(p.value(), 5001.0, 250.0);
  P2Quantile down(0.5);
  for (int i = 10001; i >= 1; --i) down.add(i);
  EXPECT_NEAR(down.value(), 5001.0, 250.0);
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile p(0.25);
  for (int i = 0; i < 1000; ++i) p.add(7.5);
  EXPECT_DOUBLE_EQ(p.value(), 7.5);
}

}  // namespace
}  // namespace dsjoin::common
