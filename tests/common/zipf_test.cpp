#include "dsjoin/common/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dsjoin::common {
namespace {

TEST(GeneralizedHarmonic, SmallExactValues) {
  EXPECT_DOUBLE_EQ(generalized_harmonic(1, 1.0), 1.0);
  EXPECT_NEAR(generalized_harmonic(2, 1.0), 1.5, 1e-12);
  EXPECT_NEAR(generalized_harmonic(3, 0.0), 3.0, 1e-12);
  EXPECT_NEAR(generalized_harmonic(4, 2.0), 1.0 + 0.25 + 1.0 / 9 + 1.0 / 16, 1e-12);
}

TEST(GeneralizedHarmonic, LargeNMatchesDirectSum) {
  // The Euler-Maclaurin branch must agree with direct summation.
  const std::uint64_t n = 1u << 18;
  const double alpha = 0.4;
  double direct = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    direct += std::pow(static_cast<double>(k), -alpha);
  }
  EXPECT_NEAR(generalized_harmonic(n, alpha) / direct, 1.0, 1e-9);
}

TEST(ZipfDistribution, PmfSumsToOne) {
  for (double alpha : {0.0, 0.4, 1.0, 1.5}) {
    ZipfDistribution zipf(1000, alpha);
    double total = 0.0;
    for (std::uint64_t k = 1; k <= 1000; ++k) total += zipf.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-9) << "alpha=" << alpha;
  }
}

TEST(ZipfDistribution, PmfMonotoneDecreasing) {
  ZipfDistribution zipf(100, 0.7);
  for (std::uint64_t k = 1; k < 100; ++k) {
    EXPECT_GE(zipf.pmf(k), zipf.pmf(k + 1));
  }
}

TEST(ZipfDistribution, SamplesInDomain) {
  Xoshiro256 rng(1);
  ZipfDistribution zipf(64, 1.1);
  for (int i = 0; i < 100000; ++i) {
    const auto k = zipf(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 64u);
  }
}

TEST(ZipfDistribution, DomainOfOne) {
  Xoshiro256 rng(2);
  ZipfDistribution zipf(1, 0.9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 1u);
  EXPECT_DOUBLE_EQ(zipf.pmf(1), 1.0);
  EXPECT_DOUBLE_EQ(zipf.pmf(2), 0.0);
}

// The empirical frequency of each rank must match the pmf (chi-squared-ish
// tolerance check on the head of the distribution).
class ZipfFrequencyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfFrequencyTest, EmpiricalMatchesPmf) {
  const double alpha = GetParam();
  const std::uint64_t n = 50;
  ZipfDistribution zipf(n, alpha);
  Xoshiro256 rng(777);
  constexpr int kSamples = 200000;
  std::vector<int> counts(n + 1, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf(rng)];
  for (std::uint64_t k = 1; k <= 10; ++k) {
    const double expected = zipf.pmf(k);
    const double observed = static_cast<double>(counts[k]) / kSamples;
    // 5 sigma of the binomial standard error plus a small absolute slack.
    const double tol =
        5.0 * std::sqrt(expected * (1 - expected) / kSamples) + 1e-4;
    EXPECT_NEAR(observed, expected, tol) << "alpha=" << alpha << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfFrequencyTest,
                         ::testing::Values(0.0, 0.4, 0.8, 1.0, 1.2, 2.0));

TEST(ZipfDistribution, UniformAlphaIsUniform) {
  ZipfDistribution zipf(100, 0.0);
  for (std::uint64_t k = 1; k <= 100; ++k) {
    EXPECT_NEAR(zipf.pmf(k), 0.01, 1e-12);
  }
}

TEST(ZipfDistribution, SkewConcentratesMassAtHead) {
  Xoshiro256 rng(9);
  ZipfDistribution mild(1000, 0.4);
  ZipfDistribution heavy(1000, 1.5);
  int mild_head = 0, heavy_head = 0;
  for (int i = 0; i < 20000; ++i) {
    if (mild(rng) <= 10) ++mild_head;
    if (heavy(rng) <= 10) ++heavy_head;
  }
  EXPECT_LT(mild_head, heavy_head);
}

}  // namespace
}  // namespace dsjoin::common
