#include "dsjoin/common/serialize.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace dsjoin::common {
namespace {

TEST(Serialize, FixedWidthRoundTrip) {
  BufferWriter w;
  w.write_u8(0xab);
  w.write_u16(0xbeef);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0123456789abcdefULL);
  w.write_i64(-42);
  w.write_f64(3.14159);

  BufferReader r(w.bytes());
  EXPECT_EQ(r.read_u8().value(), 0xab);
  EXPECT_EQ(r.read_u16().value(), 0xbeef);
  EXPECT_EQ(r.read_u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.read_i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64().value(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, FloatSpecialValues) {
  BufferWriter w;
  w.write_f64(std::numeric_limits<double>::infinity());
  w.write_f64(-0.0);
  w.write_f64(std::numeric_limits<double>::denorm_min());
  BufferReader r(w.bytes());
  EXPECT_EQ(r.read_f64().value(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.read_f64().value(), 0.0);
  EXPECT_EQ(r.read_f64().value(), std::numeric_limits<double>::denorm_min());
}

TEST(Serialize, StringRoundTrip) {
  BufferWriter w;
  w.write_string("hello");
  w.write_string("");
  w.write_string(std::string(1000, 'x'));
  BufferReader r(w.bytes());
  EXPECT_EQ(r.read_string().value(), "hello");
  EXPECT_EQ(r.read_string().value(), "");
  EXPECT_EQ(r.read_string().value(), std::string(1000, 'x'));
}

TEST(Serialize, BytesRoundTrip) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 255, 0, 128};
  BufferWriter w;
  w.write_bytes(payload);
  BufferReader r(w.bytes());
  EXPECT_EQ(r.read_bytes().value(), payload);
}

TEST(Serialize, TruncatedFixedReadFails) {
  BufferWriter w;
  w.write_u16(7);
  BufferReader r(w.bytes());
  EXPECT_TRUE(r.read_u8());
  // one byte left, u32 must fail
  auto res = r.read_u32();
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kDataLoss);
}

TEST(Serialize, TruncatedStringFails) {
  BufferWriter w;
  w.write_u32(100);  // claims 100 bytes follow
  w.write_u8('x');
  BufferReader r(w.bytes());
  auto res = r.read_string();
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kDataLoss);
}

TEST(Serialize, TruncatedBytesFails) {
  BufferWriter w;
  w.write_u32(16);
  BufferReader r(w.bytes());
  EXPECT_FALSE(r.read_bytes().is_ok());
}

TEST(Serialize, EmptyReaderIsExhausted) {
  BufferReader r({});
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.read_u8().is_ok());
}

TEST(Serialize, RemainingTracksPosition) {
  BufferWriter w;
  w.write_u64(1);
  w.write_u64(2);
  BufferReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 16u);
  (void)r.read_u64();
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.read_u64();
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, WriterSizeAndTake) {
  BufferWriter w(64);
  w.write_u32(5);
  EXPECT_EQ(w.size(), 4u);
  auto owned = std::move(w).take();
  EXPECT_EQ(owned.size(), 4u);
}

TEST(Serialize, RawBytesHaveNoPrefix) {
  BufferWriter w;
  const std::vector<std::uint8_t> raw{9, 8, 7};
  w.write_raw(raw);
  EXPECT_EQ(w.size(), 3u);
}

}  // namespace
}  // namespace dsjoin::common
