#include "dsjoin/common/log.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dsjoin::common {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelThresholdRoundTrips) {
  LogLevelGuard guard;
  for (auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                     LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, SuppressedLevelsDoNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // All of these must be no-ops (and must not evaluate into UB).
  log(LogLevel::kDebug, "dropped %d", 1);
  log(LogLevel::kError, "dropped %s", "too");
  DSJOIN_LOG_INFO("macro form %d", 2);
  SUCCEED();
}

TEST(Log, EmittingLevelsDoNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  log(LogLevel::kDebug, "test debug line %d", 42);
  DSJOIN_LOG_WARN("test warn line %s", "ok");
  SUCCEED();
}

TEST(Log, ConcurrentEmissionIsSafe) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);  // suppress output; exercise the filter
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 100; ++i) {
        log(LogLevel::kWarn, "thread %d line %d", t, i);
      }
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}

}  // namespace
}  // namespace dsjoin::common
