#include "dsjoin/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dsjoin/common/rng.hpp"

namespace dsjoin::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.population_variance(), 4.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleObservation) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256 rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_gaussian() * 3 + 1;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.population_variance(), 0.25, 1e-6);
}

TEST(Histogram, BucketAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsAndCounts) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 1.5);
}

TEST(Histogram, BucketEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 18.0);
}

TEST(SampleSet, ExactQuantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(SampleSet, FractionBelow) {
  SampleSet s;
  for (int i = 0; i < 10; ++i) s.add(i);  // 0..9
  EXPECT_DOUBLE_EQ(s.fraction_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_below(100.0), 1.0);
}

}  // namespace
}  // namespace dsjoin::common
