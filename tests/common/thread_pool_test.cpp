// ThreadPool: batch semantics, exception propagation, reuse, teardown.
#include "dsjoin/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dsjoin::common {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> batch;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    batch.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.run_batch(batch);
  for (auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsEverythingOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(16);
  std::vector<std::function<void()>> batch;
  for (std::size_t i = 0; i < ran.size(); ++i) {
    batch.push_back([&ran, i] { ran[i] = std::this_thread::get_id(); });
  }
  pool.run_batch(batch);
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> batch;
  pool.run_batch(batch);  // must not deadlock or throw
}

TEST(ThreadPool, SpreadsWorkAcrossThreads) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  std::vector<std::function<void()>> batch;
  for (int i = 0; i < 256; ++i) {
    batch.push_back([&] {
      // Enough work per task that no single thread can drain the batch
      // before the others wake.
      volatile std::uint64_t sink = 0;
      for (int j = 0; j < 20000; ++j) sink = sink + static_cast<std::uint64_t>(j);
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.run_batch(batch);
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> batch;
  batch.push_back([] {});
  batch.push_back([] { throw std::runtime_error("first"); });
  batch.push_back([] { throw std::logic_error("second"); });
  batch.push_back([] {});
  try {
    pool.run_batch(batch);
    FAIL() << "expected run_batch to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPool, RemainsUsableAfterAnException) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> bad;
  bad.push_back([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.run_batch(bad), std::runtime_error);

  std::atomic<int> hits{0};
  std::vector<std::function<void()>> good;
  for (int i = 0; i < 32; ++i) good.push_back([&hits] { ++hits; });
  pool.run_batch(good);
  EXPECT_EQ(hits.load(), 32);
}

TEST(ThreadPool, ReusableAcrossManyEpochs) {
  // The parallel driver calls run_batch once per epoch — thousands of times
  // per run. Exercise the generation handshake under rapid reuse.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int epoch = 0; epoch < 500; ++epoch) {
    std::vector<std::function<void()>> batch;
    const int tasks = 1 + epoch % 7;
    for (int i = 0; i < tasks; ++i) {
      batch.push_back([&total] { total.fetch_add(1); });
    }
    pool.run_batch(batch);
  }
  std::uint64_t expected = 0;
  for (int epoch = 0; epoch < 500; ++epoch) expected += 1 + epoch % 7;
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPool, DestructorJoinsStress) {
  // Construct/destroy pools in a tight loop, with and without work, to
  // shake out teardown races (intended to run under TSan in CI).
  for (int round = 0; round < 100; ++round) {
    ThreadPool pool(1 + round % 4);
    if (round % 2 == 0) {
      std::atomic<int> hits{0};
      std::vector<std::function<void()>> batch;
      for (int i = 0; i < 8; ++i) batch.push_back([&hits] { ++hits; });
      pool.run_batch(batch);
      EXPECT_EQ(hits.load(), 8);
    }
    // Odd rounds: destroy immediately while workers are still parked.
  }
}

TEST(ThreadPool, CallerParticipatesInDraining) {
  // With 1 worker and tasks that record their thread, both the worker and
  // the caller should appear for a large enough batch.
  ThreadPool pool(1);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  std::vector<std::function<void()>> batch;
  for (int i = 0; i < 128; ++i) {
    batch.push_back([&] {
      volatile std::uint64_t sink = 0;
      for (int j = 0; j < 20000; ++j) sink = sink + static_cast<std::uint64_t>(j);
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.run_batch(batch);
  EXPECT_TRUE(seen.count(std::this_thread::get_id()) == 1 || seen.size() >= 2);
}

}  // namespace
}  // namespace dsjoin::common
