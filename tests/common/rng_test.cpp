#include "dsjoin/common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace dsjoin::common {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, DoubleMeanIsHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowCoversSmallRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, NextInIsInclusive) {
  Xoshiro256 rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, BernoulliEdgeCases) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
    EXPECT_FALSE(rng.next_bool(-0.5));
    EXPECT_TRUE(rng.next_bool(1.5));
  }
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(29);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Xoshiro256, GaussianMoments) {
  Xoshiro256 rng(31);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Xoshiro256, ExponentialMeanMatchesRate) {
  Xoshiro256 rng(37);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double e = rng.next_exponential(4.0);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Xoshiro256, ForkProducesIndependentStream) {
  Xoshiro256 parent(41);
  Xoshiro256 child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

}  // namespace
}  // namespace dsjoin::common
