#include "dsjoin/common/status.hpp"

#include <gtest/gtest.h>

namespace dsjoin::common {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kNotFound, "no such node");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "no such node");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: no such node");
}

TEST(Status, AllCodesHaveNames) {
  for (auto code : {ErrorCode::kOk, ErrorCode::kInvalidArgument,
                    ErrorCode::kOutOfRange, ErrorCode::kFailedPrecondition,
                    ErrorCode::kNotFound, ErrorCode::kAlreadyExists,
                    ErrorCode::kResourceExhausted, ErrorCode::kUnavailable,
                    ErrorCode::kDataLoss, ErrorCode::kInternal}) {
    EXPECT_FALSE(to_string(code).empty());
    EXPECT_NE(to_string(code), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status(ErrorCode::kDataLoss, "truncated");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.is_ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, MutableValueAccess) {
  Result<std::string> r(std::string("a"));
  r.value() += "b";
  EXPECT_EQ(r.value(), "ab");
}

TEST(Result, ImplicitConversionFromValueAndStatus) {
  auto make = [](bool ok) -> Result<double> {
    if (ok) return 1.5;
    return Status(ErrorCode::kInternal, "boom");
  };
  EXPECT_TRUE(make(true).is_ok());
  EXPECT_FALSE(make(false).is_ok());
}

}  // namespace
}  // namespace dsjoin::common
