#include "dsjoin/common/strformat.hpp"

#include <gtest/gtest.h>

namespace dsjoin::common {
namespace {

TEST(StrFormat, BasicSubstitution) {
  EXPECT_EQ(str_format("a=%d b=%s c=%.2f", 7, "xy", 1.5), "a=7 b=xy c=1.50");
}

TEST(StrFormat, EmptyAndNoArgs) {
  EXPECT_EQ(str_format("plain"), "plain");
  EXPECT_EQ(str_format("%s", ""), "");
}

TEST(StrFormat, LongOutputAllocatesCorrectly) {
  const std::string big(10000, 'z');
  const std::string out = str_format("[%s]", big.c_str());
  EXPECT_EQ(out.size(), big.size() + 2);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(StrFormat, NumericEdgeCases) {
  EXPECT_EQ(str_format("%lld", -9223372036854775807LL), "-9223372036854775807");
  EXPECT_EQ(str_format("%llu", 18446744073709551615ULL), "18446744073709551615");
  EXPECT_EQ(str_format("%g", 0.0), "0");
}

TEST(StrFormat, PercentEscape) { EXPECT_EQ(str_format("100%%"), "100%"); }

}  // namespace
}  // namespace dsjoin::common
