#include "dsjoin/analysis/mse_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsjoin/dsp/compression.hpp"
#include "dsjoin/stream/generator.hpp"

namespace dsjoin::analysis {
namespace {

TEST(PredictedMse, ZeroWhenEverythingRetained) {
  dsp::Fft fft(64);
  std::vector<double> signal(64, 3.0);
  const auto spectrum = fft.forward_real(signal);
  EXPECT_DOUBLE_EQ(predicted_mse(spectrum, 33), 0.0);
}

TEST(PredictedMse, MatchesEmpiricalReconstruction) {
  // Parseval: the analytic model must equal the measured MSE exactly.
  const auto signal = stream::generate_stock_series(4096, 5);
  dsp::Fft fft(signal.size());
  const auto spectrum = fft.forward_real(signal);
  for (double kappa : {4.0, 16.0, 64.0, 256.0}) {
    const std::size_t k = dsp::retained_for_kappa(signal.size(), kappa);
    const auto approx = dsp::reconstruct(dsp::compress(signal, kappa, fft));
    const double empirical = dsp::mean_squared_error(signal, approx);
    const double predicted = predicted_mse(spectrum, k);
    EXPECT_NEAR(predicted, empirical, 1e-6 * (1.0 + empirical)) << kappa;
  }
}

TEST(PredictedMse, MonotoneInRetained) {
  const auto signal = stream::generate_stock_series(2048, 6);
  dsp::Fft fft(signal.size());
  const auto spectrum = fft.forward_real(signal);
  // Fewer retained coefficients leave more residual energy.
  double prev = -1.0;
  for (std::size_t k : {1024u, 256u, 64u, 16u, 4u, 1u}) {
    const double mse = predicted_mse(spectrum, k);
    EXPECT_GE(mse, prev);
    prev = mse;
  }
}

TEST(MseProfile, CoversPowerOfTwoKappas) {
  const auto signal = stream::generate_stock_series(1024, 7);
  const auto profile = mse_profile(signal);
  ASSERT_GE(profile.size(), 5u);
  EXPECT_DOUBLE_EQ(profile.front().kappa, 2.0);
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_DOUBLE_EQ(profile[i].kappa, profile[i - 1].kappa * 2.0);
    EXPECT_GE(profile[i].mse, profile[i - 1].mse - 1e-12);
  }
}

TEST(MaxLosslessKappa, StockSeriesSupportsDeepCompression) {
  // The reproduction of the paper's kappa = 256 claim: the synthetic stock
  // stream admits a lossless (E[MSE] < 0.25) compression factor of at
  // least 128.
  const auto signal = stream::generate_stock_series(65536, 42);
  EXPECT_GE(max_lossless_kappa(signal, 0.25), 128.0);
}

TEST(MaxLosslessKappa, PureToneCompressesMaximally) {
  constexpr std::size_t kN = 4096;
  std::vector<double> tone(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    tone[i] = 100 * std::sin(2 * std::numbers::pi * static_cast<double>(i) / kN);
  }
  EXPECT_GE(max_lossless_kappa(tone, 0.25), 1024.0);
}

TEST(MaxLosslessKappa, WhiteNoiseDoesNotCompress) {
  common::Xoshiro256 rng(8);
  std::vector<double> noise(2048);
  for (auto& v : noise) v = rng.next_double_in(-100, 100);
  EXPECT_DOUBLE_EQ(max_lossless_kappa(noise, 0.25), 1.0);
}

}  // namespace
}  // namespace dsjoin::analysis
