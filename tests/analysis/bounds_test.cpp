#include "dsjoin/analysis/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dsjoin::analysis {
namespace {

TEST(UniformBounds, Theorem1Values) {
  // Theorem 1: epsilon <= 1 - 2/N.
  EXPECT_DOUBLE_EQ(uniform_error_bound_t1(2), 0.0);
  EXPECT_DOUBLE_EQ(uniform_error_bound_t1(4), 0.5);
  EXPECT_DOUBLE_EQ(uniform_error_bound_t1(10), 0.8);
  EXPECT_DOUBLE_EQ(uniform_error_bound_t1(20), 0.9);
}

TEST(UniformBounds, Theorem2Values) {
  // Theorem 2: epsilon <= 1 - (1 + log2 N)/N.
  EXPECT_DOUBLE_EQ(uniform_error_bound_tlog(2), 0.0);
  EXPECT_DOUBLE_EQ(uniform_error_bound_tlog(4), 1.0 - 3.0 / 4.0);
  EXPECT_NEAR(uniform_error_bound_tlog(16), 1.0 - 5.0 / 16.0, 1e-12);
}

TEST(UniformBounds, LogBudgetNeverWorseThanUnitBudget) {
  for (std::uint32_t n = 2; n <= 128; ++n) {
    EXPECT_LE(uniform_error_bound_tlog(n), uniform_error_bound_t1(n)) << n;
  }
}

TEST(UniformBounds, GrowTowardOneWithN) {
  double prev_t1 = -1.0, prev_tlog = -1.0;
  for (std::uint32_t n = 2; n <= 1024; n *= 2) {
    const double t1 = uniform_error_bound_t1(n);
    const double tlog = uniform_error_bound_tlog(n);
    EXPECT_GE(t1, prev_t1);
    EXPECT_GE(tlog, prev_tlog);
    EXPECT_LT(t1, 1.0);
    EXPECT_LT(tlog, 1.0);
    prev_t1 = t1;
    prev_tlog = tlog;
  }
}

TEST(MessageComplexity, Figure3bSeries) {
  // BASE transmits N(N-1) messages per arriving tuple across the system;
  // the bounded policies N*1 and N*log2(N).
  EXPECT_DOUBLE_EQ(system_messages_per_tuple(10, budget_base(10)), 90.0);
  EXPECT_DOUBLE_EQ(system_messages_per_tuple(10, budget_t1()), 10.0);
  EXPECT_NEAR(system_messages_per_tuple(8, budget_tlog(8)), 24.0, 1e-12);
}

TEST(MessageComplexity, ThreeFoldReductionAtTwenty) {
  // The paper notes a ~3x reduction of T=log(N) vs BASE's N-1 at the
  // evaluated scales... actually log2(20)=4.3 vs 19: ~4.4x; at N=8: 3/7.
  const double ratio = budget_base(20) / budget_tlog(20);
  EXPECT_GT(ratio, 3.0);
}

TEST(ZipfBounds, PrintedFormulaeMatchTheorem3) {
  // O(1): 1 - (alpha + alpha^2)/N at alpha = 0.4, N = 10.
  EXPECT_NEAR(zipf_error_bound_t1_printed(10, 0.4), 1.0 - 0.56 / 10.0, 1e-12);
  // O(log N): 1 - (alpha - alpha^{log2(N)+1})/(1 - alpha).
  const double expected =
      1.0 - (0.4 - std::pow(0.4, std::log2(16.0) + 1.0)) / 0.6;
  EXPECT_NEAR(zipf_error_bound_tlog_printed(16, 0.4), expected, 1e-12);
}

TEST(ZipfBounds, LogBudgetBeatsUnitBudget) {
  for (std::uint32_t n = 4; n <= 20; ++n) {
    EXPECT_LT(zipf_error_bound_tlog_printed(n, 0.4),
              zipf_error_bound_t1_printed(n, 0.4))
        << n;
  }
}

TEST(ZipfBounds, TlogImprovesWithN) {
  // Figure 4's qualitative claim: with O(log N) budget the Zipf bound
  // *decreases* as nodes are added.
  double prev = 2.0;
  for (std::uint32_t n = 2; n <= 20; ++n) {
    const double bound = zipf_error_bound_tlog_printed(n, 0.4);
    EXPECT_LE(bound, prev + 1e-12) << n;
    prev = bound;
  }
}

TEST(ZipfBounds, NormalizedVariantBasics) {
  // Contacting all N sites leaves no missed mass.
  EXPECT_NEAR(zipf_error_bound_normalized(8, 0.4, 8.0), 0.0, 1e-12);
  // Contacting one site misses everything but the top site's share.
  const double one = zipf_error_bound_normalized(8, 0.4, 1.0);
  EXPECT_GT(one, 0.5);
  EXPECT_LT(one, 1.0);
  // More contacted sites, less error.
  EXPECT_LT(zipf_error_bound_normalized(16, 0.4, 5.0),
            zipf_error_bound_normalized(16, 0.4, 2.0));
}

TEST(ZipfBounds, HigherSkewLowersNormalizedError) {
  // With stronger skew the top sites hold more of the mass.
  EXPECT_LT(zipf_error_bound_normalized(16, 1.2, 2.0),
            zipf_error_bound_normalized(16, 0.2, 2.0));
}

}  // namespace
}  // namespace dsjoin::analysis
