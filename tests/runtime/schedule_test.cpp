#include "dsjoin/runtime/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_map>

namespace dsjoin::runtime {
namespace {

core::SystemConfig small_config() {
  core::SystemConfig config;
  config.nodes = 4;
  config.seed = 7;
  config.workload = "ZIPF";
  config.tuples_per_node = 64;
  config.arrivals_per_second = 50.0;
  config.join_half_width_s = 2.0;
  return config;
}

// Brute-force |Psi| over the full cross product — O(n^2) ground truth the
// schedule's oracle-based exact_pairs() must match.
std::uint64_t brute_force_pairs(const ArrivalSchedule& schedule,
                                double half_width) {
  std::uint64_t count = 0;
  for (const auto& r : schedule.tuples) {
    if (r.side != stream::StreamSide::kR) continue;
    for (const auto& s : schedule.tuples) {
      if (s.side != stream::StreamSide::kS) continue;
      if (r.key == s.key &&
          std::abs(r.timestamp - s.timestamp) <= half_width) {
        ++count;
      }
    }
  }
  return count;
}

TEST(ArrivalSchedule, BuildIsDeterministic) {
  const auto config = small_config();
  const auto a = ArrivalSchedule::build(config);
  const auto b = ArrivalSchedule::build(config);
  ASSERT_EQ(a.tuples.size(), b.tuples.size());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  for (std::size_t i = 0; i < a.tuples.size(); ++i) {
    EXPECT_EQ(a.tuples[i].id, b.tuples[i].id);
    EXPECT_EQ(a.tuples[i].key, b.tuples[i].key);
    EXPECT_DOUBLE_EQ(a.tuples[i].timestamp, b.tuples[i].timestamp);
    EXPECT_EQ(a.tuples[i].origin, b.tuples[i].origin);
    EXPECT_EQ(a.tuples[i].side, b.tuples[i].side);
  }
}

TEST(ArrivalSchedule, SeedChangesTheSchedule) {
  auto config = small_config();
  const auto a = ArrivalSchedule::build(config);
  config.seed = 8;
  const auto b = ArrivalSchedule::build(config);
  ASSERT_EQ(a.tuples.size(), b.tuples.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.tuples.size() && !any_difference; ++i) {
    any_difference = a.tuples[i].key != b.tuples[i].key ||
                     a.tuples[i].timestamp != b.tuples[i].timestamp;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ArrivalSchedule, HasExpectedShape) {
  const auto config = small_config();
  const auto schedule = ArrivalSchedule::build(config);
  // Every node contributes tuples_per_node arrivals per stream side.
  ASSERT_EQ(schedule.tuples.size(),
            std::size_t{2} * config.nodes * config.tuples_per_node);

  // Timestamps nondecreasing, ids dense from 1 in merge order.
  std::uint64_t expected_id = 1;
  double last_ts = 0.0;
  for (const auto& tuple : schedule.tuples) {
    EXPECT_EQ(tuple.id, expected_id++);
    EXPECT_GE(tuple.timestamp, last_ts);
    last_ts = tuple.timestamp;
    EXPECT_LT(tuple.origin, config.nodes);
  }
  EXPECT_DOUBLE_EQ(schedule.makespan_s, last_ts);
}

TEST(ArrivalSchedule, ForNodePartitionsTheSchedule) {
  const auto config = small_config();
  const auto schedule = ArrivalSchedule::build(config);
  std::set<std::uint64_t> seen;
  for (net::NodeId node = 0; node < config.nodes; ++node) {
    const auto slice = schedule.for_node(node);
    EXPECT_EQ(slice.size(), std::size_t{2} * config.tuples_per_node);
    double last_ts = 0.0;
    for (const auto& tuple : slice) {
      EXPECT_EQ(tuple.origin, node);
      EXPECT_GE(tuple.timestamp, last_ts);
      last_ts = tuple.timestamp;
      EXPECT_TRUE(seen.insert(tuple.id).second)
          << "tuple " << tuple.id << " appears in two slices";
    }
  }
  EXPECT_EQ(seen.size(), schedule.tuples.size());
}

TEST(ArrivalSchedule, ExactPairsMatchesBruteForce) {
  const auto config = small_config();
  const auto schedule = ArrivalSchedule::build(config);
  const auto exact = exact_pairs(schedule, config.join_half_width_s);
  EXPECT_EQ(exact, brute_force_pairs(schedule, config.join_half_width_s));
  EXPECT_GT(exact, 0u) << "degenerate workload: no joining pairs at all";
}

TEST(ArrivalSchedule, CountFalsePairsPassesGenuineResults) {
  const auto config = small_config();
  const auto schedule = ArrivalSchedule::build(config);
  // Collect every genuine pair; none of them may be flagged.
  std::vector<stream::ResultPair> genuine;
  for (const auto& r : schedule.tuples) {
    if (r.side != stream::StreamSide::kR) continue;
    for (const auto& s : schedule.tuples) {
      if (s.side == stream::StreamSide::kS && r.key == s.key &&
          std::abs(r.timestamp - s.timestamp) <= config.join_half_width_s) {
        genuine.push_back({r.id, s.id});
      }
    }
  }
  ASSERT_FALSE(genuine.empty());
  EXPECT_EQ(count_false_pairs(schedule, config.join_half_width_s, genuine), 0u);
}

TEST(ArrivalSchedule, CountFalsePairsFlagsFabrications) {
  const auto config = small_config();
  const auto schedule = ArrivalSchedule::build(config);
  const double w = config.join_half_width_s;

  // Index tuples by side for targeted fabrication.
  std::unordered_map<std::uint64_t, stream::Tuple> by_id;
  std::uint64_t some_r = 0, some_s = 0;
  for (const auto& t : schedule.tuples) {
    by_id[t.id] = t;
    if (t.side == stream::StreamSide::kR && some_r == 0) some_r = t.id;
    if (t.side == stream::StreamSide::kS && some_s == 0) some_s = t.id;
  }
  ASSERT_NE(some_r, 0u);
  ASSERT_NE(some_s, 0u);

  // An R tuple paired with an R tuple (wrong side).
  std::uint64_t second_r = 0;
  for (const auto& t : schedule.tuples) {
    if (t.side == stream::StreamSide::kR && t.id != some_r) {
      second_r = t.id;
      break;
    }
  }
  // An (r, s) with mismatched keys.
  std::uint64_t mismatched_s = 0;
  for (const auto& t : schedule.tuples) {
    if (t.side == stream::StreamSide::kS &&
        t.key != by_id[some_r].key) {
      mismatched_s = t.id;
      break;
    }
  }
  // An (r, s) with equal keys but outside the window.
  stream::ResultPair out_of_window{0, 0};
  for (const auto& r : schedule.tuples) {
    if (r.side != stream::StreamSide::kR) continue;
    for (const auto& s : schedule.tuples) {
      if (s.side == stream::StreamSide::kS && r.key == s.key &&
          std::abs(r.timestamp - s.timestamp) > w) {
        out_of_window = {r.id, s.id};
        break;
      }
    }
    if (out_of_window.r_id != 0) break;
  }

  std::vector<stream::ResultPair> fabricated;
  fabricated.push_back({some_r, second_r});            // R joined with R
  fabricated.push_back({some_s, some_r});              // sides swapped
  fabricated.push_back({some_r, mismatched_s});        // keys differ
  fabricated.push_back({schedule.tuples.size() + 99,   // ids that never existed
                        schedule.tuples.size() + 100});
  if (out_of_window.r_id != 0) fabricated.push_back(out_of_window);

  EXPECT_EQ(count_false_pairs(schedule, w, fabricated), fabricated.size());
}

TEST(ArrivalSchedule, UniformWorkloadAlsoBuilds) {
  auto config = small_config();
  config.workload = "UNI";
  const auto schedule = ArrivalSchedule::build(config);
  EXPECT_EQ(schedule.tuples.size(),
            std::size_t{2} * config.nodes * config.tuples_per_node);
}

}  // namespace
}  // namespace dsjoin::runtime
