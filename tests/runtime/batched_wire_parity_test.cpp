// Batching-transparency parity: coalescing wire frames must change syscall
// counts and header bytes only — never which pairs a run reports, its
// epsilon, or its *logical* traffic accounting. The same config runs with
// coalescing off (coalesce_frames = 1) and on (32) across the simulator,
// the in-process TCP harness, and the fork-based multiprocess driver, and
// every observable except the physical wire-record counters must match
// element-wise.
//
// Policies under test: RR (deterministic routing by construction) and DFTT
// with live summary exchange. Coefficients publish and apply at stamped
// virtual-time epoch boundaries (DESIGN.md §12), so a summary-driven
// policy's pair set is a pure function of the arrival schedule and config —
// comparable exactly across backends and batching modes. (This retires the
// old "bootstrap-deterministic" restriction that suppressed every summary
// epoch to keep routing comparable; the full policy × backend × coalescing
// matrix lives in backend_parity_test.cpp.)
//
// What is compared: the pair set (element-wise), epsilon, kTuple/kSummary
// logical frame+byte counters, and kControl counters among the socket
// backends (the simulator sends no FIN frames). kResult frame counts are
// excluded: remote matches are grouped into result frames per delivery
// slice, so their *count* (not their content) is interleaving-dependent.
// These tests fork() via the multiprocess backend, so they are filtered
// out of the TSan job next to Multiprocess.* / BackendParity.*.
#include <gtest/gtest.h>

#include <vector>

#include "dsjoin/core/experiment.hpp"
#include "dsjoin/core/system.hpp"
#include "dsjoin/runtime/engine.hpp"

namespace dsjoin {
namespace {

core::SystemConfig batched_parity_config(core::PolicyKind policy,
                                         std::uint32_t coalesce_frames) {
  core::SystemConfig config;
  config.nodes = 3;
  config.seed = 7;
  config.workload = "ZIPF";
  config.policy = policy;
  config.tuples_per_node = 100;
  config.arrivals_per_second = 50.0;
  config.join_half_width_s = 2.0;
  config.dft_window = 256;
  config.kappa = 32.0;
  config.summary_epoch_tuples = 64;  // summaries live: epochs do complete
  config.max_backlog_s = 0.0;  // keep sim arrivals == materialized schedule
  config.coalesce_frames = coalesce_frames;
  return config;
}

core::ExperimentResult run_backend(const core::SystemConfig& config,
                                   core::Backend backend) {
  runtime::EngineOptions options;
  options.backend = backend;
  return runtime::run_experiment(config, options);
}

void expect_same_logical_traffic(const core::ExperimentResult& a,
                                 const core::ExperimentResult& b,
                                 bool compare_control) {
  using net::FrameKind;
  for (const auto kind : {FrameKind::kTuple, FrameKind::kSummary}) {
    EXPECT_EQ(a.traffic.frames(kind), b.traffic.frames(kind))
        << "frame kind " << static_cast<int>(kind);
    EXPECT_EQ(a.traffic.bytes(kind), b.traffic.bytes(kind))
        << "frame kind " << static_cast<int>(kind);
  }
  EXPECT_EQ(a.traffic.piggyback_bytes, b.traffic.piggyback_bytes);
  if (compare_control) {
    EXPECT_EQ(a.traffic.frames(FrameKind::kControl),
              b.traffic.frames(FrameKind::kControl));
  }
}

void expect_batching_transparent(core::PolicyKind policy,
                                 bool expect_summary_traffic) {
  const core::Backend backends[] = {core::Backend::kSim,
                                    core::Backend::kTcpInprocess,
                                    core::Backend::kMultiprocess};
  std::vector<core::ExperimentResult> off, on;
  for (const auto backend : backends) {
    off.push_back(run_backend(batched_parity_config(policy, 1), backend));
    on.push_back(run_backend(batched_parity_config(policy, 32), backend));
  }

  for (std::size_t i = 0; i < off.size(); ++i) {
    for (const auto* result : {&off[i], &on[i]}) {
      ASSERT_TRUE(result->clean) << result->error;
      EXPECT_EQ(result->decode_failures, 0u);
      EXPECT_EQ(result->late_summaries, 0u);
      EXPECT_EQ(result->false_pairs, 0u);
      EXPECT_GT(result->reported_pairs, 0u);
      const auto summary_bytes =
          result->traffic.bytes(net::FrameKind::kSummary) +
          result->traffic.piggyback_bytes;
      if (expect_summary_traffic) {
        // Live summary plane: batching transparency is only meaningful if
        // coefficients actually crossed the wire.
        EXPECT_GT(summary_bytes, 0u);
      } else {
        EXPECT_EQ(summary_bytes, 0u);
      }
    }
  }

  // Reference observables: the coalescing-off simulator run.
  const auto& reference = off[0];
  for (std::size_t i = 0; i < off.size(); ++i) {
    for (const auto* result : {&off[i], &on[i]}) {
      EXPECT_EQ(result->pairs, reference.pairs)
          << "backend " << core::to_string(result->backend);
      EXPECT_EQ(result->epsilon, reference.epsilon);
      EXPECT_EQ(result->reported_pairs, reference.reported_pairs);
      EXPECT_EQ(result->exact_pairs, reference.exact_pairs);
      const bool socket_pair = result->backend != core::Backend::kSim;
      expect_same_logical_traffic(*result, reference,
                                  /*compare_control=*/false);
      if (socket_pair) {
        // Control counts — FIN handshake plus quantized watermark
        // announcements — agree among the socket backends (the simulator
        // needs neither).
        expect_same_logical_traffic(*result, off[1], /*compare_control=*/true);
      }
    }
  }

  // The physical layer is where batching is allowed — required, even — to
  // differ: coalesced socket runs must actually share headers.
  for (std::size_t i = 1; i < std::size(backends); ++i) {
    EXPECT_EQ(off[i].traffic.header_bytes_saved, 0u)
        << core::to_string(backends[i]);
    EXPECT_EQ(off[i].traffic.wire_records, off[i].traffic.total_frames())
        << core::to_string(backends[i]);
    EXPECT_GT(on[i].traffic.header_bytes_saved, 0u)
        << core::to_string(backends[i]);
    EXPECT_LT(on[i].traffic.wire_records, on[i].traffic.total_frames())
        << core::to_string(backends[i]);
  }
}

TEST(BatchedWireParity, RoundRobinTransparentAcrossBackends) {
  expect_batching_transparent(core::PolicyKind::kRoundRobin,
                              /*expect_summary_traffic=*/false);
}

TEST(BatchedWireParity, SummaryActiveDfttTransparentAcrossBackends) {
  expect_batching_transparent(core::PolicyKind::kDftt,
                              /*expect_summary_traffic=*/true);
}

}  // namespace
}  // namespace dsjoin
