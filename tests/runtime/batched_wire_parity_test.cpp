// Batching-transparency parity: coalescing wire frames must change syscall
// counts and header bytes only — never which pairs a run reports, its
// epsilon, or its *logical* traffic accounting. The same config runs with
// coalescing off (coalesce_frames = 1) and on (32) across the simulator,
// the in-process TCP harness, and the fork-based multiprocess driver, and
// every observable except the physical wire-record counters must match
// element-wise.
//
// Policies under test: RR (deterministic routing by construction) and DFTT
// in a "bootstrap-deterministic" configuration — summary_epoch_tuples is
// set above each node's total local arrivals, so no epoch ever completes,
// no coefficients publish, and routing stays at its bootstrap scores. That
// makes a DFT-family policy's pair set a pure function of the arrival
// schedule, i.e. comparable exactly across backends and batching modes
// (full timing-dependent summary parity is ROADMAP item 3, out of scope
// here).
//
// What is compared: the pair set (element-wise), epsilon, kTuple/kSummary
// logical frame+byte counters, and kControl counters among the socket
// backends (the simulator sends no FIN frames). kResult frame counts are
// excluded: remote matches are grouped into result frames per delivery
// slice, so their *count* (not their content) is interleaving-dependent.
// These tests fork() via the multiprocess backend, so they are filtered
// out of the TSan job next to Multiprocess.* / BackendParity.*.
#include <gtest/gtest.h>

#include <vector>

#include "dsjoin/core/experiment.hpp"
#include "dsjoin/core/system.hpp"
#include "dsjoin/runtime/engine.hpp"

namespace dsjoin {
namespace {

core::SystemConfig batched_parity_config(core::PolicyKind policy,
                                         std::uint32_t coalesce_frames) {
  core::SystemConfig config;
  config.nodes = 3;
  config.seed = 7;
  config.workload = "ZIPF";
  config.policy = policy;
  config.tuples_per_node = 100;
  config.arrivals_per_second = 50.0;
  config.join_half_width_s = 2.0;
  config.dft_window = 256;
  config.kappa = 32.0;
  // Above 2 * tuples_per_node (both stream sides): no summary epoch ever
  // completes, so summary-driven policies route deterministically on their
  // bootstrap state and send zero kSummary frames / piggyback bytes.
  config.summary_epoch_tuples = 1024;
  config.max_backlog_s = 0.0;  // keep sim arrivals == materialized schedule
  config.coalesce_frames = coalesce_frames;
  return config;
}

core::ExperimentResult run_backend(const core::SystemConfig& config,
                                   core::Backend backend) {
  runtime::EngineOptions options;
  options.backend = backend;
  return runtime::run_experiment(config, options);
}

void expect_same_logical_traffic(const core::ExperimentResult& a,
                                 const core::ExperimentResult& b,
                                 bool compare_control) {
  using net::FrameKind;
  for (const auto kind : {FrameKind::kTuple, FrameKind::kSummary}) {
    EXPECT_EQ(a.traffic.frames(kind), b.traffic.frames(kind))
        << "frame kind " << static_cast<int>(kind);
    EXPECT_EQ(a.traffic.bytes(kind), b.traffic.bytes(kind))
        << "frame kind " << static_cast<int>(kind);
  }
  EXPECT_EQ(a.traffic.piggyback_bytes, b.traffic.piggyback_bytes);
  if (compare_control) {
    EXPECT_EQ(a.traffic.frames(FrameKind::kControl),
              b.traffic.frames(FrameKind::kControl));
  }
}

void expect_batching_transparent(core::PolicyKind policy) {
  const core::Backend backends[] = {core::Backend::kSim,
                                    core::Backend::kTcpInprocess,
                                    core::Backend::kMultiprocess};
  std::vector<core::ExperimentResult> off, on;
  for (const auto backend : backends) {
    off.push_back(run_backend(batched_parity_config(policy, 1), backend));
    on.push_back(run_backend(batched_parity_config(policy, 32), backend));
  }

  for (std::size_t i = 0; i < off.size(); ++i) {
    for (const auto* result : {&off[i], &on[i]}) {
      ASSERT_TRUE(result->clean) << result->error;
      EXPECT_EQ(result->decode_failures, 0u);
      EXPECT_EQ(result->false_pairs, 0u);
      EXPECT_GT(result->reported_pairs, 0u);
      // Bootstrap-deterministic configs publish nothing.
      EXPECT_EQ(result->traffic.frames(net::FrameKind::kSummary), 0u);
      EXPECT_EQ(result->traffic.piggyback_bytes, 0u);
    }
  }

  // Reference observables: the coalescing-off simulator run.
  const auto& reference = off[0];
  for (std::size_t i = 0; i < off.size(); ++i) {
    for (const auto* result : {&off[i], &on[i]}) {
      EXPECT_EQ(result->pairs, reference.pairs)
          << "backend " << core::to_string(result->backend);
      EXPECT_EQ(result->epsilon, reference.epsilon);
      EXPECT_EQ(result->reported_pairs, reference.reported_pairs);
      EXPECT_EQ(result->exact_pairs, reference.exact_pairs);
      const bool socket_pair = result->backend != core::Backend::kSim;
      expect_same_logical_traffic(*result, reference,
                                  /*compare_control=*/false);
      if (socket_pair) {
        // FIN counts agree among the socket backends (the simulator's
        // drain needs no control frames).
        expect_same_logical_traffic(*result, off[1], /*compare_control=*/true);
      }
    }
  }

  // The physical layer is where batching is allowed — required, even — to
  // differ: coalesced socket runs must actually share headers.
  for (std::size_t i = 1; i < std::size(backends); ++i) {
    EXPECT_EQ(off[i].traffic.header_bytes_saved, 0u)
        << core::to_string(backends[i]);
    EXPECT_EQ(off[i].traffic.wire_records, off[i].traffic.total_frames())
        << core::to_string(backends[i]);
    EXPECT_GT(on[i].traffic.header_bytes_saved, 0u)
        << core::to_string(backends[i]);
    EXPECT_LT(on[i].traffic.wire_records, on[i].traffic.total_frames())
        << core::to_string(backends[i]);
  }
}

TEST(BatchedWireParity, RoundRobinTransparentAcrossBackends) {
  expect_batching_transparent(core::PolicyKind::kRoundRobin);
}

TEST(BatchedWireParity, BootstrapDfttTransparentAcrossBackends) {
  expect_batching_transparent(core::PolicyKind::kDftt);
}

}  // namespace
}  // namespace dsjoin
