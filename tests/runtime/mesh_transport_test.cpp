// MeshTransport tests: several single-process "daemons" each owning one
// end of the full mesh, exactly as the multi-process runtime uses it, but
// in-thread so the tests can reach into both ends.
#include "dsjoin/runtime/mesh_transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dsjoin::runtime {
namespace {

using namespace std::chrono_literals;

class Collector {
 public:
  void add(net::Frame&& frame) {
    std::lock_guard lock(mutex_);
    frames_.push_back(std::move(frame));
    cv_.notify_all();
  }

  bool wait_for(std::size_t count, std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] { return frames_.size() >= count; });
  }

  std::vector<net::Frame> take() {
    std::lock_guard lock(mutex_);
    return std::move(frames_);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<net::Frame> frames_;
};

net::Frame make_frame(net::NodeId from, net::NodeId to, std::uint32_t tag) {
  net::Frame f;
  f.from = from;
  f.to = to;
  f.kind = net::FrameKind::kTuple;
  f.piggyback_bytes = tag;
  f.payload.assign(16, static_cast<std::uint8_t>(tag));
  return f;
}

// Binds one ephemeral listener per node, builds the endpoint list, and
// forms all meshes concurrently (each node's connect_mesh both dials and
// accepts, so they must run in parallel — exactly like real daemons).
std::vector<std::unique_ptr<MeshTransport>> make_meshes(std::size_t nodes) {
  std::vector<net::UniqueFd> listeners;
  std::vector<net::Endpoint> endpoints;
  for (std::size_t i = 0; i < nodes; ++i) {
    auto listener = net::tcp_listen(0, 16);
    if (!listener.is_ok()) throw std::runtime_error("tcp_listen failed");
    auto port = net::bound_port(listener.value().get());
    if (!port.is_ok()) throw std::runtime_error("bound_port failed");
    endpoints.push_back({"127.0.0.1", port.value()});
    listeners.push_back(std::move(listener).value());
  }
  std::vector<std::unique_ptr<MeshTransport>> meshes;
  for (std::size_t i = 0; i < nodes; ++i) {
    meshes.push_back(std::make_unique<MeshTransport>(
        static_cast<net::NodeId>(i), nodes, std::move(listeners[i]),
        endpoints));
  }
  return meshes;
}

std::vector<common::Status> connect_all(
    std::vector<std::unique_ptr<MeshTransport>>& meshes) {
  std::vector<common::Status> statuses(meshes.size());
  std::vector<std::thread> threads;
  threads.reserve(meshes.size());
  for (std::size_t i = 0; i < meshes.size(); ++i) {
    threads.emplace_back(
        [&, i] { statuses[i] = meshes[i]->connect_mesh(); });
  }
  for (auto& t : threads) t.join();
  return statuses;
}

TEST(MeshTransport, FormsAndDeliversAllPairs) {
  constexpr std::size_t kNodes = 3;
  auto meshes = make_meshes(kNodes);
  std::vector<Collector> collectors(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    meshes[i]->register_handler(static_cast<net::NodeId>(i),
                                [&collectors, i](net::Frame&& f) {
                                  collectors[i].add(std::move(f));
                                });
  }
  for (const auto& status : connect_all(meshes)) {
    ASSERT_TRUE(status.is_ok()) << status.to_string();
  }
  for (net::NodeId from = 0; from < kNodes; ++from) {
    for (net::NodeId to = 0; to < kNodes; ++to) {
      if (from == to) continue;
      ASSERT_TRUE(meshes[from]->send(make_frame(from, to, from * 10 + to)));
    }
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(collectors[i].wait_for(kNodes - 1, 5000ms)) << "node " << i;
    for (const auto& f : collectors[i].take()) {
      EXPECT_EQ(f.to, i);
      EXPECT_EQ(f.piggyback_bytes, f.from * 10 + i);
    }
    // Each node sent kNodes - 1 frames; counters are per-process (self).
    EXPECT_EQ(meshes[i]->stats_snapshot().total_frames(), kNodes - 1);
  }
  for (auto& mesh : meshes) mesh->shutdown();
}

TEST(MeshTransport, PreservesPerLinkOrder) {
  auto meshes = make_meshes(2);
  Collector at1;
  meshes[0]->register_handler(0, [](net::Frame&&) {});
  meshes[1]->register_handler(1,
                              [&](net::Frame&& f) { at1.add(std::move(f)); });
  for (const auto& status : connect_all(meshes)) {
    ASSERT_TRUE(status.is_ok()) << status.to_string();
  }
  constexpr std::uint32_t kCount = 300;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(meshes[0]->send(make_frame(0, 1, i)));
  }
  ASSERT_TRUE(at1.wait_for(kCount, 10000ms));
  const auto frames = at1.take();
  for (std::uint32_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(frames[i].piggyback_bytes, i);
  }
  for (auto& mesh : meshes) mesh->shutdown();
}

TEST(MeshTransport, RejectsBadAddresses) {
  auto meshes = make_meshes(2);
  meshes[0]->register_handler(0, [](net::Frame&&) {});
  meshes[1]->register_handler(1, [](net::Frame&&) {});
  for (const auto& status : connect_all(meshes)) {
    ASSERT_TRUE(status.is_ok()) << status.to_string();
  }
  // Out-of-range peer, send-to-self, and impersonation all rejected.
  EXPECT_EQ(meshes[0]->send(make_frame(0, 7, 1)).code(),
            common::ErrorCode::kInvalidArgument);
  EXPECT_EQ(meshes[0]->send(make_frame(0, 0, 1)).code(),
            common::ErrorCode::kInvalidArgument);
  EXPECT_EQ(meshes[0]->send(make_frame(1, 0, 1)).code(),
            common::ErrorCode::kInvalidArgument);
  for (auto& mesh : meshes) mesh->shutdown();
}

TEST(MeshTransport, PeerShutdownFiresPeerDownAndDegrades) {
  constexpr std::size_t kNodes = 3;
  auto meshes = make_meshes(kNodes);
  std::vector<Collector> collectors(kNodes);
  std::mutex down_mutex;
  std::condition_variable down_cv;
  std::vector<std::vector<net::NodeId>> downs(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    meshes[i]->register_handler(static_cast<net::NodeId>(i),
                                [&collectors, i](net::Frame&& f) {
                                  collectors[i].add(std::move(f));
                                });
    meshes[i]->set_peer_down([&, i](net::NodeId peer) {
      std::lock_guard lock(down_mutex);
      downs[i].push_back(peer);
      down_cv.notify_all();
    });
  }
  for (const auto& status : connect_all(meshes)) {
    ASSERT_TRUE(status.is_ok()) << status.to_string();
  }

  // Node 2 "dies": its sockets close, survivors see EOF on its links.
  meshes[2]->shutdown();
  {
    std::unique_lock lock(down_mutex);
    ASSERT_TRUE(down_cv.wait_for(lock, 5s, [&] {
      return downs[0].size() >= 1 && downs[1].size() >= 1;
    }));
    EXPECT_EQ(downs[0][0], 2u);
    EXPECT_EQ(downs[1][0], 2u);
  }

  // Sends to the dead peer fail as kUnavailable, and the survivors'
  // link keeps working — the graceful-degradation contract.
  EXPECT_FALSE(meshes[0]->peer_alive(2));
  EXPECT_EQ(meshes[0]->send(make_frame(0, 2, 1)).code(),
            common::ErrorCode::kUnavailable);
  ASSERT_TRUE(meshes[0]->send(make_frame(0, 1, 42)));
  ASSERT_TRUE(collectors[1].wait_for(1, 5000ms));
  EXPECT_EQ(collectors[1].take()[0].piggyback_bytes, 42u);

  meshes[0]->shutdown();
  meshes[1]->shutdown();
}

TEST(MeshTransport, MarkPeerDeadStopsSendsWithoutCallback) {
  auto meshes = make_meshes(2);
  meshes[0]->register_handler(0, [](net::Frame&&) {});
  meshes[1]->register_handler(1, [](net::Frame&&) {});
  for (const auto& status : connect_all(meshes)) {
    ASSERT_TRUE(status.is_ok()) << status.to_string();
  }
  ASSERT_TRUE(meshes[0]->peer_alive(1));
  meshes[0]->mark_peer_dead(1);
  EXPECT_FALSE(meshes[0]->peer_alive(1));
  EXPECT_EQ(meshes[0]->send(make_frame(0, 1, 1)).code(),
            common::ErrorCode::kUnavailable);
  for (auto& mesh : meshes) mesh->shutdown();
}

TEST(MeshTransport, WireFormatMatchesTcpTransportCodec) {
  // A frame encoded by the shared codec and pushed through a mesh link
  // arrives bit-identical — payload, kind, piggyback and addressing.
  auto meshes = make_meshes(2);
  Collector at1;
  meshes[0]->register_handler(0, [](net::Frame&&) {});
  meshes[1]->register_handler(1,
                              [&](net::Frame&& f) { at1.add(std::move(f)); });
  for (const auto& status : connect_all(meshes)) {
    ASSERT_TRUE(status.is_ok()) << status.to_string();
  }
  net::Frame frame;
  frame.from = 0;
  frame.to = 1;
  frame.kind = net::FrameKind::kSummary;
  frame.piggyback_bytes = 99;
  frame.payload = {0x00, 0xff, 0x10, 0x20, 0x30};
  ASSERT_TRUE(meshes[0]->send(net::Frame(frame)));
  ASSERT_TRUE(at1.wait_for(1, 5000ms));
  const auto got = at1.take();
  EXPECT_EQ(got[0].kind, net::FrameKind::kSummary);
  EXPECT_EQ(got[0].piggyback_bytes, 99u);
  EXPECT_EQ(got[0].payload, frame.payload);
  for (auto& mesh : meshes) mesh->shutdown();
}

}  // namespace
}  // namespace dsjoin::runtime
