// End-to-end runtime tests: the full coordinator/daemon protocol with
// daemons on threads (run_local) measured against the in-process
// TcpTransport baseline (run_inprocess_tcp). The discovered-pair set is
// order-insensitive for deterministic routing with full drain, so the two
// modes must agree exactly — pair count, epsilon, and zero false pairs.
#include "dsjoin/runtime/local.hpp"

#include <gtest/gtest.h>

namespace dsjoin::runtime {
namespace {

core::SystemConfig test_config(core::PolicyKind policy) {
  core::SystemConfig config;
  config.nodes = 3;
  config.seed = 7;
  config.workload = "ZIPF";
  config.policy = policy;
  config.tuples_per_node = 100;
  config.arrivals_per_second = 50.0;
  config.join_half_width_s = 2.0;
  config.dft_window = 256;
  config.kappa = 32.0;
  config.summary_epoch_tuples = 64;
  return config;
}

TEST(RuntimeLocal, RoundRobinMatchesInProcessBaseline) {
  const auto config = test_config(core::PolicyKind::kRoundRobin);
  const RunReport baseline = run_inprocess_tcp(config);
  ASSERT_TRUE(baseline.clean) << baseline.error;
  EXPECT_EQ(baseline.false_pairs, 0u);
  EXPECT_GT(baseline.exact_pairs, 0u);

  const RunReport distributed = run_local(config);
  ASSERT_TRUE(distributed.clean) << distributed.error;
  EXPECT_EQ(distributed.nodes_admitted, config.nodes);
  EXPECT_EQ(distributed.nodes_failed, 0u);
  EXPECT_EQ(distributed.total_arrivals,
            std::uint64_t{2} * config.nodes * config.tuples_per_node);
  EXPECT_EQ(distributed.false_pairs, 0u);

  // The acceptance criterion: the distributed protocol reproduces the
  // in-process transport's result exactly.
  EXPECT_EQ(distributed.exact_pairs, baseline.exact_pairs);
  EXPECT_EQ(distributed.reported_pairs, baseline.reported_pairs);
  EXPECT_DOUBLE_EQ(distributed.epsilon, baseline.epsilon);
}

TEST(RuntimeLocal, BroadcastPolicyIsExact) {
  // BASE broadcasts every tuple to every peer: nothing can be missed, so
  // the distributed run must report epsilon exactly zero.
  const auto config = test_config(core::PolicyKind::kBase);
  const RunReport report = run_local(config);
  ASSERT_TRUE(report.clean) << report.error;
  EXPECT_EQ(report.nodes_failed, 0u);
  EXPECT_EQ(report.false_pairs, 0u);
  EXPECT_EQ(report.reported_pairs, report.exact_pairs);
  EXPECT_DOUBLE_EQ(report.epsilon, 0.0);
}

TEST(RuntimeLocal, RunLocalIsRepeatable) {
  // Two runs of the same config agree with each other (determinism of the
  // schedule + order-insensitivity of the pair set across real-socket
  // timing variation).
  const auto config = test_config(core::PolicyKind::kRoundRobin);
  const RunReport a = run_local(config);
  const RunReport b = run_local(config);
  ASSERT_TRUE(a.clean) << a.error;
  ASSERT_TRUE(b.clean) << b.error;
  EXPECT_EQ(a.reported_pairs, b.reported_pairs);
  EXPECT_EQ(a.exact_pairs, b.exact_pairs);
  EXPECT_DOUBLE_EQ(a.epsilon, b.epsilon);
}

TEST(RuntimeLocal, VerifyOffSkipsOracle) {
  auto config = test_config(core::PolicyKind::kRoundRobin);
  LocalOptions options;
  options.verify = false;
  const RunReport report = run_local(config, options);
  ASSERT_TRUE(report.clean) << report.error;
  EXPECT_GT(report.reported_pairs, 0u);  // dedup still runs
  EXPECT_EQ(report.exact_pairs, 0u);     // oracle skipped
  EXPECT_EQ(report.false_pairs, 0u);
  EXPECT_DOUBLE_EQ(report.epsilon, 0.0);
}

TEST(RuntimeLocal, TwoNodeMinimumWorks) {
  auto config = test_config(core::PolicyKind::kRoundRobin);
  config.nodes = 2;
  const RunReport report = run_local(config);
  ASSERT_TRUE(report.clean) << report.error;
  EXPECT_EQ(report.nodes_admitted, 2u);
  EXPECT_EQ(report.false_pairs, 0u);
}

}  // namespace
}  // namespace dsjoin::runtime
