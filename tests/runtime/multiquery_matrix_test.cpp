// Mixed-policy multi-query matrix (DESIGN.md §15).
//
// One run serves four heterogeneous queries — {BASE, RR, DFTT, SMPL} with
// distinct window half-widths and throttles — and the per-query outcomes
// are pinned across the three backends and both coalescing settings:
//
//   * every query's globally deduplicated pair set is element-wise
//     identical on sim, tcp-inprocess and multiprocess;
//   * per-query reported/exact counts sum to the run aggregates;
//   * no query reports a false pair against its own window.
//
// This is the multi-query extension of BackendParityMatrix: the stamped
// summary plane, the query-scope wire wrappers and the per-tuple query
// masks must all survive coalesced socket transport byte-exactly, or a
// query's routing state diverges and the pair sets differ.
//
// The suite forks the multiprocess backend, so it is excluded from the
// TSan job (which cannot follow forks), like BackendParityMatrix.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dsjoin/core/config.hpp"
#include "dsjoin/core/experiment.hpp"
#include "dsjoin/runtime/engine.hpp"

namespace dsjoin {
namespace {

core::SystemConfig mixed_config(std::uint32_t coalesce_frames) {
  core::SystemConfig config;
  config.nodes = 3;
  config.seed = 11;
  config.workload = "ZIPF";
  config.tuples_per_node = 100;
  config.arrivals_per_second = 50.0;
  config.join_half_width_s = 2.0;
  config.dft_window = 256;
  config.kappa = 32.0;
  config.summary_epoch_tuples = 64;
  config.max_backlog_s = 0.0;
  config.coalesce_frames = coalesce_frames;

  const struct {
    core::PolicyKind policy;
    double throttle;
    double half_width_s;
  } kQueries[] = {
      {core::PolicyKind::kBase, 0.0, 1.0},
      {core::PolicyKind::kRoundRobin, 0.5, 2.0},
      {core::PolicyKind::kDftt, 0.5, 3.0},
      {core::PolicyKind::kSample, 0.7, 1.5},
  };
  std::uint32_t id = 0;
  for (const auto& q : kQueries) {
    core::QuerySpec spec;
    spec.id = id++;
    spec.policy = q.policy;
    spec.throttle = q.throttle;
    spec.join_half_width_s = q.half_width_s;
    config.queries.push_back(spec);
  }
  return config;
}

core::ExperimentResult run_backend(const core::SystemConfig& config,
                                   core::Backend backend) {
  runtime::EngineOptions options;
  options.backend = backend;
  return runtime::run_experiment(config, options);
}

class MultiQueryBackendMatrix : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(MultiQueryBackendMatrix, MixedPoliciesPinnedAcrossBackends) {
  const auto config = mixed_config(GetParam());
  const auto sim = run_backend(config, core::Backend::kSim);
  const auto tcp = run_backend(config, core::Backend::kTcpInprocess);
  const auto multi = run_backend(config, core::Backend::kMultiprocess);

  for (const auto* result : {&sim, &tcp, &multi}) {
    ASSERT_TRUE(result->clean) << result->error;
    EXPECT_EQ(result->nodes_failed, 0u);
    EXPECT_EQ(result->decode_failures, 0u);
    EXPECT_EQ(result->late_summaries, 0u);
    EXPECT_EQ(result->false_pairs, 0u);
    ASSERT_EQ(result->per_query.size(), config.queries.size());
    std::uint64_t reported_sum = 0;
    std::uint64_t exact_sum = 0;
    for (const auto& query : result->per_query) {
      EXPECT_EQ(query.false_pairs, 0u) << "query " << query.query_id;
      EXPECT_GE(query.epsilon, 0.0) << "query " << query.query_id;
      EXPECT_LE(query.epsilon, 1.0) << "query " << query.query_id;
      reported_sum += query.reported_pairs;
      exact_sum += query.exact_pairs;
    }
    EXPECT_EQ(reported_sum, result->reported_pairs);
    EXPECT_EQ(exact_sum, result->exact_pairs);
  }

  // BASE (query 0) is the exact corner: no misses against its own window.
  for (const auto* result : {&sim, &tcp, &multi}) {
    EXPECT_EQ(result->per_query[0].epsilon, 0.0);
    EXPECT_GT(result->per_query[0].reported_pairs, 0u);
  }

  // The cross-backend pin: element-wise identical per-query pair sets.
  for (std::size_t q = 0; q < config.queries.size(); ++q) {
    EXPECT_EQ(sim.per_query[q].pairs, tcp.per_query[q].pairs)
        << "query " << q << " sim vs tcp";
    EXPECT_EQ(sim.per_query[q].pairs, multi.per_query[q].pairs)
        << "query " << q << " sim vs multiprocess";
    EXPECT_EQ(sim.per_query[q].exact_pairs, tcp.per_query[q].exact_pairs);
    EXPECT_EQ(sim.per_query[q].exact_pairs, multi.per_query[q].exact_pairs);
    EXPECT_EQ(sim.per_query[q].epsilon, tcp.per_query[q].epsilon);
    EXPECT_EQ(sim.per_query[q].epsilon, multi.per_query[q].epsilon);
  }
  EXPECT_EQ(sim.pairs, tcp.pairs);
  EXPECT_EQ(sim.pairs, multi.pairs);
}

INSTANTIATE_TEST_SUITE_P(Coalescing, MultiQueryBackendMatrix,
                         ::testing::Values(1u, 32u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return i.param == 1 ? "PerFrame" : "Coalesced32";
                         });

}  // namespace
}  // namespace dsjoin
