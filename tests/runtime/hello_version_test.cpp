// Protocol-version fail-fast: a coordinator and daemon built from
// different protocol revisions must discover the mismatch at HELLO — the
// first message either side sends — and both fail with a clear error,
// instead of the daemon blocking on a CONFIG that will never come while
// the coordinator burns its admission budget.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "dsjoin/net/channel.hpp"
#include "dsjoin/runtime/coordinator.hpp"
#include "dsjoin/runtime/daemon.hpp"

namespace dsjoin::runtime {
namespace {

CoordinatorOptions small_cluster_options() {
  CoordinatorOptions options;
  options.port = 0;
  options.config.nodes = 2;
  options.config.tuples_per_node = 10;
  options.admit_timeout_s = 30.0;
  return options;
}

TEST(HelloVersion, CoordinatorRejectsStaleDaemonWithByeAndReason) {
  Coordinator coordinator(small_cluster_options());
  RunReport report;
  std::thread runner([&] { report = coordinator.run(); });

  // Speak the previous protocol revision by hand.
  auto fd = net::tcp_connect({"127.0.0.1", coordinator.port()});
  ASSERT_TRUE(fd.is_ok()) << fd.status().to_string();
  net::MsgSocket control(std::move(fd).value());
  HelloMsg hello;
  hello.protocol = kProtocolVersion - 1;
  hello.data_endpoint = {"127.0.0.1", 12345};
  ASSERT_TRUE(control
                  .send_msg(static_cast<std::uint8_t>(ControlType::kHello),
                            hello.encode())
                  .is_ok());

  // The coordinator must answer with BYE carrying the reason — not drop
  // the socket silently, not stall until the admission timeout.
  auto reply = control.recv_msg(10.0);
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(static_cast<ControlType>(reply.value().type), ControlType::kBye);
  const std::string reason(reply.value().payload.begin(),
                           reply.value().payload.end());
  EXPECT_NE(reason.find("protocol mismatch"), std::string::npos) << reason;
  control.close();

  runner.join();
  EXPECT_FALSE(report.clean);
  EXPECT_NE(report.error.find("protocol mismatch"), std::string::npos)
      << report.error;
}

TEST(HelloVersion, DaemonSurfacesRejectionReasonFromBye) {
  // Fake coordinator: accept the daemon's HELLO, reject it with BYE the way
  // a version-skewed coordinator would.
  auto listener = net::tcp_listen(0, 4);
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();
  auto port = net::bound_port(listener.value().get());
  ASSERT_TRUE(port.is_ok());

  const std::string reason = "protocol mismatch: daemon speaks v3, we v4";
  std::thread rejecter([&] {
    auto fd = net::tcp_accept(listener.value().get(), 10.0);
    if (!fd.is_ok()) return;
    net::MsgSocket control(std::move(fd).value());
    auto hello = control.recv_msg(5.0);
    if (!hello.is_ok()) return;
    std::vector<std::uint8_t> payload(reason.begin(), reason.end());
    (void)control.send_msg(static_cast<std::uint8_t>(ControlType::kBye),
                           payload);
    control.close();
  });

  DaemonOptions options;
  options.coordinator = {"127.0.0.1", port.value()};
  options.connect_timeout_s = 10.0;
  NodeDaemon daemon(options);
  const auto status = daemon.run();
  rejecter.join();

  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), common::ErrorCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("protocol mismatch"), std::string::npos)
      << status.to_string();
}

}  // namespace
}  // namespace dsjoin::runtime
