// Multi-process integration tests: real dsjoin_coord + dsjoin_noded
// processes over loopback, driven via fork/exec. Two contracts:
//
//   1. A 4-daemon distributed run reproduces the in-process TcpTransport
//      baseline exactly (deduplicated pair count and epsilon) — the
//      runtime's acceptance criterion.
//   2. SIGKILLing one daemon mid-stream degrades the run instead of
//      wrecking it: the coordinator and the survivors exit cleanly, no
//      false pairs are reported, and epsilon is honest about the hole.
//
// Binary paths come from the build system (DSJOIN_COORD_BIN /
// DSJOIN_NODED_BIN compile definitions); CI filters these cases with
// --gtest_filter='Multiprocess*'.
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dsjoin/runtime/local.hpp"

namespace dsjoin::runtime {
namespace {

using namespace std::chrono_literals;

// The one experiment both tests run; mirrors run_inprocess_tcp below.
core::SystemConfig experiment_config() {
  core::SystemConfig config;
  config.nodes = 4;
  config.seed = 7;
  config.workload = "ZIPF";
  config.policy = core::PolicyKind::kRoundRobin;
  config.tuples_per_node = 250;
  config.arrivals_per_second = 50.0;
  config.join_half_width_s = 2.0;
  return config;
}

std::vector<std::string> coord_args(const std::string& port_file) {
  return {DSJOIN_COORD_BIN,   "--port",      "0",
          "--port-file",      port_file,     "--nodes",
          "4",                "--policy",    "RR",
          "--workload",       "ZIPF",        "--tuples",
          "250",              "--rate",      "50",
          "--half-width",     "2.0",         "--seed",
          "7",                "--admit-timeout", "60"};
}

/// fork/exec with stdout redirected to `stdout_path` (empty = inherit).
pid_t spawn(const std::vector<std::string>& args,
            const std::string& stdout_path) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or -1, asserted by callers)

  if (!stdout_path.empty()) {
    const int fd =
        ::open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::close(fd);
    }
  }
  ::execv(argv[0], argv.data());
  std::perror("execv");
  ::_exit(127);
}

/// waitpid with a deadline; SIGKILLs and fails the test on expiry so a
/// wedged child can never hang the suite.
int wait_with_timeout(pid_t pid, std::chrono::seconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    int status = 0;
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid) return status;
    if (got < 0) return -1;
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      ADD_FAILURE() << "process " << pid << " hit the " << timeout.count()
                    << "s timeout and was killed";
      return status;
    }
    std::this_thread::sleep_for(20ms);
  }
}

/// Polls `path` until the coordinator publishes its port (atomic rename).
std::uint16_t read_port_file(const std::string& path,
                             std::chrono::seconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    unsigned port = 0;
    if (in && (in >> port) && port > 0 && port < 65536) {
      return static_cast<std::uint16_t>(port);
    }
    std::this_thread::sleep_for(20ms);
  }
  return 0;
}

/// Parsed `REPORT key=value ...` line from the coordinator's stdout.
struct Report {
  bool found = false;
  bool clean = false;
  std::uint32_t nodes = 0;
  std::uint32_t failed = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t exact = 0;
  std::uint64_t reported = 0;
  std::uint64_t false_pairs = 0;
  double epsilon = -1.0;
};

Report parse_report(const std::string& stdout_path) {
  Report report;
  std::ifstream in(stdout_path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("REPORT ", 0) != 0) continue;
    report.found = true;
    std::istringstream fields(line.substr(7));
    std::string field;
    while (fields >> field) {
      const auto eq = field.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "clean") report.clean = value == "1";
      else if (key == "nodes") report.nodes = std::stoul(value);
      else if (key == "failed") report.failed = std::stoul(value);
      else if (key == "arrivals") report.arrivals = std::stoull(value);
      else if (key == "exact") report.exact = std::stoull(value);
      else if (key == "reported") report.reported = std::stoull(value);
      else if (key == "false") report.false_pairs = std::stoull(value);
      else if (key == "epsilon") report.epsilon = std::stod(value);
    }
  }
  return report;
}

/// Unique scratch directory per test (parallel ctest processes).
class ScratchDir {
 public:
  ScratchDir() {
    char tmpl[] = "/tmp/dsjoin_mp_XXXXXX";
    dir_ = ::mkdtemp(tmpl);
    EXPECT_FALSE(dir_.empty());
  }
  ~ScratchDir() {
    if (dir_.empty()) return;
    for (const auto& f : files_) ::unlink(f.c_str());
    ::rmdir(dir_.c_str());
  }
  std::string path(const std::string& name) {
    files_.push_back(dir_ + "/" + name);
    return files_.back();
  }

 private:
  std::string dir_;
  std::vector<std::string> files_;
};

std::vector<std::string> noded_args(std::uint16_t port, bool pace) {
  std::vector<std::string> args = {DSJOIN_NODED_BIN, "--coord-port",
                                   std::to_string(port)};
  if (pace) args.push_back("--pace");
  return args;
}

TEST(Multiprocess, FourDaemonRunMatchesInProcessBaseline) {
  // Ground truth from the in-process transport, same config and seed.
  const RunReport baseline = run_inprocess_tcp(experiment_config());
  ASSERT_TRUE(baseline.clean) << baseline.error;
  ASSERT_EQ(baseline.false_pairs, 0u);
  ASSERT_GT(baseline.exact_pairs, 0u);

  ScratchDir scratch;
  const std::string port_file = scratch.path("port");
  const std::string coord_out = scratch.path("coord.out");

  const pid_t coord = spawn(coord_args(port_file), coord_out);
  ASSERT_GT(coord, 0);
  const std::uint16_t port = read_port_file(port_file, 15s);
  if (port == 0) {
    ::kill(coord, SIGKILL);
    ::waitpid(coord, nullptr, 0);
    FAIL() << "coordinator never published its control port";
  }

  std::vector<pid_t> daemons;
  for (int i = 0; i < 4; ++i) {
    const pid_t pid = spawn(noded_args(port, /*pace=*/false), "");
    ASSERT_GT(pid, 0);
    daemons.push_back(pid);
  }

  const int coord_status = wait_with_timeout(coord, 120s);
  ASSERT_TRUE(WIFEXITED(coord_status));
  EXPECT_EQ(WEXITSTATUS(coord_status), 0);
  for (const pid_t pid : daemons) {
    const int status = wait_with_timeout(pid, 30s);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  const Report report = parse_report(coord_out);
  ASSERT_TRUE(report.found) << "no REPORT line in coordinator output";
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.nodes, 4u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.arrivals, 2000u);
  EXPECT_EQ(report.false_pairs, 0u);

  // The acceptance criterion: four real processes over loopback reproduce
  // the single-process transport exactly.
  EXPECT_EQ(report.exact, baseline.exact_pairs);
  EXPECT_EQ(report.reported, baseline.reported_pairs);
  EXPECT_NEAR(report.epsilon, baseline.epsilon, 1e-5);  // %.6f print precision
}

TEST(Multiprocess, SigkilledDaemonDegradesGracefully) {
  ScratchDir scratch;
  const std::string port_file = scratch.path("port");
  const std::string coord_out = scratch.path("coord.out");

  const pid_t coord = spawn(coord_args(port_file), coord_out);
  ASSERT_GT(coord, 0);
  const std::uint16_t port = read_port_file(port_file, 15s);
  if (port == 0) {
    ::kill(coord, SIGKILL);
    ::waitpid(coord, nullptr, 0);
    FAIL() << "coordinator never published its control port";
  }

  // --pace keeps the ingest phase open (~5s of virtual time) so the kill
  // lands mid-stream, not after the work is already done.
  std::vector<pid_t> daemons;
  for (int i = 0; i < 4; ++i) {
    const pid_t pid = spawn(noded_args(port, /*pace=*/true), "");
    ASSERT_GT(pid, 0);
    daemons.push_back(pid);
  }

  std::this_thread::sleep_for(1500ms);
  const pid_t victim = daemons[1];
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  const int coord_status = wait_with_timeout(coord, 120s);
  ASSERT_TRUE(WIFEXITED(coord_status));
  // Degraded, not failed: the coordinator still exits 0.
  EXPECT_EQ(WEXITSTATUS(coord_status), 0);

  for (const pid_t pid : daemons) {
    const int status = wait_with_timeout(pid, 30s);
    if (pid == victim) {
      ASSERT_TRUE(WIFSIGNALED(status));
      EXPECT_EQ(WTERMSIG(status), SIGKILL);
    } else {
      ASSERT_TRUE(WIFEXITED(status));
      EXPECT_EQ(WEXITSTATUS(status), 0) << "survivor " << pid;
    }
  }

  const Report report = parse_report(coord_out);
  ASSERT_TRUE(report.found) << "no REPORT line in coordinator output";
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.nodes, 4u);
  EXPECT_EQ(report.failed, 1u);
  // Graceful degradation: partial coverage is honest (epsilon > 0 — the
  // dead node's local pairs are unrecoverable), and nothing is invented.
  EXPECT_EQ(report.false_pairs, 0u);
  EXPECT_GT(report.epsilon, 0.0);
  EXPECT_LE(report.epsilon, 1.0);
  EXPECT_LT(report.reported, report.exact);
}

}  // namespace
}  // namespace dsjoin::runtime
