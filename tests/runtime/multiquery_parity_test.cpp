// Multi-query serving parity (DESIGN.md §15).
//
// Two contracts pinned here:
//
//   1. N identical registered queries behave like N copies of the
//      single-query baseline: each query's globally deduplicated pair set,
//      reported/exact counts and epsilon equal the baseline run's, on
//      every backend. This is the load-bearing consequence of per-query
//      routing RNG seeds NOT mixing in the query id — registering the same
//      query twice must not perturb either copy.
//
//   2. Per-query counters sum to the run aggregates. Frame attribution is
//      exclusive by construction (every tuple/result/summary frame is
//      attributed to exactly one query), so the sums are exact, not
//      approximate.
//
// MultiQuerySim additionally pins worker-count independence: the sharded
// per-tuple query evaluation is bit-identical for any --workers value.
//
// MultiQueryBackendParity forks the multiprocess backend and is excluded
// from the TSan job (like BackendParityMatrix); MultiQuerySim is
// simulator-only and runs everywhere.
#include <gtest/gtest.h>

#include <vector>

#include "dsjoin/core/config.hpp"
#include "dsjoin/core/experiment.hpp"
#include "dsjoin/core/system.hpp"
#include "dsjoin/runtime/engine.hpp"

namespace dsjoin {
namespace {

core::SystemConfig baseline_config() {
  core::SystemConfig config;
  config.nodes = 3;
  config.seed = 7;
  config.workload = "ZIPF";
  config.policy = core::PolicyKind::kDftt;
  config.tuples_per_node = 100;
  config.arrivals_per_second = 50.0;
  config.join_half_width_s = 2.0;
  config.dft_window = 256;
  config.kappa = 32.0;
  config.summary_epoch_tuples = 64;
  config.max_backlog_s = 0.0;  // keep streamed == materialized arrivals
  return config;
}

/// The baseline config with `count` identical copies of its query
/// registered explicitly.
core::SystemConfig replicated_config(std::size_t count) {
  auto config = baseline_config();
  for (std::size_t i = 0; i < count; ++i) {
    core::QuerySpec spec;
    spec.id = static_cast<std::uint32_t>(i);
    spec.policy = config.policy;
    spec.throttle = config.throttle;
    spec.join_half_width_s = config.join_half_width_s;
    config.queries.push_back(spec);
  }
  return config;
}

core::ExperimentResult run_backend(const core::SystemConfig& config,
                                   core::Backend backend) {
  runtime::EngineOptions options;
  options.backend = backend;
  return runtime::run_experiment(config, options);
}

void expect_matches_baseline(const core::ExperimentResult& multi,
                             const core::ExperimentResult& baseline,
                             std::size_t count) {
  ASSERT_EQ(multi.per_query.size(), count);
  ASSERT_EQ(baseline.per_query.size(), 1u);
  for (std::size_t q = 0; q < count; ++q) {
    const auto& query = multi.per_query[q];
    EXPECT_EQ(query.query_id, q);
    EXPECT_EQ(query.reported_pairs, baseline.reported_pairs) << "query " << q;
    EXPECT_EQ(query.exact_pairs, baseline.exact_pairs) << "query " << q;
    EXPECT_EQ(query.epsilon, baseline.epsilon) << "query " << q;
    EXPECT_EQ(query.pairs, baseline.pairs) << "query " << q;
  }
  // Aggregates are sums over queries; pairs stay the cross-query union,
  // which for identical queries is the baseline set.
  EXPECT_EQ(multi.reported_pairs, count * baseline.reported_pairs);
  EXPECT_EQ(multi.exact_pairs, count * baseline.exact_pairs);
  EXPECT_EQ(multi.pairs, baseline.pairs);
  EXPECT_EQ(multi.epsilon, baseline.epsilon);
  std::uint64_t reported_sum = 0;
  std::uint64_t exact_sum = 0;
  for (const auto& query : multi.per_query) {
    reported_sum += query.reported_pairs;
    exact_sum += query.exact_pairs;
  }
  EXPECT_EQ(reported_sum, multi.reported_pairs);
  EXPECT_EQ(exact_sum, multi.exact_pairs);
}

TEST(MultiQuerySim, IdenticalQueriesMatchSingleQueryBaseline) {
  const auto baseline = run_backend(baseline_config(), core::Backend::kSim);
  ASSERT_TRUE(baseline.clean) << baseline.error;
  ASSERT_GT(baseline.reported_pairs, 0u);
  const auto multi = run_backend(replicated_config(3), core::Backend::kSim);
  ASSERT_TRUE(multi.clean) << multi.error;
  expect_matches_baseline(multi, baseline, 3);
}

TEST(MultiQuerySim, PerQueryCountersSumToNodeAggregates) {
  core::DspSystem system(replicated_config(3));
  (void)system.run();
  for (net::NodeId id = 0; id < 3; ++id) {
    auto& node = system.node(id);
    ASSERT_EQ(node.query_count(), 3u);
    std::uint64_t received = 0;
    for (std::size_t q = 0; q < node.query_count(); ++q) {
      received += node.query_counters(q).received_tuples;
    }
    EXPECT_EQ(received, node.received_tuples()) << "node " << id;
  }
}

TEST(MultiQuerySim, WorkerCountDoesNotChangePerQueryResults) {
  auto serial_config = replicated_config(3);
  auto parallel_config = serial_config;
  parallel_config.worker_threads = 3;
  const auto serial = run_backend(serial_config, core::Backend::kSim);
  const auto parallel = run_backend(parallel_config, core::Backend::kSim);
  ASSERT_TRUE(serial.clean) << serial.error;
  ASSERT_TRUE(parallel.clean) << parallel.error;
  ASSERT_EQ(serial.per_query.size(), parallel.per_query.size());
  for (std::size_t q = 0; q < serial.per_query.size(); ++q) {
    EXPECT_EQ(serial.per_query[q].pairs, parallel.per_query[q].pairs);
    EXPECT_EQ(serial.per_query[q].reported_pairs,
              parallel.per_query[q].reported_pairs);
    EXPECT_EQ(serial.per_query[q].received_tuples,
              parallel.per_query[q].received_tuples);
    EXPECT_EQ(serial.per_query[q].forwarded_tuples,
              parallel.per_query[q].forwarded_tuples);
  }
  EXPECT_EQ(serial.pairs, parallel.pairs);
}

TEST(MultiQueryBackendParity, IdenticalQueriesMatchBaselineOnAllBackends) {
  const std::size_t count = 2;
  for (const auto backend :
       {core::Backend::kSim, core::Backend::kTcpInprocess,
        core::Backend::kMultiprocess}) {
    SCOPED_TRACE(core::to_string(backend));
    const auto baseline = run_backend(baseline_config(), backend);
    ASSERT_TRUE(baseline.clean) << baseline.error;
    const auto multi = run_backend(replicated_config(count), backend);
    ASSERT_TRUE(multi.clean) << multi.error;
    EXPECT_EQ(multi.false_pairs, 0u);
    expect_matches_baseline(multi, baseline, count);
  }
}

}  // namespace
}  // namespace dsjoin
