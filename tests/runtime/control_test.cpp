#include "dsjoin/runtime/control.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "dsjoin/core/metrics.hpp"

namespace dsjoin::runtime {
namespace {

TEST(ControlCodec, HelloRoundTrip) {
  HelloMsg msg;
  msg.protocol = kProtocolVersion;
  msg.data_endpoint = {"192.168.7.41", 45123};
  const auto bytes = msg.encode();
  const auto decoded = HelloMsg::decode(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().protocol, kProtocolVersion);
  EXPECT_EQ(decoded.value().data_endpoint, msg.data_endpoint);
}

TEST(ControlCodec, HelloRejectsTruncation) {
  const auto bytes = HelloMsg{}.encode();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto decoded =
        HelloMsg::decode(std::span(bytes.data(), cut));
    EXPECT_FALSE(decoded.is_ok()) << "prefix of " << cut << " bytes decoded";
  }
}

TEST(ControlCodec, ConfigRoundTripCarriesFullSystemConfig) {
  ConfigMsg msg;
  msg.node_id = 3;
  msg.config.nodes = 7;
  msg.config.seed = 0xfeedULL;
  msg.config.workload = "NWRK";
  msg.config.policy = core::PolicyKind::kBloom;
  msg.config.tuples_per_node = 12345;
  msg.config.arrivals_per_second = 33.5;
  msg.config.join_half_width_s = 4.25;
  msg.config.throttle = 0.75;
  msg.config.dft_window = 1024;
  msg.config.kappa = 128.0;
  msg.peers = {{"10.0.0.1", 1111}, {"10.0.0.2", 2222}, {"10.0.0.3", 3333}};
  msg.heartbeat_period_s = 0.5;
  msg.mesh_timeout_s = 12.0;

  const auto bytes = msg.encode();
  const auto decoded = ConfigMsg::decode(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  const ConfigMsg& got = decoded.value();
  EXPECT_EQ(got.node_id, 3u);
  EXPECT_EQ(got.config.nodes, 7u);
  EXPECT_EQ(got.config.seed, 0xfeedULL);
  EXPECT_EQ(got.config.workload, "NWRK");
  EXPECT_EQ(got.config.policy, core::PolicyKind::kBloom);
  EXPECT_EQ(got.config.tuples_per_node, 12345u);
  EXPECT_DOUBLE_EQ(got.config.arrivals_per_second, 33.5);
  EXPECT_DOUBLE_EQ(got.config.join_half_width_s, 4.25);
  EXPECT_DOUBLE_EQ(got.config.throttle, 0.75);
  EXPECT_EQ(got.config.dft_window, 1024u);
  EXPECT_DOUBLE_EQ(got.config.kappa, 128.0);
  ASSERT_EQ(got.peers.size(), 3u);
  EXPECT_EQ(got.peers[1], msg.peers[1]);
  EXPECT_DOUBLE_EQ(got.heartbeat_period_s, 0.5);
  EXPECT_DOUBLE_EQ(got.mesh_timeout_s, 12.0);
}

TEST(ControlCodec, ConfigRejectsEveryTruncation) {
  ConfigMsg msg;
  msg.peers = {{"127.0.0.1", 1}, {"127.0.0.1", 2}};
  const auto bytes = msg.encode();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto decoded = ConfigMsg::decode(std::span(bytes.data(), cut));
    EXPECT_FALSE(decoded.is_ok()) << "prefix of " << cut << " bytes decoded";
  }
}

TEST(ControlCodec, ConfigRejectsImplausiblePeerCount) {
  // Corrupt the peer count to a huge value: the decoder must reject it
  // instead of attempting a giant reserve. The count sits right after the
  // serialized config, so re-encode with zero peers and patch the u32.
  ConfigMsg msg;
  auto bytes = msg.encode();
  // Zero peers: the last 20 bytes are count(4) + two f64 knobs(16).
  ASSERT_GE(bytes.size(), 20u);
  const std::size_t count_at = bytes.size() - 20;
  const std::uint32_t huge = 0xffff0000u;
  std::memcpy(bytes.data() + count_at, &huge, sizeof(huge));
  const auto decoded = ConfigMsg::decode(bytes);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), common::ErrorCode::kDataLoss);
}

TEST(ControlCodec, HeartbeatRoundTrip) {
  HeartbeatMsg msg;
  msg.node_id = 9;
  msg.state = DaemonState::kDraining;
  msg.local_tuples = 4096;
  msg.pairs_discovered = 777;
  const auto decoded = HeartbeatMsg::decode(msg.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().node_id, 9u);
  EXPECT_EQ(decoded.value().state, DaemonState::kDraining);
  EXPECT_EQ(decoded.value().local_tuples, 4096u);
  EXPECT_EQ(decoded.value().pairs_discovered, 777u);
}

TEST(ControlCodec, HeartbeatRejectsOutOfRangeState) {
  HeartbeatMsg msg;
  auto bytes = msg.encode();
  bytes[4] = 0x2a;  // state byte follows the u32 node id
  const auto decoded = HeartbeatMsg::decode(bytes);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), common::ErrorCode::kDataLoss);
}

TEST(ControlCodec, MetricsReportRoundTrip) {
  MetricsReportMsg msg;
  msg.node_id = 2;
  msg.local_tuples = 500;
  msg.received_tuples = 321;
  msg.decode_failures = 1;
  net::Frame sample;
  sample.kind = net::FrameKind::kTuple;
  sample.payload.assign(26, 0);
  sample.piggyback_bytes = 12;
  msg.traffic.record(sample);
  msg.pairs = {{1, 2}, {3, 4}, {1000000007, 42}};

  const auto decoded = MetricsReportMsg::decode(msg.encode());
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  const MetricsReportMsg& got = decoded.value();
  EXPECT_EQ(got.node_id, 2u);
  EXPECT_EQ(got.local_tuples, 500u);
  EXPECT_EQ(got.received_tuples, 321u);
  EXPECT_EQ(got.decode_failures, 1u);
  EXPECT_EQ(got.traffic.frames(net::FrameKind::kTuple), 1u);
  EXPECT_EQ(got.traffic.piggyback_bytes, 12u);
  ASSERT_EQ(got.pairs.size(), 3u);
  EXPECT_EQ(got.pairs[2], (stream::ResultPair{1000000007, 42}));
}

TEST(ControlCodec, MetricsReportEncodeIsInsertionOrderIndependent) {
  // The wire report must be byte-identical no matter what order a node
  // discovered its pairs in: MetricsCollector::pairs() is pinned to sort
  // ascending by (r_id, s_id), and from_node_report carries that order
  // onto the wire unchanged. This is what makes coordinator-side metrics
  // (and the multiprocess golden runs) reproducible across schedules.
  const std::vector<stream::ResultPair> forward{{1, 9}, {2, 4}, {2, 7}, {5, 1}};
  core::MetricsCollector a;
  core::MetricsCollector b;
  a.set_node_count(1);
  b.set_node_count(1);
  for (const auto& pair : forward) a.record_pair(pair, 0, 0.0);
  for (auto it = forward.rbegin(); it != forward.rend(); ++it) {
    b.record_pair(*it, 0, 0.0);
  }
  EXPECT_EQ(a.pairs(), b.pairs());
  EXPECT_EQ(a.pairs(), forward);  // already in (r_id, s_id) order

  core::NodeReport report_a;
  report_a.pairs = a.pairs();
  core::NodeReport report_b;
  report_b.pairs = b.pairs();
  const auto bytes_a = MetricsReportMsg::from_node_report(report_a).encode();
  const auto bytes_b = MetricsReportMsg::from_node_report(report_b).encode();
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(ControlCodec, MetricsReportRejectsPairCountMismatch) {
  MetricsReportMsg msg;
  msg.pairs = {{1, 2}, {3, 4}};
  auto bytes = msg.encode();
  // The pair count is the u64 right before the 2 * 16 pair bytes.
  const std::size_t count_at = bytes.size() - 2 * 16 - 8;
  const std::uint64_t lying = 3;
  std::memcpy(bytes.data() + count_at, &lying, sizeof(lying));
  const auto decoded = MetricsReportMsg::decode(bytes);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), common::ErrorCode::kDataLoss);

  // Truncating mid-pair must fail the same way, not return fewer pairs.
  auto honest = msg.encode();
  honest.resize(honest.size() - 7);
  EXPECT_FALSE(MetricsReportMsg::decode(honest).is_ok());
}

TEST(ControlCodec, DrainRoundTripAndValidation) {
  DrainMsg msg;
  msg.dead_nodes = {1, 5, 9};
  const auto decoded = DrainMsg::decode(msg.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().dead_nodes, (std::vector<net::NodeId>{1, 5, 9}));

  const auto empty = DrainMsg::decode(DrainMsg{}.encode());
  ASSERT_TRUE(empty.is_ok());
  EXPECT_TRUE(empty.value().dead_nodes.empty());

  auto bytes = msg.encode();
  bytes.push_back(0);  // trailing garbage breaks count * 4 == remaining
  EXPECT_FALSE(DrainMsg::decode(bytes).is_ok());
}

TEST(ControlCodec, EndpointHelpersRoundTrip) {
  common::BufferWriter out(32);
  serialize_endpoint({"host.example", 65535}, out);
  const auto bytes = std::move(out).take();
  common::BufferReader in(bytes);
  const auto decoded = deserialize_endpoint(in);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().host, "host.example");
  EXPECT_EQ(decoded.value().port, 65535);
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(ControlCodec, ToStringCoversAllValues) {
  EXPECT_STREQ(to_string(ControlType::kHello), "HELLO");
  EXPECT_STREQ(to_string(ControlType::kBye), "BYE");
  EXPECT_STREQ(to_string(DaemonState::kJoining), "JOINING");
  EXPECT_STREQ(to_string(DaemonState::kDraining), "DRAINING");
}

}  // namespace
}  // namespace dsjoin::runtime
