// Cross-backend parity: the same SystemConfig run through the simulator,
// the in-process TCP harness, and the fork-based multiprocess driver must
// produce the identical experiment result.
//
// This is the contract the engine refactor exists to keep: the three
// backplanes share one NodeHost lifecycle, one ArrivalSource arrival truth
// and one result-assembly path, so for deterministic-routing policies
// (RR / BASE) with backpressure disabled they report the exact same pair
// set — not just statistically similar output. Note: these tests fork()
// (multiprocess backend), so they are filtered out of the TSan job next to
// Multiprocess.* for the same reason.
#include <gtest/gtest.h>

#include "dsjoin/core/experiment.hpp"
#include "dsjoin/core/system.hpp"
#include "dsjoin/runtime/engine.hpp"

namespace dsjoin {
namespace {

core::SystemConfig parity_config(core::PolicyKind policy) {
  core::SystemConfig config;
  config.nodes = 3;
  config.seed = 7;
  config.workload = "ZIPF";
  config.policy = policy;
  config.tuples_per_node = 100;
  config.arrivals_per_second = 50.0;
  config.join_half_width_s = 2.0;
  config.dft_window = 256;
  config.kappa = 32.0;
  config.summary_epoch_tuples = 64;
  // With backpressure off, the simulator's streamed arrivals equal the
  // materialized ArrivalSchedule the socket backends ingest (PR 1 pins
  // this bit-identically), so all backends see the same tuple sequence.
  config.max_backlog_s = 0.0;
  return config;
}

core::ExperimentResult run_backend(const core::SystemConfig& config,
                                   core::Backend backend) {
  runtime::EngineOptions options;
  options.backend = backend;
  return runtime::run_experiment(config, options);
}

void expect_parity(core::PolicyKind policy) {
  const auto config = parity_config(policy);
  const auto sim = run_backend(config, core::Backend::kSim);
  const auto tcp = run_backend(config, core::Backend::kTcpInprocess);
  const auto multi = run_backend(config, core::Backend::kMultiprocess);

  for (const auto* result : {&sim, &tcp, &multi}) {
    EXPECT_TRUE(result->clean) << result->error;
    EXPECT_EQ(result->error, "");
    EXPECT_EQ(result->nodes_admitted, config.nodes);
    EXPECT_EQ(result->nodes_failed, 0u);
    EXPECT_EQ(result->decode_failures, 0u);
    EXPECT_EQ(result->false_pairs, 0u);
    EXPECT_EQ(result->total_arrivals, 2 * config.nodes * config.tuples_per_node);
  }
  EXPECT_EQ(sim.backend, core::Backend::kSim);
  EXPECT_EQ(tcp.backend, core::Backend::kTcpInprocess);
  EXPECT_EQ(multi.backend, core::Backend::kMultiprocess);

  // The headline numbers must agree exactly, not approximately.
  EXPECT_EQ(sim.exact_pairs, tcp.exact_pairs);
  EXPECT_EQ(sim.exact_pairs, multi.exact_pairs);
  EXPECT_EQ(sim.reported_pairs, tcp.reported_pairs);
  EXPECT_EQ(sim.reported_pairs, multi.reported_pairs);
  EXPECT_EQ(sim.epsilon, tcp.epsilon);
  EXPECT_EQ(sim.epsilon, multi.epsilon);
  EXPECT_GT(sim.reported_pairs, 0u);
}

TEST(BackendParity, RoundRobinIdenticalAcrossBackends) {
  expect_parity(core::PolicyKind::kRoundRobin);
}

TEST(BackendParity, BaseIdenticalAcrossBackends) {
  expect_parity(core::PolicyKind::kBase);
}

TEST(BackendParity, SocketBackendsMeasureWallClockMakespan) {
  const auto config = parity_config(core::PolicyKind::kRoundRobin);
  const auto tcp = run_backend(config, core::Backend::kTcpInprocess);
  ASSERT_TRUE(tcp.clean) << tcp.error;
  // Wall-clock makespan: positive, and far below the ~4 s virtual-time
  // span of the schedule (50 tuples/s, 100 tuples, loopback runs fast).
  EXPECT_GT(tcp.makespan_s, 0.0);
  EXPECT_GT(tcp.results_per_second, 0.0);
}

TEST(BackendParity, BackendNamesRoundTrip) {
  for (const auto backend :
       {core::Backend::kSim, core::Backend::kTcpInprocess,
        core::Backend::kMultiprocess}) {
    const auto parsed = core::backend_from_string(core::to_string(backend));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), backend);
  }
  const auto bogus = core::backend_from_string("quantum");
  ASSERT_FALSE(bogus.is_ok());
  EXPECT_EQ(bogus.status().code(), common::ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace dsjoin
