// Cross-backend parity: the same SystemConfig run through the simulator,
// the in-process TCP harness, and the fork-based multiprocess driver must
// produce the identical experiment result.
//
// This is the contract the engine refactor exists to keep: the three
// backplanes share one NodeHost lifecycle, one ArrivalSource arrival truth
// and one result-assembly path. Since summary exchanges became virtual-time
// stamped (DESIGN.md §12), the contract covers EVERY policy — summary-driven
// routing included — because a summary's application point is a pure
// function of (stamp, config), not of transport latency. The matrix below
// pins it: {BASE, DFT, DFTT, BLOOM, SKCH, SMPL} × {sim, tcp-inprocess,
// multiprocess} × coalescing {off, on}, asserting identical pair sets,
// epsilon and logical traffic counters everywhere.
//
// Suites and sanitizer jobs: BackendParityMatrix covers all three backends
// and therefore fork()s — it is filtered out of the TSan job next to
// Multiprocess.*. SummarySyncParity runs the same matrix over the two
// in-process backends only, so the watermark handshake and the pending-
// summary store do get TSan coverage (the suite name deliberately does not
// start with "BackendParity": gtest filters treat '.' as a wildcard).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dsjoin/core/experiment.hpp"
#include "dsjoin/core/system.hpp"
#include "dsjoin/net/frame.hpp"
#include "dsjoin/runtime/engine.hpp"

namespace dsjoin {
namespace {

core::SystemConfig parity_config(core::PolicyKind policy) {
  core::SystemConfig config;
  config.nodes = 3;
  config.seed = 7;
  config.workload = "ZIPF";
  config.policy = policy;
  config.tuples_per_node = 100;
  config.arrivals_per_second = 50.0;
  config.join_half_width_s = 2.0;
  config.dft_window = 256;
  config.kappa = 32.0;
  config.summary_epoch_tuples = 64;
  // With backpressure off, the simulator's streamed arrivals equal the
  // materialized ArrivalSchedule the socket backends ingest (PR 1 pins
  // this bit-identically), so all backends see the same tuple sequence.
  config.max_backlog_s = 0.0;
  return config;
}

core::ExperimentResult run_backend(const core::SystemConfig& config,
                                   core::Backend backend) {
  runtime::EngineOptions options;
  options.backend = backend;
  return runtime::run_experiment(config, options);
}

void expect_parity(core::PolicyKind policy) {
  const auto config = parity_config(policy);
  const auto sim = run_backend(config, core::Backend::kSim);
  const auto tcp = run_backend(config, core::Backend::kTcpInprocess);
  const auto multi = run_backend(config, core::Backend::kMultiprocess);

  for (const auto* result : {&sim, &tcp, &multi}) {
    EXPECT_TRUE(result->clean) << result->error;
    EXPECT_EQ(result->error, "");
    EXPECT_EQ(result->nodes_admitted, config.nodes);
    EXPECT_EQ(result->nodes_failed, 0u);
    EXPECT_EQ(result->decode_failures, 0u);
    EXPECT_EQ(result->false_pairs, 0u);
    EXPECT_EQ(result->total_arrivals, 2 * config.nodes * config.tuples_per_node);
  }
  EXPECT_EQ(sim.backend, core::Backend::kSim);
  EXPECT_EQ(tcp.backend, core::Backend::kTcpInprocess);
  EXPECT_EQ(multi.backend, core::Backend::kMultiprocess);

  // The headline numbers must agree exactly, not approximately.
  EXPECT_EQ(sim.exact_pairs, tcp.exact_pairs);
  EXPECT_EQ(sim.exact_pairs, multi.exact_pairs);
  EXPECT_EQ(sim.reported_pairs, tcp.reported_pairs);
  EXPECT_EQ(sim.reported_pairs, multi.reported_pairs);
  EXPECT_EQ(sim.epsilon, tcp.epsilon);
  EXPECT_EQ(sim.epsilon, multi.epsilon);
  EXPECT_GT(sim.reported_pairs, 0u);
}

TEST(BackendParity, RoundRobinIdenticalAcrossBackends) {
  expect_parity(core::PolicyKind::kRoundRobin);
}

TEST(BackendParity, BaseIdenticalAcrossBackends) {
  expect_parity(core::PolicyKind::kBase);
}

// ---------------------------------------------------------------------------
// The full parity matrix.

struct MatrixCase {
  core::PolicyKind policy;
  std::uint32_t coalesce_frames;  ///< 1 = per-frame wire records, >1 = batched
  bool summary_driven;            ///< expects summary traffic on the wire
  std::uint32_t quant_bits = 0;   ///< summary_quant_bits (0 = f64 coefficients)
  std::uint32_t sample_capacity = 0;  ///< SMPL reservoir capacity (0 = auto)
};

constexpr MatrixCase kMatrix[] = {
    {core::PolicyKind::kBase, 1, false},
    {core::PolicyKind::kBase, 32, false},
    {core::PolicyKind::kDft, 1, true},
    {core::PolicyKind::kDft, 32, true},
    {core::PolicyKind::kDft, 32, true, 8},
    {core::PolicyKind::kDft, 32, true, 16},
    {core::PolicyKind::kDftt, 1, true},
    {core::PolicyKind::kDftt, 32, true},
    {core::PolicyKind::kDftt, 32, true, 16},
    {core::PolicyKind::kBloom, 1, true},
    {core::PolicyKind::kBloom, 32, true},
    {core::PolicyKind::kSketch, 1, true},
    {core::PolicyKind::kSketch, 32, true},
    {core::PolicyKind::kSample, 1, true},
    {core::PolicyKind::kSample, 32, true},
    {core::PolicyKind::kSample, 32, true, 0, 128},
};

std::string matrix_case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string name = std::string(core::to_string(info.param.policy)) +
                     (info.param.coalesce_frames > 1 ? "_Coalesced" : "_PerFrame");
  if (info.param.quant_bits != 0) {
    name += "_Quant" + std::to_string(info.param.quant_bits);
  }
  if (info.param.sample_capacity != 0) {
    name += "_Cap" + std::to_string(info.param.sample_capacity);
  }
  return name;
}

core::SystemConfig matrix_config(const MatrixCase& matrix_case) {
  auto config = parity_config(matrix_case.policy);
  config.coalesce_frames = matrix_case.coalesce_frames;
  config.summary_quant_bits = matrix_case.quant_bits;
  config.sample_capacity = matrix_case.sample_capacity;
  return config;
}

void expect_same_logical_traffic(const core::ExperimentResult& a,
                                 const core::ExperimentResult& b,
                                 bool compare_control) {
  using net::FrameKind;
  for (const auto kind : {FrameKind::kTuple, FrameKind::kSummary}) {
    EXPECT_EQ(a.traffic.frames(kind), b.traffic.frames(kind))
        << "frame kind " << static_cast<int>(kind);
    EXPECT_EQ(a.traffic.bytes(kind), b.traffic.bytes(kind))
        << "frame kind " << static_cast<int>(kind);
  }
  EXPECT_EQ(a.traffic.piggyback_bytes, b.traffic.piggyback_bytes);
  if (compare_control) {
    // Watermark announcements are quantized to the visibility grid, so
    // their count is chunking-invariant and must agree across the socket
    // backends exactly (the simulator sends no control frames at all).
    EXPECT_EQ(a.traffic.frames(FrameKind::kControl),
              b.traffic.frames(FrameKind::kControl));
  }
}

/// Runs one matrix cell over `backends` and checks every backend against
/// the simulator run element-wise. kResult frames are excluded throughout:
/// remote matches are grouped into result frames per delivery slice, so
/// their count (not their content) is interleaving-dependent.
void expect_matrix_parity(const MatrixCase& matrix_case,
                          const std::vector<core::Backend>& backends) {
  const auto config = matrix_config(matrix_case);
  std::vector<core::ExperimentResult> results;
  results.reserve(backends.size());
  for (const auto backend : backends) {
    results.push_back(run_backend(config, backend));
  }

  for (const auto& result : results) {
    ASSERT_TRUE(result.clean) << result.error;
    EXPECT_EQ(result.nodes_failed, 0u);
    EXPECT_EQ(result.decode_failures, 0u);
    EXPECT_EQ(result.false_pairs, 0u);
    // The virtual-time plane buffers early summaries; a late one would mean
    // a watermark cover was violated (or timed out) somewhere.
    EXPECT_EQ(result.late_summaries, 0u)
        << core::to_string(result.backend);
    EXPECT_EQ(result.total_arrivals,
              2 * config.nodes * config.tuples_per_node);
    if (matrix_case.summary_driven) {
      // The cell must actually exercise the summary plane, or the parity
      // assertions below are vacuous.
      EXPECT_GT(result.traffic.bytes(net::FrameKind::kSummary) +
                    result.traffic.piggyback_bytes,
                0u)
          << core::to_string(result.backend);
    } else {
      // No summaries -> no stamps, no watermark sync, no new wire bytes:
      // the BASE/RR hot path stays byte-identical to the pre-stamp format.
      // (Socket backends still send kControl FIN frames during drain; the
      // cross-backend count equality below pins that no *additional*
      // watermark frames appeared.)
      EXPECT_EQ(result.traffic.frames(net::FrameKind::kSummary), 0u);
      EXPECT_EQ(result.traffic.piggyback_bytes, 0u);
    }
  }

  const auto& reference = results.front();  // the simulator run
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto& result = results[i];
    EXPECT_EQ(result.pairs, reference.pairs)
        << core::to_string(result.backend);
    EXPECT_EQ(result.reported_pairs, reference.reported_pairs);
    EXPECT_EQ(result.exact_pairs, reference.exact_pairs);
    EXPECT_EQ(result.epsilon, reference.epsilon)
        << core::to_string(result.backend);
    expect_same_logical_traffic(result, reference, /*compare_control=*/false);
  }
  // kControl parity holds among the socket backends (FIN handshake plus,
  // for summary policies, the quantized watermark announcements).
  for (std::size_t i = 2; i < results.size(); ++i) {
    expect_same_logical_traffic(results[i], results[1],
                                /*compare_control=*/true);
  }
  EXPECT_GT(reference.reported_pairs, 0u);

  if (matrix_case.coalesce_frames > 1) {
    // Physical counters are where coalescing must show: the logical parity
    // above is only meaningful if batching actually happened.
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_GT(results[i].traffic.header_bytes_saved, 0u)
          << core::to_string(results[i].backend);
      EXPECT_LT(results[i].traffic.wire_records,
                results[i].traffic.total_frames())
          << core::to_string(results[i].backend);
    }
  }
}

/// All three backends; fork()s, so TSan filters this suite out.
class BackendParityMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(BackendParityMatrix, IdenticalAcrossAllBackends) {
  expect_matrix_parity(GetParam(),
                       {core::Backend::kSim, core::Backend::kTcpInprocess,
                        core::Backend::kMultiprocess});
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, BackendParityMatrix,
                         ::testing::ValuesIn(kMatrix), matrix_case_name);

/// Simulator + in-process TCP only: no fork, safe under TSan, and the
/// pair that actually exercises the cross-thread watermark handshake.
class SummarySyncParity : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(SummarySyncParity, SimAndInprocessTcpAgree) {
  expect_matrix_parity(GetParam(),
                       {core::Backend::kSim, core::Backend::kTcpInprocess});
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SummarySyncParity,
                         ::testing::ValuesIn(kMatrix), matrix_case_name);

TEST(BackendParity, SocketBackendsMeasureWallClockMakespan) {
  const auto config = parity_config(core::PolicyKind::kRoundRobin);
  const auto tcp = run_backend(config, core::Backend::kTcpInprocess);
  ASSERT_TRUE(tcp.clean) << tcp.error;
  // Wall-clock makespan: positive, and far below the ~4 s virtual-time
  // span of the schedule (50 tuples/s, 100 tuples, loopback runs fast).
  EXPECT_GT(tcp.makespan_s, 0.0);
  EXPECT_GT(tcp.results_per_second, 0.0);
}

TEST(BackendParity, BackendNamesRoundTrip) {
  for (const auto backend :
       {core::Backend::kSim, core::Backend::kTcpInprocess,
        core::Backend::kMultiprocess}) {
    const auto parsed = core::backend_from_string(core::to_string(backend));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), backend);
  }
  const auto bogus = core::backend_from_string("quantum");
  ASSERT_FALSE(bogus.is_ok());
  EXPECT_EQ(bogus.status().code(), common::ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace dsjoin
