#include "dsjoin/sampling/reservoir.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace dsjoin::sampling {
namespace {

ReservoirOptions options_with(std::uint32_t capacity, std::uint32_t strata,
                              double window_s) {
  ReservoirOptions options;
  options.capacity = capacity;
  options.strata = strata;
  options.window_s = window_s;
  return options;
}

TEST(StratifiedReservoir, KeepsEverythingBelowCapacity) {
  StratifiedReservoir reservoir(options_with(1024, 1, 100.0), 1);
  for (int i = 0; i < 200; ++i) {
    reservoir.observe(i % 10, 0.1 * i);
  }
  // Population never exceeded the per-stratum cap, so p = 1 throughout.
  EXPECT_EQ(reservoir.sample_size(), 200u);
  const auto summary = reservoir.summary();
  ASSERT_EQ(summary.keys.size(), 10u);
  double total = 0.0;
  for (const auto& mass : summary.keys) {
    EXPECT_DOUBLE_EQ(mass.weight, 20.0);  // 1/p = 1 per item
    EXPECT_DOUBLE_EQ(mass.variance, 0.0);
    total += mass.weight;
  }
  EXPECT_DOUBLE_EQ(total, 200.0);
}

TEST(StratifiedReservoir, EvictsOutsideTheWindow) {
  StratifiedReservoir reservoir(options_with(64, 4, 10.0), 2);
  for (int i = 0; i < 100; ++i) {
    reservoir.observe(i, 0.1 * i);  // all within the first 10 seconds
  }
  const auto before = reservoir.sample_size();
  EXPECT_GT(before, 0u);
  // One arrival a full window later: everything older is gone from its
  // stratum; the other strata evict on their next observe.
  reservoir.observe(1, 100.0);
  for (int i = 0; i < 100; ++i) {
    reservoir.observe(i, 100.0 + 0.001 * i);
  }
  EXPECT_LE(reservoir.live_population(), 101u + 100u);
  const auto summary = reservoir.summary();
  for (const auto& mass : summary.keys) {
    EXPECT_GT(mass.weight, 0.0);
  }
  EXPECT_LT(reservoir.sample_size(), before + 101u);
}

TEST(StratifiedReservoir, BoundsSampleSizeUnderPressure) {
  // 10x more live tuples than capacity: admission p shrinks and thinning
  // keeps every stratum within 2x its cap.
  const std::uint32_t capacity = 64;
  StratifiedReservoir reservoir(options_with(capacity, 4, 1000.0), 3);
  for (int i = 0; i < 10000; ++i) {
    reservoir.observe(i, 0.01 * i);
  }
  EXPECT_LE(reservoir.sample_size(), 2u * capacity + 8u);
  EXPECT_GT(reservoir.sample_size(), 0u);
}

TEST(StratifiedReservoir, SummaryKeysStrictlyAscending) {
  StratifiedReservoir reservoir(options_with(128, 8, 100.0), 4);
  for (int i = 0; i < 500; ++i) {
    reservoir.observe((i * 37) % 97, 0.05 * i);
  }
  const auto summary = reservoir.summary();
  for (std::size_t i = 1; i < summary.keys.size(); ++i) {
    EXPECT_LT(summary.keys[i - 1].key, summary.keys[i].key);
  }
  EXPECT_EQ(summary.strata, 8u);
  EXPECT_EQ(summary.capacity, 128u);
}

TEST(StratifiedReservoir, DeterministicAcrossInstances) {
  // The parity requirement: same seed + same observe() sequence => the
  // same sample, bit for bit, regardless of when summaries are drawn.
  StratifiedReservoir a(options_with(32, 4, 50.0), 99);
  StratifiedReservoir b(options_with(32, 4, 50.0), 99);
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t key = (i * 31) % 400;
    const double now = 0.02 * i;
    a.observe(key, now);
    if (i == 1500) (void)b.summary();  // must not perturb the sample
    b.observe(key, now);
  }
  const auto sa = a.summary();
  const auto sb = b.summary();
  EXPECT_EQ(sa.population, sb.population);
  ASSERT_EQ(sa.keys.size(), sb.keys.size());
  for (std::size_t i = 0; i < sa.keys.size(); ++i) {
    EXPECT_EQ(sa.keys[i].key, sb.keys[i].key);
    EXPECT_DOUBLE_EQ(sa.keys[i].weight, sb.keys[i].weight);
    EXPECT_DOUBLE_EQ(sa.keys[i].variance, sb.keys[i].variance);
  }
}

TEST(StratifiedReservoir, HorvitzThompsonIsUnbiasedUnderSubsampling) {
  // 50 independent seeds, a window with 4000 arrivals over 40 distinct
  // keys, capacity 256 (heavy subsampling). The mean HT estimate of one
  // key's count must land near its true count of 100, and the mean HT
  // total near 4000 — the unbiasedness contract that thinning (p_i * q)
  // must preserve.
  const int kKeys = 40, kPerKey = 100;
  double key_sum = 0.0, total_sum = 0.0;
  const int kSeeds = 50;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    StratifiedReservoir reservoir(options_with(256, 8, 1e6), seed);
    for (int rep = 0; rep < kPerKey; ++rep) {
      for (int key = 0; key < kKeys; ++key) {
        reservoir.observe(key, 0.001 * (rep * kKeys + key));
      }
    }
    const auto summary = reservoir.summary();
    double total = 0.0;
    for (const auto& mass : summary.keys) total += mass.weight;
    total_sum += total;
    key_sum += estimate_key_count(summary, 7, 0).mean;
  }
  const double mean_total = total_sum / kSeeds;
  const double mean_key = key_sum / kSeeds;
  EXPECT_NEAR(mean_total, kKeys * kPerKey, 0.08 * kKeys * kPerKey);
  EXPECT_NEAR(mean_key, kPerKey, 0.2 * kPerKey);
}

TEST(StratifiedReservoir, DegenerateOptionsAreClamped) {
  StratifiedReservoir reservoir(options_with(0, 0, -1.0), 5);
  reservoir.observe(1, 0.0);
  EXPECT_EQ(reservoir.options().strata, 1u);
  EXPECT_EQ(reservoir.options().capacity, 1u);
  EXPECT_GT(reservoir.options().window_s, 0.0);
  EXPECT_EQ(reservoir.live_population(), 1u);
}

}  // namespace
}  // namespace dsjoin::sampling
