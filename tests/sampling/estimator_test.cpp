#include "dsjoin/sampling/estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dsjoin::sampling {
namespace {

SampleSummary summary_with(std::vector<KeyMass> keys) {
  SampleSummary s;
  s.strata = 4;
  s.capacity = 16;
  s.population = 100;
  s.keys = std::move(keys);
  return s;
}

TEST(Estimator, KeyCountExactAndTolerance) {
  const auto s =
      summary_with({{10, 2.0, 1.0}, {12, 4.0, 3.0}, {20, 8.0, 0.5}});
  auto e = estimate_key_count(s, 10, 0);
  EXPECT_DOUBLE_EQ(e.mean, 2.0);
  EXPECT_DOUBLE_EQ(e.variance, 1.0);
  e = estimate_key_count(s, 11, 1);  // band [10, 12]
  EXPECT_DOUBLE_EQ(e.mean, 6.0);
  EXPECT_DOUBLE_EQ(e.variance, 4.0);
  e = estimate_key_count(s, 15, 1);
  EXPECT_DOUBLE_EQ(e.mean, 0.0);
  EXPECT_DOUBLE_EQ(e.variance, 0.0);
  // A negative tolerance behaves as zero.
  e = estimate_key_count(s, 20, -5);
  EXPECT_DOUBLE_EQ(e.mean, 8.0);
}

TEST(Estimator, JoinSizeMergesSharedKeysWithProductVariance) {
  const auto r = summary_with({{1, 2.0, 0.5}, {5, 3.0, 1.0}});
  const auto s = summary_with({{5, 4.0, 2.0}, {9, 7.0, 0.25}});
  const auto e = estimate_join_size(r, s);
  EXPECT_DOUBLE_EQ(e.mean, 12.0);  // only key 5 is shared: 3 * 4
  // Var(XY) = m_x^2 v_y + m_y^2 v_x + v_x v_y = 9*2 + 16*1 + 1*2 = 36.
  EXPECT_DOUBLE_EQ(e.variance, 36.0);
}

TEST(Estimator, JoinSizeOfDisjointSummariesIsZero) {
  const auto r = summary_with({{1, 2.0, 0.5}});
  const auto s = summary_with({{2, 4.0, 2.0}});
  const auto e = estimate_join_size(r, s);
  EXPECT_DOUBLE_EQ(e.mean, 0.0);
  EXPECT_DOUBLE_EQ(e.variance, 0.0);
}

TEST(Estimator, UpperConfidenceIsMeanPlusZSd) {
  EXPECT_DOUBLE_EQ(upper_confidence({10.0, 4.0}), 10.0 + kZ95 * 2.0);
  EXPECT_DOUBLE_EQ(upper_confidence({10.0, 4.0}, 0.0), 10.0);
  // Decode-time noise: negative variance clamps to the mean, never NaN.
  EXPECT_DOUBLE_EQ(upper_confidence({5.0, -1.0}), 5.0);
}

}  // namespace
}  // namespace dsjoin::sampling
