#include "dsjoin/net/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace dsjoin::net {
namespace {

// Every transport binds ephemeral listeners (base_port 0): no fixed port
// ranges, so parallel test processes — or several transports in this one —
// can never collide, and nothing needs retry logic.
TcpTransport make_transport(std::size_t nodes) { return TcpTransport(nodes); }

Frame make_frame(NodeId from, NodeId to, std::uint32_t tag) {
  Frame f;
  f.from = from;
  f.to = to;
  f.kind = FrameKind::kTuple;
  f.piggyback_bytes = tag;  // reused as a sequence tag by the tests
  f.payload.assign(32, static_cast<std::uint8_t>(tag));
  return f;
}

class Collector {
 public:
  void add(Frame&& frame) {
    std::lock_guard lock(mutex_);
    frames_.push_back(std::move(frame));
    cv_.notify_all();
  }

  bool wait_for(std::size_t count, std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] { return frames_.size() >= count; });
  }

  std::vector<Frame> take() {
    std::lock_guard lock(mutex_);
    return std::move(frames_);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Frame> frames_;
};

TEST(TcpTransport, DeliversFramesBothDirections) {
  TcpTransport transport = make_transport(2);
  Collector at0, at1;
  transport.register_handler(0, [&](Frame&& f) { at0.add(std::move(f)); });
  transport.register_handler(1, [&](Frame&& f) { at1.add(std::move(f)); });
  ASSERT_TRUE(transport.send(make_frame(0, 1, 7)));
  ASSERT_TRUE(transport.send(make_frame(1, 0, 9)));
  ASSERT_TRUE(at1.wait_for(1, std::chrono::seconds(5)));
  ASSERT_TRUE(at0.wait_for(1, std::chrono::seconds(5)));
  const auto f1 = at1.take();
  EXPECT_EQ(f1[0].piggyback_bytes, 7u);
  EXPECT_EQ(f1[0].from, 0u);
  EXPECT_EQ(f1[0].payload.size(), 32u);
  transport.shutdown();
}

TEST(TcpTransport, PreservesPerLinkOrder) {
  TcpTransport transport = make_transport(2);
  Collector at1;
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [&](Frame&& f) { at1.add(std::move(f)); });
  constexpr std::uint32_t kCount = 500;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(transport.send(make_frame(0, 1, i)));
  }
  ASSERT_TRUE(at1.wait_for(kCount, std::chrono::seconds(10)));
  const auto frames = at1.take();
  for (std::uint32_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(frames[i].piggyback_bytes, i);
  }
  transport.shutdown();
}

TEST(TcpTransport, FullMeshAllPairs) {
  constexpr std::size_t kNodes = 4;
  TcpTransport transport = make_transport(kNodes);
  std::vector<Collector> collectors(kNodes);
  for (NodeId id = 0; id < kNodes; ++id) {
    transport.register_handler(
        id, [&collectors, id](Frame&& f) { collectors[id].add(std::move(f)); });
  }
  for (NodeId from = 0; from < kNodes; ++from) {
    for (NodeId to = 0; to < kNodes; ++to) {
      if (from != to) {
        ASSERT_TRUE(transport.send(make_frame(from, to, from * 10 + to)));
      }
    }
  }
  for (NodeId id = 0; id < kNodes; ++id) {
    ASSERT_TRUE(collectors[id].wait_for(kNodes - 1, std::chrono::seconds(5)))
        << "node " << id;
  }
  EXPECT_EQ(transport.stats().total_frames(), kNodes * (kNodes - 1));
  transport.shutdown();
}

TEST(TcpTransport, RejectsBadAddressesAndSurvivesShutdown) {
  TcpTransport transport = make_transport(2);
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [](Frame&&) {});
  EXPECT_FALSE(transport.send(make_frame(0, 5, 1)));
  EXPECT_FALSE(transport.send(make_frame(0, 0, 1)));
  transport.shutdown();
  transport.shutdown();  // idempotent
  EXPECT_FALSE(transport.send(make_frame(0, 1, 1)));
}

TEST(TcpTransport, ConcurrentSendersDoNotInterleaveFrames) {
  TcpTransport transport = make_transport(3);
  Collector at2;
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [](Frame&&) {});
  transport.register_handler(2, [&](Frame&& f) { at2.add(std::move(f)); });
  constexpr std::uint32_t kPer = 200;
  std::thread a([&] {
    for (std::uint32_t i = 0; i < kPer; ++i) {
      ASSERT_TRUE(transport.send(make_frame(0, 2, i)));
    }
  });
  std::thread b([&] {
    for (std::uint32_t i = 0; i < kPer; ++i) {
      ASSERT_TRUE(transport.send(make_frame(1, 2, 1000 + i)));
    }
  });
  a.join();
  b.join();
  ASSERT_TRUE(at2.wait_for(2 * kPer, std::chrono::seconds(10)));
  // Each frame arrived intact (payload bytes consistent with its tag).
  for (const auto& f : at2.take()) {
    const auto expected = static_cast<std::uint8_t>(f.piggyback_bytes);
    for (std::uint8_t byte : f.payload) EXPECT_EQ(byte, expected);
  }
  transport.shutdown();
}

TEST(TcpTransport, StartStopStress) {
  // 100 construct/teardown cycles with traffic in flight while shutdown()
  // runs — the stop()-during-receive race this is designed to catch shows
  // up under TSan (CI runs this binary in the thread-sanitizer job).
  // Each round uses fresh ports so lingering TIME_WAIT sockets from the
  // previous round cannot fail the bind.
  for (int round = 0; round < 100; ++round) {
    TcpTransport transport = make_transport(3);
    Collector at1;
    // Register *after* receivers are live (the historical handler race).
    transport.register_handler(0, [](Frame&&) {});
    transport.register_handler(1, [&](Frame&& f) { at1.add(std::move(f)); });
    transport.register_handler(2, [](Frame&&) {});

    std::thread sender([&] {
      // Keep sending until the transport rejects: exercises send() racing
      // shutdown()'s socket teardown.
      for (std::uint32_t i = 0;; ++i) {
        if (!transport.send(make_frame(0, 1, i))) break;
        if (!transport.send(make_frame(2, 1, 1000 + i))) break;
      }
    });
    if (round % 4 == 0) {
      // Sometimes wait for real traffic first, sometimes tear down hot.
      (void)at1.wait_for(4, std::chrono::seconds(5));
    }
    transport.shutdown();
    sender.join();
    // Whatever arrived must be intact.
    for (const auto& f : at1.take()) {
      const auto expected = static_cast<std::uint8_t>(f.piggyback_bytes);
      for (std::uint8_t byte : f.payload) ASSERT_EQ(byte, expected);
    }
  }
}

TEST(TcpTransport, ConcurrentTransportsCoexist) {
  // Two independent meshes in one process: ephemeral binding means they
  // can never fight over ports, and frames stay inside their own mesh.
  TcpTransport first = make_transport(2);
  TcpTransport second = make_transport(2);
  Collector first_at1, second_at1;
  first.register_handler(0, [](Frame&&) {});
  first.register_handler(1, [&](Frame&& f) { first_at1.add(std::move(f)); });
  second.register_handler(0, [](Frame&&) {});
  second.register_handler(1, [&](Frame&& f) { second_at1.add(std::move(f)); });
  ASSERT_TRUE(first.send(make_frame(0, 1, 11)));
  ASSERT_TRUE(second.send(make_frame(0, 1, 22)));
  ASSERT_TRUE(first_at1.wait_for(1, std::chrono::seconds(5)));
  ASSERT_TRUE(second_at1.wait_for(1, std::chrono::seconds(5)));
  EXPECT_EQ(first_at1.take()[0].piggyback_bytes, 11u);
  EXPECT_EQ(second_at1.take()[0].piggyback_bytes, 22u);
  first.shutdown();
  second.shutdown();
}

TEST(TcpTransport, ExplicitPortCollisionFallsBackToEphemeral) {
  // Squat one port of an explicit base range with an unrelated listener;
  // the transport must come up anyway, with the squatted node falling
  // back to an ephemeral port (visible via listen_port). The squatter
  // itself binds ephemeral so this test never fights other processes.
  auto squatter = tcp_listen(0, 4);
  ASSERT_TRUE(squatter.is_ok());
  auto squatted = bound_port(squatter.value().get());
  ASSERT_TRUE(squatted.is_ok());

  // base_port such that node 1 wants exactly the squatted port.
  const std::uint16_t base = static_cast<std::uint16_t>(squatted.value() - 1);
  TcpTransport transport(2, base);
  EXPECT_NE(transport.listen_port(1), squatted.value());
  EXPECT_NE(transport.listen_port(1), 0);

  // And the mesh still works end to end.
  Collector at1;
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [&](Frame&& f) { at1.add(std::move(f)); });
  ASSERT_TRUE(transport.send(make_frame(0, 1, 5)));
  ASSERT_TRUE(at1.wait_for(1, std::chrono::seconds(5)));
  transport.shutdown();
}

TEST(TcpTransport, BacklogDisabledReadsZero) {
  TcpTransport transport = make_transport(2);  // link rate 0 = no model
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [](Frame&&) {});
  ASSERT_TRUE(transport.send(make_frame(0, 1, 1)));
  EXPECT_EQ(transport.send_backlog_seconds(0), 0.0);
  EXPECT_EQ(transport.send_backlog_seconds(1), 0.0);
  transport.shutdown();
}

TEST(TcpTransport, BacklogTracksConfiguredLinkRate) {
  // 1000 B/s links: one ~1000-wire-byte frame queues ~1s of backlog on
  // the sender's worst link, which then drains at the modeled rate.
  constexpr double kRate = 1000.0;
  TcpTransport transport(2, 0, kRate);
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [](Frame&&) {});

  Frame big;
  big.from = 0;
  big.to = 1;
  big.kind = FrameKind::kTuple;
  // encode_wire_frame adds the length prefix + header; aim near 1000.
  big.payload.assign(980, 0xab);
  ASSERT_TRUE(transport.send(std::move(big)));

  const double just_after = transport.send_backlog_seconds(0);
  EXPECT_GT(just_after, 0.7);
  EXPECT_LE(just_after, 1.1);
  // The receiving side queued nothing.
  EXPECT_EQ(transport.send_backlog_seconds(1), 0.0);

  // The modeled queue drains over wall time.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const double later = transport.send_backlog_seconds(0);
  EXPECT_LT(later, just_after);

  transport.shutdown();
}

TEST(TcpTransport, BacklogAccumulatesAcrossSends) {
  constexpr double kRate = 1000.0;
  TcpTransport transport(2, 0, kRate);
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [](Frame&&) {});
  Frame big;
  big.from = 0;
  big.to = 1;
  big.kind = FrameKind::kTuple;
  big.payload.assign(980, 0xcd);
  ASSERT_TRUE(transport.send(Frame(big)));
  ASSERT_TRUE(transport.send(Frame(big)));
  ASSERT_TRUE(transport.send(std::move(big)));
  // Three ~1s frames back to back: roughly 3s queued (minus the sliver
  // drained between the sends).
  const double backlog = transport.send_backlog_seconds(0);
  EXPECT_GT(backlog, 2.5);
  EXPECT_LE(backlog, 3.2);
  transport.shutdown();
}

TEST(TcpTransport, PerNodeStatsSumToTransportTotals) {
  // The per-node attribution contract: the union of every node's sent
  // counters is the transport's global counters — what lets the engine
  // aggregate NodeReports with merge_traffic = true on this backend.
  constexpr std::size_t kNodes = 3;
  TcpTransport transport = make_transport(kNodes);
  std::vector<Collector> collectors(kNodes);
  for (NodeId id = 0; id < kNodes; ++id) {
    transport.register_handler(
        id, [&collectors, id](Frame&& f) { collectors[id].add(std::move(f)); });
  }
  // Uneven per-node loads so a symmetric bug cannot hide.
  std::size_t expected_total = 0;
  for (NodeId from = 0; from < kNodes; ++from) {
    for (std::uint32_t i = 0; i <= from * 3; ++i) {
      const NodeId to = (from + 1 + i % (kNodes - 1)) % kNodes;
      ASSERT_TRUE(transport.send(make_frame(from, to, i)));
      ++expected_total;
    }
  }
  const auto totals = transport.stats_snapshot();
  EXPECT_EQ(totals.total_frames(), expected_total);
  TrafficCounters summed;
  for (NodeId id = 0; id < kNodes; ++id) {
    summed.merge(transport.node_stats_snapshot(id));
  }
  EXPECT_EQ(summed.frames_by_kind, totals.frames_by_kind);
  EXPECT_EQ(summed.bytes_by_kind, totals.bytes_by_kind);
  EXPECT_EQ(summed.piggyback_bytes, totals.piggyback_bytes);
  EXPECT_EQ(summed.wire_records, totals.wire_records);
  EXPECT_EQ(summed.header_bytes_saved, totals.header_bytes_saved);
  // Coalescing off (default options): one wire record per logical frame.
  EXPECT_EQ(totals.wire_records, expected_total);
  EXPECT_EQ(totals.header_bytes_saved, 0u);
  transport.shutdown();
}

TEST(TcpTransport, CoalescedSendsPreserveOrderAndSaveHeaderBytes) {
  CoalesceOptions coalesce;
  coalesce.max_frames = 8;
  coalesce.linger_s = 3600.0;  // only the frame budget flushes here
  TcpTransport transport(2, 0, 0.0, coalesce);
  Collector at1;
  transport.register_handler(0, [](Frame&&) {});
  // A batch handler receives whole decoded records; frames stay in order.
  transport.register_batch_handler(1, [&](std::vector<Frame>&& frames) {
    for (Frame& f : frames) at1.add(std::move(f));
  });
  constexpr std::uint32_t kCount = 64;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(transport.send(make_frame(0, 1, i)));
  }
  ASSERT_TRUE(at1.wait_for(kCount, std::chrono::seconds(10)));
  const auto frames = at1.take();
  for (std::uint32_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(frames[i].piggyback_bytes, i);
  }
  const auto stats = transport.stats_snapshot();
  // Logical accounting is batching-blind; the physical record count is not.
  EXPECT_EQ(stats.total_frames(), kCount);
  EXPECT_EQ(stats.wire_records, kCount / 8);
  EXPECT_EQ(stats.header_bytes_saved, (kCount / 8) * (8u * 8u - 15u));
  transport.shutdown();
}

TEST(TcpTransport, ControlFramesFlushPendingCoalescedFrames) {
  CoalesceOptions coalesce;
  coalesce.max_frames = 100;
  coalesce.linger_s = 3600.0;  // frames would wait forever without the FIN
  TcpTransport transport(2, 0, 0.0, coalesce);
  Collector at1;
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [&](Frame&& f) { at1.add(std::move(f)); });
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(transport.send(make_frame(0, 1, i)));
  }
  Frame fin = make_frame(0, 1, 99);
  fin.kind = FrameKind::kControl;
  ASSERT_TRUE(transport.send(std::move(fin)));
  // The control frame forced the buffer out: all six frames arrive, the
  // five buffered tuples strictly before it.
  ASSERT_TRUE(at1.wait_for(6, std::chrono::seconds(5)));
  const auto frames = at1.take();
  ASSERT_EQ(frames.size(), 6u);
  EXPECT_EQ(frames[5].kind, FrameKind::kControl);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(frames[i].piggyback_bytes, i);
  }
  transport.shutdown();
}

TEST(TcpTransport, RegisterHandlerWhileTrafficFlows) {
  // A handler registered late (while a peer is already sending) must not
  // race the receiver thread; frames that beat the registration are
  // dropped, frames after it are delivered.
  TcpTransport transport = make_transport(2);
  transport.register_handler(0, [](Frame&&) {});
  std::atomic<bool> stop{false};
  std::thread sender([&] {
    for (std::uint32_t i = 0; !stop.load(); ++i) {
      if (!transport.send(make_frame(0, 1, i))) break;
    }
  });
  Collector at1;
  transport.register_handler(1, [&](Frame&& f) { at1.add(std::move(f)); });
  EXPECT_TRUE(at1.wait_for(1, std::chrono::seconds(5)));
  stop.store(true);
  sender.join();
  transport.shutdown();
}

}  // namespace
}  // namespace dsjoin::net
