#include "dsjoin/net/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace dsjoin::net {
namespace {

// Ports are offset per test to avoid TIME_WAIT collisions across cases.
std::uint16_t next_base_port() {
  static std::atomic<std::uint16_t> port{39100};
  return port.fetch_add(20);
}

Frame make_frame(NodeId from, NodeId to, std::uint32_t tag) {
  Frame f;
  f.from = from;
  f.to = to;
  f.kind = FrameKind::kTuple;
  f.piggyback_bytes = tag;  // reused as a sequence tag by the tests
  f.payload.assign(32, static_cast<std::uint8_t>(tag));
  return f;
}

class Collector {
 public:
  void add(Frame&& frame) {
    std::lock_guard lock(mutex_);
    frames_.push_back(std::move(frame));
    cv_.notify_all();
  }

  bool wait_for(std::size_t count, std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] { return frames_.size() >= count; });
  }

  std::vector<Frame> take() {
    std::lock_guard lock(mutex_);
    return std::move(frames_);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Frame> frames_;
};

TEST(TcpTransport, DeliversFramesBothDirections) {
  TcpTransport transport(2, next_base_port());
  Collector at0, at1;
  transport.register_handler(0, [&](Frame&& f) { at0.add(std::move(f)); });
  transport.register_handler(1, [&](Frame&& f) { at1.add(std::move(f)); });
  ASSERT_TRUE(transport.send(make_frame(0, 1, 7)));
  ASSERT_TRUE(transport.send(make_frame(1, 0, 9)));
  ASSERT_TRUE(at1.wait_for(1, std::chrono::seconds(5)));
  ASSERT_TRUE(at0.wait_for(1, std::chrono::seconds(5)));
  const auto f1 = at1.take();
  EXPECT_EQ(f1[0].piggyback_bytes, 7u);
  EXPECT_EQ(f1[0].from, 0u);
  EXPECT_EQ(f1[0].payload.size(), 32u);
  transport.shutdown();
}

TEST(TcpTransport, PreservesPerLinkOrder) {
  TcpTransport transport(2, next_base_port());
  Collector at1;
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [&](Frame&& f) { at1.add(std::move(f)); });
  constexpr std::uint32_t kCount = 500;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(transport.send(make_frame(0, 1, i)));
  }
  ASSERT_TRUE(at1.wait_for(kCount, std::chrono::seconds(10)));
  const auto frames = at1.take();
  for (std::uint32_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(frames[i].piggyback_bytes, i);
  }
  transport.shutdown();
}

TEST(TcpTransport, FullMeshAllPairs) {
  constexpr std::size_t kNodes = 4;
  TcpTransport transport(kNodes, next_base_port());
  std::vector<Collector> collectors(kNodes);
  for (NodeId id = 0; id < kNodes; ++id) {
    transport.register_handler(
        id, [&collectors, id](Frame&& f) { collectors[id].add(std::move(f)); });
  }
  for (NodeId from = 0; from < kNodes; ++from) {
    for (NodeId to = 0; to < kNodes; ++to) {
      if (from != to) {
        ASSERT_TRUE(transport.send(make_frame(from, to, from * 10 + to)));
      }
    }
  }
  for (NodeId id = 0; id < kNodes; ++id) {
    ASSERT_TRUE(collectors[id].wait_for(kNodes - 1, std::chrono::seconds(5)))
        << "node " << id;
  }
  EXPECT_EQ(transport.stats().total_frames(), kNodes * (kNodes - 1));
  transport.shutdown();
}

TEST(TcpTransport, RejectsBadAddressesAndSurvivesShutdown) {
  TcpTransport transport(2, next_base_port());
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [](Frame&&) {});
  EXPECT_FALSE(transport.send(make_frame(0, 5, 1)));
  EXPECT_FALSE(transport.send(make_frame(0, 0, 1)));
  transport.shutdown();
  transport.shutdown();  // idempotent
  EXPECT_FALSE(transport.send(make_frame(0, 1, 1)));
}

TEST(TcpTransport, ConcurrentSendersDoNotInterleaveFrames) {
  TcpTransport transport(3, next_base_port());
  Collector at2;
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [](Frame&&) {});
  transport.register_handler(2, [&](Frame&& f) { at2.add(std::move(f)); });
  constexpr std::uint32_t kPer = 200;
  std::thread a([&] {
    for (std::uint32_t i = 0; i < kPer; ++i) {
      ASSERT_TRUE(transport.send(make_frame(0, 2, i)));
    }
  });
  std::thread b([&] {
    for (std::uint32_t i = 0; i < kPer; ++i) {
      ASSERT_TRUE(transport.send(make_frame(1, 2, 1000 + i)));
    }
  });
  a.join();
  b.join();
  ASSERT_TRUE(at2.wait_for(2 * kPer, std::chrono::seconds(10)));
  // Each frame arrived intact (payload bytes consistent with its tag).
  for (const auto& f : at2.take()) {
    const auto expected = static_cast<std::uint8_t>(f.piggyback_bytes);
    for (std::uint8_t byte : f.payload) EXPECT_EQ(byte, expected);
  }
  transport.shutdown();
}

}  // namespace
}  // namespace dsjoin::net
