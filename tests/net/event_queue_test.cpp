#include "dsjoin/net/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dsjoin::net {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_FALSE(q.run_one());
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.5, chain);
  q.run_all();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.5);
}

TEST(EventQueue, ScheduleInIsRelativeToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(10.0, [&] {
    q.schedule_in(2.5, [&] { fired_at = q.now(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 12.5);
}

TEST(EventQueue, RunUntilStopsAtLimit) {
  EventQueue q;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    q.schedule_at(t, [&times, &q] { times.push_back(q.now()); });
  }
  EXPECT_EQ(q.run_until(2.5), 2u);
  EXPECT_EQ(times.size(), 2u);
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_EQ(q.run_until(100.0), 2u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunAllHonoursMaxEvents) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(q.run_all(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, NextWhenAndBarrierInspection) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.schedule_barrier_at(1.0, [] {});
  EXPECT_EQ(q.next_when(), 1.0);
  EXPECT_TRUE(q.next_is_barrier());
  EXPECT_TRUE(q.run_one());
  EXPECT_EQ(q.next_when(), 2.0);
  EXPECT_FALSE(q.next_is_barrier());
}

TEST(EventQueue, RunEpochDrainsExactTimestampTies) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  EXPECT_EQ(q.run_epoch(), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), 1.0);
  EXPECT_EQ(q.run_epoch(), 1u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(q.run_epoch(), 0u);
}

TEST(EventQueue, RunEpochPreservesInsertionOrderWithinTie) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5.0, [&] { order.push_back(0); });
  q.schedule_at(5.0, [&] { order.push_back(1); });
  q.schedule_at(5.0, [&] { order.push_back(2); });
  q.run_epoch();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, BarrierRunsAloneEvenWhenTied) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] { order.push_back(0); });
  q.schedule_barrier_at(1.0, [&] { order.push_back(100); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  // First epoch stops short of the barrier; the barrier then runs alone.
  EXPECT_EQ(q.run_epoch(), 1u);
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(q.run_epoch(), 1u);
  EXPECT_EQ(order, (std::vector<int>{0, 100}));
  EXPECT_EQ(q.run_epoch(), 1u);
  EXPECT_EQ(order, (std::vector<int>{0, 100, 1}));
}

TEST(EventQueue, EventsScheduledDuringEpochJoinFollowingEpochs) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] {
    order.push_back(1);
    // Same-time insertion lands after the tie already being drained.
    q.schedule_at(1.0, [&] { order.push_back(2); });
    q.schedule_at(3.0, [&] { order.push_back(3); });
  });
  EXPECT_EQ(q.run_epoch(), 2u);  // both t=1.0 events, in causal order
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.run_epoch(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ManyEventsStaySorted) {
  EventQueue q;
  double last = -1.0;
  bool monotone = true;
  // Insert in a scrambled order.
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    q.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  q.run_all();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace dsjoin::net
