// Wire-level tests for the coalesced batch record and the SendBuffer flush
// policy (DESIGN.md section 11). These run over a socketpair, below any
// transport: the codec contract must hold for every socket backend.
#include "dsjoin/net/channel.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <thread>

namespace dsjoin::net {
namespace {

/// A connected AF_UNIX stream pair; index 0 writes, index 1 reads.
struct SocketPair {
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = UniqueFd(fds[0]);
    b = UniqueFd(fds[1]);
  }
  UniqueFd a, b;
};

Frame make_frame(NodeId from, NodeId to, FrameKind kind, std::uint32_t tag,
                 std::size_t payload_bytes) {
  Frame f;
  f.from = from;
  f.to = to;
  f.kind = kind;
  f.piggyback_bytes = tag;
  f.payload.assign(payload_bytes, static_cast<std::uint8_t>(tag));
  return f;
}

TEST(WireBatch, SingleFrameUsesLegacyEncodingAndSavesNothing) {
  const Frame frame = make_frame(1, 2, FrameKind::kTuple, 7, 24);
  std::vector<std::uint8_t> batch;
  const auto saved = encode_wire_batch({&frame, 1}, &batch);
  EXPECT_EQ(saved, 0u);
  EXPECT_EQ(batch, encode_wire_frame(frame));
}

TEST(WireBatch, RoundTripsManyFramesThroughOneRecord) {
  std::vector<Frame> frames;
  for (std::uint32_t i = 0; i < 5; ++i) {
    frames.push_back(make_frame(3, 1, i % 2 ? FrameKind::kTuple
                                            : FrameKind::kResult,
                                i, 10 + i * 3));
  }
  std::vector<std::uint8_t> record;
  const auto saved = encode_wire_batch(frames, &record);
  // 8 bytes per extra per-frame header, minus the batch preamble overhead.
  EXPECT_EQ(saved, 8u * frames.size() - 15u);

  SocketPair pair;
  ASSERT_TRUE(write_all(pair.a.get(), record.data(), record.size()));
  std::vector<Frame> decoded;
  std::vector<std::uint8_t> scratch;
  ASSERT_TRUE(read_wire_frames(pair.b.get(), &decoded, &scratch));
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(decoded[i].from, frames[i].from);
    EXPECT_EQ(decoded[i].to, frames[i].to);
    EXPECT_EQ(decoded[i].kind, frames[i].kind);
    EXPECT_EQ(decoded[i].piggyback_bytes, frames[i].piggyback_bytes);
    EXPECT_EQ(decoded[i].payload, frames[i].payload);
  }
}

TEST(WireBatch, ReadWireFramesAcceptsSingleFrameRecords) {
  // A mixed stream — legacy single-frame records interleaved with batch
  // records — decodes in order through the one batch-aware reader.
  const Frame solo = make_frame(0, 1, FrameKind::kSummary, 42, 16);
  std::vector<Frame> pairs{make_frame(0, 1, FrameKind::kTuple, 1, 8),
                           make_frame(0, 1, FrameKind::kTuple, 2, 8)};
  std::vector<std::uint8_t> bytes = encode_wire_frame(solo);
  std::vector<std::uint8_t> batch;
  encode_wire_batch(pairs, &batch);
  bytes.insert(bytes.end(), batch.begin(), batch.end());

  SocketPair pair;
  ASSERT_TRUE(write_all(pair.a.get(), bytes.data(), bytes.size()));
  std::vector<Frame> decoded;
  std::vector<std::uint8_t> scratch;
  ASSERT_TRUE(read_wire_frames(pair.b.get(), &decoded, &scratch));
  ASSERT_TRUE(read_wire_frames(pair.b.get(), &decoded, &scratch));
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].kind, FrameKind::kSummary);
  EXPECT_EQ(decoded[1].piggyback_bytes, 1u);
  EXPECT_EQ(decoded[2].piggyback_bytes, 2u);
}

TEST(WireBatch, SingleFrameReaderRejectsBatchRecords) {
  std::vector<Frame> frames{make_frame(0, 1, FrameKind::kTuple, 1, 8),
                            make_frame(0, 1, FrameKind::kTuple, 2, 8)};
  std::vector<std::uint8_t> record;
  encode_wire_batch(frames, &record);
  SocketPair pair;
  ASSERT_TRUE(write_all(pair.a.get(), record.data(), record.size()));
  Frame out;
  EXPECT_FALSE(read_wire_frame(pair.b.get(), &out));
}

TEST(WireBatch, RejectsTruncatedAndOversizedRecords) {
  // Truncated batch preamble: marker present but the body ends before the
  // declared entries.
  std::vector<Frame> frames{make_frame(0, 1, FrameKind::kTuple, 1, 64),
                            make_frame(0, 1, FrameKind::kTuple, 2, 64)};
  std::vector<std::uint8_t> record;
  encode_wire_batch(frames, &record);
  {
    SocketPair pair;
    // Lie: shrink the length prefix so the entry table overruns the body.
    std::vector<std::uint8_t> bad = record;
    bad[0] = 20;  // body_len low byte (little-endian), far too small
    bad[1] = bad[2] = bad[3] = 0;
    ASSERT_TRUE(write_all(pair.a.get(), bad.data(), bad.size()));
    std::vector<Frame> decoded;
    std::vector<std::uint8_t> scratch;
    EXPECT_FALSE(read_wire_frames(pair.b.get(), &decoded, &scratch));
  }
  {
    SocketPair pair;
    // Declared body length over the hard cap is rejected before any read.
    std::array<std::uint8_t, 4> huge{0xff, 0xff, 0xff, 0x7f};
    ASSERT_TRUE(write_all(pair.a.get(), huge.data(), huge.size()));
    std::vector<Frame> decoded;
    std::vector<std::uint8_t> scratch;
    EXPECT_FALSE(read_wire_frames(pair.b.get(), &decoded, &scratch));
  }
}

TEST(SendBuffer, FlushesOnFrameBudget) {
  CoalesceOptions options;
  options.max_frames = 3;
  options.linger_s = 3600.0;  // never trip on age in this test
  SendBuffer buffer(options);
  EXPECT_FALSE(buffer.push(make_frame(0, 1, FrameKind::kTuple, 1, 8)));
  EXPECT_FALSE(buffer.push(make_frame(0, 1, FrameKind::kTuple, 2, 8)));
  EXPECT_TRUE(buffer.push(make_frame(0, 1, FrameKind::kTuple, 3, 8)));
  EXPECT_EQ(buffer.frame_count(), 3u);

  SocketPair pair;
  std::uint64_t saved = 0;
  ASSERT_TRUE(buffer.flush(pair.a.get(), &saved));
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(saved, 8u * 3 - 15u);
  std::vector<Frame> decoded;
  std::vector<std::uint8_t> scratch;
  ASSERT_TRUE(read_wire_frames(pair.b.get(), &decoded, &scratch));
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[2].piggyback_bytes, 3u);
}

TEST(SendBuffer, FlushesOnByteBudgetAndOnControlFrames) {
  CoalesceOptions options;
  options.max_frames = 100;
  options.max_bytes = 64;
  options.linger_s = 3600.0;
  SendBuffer buffer(options);
  EXPECT_FALSE(buffer.push(make_frame(0, 1, FrameKind::kTuple, 1, 32)));
  // 64 pending payload bytes reach the budget.
  EXPECT_TRUE(buffer.push(make_frame(0, 1, FrameKind::kTuple, 2, 32)));

  SocketPair pair;
  std::uint64_t saved = 0;
  ASSERT_TRUE(buffer.flush(pair.a.get(), &saved));

  // Control frames must never wait in a buffer: the drain handshake relies
  // on FIN ordering behind all previously sent frames.
  EXPECT_FALSE(buffer.push(make_frame(0, 1, FrameKind::kTuple, 3, 8)));
  EXPECT_TRUE(buffer.push(make_frame(0, 1, FrameKind::kControl, 4, 8)));
  ASSERT_TRUE(buffer.flush(pair.a.get(), &saved));

  std::vector<Frame> decoded;
  std::vector<std::uint8_t> scratch;
  ASSERT_TRUE(read_wire_frames(pair.b.get(), &decoded, &scratch));
  ASSERT_TRUE(read_wire_frames(pair.b.get(), &decoded, &scratch));
  ASSERT_EQ(decoded.size(), 4u);
  EXPECT_EQ(decoded[3].kind, FrameKind::kControl);
}

TEST(SendBuffer, LingerAgeTripsTheNextPush) {
  CoalesceOptions options;
  options.max_frames = 100;
  options.linger_s = 0.01;
  SendBuffer buffer(options);
  EXPECT_FALSE(buffer.push(make_frame(0, 1, FrameKind::kTuple, 1, 8)));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // The next push sees the oldest pending frame over the linger budget.
  EXPECT_TRUE(buffer.push(make_frame(0, 1, FrameKind::kTuple, 2, 8)));
}

}  // namespace
}  // namespace dsjoin::net
