#include "dsjoin/net/stats.hpp"

#include <gtest/gtest.h>

namespace dsjoin::net {
namespace {

Frame frame_of(FrameKind kind, std::size_t payload, std::uint32_t piggy = 0) {
  Frame f;
  f.kind = kind;
  f.payload.assign(payload, 0);
  f.piggyback_bytes = piggy;
  return f;
}

TEST(TrafficCounters, StartsZeroed) {
  TrafficCounters c;
  EXPECT_EQ(c.total_frames(), 0u);
  EXPECT_EQ(c.total_bytes(), 0u);
  EXPECT_EQ(c.piggyback_bytes, 0u);
  EXPECT_DOUBLE_EQ(c.summary_byte_fraction(), 0.0);
}

TEST(TrafficCounters, RecordsByKind) {
  TrafficCounters c;
  c.record(frame_of(FrameKind::kTuple, 100));
  c.record(frame_of(FrameKind::kTuple, 50));
  c.record(frame_of(FrameKind::kResult, 10));
  EXPECT_EQ(c.frames(FrameKind::kTuple), 2u);
  EXPECT_EQ(c.frames(FrameKind::kResult), 1u);
  EXPECT_EQ(c.frames(FrameKind::kSummary), 0u);
  // wire_bytes adds the 16-byte header.
  EXPECT_EQ(c.bytes(FrameKind::kTuple), 100u + 50u + 32u);
  EXPECT_EQ(c.total_frames(), 3u);
  EXPECT_EQ(c.total_bytes(), 160u + 48u);
}

TEST(TrafficCounters, SummaryFractionCombinesBothChannels) {
  TrafficCounters c;
  // A tuple frame of 100 payload bytes, 30 of which are piggybacked summary.
  c.record(frame_of(FrameKind::kTuple, 100, 30));
  // A standalone summary frame of 44 payload bytes (60 on the wire).
  c.record(frame_of(FrameKind::kSummary, 44));
  const double expected =
      (30.0 + 60.0) / static_cast<double>(c.total_bytes());
  EXPECT_DOUBLE_EQ(c.summary_byte_fraction(), expected);
}

TEST(TrafficCounters, MergeAccumulates) {
  TrafficCounters a, b;
  a.record(frame_of(FrameKind::kTuple, 10));
  b.record(frame_of(FrameKind::kControl, 20, 5));
  a.merge(b);
  EXPECT_EQ(a.total_frames(), 2u);
  EXPECT_EQ(a.frames(FrameKind::kControl), 1u);
  EXPECT_EQ(a.piggyback_bytes, 5u);
}

TEST(FrameKindNames, AllNamed) {
  EXPECT_STREQ(to_string(FrameKind::kTuple), "tuple");
  EXPECT_STREQ(to_string(FrameKind::kSummary), "summary");
  EXPECT_STREQ(to_string(FrameKind::kResult), "result");
  EXPECT_STREQ(to_string(FrameKind::kControl), "control");
}

}  // namespace
}  // namespace dsjoin::net
