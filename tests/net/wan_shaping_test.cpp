// WAN shaping details: pause-burst vs smooth serialization equivalence at
// the average rate, and the failure-injection counters.
#include <gtest/gtest.h>

#include "dsjoin/net/sim_transport.hpp"

namespace dsjoin::net {
namespace {

Frame payload_frame(NodeId from, NodeId to, std::size_t bytes) {
  Frame f;
  f.from = from;
  f.to = to;
  f.kind = FrameKind::kTuple;
  f.payload.assign(bytes, 0x11);
  return f;
}

TEST(WanShaping, PauseBurstAveragesToSmoothRate) {
  // Over a long transfer the literal "pause 1 s per 90 kilobits" shaping
  // and the smooth serialization model must agree on total time within a
  // pause quantum.
  auto run = [](bool burst) {
    EventQueue q;
    WanProfile p;
    p.latency_min_s = p.latency_max_s = 0.0;
    p.pause_burst_shaping = burst;
    SimTransport t(q, 2, p, 1);
    SimTime last = 0.0;
    t.register_handler(0, [](Frame&&) {});
    t.register_handler(1, [&](Frame&&) { last = q.now(); });
    // ~1.8 Mbit total: 200 frames x (1109+16)B x 8 = 1.8e6 bits -> ~20 s.
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(t.send(payload_frame(0, 1, 1109)));
    }
    q.run_all();
    return last;
  };
  const double smooth = run(false);
  const double bursty = run(true);
  EXPECT_NEAR(smooth, bursty, 1.2);  // within ~one pause quantum
  EXPECT_GT(smooth, 15.0);
}

TEST(WanShaping, DropCounterMatchesProbability) {
  EventQueue q;
  WanProfile p = WanProfile::ideal();
  p.drop_probability = 0.25;
  SimTransport t(q, 2, p, 7);
  int delivered = 0;
  t.register_handler(0, [](Frame&&) {});
  t.register_handler(1, [&](Frame&&) { ++delivered; });
  constexpr int kFrames = 4000;
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_TRUE(t.send(payload_frame(0, 1, 8)));
  }
  q.run_all();
  EXPECT_EQ(delivered + static_cast<int>(t.dropped_frames()), kFrames);
  EXPECT_NEAR(static_cast<double>(t.dropped_frames()) / kFrames, 0.25, 0.03);
  // Accounting happens at send time: all frames were charged.
  EXPECT_EQ(t.stats().total_frames(), static_cast<std::uint64_t>(kFrames));
}

TEST(WanShaping, CorruptionCounterAndDelivery) {
  EventQueue q;
  WanProfile p = WanProfile::ideal();
  p.corrupt_probability = 0.5;
  SimTransport t(q, 2, p, 9);
  int delivered = 0;
  int mutated = 0;
  t.register_handler(0, [](Frame&&) {});
  t.register_handler(1, [&](Frame&& f) {
    ++delivered;
    for (auto b : f.payload) {
      if (b != 0x11) {
        ++mutated;
        break;
      }
    }
  });
  constexpr int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_TRUE(t.send(payload_frame(0, 1, 64)));
  }
  q.run_all();
  EXPECT_EQ(delivered, kFrames);  // corruption does not drop
  EXPECT_EQ(static_cast<int>(t.corrupted_frames()), mutated);
  EXPECT_NEAR(static_cast<double>(mutated) / kFrames, 0.5, 0.05);
}

TEST(WanShaping, NoInjectionByDefault) {
  EventQueue q;
  SimTransport t(q, 2, WanProfile{}, 3);
  t.register_handler(0, [](Frame&&) {});
  t.register_handler(1, [](Frame&&) {});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(t.send(payload_frame(0, 1, 16)));
  }
  q.run_all();
  EXPECT_EQ(t.dropped_frames(), 0u);
  EXPECT_EQ(t.corrupted_frames(), 0u);
}

}  // namespace
}  // namespace dsjoin::net
