#include "dsjoin/net/sim_transport.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dsjoin::net {
namespace {

Frame make_frame(NodeId from, NodeId to, std::size_t payload_bytes = 16,
                 FrameKind kind = FrameKind::kTuple) {
  Frame f;
  f.from = from;
  f.to = to;
  f.kind = kind;
  f.payload.assign(payload_bytes, 0xaa);
  return f;
}

struct Delivery {
  Frame frame;
  SimTime at;
};

TEST(SimTransport, DeliversWithinLatencyBounds) {
  EventQueue q;
  WanProfile profile;
  profile.unlimited_bandwidth = true;  // isolate latency
  SimTransport transport(q, 2, profile, 1);
  std::vector<Delivery> deliveries;
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [&](Frame&& f) {
    deliveries.push_back(Delivery{std::move(f), q.now()});
  });
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(transport.send(make_frame(0, 1)));
  }
  q.run_all();
  ASSERT_EQ(deliveries.size(), 200u);
  for (const auto& d : deliveries) {
    EXPECT_GE(d.at, 0.020 - 1e-9);
    EXPECT_LE(d.at, 0.100 + 1e-6);
  }
}

TEST(SimTransport, PerLinkFifoOrderPreserved) {
  EventQueue q;
  WanProfile profile;  // random latency could reorder without the FIFO floor
  profile.unlimited_bandwidth = true;
  SimTransport transport(q, 2, profile, 7);
  std::vector<std::uint32_t> received;
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [&](Frame&& f) {
    received.push_back(f.piggyback_bytes);  // used as a sequence number here
  });
  for (std::uint32_t i = 0; i < 500; ++i) {
    Frame f = make_frame(0, 1);
    f.piggyback_bytes = i;
    ASSERT_TRUE(transport.send(std::move(f)));
  }
  q.run_all();
  ASSERT_EQ(received.size(), 500u);
  for (std::uint32_t i = 0; i < 500; ++i) EXPECT_EQ(received[i], i);
}

TEST(SimTransport, BandwidthSerializationDelaysBulk) {
  EventQueue q;
  WanProfile profile;
  profile.latency_min_s = profile.latency_max_s = 0.0;
  profile.bandwidth_bps = 8000.0;  // 1 KB/s
  SimTransport transport(q, 2, profile, 3);
  SimTime last = 0.0;
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [&](Frame&&) { last = q.now(); });
  // Ten frames of 1016+16=1032... wire bytes: payload+16. Use 984+16=1000 B.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(transport.send(make_frame(0, 1, 984)));
  }
  q.run_all();
  // 10 KB at 1 KB/s -> ~10 s of serialization.
  EXPECT_NEAR(last, 10.0, 0.2);
}

TEST(SimTransport, PerNodeScopeSharesBandwidthAcrossPeers) {
  EventQueue q;
  WanProfile profile;
  profile.latency_min_s = profile.latency_max_s = 0.0;
  profile.bandwidth_bps = 8000.0;
  profile.scope = WanProfile::BandwidthScope::kPerNode;
  SimTransport transport(q, 3, profile, 3);
  SimTime last = 0.0;
  for (NodeId id = 0; id < 3; ++id) {
    transport.register_handler(id, [&](Frame&&) { last = q.now(); });
  }
  // 5 frames to each of two peers; shared NIC -> ~10 s total.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(transport.send(make_frame(0, 1, 984)));
    ASSERT_TRUE(transport.send(make_frame(0, 2, 984)));
  }
  q.run_all();
  EXPECT_NEAR(last, 10.0, 0.2);
}

TEST(SimTransport, PerLinkScopeParallelizesAcrossPeers) {
  EventQueue q;
  WanProfile profile;
  profile.latency_min_s = profile.latency_max_s = 0.0;
  profile.bandwidth_bps = 8000.0;
  profile.scope = WanProfile::BandwidthScope::kPerLink;
  SimTransport transport(q, 3, profile, 3);
  SimTime last = 0.0;
  for (NodeId id = 0; id < 3; ++id) {
    transport.register_handler(id, [&](Frame&&) { last = q.now(); });
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(transport.send(make_frame(0, 1, 984)));
    ASSERT_TRUE(transport.send(make_frame(0, 2, 984)));
  }
  q.run_all();
  // Independent links -> ~5 s each, concurrently.
  EXPECT_NEAR(last, 5.0, 0.2);
}

TEST(SimTransport, PauseBurstShapingMatchesAverageRate) {
  EventQueue q;
  WanProfile profile;
  profile.latency_min_s = profile.latency_max_s = 0.0;
  profile.pause_burst_shaping = true;  // 1 s pause per 90 kbit
  SimTransport transport(q, 2, profile, 3);
  SimTime last = 0.0;
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [&](Frame&&) { last = q.now(); });
  // 90 KB = 720 kbit -> 8 pauses -> ~8 s.
  for (int i = 0; i < 90; ++i) {
    ASSERT_TRUE(transport.send(make_frame(0, 1, 1000 - 16)));
  }
  q.run_all();
  EXPECT_NEAR(last, 8.0, 1.0);
}

TEST(SimTransport, SendBacklogReflectsQueuedBytes) {
  EventQueue q;
  WanProfile profile;
  profile.latency_min_s = profile.latency_max_s = 0.0;
  profile.bandwidth_bps = 8000.0;
  SimTransport transport(q, 2, profile, 3);
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [](Frame&&) {});
  EXPECT_DOUBLE_EQ(transport.send_backlog_seconds(0), 0.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(transport.send(make_frame(0, 1, 984)));
  }
  EXPECT_NEAR(transport.send_backlog_seconds(0), 10.0, 0.2);
  EXPECT_DOUBLE_EQ(transport.send_backlog_seconds(1), 0.0);
}

TEST(SimTransport, RejectsBadAddresses) {
  EventQueue q;
  SimTransport transport(q, 2, WanProfile::ideal(), 1);
  transport.register_handler(0, [](Frame&&) {});
  transport.register_handler(1, [](Frame&&) {});
  EXPECT_FALSE(transport.send(make_frame(0, 7)));
  EXPECT_FALSE(transport.send(make_frame(7, 0)));
  EXPECT_FALSE(transport.send(make_frame(1, 1)));  // loopback
}

TEST(SimTransport, RejectsUnregisteredDestination) {
  EventQueue q;
  SimTransport transport(q, 2, WanProfile::ideal(), 1);
  transport.register_handler(0, [](Frame&&) {});
  auto status = transport.send(make_frame(0, 1));
  ASSERT_FALSE(status);
  EXPECT_EQ(status.code(), common::ErrorCode::kFailedPrecondition);
}

TEST(SimTransport, CountsTrafficGloballyAndPerLink) {
  EventQueue q;
  SimTransport transport(q, 3, WanProfile::ideal(), 1);
  for (NodeId id = 0; id < 3; ++id) transport.register_handler(id, [](Frame&&) {});
  ASSERT_TRUE(transport.send(make_frame(0, 1, 100, FrameKind::kTuple)));
  ASSERT_TRUE(transport.send(make_frame(0, 1, 50, FrameKind::kSummary)));
  ASSERT_TRUE(transport.send(make_frame(1, 2, 10, FrameKind::kResult)));
  q.run_all();
  EXPECT_EQ(transport.stats().total_frames(), 3u);
  EXPECT_EQ(transport.stats().frames(FrameKind::kTuple), 1u);
  EXPECT_EQ(transport.stats().bytes(FrameKind::kTuple), 116u);
  EXPECT_EQ(transport.link_stats(0, 1).total_frames(), 2u);
  EXPECT_EQ(transport.link_stats(1, 2).total_frames(), 1u);
  EXPECT_EQ(transport.link_stats(2, 0).total_frames(), 0u);
}

TEST(SimTransport, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    EventQueue q;
    WanProfile profile;
    SimTransport transport(q, 2, profile, seed);
    std::vector<SimTime> times;
    transport.register_handler(0, [](Frame&&) {});
    transport.register_handler(1, [&](Frame&&) { times.push_back(q.now()); });
    for (int i = 0; i < 50; ++i) (void)transport.send(make_frame(0, 1));
    q.run_all();
    return times;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace dsjoin::net
