#include "dsjoin/stream/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace dsjoin::stream {
namespace {

WorkloadParams params_for(std::uint32_t nodes = 4, std::uint32_t regions = 2) {
  WorkloadParams p;
  p.nodes = nodes;
  p.regions = regions;
  p.seed = 1234;
  return p;
}

TEST(LatentProcess, StaysWithinRange) {
  common::Xoshiro256 rng(1);
  LatentProcess proc(100.0, 200.0, 50.0, 4, rng);
  for (double t = 0; t < 500; t += 0.37) {
    const double v = proc.value(t);
    EXPECT_GE(v, 100.0);
    EXPECT_LE(v, 200.0);
  }
}

TEST(LatentProcess, IsDeterministicInTime) {
  common::Xoshiro256 rng(2);
  LatentProcess proc(0.0, 1.0, 10.0, 3, rng);
  EXPECT_DOUBLE_EQ(proc.value(42.0), proc.value(42.0));
}

TEST(LatentProcess, VariesOverTime) {
  common::Xoshiro256 rng(3);
  LatentProcess proc(0.0, 1000.0, 10.0, 4, rng);
  double lo = 1e18, hi = -1e18;
  for (double t = 0; t < 20; t += 0.1) {
    lo = std::min(lo, proc.value(t));
    hi = std::max(hi, proc.value(t));
  }
  EXPECT_GT(hi - lo, 100.0);
}

TEST(MakeWorkload, FactoryNamesAndDomains) {
  const auto p = params_for();
  for (const char* name : {"UNI", "ZIPF", "FIN", "NWRK"}) {
    const auto wl = make_workload(name, p);
    ASSERT_NE(wl, nullptr);
    EXPECT_STREQ(wl->name(), name);
    EXPECT_EQ(wl->domain(), p.domain);
  }
  EXPECT_THROW(make_workload("BOGUS", p), std::invalid_argument);
}

// Keys must stay within the declared domain for every workload.
class WorkloadDomainTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadDomainTest, KeysInDomain) {
  const auto p = params_for(6, 3);
  const auto wl = make_workload(GetParam(), p);
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += 0.01;
    const auto key = wl->next_key(static_cast<net::NodeId>(i % 6),
                                  i % 2 ? StreamSide::kR : StreamSide::kS, t);
    ASSERT_GE(key, 1);
    ASSERT_LE(key, p.domain);
  }
}

TEST_P(WorkloadDomainTest, DeterministicAcrossInstances) {
  const auto p = params_for();
  const auto a = make_workload(GetParam(), p);
  const auto b = make_workload(GetParam(), p);
  for (int i = 0; i < 1000; ++i) {
    const double t = 0.02 * i;
    EXPECT_EQ(a->next_key(1, StreamSide::kR, t), b->next_key(1, StreamSide::kR, t));
  }
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadDomainTest,
                         ::testing::Values("UNI", "ZIPF", "FIN", "NWRK"));

TEST(UniformWorkload, CoversDomainEvenly) {
  auto p = params_for();
  p.domain = 1 << 10;
  UniformWorkload wl(p);
  std::map<std::int64_t, int> quartiles;
  for (int i = 0; i < 40000; ++i) {
    ++quartiles[(wl.next_key(0, StreamSide::kR, 0.0) - 1) * 4 / p.domain];
  }
  ASSERT_EQ(quartiles.size(), 4u);
  for (const auto& [q, count] : quartiles) {
    EXPECT_NEAR(count, 10000, 600) << q;
  }
}

TEST(ZipfWorkload, SameRegionJoinMassDominates) {
  // Geographic skew: the *pair count* (join mass, multiplicity-weighted)
  // between same-region nodes must dominate the cross-region mass. Set
  // membership alone would not discriminate: locality escapes sprinkle a
  // thin copy of every region's hot band onto every node.
  const auto p = params_for(4, 2);
  ZipfWorkload wl(p);
  std::map<std::int64_t, long> node0, node1, node2;
  double t = 0.0;
  for (int i = 0; i < 6000; ++i) {
    t += 0.01;
    ++node0[wl.next_key(0, StreamSide::kR, t)];
    ++node1[wl.next_key(1, StreamSide::kS, t)];  // region 1
    ++node2[wl.next_key(2, StreamSide::kS, t)];  // region 0 (same as node 0)
  }
  auto join_mass = [](const std::map<std::int64_t, long>& a,
                      const std::map<std::int64_t, long>& b) {
    long total = 0;
    for (const auto& [key, count] : a) {
      const auto it = b.find(key);
      if (it != b.end()) total += count * it->second;
    }
    return total;
  };
  const long same = join_mass(node0, node2);
  const long cross = join_mass(node0, node1);
  EXPECT_GT(same, 3 * std::max(cross, 1L));
  EXPECT_GT(same, 1000);
}

TEST(ZipfWorkload, NoiseTuplesSpreadOverDomain) {
  auto p = params_for();
  p.noise = 1.0;  // every tuple is background noise
  ZipfWorkload wl(p);
  std::int64_t min_key = p.domain, max_key = 1;
  for (int i = 0; i < 5000; ++i) {
    const auto key = wl.next_key(0, StreamSide::kR, 1.0);
    min_key = std::min(min_key, key);
    max_key = std::max(max_key, key);
  }
  EXPECT_LT(min_key, p.domain / 10);
  EXPECT_GT(max_key, 9 * p.domain / 10);
}

TEST(FinancialWorkload, BidAskCrossesHappenWithinSymbol) {
  const auto p = params_for(2, 1);
  FinancialWorkload wl(p);
  std::map<std::int64_t, int> bids;
  double t = 0.0;
  for (int i = 0; i < 3000; ++i) {
    t += 0.01;
    ++bids[wl.next_key(0, StreamSide::kR, t)];
  }
  int crosses = 0;
  t = 0.0;
  for (int i = 0; i < 3000; ++i) {
    t += 0.01;
    if (bids.count(wl.next_key(1, StreamSide::kS, t))) ++crosses;
  }
  EXPECT_GT(crosses, 100);  // same region => frequent price crosses
}

TEST(NetworkWorkload, FlowsArriveInBursts) {
  const auto p = params_for();
  NetworkWorkload wl(p, /*flow_continue_p=*/0.9);
  std::int64_t previous = -1;
  int repeats = 0;
  constexpr int kN = 10000;
  double t = 0.0;
  for (int i = 0; i < kN; ++i) {
    t += 0.01;
    const auto key = wl.next_key(0, StreamSide::kR, t);
    if (key == previous) ++repeats;
    previous = key;
  }
  // Geometric runs with p = 0.9 -> ~85+% consecutive repeats after noise.
  EXPECT_GT(repeats, kN / 2);
}

TEST(NetworkWorkload, HeavyTailHostPopularity) {
  const auto p = params_for(2, 1);
  NetworkWorkload wl(p, /*flow_continue_p=*/0.0, /*alpha=*/1.1);
  std::map<std::int64_t, int> counts;
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += 0.0005;  // hot base barely moves
    ++counts[wl.next_key(0, StreamSide::kR, t)];
  }
  int top = 0;
  for (const auto& [key, count] : counts) top = std::max(top, count);
  // The hottest host dominates well beyond a uniform share.
  EXPECT_GT(top, 20000 / static_cast<int>(counts.size()) * 5);
}

TEST(GenerateStockSeries, IntegerValuedAndDeterministic) {
  const auto a = generate_stock_series(1024, 9);
  const auto b = generate_stock_series(1024, 9);
  EXPECT_EQ(a, b);
  for (double v : a) EXPECT_DOUBLE_EQ(v, std::round(v));
  const auto c = generate_stock_series(1024, 10);
  EXPECT_NE(a, c);
}

TEST(GenerateStockSeries, LooksLikeAWalkNotNoise) {
  const auto series = generate_stock_series(8192, 11);
  // Successive differences must be tiny relative to the overall excursion.
  double max_step = 0.0, lo = 1e18, hi = -1e18;
  for (std::size_t i = 1; i < series.size(); ++i) {
    max_step = std::max(max_step, std::abs(series[i] - series[i - 1]));
    lo = std::min(lo, series[i]);
    hi = std::max(hi, series[i]);
  }
  EXPECT_LT(max_step * 20, hi - lo);
}

}  // namespace
}  // namespace dsjoin::stream
