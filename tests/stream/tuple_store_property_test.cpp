// Property tests for the partitioned SoA TupleStore (DESIGN.md §16): the
// store must agree with stream::reference_join and with a brute-force
// shadow under out-of-order arrivals, duplicate timestamps, boundary-exact
// half-width matches, and eviction-horizon races — at every SIMD level the
// host supports (the match-scan kernels feed every probe).

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/common/simd.hpp"
#include "dsjoin/stream/window.hpp"

namespace dsjoin::stream {
namespace {

namespace simd = common::simd;

std::vector<simd::Level> supported_levels() {
  std::vector<simd::Level> out{simd::Level::kScalar};
  for (const simd::Level level :
       {simd::Level::kNeon, simd::Level::kAvx2, simd::Level::kAvx512}) {
    if (level <= simd::detected_level()) out.push_back(level);
  }
  return out;
}

struct ForcedLevel {
  explicit ForcedLevel(simd::Level level) { simd::force_level(level); }
  ~ForcedLevel() { simd::reset_level(); }
};

// Timestamps on a 0.25 grid: duplicates are common and probe bounds land
// exactly on stored values (the inclusive-boundary case is always hit).
// Arrival order is shuffled-by-construction: each step jumps backwards with
// probability 1/4, so chunks go unsorted and eviction must compact.
std::vector<Tuple> random_tuples(std::size_t n, StreamSide side,
                                 std::uint64_t id_base,
                                 common::Xoshiro256& rng) {
  std::vector<Tuple> out(n);
  double ts = 8.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next() % 4 == 0) {
      ts -= 0.25 * static_cast<double>(rng.next() % 16);
    } else {
      ts += 0.25 * static_cast<double>(rng.next() % 4);
    }
    out[i].id = id_base + i;
    out[i].key = static_cast<std::int64_t>(rng.next() % 24);
    out[i].timestamp = ts;
    out[i].origin = static_cast<net::NodeId>(rng.next() % 4);
    out[i].side = side;
  }
  return out;
}

// Streaming probe-then-insert against one store must reproduce the
// reference join: each S tuple probes the R store before insertion order
// matters (R is fully loaded first), so every (r, s) pair within the
// half-width appears exactly once.
TEST(TupleStoreProperty, StreamingProbeMatchesReferenceJoin) {
  for (const simd::Level level : supported_levels()) {
    ForcedLevel forced(level);
    common::Xoshiro256 rng(991);
    const auto r_tuples = random_tuples(400, StreamSide::kR, 1000, rng);
    const auto s_tuples = random_tuples(400, StreamSide::kS, 500000, rng);
    // Boundary-exact half-width: 0.5 is a grid multiple, so |dt| == hw
    // occurs often and both bounds must be inclusive.
    const double half_width = 0.5;

    TupleStore store;
    for (const Tuple& r : r_tuples) store.insert(r);

    std::vector<ResultPair> got;
    std::vector<StoredTuple> matches;
    for (const Tuple& s : s_tuples) {
      EXPECT_EQ(store.count_matches(s.key, s.timestamp, half_width),
                [&] {
                  matches.clear();
                  store.collect_matches(s.key, s.timestamp, half_width,
                                        matches);
                  return matches.size();
                }())
          << simd::level_name(level);
      for (const StoredTuple& m : matches) {
        got.push_back(ResultPair{m.id, s.id});
      }
    }

    auto want = reference_join(r_tuples, s_tuples, half_width);
    auto order = [](const ResultPair& a, const ResultPair& b) {
      return a.r_id != b.r_id ? a.r_id < b.r_id : a.s_id < b.s_id;
    };
    std::sort(want.begin(), want.end(), order);
    std::sort(got.begin(), got.end(), order);
    ASSERT_EQ(want.size(), got.size()) << simd::level_name(level);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i].r_id, got[i].r_id) << simd::level_name(level);
      ASSERT_EQ(want[i].s_id, got[i].s_id) << simd::level_name(level);
    }
  }
}

// Interleaved insert / evict / probe against a brute-force shadow vector.
// Checks size(), count_matches, and the exact for_each_match id sequence —
// the store pins per-key insertion order as its visitation order.
TEST(TupleStoreProperty, EvictionRacesMatchShadow) {
  for (const simd::Level level : supported_levels()) {
    ForcedLevel forced(level);
    for (const std::uint64_t seed : {7ull, 4242ull, 90210ull}) {
      common::Xoshiro256 rng(seed);
      const auto tuples = random_tuples(1200, StreamSide::kR, 1, rng);

      TupleStore store;
      std::vector<Tuple> shadow;  // insertion order preserved
      double horizon = -std::numeric_limits<double>::infinity();

      for (std::size_t i = 0; i < tuples.size(); ++i) {
        store.insert(tuples[i]);
        shadow.push_back(tuples[i]);
        if (rng.next() % 16 == 0) {
          // Horizon near the probe window's trailing edge: tuples die right
          // where probes look. A tuple inserted after an eviction with an
          // older timestamp must survive until the next eviction — the
          // shadow erase models exactly that.
          horizon = tuples[i].timestamp - 0.25 * double(rng.next() % 12);
          store.evict_before(horizon);
          std::erase_if(shadow, [&](const Tuple& t) {
            return t.timestamp < horizon;
          });
          ASSERT_EQ(shadow.size(), store.size())
              << simd::level_name(level) << " seed=" << seed << " i=" << i;
        }
        if (rng.next() % 8 == 0) {
          const Tuple& probe = tuples[rng.next() % (i + 1)];
          const double hw = 0.25 * static_cast<double>(rng.next() % 8);
          std::uint64_t want_count = 0;
          std::vector<std::uint64_t> want_ids;
          for (const Tuple& t : shadow) {
            if (t.key == probe.key &&
                t.timestamp >= probe.timestamp - hw &&
                t.timestamp <= probe.timestamp + hw) {
              ++want_count;
              want_ids.push_back(t.id);
            }
          }
          EXPECT_EQ(want_count,
                    store.count_matches(probe.key, probe.timestamp, hw))
              << simd::level_name(level) << " seed=" << seed << " i=" << i;
          std::vector<std::uint64_t> got_ids;
          store.for_each_match(probe.key, probe.timestamp, hw,
                               [&](const StoredTuple& m) {
                                 got_ids.push_back(m.id);
                               });
          ASSERT_EQ(want_ids, got_ids)
              << simd::level_name(level) << " seed=" << seed << " i=" << i;
        }
      }
    }
  }
}

// The batched probe entry points must be the point probes verbatim:
// counts[i] == count_matches(probe i), and the (probe index, match)
// sequence of for_each_match_batch == concatenated for_each_match calls.
TEST(TupleStoreProperty, BatchProbesMatchPointProbes) {
  for (const simd::Level level : supported_levels()) {
    ForcedLevel forced(level);
    common::Xoshiro256 rng(31337);
    const auto stored = random_tuples(800, StreamSide::kR, 1, rng);
    const auto probes = random_tuples(257, StreamSide::kS, 10000, rng);
    const double half_width = 0.75;

    TupleStore store;
    store.insert_batch(stored);
    store.evict_before(6.0);  // leave a dead prefix in sorted chunks

    std::vector<std::uint64_t> counts(probes.size());
    store.count_matches_batch(probes, half_width, counts.data());
    for (std::size_t i = 0; i < probes.size(); ++i) {
      EXPECT_EQ(counts[i], store.count_matches(probes[i].key,
                                               probes[i].timestamp, half_width))
          << simd::level_name(level) << " i=" << i;
    }

    std::vector<std::pair<std::size_t, std::uint64_t>> want, got;
    for (std::size_t i = 0; i < probes.size(); ++i) {
      store.for_each_match(probes[i].key, probes[i].timestamp, half_width,
                           [&](const StoredTuple& m) {
                             want.emplace_back(i, m.id);
                           });
    }
    store.for_each_match_batch(probes, half_width,
                               [&](std::size_t i, const StoredTuple& m) {
                                 got.emplace_back(i, m.id);
                               });
    ASSERT_EQ(want, got) << simd::level_name(level);
  }
}

}  // namespace
}  // namespace dsjoin::stream
