#include "dsjoin/stream/window.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dsjoin/common/rng.hpp"

namespace dsjoin::stream {
namespace {

Tuple make_tuple(std::uint64_t id, std::int64_t key, double ts,
                 StreamSide side = StreamSide::kR, net::NodeId origin = 0) {
  Tuple t;
  t.id = id;
  t.key = key;
  t.timestamp = ts;
  t.side = side;
  t.origin = origin;
  return t;
}

TEST(TupleStore, CountsMatchesWithinWindow) {
  TupleStore store;
  store.insert(make_tuple(1, 5, 10.0));
  store.insert(make_tuple(2, 5, 12.0));
  store.insert(make_tuple(3, 5, 30.0));
  store.insert(make_tuple(4, 7, 11.0));
  EXPECT_EQ(store.count_matches(5, 11.0, 2.0), 2u);   // ids 1, 2
  EXPECT_EQ(store.count_matches(5, 11.0, 100.0), 3u);
  EXPECT_EQ(store.count_matches(7, 11.0, 0.5), 1u);
  EXPECT_EQ(store.count_matches(9, 11.0, 100.0), 0u);
  EXPECT_EQ(store.size(), 4u);
}

TEST(TupleStore, WindowBoundariesAreInclusive) {
  TupleStore store;
  store.insert(make_tuple(1, 5, 10.0));
  EXPECT_EQ(store.count_matches(5, 12.0, 2.0), 1u);  // exactly at the edge
  EXPECT_EQ(store.count_matches(5, 12.0, 1.999), 0u);
}

TEST(TupleStore, ForEachMatchVisitsAll) {
  TupleStore store;
  store.insert(make_tuple(1, 5, 10.0, StreamSide::kR, 3));
  store.insert(make_tuple(2, 5, 11.0, StreamSide::kR, 4));
  std::vector<std::uint64_t> ids;
  std::vector<net::NodeId> origins;
  store.for_each_match(5, 10.5, 1.0, [&](const StoredTuple& st) {
    ids.push_back(st.id);
    origins.push_back(st.origin);
  });
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2}));
  std::sort(origins.begin(), origins.end());
  EXPECT_EQ(origins, (std::vector<net::NodeId>{3, 4}));
}

TEST(TupleStore, EvictionDropsOldTuples) {
  TupleStore store;
  for (std::uint64_t i = 0; i < 100; ++i) {
    store.insert(make_tuple(i, 1, static_cast<double>(i)));
  }
  store.evict_before(50.0);
  EXPECT_EQ(store.size(), 50u);
  EXPECT_EQ(store.count_matches(1, 50.0, 1000.0), 50u);
  // timestamp 50 itself survives (strictly-before eviction)
  EXPECT_EQ(store.count_matches(1, 50.0, 0.0), 1u);
}

TEST(TupleStore, EvictionHandlesOutOfOrderInserts) {
  TupleStore store;
  common::Xoshiro256 rng(1);
  // Insert 500 tuples with shuffled timestamps.
  std::vector<double> times;
  for (int i = 0; i < 500; ++i) times.push_back(static_cast<double>(i));
  for (int i = 499; i > 0; --i) {
    std::swap(times[static_cast<std::size_t>(i)],
              times[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
  }
  for (int i = 0; i < 500; ++i) {
    store.insert(make_tuple(static_cast<std::uint64_t>(i), 9, times[static_cast<std::size_t>(i)]));
  }
  store.evict_before(250.0);
  EXPECT_EQ(store.size(), 250u);
  EXPECT_EQ(store.count_matches(9, 0.0, 1e9), 250u);
  EXPECT_EQ(store.count_matches(9, 100.0, 10.0), 0u);  // all below 250 gone
}

TEST(TupleStore, EvictionRemovesEmptyKeys) {
  TupleStore store;
  store.insert(make_tuple(1, 5, 1.0));
  store.evict_before(10.0);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.count_matches(5, 1.0, 10.0), 0u);
}

TEST(CountWindow, EvictsOldestWhenFull) {
  CountWindow window(3);
  EXPECT_FALSE(window.insert(make_tuple(1, 10, 0)).valid);
  EXPECT_FALSE(window.insert(make_tuple(2, 20, 1)).valid);
  EXPECT_FALSE(window.insert(make_tuple(3, 10, 2)).valid);
  EXPECT_TRUE(window.full());
  const auto evicted = window.insert(make_tuple(4, 30, 3));
  ASSERT_TRUE(evicted.valid);
  EXPECT_EQ(evicted.tuple.id, 1u);
  EXPECT_EQ(window.count_matches(10), 1u);  // only id 3 remains
  EXPECT_EQ(window.count_matches(20), 1u);
  EXPECT_EQ(window.count_matches(30), 1u);
  EXPECT_EQ(window.size(), 3u);
}

TEST(CountWindow, KeyCountsTrackMultiplicity) {
  CountWindow window(10);
  for (std::uint64_t i = 0; i < 5; ++i) window.insert(make_tuple(i, 7, 0));
  EXPECT_EQ(window.count_matches(7), 5u);
  EXPECT_EQ(window.count_matches(8), 0u);
}

TEST(LandmarkWindow, IgnoresPreLandmarkTuples) {
  LandmarkWindow window(100.0);
  EXPECT_FALSE(window.insert(make_tuple(1, 5, 99.0)));
  EXPECT_TRUE(window.insert(make_tuple(2, 5, 100.0)));
  EXPECT_TRUE(window.insert(make_tuple(3, 5, 150.0)));
  EXPECT_EQ(window.size(), 2u);
  EXPECT_EQ(window.count_matches(5), 2u);
}

TEST(LandmarkWindow, ResetDiscardsOlder) {
  LandmarkWindow window(0.0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    window.insert(make_tuple(i, 1, static_cast<double>(i)));
  }
  window.reset_landmark(5.0);
  EXPECT_EQ(window.size(), 5u);
  EXPECT_EQ(window.count_matches(1), 5u);
  EXPECT_DOUBLE_EQ(window.landmark(), 5.0);
}

TEST(ReferenceJoin, MatchesBruteForceSemantics) {
  std::vector<Tuple> r{make_tuple(1, 5, 10.0, StreamSide::kR),
                       make_tuple(2, 5, 20.0, StreamSide::kR),
                       make_tuple(3, 6, 10.0, StreamSide::kR)};
  std::vector<Tuple> s{make_tuple(10, 5, 11.0, StreamSide::kS),
                       make_tuple(11, 6, 100.0, StreamSide::kS)};
  const auto pairs = reference_join(r, s, 5.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].r_id, 1u);
  EXPECT_EQ(pairs[0].s_id, 10u);
}

TEST(TupleStoreVsReferenceJoin, AgreeOnRandomData) {
  // Property: streaming matches through TupleStore equals the brute-force
  // reference join, for every tuple as probe.
  common::Xoshiro256 rng(3);
  std::vector<Tuple> r_tuples, s_tuples;
  for (std::uint64_t i = 0; i < 300; ++i) {
    r_tuples.push_back(make_tuple(i, rng.next_in(1, 20),
                                  rng.next_double_in(0, 100), StreamSide::kR));
    s_tuples.push_back(make_tuple(1000 + i, rng.next_in(1, 20),
                                  rng.next_double_in(0, 100), StreamSide::kS));
  }
  const double half = 7.0;
  const auto expected = reference_join(r_tuples, s_tuples, half);

  TupleStore s_store;
  for (const auto& s : s_tuples) s_store.insert(s);
  std::size_t streamed = 0;
  for (const auto& r : r_tuples) {
    streamed += s_store.count_matches(r.key, r.timestamp, half);
  }
  EXPECT_EQ(streamed, expected.size());
}

}  // namespace
}  // namespace dsjoin::stream
