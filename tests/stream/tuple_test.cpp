#include "dsjoin/stream/tuple.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dsjoin::stream {
namespace {

TEST(StreamSide, OppositeFlips) {
  EXPECT_EQ(opposite(StreamSide::kR), StreamSide::kS);
  EXPECT_EQ(opposite(StreamSide::kS), StreamSide::kR);
  EXPECT_STREQ(to_string(StreamSide::kR), "R");
  EXPECT_STREQ(to_string(StreamSide::kS), "S");
}

TEST(Tuple, SerializeRoundTrip) {
  Tuple t;
  t.id = 0xfeedfacecafebeefULL;
  t.key = -123456789;
  t.timestamp = 98.7654321;
  t.origin = 17;
  t.side = StreamSide::kS;
  common::BufferWriter w;
  t.serialize(w);
  common::BufferReader r(w.bytes());
  auto decoded = Tuple::deserialize(r);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().id, t.id);
  EXPECT_EQ(decoded.value().key, t.key);
  EXPECT_DOUBLE_EQ(decoded.value().timestamp, t.timestamp);
  EXPECT_EQ(decoded.value().origin, t.origin);
  EXPECT_EQ(decoded.value().side, t.side);
  EXPECT_TRUE(r.exhausted());
}

TEST(Tuple, DeserializeRejectsBadSide) {
  Tuple t;
  common::BufferWriter w;
  t.serialize(w);
  auto bytes = std::move(w).take();
  bytes[8 + 8 + 8] = 9;  // side byte
  common::BufferReader r(bytes);
  EXPECT_FALSE(Tuple::deserialize(r).is_ok());
}

TEST(Tuple, DeserializeRejectsTruncation) {
  Tuple t;
  common::BufferWriter w;
  t.serialize(w);
  auto bytes = std::move(w).take();
  bytes.resize(10);
  common::BufferReader r(bytes);
  EXPECT_FALSE(Tuple::deserialize(r).is_ok());
}

TEST(ResultPair, EqualityAndHash) {
  const ResultPair a{1, 2};
  const ResultPair b{1, 2};
  const ResultPair c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  ResultPairHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));  // order matters (R id vs S id)
}

TEST(ResultPair, HashSpreadsOverSet) {
  std::unordered_set<ResultPair, ResultPairHash> set;
  for (std::uint64_t r = 0; r < 100; ++r) {
    for (std::uint64_t s = 0; s < 100; ++s) {
      set.insert(ResultPair{r, s});
    }
  }
  EXPECT_EQ(set.size(), 10000u);
}

}  // namespace
}  // namespace dsjoin::stream
