// Statistical properties of the synthetic workloads that the evaluation's
// claims rest on (DESIGN.md §3): marginal shapes, burst structure, and the
// spectral compressibility of the generated windows.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "dsjoin/dsp/compression.hpp"
#include "dsjoin/stream/generator.hpp"

namespace dsjoin::stream {
namespace {

WorkloadParams params4() {
  WorkloadParams p;
  p.nodes = 4;
  p.regions = 2;
  p.seed = 99;
  return p;
}

TEST(WorkloadStats, ZipfOffsetsAreHeadHeavy) {
  // With noise off, keys cluster around the (plateau-quantized) regional
  // center with Zipf-shaped offsets: rank-1 offsets must dominate.
  auto p = params4();
  p.noise = 0.0;
  p.locality = 1.0;
  ZipfWorkload wl(p);
  std::map<std::int64_t, int> counts;
  double t = 100.0;  // fixed instant => fixed center
  for (int i = 0; i < 20000; ++i) {
    ++counts[wl.next_key(0, StreamSide::kR, t)];
  }
  // The hottest key (offset 0) clearly beats the median populated key.
  int top = 0;
  long total_keys = 0;
  for (const auto& [key, count] : counts) {
    top = std::max(top, count);
    total_keys += 1;
  }
  EXPECT_GT(top, 20000 / static_cast<int>(total_keys) * 3);
}

TEST(WorkloadStats, ZipfReconstructionErrorWithinMembershipTolerance) {
  // The property DFTT's membership test actually relies on (DESIGN.md §3,
  // property 3): a regional window's truncated-DFT reconstruction tracks
  // the hot band to within the offset spread — i.e. the per-sample RMS
  // error is on the order of the Zipf offset scale, not the key domain.
  // (Locality escapes / noise are clipped before the DFT by the policies.)
  auto p = params4();
  p.noise = 0.0;
  p.locality = 1.0;
  ZipfWorkload wl(p);
  constexpr std::size_t kW = 2048;
  std::vector<double> window(kW);
  double t = 0.0;
  for (auto& v : window) {
    t += 0.02;
    v = static_cast<double>(wl.next_key(0, StreamSide::kR, t));
  }
  dsp::Fft fft(kW);
  const auto approx = dsp::reconstruct(dsp::compress(window, 256.0, fft));
  const double rms = std::sqrt(dsp::mean_squared_error(window, approx));
  EXPECT_LT(rms, 64.0);  // the offset spread; tolerance=32 catches the head
}

TEST(WorkloadStats, UniformReconstructionErrorIsDomainScale) {
  // The worst case: uniform keys reconstruct uselessly — the RMS error is
  // on the order of the key domain itself, five orders above ZIPF's.
  auto p = params4();
  UniformWorkload wl(p);
  constexpr std::size_t kW = 2048;
  std::vector<double> window(kW);
  double t = 0.0;
  for (auto& v : window) {
    t += 0.02;
    v = static_cast<double>(wl.next_key(0, StreamSide::kR, t));
  }
  dsp::Fft fft(kW);
  const auto approx = dsp::reconstruct(dsp::compress(window, 256.0, fft));
  const double rms = std::sqrt(dsp::mean_squared_error(window, approx));
  EXPECT_GT(rms, 50000.0);
}

TEST(WorkloadStats, NetworkFlowRunLengthsAreGeometric) {
  auto p = params4();
  p.noise = 0.0;
  NetworkWorkload wl(p, /*flow_continue_p=*/0.8);
  std::int64_t prev = -1;
  std::vector<int> runs;
  int run = 0;
  double t = 0.0;
  for (int i = 0; i < 30000; ++i) {
    t += 0.01;
    const auto key = wl.next_key(0, StreamSide::kR, t);
    if (key == prev) {
      ++run;
    } else {
      if (run > 0) runs.push_back(run);
      run = 1;
      prev = key;
    }
  }
  // Geometric(continue=0.8) mean run length is 1/(1-0.8) = 5.
  double mean_run = 0.0;
  for (int r : runs) mean_run += r;
  mean_run /= static_cast<double>(runs.size());
  EXPECT_NEAR(mean_run, 5.0, 0.8);
}

TEST(WorkloadStats, FinancialPricesAreTickAligned) {
  // Bid/ask keys derive from a tick-quantized mid: consecutive same-symbol
  // quotes stay within the jitter band of each other.
  auto p = params4();
  p.regions = 1;
  p.locality = 1.0;
  FinancialWorkload wl(p, /*symbols=*/1);
  double t = 0.0;
  std::int64_t lo = 1 << 20, hi = 0;
  for (int i = 0; i < 2000; ++i) {
    t += 0.01;
    const auto key = wl.next_key(0, StreamSide::kR, t);
    lo = std::min(lo, key);
    hi = std::max(hi, key);
  }
  // Single symbol over 20 s: the whole spread stays inside jitter (+/-8)
  // plus spread and a little drift.
  EXPECT_LT(hi - lo, 64);
}

TEST(WorkloadStats, LocalityControlsCrossRegionMass) {
  // Lower locality => more cross-region draws => more collisions with a
  // foreign region's key set.
  auto mass_with_locality = [&](double locality) {
    auto p = params4();
    p.noise = 0.0;
    p.locality = locality;
    p.seed = 7;
    ZipfWorkload wl(p);
    std::map<std::int64_t, long> region1;  // node 1's keys (region 1)
    double t = 0.0;
    for (int i = 0; i < 8000; ++i) {
      t += 0.01;
      ++region1[wl.next_key(1, StreamSide::kS, t)];
    }
    long mass = 0;
    t = 0.0;
    for (int i = 0; i < 8000; ++i) {
      t += 0.01;
      const auto it = region1.find(wl.next_key(0, StreamSide::kR, t));
      if (it != region1.end()) mass += it->second;
    }
    return mass;
  };
  EXPECT_GT(mass_with_locality(0.6), 2 * mass_with_locality(0.95) + 1);
}

}  // namespace
}  // namespace dsjoin::stream
