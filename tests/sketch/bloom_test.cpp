#include "dsjoin/sketch/bloom.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/common/serialize.hpp"

namespace dsjoin::sketch {
namespace {

TEST(OptimalHashCount, KnownValues) {
  // m/n = 10 -> k ~ 6.93 -> 7.
  EXPECT_EQ(optimal_hash_count(10000, 1000), 7u);
  // Degenerate inputs clamp to [1, 16].
  EXPECT_EQ(optimal_hash_count(10, 10000), 1u);
  EXPECT_EQ(optimal_hash_count(1 << 20, 10), 16u);
  EXPECT_EQ(optimal_hash_count(1024, 0), 1u);
}

TEST(BloomFalsePositiveRate, Monotonicity) {
  // More keys -> higher FP rate; more bits -> lower FP rate.
  EXPECT_LT(bloom_false_positive_rate(10000, 7, 500),
            bloom_false_positive_rate(10000, 7, 2000));
  EXPECT_GT(bloom_false_positive_rate(1000, 3, 500),
            bloom_false_positive_rate(100000, 3, 500));
  EXPECT_EQ(bloom_false_positive_rate(0, 1, 10), 1.0);
}

TEST(BloomFilter, RejectsBadGeometry) {
  EXPECT_THROW(BloomFilter(0, 3, 1), std::invalid_argument);
  EXPECT_THROW(BloomFilter(64, 0, 1), std::invalid_argument);
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter filter(4096, 3, 42);
  for (std::uint64_t key = 0; key < 200; ++key) filter.insert(key * 7 + 1);
  for (std::uint64_t key = 0; key < 200; ++key) {
    EXPECT_TRUE(filter.contains(key * 7 + 1)) << key;
  }
}

TEST(BloomFilter, FalsePositiveRateNearTheory) {
  constexpr std::size_t kBits = 8192;
  constexpr std::size_t kKeys = 1000;
  const std::uint32_t hashes = optimal_hash_count(kBits, kKeys);
  BloomFilter filter(kBits, hashes, 7);
  for (std::uint64_t key = 0; key < kKeys; ++key) filter.insert(key);
  int fp = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    if (filter.contains(1000000 + static_cast<std::uint64_t>(i))) ++fp;
  }
  const double observed = static_cast<double>(fp) / kProbes;
  const double theory = bloom_false_positive_rate(kBits, hashes, kKeys);
  EXPECT_NEAR(observed, theory, theory + 0.01);  // generous band
  EXPECT_NEAR(filter.estimated_fpp(), theory, theory);  // fill-based estimate
}

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter filter(1024, 3, 9);
  EXPECT_EQ(filter.popcount(), 0u);
  for (std::uint64_t key = 0; key < 100; ++key) EXPECT_FALSE(filter.contains(key));
}

TEST(BloomFilter, SerializeRoundTrip) {
  BloomFilter filter(2048, 4, 55);
  for (std::uint64_t key = 0; key < 100; ++key) filter.insert(key * key);
  common::BufferWriter w;
  filter.serialize(w);
  EXPECT_EQ(w.size() + 0u, 2048 / 8 + 20u);  // words + header
  common::BufferReader r(w.bytes());
  auto decoded = BloomFilter::deserialize(r);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().popcount(), filter.popcount());
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_TRUE(decoded.value().contains(key * key));
  }
}

TEST(BloomFilter, DeserializeRejectsGarbage) {
  common::BufferWriter w;
  w.write_u64(0);  // zero bits
  w.write_u32(3);
  w.write_u64(1);
  common::BufferReader r(w.bytes());
  EXPECT_FALSE(BloomFilter::deserialize(r).is_ok());
}

TEST(BloomFilter, DeserializeRejectsTruncation) {
  BloomFilter filter(2048, 4, 55);
  common::BufferWriter w;
  filter.serialize(w);
  auto bytes = std::move(w).take();
  bytes.resize(bytes.size() / 2);
  common::BufferReader r(bytes);
  EXPECT_FALSE(BloomFilter::deserialize(r).is_ok());
}

TEST(CountingBloomFilter, InsertEraseRestoresAbsence) {
  CountingBloomFilter filter(4096, 3, 77);
  filter.insert(123);
  EXPECT_TRUE(filter.contains(123));
  filter.erase(123);
  EXPECT_FALSE(filter.contains(123));
}

TEST(CountingBloomFilter, SlidingWindowBehaviour) {
  // Insert a window of keys, slide it forward, and verify membership
  // reflects only the live window (no false negatives for live keys).
  CountingBloomFilter filter(1 << 14, 4, 5);
  constexpr std::uint64_t kWindow = 500;
  std::vector<std::uint64_t> keys;
  common::Xoshiro256 rng(8);
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const std::uint64_t key = rng.next() % 100000;
    keys.push_back(key);
    filter.insert(key);
    if (keys.size() > kWindow) {
      filter.erase(keys[keys.size() - kWindow - 1]);
    }
  }
  // Every key still in the window must be present.
  for (std::size_t i = keys.size() - kWindow; i < keys.size(); ++i) {
    EXPECT_TRUE(filter.contains(keys[i]));
  }
}

TEST(CountingBloomFilter, DuplicateInsertsNeedMatchingErases) {
  CountingBloomFilter filter(2048, 3, 11);
  filter.insert(5);
  filter.insert(5);
  filter.erase(5);
  EXPECT_TRUE(filter.contains(5));  // one copy still inside
  filter.erase(5);
  EXPECT_FALSE(filter.contains(5));
}

TEST(CountingBloomFilter, SnapshotMatchesMembership) {
  CountingBloomFilter counting(4096, 3, 21);
  for (std::uint64_t key = 0; key < 300; ++key) counting.insert(key * 3);
  const BloomFilter snapshot = counting.snapshot();
  for (std::uint64_t key = 0; key < 300; ++key) {
    EXPECT_TRUE(snapshot.contains(key * 3));
  }
  // The snapshot uses the same hash seed, so behaviour matches exactly.
  int disagreements = 0;
  for (std::uint64_t probe = 1000000; probe < 1002000; ++probe) {
    if (snapshot.contains(probe) != counting.contains(probe)) ++disagreements;
  }
  EXPECT_EQ(disagreements, 0);
}

TEST(CountingBloomFilter, SnapshotSurvivesSerializeCycle) {
  CountingBloomFilter counting(2048, 3, 31);
  for (std::uint64_t key = 0; key < 100; ++key) counting.insert(key);
  common::BufferWriter w;
  counting.snapshot().serialize(w);
  common::BufferReader r(w.bytes());
  auto decoded = BloomFilter::deserialize(r);
  ASSERT_TRUE(decoded.is_ok());
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_TRUE(decoded.value().contains(key));
  }
}

}  // namespace
}  // namespace dsjoin::sketch
