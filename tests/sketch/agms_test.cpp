#include "dsjoin/sketch/agms.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/common/serialize.hpp"
#include "dsjoin/common/zipf.hpp"

namespace dsjoin::sketch {
namespace {

// Exact join size of two frequency maps: sum_v f(v) * g(v).
std::int64_t exact_join(const std::map<std::uint64_t, std::int64_t>& f,
                        const std::map<std::uint64_t, std::int64_t>& g) {
  std::int64_t total = 0;
  for (const auto& [key, count] : f) {
    const auto it = g.find(key);
    if (it != g.end()) total += count * it->second;
  }
  return total;
}

TEST(AgmsShape, BudgetKeepsPaperRatio) {
  const auto shape = AgmsShape::for_budget(500);
  EXPECT_LE(shape.counters(), 500u);
  EXPECT_GE(shape.s0, shape.s1);  // s0 : s1 = 5 : 1
  EXPECT_NEAR(static_cast<double>(shape.s0) / shape.s1, 5.0, 2.0);
}

TEST(AgmsShape, TinyBudgetStillValid) {
  const auto shape = AgmsShape::for_budget(1);
  EXPECT_GE(shape.s0, 1u);
  EXPECT_GE(shape.s1, 1u);
  EXPECT_LE(shape.counters(), 5u);
}

TEST(AgmsSketch, RejectsZeroShape) {
  EXPECT_THROW(AgmsSketch(AgmsShape{0, 1}, 1), std::invalid_argument);
  EXPECT_THROW(AgmsSketch(AgmsShape{1, 0}, 1), std::invalid_argument);
}

TEST(AgmsSketch, EmptyEstimatesZero) {
  AgmsSketch f(AgmsShape{5, 3}, 7);
  AgmsSketch g(AgmsShape{5, 3}, 7);
  EXPECT_DOUBLE_EQ(AgmsSketch::estimate_join(f, g), 0.0);
}

TEST(AgmsSketch, SelfJoinOfSingleKey) {
  // One key inserted n times: F2 = n^2 exactly (every atomic estimator
  // holds +/-n, squared = n^2, so mean and median are exact).
  AgmsSketch sketch(AgmsShape{5, 2}, 11);
  for (int i = 0; i < 9; ++i) sketch.update(42);
  EXPECT_DOUBLE_EQ(sketch.estimate_self_join(), 81.0);
}

TEST(AgmsSketch, DeletionCancelsInsertion) {
  AgmsSketch sketch(AgmsShape{5, 2}, 13);
  common::Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) sketch.update(rng.next() % 50);
  AgmsSketch copy = sketch;
  copy.update(7, +3);
  copy.update(7, -3);
  EXPECT_EQ(copy.counters(), sketch.counters());
}

TEST(AgmsSketch, JoinEstimateIsAccurateWithEnoughCounters) {
  // Large sketch => tight estimate; validates unbiasedness in practice.
  const std::uint64_t seed = 99;
  AgmsSketch f(AgmsShape{15, 40}, seed);
  AgmsSketch g(AgmsShape{15, 40}, seed);
  std::map<std::uint64_t, std::int64_t> fm, gm;
  common::Xoshiro256 rng(2);
  common::ZipfDistribution zipf(100, 1.0);
  for (int i = 0; i < 3000; ++i) {
    const auto a = zipf(rng);
    const auto b = zipf(rng);
    f.update(a);
    g.update(b);
    ++fm[a];
    ++gm[b];
  }
  const double exact = static_cast<double>(exact_join(fm, gm));
  const double estimate = AgmsSketch::estimate_join(f, g);
  EXPECT_NEAR(estimate, exact, 0.35 * exact);
}

TEST(AgmsSketch, EstimateImprovesWithWidth) {
  // Variance control: wider sketches give (stochastically) tighter
  // estimates. Checked via average relative error across seeds.
  std::map<std::uint64_t, std::int64_t> fm, gm;
  std::vector<std::uint64_t> fs, gs;
  common::Xoshiro256 rng(3);
  common::ZipfDistribution zipf(50, 1.1);
  for (int i = 0; i < 2000; ++i) {
    const auto a = zipf(rng), b = zipf(rng);
    fs.push_back(a);
    gs.push_back(b);
    ++fm[a];
    ++gm[b];
  }
  const double exact = static_cast<double>(exact_join(fm, gm));
  auto mean_rel_error = [&](AgmsShape shape) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      AgmsSketch f(shape, seed), g(shape, seed);
      for (auto v : fs) f.update(v);
      for (auto v : gs) g.update(v);
      total += std::abs(AgmsSketch::estimate_join(f, g) - exact) / exact;
    }
    return total / 10;
  };
  EXPECT_LT(mean_rel_error(AgmsShape{5, 64}), mean_rel_error(AgmsShape{5, 2}));
}

TEST(AgmsSketch, MergeEqualsUnion) {
  const std::uint64_t seed = 17;
  AgmsSketch a(AgmsShape{5, 4}, seed), b(AgmsShape{5, 4}, seed),
      both(AgmsShape{5, 4}, seed);
  common::Xoshiro256 rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto va = rng.next() % 99;
    const auto vb = rng.next() % 99;
    a.update(va);
    both.update(va);
    b.update(vb);
    both.update(vb);
  }
  a.merge(b);
  EXPECT_EQ(a.counters(), both.counters());
}

TEST(AgmsSketch, SerializeRoundTrip) {
  AgmsSketch sketch(AgmsShape{5, 3}, 23);
  for (int i = 0; i < 77; ++i) sketch.update(i * 13 % 31);
  common::BufferWriter w;
  sketch.serialize(w);
  common::BufferReader r(w.bytes());
  auto decoded = AgmsSketch::deserialize(r);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().counters(), sketch.counters());
  EXPECT_EQ(decoded.value().seed(), sketch.seed());
  // The decoded sketch must be combinable with the original.
  EXPECT_DOUBLE_EQ(AgmsSketch::estimate_join(sketch, decoded.value()),
                   sketch.estimate_self_join());
}

TEST(AgmsSketch, DeserializeRejectsGarbage) {
  common::BufferWriter w;
  w.write_u32(0);  // s0 = 0 is invalid
  w.write_u32(5);
  w.write_u64(1);
  common::BufferReader r(w.bytes());
  EXPECT_FALSE(AgmsSketch::deserialize(r).is_ok());
}

TEST(AgmsSketch, SetCountersReplacesGrid) {
  AgmsSketch sketch(AgmsShape{2, 2}, 5);
  sketch.set_counters({1, -2, 3, -4});
  EXPECT_EQ(sketch.counters(), (std::vector<std::int64_t>{1, -2, 3, -4}));
}

TEST(AgmsSketch, WireBytesMatchCounters) {
  AgmsSketch sketch(AgmsShape{5, 3}, 1);
  EXPECT_EQ(sketch.wire_bytes(), 15u * 8u);
}

TEST(FastAgmsSketch, SelfJoinOfSingleKey) {
  FastAgmsSketch sketch(7, 32, 3);
  for (int i = 0; i < 6; ++i) sketch.update(1234);
  EXPECT_DOUBLE_EQ(sketch.estimate_self_join(), 36.0);
}

TEST(FastAgmsSketch, JoinEstimateAccuracy) {
  const std::uint64_t seed = 31;
  FastAgmsSketch f(9, 256, seed), g(9, 256, seed);
  std::map<std::uint64_t, std::int64_t> fm, gm;
  common::Xoshiro256 rng(6);
  common::ZipfDistribution zipf(100, 1.0);
  for (int i = 0; i < 3000; ++i) {
    const auto a = zipf(rng), b = zipf(rng);
    f.update(a);
    g.update(b);
    ++fm[a];
    ++gm[b];
  }
  const double exact = static_cast<double>(exact_join(fm, gm));
  EXPECT_NEAR(FastAgmsSketch::estimate_join(f, g), exact, 0.3 * exact);
}

TEST(FastAgmsSketch, DeletionCancels) {
  FastAgmsSketch sketch(5, 16, 37);
  FastAgmsSketch reference(5, 16, 37);
  reference.update(9);
  sketch.update(9);
  sketch.update(500, +2);
  sketch.update(500, -2);
  EXPECT_DOUBLE_EQ(FastAgmsSketch::estimate_join(sketch, reference),
                   FastAgmsSketch::estimate_join(reference, reference));
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
}

}  // namespace
}  // namespace dsjoin::sketch
