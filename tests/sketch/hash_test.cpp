#include "dsjoin/sketch/hash.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace dsjoin::sketch {
namespace {

TEST(MulModM61, SmallValues) {
  EXPECT_EQ(mul_mod_m61(3, 4), 12u);
  EXPECT_EQ(mul_mod_m61(0, 12345), 0u);
  EXPECT_EQ(mul_mod_m61(1, kMersenne61 - 1), kMersenne61 - 1);
}

TEST(MulModM61, WrapsCorrectly) {
  // (p-1)^2 mod p == 1
  EXPECT_EQ(mul_mod_m61(kMersenne61 - 1, kMersenne61 - 1), 1u);
  // (p-1)*2 mod p == p-2
  EXPECT_EQ(mul_mod_m61(kMersenne61 - 1, 2), kMersenne61 - 2);
}

TEST(MulModM61, ResultAlwaysReduced) {
  common::Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(mul_mod_m61(rng.next() % kMersenne61, rng.next() % kMersenne61),
              kMersenne61);
  }
}

TEST(FourWiseHash, Deterministic) {
  common::Xoshiro256 rng_a(5), rng_b(5);
  FourWiseHash a(rng_a), b(rng_b);
  for (std::uint64_t x = 0; x < 100; ++x) EXPECT_EQ(a.eval(x), b.eval(x));
}

TEST(FourWiseHash, SignsAreBalanced) {
  common::Xoshiro256 rng(7);
  FourWiseHash h(rng);
  int sum = 0;
  constexpr int kN = 100000;
  for (int x = 0; x < kN; ++x) sum += h.sign(static_cast<std::uint64_t>(x));
  // Mean 0, stddev sqrt(N) ~ 316; 5 sigma bound.
  EXPECT_LT(std::abs(sum), 5 * 316);
}

TEST(FourWiseHash, PairwiseSignProductsBalanced) {
  // 4-wise independence implies E[xi(x) xi(y)] = 0 for x != y.
  common::Xoshiro256 rng(11);
  FourWiseHash h(rng);
  int sum = 0;
  constexpr int kN = 50000;
  for (int x = 0; x < kN; ++x) {
    sum += h.sign(static_cast<std::uint64_t>(x)) *
           h.sign(static_cast<std::uint64_t>(x) + 1000000);
  }
  EXPECT_LT(std::abs(sum), 5 * 224);
}

TEST(FourWiseHash, BucketsRoughlyUniform) {
  common::Xoshiro256 rng(13);
  FourWiseHash h(rng);
  constexpr std::uint64_t kBuckets = 16;
  std::map<std::uint64_t, int> counts;
  constexpr int kN = 160000;
  for (int x = 0; x < kN; ++x) {
    ++counts[h.bucket(static_cast<std::uint64_t>(x), kBuckets)];
  }
  for (const auto& [bucket, count] : counts) {
    EXPECT_LT(bucket, kBuckets);
    EXPECT_NEAR(count, kN / kBuckets, 0.05 * kN / kBuckets);
  }
}

TEST(DoubleHash, ProbesWithinRange) {
  common::Xoshiro256 rng(17);
  DoubleHash h(rng);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    for (std::uint32_t i = 0; i < 8; ++i) {
      EXPECT_LT(h.probe(key, i, 1021), 1021u);
    }
  }
}

TEST(DoubleHash, DistinctSeedsDistinctProbes) {
  common::Xoshiro256 rng(19);
  DoubleHash a(rng), b(rng);
  int equal = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    if (a.probe(key, 0, 1 << 20) == b.probe(key, 0, 1 << 20)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(DoubleHash, ProbesSpreadAcrossRange) {
  common::Xoshiro256 rng(23);
  DoubleHash h(rng);
  constexpr std::uint64_t kRange = 64;
  std::map<std::uint64_t, int> counts;
  for (std::uint64_t key = 0; key < 64000; ++key) ++counts[h.probe(key, 0, kRange)];
  EXPECT_EQ(counts.size(), kRange);
  for (const auto& [slot, count] : counts) {
    EXPECT_NEAR(count, 1000, 150) << slot;
  }
}

}  // namespace
}  // namespace dsjoin::sketch
