#include "dsjoin/core/policy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

namespace dsjoin::core {
namespace {

SystemConfig config_for(PolicyKind kind, std::uint32_t nodes = 6) {
  SystemConfig config;
  config.policy = kind;
  config.nodes = nodes;
  config.seed = 99;
  return config;
}

stream::Tuple tuple_with(std::int64_t key, stream::StreamSide side,
                         double ts = 1.0) {
  stream::Tuple t;
  t.id = 1;
  t.key = key;
  t.side = side;
  t.timestamp = ts;
  return t;
}

TEST(ThrottleToBudget, EndpointsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(throttle_to_budget(0.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(throttle_to_budget(1.0, 10), 9.0);
  EXPECT_DOUBLE_EQ(throttle_to_budget(0.5, 10), 3.0);  // sqrt(9)
  double prev = 0.0;
  for (double t = 0.0; t <= 1.0; t += 0.1) {
    const double budget = throttle_to_budget(t, 10);
    EXPECT_GE(budget, prev);
    prev = budget;
  }
  // Degenerate cluster sizes.
  EXPECT_DOUBLE_EQ(throttle_to_budget(0.5, 1), 0.0);
  EXPECT_DOUBLE_EQ(throttle_to_budget(0.5, 2), 1.0);
}

TEST(AllocateFlowProbabilities, ZeroScoresGetFloorOnly) {
  std::vector<double> scores(5, 0.0);
  const auto probs = allocate_flow_probabilities(scores, 3.0, 0.1);
  for (double p : probs) EXPECT_DOUBLE_EQ(p, 0.1);
}

TEST(AllocateFlowProbabilities, SpendsBudgetProportionally) {
  std::vector<double> scores{1.0, 3.0};
  const auto probs = allocate_flow_probabilities(scores, 0.8, 0.0);
  EXPECT_NEAR(probs[0] + probs[1], 0.8, 1e-9);
  EXPECT_NEAR(probs[1] / probs[0], 3.0, 1e-9);
}

TEST(AllocateFlowProbabilities, SaturatesAtOne) {
  std::vector<double> scores{100.0, 1.0, 1.0};
  const auto probs = allocate_flow_probabilities(scores, 2.0, 0.0);
  EXPECT_DOUBLE_EQ(probs[0], 1.0);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 2.0, 1e-9);
  EXPECT_NEAR(probs[1], probs[2], 1e-12);
}

TEST(AllocateFlowProbabilities, FullBudgetBroadcasts) {
  std::vector<double> scores{5.0, 0.1, 2.0, 0.4};
  const auto probs = allocate_flow_probabilities(scores, 4.0, 0.0);
  for (double p : probs) EXPECT_NEAR(p, 1.0, 1e-9);
}

TEST(AllocateFlowProbabilities, FloorIsRespected) {
  std::vector<double> scores{10.0, 0.0, 0.0};
  const auto probs = allocate_flow_probabilities(scores, 1.5, 0.2);
  EXPECT_GE(probs[1], 0.2 - 1e-12);
  EXPECT_GE(probs[2], 0.2 - 1e-12);
  EXPECT_DOUBLE_EQ(probs[0], 1.0);
  // Budget left over once every scored peer saturates is deliberately NOT
  // dumped on zero-score peers (they stay at the exploration floor).
  EXPECT_NEAR(std::accumulate(probs.begin(), probs.end(), 0.0), 1.4, 1e-9);
}

TEST(AllocateFlowProbabilities, EmptyAndClamps) {
  EXPECT_TRUE(allocate_flow_probabilities({}, 3.0, 0.1).empty());
  std::vector<double> scores{1.0};
  const auto probs = allocate_flow_probabilities(scores, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(probs[0], 1.0);  // budget clamped to n
}

TEST(PolicyFactory, CreatesEveryKind) {
  for (auto kind : {PolicyKind::kBase, PolicyKind::kRoundRobin, PolicyKind::kDft,
                    PolicyKind::kDftt, PolicyKind::kBloom, PolicyKind::kSketch,
                    PolicyKind::kSpectrum, PolicyKind::kSample}) {
    const auto policy = RoutingPolicy::create(config_for(kind), 0);
    ASSERT_NE(policy, nullptr);
    EXPECT_STREQ(policy->name(), to_string(kind));
  }
}

TEST(PolicyNames, RoundTripThroughStrings) {
  for (auto kind : {PolicyKind::kBase, PolicyKind::kRoundRobin, PolicyKind::kDft,
                    PolicyKind::kDftt, PolicyKind::kBloom, PolicyKind::kSketch,
                    PolicyKind::kSpectrum, PolicyKind::kSample}) {
    EXPECT_EQ(policy_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(policy_from_string("NOPE"), std::invalid_argument);
}

TEST(PolicyNames, RegistryCoversEveryKindOnce) {
  const auto registry = policy_names();
  EXPECT_EQ(registry.size(), 8u);
  std::set<std::string> unique;
  const auto csv = policy_names_csv();
  for (const auto& entry : registry) {
    unique.insert(entry.name);
    EXPECT_STREQ(to_string(entry.kind), entry.name);
    EXPECT_EQ(policy_from_string(entry.name), entry.kind);
    EXPECT_NE(csv.find(entry.name), std::string::npos) << entry.name;
  }
  EXPECT_EQ(unique.size(), registry.size());
}

TEST(BasePolicy, BroadcastsToAllPeers) {
  const auto policy = RoutingPolicy::create(config_for(PolicyKind::kBase, 5), 2);
  const auto dests = policy->route(tuple_with(1, stream::StreamSide::kR));
  EXPECT_EQ(dests.size(), 4u);
  std::set<net::NodeId> unique(dests.begin(), dests.end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_EQ(unique.count(2), 0u);  // never self
  EXPECT_TRUE(policy->piggyback_for(0).empty());
  EXPECT_TRUE(policy->maintenance(0.0).empty());
}

TEST(RoundRobinPolicy, CyclesThroughPeersEvenly) {
  auto config = config_for(PolicyKind::kRoundRobin, 4);
  config.throttle = 0.0;  // T = 1
  const auto policy = RoutingPolicy::create(config, 1);
  std::map<net::NodeId, int> counts;
  for (int i = 0; i < 300; ++i) {
    const auto dests = policy->route(tuple_with(1, stream::StreamSide::kR));
    ASSERT_EQ(dests.size(), 1u);
    EXPECT_NE(dests[0], 1u);
    ++counts[dests[0]];
  }
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [peer, count] : counts) EXPECT_EQ(count, 100) << peer;
}

TEST(RoundRobinPolicy, ThrottleWidensFanout) {
  auto config = config_for(PolicyKind::kRoundRobin, 6);
  config.throttle = 1.0;  // T = 5
  const auto policy = RoutingPolicy::create(config, 0);
  const auto dests = policy->route(tuple_with(1, stream::StreamSide::kR));
  EXPECT_EQ(dests.size(), 5u);
}

// Membership policies route towards a peer whose summary contains the key.
class MembershipPolicyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(MembershipPolicyTest, LearnsFromSummariesAndRoutesToOwners) {
  auto config = config_for(GetParam(), 3);
  config.dft_window = 256;
  config.kappa = 16.0;  // 16 coefficients
  config.summary_epoch_tuples = 32;
  config.throttle = 0.0;  // stingiest budget; scores must decide
  config.membership_tolerance = 8;

  // Three policies: node 0 (router under test), node 1 (whose stream sits
  // at key ~5000 — the owner of the matches) and node 2 (far away at
  // ~90000, so its summaries never contain the probed key).
  const auto router = RoutingPolicy::create(config, 0);
  const auto owner = RoutingPolicy::create(config, 1);
  const auto stranger = RoutingPolicy::create(config, 2);

  double now = 0.0;
  std::uint64_t id = 1;
  for (int i = 0; i < 512; ++i) {
    now += 0.02;
    stream::Tuple t = tuple_with(5000 + (i % 3), stream::StreamSide::kS, now);
    t.id = id++;
    t.origin = 1;
    owner->observe_local(t);
    // R-side values too, so both sides' summaries exist.
    stream::Tuple r = tuple_with(5000 + (i % 3), stream::StreamSide::kR, now);
    r.id = id++;
    r.origin = 1;
    owner->observe_local(r);
    (void)owner->route(t);
    for (auto& summary : owner->maintenance(now)) {
      if (summary.peer == 0) router->on_summary(1, summary.block);
    }
    const auto piggy = owner->piggyback_for(0);
    if (!piggy.empty()) router->on_summary(1, piggy);

    stream::Tuple far_s = tuple_with(90000 + (i % 3), stream::StreamSide::kS, now);
    far_s.id = id++;
    far_s.origin = 2;
    stranger->observe_local(far_s);
    stream::Tuple far_r = tuple_with(90000 + (i % 3), stream::StreamSide::kR, now);
    far_r.id = id++;
    far_r.origin = 2;
    stranger->observe_local(far_r);
    for (auto& summary : stranger->maintenance(now)) {
      if (summary.peer == 0) router->on_summary(2, summary.block);
    }
    const auto piggy2 = stranger->piggyback_for(0);
    if (!piggy2.empty()) router->on_summary(2, piggy2);
  }

  // Router's own stream also near 5000 so its local spectra are sane.
  for (int i = 0; i < 512; ++i) {
    now += 0.02;
    stream::Tuple t = tuple_with(5001, stream::StreamSide::kR, now);
    t.id = id++;
    router->observe_local(t);
  }

  int to_owner = 0, to_silent = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    now += 0.02;
    const auto dests = router->route(tuple_with(5001, stream::StreamSide::kR, now));
    for (auto d : dests) {
      ++total;
      if (d == 1) ++to_owner;
      if (d == 2) ++to_silent;
    }
  }
  EXPECT_GT(to_owner, 150);  // the owner's summary matches the key
  EXPECT_LT(to_silent, to_owner / 3);  // the stranger's summary does not
  EXPECT_GT(total, 0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, MembershipPolicyTest,
                         ::testing::Values(PolicyKind::kDftt, PolicyKind::kBloom));

TEST(DftPolicy, PiggybackCarriesCoefficientDeltas) {
  auto config = config_for(PolicyKind::kDft, 3);
  config.dft_window = 128;
  config.kappa = 16.0;
  config.summary_epoch_tuples = 16;
  const auto policy = RoutingPolicy::create(config, 0);
  double now = 0.0;
  for (int i = 0; i < 64; ++i) {
    now += 0.1;
    stream::Tuple t = tuple_with(100 + i % 7, stream::StreamSide::kR, now);
    policy->observe_local(t);
    (void)policy->maintenance(now);
  }
  const auto block = policy->piggyback_for(1);
  EXPECT_FALSE(block.empty());
  // Draining repeatedly (the per-frame cap spreads deltas over frames)
  // eventually syncs the peer; then piggybacks go empty until new changes.
  bool drained = false;
  for (int i = 0; i < 16; ++i) {
    if (policy->piggyback_for(1).empty()) {
      drained = true;
      break;
    }
  }
  EXPECT_TRUE(drained);
}

TEST(DftPolicy, MaintenanceFlushesToSilentPeers) {
  auto config = config_for(PolicyKind::kDft, 3);
  config.dft_window = 128;
  config.kappa = 16.0;
  config.summary_epoch_tuples = 8;
  config.stale_flush_epochs = 2;
  const auto policy = RoutingPolicy::create(config, 0);
  double now = 0.0;
  bool flushed_to_1 = false, flushed_to_2 = false;
  for (int i = 0; i < 64; ++i) {
    now += 0.1;
    policy->observe_local(tuple_with(50, stream::StreamSide::kR, now));
    for (auto& s : policy->maintenance(now)) {
      flushed_to_1 |= s.peer == 1;
      flushed_to_2 |= s.peer == 2;
      EXPECT_FALSE(s.block.empty());
    }
  }
  EXPECT_TRUE(flushed_to_1);
  EXPECT_TRUE(flushed_to_2);
}

TEST(SpectrumPolicy, BroadcastsSpectraEveryEpochAndLearns) {
  auto config = config_for(PolicyKind::kSpectrum, 3);
  config.summary_epoch_tuples = 16;
  config.dft_window = 256;
  config.kappa = 16.0;
  const auto sender = RoutingPolicy::create(config, 1);
  const auto receiver = RoutingPolicy::create(config, 0);
  double now = 0.0;
  int broadcasts = 0;
  for (int i = 0; i < 200; ++i) {
    now += 0.1;
    sender->observe_local(tuple_with(7000 + i % 4, stream::StreamSide::kS, now));
    sender->observe_local(tuple_with(7000 + i % 4, stream::StreamSide::kR, now));
    for (auto& s : sender->maintenance(now)) {
      ++broadcasts;
      if (s.peer == 0) receiver->on_summary(1, s.block);
    }
  }
  EXPECT_GT(broadcasts, 10);
  // Receiver's own stream near the same keys: peer 1 should attract a high
  // flow probability (key-independent join-size estimate).
  for (int i = 0; i < 300; ++i) {
    now += 0.1;
    receiver->observe_local(tuple_with(7001, stream::StreamSide::kR, now));
  }
  (void)receiver->route(tuple_with(7001, stream::StreamSide::kR, now));
  const auto probs = receiver->flow_probabilities();
  ASSERT_EQ(probs.size(), 3u);
  EXPECT_GT(probs[1], probs[2]);  // summarized matching peer beats silent one
}

TEST(SketchPolicy, BroadcastsSketchesEveryEpoch) {
  auto config = config_for(PolicyKind::kSketch, 4);
  config.summary_epoch_tuples = 10;
  const auto policy = RoutingPolicy::create(config, 0);
  double now = 0.0;
  int broadcasts = 0;
  for (int i = 0; i < 35; ++i) {
    now += 0.1;
    policy->observe_local(tuple_with(5, stream::StreamSide::kR, now));
    broadcasts += static_cast<int>(policy->maintenance(now).size());
  }
  // 3 epochs x 3 peers.
  EXPECT_EQ(broadcasts, 9);
}

TEST(SamplePolicy, BroadcastsSamplesEveryEpoch) {
  auto config = config_for(PolicyKind::kSample, 4);
  config.summary_epoch_tuples = 10;
  const auto policy = RoutingPolicy::create(config, 0);
  double now = 0.0;
  int broadcasts = 0;
  for (int i = 0; i < 35; ++i) {
    now += 0.1;
    policy->observe_local(tuple_with(5, stream::StreamSide::kR, now));
    for (auto& s : policy->maintenance(now)) {
      ++broadcasts;
      EXPECT_FALSE(s.block.empty());
    }
  }
  // 3 epochs x 3 peers.
  EXPECT_EQ(broadcasts, 9);
}

TEST(SamplePolicy, LearnsMatchingPeerFromSampleSummaries) {
  auto config = config_for(PolicyKind::kSample, 3);
  config.summary_epoch_tuples = 16;
  config.sample_capacity = 256;  // exact samples at this scale
  config.throttle = 0.5;         // budget sqrt(2) < n-1: ranking must show
  const auto sender = RoutingPolicy::create(config, 1);
  const auto receiver = RoutingPolicy::create(config, 0);
  double now = 0.0;
  int broadcasts = 0;
  for (int i = 0; i < 200; ++i) {
    now += 0.1;
    sender->observe_local(tuple_with(4200 + i % 4, stream::StreamSide::kS, now));
    sender->observe_local(tuple_with(4200 + i % 4, stream::StreamSide::kR, now));
    for (auto& s : sender->maintenance(now)) {
      ++broadcasts;
      if (s.peer == 0) receiver->on_summary(1, s.block);
    }
  }
  EXPECT_GT(broadcasts, 10);
  for (int i = 0; i < 100; ++i) {
    now += 0.1;
    receiver->observe_local(tuple_with(4201, stream::StreamSide::kR, now));
  }
  (void)receiver->route(tuple_with(4201, stream::StreamSide::kR, now));
  const auto probs = receiver->flow_probabilities();
  ASSERT_EQ(probs.size(), 3u);
  EXPECT_DOUBLE_EQ(probs[0], 0.0);  // self
  EXPECT_GT(probs[1], probs[2]);    // sampled matching peer beats silent one
}

TEST(SamplePolicy, AccumulatesEpsilonBoundTerms) {
  auto config = config_for(PolicyKind::kSample, 4);
  config.summary_epoch_tuples = 16;
  config.sample_capacity = 64;
  config.throttle = 0.5;
  const auto policy = RoutingPolicy::create(config, 0);
  EXPECT_DOUBLE_EQ(policy->epsilon_bound_terms().total_mass, 0.0);
  double now = 0.0;
  for (int i = 0; i < 50; ++i) {
    now += 0.1;
    policy->observe_local(tuple_with(7, stream::StreamSide::kS, now));
    (void)policy->route(tuple_with(7, stream::StreamSide::kR, now));
    (void)policy->maintenance(now);
  }
  const auto terms = policy->epsilon_bound_terms();
  // Unseeded peers charge the bound at least one missed tuple per routed
  // tuple at partial throttle, and the self-term seeds the denominator.
  EXPECT_GT(terms.total_mass, 0.0);
  EXPECT_GT(terms.missed_mass, 0.0);
  EXPECT_TRUE(std::isfinite(terms.missed_mass));
  EXPECT_TRUE(std::isfinite(terms.total_mass));
}

TEST(DftFamilyPolicy, FlowProbabilitiesExposeSelfAsZero) {
  auto config = config_for(PolicyKind::kDft, 4);
  const auto policy = RoutingPolicy::create(config, 2);
  (void)policy->route(tuple_with(1, stream::StreamSide::kR));
  const auto probs = policy->flow_probabilities();
  ASSERT_EQ(probs.size(), 4u);
  EXPECT_DOUBLE_EQ(probs[2], 0.0);
}

}  // namespace
}  // namespace dsjoin::core
