#include "dsjoin/core/system.hpp"

#include <gtest/gtest.h>

namespace dsjoin::core {
namespace {

SystemConfig small_config(PolicyKind kind, const std::string& workload = "ZIPF") {
  SystemConfig config;
  config.policy = kind;
  config.workload = workload;
  config.nodes = 4;
  config.tuples_per_node = 600;
  config.seed = 7;
  return config;
}

TEST(DspSystem, RejectsSingleNode) {
  SystemConfig config;
  config.nodes = 1;
  EXPECT_THROW(DspSystem system(config), std::invalid_argument);
}

TEST(DspSystem, BaseIsExact) {
  // The headline sanity property: BASE broadcasts everything, so every
  // oracle pair is reported (epsilon == 0 within this retention budget).
  const auto result = run_experiment(small_config(PolicyKind::kBase));
  EXPECT_GT(result.exact_pairs, 100u);
  EXPECT_EQ(result.reported_pairs, result.exact_pairs);
  EXPECT_DOUBLE_EQ(result.epsilon, 0.0);
  EXPECT_EQ(result.decode_failures, 0u);
}

TEST(DspSystem, BaseSendsNMinusOneTupleFrames) {
  const auto config = small_config(PolicyKind::kBase);
  const auto result = run_experiment(config);
  const std::uint64_t arrivals = result.total_arrivals;
  EXPECT_EQ(result.traffic.frames(net::FrameKind::kTuple),
            arrivals * (config.nodes - 1));
}

TEST(DspSystem, RunsAreDeterministic) {
  const auto a = run_experiment(small_config(PolicyKind::kDftt));
  const auto b = run_experiment(small_config(PolicyKind::kDftt));
  EXPECT_EQ(a.exact_pairs, b.exact_pairs);
  EXPECT_EQ(a.reported_pairs, b.reported_pairs);
  EXPECT_EQ(a.traffic.total_frames(), b.traffic.total_frames());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(DspSystem, SeedsChangeOutcomes) {
  auto config = small_config(PolicyKind::kDftt);
  const auto a = run_experiment(config);
  config.seed = 8;
  const auto b = run_experiment(config);
  EXPECT_NE(a.exact_pairs, b.exact_pairs);
}

// Every approximate policy must beat BASE on tuple traffic while keeping
// epsilon bounded away from 1 on the skewed workload.
class ApproximatePolicyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(ApproximatePolicyTest, TradesAccuracyForTraffic) {
  auto config = small_config(GetParam());
  config.throttle = 0.5;
  const auto result = run_experiment(config);
  const auto base = run_experiment(small_config(PolicyKind::kBase));
  EXPECT_LT(result.traffic.frames(net::FrameKind::kTuple),
            base.traffic.frames(net::FrameKind::kTuple));
  EXPECT_GE(result.epsilon, 0.0);
  EXPECT_LT(result.epsilon, 0.7);
  EXPECT_EQ(result.decode_failures, 0u);
  EXPECT_GT(result.reported_pairs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, ApproximatePolicyTest,
                         ::testing::Values(PolicyKind::kRoundRobin,
                                           PolicyKind::kDft, PolicyKind::kDftt,
                                           PolicyKind::kBloom,
                                           PolicyKind::kSketch));

TEST(DspSystem, ThrottleOneApproachesBase) {
  auto config = small_config(PolicyKind::kDftt);
  config.throttle = 1.0;
  const auto result = run_experiment(config);
  EXPECT_LT(result.epsilon, 0.02);
}

TEST(DspSystem, ThrottleMonotonicityInEpsilon) {
  auto config = small_config(PolicyKind::kDftt);
  config.tuples_per_node = 1000;
  config.throttle = 0.1;
  const double eps_low = run_experiment(config).epsilon;
  config.throttle = 0.9;
  const double eps_high = run_experiment(config).epsilon;
  EXPECT_GT(eps_low, eps_high);
}

TEST(DspSystem, UniformWorkloadTriggersFallback) {
  auto config = small_config(PolicyKind::kDft, "UNI");
  config.tuples_per_node = 1500;
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.fallback_engaged);
}

TEST(DspSystem, SkewedWorkloadDoesNotFallBack) {
  auto config = small_config(PolicyKind::kDft, "ZIPF");
  config.tuples_per_node = 1500;
  const auto result = run_experiment(config);
  EXPECT_FALSE(result.fallback_engaged);
}

TEST(DspSystem, DftPoliciesAccountSummaryBytes) {
  const auto result = run_experiment(small_config(PolicyKind::kDftt));
  EXPECT_GT(result.summary_byte_fraction, 0.0);
  EXPECT_LT(result.summary_byte_fraction, 0.5);
}

TEST(DspSystem, BaseHasNoSummaryTraffic) {
  const auto result = run_experiment(small_config(PolicyKind::kBase));
  EXPECT_DOUBLE_EQ(result.summary_byte_fraction, 0.0);
  EXPECT_EQ(result.traffic.frames(net::FrameKind::kSummary), 0u);
}

TEST(DspSystem, ResultFramesShipDiscoveredPairs) {
  const auto result = run_experiment(small_config(PolicyKind::kBase));
  EXPECT_GT(result.traffic.frames(net::FrameKind::kResult), 0u);
}

TEST(DspSystem, AllWorkloadsRunAllPolicies) {
  for (const char* workload : {"UNI", "ZIPF", "FIN", "NWRK"}) {
    for (auto kind : {PolicyKind::kBase, PolicyKind::kDftt, PolicyKind::kBloom,
                      PolicyKind::kSketch}) {
      auto config = small_config(kind, workload);
      config.tuples_per_node = 250;
      const auto result = run_experiment(config);
      EXPECT_EQ(result.decode_failures, 0u)
          << workload << "/" << to_string(kind);
      EXPECT_GT(result.total_arrivals, 0u);
    }
  }
}

TEST(DspSystem, BackpressureStretchesBaseMakespan) {
  // At 10 nodes, BASE's O(N^2) traffic exceeds the per-node 90 kbps budget
  // and ingestion stalls; an approximate policy at the same scale does not.
  SystemConfig config;
  config.nodes = 10;
  config.tuples_per_node = 400;
  config.policy = PolicyKind::kBase;
  const auto base = run_experiment(config);
  config.policy = PolicyKind::kDftt;
  config.throttle = 0.3;
  const auto dftt = run_experiment(config);
  EXPECT_GT(base.makespan_s, 1.3 * dftt.makespan_s);
  EXPECT_GT(dftt.results_per_second, base.results_per_second);
}

TEST(DspSystem, NodeAccessorsExposeCounters) {
  DspSystem system(small_config(PolicyKind::kDftt));
  const auto result = system.run();
  std::uint64_t local_total = 0;
  for (net::NodeId id = 0; id < 4; ++id) {
    local_total += system.node(id).local_tuples();
  }
  EXPECT_EQ(local_total, result.total_arrivals);
  EXPECT_EQ(system.metrics().distinct_pairs(), result.reported_pairs);
  EXPECT_EQ(system.oracle().total_pairs(), result.exact_pairs);
}

}  // namespace
}  // namespace dsjoin::core
