// core::validate_config — the one validity gate every CLI site, the
// CONFIG decoder and the engine entry points share. The ranges asserted
// here used to be duplicated per flag in bench_util.hpp and dsjoin_coord;
// this test pins the gate so a loosened or dropped check is caught once,
// centrally.
#include <gtest/gtest.h>

#include <limits>

#include "dsjoin/core/config.hpp"

namespace dsjoin::core {
namespace {

SystemConfig valid_config() {
  SystemConfig config;  // defaults are a valid run
  return config;
}

TEST(ValidateConfig, DefaultsAreValid) {
  EXPECT_TRUE(validate_config(valid_config()).is_ok());
}

TEST(ValidateConfig, RejectsSingleNodeCluster) {
  auto config = valid_config();
  config.nodes = 1;
  EXPECT_FALSE(validate_config(config).is_ok());
}

TEST(ValidateConfig, RejectsCoalesceFramesOutOfRange) {
  auto config = valid_config();
  config.coalesce_frames = 0;
  EXPECT_FALSE(validate_config(config).is_ok());
  config.coalesce_frames = 0x10000;
  EXPECT_FALSE(validate_config(config).is_ok());
  config.coalesce_frames = 0xFFFF;
  EXPECT_TRUE(validate_config(config).is_ok());
}

TEST(ValidateConfig, RejectsCoalesceBytesOutOfRange) {
  auto config = valid_config();
  config.coalesce_bytes = 0;
  EXPECT_FALSE(validate_config(config).is_ok());
  config.coalesce_bytes = (1u << 24) + 1;
  EXPECT_FALSE(validate_config(config).is_ok());
}

TEST(ValidateConfig, RejectsBadSummarySyncEpoch) {
  auto config = valid_config();
  config.summary_sync_epoch_s = 0.0;
  EXPECT_FALSE(validate_config(config).is_ok());
  config.summary_sync_epoch_s = 3601.0;
  EXPECT_FALSE(validate_config(config).is_ok());
  config.summary_sync_epoch_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(validate_config(config).is_ok());
  config.summary_sync_epoch_s = 0.25;
  EXPECT_TRUE(validate_config(config).is_ok());
}

TEST(ValidateConfig, RejectsUnsupportedQuantWidth) {
  auto config = valid_config();
  for (std::uint32_t bits : {1u, 7u, 9u, 32u}) {
    config.summary_quant_bits = bits;
    EXPECT_FALSE(validate_config(config).is_ok()) << bits;
  }
  for (std::uint32_t bits : {0u, 8u, 16u}) {
    config.summary_quant_bits = bits;
    EXPECT_TRUE(validate_config(config).is_ok()) << bits;
  }
}

TEST(ValidateConfig, RejectsSampleKnobsOutOfRange) {
  auto config = valid_config();
  config.sample_capacity = (1u << 15) + 1;
  EXPECT_FALSE(validate_config(config).is_ok());
  config.sample_capacity = 0;
  config.sample_strata = 0;
  EXPECT_FALSE(validate_config(config).is_ok());
  config.sample_strata = 4097;
  EXPECT_FALSE(validate_config(config).is_ok());
}

TEST(ValidateConfig, RejectsThrottleAndWidthOutOfRange) {
  auto config = valid_config();
  config.throttle = -0.1;
  EXPECT_FALSE(validate_config(config).is_ok());
  config.throttle = 1.1;
  EXPECT_FALSE(validate_config(config).is_ok());
  config.throttle = 0.5;
  config.join_half_width_s = 0.0;
  EXPECT_FALSE(validate_config(config).is_ok());
  config.join_half_width_s = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(validate_config(config).is_ok());
}

TEST(ValidateConfig, RejectsTooManyQueries) {
  auto config = valid_config();
  for (std::uint32_t i = 0; i <= kMaxQueries; ++i) {
    QuerySpec spec;
    spec.id = i;
    config.queries.push_back(spec);
  }
  EXPECT_FALSE(validate_config(config).is_ok());
  config.queries.pop_back();
  EXPECT_TRUE(validate_config(config).is_ok());
}

TEST(ValidateConfig, RejectsDuplicateQueryIds) {
  auto config = valid_config();
  QuerySpec spec;
  spec.id = 3;
  config.queries.push_back(spec);
  config.queries.push_back(spec);
  EXPECT_FALSE(validate_config(config).is_ok());
  config.queries.back().id = 4;
  EXPECT_TRUE(validate_config(config).is_ok());
}

TEST(ValidateConfig, RejectsPerQueryRangeViolations) {
  auto config = valid_config();
  QuerySpec spec;
  spec.id = 0;
  spec.throttle = 1.5;
  config.queries.push_back(spec);
  EXPECT_FALSE(validate_config(config).is_ok());
  config.queries.back().throttle = 0.5;
  config.queries.back().join_half_width_s = -1.0;
  EXPECT_FALSE(validate_config(config).is_ok());
  config.queries.back().join_half_width_s = 2.0;
  EXPECT_TRUE(validate_config(config).is_ok());
}

TEST(ValidateConfig, ParseQueriesRoundTripsThroughGate) {
  auto config = valid_config();
  const auto parsed = parse_queries("DFTT:0.5:10;SMPL:0.7:4;BASE", config);
  ASSERT_TRUE(bool(parsed)) << parsed.status().message();
  config.queries = parsed.value();
  ASSERT_EQ(config.queries.size(), 3u);
  EXPECT_EQ(config.queries[0].policy, PolicyKind::kDftt);
  EXPECT_EQ(config.queries[1].policy, PolicyKind::kSample);
  EXPECT_EQ(config.queries[2].policy, PolicyKind::kBase);
  EXPECT_DOUBLE_EQ(config.queries[1].join_half_width_s, 4.0);
  EXPECT_TRUE(validate_config(config).is_ok());
  EXPECT_FALSE(bool(parse_queries("NOPE:0.5", config)));
  EXPECT_FALSE(bool(parse_queries("DFTT:abc", config)));
  // A parseable-but-nonsense value flows through to the gate.
  const auto nan_spec = parse_queries("DFTT:nan", valid_config());
  ASSERT_TRUE(bool(nan_spec));
  auto nan_config = valid_config();
  nan_config.queries = nan_spec.value();
  EXPECT_FALSE(validate_config(nan_config).is_ok());
}

}  // namespace
}  // namespace dsjoin::core
