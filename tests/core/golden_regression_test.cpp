// Golden regression pins: N=4, seed 42, ZIPF, 400 tuples/node/side.
//
// The simulator is deterministic end to end (fixed-seed xoshiro streams,
// virtual time, -ffp-contract=off builds), so the headline figure metrics —
// messages per result tuple and epsilon — are pinned exactly per policy.
// A change here means the experiment pipeline changed behaviour: either a
// bug, or an intentional change that must update these numbers *and* be
// called out in review. Integer counts are compared with EXPECT_EQ; the two
// doubles are ratios of those integers, so EXPECT_DOUBLE_EQ is exact too.
#include <gtest/gtest.h>

#include "dsjoin/core/system.hpp"

namespace dsjoin::core {
namespace {

struct Golden {
  PolicyKind policy;
  std::uint64_t exact_pairs;
  std::uint64_t reported_pairs;
  std::uint64_t total_frames;
  double epsilon;
  double messages_per_result;
};

// Regenerate by running this config per policy and printing with %.17g.
constexpr Golden kGoldens[] = {
    {PolicyKind::kBase, 6622ull, 6622ull, 13330ull, 0.0, 2.0129870129870131},
    {PolicyKind::kRoundRobin, 6622ull, 6182ull, 9055ull, 0.066445182724252483,
     1.464736331284374},
    {PolicyKind::kDft, 6622ull, 6070ull, 7434ull, 0.083358501963153087,
     1.2247116968698517},
    {PolicyKind::kDftt, 6622ull, 6231ull, 6061ull, 0.059045605557233483,
     0.97271705986198043},
    {PolicyKind::kBloom, 6622ull, 6006ull, 5965ull, 0.093023255813953543,
     0.99317349317349313},
    {PolicyKind::kSketch, 6622ull, 5958ull, 7722ull, 0.1002718212020538,
     1.2960725075528701},
    {PolicyKind::kSpectrum, 6622ull, 6241ull, 8372ull, 0.057535487768045956,
     1.3414516904342253},
};

SystemConfig golden_config(PolicyKind kind) {
  SystemConfig config;
  config.policy = kind;
  config.workload = "ZIPF";
  config.nodes = 4;
  config.tuples_per_node = 400;
  config.seed = 42;
  return config;
}

class GoldenRegression : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenRegression, PinnedMetricsUnchanged) {
  const Golden& golden = GetParam();
  const auto result = run_experiment(golden_config(golden.policy));
  EXPECT_EQ(result.exact_pairs, golden.exact_pairs);
  EXPECT_EQ(result.reported_pairs, golden.reported_pairs);
  EXPECT_EQ(result.traffic.total_frames(), golden.total_frames);
  EXPECT_DOUBLE_EQ(result.epsilon, golden.epsilon);
  EXPECT_DOUBLE_EQ(result.messages_per_result, golden.messages_per_result);
}

TEST_P(GoldenRegression, ParallelDriverMatchesGoldens) {
  // The pins hold for the parallel driver too — same numbers, any strands.
  auto config = golden_config(GetParam().policy);
  config.worker_threads = 3;
  const auto result = run_experiment(config);
  EXPECT_EQ(result.reported_pairs, GetParam().reported_pairs);
  EXPECT_EQ(result.traffic.total_frames(), GetParam().total_frames);
  EXPECT_DOUBLE_EQ(result.epsilon, GetParam().epsilon);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, GoldenRegression,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) {
                           return std::string(to_string(info.param.policy));
                         });

}  // namespace
}  // namespace dsjoin::core
