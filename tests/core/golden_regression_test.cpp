// Golden regression pins: N=4, seed 42, ZIPF, 400 tuples/node/side.
//
// The simulator is deterministic end to end (fixed-seed xoshiro streams,
// virtual time, -ffp-contract=off builds), so the headline figure metrics —
// messages per result tuple and epsilon — are pinned exactly per policy.
// A change here means the experiment pipeline changed behaviour: either a
// bug, or an intentional change that must update these numbers *and* be
// called out in review. Integer counts are compared with EXPECT_EQ; the two
// doubles are ratios of those integers, so EXPECT_DOUBLE_EQ is exact too.
#include <gtest/gtest.h>

#include "dsjoin/core/system.hpp"
#include "dsjoin/net/frame.hpp"

namespace dsjoin::core {
namespace {

struct Golden {
  PolicyKind policy;
  std::uint64_t exact_pairs;
  std::uint64_t reported_pairs;
  std::uint64_t total_frames;
  std::uint64_t summary_frames;   ///< dedicated kSummary frames sent
  std::uint64_t piggyback_bytes;  ///< summary bytes riding on tuple frames
  double epsilon;
  double messages_per_result;
};

// Regenerate by running this config per policy and printing with %.17g.
// The summary columns pin the coefficient-exchange plane itself: the DFT
// family piggybacks coefficients on tuple frames (zero dedicated summary
// frames, nonzero piggyback bytes) while BLOOM/SKCH/SPEC ship epoch blocks
// as dedicated frames — a regression in either channel shows up here even
// when pairs and epsilon happen to survive it.
constexpr Golden kGoldens[] = {
    {PolicyKind::kBase, 6622ull, 6622ull, 13330ull, 0ull, 0ull, 0.0,
     2.0129870129870131},
    {PolicyKind::kRoundRobin, 6622ull, 6182ull, 9055ull, 0ull, 0ull,
     0.066445182724252483, 1.464736331284374},
    {PolicyKind::kDft, 6622ull, 6129ull, 7575ull, 0ull, 12880ull,
     0.07444880700694656, 1.2359275575134605},
    {PolicyKind::kDftt, 6622ull, 6234ull, 6083ull, 0ull, 13064ull,
     0.058592570220477147, 0.97577799165864609},
    {PolicyKind::kBloom, 6622ull, 6059ull, 5933ull, 36ull, 0ull,
     0.085019631531259465, 0.97920448918963521},
    {PolicyKind::kSketch, 6622ull, 5975ull, 7664ull, 36ull, 0ull,
     0.097704620960434863, 1.2826778242677823},
    {PolicyKind::kSpectrum, 6622ull, 6230ull, 8344ull, 36ull, 0ull,
     0.059196617336152224, 1.3393258426966292},
};

SystemConfig golden_config(PolicyKind kind) {
  SystemConfig config;
  config.policy = kind;
  config.workload = "ZIPF";
  config.nodes = 4;
  config.tuples_per_node = 400;
  config.seed = 42;
  return config;
}

class GoldenRegression : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenRegression, PinnedMetricsUnchanged) {
  const Golden& golden = GetParam();
  const auto result = run_experiment(golden_config(golden.policy));
  EXPECT_EQ(result.exact_pairs, golden.exact_pairs);
  EXPECT_EQ(result.reported_pairs, golden.reported_pairs);
  EXPECT_EQ(result.traffic.total_frames(), golden.total_frames);
  EXPECT_EQ(result.traffic.frames(net::FrameKind::kSummary),
            golden.summary_frames);
  EXPECT_EQ(result.traffic.piggyback_bytes, golden.piggyback_bytes);
  EXPECT_DOUBLE_EQ(result.epsilon, golden.epsilon);
  EXPECT_DOUBLE_EQ(result.messages_per_result, golden.messages_per_result);
  // Virtual-time stamping buffers early summaries instead of dropping any:
  // in the simulator nothing is ever late.
  EXPECT_EQ(result.late_summaries, 0u);
}

TEST_P(GoldenRegression, ParallelDriverMatchesGoldens) {
  // The pins hold for the parallel driver too — same numbers, any strands.
  auto config = golden_config(GetParam().policy);
  config.worker_threads = 3;
  const auto result = run_experiment(config);
  EXPECT_EQ(result.reported_pairs, GetParam().reported_pairs);
  EXPECT_EQ(result.traffic.total_frames(), GetParam().total_frames);
  EXPECT_EQ(result.traffic.frames(net::FrameKind::kSummary),
            GetParam().summary_frames);
  EXPECT_EQ(result.traffic.piggyback_bytes, GetParam().piggyback_bytes);
  EXPECT_DOUBLE_EQ(result.epsilon, GetParam().epsilon);
  EXPECT_EQ(result.late_summaries, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, GoldenRegression,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) {
                           return std::string(to_string(info.param.policy));
                         });

}  // namespace
}  // namespace dsjoin::core
