// The parallel driver contract: worker_threads >= 1 is bit-identical to the
// serial driver — same |Psi-hat|, same per-node/per-link message counts,
// same RNG-driven traffic, same virtual clock — for every policy and seed.
#include <gtest/gtest.h>

#include <string>

#include "dsjoin/core/system.hpp"

namespace dsjoin::core {
namespace {

SystemConfig base_config(PolicyKind kind, std::uint64_t seed) {
  SystemConfig config;
  config.policy = kind;
  config.workload = "ZIPF";
  config.nodes = 4;
  config.tuples_per_node = 350;
  config.seed = seed;
  return config;
}

struct RunSnapshot {
  ExperimentResult result;
  std::vector<std::uint64_t> per_node_discoveries;
  std::uint64_t total_reports = 0;
  double last_report_time = 0.0;
  std::vector<net::TrafficCounters> links;  // (from, to) row-major
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
};

RunSnapshot run(SystemConfig config, std::uint32_t workers) {
  config.worker_threads = workers;
  DspSystem system(config);
  RunSnapshot snap;
  snap.result = system.run();
  snap.per_node_discoveries = system.metrics().per_node_discoveries();
  snap.total_reports = system.metrics().total_reports();
  snap.last_report_time = system.metrics().last_report_time();
  for (net::NodeId from = 0; from < config.nodes; ++from) {
    for (net::NodeId to = 0; to < config.nodes; ++to) {
      if (from == to) continue;
      snap.links.push_back(system.transport().link_stats(from, to));
    }
  }
  snap.dropped = system.transport().dropped_frames();
  snap.corrupted = system.transport().corrupted_frames();
  return snap;
}

void expect_counters_equal(const net::TrafficCounters& a,
                           const net::TrafficCounters& b) {
  EXPECT_EQ(a.frames_by_kind, b.frames_by_kind);
  EXPECT_EQ(a.bytes_by_kind, b.bytes_by_kind);
  EXPECT_EQ(a.piggyback_bytes, b.piggyback_bytes);
}

// Exact equality throughout — including doubles. The parallel driver claims
// bit-identity, not statistical equivalence.
void expect_identical(const RunSnapshot& serial, const RunSnapshot& parallel) {
  EXPECT_EQ(serial.result.exact_pairs, parallel.result.exact_pairs);
  EXPECT_EQ(serial.result.reported_pairs, parallel.result.reported_pairs);
  EXPECT_EQ(serial.result.total_arrivals, parallel.result.total_arrivals);
  EXPECT_EQ(serial.result.decode_failures, parallel.result.decode_failures);
  EXPECT_EQ(serial.result.fallback_engaged, parallel.result.fallback_engaged);
  EXPECT_EQ(serial.result.epsilon, parallel.result.epsilon);
  EXPECT_EQ(serial.result.messages_per_result,
            parallel.result.messages_per_result);
  EXPECT_EQ(serial.result.results_per_second,
            parallel.result.results_per_second);
  EXPECT_EQ(serial.result.ingest_per_second, parallel.result.ingest_per_second);
  EXPECT_EQ(serial.result.makespan_s, parallel.result.makespan_s);
  EXPECT_EQ(serial.result.summary_byte_fraction,
            parallel.result.summary_byte_fraction);
  expect_counters_equal(serial.result.traffic, parallel.result.traffic);

  EXPECT_EQ(serial.per_node_discoveries, parallel.per_node_discoveries);
  EXPECT_EQ(serial.total_reports, parallel.total_reports);
  EXPECT_EQ(serial.last_report_time, parallel.last_report_time);
  EXPECT_EQ(serial.dropped, parallel.dropped);
  EXPECT_EQ(serial.corrupted, parallel.corrupted);

  ASSERT_EQ(serial.links.size(), parallel.links.size());
  for (std::size_t i = 0; i < serial.links.size(); ++i) {
    SCOPED_TRACE("link " + std::to_string(i));
    expect_counters_equal(serial.links[i], parallel.links[i]);
  }
}

class ParallelDeterminism
    : public ::testing::TestWithParam<std::tuple<PolicyKind, std::uint64_t>> {};

TEST_P(ParallelDeterminism, MatchesSerialBitForBit) {
  const auto [kind, seed] = GetParam();
  const auto config = base_config(kind, seed);
  const auto serial = run(config, 0);
  const auto parallel = run(config, 3);
  expect_identical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAllSeeds, ParallelDeterminism,
    ::testing::Combine(::testing::Values(PolicyKind::kRoundRobin,
                                         PolicyKind::kDft, PolicyKind::kDftt,
                                         PolicyKind::kBloom,
                                         PolicyKind::kSketch,
                                         PolicyKind::kSpectrum),
                       ::testing::Values(7ull, 42ull, 1234ull)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ParallelDeterminism, WorkerCountDoesNotMatter) {
  // 1 strand (all node work on the caller, but through the epoch machinery)
  // through more strands than nodes — identical results throughout.
  const auto config = base_config(PolicyKind::kDftt, 42);
  const auto serial = run(config, 0);
  for (std::uint32_t workers : {1u, 2u, 8u}) {
    SCOPED_TRACE(workers);
    expect_identical(serial, run(config, workers));
  }
}

TEST(ParallelDeterminism, HoldsUnderDropsAndCorruption) {
  // Loss and corruption consume per-link RNG draws; the sender-owned-state
  // rule must keep those draw sequences aligned with the serial schedule.
  auto config = base_config(PolicyKind::kDftt, 42);
  config.wan.drop_probability = 0.05;
  config.wan.corrupt_probability = 0.05;
  const auto serial = run(config, 0);
  EXPECT_GT(serial.dropped, 0u);
  EXPECT_GT(serial.corrupted, 0u);
  expect_identical(serial, run(config, 4));
}

TEST(ParallelDeterminism, HoldsUnderZeroLatencyProfile) {
  // With the ideal profile the lookahead window is zero-width and epochs
  // degenerate to exact-timestamp ties — the other driver regime.
  auto config = base_config(PolicyKind::kBloom, 7);
  config.wan = net::WanProfile::ideal();
  expect_identical(run(config, 0), run(config, 3));
}

TEST(ParallelDeterminism, HoldsAcrossNodeRestarts) {
  // Restarts are barrier events: the epoch in flight must quiesce before a
  // node object is replaced, and the replacement must land identically.
  auto config = base_config(PolicyKind::kDftt, 42);
  RunSnapshot serial, parallel;
  {
    DspSystem system(config);
    system.schedule_restart(1, 4.0);
    system.schedule_restart(2, 7.5);
    serial.result = system.run();
    EXPECT_EQ(system.restarts_executed(), 2u);
    serial.per_node_discoveries = system.metrics().per_node_discoveries();
    serial.total_reports = system.metrics().total_reports();
  }
  {
    auto pconfig = config;
    pconfig.worker_threads = 4;
    DspSystem system(pconfig);
    system.schedule_restart(1, 4.0);
    system.schedule_restart(2, 7.5);
    parallel.result = system.run();
    EXPECT_EQ(system.restarts_executed(), 2u);
    parallel.per_node_discoveries = system.metrics().per_node_discoveries();
    parallel.total_reports = system.metrics().total_reports();
  }
  EXPECT_EQ(serial.result.reported_pairs, parallel.result.reported_pairs);
  EXPECT_EQ(serial.result.makespan_s, parallel.result.makespan_s);
  expect_counters_equal(serial.result.traffic, parallel.result.traffic);
  EXPECT_EQ(serial.per_node_discoveries, parallel.per_node_discoveries);
  EXPECT_EQ(serial.total_reports, parallel.total_reports);
}

TEST(ParallelDeterminism, HoldsUnderOverloadWithBackpressureOff) {
  // The one documented divergence caveat is *backpressure engaging
  // mid-epoch* (a dispatch-time backlog read cannot see sends buffered in
  // the same window). With backpressure disabled, an overloaded network —
  // bandwidth shaping active, busy links, arrival rate far beyond the 90
  // kbps budget — must still be bit-identical: link busy-until state is
  // sender-owned and advances in dispatch order on the owning strand.
  auto config = base_config(PolicyKind::kDftt, 7);
  config.arrivals_per_second = 120.0;
  config.tuples_per_node = 150;
  config.max_backlog_s = 0.0;  // disable backpressure
  expect_identical(run(config, 0), run(config, 4));
}

TEST(ParallelDeterminism, OracleOffStillDeterministic) {
  // The scaling bench disables the oracle; the driver must stay identical
  // (epsilon degenerates, traffic and |Psi-hat| must not).
  auto config = base_config(PolicyKind::kSketch, 1234);
  config.oracle_enabled = false;
  expect_identical(run(config, 0), run(config, 6));
}

}  // namespace
}  // namespace dsjoin::core
