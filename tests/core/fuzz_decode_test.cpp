// Decoder robustness sweep: randomly mutated, truncated and garbage frames
// must never crash a decoder or slip through the checksums — only clean
// rejections (or, for mutations that miss the sealed region entirely,
// clean accepts) are allowed.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <limits>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/core/summary_state.hpp"
#include "dsjoin/core/wire.hpp"

namespace dsjoin::core {
namespace {

std::vector<std::uint8_t> sample_tuple_payload() {
  TuplePayload payload;
  payload.tuple.id = 42;
  payload.tuple.key = 12345;
  payload.tuple.timestamp = 9.5;
  payload.tuple.side = stream::StreamSide::kR;
  payload.stamp.emit_time = 9.5;
  payload.stamp.seq = 17;
  payload.piggyback.bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  return payload.encode();
}

std::vector<std::uint8_t> sample_summary_payload() {
  common::BufferWriter w;
  summary_codec::encode_dft(w, stream::StreamSide::kS, 256, 8,
                            {{dsp::CoeffDelta{3, dsp::Complex(1, 2)}}});
  SummaryPayload payload;
  payload.stamp.emit_time = 123.25;
  payload.stamp.seq = 9;
  payload.block.bytes = std::move(w).take();
  return payload.encode();
}

std::vector<std::uint8_t> sample_quant_summary_payload(unsigned bits) {
  common::BufferWriter w;
  const std::vector<dsp::CoeffDelta> deltas{
      {0, dsp::Complex(800.0, -3.5)}, {7, dsp::Complex(-12.25, 640.0)}};
  summary_codec::encode_dft_quant(w, stream::StreamSide::kS, 256, 8, deltas,
                                  bits, 800.0);
  summary_codec::encode_hist_spectrum_quant(
      w, stream::StreamSide::kR, 512,
      std::vector<dsp::Complex>{{96.0, -8.0}, {1.0, 0.5}}, bits, 96.0);
  SummaryPayload payload;
  payload.stamp.emit_time = 55.5;
  payload.stamp.seq = 21;
  payload.block.bytes = std::move(w).take();
  return payload.encode();
}

// Overwrite bytes at `at` and re-seal so the checksum passes: what reaches
// the stamp validator is exactly the patched content, not a checksum error.
std::vector<std::uint8_t> patch_and_reseal(std::vector<std::uint8_t> bytes,
                                           std::size_t at,
                                           std::span<const std::uint8_t> with) {
  for (std::size_t i = 0; i < with.size(); ++i) bytes[at + i] = with[i];
  bytes.resize(bytes.size() - 4);
  const std::uint32_t sum = payload_checksum(bytes);
  bytes.push_back(static_cast<std::uint8_t>(sum));
  bytes.push_back(static_cast<std::uint8_t>(sum >> 8));
  bytes.push_back(static_cast<std::uint8_t>(sum >> 16));
  bytes.push_back(static_cast<std::uint8_t>(sum >> 24));
  return bytes;
}

std::array<std::uint8_t, 8> f64_le_bytes(double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  std::array<std::uint8_t, 8> out;
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  return out;
}

std::vector<std::uint8_t> reservoir_summary_payload() {
  common::BufferWriter w;
  sampling::SampleSummary summary;
  summary.strata = 8;
  summary.capacity = 64;
  summary.population = 500;
  summary.keys = {{-9, 4.0, 1.5}, {3, 7.5, 0.25}, {1200, 1.0, 0.0}};
  summary_codec::encode_sample(w, stream::StreamSide::kR, summary);
  SummaryPayload payload;
  payload.stamp.emit_time = 77.75;
  payload.stamp.seq = 31;
  payload.block.bytes = std::move(w).take();
  return payload.encode();
}

std::vector<std::uint8_t> sample_result_payload() {
  ResultPayload payload;
  payload.pairs = {{1, 2}, {3, 4}, {5, 6}};
  return payload.encode();
}

template <typename Decoder>
void fuzz_decoder(const std::vector<std::uint8_t>& clean, Decoder&& decode,
                  std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  // Single-byte mutations: every accepted decode must be byte-identical to
  // the clean payload (the checksum catches everything else).
  int accepted_mutants = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = clean;
    const auto at = rng.next_below(bytes.size());
    const auto flip = static_cast<std::uint8_t>(1 + rng.next_below(255));
    bytes[at] ^= flip;
    if (decode(bytes)) ++accepted_mutants;
  }
  EXPECT_EQ(accepted_mutants, 0) << "corruption slipped past the checksum";

  // Truncations at every length.
  for (std::size_t len = 0; len < clean.size(); ++len) {
    auto bytes = clean;
    bytes.resize(len);
    EXPECT_FALSE(decode(bytes)) << "accepted a truncated payload of " << len;
  }

  // Pure garbage of assorted lengths.
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> garbage(rng.next_below(200));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    (void)decode(garbage);  // must not crash; acceptance is checksum-lucky
  }
}

TEST(FuzzDecode, TuplePayload) {
  const auto clean = sample_tuple_payload();
  ASSERT_TRUE(TuplePayload::decode(clean).is_ok());
  fuzz_decoder(clean, [](const auto& b) { return TuplePayload::decode(b).is_ok(); },
               1);
}

TEST(FuzzDecode, SummaryPayload) {
  const auto clean = sample_summary_payload();
  ASSERT_TRUE(SummaryPayload::decode(clean).is_ok());
  fuzz_decoder(clean,
               [](const auto& b) { return SummaryPayload::decode(b).is_ok(); }, 2);
}

TEST(FuzzDecode, QuantSummaryPayload) {
  // The quantized frames go through the same sweep at both widths: every
  // sub-block decode also runs the codec layer because decoding stops at
  // the payload envelope otherwise.
  for (unsigned bits : {8u, 16u}) {
    const auto clean = sample_quant_summary_payload(bits);
    const auto decode = [](const auto& b) {
      auto payload = SummaryPayload::decode(b);
      if (!payload.is_ok()) return false;
      return summary_codec::decode_blocks(payload.value().block, {}).is_ok();
    };
    ASSERT_TRUE(decode(clean));
    fuzz_decoder(clean, decode, 40 + bits);
  }
}

TEST(FuzzDecode, ReservoirSummaryPayload) {
  // The SMPL sample sub-block under the same sweep as the quant frames:
  // mutation, truncation and garbage all run through the codec layer.
  const auto clean = reservoir_summary_payload();
  const auto decode = [](const auto& b) {
    auto payload = SummaryPayload::decode(b);
    if (!payload.is_ok()) return false;
    return summary_codec::decode_blocks(payload.value().block, {}).is_ok();
  };
  ASSERT_TRUE(decode(clean));
  fuzz_decoder(clean, decode, 5);
}

TEST(FuzzDecode, ResultPayload) {
  const auto clean = sample_result_payload();
  ASSERT_TRUE(ResultPayload::decode(clean).is_ok());
  fuzz_decoder(clean,
               [](const auto& b) { return ResultPayload::decode(b).is_ok(); }, 3);
}

// Targeted stamp attacks. These are distinct from random mutation: the
// payloads below re-seal the checksum, so only the stamp validator itself
// stands between the bytes and the policy layer. SummaryPayload puts the
// stamp at offset 0 precisely to make this patching trivial.
TEST(FuzzDecode, SummaryStampVersionMismatchRejected) {
  const auto clean = sample_summary_payload();
  for (std::uint8_t version : {std::uint8_t{0}, std::uint8_t{2},
                               std::uint8_t{0xff}}) {
    const std::uint8_t patch[] = {version};
    const auto bytes = patch_and_reseal(clean, 0, patch);
    const auto decoded = SummaryPayload::decode(bytes);
    ASSERT_FALSE(decoded.is_ok());
    EXPECT_NE(decoded.status().message().find("stamp version"),
              std::string::npos);
  }
}

TEST(FuzzDecode, SummaryStampOutOfRangeEmitTimeRejected) {
  const auto clean = sample_summary_payload();
  const double bad[] = {-1.0, std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::quiet_NaN()};
  for (double value : bad) {
    const auto patch = f64_le_bytes(value);
    // emit_time sits right after the one-byte stamp version.
    const auto bytes = patch_and_reseal(clean, 1, patch);
    const auto decoded = SummaryPayload::decode(bytes);
    ASSERT_FALSE(decoded.is_ok()) << "accepted emit_time " << value;
    EXPECT_NE(decoded.status().message().find("out of range"),
              std::string::npos);
  }
}

TEST(FuzzDecode, TupleStampOutOfRangeEmitTimeRejected) {
  const auto clean = sample_tuple_payload();
  // Layout from the back: checksum(4), piggyback(8), stamp(13) — so the
  // stamp's emit_time field starts 24 bytes from the end, after the
  // version byte at 25.
  ASSERT_GE(clean.size(), 25u);
  const std::size_t stamp_at = clean.size() - 4 - 8 - 13;
  const std::uint8_t bad_version[] = {7};
  const auto version_patch = patch_and_reseal(clean, stamp_at, bad_version);
  EXPECT_FALSE(TuplePayload::decode(version_patch).is_ok());
  const auto nan_patch = patch_and_reseal(
      clean, stamp_at + 1,
      f64_le_bytes(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(TuplePayload::decode(nan_patch).is_ok());
}

TEST(FuzzDecode, SummaryStampTruncationsRejected) {
  // A summary whose sealed body ends inside the stamp (or inside the block
  // length that follows it) must be a clean kDataLoss, never a crash. Build
  // truncated bodies directly and re-seal each so the checksum is valid and
  // the reader's bounds checks are what reject them.
  const auto clean = sample_summary_payload();
  for (std::size_t body_len = 0; body_len < 17; ++body_len) {
    std::vector<std::uint8_t> bytes(clean.begin(), clean.begin() + body_len);
    const std::uint32_t sum = payload_checksum(bytes);
    bytes.push_back(static_cast<std::uint8_t>(sum));
    bytes.push_back(static_cast<std::uint8_t>(sum >> 8));
    bytes.push_back(static_cast<std::uint8_t>(sum >> 16));
    bytes.push_back(static_cast<std::uint8_t>(sum >> 24));
    EXPECT_FALSE(SummaryPayload::decode(bytes).is_ok())
        << "accepted a stamp truncated at body length " << body_len;
  }
}

TEST(FuzzDecode, StampRoundTripsExactly) {
  const auto tuple = TuplePayload::decode(sample_tuple_payload());
  ASSERT_TRUE(tuple.is_ok());
  EXPECT_EQ(tuple.value().stamp.emit_time, 9.5);
  EXPECT_EQ(tuple.value().stamp.seq, 17u);
  const auto summary = SummaryPayload::decode(sample_summary_payload());
  ASSERT_TRUE(summary.is_ok());
  EXPECT_EQ(summary.value().stamp.emit_time, 123.25);
  EXPECT_EQ(summary.value().stamp.seq, 9u);
}

TEST(FuzzDecode, BareTupleCarriesNoStampBytes) {
  // The acceptance bar for the bench: a tuple frame without a piggybacked
  // summary is byte-identical to the pre-stamp encoding — zero overhead on
  // the per-tuple hot path.
  TuplePayload with_stamp;
  with_stamp.tuple.id = 7;
  with_stamp.tuple.key = 99;
  with_stamp.tuple.timestamp = 1.5;
  with_stamp.stamp.emit_time = 555.0;  // must not serialize
  with_stamp.stamp.seq = 1234;
  TuplePayload plain;
  plain.tuple = with_stamp.tuple;
  EXPECT_EQ(with_stamp.encode(), plain.encode());
}

TEST(FuzzDecode, QuantSummaryHostileFieldsRejected) {
  // Version-patch attacks past the checksum, mirroring the stamp tests: the
  // re-sealed frame reaches the codec with a hostile width or scale, and the
  // codec's own validation is all that stands before the coefficient store.
  const auto clean = sample_quant_summary_payload(16);
  const auto decode = [](const auto& b) {
    auto payload = SummaryPayload::decode(b);
    if (!payload.is_ok()) return false;
    return summary_codec::decode_blocks(payload.value().block, {}).is_ok();
  };
  ASSERT_TRUE(decode(clean));
  // Envelope: stamp(13) + block length(4); first sub-block is the quant DFT
  // with tag(1) side(1) window(4) retained(4) bits(1) scale(8) count(2).
  constexpr std::size_t kBlockAt = 13 + 4;
  constexpr std::size_t kBitsAt = kBlockAt + 10;
  constexpr std::size_t kScaleAt = kBitsAt + 1;

  for (std::uint8_t bad_bits : {std::uint8_t{0}, std::uint8_t{12},
                                std::uint8_t{32}, std::uint8_t{0xff}}) {
    const std::uint8_t patch[] = {bad_bits};
    EXPECT_FALSE(decode(patch_and_reseal(clean, kBitsAt, patch)))
        << "accepted width " << int(bad_bits);
  }
  for (double bad_scale : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(), -1.0}) {
    EXPECT_FALSE(
        decode(patch_and_reseal(clean, kScaleAt, f64_le_bytes(bad_scale))))
        << "accepted scale " << bad_scale;
  }
  // A count larger than the bytes behind it must be clean kDataLoss. The
  // count field follows the scale.
  const std::uint8_t huge_count[] = {0xff, 0xff};
  EXPECT_FALSE(decode(patch_and_reseal(clean, kScaleAt + 8, huge_count)));
}

TEST(FuzzDecode, SampleSummaryHostileFieldsRejected) {
  // Re-sealed sample frames with hostile geometry, masses and key order:
  // the checksum passes, so the sample codec's validation is the only
  // thing keeping these out of a peer's SampleStore.
  const auto clean = reservoir_summary_payload();
  const auto decode = [](const auto& b) {
    auto payload = SummaryPayload::decode(b);
    if (!payload.is_ok()) return false;
    return summary_codec::decode_blocks(payload.value().block, {}).is_ok();
  };
  ASSERT_TRUE(decode(clean));
  // Envelope: stamp(13) + block length(4); sample sub-block layout is
  // tag(1) side(1) version(1) strata(4) capacity(4) population(8) count(2),
  // then (key i64, weight f64, variance f64) entries.
  constexpr std::size_t kBlockAt = 13 + 4;
  constexpr std::size_t kVersionAt = kBlockAt + 2;
  constexpr std::size_t kStrataAt = kBlockAt + 3;
  constexpr std::size_t kCapacityAt = kBlockAt + 7;
  constexpr std::size_t kPopulationAt = kBlockAt + 11;
  constexpr std::size_t kCountAt = kBlockAt + 19;
  constexpr std::size_t kEntriesAt = kBlockAt + 21;

  const std::uint8_t bad_version[] = {2};
  EXPECT_FALSE(decode(patch_and_reseal(clean, kVersionAt, bad_version)));
  const std::uint8_t zero[] = {0};
  EXPECT_FALSE(decode(patch_and_reseal(clean, kStrataAt, zero)));
  EXPECT_FALSE(decode(patch_and_reseal(clean, kCapacityAt, zero)));
  const std::uint8_t huge[] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_FALSE(decode(patch_and_reseal(clean, kStrataAt, huge)))
      << "accepted strata > 4096";
  EXPECT_FALSE(decode(patch_and_reseal(clean, kCapacityAt, huge)))
      << "accepted capacity > 2^15";
  const std::uint8_t deep[] = {0, 0, 0, 0, 0, 0, 0, 0xff};
  EXPECT_FALSE(decode(patch_and_reseal(clean, kPopulationAt, deep)))
      << "accepted population > 2^48";
  // A count larger than the bytes behind it must be clean kDataLoss.
  const std::uint8_t huge_count[] = {0xff, 0xff};
  EXPECT_FALSE(decode(patch_and_reseal(clean, kCountAt, huge_count)));
  // Demote the first key's sign byte: -9 becomes a huge positive value,
  // breaking strict ascent against the second key.
  const std::uint8_t positive_msb[] = {0x7f};
  EXPECT_FALSE(decode(patch_and_reseal(clean, kEntriesAt + 7, positive_msb)))
      << "accepted non-ascending keys";
  for (double bad_mass : {std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity(), -2.0}) {
    EXPECT_FALSE(decode(
        patch_and_reseal(clean, kEntriesAt + 8, f64_le_bytes(bad_mass))))
        << "accepted weight " << bad_mass;
    EXPECT_FALSE(decode(
        patch_and_reseal(clean, kEntriesAt + 16, f64_le_bytes(bad_mass))))
        << "accepted variance " << bad_mass;
  }
}

TEST(FuzzDecode, SummaryBlockCodecsNeverCrash) {
  // Inside a valid SummaryPayload envelope, the sub-block codec still faces
  // attacker-shaped bytes (the checksum only covers transport corruption,
  // not a malicious peer). Decode must reject or accept without crashing.
  common::Xoshiro256 rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    SummaryBlock block;
    block.bytes.resize(rng.next_below(96));
    for (auto& b : block.bytes) b = static_cast<std::uint8_t>(rng.next());
    summary_codec::Visitor visitor;  // all callbacks empty
    (void)summary_codec::decode_blocks(block, visitor);
  }
  SUCCEED();
}

}  // namespace
}  // namespace dsjoin::core
