// Decoder robustness sweep: randomly mutated, truncated and garbage frames
// must never crash a decoder or slip through the checksums — only clean
// rejections (or, for mutations that miss the sealed region entirely,
// clean accepts) are allowed.
#include <gtest/gtest.h>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/core/summary_state.hpp"
#include "dsjoin/core/wire.hpp"

namespace dsjoin::core {
namespace {

std::vector<std::uint8_t> sample_tuple_payload() {
  TuplePayload payload;
  payload.tuple.id = 42;
  payload.tuple.key = 12345;
  payload.tuple.timestamp = 9.5;
  payload.tuple.side = stream::StreamSide::kR;
  payload.piggyback.bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  return payload.encode();
}

std::vector<std::uint8_t> sample_summary_payload() {
  common::BufferWriter w;
  summary_codec::encode_dft(w, stream::StreamSide::kS, 256, 8,
                            {{dsp::CoeffDelta{3, dsp::Complex(1, 2)}}});
  SummaryPayload payload;
  payload.block.bytes = std::move(w).take();
  return payload.encode();
}

std::vector<std::uint8_t> sample_result_payload() {
  ResultPayload payload;
  payload.pairs = {{1, 2}, {3, 4}, {5, 6}};
  return payload.encode();
}

template <typename Decoder>
void fuzz_decoder(const std::vector<std::uint8_t>& clean, Decoder&& decode,
                  std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  // Single-byte mutations: every accepted decode must be byte-identical to
  // the clean payload (the checksum catches everything else).
  int accepted_mutants = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = clean;
    const auto at = rng.next_below(bytes.size());
    const auto flip = static_cast<std::uint8_t>(1 + rng.next_below(255));
    bytes[at] ^= flip;
    if (decode(bytes)) ++accepted_mutants;
  }
  EXPECT_EQ(accepted_mutants, 0) << "corruption slipped past the checksum";

  // Truncations at every length.
  for (std::size_t len = 0; len < clean.size(); ++len) {
    auto bytes = clean;
    bytes.resize(len);
    EXPECT_FALSE(decode(bytes)) << "accepted a truncated payload of " << len;
  }

  // Pure garbage of assorted lengths.
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> garbage(rng.next_below(200));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    (void)decode(garbage);  // must not crash; acceptance is checksum-lucky
  }
}

TEST(FuzzDecode, TuplePayload) {
  const auto clean = sample_tuple_payload();
  ASSERT_TRUE(TuplePayload::decode(clean).is_ok());
  fuzz_decoder(clean, [](const auto& b) { return TuplePayload::decode(b).is_ok(); },
               1);
}

TEST(FuzzDecode, SummaryPayload) {
  const auto clean = sample_summary_payload();
  ASSERT_TRUE(SummaryPayload::decode(clean).is_ok());
  fuzz_decoder(clean,
               [](const auto& b) { return SummaryPayload::decode(b).is_ok(); }, 2);
}

TEST(FuzzDecode, ResultPayload) {
  const auto clean = sample_result_payload();
  ASSERT_TRUE(ResultPayload::decode(clean).is_ok());
  fuzz_decoder(clean,
               [](const auto& b) { return ResultPayload::decode(b).is_ok(); }, 3);
}

TEST(FuzzDecode, SummaryBlockCodecsNeverCrash) {
  // Inside a valid SummaryPayload envelope, the sub-block codec still faces
  // attacker-shaped bytes (the checksum only covers transport corruption,
  // not a malicious peer). Decode must reject or accept without crashing.
  common::Xoshiro256 rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    SummaryBlock block;
    block.bytes.resize(rng.next_below(96));
    for (auto& b : block.bytes) b = static_cast<std::uint8_t>(rng.next());
    summary_codec::Visitor visitor;  // all callbacks empty
    (void)summary_codec::decode_blocks(block, visitor);
  }
  SUCCEED();
}

}  // namespace
}  // namespace dsjoin::core
