// Crash-and-restart recovery: replacing a node mid-run loses its windows
// and summary state; the system must keep running, peers must re-seed the
// fresh node, and only the lost window's pairs may be missed.
#include <gtest/gtest.h>

#include "dsjoin/core/system.hpp"

namespace dsjoin::core {
namespace {

SystemConfig restart_config(PolicyKind kind) {
  SystemConfig config;
  config.policy = kind;
  config.nodes = 4;
  config.tuples_per_node = 1500;
  config.seed = 17;
  return config;
}

TEST(NodeRestart, BaseRecoversWithBoundedLoss) {
  DspSystem system(restart_config(PolicyKind::kBase));
  system.schedule_restart(1, 15.0);
  const auto result = system.run();
  EXPECT_EQ(system.restarts_executed(), 1u);
  // Only pairs against node 1's lost window can be missed; the system keeps
  // finding everything else.
  EXPECT_GT(result.epsilon, 0.0);
  EXPECT_LT(result.epsilon, 0.25);
  EXPECT_EQ(result.decode_failures, 0u);
}

TEST(NodeRestart, NoRestartMeansNoLoss) {
  DspSystem with(restart_config(PolicyKind::kBase));
  const auto result = with.run();
  EXPECT_DOUBLE_EQ(result.epsilon, 0.0);
  EXPECT_EQ(with.restarts_executed(), 0u);
}

TEST(NodeRestart, SummaryPoliciesReseedTheFreshNode) {
  for (auto kind : {PolicyKind::kDftt, PolicyKind::kBloom, PolicyKind::kSketch}) {
    DspSystem system(restart_config(kind));
    system.schedule_restart(2, 12.0);
    const auto result = system.run();
    EXPECT_EQ(system.restarts_executed(), 1u) << to_string(kind);
    EXPECT_GT(result.reported_pairs, 0u) << to_string(kind);
    EXPECT_LT(result.epsilon, 0.6) << to_string(kind);
    EXPECT_EQ(result.decode_failures, 0u) << to_string(kind);
  }
}

TEST(NodeRestart, MultipleRestartsSurvive) {
  DspSystem system(restart_config(PolicyKind::kDftt));
  system.schedule_restart(0, 10.0);
  system.schedule_restart(3, 20.0);
  system.schedule_restart(0, 30.0);
  const auto result = system.run();
  EXPECT_EQ(system.restarts_executed(), 3u);
  EXPECT_GT(result.reported_pairs, 0u);
}

}  // namespace
}  // namespace dsjoin::core
