// Cross-cutting property sweeps over the whole system and the flow
// allocator: invariants that must hold for every policy, workload and
// random seed, not just the tuned defaults.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/core/system.hpp"

namespace dsjoin::core {
namespace {

// ---------------------------------------------------------------------------
// allocate_flow_probabilities invariants under random inputs.

class AllocatorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorPropertyTest, InvariantsHoldForRandomInputs) {
  common::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.next_below(24);
    std::vector<double> scores(n);
    for (auto& s : scores) {
      s = rng.next_bool(0.3) ? 0.0 : rng.next_double_in(0.0, 1000.0);
    }
    const double budget = rng.next_double_in(0.0, static_cast<double>(n) + 2.0);
    const double floor = rng.next_double_in(0.0, 0.3);
    const auto probs = allocate_flow_probabilities(scores, budget, floor);
    ASSERT_EQ(probs.size(), n);
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      // Range invariant.
      ASSERT_GE(probs[j], 0.0);
      ASSERT_LE(probs[j], 1.0);
      // Floor invariant (floor itself is clamped to <= 1).
      ASSERT_GE(probs[j], std::min(floor, 1.0) - 1e-12);
      total += probs[j];
    }
    // The allocation never exceeds the (clamped) budget by more than the
    // floor mass it must guarantee.
    const double clamped_budget = std::min(budget, static_cast<double>(n));
    ASSERT_LE(total, std::max(clamped_budget, floor * static_cast<double>(n)) + 1e-9);
    // Monotone in score: a strictly larger score never gets a smaller p.
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (scores[a] > scores[b]) {
          ASSERT_GE(probs[a], probs[b] - 1e-9);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Whole-system invariants for every (policy, workload) combination.

using Combo = std::tuple<PolicyKind, const char*>;

class SystemPropertyTest : public ::testing::TestWithParam<Combo> {};

TEST_P(SystemPropertyTest, InvariantsHoldOnSmallRuns) {
  const auto [kind, workload] = GetParam();
  SystemConfig config;
  config.policy = kind;
  config.workload = workload;
  config.nodes = 5;
  config.tuples_per_node = 350;
  config.seed = 1234;
  if (std::string(workload) == "UNI") config.domain = 1 << 12;

  const auto result = run_experiment(config);

  // Soundness: never report more than the oracle, never decode garbage.
  EXPECT_LE(result.reported_pairs, result.exact_pairs);
  EXPECT_EQ(result.decode_failures, 0u);
  EXPECT_GE(result.epsilon, 0.0);
  EXPECT_LE(result.epsilon, 1.0);
  // Liveness: the run ingested everything and made progress.
  EXPECT_EQ(result.total_arrivals, 5u * 2u * 350u);
  EXPECT_GT(result.makespan_s, 0.0);
  // Traffic sanity: tuple frames bounded by broadcast.
  EXPECT_LE(result.traffic.frames(net::FrameKind::kTuple),
            result.total_arrivals * (config.nodes - 1));
  // Determinism: identical config, identical outcome.
  const auto again = run_experiment(config);
  EXPECT_EQ(again.reported_pairs, result.reported_pairs);
  EXPECT_EQ(again.traffic.total_frames(), result.traffic.total_frames());
}

INSTANTIATE_TEST_SUITE_P(
    All, SystemPropertyTest,
    ::testing::Combine(::testing::Values(PolicyKind::kBase, PolicyKind::kRoundRobin,
                                         PolicyKind::kDft, PolicyKind::kDftt,
                                         PolicyKind::kBloom, PolicyKind::kSketch,
                                         PolicyKind::kSpectrum),
                       ::testing::Values("UNI", "ZIPF", "FIN", "NWRK")),
    [](const ::testing::TestParamInfo<Combo>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param);
    });

// ---------------------------------------------------------------------------
// The throttle knob's budget actually bounds traffic for the scored
// policies: frames grow monotonically (within noise) in the throttle.

class ThrottlePropertyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(ThrottlePropertyTest, TrafficGrowsWithThrottle) {
  SystemConfig config;
  config.policy = GetParam();
  config.nodes = 5;
  config.tuples_per_node = 400;
  config.seed = 77;
  std::vector<std::uint64_t> frames;
  for (double throttle : {0.0, 0.5, 1.0}) {
    config.throttle = throttle;
    frames.push_back(
        run_experiment(config).traffic.frames(net::FrameKind::kTuple));
  }
  EXPECT_LE(frames[0], frames[1] + frames[1] / 10);
  EXPECT_LE(frames[1], frames[2] + frames[2] / 10);
  // Throttle 1 approaches broadcast for the scored policies.
  EXPECT_GT(frames[2], frames[0]);
}

INSTANTIATE_TEST_SUITE_P(Policies, ThrottlePropertyTest,
                         ::testing::Values(PolicyKind::kDft, PolicyKind::kDftt,
                                           PolicyKind::kBloom, PolicyKind::kSketch,
                                           PolicyKind::kSpectrum));

}  // namespace
}  // namespace dsjoin::core
