// Failure injection: the system must degrade gracefully — never crash,
// never report false pairs — when the network drops or corrupts frames.
#include <gtest/gtest.h>

#include "dsjoin/core/system.hpp"

namespace dsjoin::core {
namespace {

SystemConfig lossy_config(double drop, double corrupt,
                          PolicyKind kind = PolicyKind::kBase) {
  SystemConfig config;
  config.policy = kind;
  config.nodes = 4;
  config.tuples_per_node = 600;
  config.seed = 13;
  config.wan.drop_probability = drop;
  config.wan.corrupt_probability = corrupt;
  return config;
}

TEST(FailureInjection, DropsDegradeBaseGracefully) {
  const auto clean = run_experiment(lossy_config(0.0, 0.0));
  const auto lossy = run_experiment(lossy_config(0.5, 0.0));
  EXPECT_DOUBLE_EQ(clean.epsilon, 0.0);
  // Coverage is two-path (either direction's forward finds a pair), so a
  // drop rate d costs ~d^2 of the remote pairs.
  EXPECT_GT(lossy.epsilon, 0.05);
  EXPECT_LT(lossy.epsilon, 0.6);  // local + surviving remote pairs remain
  EXPECT_GT(lossy.reported_pairs, 0u);
}

TEST(FailureInjection, EpsilonMonotoneInDropRate) {
  double prev = -1.0;
  for (double drop : {0.0, 0.2, 0.5, 0.8}) {
    const auto result = run_experiment(lossy_config(drop, 0.0));
    EXPECT_GE(result.epsilon, prev - 0.02) << drop;  // small noise slack
    prev = result.epsilon;
  }
}

TEST(FailureInjection, CorruptionIsDetectedNotTrusted) {
  const auto result = run_experiment(lossy_config(0.0, 0.2));
  // Corrupted frames are rejected by the decoders (counted), or — when the
  // flip lands in a numeric field that still parses — produce at worst a
  // wrong-keyed tuple that joins nothing. Reported pairs must be a subset
  // of the oracle's.
  EXPECT_GT(result.decode_failures, 0u);
  EXPECT_LE(result.reported_pairs, result.exact_pairs);
}

TEST(FailureInjection, ApproximatePoliciesSurviveLossySummaries) {
  for (auto kind : {PolicyKind::kDftt, PolicyKind::kBloom, PolicyKind::kSketch}) {
    const auto result = run_experiment(lossy_config(0.15, 0.1, kind));
    EXPECT_GT(result.reported_pairs, 0u) << to_string(kind);
    EXPECT_LE(result.reported_pairs, result.exact_pairs) << to_string(kind);
  }
}

}  // namespace
}  // namespace dsjoin::core
