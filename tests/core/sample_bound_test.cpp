// Statistical contract of the SMPL predicted-epsilon bound (DESIGN.md §14):
// the run-level upper bound assembled from Horvitz–Thompson confidence
// intervals plus the rule-of-three unseen-key term must cover the oracle
// epsilon in at least 95% of seeded runs. Twenty independent seeds with one
// allowed miss gives a cheap, deterministic proxy for that statement.
#include <gtest/gtest.h>

#include "dsjoin/core/system.hpp"

namespace dsjoin::core {
namespace {

SystemConfig bound_config(std::uint64_t seed) {
  SystemConfig config;
  config.policy = PolicyKind::kSample;
  config.workload = "ZIPF";
  config.nodes = 4;
  config.tuples_per_node = 300;
  config.throttle = 0.5;
  config.sample_capacity = 256;
  config.summary_epoch_tuples = 64;
  config.seed = seed;
  return config;
}

TEST(SampleBound, CoversOracleEpsilonAcrossSeeds) {
  const int kRuns = 20;
  int covered = 0;
  for (int seed = 1; seed <= kRuns; ++seed) {
    const auto result = run_experiment(bound_config(seed));
    ASSERT_TRUE(result.clean) << result.error;
    ASSERT_GE(result.predicted_epsilon_bound, 0.0) << "seed " << seed;
    ASSERT_LE(result.predicted_epsilon_bound, 1.0) << "seed " << seed;
    if (result.predicted_epsilon_bound >= result.epsilon) ++covered;
  }
  EXPECT_GE(covered, kRuns - 1) << covered << "/" << kRuns << " covered";
}

TEST(SampleBound, TightensAsThrottleRises) {
  // More budget -> fewer tuples skipped -> the accumulated missed-mass
  // numerator (and so the bound) must not grow with throttle.
  auto open = bound_config(5);
  open.throttle = 1.0;  // full broadcast
  auto tight = bound_config(5);
  tight.throttle = 0.0;  // budget 1 of n-1 = 3
  const auto open_result = run_experiment(open);
  const auto tight_result = run_experiment(tight);
  ASSERT_TRUE(open_result.clean) << open_result.error;
  ASSERT_TRUE(tight_result.clean) << tight_result.error;
  EXPECT_LE(open_result.predicted_epsilon_bound,
            tight_result.predicted_epsilon_bound);
  EXPECT_LE(open_result.epsilon, 0.05);  // full broadcast is near-exact
}

TEST(SampleBound, NonSamplePoliciesReportNoBound) {
  auto config = bound_config(3);
  config.policy = PolicyKind::kBase;
  config.sample_capacity = 0;
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.clean) << result.error;
  EXPECT_DOUBLE_EQ(result.predicted_epsilon_bound, -1.0);
}

}  // namespace
}  // namespace dsjoin::core
