#include "dsjoin/core/metrics.hpp"

#include <gtest/gtest.h>

namespace dsjoin::core {
namespace {

TEST(MetricsCollector, DeduplicatesPairs) {
  MetricsCollector metrics;
  metrics.set_node_count(3);
  metrics.record_pair({1, 2}, 0, 1.0);
  metrics.record_pair({1, 2}, 1, 2.0);  // duplicate discovery at another node
  metrics.record_pair({2, 1}, 1, 3.0);  // distinct (order matters: R vs S id)
  EXPECT_EQ(metrics.distinct_pairs(), 2u);
  EXPECT_EQ(metrics.total_reports(), 3u);
}

TEST(MetricsCollector, CreditsFirstDiscoverer) {
  MetricsCollector metrics;
  metrics.set_node_count(2);
  metrics.record_pair({1, 2}, 1, 1.0);
  metrics.record_pair({1, 2}, 0, 2.0);
  metrics.record_pair({3, 4}, 0, 3.0);
  EXPECT_EQ(metrics.per_node_discoveries()[0], 1u);
  EXPECT_EQ(metrics.per_node_discoveries()[1], 1u);
}

TEST(MetricsCollector, TracksLastReportTime) {
  MetricsCollector metrics;
  metrics.set_node_count(1);
  EXPECT_DOUBLE_EQ(metrics.last_report_time(), 0.0);
  metrics.record_pair({1, 1}, 0, 5.0);
  metrics.record_pair({2, 2}, 0, 3.0);  // earlier report does not move it back
  EXPECT_DOUBLE_EQ(metrics.last_report_time(), 5.0);
}

TEST(MetricsCollector, OutOfRangeDiscovererIsSafe) {
  MetricsCollector metrics;
  metrics.set_node_count(1);
  metrics.record_pair({9, 9}, 57, 1.0);  // no per-node slot; still counted
  EXPECT_EQ(metrics.distinct_pairs(), 1u);
}

}  // namespace
}  // namespace dsjoin::core
