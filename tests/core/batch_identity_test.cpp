// Batch-vs-scalar bit-identity: every batch ingestion path must leave its
// operator in *exactly* the state the scalar tuple-at-a-time reference path
// produces — same bits, not just "close". The parallel driver feeds nodes
// through the batch APIs, so these identities are what keeps the golden
// regression (and cross-worker-count determinism) intact.
//
// Each test splits one input stream into randomly sized batches — including
// empty and single-element batches — across three seeds, and compares full
// observable state against a scalar twin fed element by element.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/dsp/sliding_dft.hpp"
#include "dsjoin/sketch/agms.hpp"
#include "dsjoin/sketch/bloom.hpp"
#include "dsjoin/stream/window.hpp"

namespace dsjoin {
namespace {

constexpr std::uint64_t kSeeds[] = {17, 1234, 987654321};

/// Random batch size in [0, 64] with 0 and 1 guaranteed to occur often.
std::size_t next_batch_size(common::Xoshiro256& rng) {
  const std::uint64_t roll = rng.next() % 8;
  if (roll == 0) return 0;
  if (roll == 1) return 1;
  return 2 + rng.next() % 63;
}

std::vector<double> random_values(std::size_t n, common::Xoshiro256& rng) {
  std::vector<double> out(n);
  for (auto& v : out) v = rng.next_double_in(-100.0, 100.0);
  return out;
}

std::vector<std::uint64_t> random_keys(std::size_t n, common::Xoshiro256& rng) {
  std::vector<std::uint64_t> out(n);
  for (auto& k : out) k = rng.next() % 512;
  return out;
}

std::vector<stream::Tuple> random_tuples(std::size_t n, common::Xoshiro256& rng) {
  std::vector<stream::Tuple> out(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i].id = i + 1;
    out[i].key = static_cast<std::int64_t>(rng.next() % 64);
    ts += rng.next_double_in(0.0, 0.01);
    out[i].timestamp = ts;
    out[i].origin = 0;
    out[i].side = stream::StreamSide::kR;
  }
  return out;
}

TEST(BatchIdentity, SlidingDftMatchesScalarBitForBit) {
  for (const std::uint64_t seed : kSeeds) {
    common::Xoshiro256 rng(seed);
    const auto values = random_values(3000, rng);

    dsp::SlidingDft scalar(128, 16);
    dsp::SlidingDft batched(128, 16);
    // Window-aligned interval, as the DFT policies use: renormalizations
    // land inside batches too and must fire at identical push counts.
    scalar.set_renormalize_interval(4 * 128);
    batched.set_renormalize_interval(4 * 128);

    for (double v : values) scalar.push(v);
    std::size_t i = 0;
    while (i < values.size()) {
      const std::size_t n = std::min(next_batch_size(rng), values.size() - i);
      batched.push_batch(std::span<const double>(values).subspan(i, n));
      i += n;
    }

    ASSERT_EQ(scalar.count(), batched.count());
    EXPECT_EQ(scalar.phase_steps(), batched.phase_steps());
    EXPECT_EQ(scalar.mean(), batched.mean());
    EXPECT_EQ(scalar.variance(), batched.variance());
    const auto sc = scalar.coefficients();
    const auto bc = batched.coefficients();
    ASSERT_EQ(sc.size(), bc.size());
    for (std::size_t k = 0; k < sc.size(); ++k) {
      EXPECT_EQ(sc[k].real(), bc[k].real()) << "k=" << k << " seed=" << seed;
      EXPECT_EQ(sc[k].imag(), bc[k].imag()) << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(BatchIdentity, AgmsSketchMatchesScalarBitForBit) {
  for (const std::uint64_t seed : kSeeds) {
    common::Xoshiro256 rng(seed);
    const auto keys = random_keys(2000, rng);

    sketch::AgmsSketch scalar(sketch::AgmsShape{10, 2}, 42);
    sketch::AgmsSketch batched(sketch::AgmsShape{10, 2}, 42);

    // Mix of +1 (arrival) and -1 (expiry) weights, as the policies issue.
    for (std::size_t i = 0; i < keys.size(); ++i) {
      scalar.update(keys[i], i % 3 == 2 ? -1 : +1);
    }
    std::size_t i = 0;
    while (i < keys.size()) {
      std::size_t n = std::min(next_batch_size(rng), keys.size() - i);
      // Keep each batch within one weight class (policies batch arrivals
      // and expiries separately).
      for (std::size_t j = 0; j < n; ++j) {
        if (((i + j) % 3 == 2) != (i % 3 == 2)) {
          n = j;
          break;
        }
      }
      if (n == 0) {
        // Empty batches must be no-ops; then advance by one element.
        batched.update_batch(std::span<const std::uint64_t>{}, +1);
        n = 1;
      }
      batched.update_batch(std::span<const std::uint64_t>(keys).subspan(i, n),
                           i % 3 == 2 ? -1 : +1);
      i += n;
    }
    EXPECT_EQ(scalar.counters(), batched.counters()) << "seed=" << seed;
  }
}

TEST(BatchIdentity, FastAgmsSketchMatchesScalarBitForBit) {
  for (const std::uint64_t seed : kSeeds) {
    common::Xoshiro256 rng(seed);
    const auto keys = random_keys(2000, rng);

    sketch::FastAgmsSketch scalar(5, 96, 42);   // non-power-of-two buckets
    sketch::FastAgmsSketch batched(5, 96, 42);
    sketch::FastAgmsSketch scalar2(5, 256, 42);  // power-of-two buckets
    sketch::FastAgmsSketch batched2(5, 256, 42);

    for (const std::uint64_t k : keys) {
      scalar.update(k, +1);
      scalar2.update(k, +1);
    }
    std::size_t i = 0;
    while (i < keys.size()) {
      const std::size_t n = std::min(next_batch_size(rng), keys.size() - i);
      const auto chunk = std::span<const std::uint64_t>(keys).subspan(i, n);
      batched.update_batch(chunk, +1);
      batched2.update_batch(chunk, +1);
      i += n;
    }
    EXPECT_EQ(scalar.counters(), batched.counters()) << "seed=" << seed;
    EXPECT_EQ(scalar2.counters(), batched2.counters()) << "seed=" << seed;
  }
}

TEST(BatchIdentity, CountingBloomMatchesScalarBitForBit) {
  for (const std::uint64_t seed : kSeeds) {
    common::Xoshiro256 rng(seed);
    const auto keys = random_keys(2000, rng);

    // 384 counters with 512 distinct keys: collisions, saturating inserts
    // and pinned counters all occur, so the order-dependent clamp behavior
    // is actually exercised.
    sketch::CountingBloomFilter scalar(384, 4, 42);
    sketch::CountingBloomFilter batched(384, 4, 42);

    std::vector<std::int32_t> deltas(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      deltas[i] = i % 3 == 2 ? -1 : +1;
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (deltas[i] > 0) {
        scalar.insert(keys[i]);
      } else {
        scalar.erase(keys[i]);
      }
    }
    std::size_t i = 0;
    while (i < keys.size()) {
      const std::size_t n = std::min(next_batch_size(rng), keys.size() - i);
      batched.apply_batch(std::span<const std::uint64_t>(keys).subspan(i, n),
                          std::span<const std::int32_t>(deltas).subspan(i, n));
      i += n;
    }
    EXPECT_EQ(scalar.counters(), batched.counters()) << "seed=" << seed;
  }
}

TEST(BatchIdentity, CountingBloomInsertEraseBatchMatchScalar) {
  common::Xoshiro256 rng(kSeeds[0]);
  const auto keys = random_keys(500, rng);
  sketch::CountingBloomFilter scalar(256, 3, 7);
  sketch::CountingBloomFilter batched(256, 3, 7);
  for (const std::uint64_t k : keys) scalar.insert(k);
  batched.insert_batch(keys);
  EXPECT_EQ(scalar.counters(), batched.counters());
  for (const std::uint64_t k : keys) scalar.erase(k);
  batched.erase_batch(keys);
  EXPECT_EQ(scalar.counters(), batched.counters());
}

TEST(BatchIdentity, TupleStoreMatchesScalarObservably) {
  for (const std::uint64_t seed : kSeeds) {
    common::Xoshiro256 rng(seed);
    const auto tuples = random_tuples(1500, rng);

    stream::TupleStore scalar;
    stream::TupleStore batched;
    std::size_t i = 0;
    while (i < tuples.size()) {
      const std::size_t n = std::min(next_batch_size(rng), tuples.size() - i);
      for (std::size_t j = 0; j < n; ++j) scalar.insert(tuples[i + j]);
      batched.insert_batch(std::span<const stream::Tuple>(tuples).subspan(i, n));
      i += n;
      // Interleave evictions so the heap (whose internal layout the two
      // paths legitimately build differently) is drained mid-stream.
      if (rng.next() % 4 == 0 && i > 0) {
        const double horizon = tuples[i - 1].timestamp * 0.5;
        scalar.evict_before(horizon);
        batched.evict_before(horizon);
      }
    }
    ASSERT_EQ(scalar.size(), batched.size()) << "seed=" << seed;
    for (std::int64_t key = 0; key < 64; ++key) {
      for (const auto& probe : tuples) {
        if (probe.key != key) continue;
        EXPECT_EQ(scalar.count_matches(key, probe.timestamp, 0.05),
                  batched.count_matches(key, probe.timestamp, 0.05))
            << "seed=" << seed << " key=" << key;
        break;  // one probe per key is plenty
      }
    }
  }
}

TEST(BatchIdentity, CountWindowMatchesScalarBitForBit) {
  for (const std::uint64_t seed : kSeeds) {
    common::Xoshiro256 rng(seed);
    const auto tuples = random_tuples(1200, rng);

    stream::CountWindow scalar(256);
    stream::CountWindow batched(256);
    std::vector<stream::Tuple> scalar_evicted;
    std::vector<stream::Tuple> batch_evicted;

    std::size_t i = 0;
    while (i < tuples.size()) {
      const std::size_t n = std::min(next_batch_size(rng), tuples.size() - i);
      for (std::size_t j = 0; j < n; ++j) {
        auto e = scalar.insert(tuples[i + j]);
        if (e.valid) scalar_evicted.push_back(e.tuple);
      }
      batched.insert_batch(std::span<const stream::Tuple>(tuples).subspan(i, n),
                           batch_evicted);
      i += n;
    }
    ASSERT_EQ(scalar.size(), batched.size());
    ASSERT_EQ(scalar_evicted.size(), batch_evicted.size()) << "seed=" << seed;
    for (std::size_t j = 0; j < scalar_evicted.size(); ++j) {
      EXPECT_EQ(scalar_evicted[j].id, batch_evicted[j].id) << "seed=" << seed;
    }
    for (std::int64_t key = 0; key < 64; ++key) {
      EXPECT_EQ(scalar.count_matches(key), batched.count_matches(key))
          << "seed=" << seed << " key=" << key;
    }
  }
}

// The phasor table re-derivation inside renormalize() is conditional on the
// accumulated incremental step count (kPhaseResetSteps). Below the
// threshold the table is kept; the bound on its drift (~2 eps per unit
// multiply) must keep coefficient error far below the update error that
// renormalization targets.
TEST(BatchIdentity, PhasorDriftStaysBoundedBelowResetThreshold) {
  // W > kPhaseResetSteps so phase_steps can cross the threshold between
  // ring wraps (wraps reset the table exactly).
  const std::size_t W = 2048;
  ASSERT_GT(W, dsp::SlidingDft::kPhaseResetSteps);
  dsp::SlidingDft dft(W, 32);
  common::Xoshiro256 rng(5);

  // Fill the window, then advance to mid-ring: fewer steps than the
  // threshold accumulated since the last wrap.
  for (std::size_t i = 0; i < W; ++i) dft.push(rng.next_double_in(-1.0, 1.0));
  ASSERT_EQ(dft.phase_steps(), 0u);  // wrap resets exactly
  const std::uint64_t below = dsp::SlidingDft::kPhaseResetSteps - 1;
  for (std::uint64_t i = 0; i < below; ++i) {
    dft.push(rng.next_double_in(-1.0, 1.0));
  }
  ASSERT_EQ(dft.phase_steps(), below);

  // Renormalize below the threshold: coefficients are recomputed but the
  // (near-exact) phasor table is kept — phase_steps is not reset.
  dft.renormalize();
  EXPECT_EQ(dft.phase_steps(), below);

  // The kept table must still track the exact phasors: one more push made
  // with it, then an exact recompute, must agree to far better than the
  // update-error scale renormalization exists to fix.
  dsp::SlidingDft exact(W, 32);
  // Mirror the full history into a twin, renormalizing at the same point.
  common::Xoshiro256 rng2(5);
  for (std::size_t i = 0; i < W + below; ++i) {
    exact.push(rng2.next_double_in(-1.0, 1.0));
  }
  exact.renormalize();
  const double v = 0.123;
  dft.push(v);
  exact.push(v);
  const auto a = dft.coefficients();
  const auto b = exact.coefficients();
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k].real(), b[k].real(), 1e-9);
    EXPECT_NEAR(a[k].imag(), b[k].imag(), 1e-9);
  }

  // Cross the threshold: the next renormalize re-derives the table.
  for (std::uint64_t i = dft.phase_steps();
       i < dsp::SlidingDft::kPhaseResetSteps; ++i) {
    dft.push(rng.next_double_in(-1.0, 1.0));
  }
  ASSERT_GE(dft.phase_steps(), dsp::SlidingDft::kPhaseResetSteps);
  dft.renormalize();
  EXPECT_EQ(dft.phase_steps(), 0u);
}

}  // namespace
}  // namespace dsjoin
