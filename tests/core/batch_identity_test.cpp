// Batch-vs-scalar bit-identity: every batch ingestion path must leave its
// operator in *exactly* the state the scalar tuple-at-a-time reference path
// produces — same bits, not just "close". The parallel driver feeds nodes
// through the batch APIs, so these identities are what keeps the golden
// regression (and cross-worker-count determinism) intact.
//
// Each test splits one input stream into randomly sized batches — including
// empty and single-element batches — across three seeds, and compares full
// observable state against a scalar twin fed element by element.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/common/simd.hpp"
#include "dsjoin/dsp/sliding_dft.hpp"
#include "dsjoin/sketch/agms.hpp"
#include "dsjoin/sketch/bloom.hpp"
#include "dsjoin/sketch/hash.hpp"
#include "dsjoin/stream/window.hpp"

namespace dsjoin {
namespace {

constexpr std::uint64_t kSeeds[] = {17, 1234, 987654321};

/// Random batch size in [0, 64] with 0 and 1 guaranteed to occur often.
std::size_t next_batch_size(common::Xoshiro256& rng) {
  const std::uint64_t roll = rng.next() % 8;
  if (roll == 0) return 0;
  if (roll == 1) return 1;
  return 2 + rng.next() % 63;
}

std::vector<double> random_values(std::size_t n, common::Xoshiro256& rng) {
  std::vector<double> out(n);
  for (auto& v : out) v = rng.next_double_in(-100.0, 100.0);
  return out;
}

std::vector<std::uint64_t> random_keys(std::size_t n, common::Xoshiro256& rng) {
  std::vector<std::uint64_t> out(n);
  for (auto& k : out) k = rng.next() % 512;
  return out;
}

std::vector<stream::Tuple> random_tuples(std::size_t n, common::Xoshiro256& rng) {
  std::vector<stream::Tuple> out(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i].id = i + 1;
    out[i].key = static_cast<std::int64_t>(rng.next() % 64);
    ts += rng.next_double_in(0.0, 0.01);
    out[i].timestamp = ts;
    out[i].origin = 0;
    out[i].side = stream::StreamSide::kR;
  }
  return out;
}

TEST(BatchIdentity, SlidingDftMatchesScalarBitForBit) {
  for (const std::uint64_t seed : kSeeds) {
    common::Xoshiro256 rng(seed);
    const auto values = random_values(3000, rng);

    dsp::SlidingDft scalar(128, 16);
    dsp::SlidingDft batched(128, 16);
    // Window-aligned interval, as the DFT policies use: renormalizations
    // land inside batches too and must fire at identical push counts.
    scalar.set_renormalize_interval(4 * 128);
    batched.set_renormalize_interval(4 * 128);

    for (double v : values) scalar.push(v);
    std::size_t i = 0;
    while (i < values.size()) {
      const std::size_t n = std::min(next_batch_size(rng), values.size() - i);
      batched.push_batch(std::span<const double>(values).subspan(i, n));
      i += n;
    }

    ASSERT_EQ(scalar.count(), batched.count());
    EXPECT_EQ(scalar.phase_steps(), batched.phase_steps());
    EXPECT_EQ(scalar.mean(), batched.mean());
    EXPECT_EQ(scalar.variance(), batched.variance());
    const auto sc = scalar.coefficients();
    const auto bc = batched.coefficients();
    ASSERT_EQ(sc.size(), bc.size());
    for (std::size_t k = 0; k < sc.size(); ++k) {
      EXPECT_EQ(sc[k].real(), bc[k].real()) << "k=" << k << " seed=" << seed;
      EXPECT_EQ(sc[k].imag(), bc[k].imag()) << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(BatchIdentity, AgmsSketchMatchesScalarBitForBit) {
  for (const std::uint64_t seed : kSeeds) {
    common::Xoshiro256 rng(seed);
    const auto keys = random_keys(2000, rng);

    sketch::AgmsSketch scalar(sketch::AgmsShape{10, 2}, 42);
    sketch::AgmsSketch batched(sketch::AgmsShape{10, 2}, 42);

    // Mix of +1 (arrival) and -1 (expiry) weights, as the policies issue.
    for (std::size_t i = 0; i < keys.size(); ++i) {
      scalar.update(keys[i], i % 3 == 2 ? -1 : +1);
    }
    std::size_t i = 0;
    while (i < keys.size()) {
      std::size_t n = std::min(next_batch_size(rng), keys.size() - i);
      // Keep each batch within one weight class (policies batch arrivals
      // and expiries separately).
      for (std::size_t j = 0; j < n; ++j) {
        if (((i + j) % 3 == 2) != (i % 3 == 2)) {
          n = j;
          break;
        }
      }
      if (n == 0) {
        // Empty batches must be no-ops; then advance by one element.
        batched.update_batch(std::span<const std::uint64_t>{}, +1);
        n = 1;
      }
      batched.update_batch(std::span<const std::uint64_t>(keys).subspan(i, n),
                           i % 3 == 2 ? -1 : +1);
      i += n;
    }
    EXPECT_EQ(scalar.counters(), batched.counters()) << "seed=" << seed;
  }
}

TEST(BatchIdentity, FastAgmsSketchMatchesScalarBitForBit) {
  for (const std::uint64_t seed : kSeeds) {
    common::Xoshiro256 rng(seed);
    const auto keys = random_keys(2000, rng);

    sketch::FastAgmsSketch scalar(5, 96, 42);   // non-power-of-two buckets
    sketch::FastAgmsSketch batched(5, 96, 42);
    sketch::FastAgmsSketch scalar2(5, 256, 42);  // power-of-two buckets
    sketch::FastAgmsSketch batched2(5, 256, 42);

    for (const std::uint64_t k : keys) {
      scalar.update(k, +1);
      scalar2.update(k, +1);
    }
    std::size_t i = 0;
    while (i < keys.size()) {
      const std::size_t n = std::min(next_batch_size(rng), keys.size() - i);
      const auto chunk = std::span<const std::uint64_t>(keys).subspan(i, n);
      batched.update_batch(chunk, +1);
      batched2.update_batch(chunk, +1);
      i += n;
    }
    EXPECT_EQ(scalar.counters(), batched.counters()) << "seed=" << seed;
    EXPECT_EQ(scalar2.counters(), batched2.counters()) << "seed=" << seed;
  }
}

TEST(BatchIdentity, CountingBloomMatchesScalarBitForBit) {
  for (const std::uint64_t seed : kSeeds) {
    common::Xoshiro256 rng(seed);
    const auto keys = random_keys(2000, rng);

    // 384 counters with 512 distinct keys: collisions, saturating inserts
    // and pinned counters all occur, so the order-dependent clamp behavior
    // is actually exercised.
    sketch::CountingBloomFilter scalar(384, 4, 42);
    sketch::CountingBloomFilter batched(384, 4, 42);

    std::vector<std::int32_t> deltas(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      deltas[i] = i % 3 == 2 ? -1 : +1;
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (deltas[i] > 0) {
        scalar.insert(keys[i]);
      } else {
        scalar.erase(keys[i]);
      }
    }
    std::size_t i = 0;
    while (i < keys.size()) {
      const std::size_t n = std::min(next_batch_size(rng), keys.size() - i);
      batched.apply_batch(std::span<const std::uint64_t>(keys).subspan(i, n),
                          std::span<const std::int32_t>(deltas).subspan(i, n));
      i += n;
    }
    EXPECT_EQ(scalar.counters(), batched.counters()) << "seed=" << seed;
  }
}

TEST(BatchIdentity, CountingBloomInsertEraseBatchMatchScalar) {
  common::Xoshiro256 rng(kSeeds[0]);
  const auto keys = random_keys(500, rng);
  sketch::CountingBloomFilter scalar(256, 3, 7);
  sketch::CountingBloomFilter batched(256, 3, 7);
  for (const std::uint64_t k : keys) scalar.insert(k);
  batched.insert_batch(keys);
  EXPECT_EQ(scalar.counters(), batched.counters());
  for (const std::uint64_t k : keys) scalar.erase(k);
  batched.erase_batch(keys);
  EXPECT_EQ(scalar.counters(), batched.counters());
}

TEST(BatchIdentity, TupleStoreMatchesScalarObservably) {
  for (const std::uint64_t seed : kSeeds) {
    common::Xoshiro256 rng(seed);
    const auto tuples = random_tuples(1500, rng);

    stream::TupleStore scalar;
    stream::TupleStore batched;
    std::size_t i = 0;
    while (i < tuples.size()) {
      const std::size_t n = std::min(next_batch_size(rng), tuples.size() - i);
      for (std::size_t j = 0; j < n; ++j) scalar.insert(tuples[i + j]);
      batched.insert_batch(std::span<const stream::Tuple>(tuples).subspan(i, n));
      i += n;
      // Interleave evictions so the heap (whose internal layout the two
      // paths legitimately build differently) is drained mid-stream.
      if (rng.next() % 4 == 0 && i > 0) {
        const double horizon = tuples[i - 1].timestamp * 0.5;
        scalar.evict_before(horizon);
        batched.evict_before(horizon);
      }
    }
    ASSERT_EQ(scalar.size(), batched.size()) << "seed=" << seed;
    for (std::int64_t key = 0; key < 64; ++key) {
      for (const auto& probe : tuples) {
        if (probe.key != key) continue;
        EXPECT_EQ(scalar.count_matches(key, probe.timestamp, 0.05),
                  batched.count_matches(key, probe.timestamp, 0.05))
            << "seed=" << seed << " key=" << key;
        break;  // one probe per key is plenty
      }
    }
  }
}

TEST(BatchIdentity, CountWindowMatchesScalarBitForBit) {
  for (const std::uint64_t seed : kSeeds) {
    common::Xoshiro256 rng(seed);
    const auto tuples = random_tuples(1200, rng);

    stream::CountWindow scalar(256);
    stream::CountWindow batched(256);
    std::vector<stream::Tuple> scalar_evicted;
    std::vector<stream::Tuple> batch_evicted;

    std::size_t i = 0;
    while (i < tuples.size()) {
      const std::size_t n = std::min(next_batch_size(rng), tuples.size() - i);
      for (std::size_t j = 0; j < n; ++j) {
        auto e = scalar.insert(tuples[i + j]);
        if (e.valid) scalar_evicted.push_back(e.tuple);
      }
      batched.insert_batch(std::span<const stream::Tuple>(tuples).subspan(i, n),
                           batch_evicted);
      i += n;
    }
    ASSERT_EQ(scalar.size(), batched.size());
    ASSERT_EQ(scalar_evicted.size(), batch_evicted.size()) << "seed=" << seed;
    for (std::size_t j = 0; j < scalar_evicted.size(); ++j) {
      EXPECT_EQ(scalar_evicted[j].id, batch_evicted[j].id) << "seed=" << seed;
    }
    for (std::int64_t key = 0; key < 64; ++key) {
      EXPECT_EQ(scalar.count_matches(key), batched.count_matches(key))
          << "seed=" << seed << " key=" << key;
    }
  }
}

// The phasor table re-derivation inside renormalize() is conditional on the
// accumulated incremental step count (kPhaseResetSteps). Below the
// threshold the table is kept; the bound on its drift (~2 eps per unit
// multiply) must keep coefficient error far below the update error that
// renormalization targets.
TEST(BatchIdentity, PhasorDriftStaysBoundedBelowResetThreshold) {
  // W > kPhaseResetSteps so phase_steps can cross the threshold between
  // ring wraps (wraps reset the table exactly).
  const std::size_t W = 2048;
  ASSERT_GT(W, dsp::SlidingDft::kPhaseResetSteps);
  dsp::SlidingDft dft(W, 32);
  common::Xoshiro256 rng(5);

  // Fill the window, then advance to mid-ring: fewer steps than the
  // threshold accumulated since the last wrap.
  for (std::size_t i = 0; i < W; ++i) dft.push(rng.next_double_in(-1.0, 1.0));
  ASSERT_EQ(dft.phase_steps(), 0u);  // wrap resets exactly
  const std::uint64_t below = dsp::SlidingDft::kPhaseResetSteps - 1;
  for (std::uint64_t i = 0; i < below; ++i) {
    dft.push(rng.next_double_in(-1.0, 1.0));
  }
  ASSERT_EQ(dft.phase_steps(), below);

  // Renormalize below the threshold: coefficients are recomputed but the
  // (near-exact) phasor table is kept — phase_steps is not reset.
  dft.renormalize();
  EXPECT_EQ(dft.phase_steps(), below);

  // The kept table must still track the exact phasors: one more push made
  // with it, then an exact recompute, must agree to far better than the
  // update-error scale renormalization exists to fix.
  dsp::SlidingDft exact(W, 32);
  // Mirror the full history into a twin, renormalizing at the same point.
  common::Xoshiro256 rng2(5);
  for (std::size_t i = 0; i < W + below; ++i) {
    exact.push(rng2.next_double_in(-1.0, 1.0));
  }
  exact.renormalize();
  const double v = 0.123;
  dft.push(v);
  exact.push(v);
  const auto a = dft.coefficients();
  const auto b = exact.coefficients();
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k].real(), b[k].real(), 1e-9);
    EXPECT_NEAR(a[k].imag(), b[k].imag(), 1e-9);
  }

  // Cross the threshold: the next renormalize re-derives the table.
  for (std::uint64_t i = dft.phase_steps();
       i < dsp::SlidingDft::kPhaseResetSteps; ++i) {
    dft.push(rng.next_double_in(-1.0, 1.0));
  }
  ASSERT_GE(dft.phase_steps(), dsp::SlidingDft::kPhaseResetSteps);
  dft.renormalize();
  EXPECT_EQ(dft.phase_steps(), 0u);
}

// ---------------------------------------------------------------------------
// SIMD == scalar == serial: the dispatched kernels must be bit-identical to
// the forced-scalar reference at EVERY level the host supports (DESIGN.md
// section 13). The operator tests above already pin batch == serial at the
// default (best) level; these pin each level against scalar directly, both
// at the raw-kernel surface and through the operators.
// ---------------------------------------------------------------------------

namespace simd = common::simd;

std::vector<simd::Level> supported_levels() {
  std::vector<simd::Level> out{simd::Level::kScalar};
  for (const simd::Level level :
       {simd::Level::kNeon, simd::Level::kAvx2, simd::Level::kAvx512}) {
    // Forcing an unsupported-on-this-arch tier (e.g. kNeon on x86) is legal
    // and falls back to scalar; including every tier up to the detected one
    // exercises those fallbacks too.
    if (level <= simd::detected_level()) out.push_back(level);
  }
  return out;
}

struct ForcedLevel {
  explicit ForcedLevel(simd::Level level) { simd::force_level(level); }
  ~ForcedLevel() { simd::reset_level(); }
};

/// Keys hitting every M61 reduction edge: zero, the prime itself and its
/// neighbors, 32-bit limb boundaries, and the top of the u64 range.
std::vector<std::uint64_t> m61_edge_keys() {
  constexpr std::uint64_t kP = sketch::kMersenne61;
  return {0,      1,        kP - 1,   kP,      kP + 1,  (1ull << 32) - 1,
          1ull << 32, 1ull << 61, 1ull << 62, ~0ull,   ~0ull - 1, 0xdeadbeefULL};
}

TEST(SimdIdentity, M61KernelsMatchScalarAtEveryLevel) {
  common::Xoshiro256 rng(kSeeds[1]);
  std::vector<std::uint64_t> keys = m61_edge_keys();
  while (keys.size() < 4003) keys.push_back(rng.next());  // full u64 range
  const std::size_t n = keys.size();  // odd: exercises every tail length

  sketch::FourWiseHash hash(rng);

  std::vector<std::uint64_t> sx1(n), sx2(n), sx3(n), seval(n);
  std::uint64_t sparity = 0;
  {
    ForcedLevel scalar(simd::Level::kScalar);
    simd::m61_key_powers(keys.data(), n, sx1.data(), sx2.data(), sx3.data());
    simd::m61_poly_eval(hash.coefficients().data(), sx1.data(), sx2.data(),
                        sx3.data(), n, seval.data());
    sparity = simd::m61_poly_parity_sum(hash.coefficients().data(), sx1.data(),
                                        sx2.data(), sx3.data(), n);
  }
  // The scalar kernel restates KeyPowers::of / eval_powers; pin that too.
  for (std::size_t j = 0; j < n; ++j) {
    const sketch::KeyPowers p = sketch::KeyPowers::of(keys[j]);
    ASSERT_EQ(sx1[j], p.x1) << "j=" << j;
    ASSERT_EQ(sx2[j], p.x2) << "j=" << j;
    ASSERT_EQ(sx3[j], p.x3) << "j=" << j;
    ASSERT_EQ(seval[j], hash.eval_powers(p)) << "j=" << j;
  }

  for (const simd::Level level : supported_levels()) {
    ForcedLevel forced(level);
    std::vector<std::uint64_t> x1(n), x2(n), x3(n), eval(n);
    simd::m61_key_powers(keys.data(), n, x1.data(), x2.data(), x3.data());
    EXPECT_EQ(sx1, x1) << simd::level_name(level);
    EXPECT_EQ(sx2, x2) << simd::level_name(level);
    EXPECT_EQ(sx3, x3) << simd::level_name(level);
    simd::m61_poly_eval(hash.coefficients().data(), x1.data(), x2.data(),
                        x3.data(), n, eval.data());
    EXPECT_EQ(seval, eval) << simd::level_name(level);
    // Every tail length in [0, 17] plus the full batch.
    for (std::size_t len = 0; len <= 17; ++len) {
      EXPECT_EQ(simd::m61_poly_parity_sum(hash.coefficients().data(), x1.data(),
                                          x2.data(), x3.data(), len),
                simd::m61_poly_parity_sum(hash.coefficients().data(), sx1.data(),
                                          sx2.data(), sx3.data(), len))
          << simd::level_name(level) << " len=" << len;
    }
    EXPECT_EQ(sparity, simd::m61_poly_parity_sum(hash.coefficients().data(),
                                                 x1.data(), x2.data(), x3.data(), n))
        << simd::level_name(level);
  }
}

TEST(SimdIdentity, FastAgmsRowKernelMatchesSerialAtEveryLevel) {
  common::Xoshiro256 rng(kSeeds[3]);
  std::vector<std::uint64_t> keys = m61_edge_keys();
  while (keys.size() < 1031) keys.push_back(rng.next());  // odd: tail shapes
  const std::size_t n = keys.size();

  sketch::FourWiseHash bucket_hash(rng);
  sketch::FourWiseHash sign_hash(rng);
  std::vector<std::uint64_t> x1(n), x2(n), x3(n);
  {
    ForcedLevel scalar(simd::Level::kScalar);
    simd::m61_key_powers(keys.data(), n, x1.data(), x2.data(), x3.data());
  }

  // Pow2 buckets exercise the vector mask path; non-pow2 the `%` fallback.
  for (const std::uint64_t buckets : {std::uint64_t{256}, std::uint64_t{250}}) {
    for (const std::int64_t weight : {std::int64_t{1}, std::int64_t{-3}}) {
      // Serial reference straight off the hash objects (the update() path).
      std::vector<std::int64_t> want(buckets, 0);
      for (const std::uint64_t key : keys) {
        want[bucket_hash.bucket(key, buckets)] += weight * sign_hash.sign(key);
      }
      // Forced-scalar references for every tail length in [0, 17].
      std::vector<std::vector<std::int64_t>> tail_refs;
      {
        ForcedLevel scalar(simd::Level::kScalar);
        for (std::size_t len = 0; len <= 17; ++len) {
          std::vector<std::int64_t> ref(buckets, 0);
          simd::fast_agms_update_row(bucket_hash.coefficients().data(),
                                     sign_hash.coefficients().data(), x1.data(),
                                     x2.data(), x3.data(), len, buckets, weight,
                                     ref.data());
          tail_refs.push_back(std::move(ref));
        }
      }
      for (const simd::Level level : supported_levels()) {
        ForcedLevel forced(level);
        std::vector<std::int64_t> row(buckets, 0);
        simd::fast_agms_update_row(bucket_hash.coefficients().data(),
                                   sign_hash.coefficients().data(), x1.data(),
                                   x2.data(), x3.data(), n, buckets, weight,
                                   row.data());
        EXPECT_EQ(want, row) << simd::level_name(level) << " buckets=" << buckets
                             << " weight=" << weight;
        for (std::size_t len = 0; len <= 17; ++len) {
          std::vector<std::int64_t> got(buckets, 0);
          simd::fast_agms_update_row(bucket_hash.coefficients().data(),
                                     sign_hash.coefficients().data(), x1.data(),
                                     x2.data(), x3.data(), len, buckets, weight,
                                     got.data());
          EXPECT_EQ(tail_refs[len], got)
              << simd::level_name(level) << " len=" << len
              << " buckets=" << buckets;
        }
      }
    }
  }
}

TEST(SimdIdentity, DftKernelsMatchScalarAtEveryLevel) {
  common::Xoshiro256 rng(kSeeds[2]);
  const std::size_t n = 1027;  // odd: vector body plus every tail shape
  std::vector<double> cr0(n), ci0(n), pr0(n), pi0(n), ur(n), ui(n);
  for (std::size_t k = 0; k < n; ++k) {
    cr0[k] = rng.next_double_in(-1e6, 1e6);
    ci0[k] = rng.next_double_in(-1e6, 1e6);
    pr0[k] = rng.next_double_in(-1.0, 1.0);
    pi0[k] = rng.next_double_in(-1.0, 1.0);
    ur[k] = rng.next_double_in(-1.0, 1.0);
    ui[k] = rng.next_double_in(-1.0, 1.0);
  }
  const double delta = rng.next_double_in(-100.0, 100.0);

  auto scr = cr0, sci = ci0, spr = pr0, spi = pi0;
  {
    ForcedLevel scalar(simd::Level::kScalar);
    simd::dft_accum_rotate(scr.data(), sci.data(), spr.data(), spi.data(),
                           ur.data(), ui.data(), n, delta);
    simd::dft_accum(scr.data(), sci.data(), spr.data(), spi.data(), n, delta);
    simd::dft_rotate(spr.data(), spi.data(), ur.data(), ui.data(), n);
  }
  for (const simd::Level level : supported_levels()) {
    ForcedLevel forced(level);
    auto cr = cr0, ci = ci0, pr = pr0, pi = pi0;
    simd::dft_accum_rotate(cr.data(), ci.data(), pr.data(), pi.data(),
                           ur.data(), ui.data(), n, delta);
    simd::dft_accum(cr.data(), ci.data(), pr.data(), pi.data(), n, delta);
    simd::dft_rotate(pr.data(), pi.data(), ur.data(), ui.data(), n);
    EXPECT_EQ(scr, cr) << simd::level_name(level);
    EXPECT_EQ(sci, ci) << simd::level_name(level);
    EXPECT_EQ(spr, pr) << simd::level_name(level);
    EXPECT_EQ(spi, pi) << simd::level_name(level);
  }
}

TEST(SimdIdentity, DoubleHashKernelsMatchScalarAtEveryLevel) {
  common::Xoshiro256 rng(kSeeds[0]);
  const sketch::DoubleHash hash(rng);
  std::vector<std::uint64_t> keys(2053);
  for (auto& k : keys) k = rng.next();
  const std::size_t n = keys.size();

  std::vector<std::uint64_t> sh1(n), sh2(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto p = hash.prepare(keys[j]);
    sh1[j] = p.h1;
    sh2[j] = p.h2;
  }
  constexpr std::uint32_t kProbes = 5;
  for (const simd::Level level : supported_levels()) {
    ForcedLevel forced(level);
    std::vector<std::uint64_t> h1(n), h2(n);
    hash.prepare_batch(keys.data(), n, h1.data(), h2.data());
    EXPECT_EQ(sh1, h1) << simd::level_name(level);
    EXPECT_EQ(sh2, h2) << simd::level_name(level);
    for (const std::uint64_t range : {std::uint64_t{384}, std::uint64_t{1024},
                                      std::uint64_t{1} << 20}) {
      const sketch::RangeReducer reducer(range);
      std::vector<std::uint32_t> idx(n * kProbes);
      ASSERT_TRUE(simd::double_hash_indices(h1.data(), h2.data(), n, kProbes,
                                            range, idx.data()));
      for (std::uint32_t i = 0; i < kProbes; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          const sketch::DoubleHash::Prepared prepared{h1[j], h2[j]};
          ASSERT_EQ(idx[i * n + j], prepared.index(i, reducer))
              << simd::level_name(level) << " range=" << range << " i=" << i
              << " j=" << j;
        }
      }
    }
    // Oversized geometry: the u32 index table is refused at every level.
    std::uint32_t unused;
    EXPECT_FALSE(simd::double_hash_indices(h1.data(), h2.data(), 0, 0,
                                           (std::uint64_t{1} << 32) + 1,
                                           &unused));
  }
}

TEST(SimdIdentity, MatchScanKernelsMatchScalarAtEveryLevel) {
  common::Xoshiro256 rng(kSeeds[1]);
  const std::size_t n = 1033;  // odd: vector body plus every tail shape
  std::vector<std::int64_t> keys(n);
  std::vector<double> ts(n);
  for (std::size_t j = 0; j < n; ++j) {
    // Few distinct keys (hits), negative keys included; gridded timestamps
    // so duplicates and boundary-exact bounds occur.
    keys[j] = static_cast<std::int64_t>(rng.next() % 7) - 3;
    ts[j] = 0.25 * static_cast<double>(rng.next() % 64);
  }

  struct Probe {
    std::int64_t key;
    double lo, hi;
  };
  std::vector<Probe> probes;
  for (std::int64_t key = -3; key <= 3; ++key) {
    probes.push_back({key, 2.0, 10.0});     // boundary-exact grid bounds
    probes.push_back({key, 0.0, 16.0});     // wide: most timestamps match
    probes.push_back({key, 5.125, 5.125});  // empty range between grid points
    probes.push_back({key, 9.0, 3.0});      // inverted: nothing matches
  }
  probes.push_back({99, 0.0, 16.0});  // absent key

  for (const Probe& probe : probes) {
    // Every tail length in [0, 17], plus lengths straddling all vector
    // widths, plus the full odd-sized batch.
    for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                            std::size_t{3}, std::size_t{4}, std::size_t{7},
                            std::size_t{8}, std::size_t{9}, std::size_t{15},
                            std::size_t{16}, std::size_t{17}, n}) {
      std::uint64_t want_count = 0;
      std::vector<std::uint32_t> want_idx(len);
      std::size_t want_m = 0;
      {
        ForcedLevel scalar(simd::Level::kScalar);
        want_count = simd::match_count_scan(keys.data(), ts.data(), len,
                                            probe.key, probe.lo, probe.hi);
        want_m = simd::match_collect_scan(keys.data(), ts.data(), len,
                                          probe.key, probe.lo, probe.hi,
                                          want_idx.data());
      }
      ASSERT_EQ(want_count, want_m);
      for (const simd::Level level : supported_levels()) {
        ForcedLevel forced(level);
        EXPECT_EQ(want_count,
                  simd::match_count_scan(keys.data(), ts.data(), len, probe.key,
                                         probe.lo, probe.hi))
            << simd::level_name(level) << " len=" << len << " key=" << probe.key;
        std::vector<std::uint32_t> idx(len);
        const std::size_t m =
            simd::match_collect_scan(keys.data(), ts.data(), len, probe.key,
                                     probe.lo, probe.hi, idx.data());
        ASSERT_EQ(want_m, m)
            << simd::level_name(level) << " len=" << len << " key=" << probe.key;
        for (std::size_t k = 0; k < m; ++k) {
          ASSERT_EQ(want_idx[k], idx[k])
              << simd::level_name(level) << " len=" << len << " k=" << k;
        }
      }
    }
  }
}

TEST(SimdIdentity, OperatorsMatchSerialAtEveryLevel) {
  for (const simd::Level level : supported_levels()) {
    ForcedLevel forced(level);
    common::Xoshiro256 rng(kSeeds[2]);
    const auto values = random_values(1500, rng);
    const auto keys = random_keys(1500, rng);

    // The per-tuple paths (push / update / insert) never touch the simd::
    // kernels, so the serial twin is the fixed reference at every level.
    dsp::SlidingDft dft_serial(128, 16), dft_batched(128, 16);
    for (const double v : values) dft_serial.push(v);
    dft_batched.push_batch(values);
    const auto sc = dft_serial.coefficients();
    const auto bc = dft_batched.coefficients();
    ASSERT_EQ(sc.size(), bc.size());
    for (std::size_t k = 0; k < sc.size(); ++k) {
      EXPECT_EQ(sc[k], bc[k]) << simd::level_name(level) << " k=" << k;
    }

    sketch::AgmsSketch agms_serial(sketch::AgmsShape{10, 2}, 42);
    sketch::AgmsSketch agms_batched(sketch::AgmsShape{10, 2}, 42);
    for (const std::uint64_t k : keys) agms_serial.update(k, +1);
    agms_batched.update_batch(keys, +1);
    EXPECT_EQ(agms_serial.counters(), agms_batched.counters())
        << simd::level_name(level);

    sketch::FastAgmsSketch fast_serial(5, 96, 42), fast_batched(5, 96, 42);
    for (const std::uint64_t k : keys) fast_serial.update(k, +1);
    fast_batched.update_batch(keys, +1);
    EXPECT_EQ(fast_serial.counters(), fast_batched.counters())
        << simd::level_name(level);

    sketch::CountingBloomFilter bloom_serial(384, 4, 42);
    sketch::CountingBloomFilter bloom_batched(384, 4, 42);
    for (const std::uint64_t k : keys) bloom_serial.insert(k);
    bloom_batched.insert_batch(keys);
    EXPECT_EQ(bloom_serial.counters(), bloom_batched.counters())
        << simd::level_name(level);
  }
}

TEST(SimdIdentity, ForceLevelClampsToDetected) {
  simd::force_level(simd::Level::kAvx512);
  EXPECT_LE(simd::active_level(), simd::detected_level());
  simd::reset_level();
  EXPECT_EQ(simd::active_level(), simd::detected_level());
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx512), "avx512");
}

}  // namespace
}  // namespace dsjoin
