#include "dsjoin/core/oracle.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dsjoin/common/rng.hpp"

namespace dsjoin::core {
namespace {

stream::Tuple make_tuple(std::uint64_t id, std::int64_t key, double ts,
                         stream::StreamSide side) {
  stream::Tuple t;
  t.id = id;
  t.key = key;
  t.timestamp = ts;
  t.side = side;
  return t;
}

TEST(ExactJoinOracle, EmptyIsZero) {
  ExactJoinOracle oracle(5.0);
  EXPECT_EQ(oracle.total_pairs(), 0u);
}

TEST(ExactJoinOracle, CountsCoexistingEqualKeys) {
  ExactJoinOracle oracle(5.0);
  oracle.observe(make_tuple(1, 7, 0.0, stream::StreamSide::kR));
  oracle.observe(make_tuple(2, 7, 3.0, stream::StreamSide::kS));   // pairs with 1
  oracle.observe(make_tuple(3, 7, 10.0, stream::StreamSide::kS));  // too late for 1
  oracle.observe(make_tuple(4, 7, 12.0, stream::StreamSide::kR));  // pairs with 3
  EXPECT_EQ(oracle.total_pairs(), 2u);
}

TEST(ExactJoinOracle, SameSideTuplesNeverPair) {
  ExactJoinOracle oracle(100.0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    oracle.observe(make_tuple(i, 1, static_cast<double>(i), stream::StreamSide::kR));
  }
  EXPECT_EQ(oracle.total_pairs(), 0u);
}

TEST(ExactJoinOracle, KeyMismatchNeverPairs) {
  ExactJoinOracle oracle(100.0);
  oracle.observe(make_tuple(1, 1, 0.0, stream::StreamSide::kR));
  oracle.observe(make_tuple(2, 2, 0.0, stream::StreamSide::kS));
  EXPECT_EQ(oracle.total_pairs(), 0u);
}

TEST(ExactJoinOracle, WindowEdgeIsInclusive) {
  ExactJoinOracle oracle(5.0);
  oracle.observe(make_tuple(1, 9, 0.0, stream::StreamSide::kR));
  oracle.observe(make_tuple(2, 9, 5.0, stream::StreamSide::kS));
  EXPECT_EQ(oracle.total_pairs(), 1u);
}

TEST(ExactJoinOracle, MatchesReferenceJoinOnRandomStream) {
  common::Xoshiro256 rng(11);
  const double half = 4.0;
  std::vector<stream::Tuple> r_tuples, s_tuples, all;
  double ts = 0.0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    ts += rng.next_exponential(10.0);
    auto t = make_tuple(i, rng.next_in(1, 25), ts,
                        rng.next_bool(0.5) ? stream::StreamSide::kR
                                           : stream::StreamSide::kS);
    (t.side == stream::StreamSide::kR ? r_tuples : s_tuples).push_back(t);
    all.push_back(t);
  }
  const auto expected = stream::reference_join(r_tuples, s_tuples, half).size();

  ExactJoinOracle oracle(half);
  for (const auto& t : all) oracle.observe(t);  // already in ts order
  EXPECT_EQ(oracle.total_pairs(), expected);
}

TEST(ExactJoinOracle, EvictionDoesNotLoseLivePairs) {
  // Long stream with internal eviction; equal tuples recur far apart.
  ExactJoinOracle oracle(1.0);
  double ts = 0.0;
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ts += 0.6;
    oracle.observe(make_tuple(2 * i, 1, ts, stream::StreamSide::kR));
    oracle.observe(make_tuple(2 * i + 1, 1, ts + 0.5, stream::StreamSide::kS));
    // Each R pairs with this S (dt 0.5) and the previous S (dt 0.1... no:
    // previous S is 0.6-0.5 = 0.1 earlier); each S pairs with this R and
    // the next R (dt 0.1). Verified against the closed form below.
  }
  // Closed form: R_i at t=0.6i, S_i at 0.6i+0.5. Pairs (R_i, S_i): dt=0.5.
  // (R_{i+1}, S_i): dt=0.1. (R_{i+2}, S_i): dt=0.7. (R_i, S_{i+1}): dt=1.1, out.
  expected = 5000 + 4999 + 4998;
  EXPECT_EQ(oracle.total_pairs(), expected);
}

}  // namespace
}  // namespace dsjoin::core
