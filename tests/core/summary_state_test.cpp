#include "dsjoin/core/summary_state.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <numbers>

#include "dsjoin/dsp/fft.hpp"

namespace dsjoin::core {
namespace {

using stream::StreamSide;

TEST(SummaryCodec, DftRoundTrip) {
  common::BufferWriter w;
  std::vector<dsp::CoeffDelta> deltas{
      {0, dsp::Complex(1.5, -2.5)}, {3, dsp::Complex(0.0, 4.0)}};
  summary_codec::encode_dft(w, StreamSide::kS, 2048, 8, deltas);

  bool visited = false;
  summary_codec::Visitor visitor;
  visitor.on_dft = [&](StreamSide side, std::uint32_t window,
                       std::uint32_t retained,
                       const std::vector<dsp::CoeffDelta>& decoded) {
    visited = true;
    EXPECT_EQ(side, StreamSide::kS);
    EXPECT_EQ(window, 2048u);
    EXPECT_EQ(retained, 8u);
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_EQ(decoded[0].index, 0u);
    EXPECT_EQ(decoded[0].value, dsp::Complex(1.5, -2.5));
    EXPECT_EQ(decoded[1].index, 3u);
  };
  SummaryBlock block{std::move(w).take()};
  ASSERT_TRUE(summary_codec::decode_blocks(block, visitor));
  EXPECT_TRUE(visited);
}

TEST(SummaryCodec, MultipleSubBlocksDecodeInOrder) {
  common::BufferWriter w;
  summary_codec::encode_dft(w, StreamSide::kR, 64, 4, {});
  sketch::CountingBloomFilter counting(512, 3, 5);
  counting.insert(42);
  summary_codec::encode_bloom(w, StreamSide::kS, counting.snapshot());
  sketch::AgmsSketch agms(sketch::AgmsShape{5, 1}, 9);
  agms.update(7);
  summary_codec::encode_sketch(w, StreamSide::kR, agms);

  int dft = 0, bloom = 0, sk = 0;
  summary_codec::Visitor visitor;
  visitor.on_dft = [&](auto, auto, auto, const auto&) { ++dft; };
  visitor.on_bloom = [&](StreamSide side, sketch::BloomFilter filter) {
    ++bloom;
    EXPECT_EQ(side, StreamSide::kS);
    EXPECT_TRUE(filter.contains(42));
  };
  visitor.on_sketch = [&](StreamSide side, sketch::AgmsSketch decoded) {
    ++sk;
    EXPECT_EQ(side, StreamSide::kR);
    EXPECT_EQ(decoded.counters(), agms.counters());
  };
  SummaryBlock block{std::move(w).take()};
  ASSERT_TRUE(summary_codec::decode_blocks(block, visitor));
  EXPECT_EQ(dft, 1);
  EXPECT_EQ(bloom, 1);
  EXPECT_EQ(sk, 1);
}

TEST(SummaryCodec, QuantDftRoundTripWithinStepBound) {
  // Encode at both widths; decoded values must sit within half a
  // quantization step of the originals and re-encoding must be
  // byte-identical (determinism is what backend parity rests on).
  std::vector<dsp::CoeffDelta> deltas{
      {0, dsp::Complex(1200.5, -300.25)},
      {3, dsp::Complex(0.0, 987.125)},
      {65535, dsp::Complex(-1250.0, 1.0)}};
  std::vector<dsp::Complex> values;
  for (const auto& d : deltas) values.push_back(d.value);
  const double scale = dsp::quant_scale(values);
  for (unsigned bits : {8u, 16u}) {
    const double step = scale / dsp::quant_mantissa_max(bits);
    common::BufferWriter w;
    summary_codec::encode_dft_quant(w, StreamSide::kR, 2048, 8, deltas, bits,
                                    scale);
    const auto bytes = std::move(w).take();
    // 10-byte header + u8 bits + f64 scale + u16 count, then
    // (u16 index + 2 mantissas) per delta.
    const std::size_t per = 2 + 2 * (bits / 8);
    EXPECT_EQ(bytes.size(), 1 + 1 + 4 + 4 + 1 + 8 + 2 + deltas.size() * per);

    common::BufferWriter again;
    summary_codec::encode_dft_quant(again, StreamSide::kR, 2048, 8, deltas,
                                    bits, scale);
    EXPECT_EQ(bytes, std::move(again).take());

    bool visited = false;
    summary_codec::Visitor visitor;
    visitor.on_dft = [&](StreamSide side, std::uint32_t window,
                         std::uint32_t retained,
                         const std::vector<dsp::CoeffDelta>& decoded) {
      visited = true;
      EXPECT_EQ(side, StreamSide::kR);
      EXPECT_EQ(window, 2048u);
      EXPECT_EQ(retained, 8u);
      ASSERT_EQ(decoded.size(), deltas.size());
      for (std::size_t i = 0; i < deltas.size(); ++i) {
        EXPECT_EQ(decoded[i].index, deltas[i].index);
        EXPECT_LE(std::abs(decoded[i].value.real() - deltas[i].value.real()),
                  0.5 * step * (1 + 1e-9));
        EXPECT_LE(std::abs(decoded[i].value.imag() - deltas[i].value.imag()),
                  0.5 * step * (1 + 1e-9));
      }
    };
    ASSERT_TRUE(summary_codec::decode_blocks(SummaryBlock{bytes}, visitor));
    EXPECT_TRUE(visited);
  }
}

TEST(SummaryCodec, QuantHistSpectrumRoundTrip) {
  std::vector<dsp::Complex> coeffs{{512.0, -64.0}, {0.0, 0.0}, {-17.5, 3.25}};
  const double scale = dsp::quant_scale(coeffs);
  for (unsigned bits : {8u, 16u}) {
    const double step = scale / dsp::quant_mantissa_max(bits);
    common::BufferWriter w;
    summary_codec::encode_hist_spectrum_quant(w, StreamSide::kS, 4096, coeffs,
                                              bits, scale);
    bool visited = false;
    summary_codec::Visitor visitor;
    visitor.on_hist_spectrum = [&](StreamSide side, std::uint32_t buckets,
                                   std::vector<dsp::Complex> decoded) {
      visited = true;
      EXPECT_EQ(side, StreamSide::kS);
      EXPECT_EQ(buckets, 4096u);
      ASSERT_EQ(decoded.size(), coeffs.size());
      for (std::size_t i = 0; i < coeffs.size(); ++i) {
        EXPECT_LE(std::abs(decoded[i] - coeffs[i]),
                  std::sqrt(2.0) * 0.5 * step * (1 + 1e-9));
      }
    };
    ASSERT_TRUE(
        summary_codec::decode_blocks(SummaryBlock{std::move(w).take()}, visitor));
    EXPECT_TRUE(visited);
  }
}

TEST(SummaryCodec, QuantZeroScaleDecodesToExactZeros) {
  std::vector<dsp::CoeffDelta> deltas{{2, dsp::Complex(0.0, 0.0)}};
  common::BufferWriter w;
  summary_codec::encode_dft_quant(w, StreamSide::kR, 64, 4, deltas, 16, 0.0);
  summary_codec::Visitor visitor;
  visitor.on_dft = [&](StreamSide, std::uint32_t, std::uint32_t,
                       const std::vector<dsp::CoeffDelta>& decoded) {
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0].value, dsp::Complex(0.0, 0.0));
  };
  ASSERT_TRUE(
      summary_codec::decode_blocks(SummaryBlock{std::move(w).take()}, visitor));
}

TEST(SummaryCodec, QuantRejectsBadWidthAndScale) {
  // Valid frame, then surgically corrupt the width / scale fields.
  std::vector<dsp::CoeffDelta> deltas{{1, dsp::Complex(2.0, -2.0)}};
  common::BufferWriter w;
  summary_codec::encode_dft_quant(w, StreamSide::kR, 64, 4, deltas, 8, 2.0);
  const auto clean = std::move(w).take();
  constexpr std::size_t kBitsOff = 1 + 1 + 4 + 4;  // tag, side, window, retained
  constexpr std::size_t kScaleOff = kBitsOff + 1;

  auto bad_bits = clean;
  bad_bits[kBitsOff] = 12;
  EXPECT_FALSE(summary_codec::decode_blocks(SummaryBlock{bad_bits}, {}).is_ok());

  for (double bad : {std::nan(""), -1.0,
                     std::numeric_limits<double>::infinity()}) {
    auto bad_scale = clean;
    std::uint64_t raw = 0;
    std::memcpy(&raw, &bad, sizeof(raw));
    for (std::size_t b = 0; b < 8; ++b) {
      bad_scale[kScaleOff + b] = static_cast<std::uint8_t>(raw >> (8 * b));
    }
    EXPECT_FALSE(
        summary_codec::decode_blocks(SummaryBlock{bad_scale}, {}).is_ok())
        << "scale=" << bad;
  }

  auto truncated = clean;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(
      summary_codec::decode_blocks(SummaryBlock{truncated}, {}).is_ok());
}

TEST(SummaryCodec, RejectsUnknownTag) {
  SummaryBlock block;
  block.bytes = {0x5a, 0x00};
  EXPECT_FALSE(summary_codec::decode_blocks(block, {}).is_ok());
}

TEST(SummaryCodec, RejectsBadSide) {
  SummaryBlock block;
  block.bytes = {summary_codec::kTagDft, 0x07};
  EXPECT_FALSE(summary_codec::decode_blocks(block, {}).is_ok());
}

TEST(SummaryCodec, RejectsTruncatedDft) {
  common::BufferWriter w;
  summary_codec::encode_dft(w, StreamSide::kR, 64, 4,
                            {{dsp::CoeffDelta{1, dsp::Complex(1, 1)}}});
  auto bytes = std::move(w).take();
  bytes.resize(bytes.size() - 4);
  SummaryBlock block{std::move(bytes)};
  EXPECT_FALSE(summary_codec::decode_blocks(block, {}).is_ok());
}

TEST(SummaryCodec, EmptyBlockIsOk) {
  EXPECT_TRUE(summary_codec::decode_blocks(SummaryBlock{}, {}).is_ok());
}

sampling::SampleSummary sample_summary_fixture() {
  sampling::SampleSummary summary;
  summary.strata = 8;
  summary.capacity = 128;
  summary.population = 1000;
  summary.keys = {{-40, 2.5, 0.75}, {7, 12.0, 0.0}, {900, 1.0, 4.0}};
  return summary;
}

TEST(SummaryCodec, SampleRoundTrip) {
  common::BufferWriter w;
  const auto original = sample_summary_fixture();
  summary_codec::encode_sample(w, StreamSide::kS, original);

  bool visited = false;
  summary_codec::Visitor visitor;
  visitor.on_sample = [&](StreamSide side, sampling::SampleSummary decoded) {
    visited = true;
    EXPECT_EQ(side, StreamSide::kS);
    EXPECT_EQ(decoded.strata, original.strata);
    EXPECT_EQ(decoded.capacity, original.capacity);
    EXPECT_EQ(decoded.population, original.population);
    ASSERT_EQ(decoded.keys.size(), original.keys.size());
    for (std::size_t i = 0; i < decoded.keys.size(); ++i) {
      EXPECT_EQ(decoded.keys[i].key, original.keys[i].key);
      EXPECT_DOUBLE_EQ(decoded.keys[i].weight, original.keys[i].weight);
      EXPECT_DOUBLE_EQ(decoded.keys[i].variance, original.keys[i].variance);
    }
  };
  SummaryBlock block{std::move(w).take()};
  ASSERT_TRUE(summary_codec::decode_blocks(block, visitor));
  EXPECT_TRUE(visited);
}

TEST(SummaryCodec, SampleRejectsHostileFields) {
  common::BufferWriter w;
  summary_codec::encode_sample(w, StreamSide::kR, sample_summary_fixture());
  const auto clean = std::move(w).take();
  ASSERT_TRUE(
      summary_codec::decode_blocks(SummaryBlock{clean}, {}).is_ok());

  // In-block layout: tag(1) side(1) version(1) strata(4) capacity(4)
  // population(8) count(2), then (key i64, weight f64, variance f64) each.
  constexpr std::size_t kVersionOff = 2;
  constexpr std::size_t kStrataOff = 3;
  constexpr std::size_t kCapacityOff = 7;
  constexpr std::size_t kPopulationOff = 11;
  constexpr std::size_t kEntriesOff = 21;

  const auto expect_rejected = [&](std::size_t at, std::uint8_t with,
                                   const char* what) {
    auto bad = clean;
    bad[at] = with;
    EXPECT_FALSE(summary_codec::decode_blocks(SummaryBlock{bad}, {}).is_ok())
        << what;
  };
  expect_rejected(kVersionOff, 9, "future version");
  expect_rejected(kStrataOff + 2, 0xff, "strata out of range");
  expect_rejected(kCapacityOff + 3, 0xff, "capacity out of range");
  expect_rejected(kPopulationOff + 7, 0xff, "population out of range");
  // Zero geometry: strata and capacity are single-byte little-endian here.
  expect_rejected(kStrataOff, 0, "zero strata");
  expect_rejected(kCapacityOff, 0, "zero capacity");
  // Break key ordering: raise the first key above the second (-40 -> huge).
  expect_rejected(kEntriesOff + 7, 0x7f, "keys not ascending");

  // NaN / negative masses.
  const auto expect_bad_mass = [&](std::size_t f64_at, double value) {
    auto bad = clean;
    std::uint64_t raw = 0;
    std::memcpy(&raw, &value, sizeof(raw));
    for (std::size_t b = 0; b < 8; ++b) {
      bad[f64_at + b] = static_cast<std::uint8_t>(raw >> (8 * b));
    }
    EXPECT_FALSE(summary_codec::decode_blocks(SummaryBlock{bad}, {}).is_ok())
        << value;
  };
  constexpr std::size_t kFirstWeightOff = kEntriesOff + 8;
  constexpr std::size_t kFirstVarianceOff = kEntriesOff + 16;
  expect_bad_mass(kFirstWeightOff, std::nan(""));
  expect_bad_mass(kFirstWeightOff, -1.0);
  expect_bad_mass(kFirstVarianceOff,
                  std::numeric_limits<double>::infinity());

  // Every truncation must fail loudly, never decode a partial sample.
  for (std::size_t cut = 1; cut < clean.size(); ++cut) {
    auto truncated = clean;
    truncated.resize(clean.size() - cut);
    EXPECT_FALSE(
        summary_codec::decode_blocks(SummaryBlock{truncated}, {}).is_ok())
        << "cut " << cut;
  }
}

TEST(SampleStore, UnseededThenHoldsLatest) {
  SampleStore store;
  EXPECT_FALSE(store.seeded());
  EXPECT_EQ(store.summary(), nullptr);
  store.update(sample_summary_fixture());
  ASSERT_TRUE(store.seeded());
  EXPECT_EQ(store.summary()->population, 1000u);
  auto newer = sample_summary_fixture();
  newer.population = 2000;
  store.update(std::move(newer));
  EXPECT_EQ(store.summary()->population, 2000u);
}

TEST(CoeffStore, StartsUnseeded) {
  CoeffStore store(64, 8);
  EXPECT_FALSE(store.seeded());
  EXPECT_EQ(store.estimate_count(5, 2), 0u);
}

TEST(CoeffStore, ReconstructsAppliedSpectrum) {
  // Build a real spectrum for a constant-100 window; apply it as deltas;
  // every estimate near 100 must see the full window.
  constexpr std::uint32_t kW = 64;
  std::vector<double> signal(kW, 100.0);
  dsp::Fft fft(kW);
  const auto spectrum = fft.forward_real(signal);
  CoeffStore store(kW, 8);
  std::vector<dsp::CoeffDelta> deltas;
  for (std::uint32_t k = 0; k < 8; ++k) {
    deltas.push_back(dsp::CoeffDelta{k, spectrum[k]});
  }
  store.apply(deltas);
  EXPECT_TRUE(store.seeded());
  EXPECT_EQ(store.estimate_count(100, 0), kW);
  EXPECT_EQ(store.estimate_count(100, 5), kW);
  EXPECT_EQ(store.estimate_count(200, 5), 0u);
}

TEST(CoeffStore, ToleranceWidensMatches) {
  // Ramp 0..63 reconstructed from the full half-spectrum: estimates around
  // key k with tolerance t must count ~2t+1 values.
  constexpr std::uint32_t kW = 64;
  std::vector<double> signal(kW);
  for (std::uint32_t i = 0; i < kW; ++i) signal[i] = i;
  dsp::Fft fft(kW);
  const auto spectrum = fft.forward_real(signal);
  CoeffStore store(kW, kW / 2 + 1);
  std::vector<dsp::CoeffDelta> deltas;
  for (std::uint32_t k = 0; k < kW / 2 + 1; ++k) {
    deltas.push_back(dsp::CoeffDelta{k, spectrum[k]});
  }
  store.apply(deltas);
  const auto narrow = store.estimate_count(32, 1);
  const auto wide = store.estimate_count(32, 8);
  EXPECT_GT(wide, narrow);
  EXPECT_GE(narrow, 2u);
  EXPECT_LE(wide, 20u);
}

TEST(CoeffStore, IgnoresOutOfRangeIndices) {
  CoeffStore store(64, 4);
  store.apply({dsp::CoeffDelta{99, dsp::Complex(1, 1)}});
  EXPECT_FALSE(store.seeded());
}

TEST(CoeffStore, UpdatesInvalidateCache) {
  constexpr std::uint32_t kW = 32;
  CoeffStore store(kW, 1);
  // DC for constant 10: X0 = 320.
  store.apply({dsp::CoeffDelta{0, dsp::Complex(320, 0)}});
  EXPECT_EQ(store.estimate_count(10, 0), kW);
  // Move the window to constant 20.
  store.apply({dsp::CoeffDelta{0, dsp::Complex(640, 0)}});
  EXPECT_EQ(store.estimate_count(10, 0), 0u);
  EXPECT_EQ(store.estimate_count(20, 0), kW);
  EXPECT_EQ(store.updates_applied(), 2u);
}

TEST(BloomStore, UnseededContainsNothing) {
  BloomStore store;
  EXPECT_FALSE(store.seeded());
  EXPECT_FALSE(store.contains(5, 3));
}

TEST(BloomStore, ToleranceScansNeighbourhood) {
  sketch::BloomFilter filter(4096, 3, 1);
  filter.insert(100);
  BloomStore store;
  store.update(std::move(filter));
  EXPECT_TRUE(store.seeded());
  EXPECT_TRUE(store.contains(100, 0));
  EXPECT_TRUE(store.contains(98, 2));
  EXPECT_FALSE(store.contains(90, 2));
}

TEST(SketchStore, HoldsLatestSketch) {
  SketchStore store;
  EXPECT_FALSE(store.seeded());
  EXPECT_EQ(store.sketch(), nullptr);
  sketch::AgmsSketch sketch(sketch::AgmsShape{5, 1}, 3);
  sketch.update(9);
  store.update(std::move(sketch));
  ASSERT_TRUE(store.seeded());
  EXPECT_DOUBLE_EQ(store.sketch()->estimate_self_join(), 1.0);
}

}  // namespace
}  // namespace dsjoin::core
