#include "dsjoin/core/summary_state.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsjoin/dsp/fft.hpp"

namespace dsjoin::core {
namespace {

using stream::StreamSide;

TEST(SummaryCodec, DftRoundTrip) {
  common::BufferWriter w;
  std::vector<dsp::CoeffDelta> deltas{
      {0, dsp::Complex(1.5, -2.5)}, {3, dsp::Complex(0.0, 4.0)}};
  summary_codec::encode_dft(w, StreamSide::kS, 2048, 8, deltas);

  bool visited = false;
  summary_codec::Visitor visitor;
  visitor.on_dft = [&](StreamSide side, std::uint32_t window,
                       std::uint32_t retained,
                       const std::vector<dsp::CoeffDelta>& decoded) {
    visited = true;
    EXPECT_EQ(side, StreamSide::kS);
    EXPECT_EQ(window, 2048u);
    EXPECT_EQ(retained, 8u);
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_EQ(decoded[0].index, 0u);
    EXPECT_EQ(decoded[0].value, dsp::Complex(1.5, -2.5));
    EXPECT_EQ(decoded[1].index, 3u);
  };
  SummaryBlock block{std::move(w).take()};
  ASSERT_TRUE(summary_codec::decode_blocks(block, visitor));
  EXPECT_TRUE(visited);
}

TEST(SummaryCodec, MultipleSubBlocksDecodeInOrder) {
  common::BufferWriter w;
  summary_codec::encode_dft(w, StreamSide::kR, 64, 4, {});
  sketch::CountingBloomFilter counting(512, 3, 5);
  counting.insert(42);
  summary_codec::encode_bloom(w, StreamSide::kS, counting.snapshot());
  sketch::AgmsSketch agms(sketch::AgmsShape{5, 1}, 9);
  agms.update(7);
  summary_codec::encode_sketch(w, StreamSide::kR, agms);

  int dft = 0, bloom = 0, sk = 0;
  summary_codec::Visitor visitor;
  visitor.on_dft = [&](auto, auto, auto, const auto&) { ++dft; };
  visitor.on_bloom = [&](StreamSide side, sketch::BloomFilter filter) {
    ++bloom;
    EXPECT_EQ(side, StreamSide::kS);
    EXPECT_TRUE(filter.contains(42));
  };
  visitor.on_sketch = [&](StreamSide side, sketch::AgmsSketch decoded) {
    ++sk;
    EXPECT_EQ(side, StreamSide::kR);
    EXPECT_EQ(decoded.counters(), agms.counters());
  };
  SummaryBlock block{std::move(w).take()};
  ASSERT_TRUE(summary_codec::decode_blocks(block, visitor));
  EXPECT_EQ(dft, 1);
  EXPECT_EQ(bloom, 1);
  EXPECT_EQ(sk, 1);
}

TEST(SummaryCodec, RejectsUnknownTag) {
  SummaryBlock block;
  block.bytes = {0x5a, 0x00};
  EXPECT_FALSE(summary_codec::decode_blocks(block, {}).is_ok());
}

TEST(SummaryCodec, RejectsBadSide) {
  SummaryBlock block;
  block.bytes = {summary_codec::kTagDft, 0x07};
  EXPECT_FALSE(summary_codec::decode_blocks(block, {}).is_ok());
}

TEST(SummaryCodec, RejectsTruncatedDft) {
  common::BufferWriter w;
  summary_codec::encode_dft(w, StreamSide::kR, 64, 4,
                            {{dsp::CoeffDelta{1, dsp::Complex(1, 1)}}});
  auto bytes = std::move(w).take();
  bytes.resize(bytes.size() - 4);
  SummaryBlock block{std::move(bytes)};
  EXPECT_FALSE(summary_codec::decode_blocks(block, {}).is_ok());
}

TEST(SummaryCodec, EmptyBlockIsOk) {
  EXPECT_TRUE(summary_codec::decode_blocks(SummaryBlock{}, {}).is_ok());
}

TEST(CoeffStore, StartsUnseeded) {
  CoeffStore store(64, 8);
  EXPECT_FALSE(store.seeded());
  EXPECT_EQ(store.estimate_count(5, 2), 0u);
}

TEST(CoeffStore, ReconstructsAppliedSpectrum) {
  // Build a real spectrum for a constant-100 window; apply it as deltas;
  // every estimate near 100 must see the full window.
  constexpr std::uint32_t kW = 64;
  std::vector<double> signal(kW, 100.0);
  dsp::Fft fft(kW);
  const auto spectrum = fft.forward_real(signal);
  CoeffStore store(kW, 8);
  std::vector<dsp::CoeffDelta> deltas;
  for (std::uint32_t k = 0; k < 8; ++k) {
    deltas.push_back(dsp::CoeffDelta{k, spectrum[k]});
  }
  store.apply(deltas);
  EXPECT_TRUE(store.seeded());
  EXPECT_EQ(store.estimate_count(100, 0), kW);
  EXPECT_EQ(store.estimate_count(100, 5), kW);
  EXPECT_EQ(store.estimate_count(200, 5), 0u);
}

TEST(CoeffStore, ToleranceWidensMatches) {
  // Ramp 0..63 reconstructed from the full half-spectrum: estimates around
  // key k with tolerance t must count ~2t+1 values.
  constexpr std::uint32_t kW = 64;
  std::vector<double> signal(kW);
  for (std::uint32_t i = 0; i < kW; ++i) signal[i] = i;
  dsp::Fft fft(kW);
  const auto spectrum = fft.forward_real(signal);
  CoeffStore store(kW, kW / 2 + 1);
  std::vector<dsp::CoeffDelta> deltas;
  for (std::uint32_t k = 0; k < kW / 2 + 1; ++k) {
    deltas.push_back(dsp::CoeffDelta{k, spectrum[k]});
  }
  store.apply(deltas);
  const auto narrow = store.estimate_count(32, 1);
  const auto wide = store.estimate_count(32, 8);
  EXPECT_GT(wide, narrow);
  EXPECT_GE(narrow, 2u);
  EXPECT_LE(wide, 20u);
}

TEST(CoeffStore, IgnoresOutOfRangeIndices) {
  CoeffStore store(64, 4);
  store.apply({dsp::CoeffDelta{99, dsp::Complex(1, 1)}});
  EXPECT_FALSE(store.seeded());
}

TEST(CoeffStore, UpdatesInvalidateCache) {
  constexpr std::uint32_t kW = 32;
  CoeffStore store(kW, 1);
  // DC for constant 10: X0 = 320.
  store.apply({dsp::CoeffDelta{0, dsp::Complex(320, 0)}});
  EXPECT_EQ(store.estimate_count(10, 0), kW);
  // Move the window to constant 20.
  store.apply({dsp::CoeffDelta{0, dsp::Complex(640, 0)}});
  EXPECT_EQ(store.estimate_count(10, 0), 0u);
  EXPECT_EQ(store.estimate_count(20, 0), kW);
  EXPECT_EQ(store.updates_applied(), 2u);
}

TEST(BloomStore, UnseededContainsNothing) {
  BloomStore store;
  EXPECT_FALSE(store.seeded());
  EXPECT_FALSE(store.contains(5, 3));
}

TEST(BloomStore, ToleranceScansNeighbourhood) {
  sketch::BloomFilter filter(4096, 3, 1);
  filter.insert(100);
  BloomStore store;
  store.update(std::move(filter));
  EXPECT_TRUE(store.seeded());
  EXPECT_TRUE(store.contains(100, 0));
  EXPECT_TRUE(store.contains(98, 2));
  EXPECT_FALSE(store.contains(90, 2));
}

TEST(SketchStore, HoldsLatestSketch) {
  SketchStore store;
  EXPECT_FALSE(store.seeded());
  EXPECT_EQ(store.sketch(), nullptr);
  sketch::AgmsSketch sketch(sketch::AgmsShape{5, 1}, 3);
  sketch.update(9);
  store.update(std::move(sketch));
  ASSERT_TRUE(store.seeded());
  EXPECT_DOUBLE_EQ(store.sketch()->estimate_self_join(), 1.0);
}

}  // namespace
}  // namespace dsjoin::core
