// Direct Node tests: one or two nodes driven by hand over an ideal
// simulated network, so every join path and frame reaction is observable.
#include "dsjoin/core/node.hpp"

#include <gtest/gtest.h>

#include "dsjoin/core/wire.hpp"
#include "dsjoin/net/sim_transport.hpp"

namespace dsjoin::core {
namespace {

struct Harness {
  explicit Harness(PolicyKind kind, std::uint32_t nodes = 2) {
    config.policy = kind;
    config.nodes = nodes;
    config.join_half_width_s = 5.0;
    transport = std::make_unique<net::SimTransport>(queue, nodes,
                                                    net::WanProfile::ideal(), 1);
    metrics.set_node_count(nodes);
    for (net::NodeId id = 0; id < nodes; ++id) {
      built.push_back(std::make_unique<Node>(config, id, *transport, metrics));
      Node* node = built.back().get();
      transport->register_handler(id, [this, node](net::Frame&& f) {
        node->on_frame(std::move(f), queue.now());
      });
    }
  }

  stream::Tuple tuple(std::uint64_t id, std::int64_t key, double ts,
                      stream::StreamSide side, net::NodeId origin) {
    stream::Tuple t;
    t.id = id;
    t.key = key;
    t.timestamp = ts;
    t.side = side;
    t.origin = origin;
    return t;
  }

  SystemConfig config;
  net::EventQueue queue;
  std::unique_ptr<net::SimTransport> transport;
  MetricsCollector metrics;
  std::vector<std::unique_ptr<Node>> built;
};

TEST(Node, LocalLocalPairsNeedNoNetwork) {
  Harness h(PolicyKind::kBase);
  Node& node = *h.built[0];
  node.on_local_tuple(h.tuple(1, 7, 0.0, stream::StreamSide::kR, 0), 0.0);
  h.queue.run_all();
  const auto frames_before = h.transport->stats().total_frames();
  node.on_local_tuple(h.tuple(2, 7, 1.0, stream::StreamSide::kS, 0), 1.0);
  h.queue.run_all();
  EXPECT_EQ(h.metrics.distinct_pairs(), 1u);
  // The S tuple was broadcast (BASE), but no result frame was needed: the
  // pair was local-local.
  EXPECT_EQ(h.transport->stats().frames(net::FrameKind::kResult), 0u);
  EXPECT_GT(h.transport->stats().total_frames(), frames_before);
}

TEST(Node, ForwardedTupleJoinsAndShipsResult) {
  Harness h(PolicyKind::kBase);
  // Node 1 holds a local S tuple (broadcast to node 0); node 0 then ingests
  // a matching R tuple. Two discoveries ship: node 0 finds the pair against
  // its received-S window (ships to node 1), and node 1 finds it when the
  // forwarded R arrives (ships to node 0).
  h.built[1]->on_local_tuple(h.tuple(10, 42, 0.0, stream::StreamSide::kS, 1), 0.0);
  h.queue.run_all();
  h.built[0]->on_local_tuple(h.tuple(11, 42, 1.0, stream::StreamSide::kR, 0), 1.0);
  h.queue.run_all();
  EXPECT_EQ(h.metrics.distinct_pairs(), 1u);
  EXPECT_EQ(h.built[1]->received_tuples(), 1u);
  EXPECT_EQ(h.transport->stats().frames(net::FrameKind::kResult), 2u);
}

TEST(Node, BothOrdersOfArrivalAreCaught) {
  Harness h(PolicyKind::kBase);
  // R arrives (and is forwarded) BEFORE the matching S exists remotely:
  // the pair must be found via the received-R window when S arrives.
  h.built[0]->on_local_tuple(h.tuple(20, 5, 0.0, stream::StreamSide::kR, 0), 0.0);
  h.queue.run_all();
  h.built[1]->on_local_tuple(h.tuple(21, 5, 2.0, stream::StreamSide::kS, 1), 2.0);
  h.queue.run_all();
  EXPECT_EQ(h.metrics.distinct_pairs(), 1u);
}

TEST(Node, WindowBoundaryExcludesDistantPairs) {
  Harness h(PolicyKind::kBase);
  h.built[1]->on_local_tuple(h.tuple(1, 9, 0.0, stream::StreamSide::kS, 1), 0.0);
  h.queue.run_all();
  // half width 5.0; timestamp 6.0 is out of window.
  h.built[0]->on_local_tuple(h.tuple(2, 9, 6.0, stream::StreamSide::kR, 0), 6.0);
  h.queue.run_all();
  EXPECT_EQ(h.metrics.distinct_pairs(), 0u);
}

TEST(Node, DuplicateDiscoveriesDeduplicate) {
  Harness h(PolicyKind::kBase);
  // Matching tuples at both nodes: the pair is discovered at node 0 (its S
  // receives the forwarded R) and at node 1 (its R window vs forwarded S).
  h.built[0]->on_local_tuple(h.tuple(1, 3, 0.0, stream::StreamSide::kR, 0), 0.0);
  h.built[1]->on_local_tuple(h.tuple(2, 3, 0.5, stream::StreamSide::kS, 1), 0.5);
  h.queue.run_all();
  EXPECT_EQ(h.metrics.distinct_pairs(), 1u);
  EXPECT_GE(h.metrics.total_reports(), 2u);
}

TEST(Node, MalformedFrameCountsDecodeFailure) {
  Harness h(PolicyKind::kBase);
  net::Frame junk;
  junk.from = 1;
  junk.to = 0;
  junk.kind = net::FrameKind::kTuple;
  junk.payload = {1, 2, 3};
  h.built[0]->on_frame(std::move(junk), 0.0);
  EXPECT_EQ(h.built[0]->decode_failures(), 1u);
  net::Frame junk_summary;
  junk_summary.kind = net::FrameKind::kSummary;
  junk_summary.payload = {0xff};
  h.built[0]->on_frame(std::move(junk_summary), 0.0);
  EXPECT_EQ(h.built[0]->decode_failures(), 2u);
}

TEST(Node, ResultFramesAreAcceptedSilently) {
  Harness h(PolicyKind::kBase);
  ResultPayload results;
  results.pairs = {{1, 2}};
  net::Frame frame;
  frame.from = 1;
  frame.to = 0;
  frame.kind = net::FrameKind::kResult;
  frame.payload = results.encode();
  h.built[0]->on_frame(std::move(frame), 0.0);
  EXPECT_EQ(h.built[0]->decode_failures(), 0u);
  // Not re-recorded: discovery already counted at the discoverer.
  EXPECT_EQ(h.metrics.distinct_pairs(), 0u);
}

TEST(Node, EvictionForgetsAncientTuples) {
  Harness h(PolicyKind::kBase);
  h.config.retention_margin_s = 1.0;
  Node node(h.config, 0, *h.transport, h.metrics);
  // Replace node 0's handler with the local instance.
  h.transport->register_handler(0, [&](net::Frame&& f) {
    node.on_frame(std::move(f), h.queue.now());
  });
  node.on_local_tuple(h.tuple(1, 7, 0.0, stream::StreamSide::kR, 0), 0.0);
  // Push enough tuples far in the future to trigger the periodic eviction.
  for (int i = 0; i < 200; ++i) {
    const double ts = 1000.0 + i;
    node.on_local_tuple(h.tuple(100 + static_cast<std::uint64_t>(i), 999, ts,
                                stream::StreamSide::kR, 0),
                        ts);
  }
  h.queue.run_all();
  const auto before = h.metrics.distinct_pairs();
  // A matching S at ts 1200 must NOT pair with the ancient tuple id 1 (it
  // was evicted), only fail to find key 7.
  node.on_local_tuple(h.tuple(999, 7, 1200.0, stream::StreamSide::kS, 0), 1200.0);
  h.queue.run_all();
  EXPECT_EQ(h.metrics.distinct_pairs(), before);
}

TEST(Node, PiggybackedSummariesReachPeerPolicies) {
  Harness h(PolicyKind::kDftt);
  // Feed node 0 enough tuples that its piggybacked coefficients seed node
  // 1's view (DFTT's exploration floor guarantees occasional contact).
  double ts = 0.0;
  for (int i = 0; i < 600; ++i) {
    ts += 0.05;
    h.built[0]->on_local_tuple(
        h.tuple(static_cast<std::uint64_t>(i) + 1, 5000 + i % 5, ts,
                stream::StreamSide::kR, 0),
        ts);
    h.queue.run_all();
  }
  EXPECT_GT(h.transport->stats().piggyback_bytes, 0u);
}

}  // namespace
}  // namespace dsjoin::core
