#include "dsjoin/core/wire.hpp"

#include <gtest/gtest.h>

namespace dsjoin::core {
namespace {

stream::Tuple sample_tuple() {
  stream::Tuple t;
  t.id = 321;
  t.key = 777;
  t.timestamp = 5.25;
  t.origin = 2;
  t.side = stream::StreamSide::kS;
  return t;
}

TEST(TuplePayload, RoundTripWithoutPiggyback) {
  TuplePayload payload;
  payload.tuple = sample_tuple();
  const auto bytes = payload.encode();
  auto decoded = TuplePayload::decode(bytes);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().tuple.id, 321u);
  EXPECT_EQ(decoded.value().tuple.key, 777);
  EXPECT_TRUE(decoded.value().piggyback.empty());
}

TEST(TuplePayload, RoundTripWithPiggyback) {
  TuplePayload payload;
  payload.tuple = sample_tuple();
  payload.piggyback.bytes = {1, 2, 3, 4, 5};
  const auto bytes = payload.encode();
  auto decoded = TuplePayload::decode(bytes);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().piggyback.bytes, payload.piggyback.bytes);
}

TEST(TuplePayload, RejectsTruncatedPiggyback) {
  TuplePayload payload;
  payload.tuple = sample_tuple();
  payload.piggyback.bytes.assign(100, 7);
  auto bytes = payload.encode();
  bytes.resize(bytes.size() - 50);
  EXPECT_FALSE(TuplePayload::decode(bytes).is_ok());
}

TEST(TuplePayload, RejectsGarbage) {
  std::vector<std::uint8_t> junk{1, 2, 3};
  EXPECT_FALSE(TuplePayload::decode(junk).is_ok());
}

TEST(SummaryPayload, RoundTrip) {
  SummaryPayload payload;
  payload.block.bytes = {9, 8, 7, 6};
  auto decoded = SummaryPayload::decode(payload.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().block.bytes, payload.block.bytes);
}

TEST(SummaryPayload, EmptyBlockAllowed) {
  SummaryPayload payload;
  auto decoded = SummaryPayload::decode(payload.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().block.empty());
}

TEST(ResultPayload, RoundTrip) {
  ResultPayload payload;
  payload.pairs = {{1, 2}, {3, 4}, {5, 6}};
  auto decoded = ResultPayload::decode(payload.encode());
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded.value().pairs.size(), 3u);
  EXPECT_EQ(decoded.value().pairs[1].r_id, 3u);
  EXPECT_EQ(decoded.value().pairs[1].s_id, 4u);
}

TEST(ResultPayload, EmptyIsValid) {
  ResultPayload payload;
  auto decoded = ResultPayload::decode(payload.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().pairs.empty());
}

TEST(ResultPayload, RejectsTruncation) {
  ResultPayload payload;
  payload.pairs = {{1, 2}, {3, 4}};
  auto bytes = payload.encode();
  bytes.resize(bytes.size() - 8);
  EXPECT_FALSE(ResultPayload::decode(bytes).is_ok());
}

}  // namespace
}  // namespace dsjoin::core
