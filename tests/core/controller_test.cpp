// Online epsilon controller (extension; see config.hpp). The controller's
// audit estimate is conservative — it over-counts misses slightly — so the
// convergence guarantee tested here is one-sided: the measured epsilon ends
// at or below (target + slack), and traffic stays well under broadcast.
#include <gtest/gtest.h>

#include "dsjoin/core/system.hpp"

namespace dsjoin::core {
namespace {

SystemConfig controlled_config(double start_throttle, double target) {
  SystemConfig config;
  config.policy = PolicyKind::kDftt;
  config.nodes = 6;
  config.regions = 3;
  config.tuples_per_node = 2500;
  config.seed = 31;
  config.throttle = start_throttle;
  config.online_target_eps = target;
  return config;
}

TEST(OnlineController, ConvergesFromStingyStart) {
  const auto result = run_experiment(controlled_config(0.05, 0.15));
  SystemConfig frozen = controlled_config(0.05, -1.0);
  const auto baseline = run_experiment(frozen);
  // The controller must end no less accurate than the frozen-stingy run and
  // within the (conservative) target band.
  EXPECT_LE(result.epsilon, baseline.epsilon + 0.02);
  EXPECT_LT(result.epsilon, 0.18);
}

TEST(OnlineController, BacksOffFromWastefulStart) {
  const auto controlled = run_experiment(controlled_config(1.0, 0.15));
  SystemConfig frozen = controlled_config(1.0, -1.0);
  const auto broadcast = run_experiment(frozen);
  // The controller must shed a meaningful share of broadcast traffic while
  // keeping epsilon at or below the (conservatively estimated) target.
  EXPECT_LT(controlled.traffic.frames(net::FrameKind::kTuple),
            0.9 * broadcast.traffic.frames(net::FrameKind::kTuple));
  EXPECT_LT(controlled.epsilon, 0.18);
}

TEST(OnlineController, NodesExposeDiagnostics) {
  DspSystem system(controlled_config(0.5, 0.15));
  (void)system.run();
  int with_estimates = 0;
  for (net::NodeId id = 0; id < 6; ++id) {
    const auto& node = system.node(id);
    EXPECT_GE(node.current_throttle(), 0.0);
    EXPECT_LE(node.current_throttle(), 1.0);
    if (node.epsilon_estimate() >= 0.0) ++with_estimates;
  }
  EXPECT_GE(with_estimates, 4);  // nearly all nodes formed an estimate
}

TEST(OnlineController, DisabledMeansFrozenThrottle) {
  SystemConfig config = controlled_config(0.4, -1.0);
  DspSystem system(config);
  (void)system.run();
  for (net::NodeId id = 0; id < 6; ++id) {
    EXPECT_DOUBLE_EQ(system.node(id).current_throttle(), 0.4);
    EXPECT_LT(system.node(id).epsilon_estimate(), 0.0);
  }
}

TEST(OnlineController, AuditTrafficIsBounded) {
  const auto controlled = run_experiment(controlled_config(0.3, 0.15));
  // Audits are 5% broadcasts: tuple traffic must stay far below BASE's
  // arrivals * (N-1).
  EXPECT_LT(controlled.traffic.frames(net::FrameKind::kTuple),
            controlled.total_arrivals * 5 / 2);
}

}  // namespace
}  // namespace dsjoin::core
