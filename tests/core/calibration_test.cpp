#include "dsjoin/core/calibration.hpp"

#include <gtest/gtest.h>

namespace dsjoin::core {
namespace {

SystemConfig calib_config(PolicyKind kind) {
  SystemConfig config;
  config.policy = kind;
  config.nodes = 5;
  config.tuples_per_node = 1200;
  config.seed = 21;
  return config;
}

TEST(Calibration, BaseReturnsSingleRun) {
  const auto result = calibrate_throttle(calib_config(PolicyKind::kBase), 0.15);
  EXPECT_EQ(result.runs, 1);
  EXPECT_DOUBLE_EQ(result.result.epsilon, 0.0);
  EXPECT_FALSE(result.converged);  // BASE cannot sit at 15% error
}

TEST(Calibration, FindsOperatingPointForDftt) {
  const auto result =
      calibrate_throttle(calib_config(PolicyKind::kDftt), 0.15, 0.03, 8);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.result.epsilon, 0.15, 0.03);
  EXPECT_GE(result.throttle, 0.0);
  EXPECT_LE(result.throttle, 1.0);
}

TEST(Calibration, FindsOperatingPointForSketch) {
  const auto result =
      calibrate_throttle(calib_config(PolicyKind::kSketch), 0.15, 0.04, 8);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.result.epsilon, 0.15, 0.04);
}

TEST(Calibration, HighTargetUsesStingySetting) {
  // 40% error should calibrate to a lower throttle than 10% error.
  const auto loose =
      calibrate_throttle(calib_config(PolicyKind::kRoundRobin), 0.40, 0.05, 8);
  const auto tight =
      calibrate_throttle(calib_config(PolicyKind::kRoundRobin), 0.10, 0.05, 8);
  EXPECT_LT(loose.throttle, tight.throttle);
  EXPECT_LT(loose.result.traffic.total_frames(),
            tight.result.traffic.total_frames());
}

TEST(Calibration, UnreachablyLowTargetReportsNotConverged) {
  // Target below what even broadcast achieves... broadcast reaches ~0, so
  // instead test an unreachable *high* target with a policy whose floor
  // error at throttle 0 is below it.
  auto config = calib_config(PolicyKind::kBase);
  const auto result = calibrate_throttle(config, 0.95, 0.001, 4);
  EXPECT_FALSE(result.converged);
}

}  // namespace
}  // namespace dsjoin::core
