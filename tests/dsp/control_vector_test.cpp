#include "dsjoin/dsp/control_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dsjoin::dsp {
namespace {

TEST(ControlVectorCosts, ExactBaselineGrowsWithWindow) {
  EXPECT_LT(exact_cost_per_tuple(1024), exact_cost_per_tuple(4096));
  EXPECT_DOUBLE_EQ(exact_cost_per_tuple(1024), 1024.0 * 10.0);
}

TEST(ControlVectorCosts, IncrementalCostComponents) {
  // K per tuple plus amortized full recompute.
  EXPECT_DOUBLE_EQ(incremental_cost_per_tuple(1024, 8, 1024), 8.0 + 10.0);
  EXPECT_DOUBLE_EQ(incremental_cost_per_tuple(1024, 8, 0), 8.0);
}

TEST(ControlVectorCosts, CostFallsWithInterval) {
  double prev = incremental_cost_per_tuple(4096, 16, 1);
  for (std::uint64_t interval : {4ull, 16ull, 256ull, 4096ull}) {
    const double cost = incremental_cost_per_tuple(4096, 16, interval);
    EXPECT_LT(cost, prev);
    prev = cost;
  }
}

TEST(CompletionProbability, FallsWithInterval) {
  ControlVectorModel model;
  double prev = 1.1;
  for (std::uint64_t interval : {1ull, 1ull << 10, 1ull << 20, 1ull << 30}) {
    const double p = completion_probability(64, interval, model);
    EXPECT_LE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(CompletionProbability, FallsWithRetainedCount) {
  ControlVectorModel model;
  const std::uint64_t interval = 1ull << 16;
  EXPECT_GE(completion_probability(1, interval, model),
            completion_probability(1024, interval, model));
}

TEST(CompletionProbability, ZeroIntervalIsZero) {
  EXPECT_EQ(completion_probability(8, 0, ControlVectorModel{}), 0.0);
}

TEST(DesignControlVector, MeetsPaperOperatingPoint) {
  // The paper (Section 4, citing [28]) sets the control vector to reduce
  // arithmetic by 10x with completion probability > 0.95.
  const auto cv = design_control_vector(1u << 20, 4096, 10.0, 0.95);
  EXPECT_GE(cv.arithmetic_reduction, 10.0);
  EXPECT_GE(cv.completion_probability, 0.95);
  EXPECT_GT(cv.recompute_interval, 0u);
  EXPECT_EQ(cv.retained_coefficients, 4096u);
}

TEST(DesignControlVector, SmallWindowsToo) {
  const auto cv = design_control_vector(2048, 8, 10.0, 0.95);
  EXPECT_GE(cv.arithmetic_reduction, 10.0);
  EXPECT_GE(cv.completion_probability, 0.95);
}

TEST(DesignControlVector, ReductionConsistentWithCostModel) {
  const auto cv = design_control_vector(8192, 32, 10.0, 0.9);
  const double check = exact_cost_per_tuple(8192) /
                       incremental_cost_per_tuple(8192, cv.retained_coefficients,
                                                  cv.recompute_interval);
  EXPECT_NEAR(cv.arithmetic_reduction, check, 1e-9);
}

TEST(DesignControlVector, UnreachableTargetReturnsBestEffort) {
  // Retaining every coefficient of a tiny window cannot reduce arithmetic
  // 1000x; the design must still return a valid (best-effort) point.
  const auto cv = design_control_vector(16, 16, 1000.0, 0.95);
  EXPECT_GT(cv.recompute_interval, 0u);
  EXPECT_LT(cv.arithmetic_reduction, 1000.0);
}

}  // namespace
}  // namespace dsjoin::dsp
