#include "dsjoin/dsp/compression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/stream/generator.hpp"

namespace dsjoin::dsp {
namespace {

TEST(RetainedForKappa, ClampsAndScales) {
  EXPECT_EQ(retained_for_kappa(1024, 2.0), 512u);
  EXPECT_EQ(retained_for_kappa(1024, 256.0), 4u);
  EXPECT_EQ(retained_for_kappa(1024, 4096.0), 1u);     // floor at one
  EXPECT_EQ(retained_for_kappa(1024, 1.0), 513u);      // cap at W/2 + 1
  EXPECT_EQ(retained_for_kappa(1024, 0.5), 513u);
}

TEST(Compress, KeepsLowestFrequencies) {
  constexpr std::size_t kN = 64;
  std::vector<double> signal(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    signal[i] = std::sin(2 * std::numbers::pi * 2 * static_cast<double>(i) / kN);
  }
  Fft fft(kN);
  const auto cs = compress(signal, 8.0, fft);
  EXPECT_EQ(cs.window, kN);
  EXPECT_EQ(cs.coeffs.size(), 8u);
  EXPECT_DOUBLE_EQ(cs.kappa(), 8.0);
  EXPECT_EQ(cs.wire_bytes(), 8u * 16u);
  // Tone at bin 2 survives; DC ~ 0.
  EXPECT_GT(std::abs(cs.coeffs[2]), 10.0);
  EXPECT_NEAR(std::abs(cs.coeffs[0]), 0.0, 1e-9);
}

TEST(Reconstruct, BandLimitedSignalIsExact) {
  constexpr std::size_t kN = 128;
  std::vector<double> signal(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double t = static_cast<double>(i) / kN;
    signal[i] = 10 + 5 * std::cos(2 * std::numbers::pi * 3 * t) +
                2 * std::sin(2 * std::numbers::pi * 5 * t);
  }
  Fft fft(kN);
  // Frequencies up to 5 retained: kappa = 128/8 = 16 keeps k = 0..7.
  const auto cs = compress(signal, 16.0, fft);
  const auto approx = reconstruct(cs);
  EXPECT_LT(mean_squared_error(signal, approx), 1e-18);
  EXPECT_DOUBLE_EQ(lossless_fraction(signal, approx), 1.0);
}

TEST(Reconstruct, ConstantSignalAtAnyKappa) {
  std::vector<double> signal(256, 42.0);
  Fft fft(256);
  for (double kappa : {2.0, 16.0, 128.0}) {
    const auto approx = reconstruct(compress(signal, kappa, fft));
    EXPECT_LT(mean_squared_error(signal, approx), 1e-18) << kappa;
  }
}

TEST(Reconstruct, MseGrowsWithKappa) {
  const auto signal = stream::generate_stock_series(4096, 7);
  Fft fft(signal.size());
  double previous = -1.0;
  for (double kappa : {2.0, 8.0, 32.0, 128.0, 512.0}) {
    const auto approx = reconstruct(compress(signal, kappa, fft));
    const double mse = mean_squared_error(signal, approx);
    EXPECT_GE(mse, previous) << "kappa=" << kappa;
    previous = mse;
  }
}

TEST(Reconstruct, StockSeriesLosslessAtModerateKappa) {
  // The paper's headline claim (Figures 5-6): stock-like data reconstructs
  // within +/-0.5 per value from a small fraction of the coefficients.
  const auto signal = stream::generate_stock_series(65536, 42);
  Fft fft(signal.size());
  const auto cs = compress(signal, 256.0, fft);
  const auto approx = reconstruct(cs);
  const double mse = mean_squared_error(signal, approx);
  EXPECT_LT(mse, 2.0);  // near the paper's 0.25 criterion at kappa=256
  EXPECT_GT(lossless_fraction(signal, approx), 0.5);
  // And at a laxer compression the criterion is met outright.
  const auto approx64 = reconstruct(compress(signal, 64.0, fft));
  EXPECT_LT(mean_squared_error(signal, approx64), 0.25);
}

TEST(ReconstructRounded, RoundsToIntegers) {
  std::vector<double> signal{10, 11, 12, 13, 12, 11, 10, 11};
  Fft fft(signal.size());
  const auto rounded = reconstruct_rounded(compress(signal, 1.0, fft));
  ASSERT_EQ(rounded.size(), signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    EXPECT_EQ(rounded[i], static_cast<std::int64_t>(signal[i]));
  }
}

TEST(SquaredErrors, PerSampleValues) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{1, 4, 0};
  const auto errs = squared_errors(a, b);
  EXPECT_DOUBLE_EQ(errs[0], 0.0);
  EXPECT_DOUBLE_EQ(errs[1], 4.0);
  EXPECT_DOUBLE_EQ(errs[2], 9.0);
  EXPECT_DOUBLE_EQ(mean_squared_error(a, b), 13.0 / 3.0);
}

TEST(LosslessFraction, CountsRoundedMatches) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> b{1.2, 2.6, 3.4, 4.0};  // rounds to 1, 3, 3, 4
  EXPECT_DOUBLE_EQ(lossless_fraction(a, b), 0.75);
}

TEST(RecommendKappa, FindsLargestSafeCompression) {
  // Band-limited signal: every kappa that keeps its band passes, so the
  // recommendation is deep.
  constexpr std::size_t kN = 1024;
  std::vector<double> signal(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    signal[i] =
        100 * std::sin(2 * std::numbers::pi * 2 * static_cast<double>(i) / kN);
  }
  Fft fft(kN);
  const double kappa = recommend_kappa(signal, 0.25, fft);
  EXPECT_GE(kappa, 128.0);

  // White noise: even kappa=2 discards half the energy and fails.
  common::Xoshiro256 rng(1);
  std::vector<double> noise(kN);
  for (auto& v : noise) v = rng.next_double_in(-100, 100);
  EXPECT_EQ(recommend_kappa(noise, 0.25, fft), 1.0);
}

TEST(Quantization, RoundTripErrorWithinHalfStep) {
  // Property: for any finite block, |dequant(quant(v)) - v| <= scale / (2Q)
  // (half a quantization step) for every component that survives clamping —
  // and scale = max |component| means nothing is ever clamped.
  common::Xoshiro256 rng(77);
  for (unsigned bits : {8u, 16u}) {
    const double q = quant_mantissa_max(bits);
    for (int trial = 0; trial < 200; ++trial) {
      const double magnitude = std::pow(10.0, rng.next_double_in(-300, 300));
      std::vector<Complex> block(16);
      for (auto& c : block) {
        c = Complex(rng.next_double_in(-magnitude, magnitude),
                    rng.next_double_in(-magnitude, magnitude));
      }
      const double scale = quant_scale(block);
      ASSERT_TRUE(std::isfinite(scale));
      const double step = scale / q;
      for (const auto& c : block) {
        for (double v : {c.real(), c.imag()}) {
          const std::int32_t m = quantize_component(v, scale, bits);
          EXPECT_LE(std::abs(m), quant_mantissa_max(bits));
          const double back = dequantize_component(m, scale, bits);
          // 1 + 1e-9 covers the rounding of v/scale*q itself at extreme
          // magnitudes; the bound is otherwise exactly half a step.
          EXPECT_LE(std::abs(back - v), 0.5 * step * (1 + 1e-9))
              << "bits=" << bits << " v=" << v << " scale=" << scale;
        }
      }
    }
  }
}

TEST(Quantization, EdgeValues) {
  // All-zero block: scale 0, everything encodes and decodes to exact zero.
  std::vector<Complex> zeros(4, Complex{});
  EXPECT_EQ(quant_scale(zeros), 0.0);
  EXPECT_EQ(quantize_component(0.0, 0.0, 16), 0);
  EXPECT_EQ(dequantize_component(0, 0.0, 16), 0.0);

  // Denormals quantize without overflow or NaN. The inverse map's
  // scale / Q underflows to zero at denorm_min, so the round trip lands on
  // zero — still within the scale-sized error bound, never a NaN or inf.
  const double denormal = std::numeric_limits<double>::denorm_min();
  std::vector<Complex> tiny{Complex(denormal, -denormal)};
  const double tiny_scale = quant_scale(tiny);
  EXPECT_EQ(tiny_scale, denormal);
  const auto m = quantize_component(denormal, tiny_scale, 8);
  EXPECT_EQ(m, quant_mantissa_max(8));
  const double back = dequantize_component(m, tiny_scale, 8);
  EXPECT_TRUE(std::isfinite(back));
  EXPECT_LE(std::abs(back - denormal), tiny_scale);

  // Huge-but-finite values stay finite through the round trip.
  const double huge = std::numeric_limits<double>::max() / 4;
  std::vector<Complex> big{Complex(huge, -huge / 3)};
  const double big_scale = quant_scale(big);
  EXPECT_TRUE(std::isfinite(big_scale));
  EXPECT_TRUE(std::isfinite(dequantize_component(
      quantize_component(-huge / 3, big_scale, 16), big_scale, 16)));

  // NaN and inf poison the scale so choose_quant_bits falls back to f64.
  std::vector<Complex> bad{Complex(1.0, std::nan(""))};
  EXPECT_TRUE(std::isinf(quant_scale(bad)));
  std::vector<Complex> infinite{Complex(std::numeric_limits<double>::infinity(), 0)};
  EXPECT_TRUE(std::isinf(quant_scale(infinite)));
  EXPECT_EQ(choose_quant_bits(quant_scale(bad), 8, 2048, 8), 0u);
}

TEST(Quantization, PredictedMseRespectsPaperBudget) {
  // At Figure 8 geometry (W=2048, K=8) the int8 budget holds scales up to
  // roughly 2.8e4; a modest coefficient block stays at int8.
  EXPECT_EQ(choose_quant_bits(/*scale=*/1e4, 8, 2048, 8), 8u);
  // Typical clipped-key DC coefficients (~key * W) exceed that and ride the
  // escalation to int16.
  EXPECT_EQ(choose_quant_bits(/*scale=*/5e5, 8, 2048, 8), 16u);
  // A scale large enough to breach the int8 budget escalates to int16...
  const double q8 = quant_mantissa_max(8), q16 = quant_mantissa_max(16);
  const double w = 2048.0;
  // solve 2 K s^2 / (3 W^2 Q^2) = budget for s at each width
  const double s8 = std::sqrt(kQuantMseBudget * 3 * w * w * q8 * q8 / (2 * 8));
  const double s16 = std::sqrt(kQuantMseBudget * 3 * w * w * q16 * q16 / (2 * 8));
  EXPECT_EQ(choose_quant_bits(s8 * 1.01, 8, 2048, 8), 16u);
  // ...and past the int16 budget falls back to f64.
  EXPECT_EQ(choose_quant_bits(s16 * 1.01, 8, 2048, 8), 0u);
  EXPECT_EQ(choose_quant_bits(s16 * 1.01, 8, 2048, 16), 0u);
  // preferred_bits == 0 disables quantization outright.
  EXPECT_EQ(choose_quant_bits(1.0, 8, 2048, 0), 0u);
  // The added MSE prediction at the escalation boundary matches the model.
  EXPECT_NEAR(predicted_quant_mse(s8, 8, 2048, 8), kQuantMseBudget, 1e-12);
}

TEST(Quantization, QuantizedReconstructionStaysWithinMseBudget) {
  // End-to-end Section 5.3 property: quantizing the retained coefficients
  // at the width choose_quant_bits picks adds at most kQuantMseBudget of
  // reconstruction MSE in expectation — worst case 3x that (uniform
  // rounding error has variance step^2/12, worst square step^2/4) — so a
  // signal whose f64-truncated reconstruction is well inside the paper's
  // E[MSE] < 0.25 bound stays inside it after quantization.
  constexpr std::size_t kN = 2048;
  std::vector<double> signal(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    signal[i] = 1000 + 400 * std::sin(2 * std::numbers::pi * 2 *
                                      static_cast<double>(i) / kN);
  }
  Fft fft(kN);
  CompressedSpectrum spectrum = compress(signal, 256.0, fft);
  const double f64_mse = mean_squared_error(signal, reconstruct(spectrum));
  ASSERT_LT(f64_mse, 1e-12);  // band-limited: truncation is exact

  const double scale = quant_scale(spectrum.coeffs);
  const unsigned bits =
      choose_quant_bits(scale, spectrum.coeffs.size(), kN, 8);
  ASSERT_NE(bits, 0u);
  const double predicted = predicted_quant_mse(scale, spectrum.coeffs.size(),
                                               kN, bits);
  EXPECT_LE(predicted, kQuantMseBudget);
  for (auto& c : spectrum.coeffs) {
    c = Complex(dequantize_component(quantize_component(c.real(), scale, bits),
                                     scale, bits),
                dequantize_component(quantize_component(c.imag(), scale, bits),
                                     scale, bits));
  }
  const auto approx = reconstruct(spectrum);
  const double quant_mse = mean_squared_error(signal, approx);
  EXPECT_LE(quant_mse, f64_mse + 3 * kQuantMseBudget);  // hard worst case
  EXPECT_LT(quant_mse, 0.25);                           // the paper's bound
  EXPECT_GT(lossless_fraction(signal, approx), 0.95);
}

TEST(Reconstruct, OddWindowSizeWorks) {
  constexpr std::size_t kN = 100;
  std::vector<double> signal(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    signal[i] = 5 + std::sin(2 * std::numbers::pi * 3 * static_cast<double>(i) / kN);
  }
  Fft fft(kN);
  const auto approx = reconstruct(compress(signal, 10.0, fft));
  EXPECT_LT(mean_squared_error(signal, approx), 1e-12);
}

}  // namespace
}  // namespace dsjoin::dsp
