#include "dsjoin/dsp/compression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/stream/generator.hpp"

namespace dsjoin::dsp {
namespace {

TEST(RetainedForKappa, ClampsAndScales) {
  EXPECT_EQ(retained_for_kappa(1024, 2.0), 512u);
  EXPECT_EQ(retained_for_kappa(1024, 256.0), 4u);
  EXPECT_EQ(retained_for_kappa(1024, 4096.0), 1u);     // floor at one
  EXPECT_EQ(retained_for_kappa(1024, 1.0), 513u);      // cap at W/2 + 1
  EXPECT_EQ(retained_for_kappa(1024, 0.5), 513u);
}

TEST(Compress, KeepsLowestFrequencies) {
  constexpr std::size_t kN = 64;
  std::vector<double> signal(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    signal[i] = std::sin(2 * std::numbers::pi * 2 * static_cast<double>(i) / kN);
  }
  Fft fft(kN);
  const auto cs = compress(signal, 8.0, fft);
  EXPECT_EQ(cs.window, kN);
  EXPECT_EQ(cs.coeffs.size(), 8u);
  EXPECT_DOUBLE_EQ(cs.kappa(), 8.0);
  EXPECT_EQ(cs.wire_bytes(), 8u * 16u);
  // Tone at bin 2 survives; DC ~ 0.
  EXPECT_GT(std::abs(cs.coeffs[2]), 10.0);
  EXPECT_NEAR(std::abs(cs.coeffs[0]), 0.0, 1e-9);
}

TEST(Reconstruct, BandLimitedSignalIsExact) {
  constexpr std::size_t kN = 128;
  std::vector<double> signal(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double t = static_cast<double>(i) / kN;
    signal[i] = 10 + 5 * std::cos(2 * std::numbers::pi * 3 * t) +
                2 * std::sin(2 * std::numbers::pi * 5 * t);
  }
  Fft fft(kN);
  // Frequencies up to 5 retained: kappa = 128/8 = 16 keeps k = 0..7.
  const auto cs = compress(signal, 16.0, fft);
  const auto approx = reconstruct(cs);
  EXPECT_LT(mean_squared_error(signal, approx), 1e-18);
  EXPECT_DOUBLE_EQ(lossless_fraction(signal, approx), 1.0);
}

TEST(Reconstruct, ConstantSignalAtAnyKappa) {
  std::vector<double> signal(256, 42.0);
  Fft fft(256);
  for (double kappa : {2.0, 16.0, 128.0}) {
    const auto approx = reconstruct(compress(signal, kappa, fft));
    EXPECT_LT(mean_squared_error(signal, approx), 1e-18) << kappa;
  }
}

TEST(Reconstruct, MseGrowsWithKappa) {
  const auto signal = stream::generate_stock_series(4096, 7);
  Fft fft(signal.size());
  double previous = -1.0;
  for (double kappa : {2.0, 8.0, 32.0, 128.0, 512.0}) {
    const auto approx = reconstruct(compress(signal, kappa, fft));
    const double mse = mean_squared_error(signal, approx);
    EXPECT_GE(mse, previous) << "kappa=" << kappa;
    previous = mse;
  }
}

TEST(Reconstruct, StockSeriesLosslessAtModerateKappa) {
  // The paper's headline claim (Figures 5-6): stock-like data reconstructs
  // within +/-0.5 per value from a small fraction of the coefficients.
  const auto signal = stream::generate_stock_series(65536, 42);
  Fft fft(signal.size());
  const auto cs = compress(signal, 256.0, fft);
  const auto approx = reconstruct(cs);
  const double mse = mean_squared_error(signal, approx);
  EXPECT_LT(mse, 2.0);  // near the paper's 0.25 criterion at kappa=256
  EXPECT_GT(lossless_fraction(signal, approx), 0.5);
  // And at a laxer compression the criterion is met outright.
  const auto approx64 = reconstruct(compress(signal, 64.0, fft));
  EXPECT_LT(mean_squared_error(signal, approx64), 0.25);
}

TEST(ReconstructRounded, RoundsToIntegers) {
  std::vector<double> signal{10, 11, 12, 13, 12, 11, 10, 11};
  Fft fft(signal.size());
  const auto rounded = reconstruct_rounded(compress(signal, 1.0, fft));
  ASSERT_EQ(rounded.size(), signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    EXPECT_EQ(rounded[i], static_cast<std::int64_t>(signal[i]));
  }
}

TEST(SquaredErrors, PerSampleValues) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{1, 4, 0};
  const auto errs = squared_errors(a, b);
  EXPECT_DOUBLE_EQ(errs[0], 0.0);
  EXPECT_DOUBLE_EQ(errs[1], 4.0);
  EXPECT_DOUBLE_EQ(errs[2], 9.0);
  EXPECT_DOUBLE_EQ(mean_squared_error(a, b), 13.0 / 3.0);
}

TEST(LosslessFraction, CountsRoundedMatches) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> b{1.2, 2.6, 3.4, 4.0};  // rounds to 1, 3, 3, 4
  EXPECT_DOUBLE_EQ(lossless_fraction(a, b), 0.75);
}

TEST(RecommendKappa, FindsLargestSafeCompression) {
  // Band-limited signal: every kappa that keeps its band passes, so the
  // recommendation is deep.
  constexpr std::size_t kN = 1024;
  std::vector<double> signal(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    signal[i] =
        100 * std::sin(2 * std::numbers::pi * 2 * static_cast<double>(i) / kN);
  }
  Fft fft(kN);
  const double kappa = recommend_kappa(signal, 0.25, fft);
  EXPECT_GE(kappa, 128.0);

  // White noise: even kappa=2 discards half the energy and fails.
  common::Xoshiro256 rng(1);
  std::vector<double> noise(kN);
  for (auto& v : noise) v = rng.next_double_in(-100, 100);
  EXPECT_EQ(recommend_kappa(noise, 0.25, fft), 1.0);
}

TEST(Reconstruct, OddWindowSizeWorks) {
  constexpr std::size_t kN = 100;
  std::vector<double> signal(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    signal[i] = 5 + std::sin(2 * std::numbers::pi * 3 * static_cast<double>(i) / kN);
  }
  Fft fft(kN);
  const auto approx = reconstruct(compress(signal, 10.0, fft));
  EXPECT_LT(mean_squared_error(signal, approx), 1e-12);
}

}  // namespace
}  // namespace dsjoin::dsp
