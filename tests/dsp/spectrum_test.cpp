#include "dsjoin/dsp/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/dsp/compression.hpp"

namespace dsjoin::dsp {
namespace {

std::vector<double> smooth_signal(std::size_t n, double phase,
                                  std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    out[i] = 100.0 * std::sin(2 * std::numbers::pi * (3 * t) + phase) +
             40.0 * std::sin(2 * std::numbers::pi * (7 * t) + 2 * phase) +
             rng.next_double_in(-1, 1);
  }
  return out;
}

CompressedSpectrum spectrum_of(std::span<const double> signal, double kappa) {
  Fft fft(signal.size());
  return compress(signal, kappa, fft);
}

TEST(CrossPowerSpectrum, PointwiseProduct) {
  std::vector<Complex> x{{1, 2}, {3, -1}};
  std::vector<Complex> y{{2, 0}, {0, 1}};
  const auto s = cross_power_spectrum(x, y);
  EXPECT_EQ(s[0], x[0] * std::conj(y[0]));
  EXPECT_EQ(s[1], x[1] * std::conj(y[1]));
}

TEST(SpectralEnergy, ExcludesDc) {
  std::vector<Complex> x{{100, 0}, {3, 4}, {0, 2}};
  EXPECT_DOUBLE_EQ(spectral_energy(x), 25.0 + 4.0);
}

TEST(SpectralMean, ReadsDc) {
  std::vector<Complex> x{{640, 0}, {1, 1}};
  EXPECT_DOUBLE_EQ(spectral_mean(x, 64), 10.0);
  EXPECT_DOUBLE_EQ(spectral_mean({}, 64), 0.0);
}

TEST(SpectralStddev, MatchesParsevalForFullSpectrum) {
  constexpr std::size_t kN = 256;
  common::Xoshiro256 rng(1);
  std::vector<double> signal(kN);
  double mean = 0.0;
  for (auto& v : signal) {
    v = rng.next_double_in(-10, 10);
    mean += v;
  }
  mean /= kN;
  double var = 0.0;
  for (double v : signal) var += (v - mean) * (v - mean);
  var /= kN;
  Fft fft(kN);
  const auto spec = fft.forward_real(signal);
  EXPECT_NEAR(spectral_stddev(spec, kN), std::sqrt(var), 1e-9);
}

TEST(LagMaxCorrelation, IdenticalSignalsScoreOne) {
  const auto signal = smooth_signal(512, 0.3, 1);
  const auto spec = spectrum_of(signal, 16.0);
  const auto est = lag_max_correlation(spec.coeffs, spec.coeffs, 512);
  EXPECT_NEAR(est.rho, 1.0, 0.05);
  EXPECT_EQ(est.lag, 0u);
}

TEST(LagMaxCorrelation, ShiftedCopyScoresHighAtTheShift) {
  constexpr std::size_t kN = 512;
  const auto base = smooth_signal(kN, 0.0, 2);
  std::vector<double> shifted(kN);
  constexpr std::size_t kShift = 37;
  for (std::size_t i = 0; i < kN; ++i) shifted[i] = base[(i + kShift) % kN];
  const auto sa = spectrum_of(base, 16.0);
  const auto sb = spectrum_of(shifted, 16.0);
  const auto est = lag_max_correlation(sa.coeffs, sb.coeffs, kN);
  EXPECT_GT(est.rho, 0.95);
  EXPECT_EQ(est.lag, kShift);
}

TEST(LagMaxCorrelation, IndependentNoiseScoresLow) {
  constexpr std::size_t kN = 1024;
  common::Xoshiro256 rng(3);
  std::vector<double> a(kN), b(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    a[i] = rng.next_double_in(-100, 100);
    b[i] = rng.next_double_in(-100, 100);
  }
  const auto sa = spectrum_of(a, 2.0);
  const auto sb = spectrum_of(b, 2.0);
  const auto est = lag_max_correlation(sa.coeffs, sb.coeffs, kN);
  // Max over lags of noise correlation concentrates around
  // sqrt(2 ln N / N) ~ 0.12 for N=1024; anything far below 1 passes.
  EXPECT_LT(est.rho, 0.35);
}

TEST(LagMaxCorrelation, EmptyEnergyReturnsZero) {
  std::vector<Complex> flat(8, Complex{});
  const auto est = lag_max_correlation(flat, flat, 64);
  EXPECT_EQ(est.rho, 0.0);
}

TEST(LagMaxCorrelation, MeanOffsetDoesNotInflate) {
  // Two constant windows at different levels: DC is excluded, so rho must
  // be ~0, not 1.
  std::vector<double> a(256, 100.0), b(256, 900.0);
  const auto sa = spectrum_of(a, 8.0);
  const auto sb = spectrum_of(b, 8.0);
  EXPECT_LT(lag_max_correlation(sa.coeffs, sb.coeffs, 256).rho, 1e-6);
}

TEST(SpectralMagnitudeCosine, IdenticalIsOne) {
  const auto s = spectrum_of(smooth_signal(256, 0.1, 4), 8.0);
  EXPECT_NEAR(spectral_magnitude_cosine(s.coeffs, s.coeffs), 1.0, 1e-12);
}

TEST(SpectralMagnitudeCosine, ShiftInvariant) {
  constexpr std::size_t kN = 256;
  const auto base = smooth_signal(kN, 0.0, 5);
  std::vector<double> shifted(kN);
  for (std::size_t i = 0; i < kN; ++i) shifted[i] = base[(i + 61) % kN];
  const auto sa = spectrum_of(base, 8.0);
  const auto sb = spectrum_of(shifted, 8.0);
  EXPECT_NEAR(spectral_magnitude_cosine(sa.coeffs, sb.coeffs), 1.0, 1e-6);
}

TEST(SpectralMagnitudeCosine, ZeroEnergyIsZero) {
  std::vector<Complex> flat(4, Complex{});
  EXPECT_EQ(spectral_magnitude_cosine(flat, flat), 0.0);
}

TEST(SpectralMagnitudeCosine, DisjointBandsScoreLow) {
  constexpr std::size_t kN = 256;
  std::vector<double> low(kN), high(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double t = static_cast<double>(i) / kN;
    low[i] = std::sin(2 * std::numbers::pi * 2 * t);
    high[i] = std::sin(2 * std::numbers::pi * 29 * t);
  }
  const auto sa = spectrum_of(low, 4.0);   // keeps 64 coefficients
  const auto sb = spectrum_of(high, 4.0);
  EXPECT_LT(spectral_magnitude_cosine(sa.coeffs, sb.coeffs), 0.05);
}

}  // namespace
}  // namespace dsjoin::dsp
