#include "dsjoin/dsp/sliding_dft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/dsp/fft.hpp"

namespace dsjoin::dsp {
namespace {

// Exact retained coefficients of the current ring contents.
std::vector<Complex> exact_coeffs(const SlidingDft& dft) {
  std::vector<Complex> data(dft.window_values().begin(),
                            dft.window_values().end());
  Fft fft(data.size());
  fft.forward(data);
  data.resize(dft.retained());
  return data;
}

double max_coeff_error(const SlidingDft& dft) {
  const auto expected = exact_coeffs(dft);
  const auto actual = dft.coefficients();
  double worst = 0.0;
  for (std::size_t k = 0; k < expected.size(); ++k) {
    worst = std::max(worst, std::abs(expected[k] - actual[k]));
  }
  return worst;
}

TEST(SlidingDft, RejectsBadGeometry) {
  EXPECT_THROW(SlidingDft(1, 1), std::invalid_argument);
  EXPECT_THROW(SlidingDft(8, 0), std::invalid_argument);
  EXPECT_THROW(SlidingDft(8, 9), std::invalid_argument);
}

TEST(SlidingDft, BackfillMakesWindowConstant) {
  SlidingDft dft(16, 4);
  dft.push(7.0);
  for (double v : dft.window_values()) EXPECT_EQ(v, 7.0);
  EXPECT_DOUBLE_EQ(dft.mean(), 7.0);
  EXPECT_DOUBLE_EQ(dft.variance(), 0.0);
  // DC coefficient of a constant-7 window of size 16 is 112.
  EXPECT_NEAR(dft.coefficients()[0].real(), 112.0, 1e-9);
  EXPECT_NEAR(std::abs(dft.coefficients()[1]), 0.0, 1e-9);
}

TEST(SlidingDft, TracksExactDftThroughFill) {
  SlidingDft dft(32, 8);
  common::Xoshiro256 rng(1);
  for (int i = 0; i < 32; ++i) {
    dft.push(rng.next_double_in(-100, 100));
    EXPECT_LT(max_coeff_error(dft), 1e-8) << "after push " << i;
  }
  EXPECT_TRUE(dft.full());
}

TEST(SlidingDft, TracksExactDftThroughManySlides) {
  SlidingDft dft(64, 16);
  common::Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    dft.push(rng.next_double_in(-1000, 1000));
  }
  EXPECT_LT(max_coeff_error(dft), 1e-6);
}

TEST(SlidingDft, FullRetentionMatchesCompleteSpectrum) {
  SlidingDft dft(16, 16);
  common::Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) dft.push(rng.next_double_in(-10, 10));
  EXPECT_LT(max_coeff_error(dft), 1e-9);
}

TEST(SlidingDft, MeanAndVarianceTrackWindow) {
  SlidingDft dft(8, 2);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}) dft.push(v);
  EXPECT_DOUBLE_EQ(dft.mean(), 4.5);
  EXPECT_NEAR(dft.variance(), 5.25, 1e-9);
  // Slide: window becomes 2..9.
  dft.push(9.0);
  EXPECT_DOUBLE_EQ(dft.mean(), 5.5);
  EXPECT_NEAR(dft.variance(), 5.25, 1e-9);
}

TEST(SlidingDft, RenormalizeRemovesDrift) {
  SlidingDft dft(32, 8);
  common::Xoshiro256 rng(4);
  for (int i = 0; i < 100000; ++i) dft.push(rng.next_double_in(-1e6, 1e6));
  // Drift may have accumulated; renormalization must restore exactness.
  dft.renormalize();
  EXPECT_LT(max_coeff_error(dft), 1e-9);
  // And subsequent incremental updates stay correct.
  for (int i = 0; i < 64; ++i) dft.push(rng.next_double_in(-1e6, 1e6));
  EXPECT_LT(max_coeff_error(dft), 1e-6);
}

TEST(SlidingDft, AutoRenormalizeKeepsErrorBounded) {
  SlidingDft with(64, 8);
  with.set_renormalize_interval(256);
  common::Xoshiro256 rng(5);
  for (int i = 0; i < 50000; ++i) with.push(rng.next_double_in(-1e3, 1e3));
  EXPECT_LT(max_coeff_error(with), 1e-7);
}

TEST(SlidingDft, DrainDirtyReportsChanges) {
  SlidingDft dft(16, 4);
  for (int i = 0; i < 20; ++i) dft.push(static_cast<double>(i * 3 % 7));
  auto first = dft.drain_dirty(0.0);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(dft.pushes_since_drain(), 0u);
  // Without new pushes, nothing further is dirty.
  auto second = dft.drain_dirty(0.0);
  EXPECT_TRUE(second.empty());
  // Pushing identical values into a constant window changes nothing either.
  SlidingDft constant(8, 4);
  for (int i = 0; i < 16; ++i) constant.push(5.0);
  (void)constant.drain_dirty(0.0);
  constant.push(5.0);
  EXPECT_TRUE(constant.drain_dirty(1e-9).empty());
}

TEST(SlidingDft, DrainDirtyThresholdSuppressesSmallChanges) {
  SlidingDft dft(16, 4);
  for (int i = 0; i < 16; ++i) dft.push(100.0);
  (void)dft.drain_dirty(0.0);
  dft.push(100.001);  // tiny perturbation
  EXPECT_TRUE(dft.drain_dirty(1.0).empty());
  dft.push(500.0);  // large change must be reported
  EXPECT_FALSE(dft.drain_dirty(1.0).empty());
}

TEST(SlidingDft, KappaReflectsGeometry) {
  SlidingDft dft(1024, 4);
  EXPECT_DOUBLE_EQ(dft.kappa(), 256.0);
  EXPECT_EQ(dft.window(), 1024u);
  EXPECT_EQ(dft.retained(), 4u);
}

TEST(SlidingDft, CountsPushes) {
  SlidingDft dft(4, 2);
  EXPECT_FALSE(dft.full());
  for (int i = 0; i < 10; ++i) dft.push(i);
  EXPECT_EQ(dft.count(), 10u);
  EXPECT_TRUE(dft.full());
}

// Property sweep: incremental equals exact across geometries.
class SlidingDftGeometryTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SlidingDftGeometryTest, IncrementalMatchesExact) {
  const auto [window, retained] = GetParam();
  SlidingDft dft(window, retained);
  common::Xoshiro256 rng(window * 31 + retained);
  for (std::size_t i = 0; i < window * 3 + 17; ++i) {
    dft.push(rng.next_double_in(-50, 50));
  }
  EXPECT_LT(max_coeff_error(dft), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SlidingDftGeometryTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 1},
                      std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{64, 1},
                      std::pair<std::size_t, std::size_t>{128, 32},
                      std::pair<std::size_t, std::size_t>{2048, 8},
                      std::pair<std::size_t, std::size_t>{100, 10}));

}  // namespace
}  // namespace dsjoin::dsp
