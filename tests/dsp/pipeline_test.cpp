// Integration of the DSP pieces exactly as the DFTT pipeline composes them:
// sliding DFT -> (wire) -> CompressedSpectrum -> reconstruction/membership,
// and sliding DFT -> lag-max correlation. Verifies the end-to-end numeric
// path the routing policies depend on, independent of the network.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/dsp/compression.hpp"
#include "dsjoin/dsp/sliding_dft.hpp"
#include "dsjoin/dsp/spectrum.hpp"

namespace dsjoin::dsp {
namespace {

std::vector<double> band_limited(std::size_t n, double phase, double level) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    out[i] = level + 300 * std::sin(2 * std::numbers::pi * 2 * t + phase) +
             120 * std::sin(2 * std::numbers::pi * 5 * t + 2 * phase);
  }
  return out;
}

TEST(DspPipeline, SlidingCoefficientsReconstructTheWindow) {
  constexpr std::size_t kW = 512;
  constexpr std::size_t kRetained = 8;  // covers frequencies 0..7
  SlidingDft dft(kW, kRetained);
  const auto signal = band_limited(kW, 0.4, 5000.0);
  // Push two windows' worth so the ring has fully turned over.
  for (int pass = 0; pass < 2; ++pass) {
    for (double v : signal) dft.push(v);
  }
  CompressedSpectrum spectrum;
  spectrum.window = kW;
  spectrum.coeffs.assign(dft.coefficients().begin(), dft.coefficients().end());
  const auto approx = reconstruct(spectrum);
  // Ring order is a circular shift of arrival order: compare multisets via
  // sorted values.
  std::vector<double> a = signal, b = approx;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double worst = 0.0;
  for (std::size_t i = 0; i < kW; ++i) worst = std::max(worst, std::abs(a[i] - b[i]));
  EXPECT_LT(worst, 0.5);  // lossless after rounding
}

TEST(DspPipeline, MembershipSurvivesTheRingShift) {
  constexpr std::size_t kW = 256;
  SlidingDft dft(kW, kW / 2 + 1);
  common::Xoshiro256 rng(1);
  std::vector<double> window;
  for (std::size_t i = 0; i < kW * 3; ++i) {
    const double v = 1000.0 + static_cast<double>(rng.next_below(8)) * 16.0;
    dft.push(v);
    window.push_back(v);
  }
  window.erase(window.begin(), window.end() - kW);  // live window, arrival order
  CompressedSpectrum spectrum;
  spectrum.window = kW;
  spectrum.coeffs.assign(dft.coefficients().begin(), dft.coefficients().end());
  const auto rounded = reconstruct_rounded(spectrum);
  // Every value of the live window appears in the reconstruction with the
  // right multiplicity (full spectrum retained => exact multiset).
  std::map<std::int64_t, int> expected, got;
  for (double v : window) ++expected[static_cast<std::int64_t>(std::llround(v))];
  for (std::int64_t v : rounded) ++got[v];
  EXPECT_EQ(expected, got);
}

TEST(DspPipeline, CorrelationFromSlidingCoefficients) {
  constexpr std::size_t kW = 512;
  constexpr std::size_t kRetained = 12;
  SlidingDft a(kW, kRetained), b(kW, kRetained), c(kW, kRetained);
  const auto base = band_limited(kW * 2, 0.0, 2000.0);
  common::Xoshiro256 rng(2);
  for (std::size_t i = 0; i < kW * 2; ++i) {
    a.push(base[i] + rng.next_double_in(-5, 5));
    // b sees the same signal 37 samples later: correlated, shifted.
    b.push(base[(i + 37) % (kW * 2)] + rng.next_double_in(-5, 5));
    // c is unrelated noise around a different level.
    c.push(90000.0 + rng.next_double_in(-400, 400));
  }
  const auto rho_ab =
      lag_max_correlation(a.coefficients(), b.coefficients(), kW).rho;
  EXPECT_GT(rho_ab, 0.9);  // lagged copies correlate strongly

  // Documented saturation (DESIGN.md adaptation 2): the lag search also
  // scores *unrelated* smooth low-passed windows highly, so rho alone does
  // not discriminate here...
  const auto rho_ac =
      lag_max_correlation(a.coefficients(), c.coefficients(), kW).rho;
  EXPECT_GT(rho_ac, 0.3);
  // ...and the discriminating signal the policies multiply in is the DC
  // distance: a and b sit in the same value band, c far away.
  const double mu_a = spectral_mean(a.coefficients(), kW);
  const double mu_b = spectral_mean(b.coefficients(), kW);
  const double mu_c = spectral_mean(c.coefficients(), kW);
  EXPECT_LT(std::abs(mu_a - mu_b), 50.0);
  EXPECT_GT(std::abs(mu_a - mu_c), 50000.0);
}

TEST(DspPipeline, RenormalizationIsInvisibleDownstream) {
  constexpr std::size_t kW = 256;
  SlidingDft with(kW, 16), without(kW, 16);
  with.set_renormalize_interval(64);
  common::Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.next_double_in(0, 1000);
    with.push(v);
    without.push(v);
  }
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_LT(std::abs(with.coefficients()[k] - without.coefficients()[k]), 1e-4);
  }
}

}  // namespace
}  // namespace dsjoin::dsp
