#include "dsjoin/dsp/histogram_spectrum.hpp"

#include <gtest/gtest.h>

#include <map>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/common/zipf.hpp"
#include "dsjoin/sketch/agms.hpp"

namespace dsjoin::dsp {
namespace {

double exact_bucketized_join(const std::map<std::uint32_t, std::int64_t>& f,
                             const std::map<std::uint32_t, std::int64_t>& g) {
  double total = 0.0;
  for (const auto& [bucket, count] : f) {
    const auto it = g.find(bucket);
    if (it != g.end()) total += static_cast<double>(count * it->second);
  }
  return total;
}

TEST(HistogramSpectrum, RejectsBadGeometry) {
  EXPECT_THROW(HistogramSpectrum(0, 16, 4), std::invalid_argument);
  EXPECT_THROW(HistogramSpectrum(100, 0, 1), std::invalid_argument);
  EXPECT_THROW(HistogramSpectrum(100, 16, 0), std::invalid_argument);
  EXPECT_THROW(HistogramSpectrum(100, 16, 10), std::invalid_argument);  // > D/2+1
}

TEST(HistogramSpectrum, DcTracksTotalWeight) {
  HistogramSpectrum h(1000, 64, 4);
  for (int i = 0; i < 17; ++i) h.add(i * 53 % 1000 + 1);
  EXPECT_NEAR(h.total_weight(), 17.0, 1e-9);
  h.add(5, -3);
  EXPECT_NEAR(h.total_weight(), 14.0, 1e-9);
}

TEST(HistogramSpectrum, FullSpectrumJoinIsExact) {
  // Untruncated (K = D/2 + 1): the Parseval inner product equals the exact
  // bucketized join size.
  constexpr std::uint32_t kD = 64;
  HistogramSpectrum f(1000, kD, kD / 2 + 1);
  HistogramSpectrum g(1000, kD, kD / 2 + 1);
  std::map<std::uint32_t, std::int64_t> fm, gm;
  common::Xoshiro256 rng(1);
  auto bucket = [&](std::int64_t key) {
    return static_cast<std::uint32_t>((key - 1) * kD / 1000);
  };
  for (int i = 0; i < 500; ++i) {
    const auto a = rng.next_in(1, 1000);
    const auto b = rng.next_in(1, 1000);
    f.add(a);
    g.add(b);
    ++fm[bucket(a)];
    ++gm[bucket(b)];
  }
  EXPECT_NEAR(HistogramSpectrum::estimate_join(f, g),
              exact_bucketized_join(fm, gm), 1e-6);
}

TEST(HistogramSpectrum, SelfJoinOfPointMassIsExact) {
  constexpr std::uint32_t kD = 32;
  HistogramSpectrum h(1 << 19, kD, kD / 2 + 1);
  for (int i = 0; i < 9; ++i) h.add(4242);
  EXPECT_NEAR(h.estimate_self_join(), 81.0, 1e-6);
}

TEST(HistogramSpectrum, DeletionIsExactInverse) {
  HistogramSpectrum a(1000, 64, 8), b(1000, 64, 8);
  common::Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto key = rng.next_in(1, 1000);
    a.add(key);
    b.add(key);
  }
  a.add(777, +5);
  a.add(777, -5);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(std::abs(a.coefficients()[k] - b.coefficients()[k]), 0.0, 1e-9);
  }
}

TEST(HistogramSpectrum, TruncatedEstimateTracksSkewedJoins) {
  // Skewed streams concentrated in one region of the domain: even a heavily
  // truncated spectrum must rank a matching pair far above a disjoint one.
  constexpr std::uint32_t kD = 256;
  HistogramSpectrum hot_a(1 << 19, kD, 8);
  HistogramSpectrum hot_b(1 << 19, kD, 8);
  HistogramSpectrum cold(1 << 19, kD, 8);
  common::Xoshiro256 rng(3);
  common::ZipfDistribution zipf(2000, 0.8);
  for (int i = 0; i < 2000; ++i) {
    hot_a.add(100000 + static_cast<std::int64_t>(zipf(rng)));
    hot_b.add(100000 + static_cast<std::int64_t>(zipf(rng)));
    cold.add(400000 + static_cast<std::int64_t>(zipf(rng)));
  }
  const double matched = HistogramSpectrum::estimate_join(hot_a, hot_b);
  const double disjoint = HistogramSpectrum::estimate_join(hot_a, cold);
  EXPECT_GT(matched, 5.0 * std::abs(disjoint));
}

TEST(HistogramSpectrum, AccuracyImprovesWithRetained) {
  constexpr std::uint32_t kD = 512;
  common::Xoshiro256 rng(4);
  common::ZipfDistribution zipf(5000, 1.0);
  std::vector<std::int64_t> fs, gs;
  std::map<std::uint32_t, std::int64_t> fm, gm;
  auto bucket = [&](std::int64_t key) {
    return static_cast<std::uint32_t>((key - 1) * kD / (1 << 19));
  };
  for (int i = 0; i < 3000; ++i) {
    const auto a = 50000 + static_cast<std::int64_t>(zipf(rng));
    const auto b = 50000 + static_cast<std::int64_t>(zipf(rng));
    fs.push_back(a);
    gs.push_back(b);
    ++fm[bucket(a)];
    ++gm[bucket(b)];
  }
  const double exact = exact_bucketized_join(fm, gm);
  auto error_at = [&](std::size_t retained) {
    HistogramSpectrum f(1 << 19, kD, retained), g(1 << 19, kD, retained);
    for (auto v : fs) f.add(v);
    for (auto v : gs) g.add(v);
    return std::abs(HistogramSpectrum::estimate_join(f, g) - exact) / exact;
  };
  EXPECT_LT(error_at(128), error_at(4) + 1e-9);
  EXPECT_LT(error_at(kD / 2 + 1), 1e-6);
}

TEST(HistogramSpectrum, ComparableToAgmsAtEqualSpace) {
  // Deterministic spectra vs randomized sketches at the same wire size, on
  // region-concentrated (realistically skewed) streams. The spectrum's
  // smoothing bias is benign there; AGMS carries sampling variance. We only
  // assert the spectrum is in the same accuracy league (within 3x).
  constexpr std::uint32_t kD = 4096;
  constexpr std::size_t kRetained = 32;  // 512 bytes
  const std::size_t counters = kRetained * 16 / 4;  // 512 bytes of i32
  common::Xoshiro256 rng(5);
  common::ZipfDistribution zipf(2000, 0.9);
  std::map<std::uint32_t, std::int64_t> fm, gm;
  HistogramSpectrum hf(1 << 19, kD, kRetained), hg(1 << 19, kD, kRetained);
  double agms_err = 0.0;
  std::vector<std::int64_t> fs, gs;
  for (int i = 0; i < 4000; ++i) {
    const auto a = 200000 + static_cast<std::int64_t>(zipf(rng)) * 13;
    const auto b = 200000 + static_cast<std::int64_t>(zipf(rng)) * 13;
    fs.push_back(a);
    gs.push_back(b);
    hf.add(a);
    hg.add(b);
    ++fm[static_cast<std::uint32_t>((a - 1) * kD / (1 << 19))];
    ++gm[static_cast<std::uint32_t>((b - 1) * kD / (1 << 19))];
  }
  const double exact = exact_bucketized_join(fm, gm);
  const double spec_err =
      std::abs(HistogramSpectrum::estimate_join(hf, hg) - exact) / exact;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sketch::AgmsSketch af(sketch::AgmsShape::for_budget(counters), seed);
    sketch::AgmsSketch ag(sketch::AgmsShape::for_budget(counters), seed);
    for (auto v : fs) af.update(static_cast<std::uint64_t>(v));
    for (auto v : gs) ag.update(static_cast<std::uint64_t>(v));
    agms_err += std::abs(sketch::AgmsSketch::estimate_join(af, ag) - exact) / exact;
  }
  agms_err /= 8;
  EXPECT_LT(spec_err, 3.0 * agms_err + 0.05);
}

}  // namespace
}  // namespace dsjoin::dsp
