#include "dsjoin/dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsjoin/common/rng.hpp"

namespace dsjoin::dsp {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<Complex> out(n);
  for (auto& v : out) {
    v = Complex(rng.next_double_in(-10, 10), rng.next_double_in(-10, 10));
  }
  return out;
}

double max_abs_diff(std::span<const Complex> a, std::span<const Complex> b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(NextPowerOfTwo, Values) {
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(2), 2u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(1000), 1024u);
  EXPECT_EQ(next_power_of_two(1024), 1024u);
}

TEST(IsPowerOfTwo, Values) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(4096));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(4097));
}

TEST(Fft, SizeZeroThrows) { EXPECT_THROW(Fft(0), std::invalid_argument); }

TEST(Fft, SizeOneIsIdentity) {
  Fft fft(1);
  std::vector<Complex> data{Complex(3, 4)};
  fft.forward(data);
  EXPECT_EQ(data[0], Complex(3, 4));
  fft.inverse(data);
  EXPECT_EQ(data[0], Complex(3, 4));
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  Fft fft(8);
  std::vector<Complex> data(8, Complex{});
  data[0] = Complex(1, 0);
  fft.forward(data);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantSignalIsDcOnly) {
  Fft fft(16);
  std::vector<Complex> data(16, Complex(2.0, 0.0));
  fft.forward(data);
  EXPECT_NEAR(data[0].real(), 32.0, 1e-10);
  for (std::size_t k = 1; k < 16; ++k) {
    EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-10) << "k=" << k;
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  constexpr std::size_t kN = 64;
  Fft fft(kN);
  std::vector<Complex> data(kN);
  for (std::size_t n = 0; n < kN; ++n) {
    const double angle = 2.0 * std::numbers::pi * 5.0 * static_cast<double>(n) / kN;
    data[n] = Complex(std::cos(angle), 0.0);
  }
  fft.forward(data);
  // cos splits into bins 5 and N-5, each of magnitude N/2.
  EXPECT_NEAR(std::abs(data[5]), kN / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[kN - 5]), kN / 2.0, 1e-9);
  for (std::size_t k = 0; k < kN; ++k) {
    if (k != 5 && k != kN - 5) {
      EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9) << "k=" << k;
    }
  }
}

// Forward transform must agree with the direct O(n^2) definition for both
// power-of-two (radix-2 path) and arbitrary (Bluestein path) sizes.
class FftAgreementTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftAgreementTest, MatchesDirectDft) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 1000 + n);
  const auto expected = direct_dft(signal);
  Fft fft(n);
  auto actual = signal;
  fft.forward(actual);
  EXPECT_LT(max_abs_diff(actual, expected), 1e-6 * static_cast<double>(n))
      << "n=" << n;
}

TEST_P(FftAgreementTest, RoundTripRecoversSignal) {
  const std::size_t n = GetParam();
  const auto signal = random_signal(n, 2000 + n);
  Fft fft(n);
  auto data = signal;
  fft.forward(data);
  fft.inverse(data);
  EXPECT_LT(max_abs_diff(data, signal), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftAgreementTest,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16, 31, 32, 100,
                                           128, 255, 256, 1000, 1024));

TEST(Fft, LinearityHolds) {
  constexpr std::size_t kN = 128;
  auto a = random_signal(kN, 1);
  auto b = random_signal(kN, 2);
  std::vector<Complex> combo(kN);
  const Complex alpha(2.0, -1.0), beta(0.5, 3.0);
  for (std::size_t i = 0; i < kN; ++i) combo[i] = alpha * a[i] + beta * b[i];
  Fft fft(kN);
  fft.forward(a);
  fft.forward(b);
  fft.forward(combo);
  for (std::size_t k = 0; k < kN; ++k) {
    EXPECT_LT(std::abs(combo[k] - (alpha * a[k] + beta * b[k])), 1e-8);
  }
}

TEST(Fft, ParsevalHolds) {
  constexpr std::size_t kN = 256;
  auto signal = random_signal(kN, 3);
  double time_energy = 0.0;
  for (const auto& v : signal) time_energy += std::norm(v);
  Fft fft(kN);
  fft.forward(signal);
  double freq_energy = 0.0;
  for (const auto& v : signal) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / kN, time_energy, 1e-6 * time_energy);
}

TEST(Fft, RealSignalHasConjugateSymmetry) {
  constexpr std::size_t kN = 64;
  common::Xoshiro256 rng(4);
  std::vector<double> signal(kN);
  for (auto& v : signal) v = rng.next_double_in(-5, 5);
  Fft fft(kN);
  const auto spectrum = fft.forward_real(signal);
  for (std::size_t k = 1; k < kN; ++k) {
    EXPECT_LT(std::abs(spectrum[k] - std::conj(spectrum[kN - k])), 1e-9);
  }
}

// The packed half-size real transform must agree exactly with the complex
// path at every power-of-two size (and fall back correctly elsewhere).
class RealFftTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealFftTest, PackedPathMatchesComplexPath) {
  const std::size_t n = GetParam();
  common::Xoshiro256 rng(900 + n);
  std::vector<double> signal(n);
  for (auto& v : signal) v = rng.next_double_in(-1000, 1000);
  Fft fft(n);
  const auto packed = fft.forward_real(signal);
  std::vector<Complex> reference(signal.begin(), signal.end());
  fft.forward(reference);
  ASSERT_EQ(packed.size(), reference.size());
  double scale = 0.0;
  for (const auto& v : reference) scale = std::max(scale, std::abs(v));
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_LT(std::abs(packed[k] - reference[k]), 1e-9 * (scale + 1.0))
        << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RealFftTest,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 100, 256, 255,
                                           1024, 4096));

TEST(DirectDft, RealWrapperMatchesComplex) {
  std::vector<double> real{1, 2, 3, 4, 5};
  std::vector<Complex> complex_in(real.begin(), real.end());
  const auto a = direct_dft_real(real);
  const auto b = direct_dft(complex_in);
  EXPECT_LT(max_abs_diff(a, b), 1e-12);
}

TEST(Fft, LargeSizeIsAccurate) {
  constexpr std::size_t kN = 1 << 14;
  auto signal = random_signal(kN, 5);
  Fft fft(kN);
  auto data = signal;
  fft.forward(data);
  fft.inverse(data);
  EXPECT_LT(max_abs_diff(data, signal), 1e-8);
}

}  // namespace
}  // namespace dsjoin::dsp
