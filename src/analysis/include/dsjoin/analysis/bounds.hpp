// Closed-form error bounds and message complexities (Theorems 1-3,
// Figures 3-4).
//
// Theorem 3 as printed in the paper is reproduced verbatim; a normalized
// variant (interpreting the bound as "1 minus the Zipf mass captured by the
// contacted sites") is also provided because the printed O(1) form carries
// an extra 1/N and the printed O(log N) form tends to 1 - alpha/(1-alpha)
// rather than 0 for alpha < 1 (see DESIGN.md §4). Figure 4 is regenerated
// from the printed formulae.
#pragma once

#include <cstdint>

#include "dsjoin/sampling/estimator.hpp"

namespace dsjoin::analysis {

/// Theorem 1: epsilon upper bound for T_i = 1 under uniform data:
/// 1 - 2/N.
double uniform_error_bound_t1(std::uint32_t nodes) noexcept;

/// Theorem 2: epsilon bound for T_i = log(N) under uniform data:
/// 1 - (1 + log2(N)) / N.
double uniform_error_bound_tlog(std::uint32_t nodes) noexcept;

/// Messages transmitted per arriving tuple, whole system, for a per-node
/// budget T (Definition I scaled by N nodes): N * T.
double system_messages_per_tuple(std::uint32_t nodes, double per_node_budget) noexcept;

/// Per-node budget values for the three regimes of Figure 3(b).
double budget_base(std::uint32_t nodes) noexcept;   ///< N - 1
double budget_t1() noexcept;                        ///< 1
double budget_tlog(std::uint32_t nodes) noexcept;   ///< log2(N)

/// Theorem 3, O(1) case, formula as printed:
/// 1 - sum_{i=1..2} alpha^i / N.
double zipf_error_bound_t1_printed(std::uint32_t nodes, double alpha) noexcept;

/// Theorem 3, O(log N) case, formula as printed:
/// 1 - (alpha - alpha^{log2(N)+1}) / (1 - alpha).
double zipf_error_bound_tlog_printed(std::uint32_t nodes, double alpha) noexcept;

/// Normalized variant: epsilon = 1 - (Zipf(alpha) mass of the m most
/// productive sites out of N), with m = 2 for the O(1) case (the local site
/// plus one remote) and m = 1 + log2(N) for the O(log N) case.
double zipf_error_bound_normalized(std::uint32_t nodes, double alpha,
                                   double contacted_sites) noexcept;

// Sampling-based bounds (SMPL policy, DESIGN.md §14): Horvitz–Thompson
// join-size estimation over stratified reservoir samples with
// variance-derived confidence bounds. Thin named wrappers over
// dsjoin::sampling so analysis consumers read every bound from one header.

/// HT estimate of |R join S| between two independently sampled windows,
/// with the independent-product variance.
sampling::Estimate ht_join_estimate(const sampling::SampleSummary& r,
                                    const sampling::SampleSummary& s) noexcept;

/// One-sided upper confidence bound mean + z * sd on an HT estimate.
double ht_upper_confidence(const sampling::Estimate& estimate,
                           double z = sampling::kZ95) noexcept;

}  // namespace dsjoin::analysis
