// Analytic MSE-vs-compression model (Eq. 11-12).
//
// Eq. 12 expresses the reconstruction MSE through the energy of the
// discarded DFT coefficients: by Parseval, truncating a real signal's
// spectrum to its K lowest frequencies leaves a per-sample mean squared
// error of (residual spectral energy) / W^2... scaled for the two-sided
// spectrum. Given a signal (or just its spectrum), the model predicts the
// MSE for every compression factor without running the inverse transform,
// and inverts the relation to find the kappa meeting the paper's lossless
// criterion E[MSE] < 0.25.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsjoin/dsp/fft.hpp"

namespace dsjoin::analysis {

/// Predicted per-sample MSE when a real length-W signal with full spectrum
/// `spectrum` is reconstructed from its K lowest-frequency coefficients
/// (conjugate-symmetric truncation). Exact by Parseval.
double predicted_mse(std::span<const dsp::Complex> spectrum, std::size_t retained);

/// Predicted MSE for each power-of-two kappa from 2 up to W / 2 (pairs of
/// {kappa, mse}), from one forward transform of the signal.
struct KappaMse {
  double kappa;
  double mse;
};
std::vector<KappaMse> mse_profile(std::span<const double> signal);

/// Largest power-of-two kappa with predicted MSE below `bound` (the paper's
/// 0.25 lossless-after-rounding criterion); 1 if none qualifies.
double max_lossless_kappa(std::span<const double> signal, double bound = 0.25);

}  // namespace dsjoin::analysis
