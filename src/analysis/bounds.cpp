#include "dsjoin/analysis/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "dsjoin/common/zipf.hpp"

namespace dsjoin::analysis {

namespace {
double log2n(std::uint32_t nodes) noexcept {
  return std::log2(static_cast<double>(nodes));
}
}  // namespace

double uniform_error_bound_t1(std::uint32_t nodes) noexcept {
  if (nodes < 2) return 0.0;
  return 1.0 - 2.0 / static_cast<double>(nodes);
}

double uniform_error_bound_tlog(std::uint32_t nodes) noexcept {
  if (nodes < 2) return 0.0;
  const double bound = 1.0 - (1.0 + log2n(nodes)) / static_cast<double>(nodes);
  return std::max(bound, 0.0);
}

double system_messages_per_tuple(std::uint32_t nodes,
                                 double per_node_budget) noexcept {
  return static_cast<double>(nodes) * per_node_budget;
}

double budget_base(std::uint32_t nodes) noexcept {
  return nodes >= 1 ? static_cast<double>(nodes - 1) : 0.0;
}

double budget_t1() noexcept { return 1.0; }

double budget_tlog(std::uint32_t nodes) noexcept {
  return nodes >= 2 ? log2n(nodes) : 0.0;
}

double zipf_error_bound_t1_printed(std::uint32_t nodes, double alpha) noexcept {
  if (nodes < 2) return 0.0;
  const double mass = (alpha + alpha * alpha) / static_cast<double>(nodes);
  return std::clamp(1.0 - mass, 0.0, 1.0);
}

double zipf_error_bound_tlog_printed(std::uint32_t nodes, double alpha) noexcept {
  if (nodes < 2 || alpha >= 1.0) return 0.0;
  // Geometric series sum_{i=1..log2(N)} alpha^i = (alpha - alpha^{log2(N)+1})
  // / (1 - alpha).
  const double mass =
      (alpha - std::pow(alpha, log2n(nodes) + 1.0)) / (1.0 - alpha);
  return std::clamp(1.0 - mass, 0.0, 1.0);
}

double zipf_error_bound_normalized(std::uint32_t nodes, double alpha,
                                   double contacted_sites) noexcept {
  if (nodes < 2) return 0.0;
  const double m = std::clamp(contacted_sites, 1.0, static_cast<double>(nodes));
  // Mass of the ceil(m) highest-ranked sites under Zipf(alpha) over N sites,
  // with the fractional site contributing proportionally.
  const double total = common::generalized_harmonic(nodes, alpha);
  double mass = 0.0;
  const auto whole = static_cast<std::uint32_t>(m);
  for (std::uint32_t i = 1; i <= whole; ++i) {
    mass += std::pow(static_cast<double>(i), -alpha);
  }
  const double frac = m - static_cast<double>(whole);
  if (frac > 0.0 && whole + 1 <= nodes) {
    mass += frac * std::pow(static_cast<double>(whole + 1), -alpha);
  }
  return std::clamp(1.0 - mass / total, 0.0, 1.0);
}

sampling::Estimate ht_join_estimate(const sampling::SampleSummary& r,
                                    const sampling::SampleSummary& s) noexcept {
  return sampling::estimate_join_size(r, s);
}

double ht_upper_confidence(const sampling::Estimate& estimate,
                           double z) noexcept {
  return sampling::upper_confidence(estimate, z);
}

}  // namespace dsjoin::analysis
