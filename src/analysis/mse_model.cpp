#include "dsjoin/analysis/mse_model.hpp"

#include <cassert>
#include <cmath>

#include "dsjoin/dsp/compression.hpp"

namespace dsjoin::analysis {

double predicted_mse(std::span<const dsp::Complex> spectrum, std::size_t retained) {
  const std::size_t w = spectrum.size();
  assert(w >= 2);
  if (retained >= w / 2 + 1) return 0.0;
  if (retained == 0) retained = 1;
  // Retained indices: {0..K-1} plus conjugate mirrors {W-K+1..W-1};
  // discarded: {K..W-K}. Parseval: MSE = sum_discarded |X_k|^2 / W^2.
  double residual = 0.0;
  for (std::size_t k = retained; k + retained <= w; ++k) {
    residual += std::norm(spectrum[k]);
  }
  return residual / (static_cast<double>(w) * static_cast<double>(w));
}

std::vector<KappaMse> mse_profile(std::span<const double> signal) {
  const std::size_t w = signal.size();
  const dsp::Fft& fft = dsp::Fft::plan(w);
  const auto spectrum = fft.forward_real(signal);
  std::vector<KappaMse> out;
  for (double kappa = 2.0; ; kappa *= 2.0) {
    const std::size_t k = dsp::retained_for_kappa(w, kappa);
    out.push_back(KappaMse{kappa, predicted_mse(spectrum, k)});
    if (k <= 1) break;
    if (kappa >= static_cast<double>(w)) break;
  }
  return out;
}

double max_lossless_kappa(std::span<const double> signal, double bound) {
  double best = 1.0;
  for (const auto& [kappa, mse] : mse_profile(signal)) {
    if (mse < bound) {
      best = kappa;
    } else {
      break;  // residual energy grows monotonically with kappa
    }
  }
  return best;
}

}  // namespace dsjoin::analysis
