#include "dsjoin/dsp/fft.hpp"

#include <cassert>
#include <cmath>
#include <map>
#include <numbers>
#include <stdexcept>

namespace dsjoin::dsp {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

std::vector<std::size_t> make_bit_reversal(std::size_t n) {
  std::vector<std::size_t> rev(n, 0);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    }
    rev[i] = r;
  }
  return rev;
}

std::vector<Complex> make_twiddles(std::size_t n) {
  std::vector<Complex> tw(n / 2);
  for (std::size_t j = 0; j < n / 2; ++j) {
    const double angle = -kTwoPi * static_cast<double>(j) / static_cast<double>(n);
    tw[j] = Complex(std::cos(angle), std::sin(angle));
  }
  return tw;
}

// Core iterative radix-2 transform over precomputed tables. `invert` flips
// the twiddle sign; scaling is the caller's responsibility.
void radix2(std::span<Complex> data, const std::vector<std::size_t>& rev,
            const std::vector<Complex>& twiddles, bool invert) {
  const std::size_t n = data.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i < rev[i]) std::swap(data[i], data[rev[i]]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n / len;  // stride into the size-n twiddle table
    for (std::size_t start = 0; start < n; start += len) {
      for (std::size_t j = 0; j < half; ++j) {
        Complex w = twiddles[j * step];
        if (invert) w = std::conj(w);
        const Complex u = data[start + j];
        const Complex v = data[start + j + half] * w;
        data[start + j] = u + v;
        data[start + j + half] = u - v;
      }
    }
  }
}

}  // namespace

std::size_t next_power_of_two(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

const Fft& Fft::plan(std::size_t size) {
  // Keyed by exact size; experiments use a handful of sizes (the DFT
  // window, histogram bucket counts), so the map stays tiny. Thread-local
  // so parallel node strands never contend or share plans.
  thread_local std::map<std::size_t, Fft> cache;
  const auto it = cache.find(size);
  if (it != cache.end()) return it->second;
  return cache.emplace(size, Fft(size)).first->second;
}

Fft::Fft(std::size_t size) : size_(size), pow2_(is_power_of_two(size)) {
  if (size_ == 0) throw std::invalid_argument("Fft size must be >= 1");
  if (pow2_) {
    bit_reversal_ = make_bit_reversal(size_);
    twiddles_ = make_twiddles(size_);
    if (size_ >= 4) {
      half_ = std::make_unique<Fft>(size_ / 2);
      real_twiddles_.resize(size_ / 4 + 1);
      for (std::size_t k = 0; k <= size_ / 4; ++k) {
        const double angle =
            -kTwoPi * static_cast<double>(k) / static_cast<double>(size_);
        real_twiddles_[k] = Complex(std::cos(angle), std::sin(angle));
      }
    }
    return;
  }
  // Bluestein: x[n]*chirp[n] convolved with conj(chirp) over a power-of-two
  // length >= 2n-1, then multiplied by chirp[k].
  conv_size_ = next_power_of_two(2 * size_ - 1);
  conv_bit_reversal_ = make_bit_reversal(conv_size_);
  conv_twiddles_ = make_twiddles(conv_size_);
  chirp_.resize(size_);
  for (std::size_t n = 0; n < size_; ++n) {
    // n^2 mod 2N keeps the angle argument small for large sizes.
    const std::size_t sq = (n * n) % (2 * size_);
    const double angle =
        -std::numbers::pi * static_cast<double>(sq) / static_cast<double>(size_);
    chirp_[n] = Complex(std::cos(angle), std::sin(angle));
  }
  std::vector<Complex> kernel(conv_size_, Complex{});
  kernel[0] = std::conj(chirp_[0]);
  for (std::size_t n = 1; n < size_; ++n) {
    kernel[n] = std::conj(chirp_[n]);
    kernel[conv_size_ - n] = std::conj(chirp_[n]);
  }
  radix2(kernel, conv_bit_reversal_, conv_twiddles_, /*invert=*/false);
  chirp_spectrum_ = std::move(kernel);
}

void Fft::forward(std::span<Complex> data) const {
  assert(data.size() == size_);
  if (size_ == 1) return;
  if (pow2_) {
    transform_pow2(data, /*invert=*/false);
  } else {
    transform_bluestein(data, /*invert=*/false);
  }
}

void Fft::inverse(std::span<Complex> data) const {
  assert(data.size() == size_);
  if (size_ == 1) return;
  if (pow2_) {
    transform_pow2(data, /*invert=*/true);
  } else {
    transform_bluestein(data, /*invert=*/true);
  }
  const double scale = 1.0 / static_cast<double>(size_);
  for (auto& v : data) v *= scale;
}

void Fft::transform_pow2(std::span<Complex> data, bool invert) const {
  radix2(data, bit_reversal_, twiddles_, invert);
}

void Fft::transform_bluestein(std::span<Complex> data, bool invert) const {
  // The inverse transform is the conjugate of the forward transform of the
  // conjugated input (scaling applied by the caller).
  if (invert) {
    for (auto& v : data) v = std::conj(v);
  }
  std::vector<Complex> a(conv_size_, Complex{});
  for (std::size_t n = 0; n < size_; ++n) a[n] = data[n] * chirp_[n];
  radix2(a, conv_bit_reversal_, conv_twiddles_, /*invert=*/false);
  for (std::size_t i = 0; i < conv_size_; ++i) a[i] *= chirp_spectrum_[i];
  radix2(a, conv_bit_reversal_, conv_twiddles_, /*invert=*/true);
  const double scale = 1.0 / static_cast<double>(conv_size_);
  for (std::size_t k = 0; k < size_; ++k) {
    data[k] = a[k] * scale * chirp_[k];
  }
  if (invert) {
    for (auto& v : data) v = std::conj(v);
  }
}

std::vector<Complex> Fft::forward_real(std::span<const double> signal) const {
  assert(signal.size() == size_);
  if (half_ == nullptr) {
    // Odd/small/Bluestein sizes: plain complex transform.
    std::vector<Complex> data(signal.begin(), signal.end());
    forward(data);
    return data;
  }
  // Pack pairs of real samples into one complex stream, transform at half
  // length, then split the even/odd spectra and butterfly them together.
  const std::size_t h = size_ / 2;
  std::vector<Complex> packed(h);
  for (std::size_t n = 0; n < h; ++n) {
    packed[n] = Complex(signal[2 * n], signal[2 * n + 1]);
  }
  half_->forward(packed);

  std::vector<Complex> out(size_);
  auto twiddle = [&](std::size_t k) -> Complex {
    // e^{-2*pi*i*k/N} for k <= N/2, via the stored quarter table.
    if (k <= size_ / 4) return real_twiddles_[k];
    const Complex t = real_twiddles_[size_ / 2 - k];
    return Complex(-t.real(), t.imag());
  };
  for (std::size_t k = 0; k <= h / 2; ++k) {
    const Complex zk = packed[k % h];
    const Complex zmk = std::conj(packed[(h - k) % h]);
    const Complex even = 0.5 * (zk + zmk);
    const Complex odd = Complex(0, -0.5) * (zk - zmk);
    const Complex upper = even + twiddle(k) * odd;
    out[k] = upper;
    // X[N/2 + k'] values come from the second period of E + W*O; the
    // conjugate-symmetry fill below covers them.
  }
  for (std::size_t k = h / 2 + 1; k <= h; ++k) {
    const Complex zk = packed[k % h];
    const Complex zmk = std::conj(packed[(h - k) % h]);
    const Complex even = 0.5 * (zk + zmk);
    const Complex odd = Complex(0, -0.5) * (zk - zmk);
    out[k] = even + twiddle(k) * odd;
  }
  for (std::size_t k = h + 1; k < size_; ++k) {
    out[k] = std::conj(out[size_ - k]);
  }
  return out;
}

std::vector<Complex> direct_dft(std::span<const Complex> input) {
  const std::size_t n = input.size();
  std::vector<Complex> out(n, Complex{});
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{};
    for (std::size_t m = 0; m < n; ++m) {
      const double angle =
          -kTwoPi * static_cast<double>(k) * static_cast<double>(m) / static_cast<double>(n);
      acc += input[m] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<Complex> direct_dft_real(std::span<const double> input) {
  std::vector<Complex> complex_in(input.begin(), input.end());
  return direct_dft(complex_in);
}

}  // namespace dsjoin::dsp
