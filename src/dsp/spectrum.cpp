#include "dsjoin/dsp/spectrum.hpp"

#include <cassert>
#include <cmath>

namespace dsjoin::dsp {

std::vector<Complex> cross_power_spectrum(std::span<const Complex> x,
                                          std::span<const Complex> y) {
  assert(x.size() == y.size());
  std::vector<Complex> s(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) {
    s[k] = x[k] * std::conj(y[k]);
  }
  return s;
}

double spectral_energy(std::span<const Complex> x) {
  double e = 0.0;
  for (std::size_t k = 1; k < x.size(); ++k) {
    e += std::norm(x[k]);
  }
  return e;
}

CorrelationEstimate lag_max_correlation(std::span<const Complex> x,
                                        std::span<const Complex> y,
                                        std::size_t window) {
  assert(x.size() == y.size());
  assert(x.size() <= window / 2 + 1);
  const double ex = spectral_energy(x);
  const double ey = spectral_energy(y);
  if (ex <= 0.0 || ey <= 0.0) return {};

  // Build the conjugate-symmetric cross spectrum of the two real signals
  // with DC suppressed, then inverse-transform: r[n] is the circular
  // cross-correlation of the mean-removed low-passed signals.
  std::vector<Complex> full(window, Complex{});
  for (std::size_t k = 1; k < x.size(); ++k) {
    const Complex s = x[k] * std::conj(y[k]);
    full[k] = s;
    full[window - k] = std::conj(s);
  }
  const Fft& fft = Fft::plan(window);
  fft.inverse(full);

  double best = 0.0;
  std::size_t best_lag = 0;
  for (std::size_t n = 0; n < window; ++n) {
    const double mag = std::abs(full[n]);
    if (mag > best) {
      best = mag;
      best_lag = n;
    }
  }
  // full[] carries a 1/W from the inverse transform; r_xy's natural
  // normalization against sqrt(sigma_x*sigma_y) uses the same convention on
  // both sides, so scale back by W before normalizing by the energies.
  const double rho = best * static_cast<double>(window) / std::sqrt(ex * ey);
  return CorrelationEstimate{rho < 1.0 ? rho : 1.0, best_lag};
}

double spectral_mean(std::span<const Complex> x, std::size_t window) noexcept {
  if (x.empty() || window == 0) return 0.0;
  return x[0].real() / static_cast<double>(window);
}

double spectral_stddev(std::span<const Complex> x, std::size_t window) noexcept {
  if (window == 0) return 0.0;
  return std::sqrt(spectral_energy(x)) / static_cast<double>(window);
}

double spectral_magnitude_cosine(std::span<const Complex> x,
                                 std::span<const Complex> y) {
  assert(x.size() == y.size());
  double dot = 0.0, nx = 0.0, ny = 0.0;
  for (std::size_t k = 1; k < x.size(); ++k) {
    const double a = std::abs(x[k]);
    const double b = std::abs(y[k]);
    dot += a * b;
    nx += a * a;
    ny += b * b;
  }
  if (nx <= 0.0 || ny <= 0.0) return 0.0;
  return dot / std::sqrt(nx * ny);
}

}  // namespace dsjoin::dsp
