// Incrementally maintained DFT over a sliding window (the paper's "iDFT").
//
// The paper (Section 4, citing Bailey-Swarztrauber [4]) maintains the DFT
// coefficients of the last W joining-attribute values incrementally, at
// constant cost per retained coefficient per tuple, with a periodic full
// recomputation ("control vector", [28]) to flush accumulated floating-point
// drift.
//
// Formulation. We maintain the DFT of the window in *ring-buffer order*:
// when the arriving value x_new replaces the value x_old stored at buffer
// slot p,
//     X[k] += (x_new - x_old) * e^{-2*pi*i*k*p/W}        for each retained k.
// The maintained spectrum equals the true (arrival-ordered) window spectrum
// up to a circular time shift. A circular shift changes neither coefficient
// magnitudes (what the correlation filter consumes) nor the multiset of
// values produced by inverse reconstruction (what DFTT's membership test
// consumes), and avoids the per-step phase rotation of the classic sliding
// DFT — so no rotation error accumulates on top of the update error.
//
// Storage. Coefficients and phasors live in structure-of-arrays form
// (separate real/imag double arrays). The scalar push() is the reference
// formulation — one tuple at a time, written with std::complex arithmetic
// exactly as the paper states it — while push_batch() runs the identical
// update sequence over plain double arrays in one fused pass, which the
// compiler auto-vectorizes. Both paths produce bit-identical coefficients
// (enforced by tests); see DESIGN.md "Performance".
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dsjoin/dsp/fft.hpp"

namespace dsjoin::dsp {

/// One coefficient update, as shipped to remote nodes (piggybacked on tuple
/// messages; see Figure 7 lines 1-2 and 5 of the paper).
struct CoeffDelta {
  std::uint32_t index;  ///< coefficient index k
  Complex value;        ///< new absolute value of X[k]
};

/// Sliding-window DFT with a retained low-frequency coefficient subset.
class SlidingDft {
 public:
  /// @param window    W, the number of values the window holds (>= 2).
  /// @param retained  K, how many low-frequency coefficients (k = 0..K-1)
  ///                  are maintained; K <= W. The effective compression
  ///                  factor is kappa = W / K.
  SlidingDft(std::size_t window, std::size_t retained);

  /// Feeds one attribute value. Before the window fills this accumulates;
  /// afterwards it replaces the oldest value. O(K). This is the scalar
  /// reference path; push_batch() is the vectorized equivalent.
  void push(double value);

  /// Feeds a batch of attribute values, equivalent to calling push() on
  /// each element in order — bit-identical coefficients, moments and
  /// renormalization schedule — but with the per-coefficient delta
  /// accumulation and phasor advance fused into one auto-vectorizable pass
  /// over the structure-of-arrays store.
  void push_batch(std::span<const double> values);

  /// Total number of values pushed so far.
  std::uint64_t count() const noexcept { return count_; }
  /// True once W values have been pushed.
  bool full() const noexcept { return count_ >= window_; }

  std::size_t window() const noexcept { return window_; }
  std::size_t retained() const noexcept { return coeff_re_.size(); }
  /// W / K, the paper's compression factor kappa.
  double kappa() const noexcept {
    return static_cast<double>(window_) / static_cast<double>(retained());
  }

  /// The maintained coefficients X[0..K-1] (ring-buffer-order spectrum).
  /// The interleaved view is materialized lazily from the SoA store.
  std::span<const Complex> coefficients() const;

  /// Current window contents in ring-buffer slot order.
  std::span<const double> window_values() const noexcept { return ring_; }

  /// Mean of the values currently in the window (incrementally maintained).
  double mean() const noexcept;
  /// Population variance of the window values (incrementally maintained).
  double variance() const noexcept;

  /// Exactly recomputes the retained coefficients from the ring contents,
  /// discarding accumulated floating-point drift. O(W log W). The phasor
  /// table is re-derived with trig calls only when it has accumulated more
  /// than kPhaseResetSteps incremental multiplies since it was last exact;
  /// below that the drift bound (~2*eps per step) is far under the
  /// coefficient update error this recomputation targets.
  void renormalize();

  /// Renormalize automatically every `interval` pushes (0 disables). This is
  /// the "recompute at regular intervals" knob of the control vector.
  void set_renormalize_interval(std::uint64_t interval) noexcept {
    renormalize_interval_ = interval;
  }

  /// Incremental phasor multiplies tolerated before renormalize() re-derives
  /// the phasor table with trig calls. Unit phasor drift is O(eps) per
  /// multiply, so 512 steps keep the table within ~1e-13 of exact.
  static constexpr std::uint64_t kPhaseResetSteps = 512;

  /// Multiplies applied to the phasor table since it was last exact (reset
  /// on every ring wrap, where all phasors return to 1 exactly).
  std::uint64_t phase_steps() const noexcept { return phase_steps_; }

  /// Coefficients whose value moved by more than `threshold` (absolute
  /// complex distance) since they were last drained. Used to piggyback
  /// summary updates onto outgoing tuples; draining marks them clean.
  std::vector<CoeffDelta> drain_dirty(double threshold);

  /// Number of pushes since the last drain (any coefficient state is
  /// "stale" on the receiver by at most this many tuples).
  std::uint64_t pushes_since_drain() const noexcept { return pushes_since_drain_; }

 private:
  void backfill_first(double value);
  void reset_phases_exact();

  std::size_t window_;
  // Structure-of-arrays stores: X[k] = (coeff_re_[k], coeff_im_[k]),
  // phasor e^{-2*pi*i*k*ring_pos/W} = (phase_re_[k], phase_im_[k]),
  // unit step e^{-2*pi*i*k/W} = (step_re_[k], step_im_[k]).
  std::vector<double> coeff_re_, coeff_im_;
  std::vector<double> phase_re_, phase_im_;
  std::vector<double> step_re_, step_im_;
  std::vector<Complex> last_sent_;      // values as of the previous drain
  std::vector<double> ring_;
  std::size_t ring_pos_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t renormalize_interval_ = 0;
  std::uint64_t pushes_since_drain_ = 0;
  std::uint64_t phase_steps_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  Fft fft_;
  // Lazily materialized interleaved view of the SoA coefficient store.
  mutable std::vector<Complex> coeff_view_;
  mutable bool view_dirty_ = true;
};

}  // namespace dsjoin::dsp
