// Incrementally maintained DFT over a sliding window (the paper's "iDFT").
//
// The paper (Section 4, citing Bailey-Swarztrauber [4]) maintains the DFT
// coefficients of the last W joining-attribute values incrementally, at
// constant cost per retained coefficient per tuple, with a periodic full
// recomputation ("control vector", [28]) to flush accumulated floating-point
// drift.
//
// Formulation. We maintain the DFT of the window in *ring-buffer order*:
// when the arriving value x_new replaces the value x_old stored at buffer
// slot p,
//     X[k] += (x_new - x_old) * e^{-2*pi*i*k*p/W}        for each retained k.
// The maintained spectrum equals the true (arrival-ordered) window spectrum
// up to a circular time shift. A circular shift changes neither coefficient
// magnitudes (what the correlation filter consumes) nor the multiset of
// values produced by inverse reconstruction (what DFTT's membership test
// consumes), and avoids the per-step phase rotation of the classic sliding
// DFT — so no rotation error accumulates on top of the update error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dsjoin/dsp/fft.hpp"

namespace dsjoin::dsp {

/// One coefficient update, as shipped to remote nodes (piggybacked on tuple
/// messages; see Figure 7 lines 1-2 and 5 of the paper).
struct CoeffDelta {
  std::uint32_t index;  ///< coefficient index k
  Complex value;        ///< new absolute value of X[k]
};

/// Sliding-window DFT with a retained low-frequency coefficient subset.
class SlidingDft {
 public:
  /// @param window    W, the number of values the window holds (>= 2).
  /// @param retained  K, how many low-frequency coefficients (k = 0..K-1)
  ///                  are maintained; K <= W. The effective compression
  ///                  factor is kappa = W / K.
  SlidingDft(std::size_t window, std::size_t retained);

  /// Feeds one attribute value. Before the window fills this accumulates;
  /// afterwards it replaces the oldest value. O(K).
  void push(double value);

  /// Total number of values pushed so far.
  std::uint64_t count() const noexcept { return count_; }
  /// True once W values have been pushed.
  bool full() const noexcept { return count_ >= window_; }

  std::size_t window() const noexcept { return window_; }
  std::size_t retained() const noexcept { return coeffs_.size(); }
  /// W / K, the paper's compression factor kappa.
  double kappa() const noexcept {
    return static_cast<double>(window_) / static_cast<double>(retained());
  }

  /// The maintained coefficients X[0..K-1] (ring-buffer-order spectrum).
  std::span<const Complex> coefficients() const noexcept { return coeffs_; }

  /// Current window contents in ring-buffer slot order.
  std::span<const double> window_values() const noexcept { return ring_; }

  /// Mean of the values currently in the window (incrementally maintained).
  double mean() const noexcept;
  /// Population variance of the window values (incrementally maintained).
  double variance() const noexcept;

  /// Exactly recomputes the retained coefficients from the ring contents,
  /// discarding accumulated floating-point drift. O(W log W).
  void renormalize();

  /// Renormalize automatically every `interval` pushes (0 disables). This is
  /// the "recompute at regular intervals" knob of the control vector.
  void set_renormalize_interval(std::uint64_t interval) noexcept {
    renormalize_interval_ = interval;
  }

  /// Coefficients whose value moved by more than `threshold` (absolute
  /// complex distance) since they were last drained. Used to piggyback
  /// summary updates onto outgoing tuples; draining marks them clean.
  std::vector<CoeffDelta> drain_dirty(double threshold);

  /// Number of pushes since the last drain (any coefficient state is
  /// "stale" on the receiver by at most this many tuples).
  std::uint64_t pushes_since_drain() const noexcept { return pushes_since_drain_; }

 private:
  std::size_t window_;
  std::vector<Complex> coeffs_;
  std::vector<Complex> last_sent_;      // values as of the previous drain
  std::vector<Complex> unit_steps_;     // e^{-2*pi*i*k/W} for retained k
  std::vector<Complex> phases_;         // e^{-2*pi*i*k*ring_pos/W}, advanced per push
  std::vector<double> ring_;
  std::size_t ring_pos_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t renormalize_interval_ = 0;
  std::uint64_t pushes_since_drain_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  Fft fft_;
};

}  // namespace dsjoin::dsp
