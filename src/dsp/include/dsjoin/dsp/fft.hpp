// Fast Fourier transforms.
//
// The paper uses FFTW [15]; this module is the from-scratch replacement. It
// provides an iterative radix-2 Cooley-Tukey transform with precomputed
// twiddle factors and bit-reversal permutation for power-of-two sizes, and a
// Bluestein chirp-z fallback so any window size works. A direct O(n^2) DFT
// is included as the numerical ground truth for tests and as the
// "recompute-from-scratch" baseline of Table 1.
//
// Conventions (matching Eq. 2/3 of the paper up to index origin):
//   forward:  X[k] = sum_{n=0}^{N-1} x[n] * e^{-2*pi*i*k*n/N}
//   inverse:  x[n] = (1/N) * sum_{k=0}^{N-1} X[k] * e^{+2*pi*i*k*n/N}
#pragma once

#include <complex>
#include <memory>
#include <cstddef>
#include <span>
#include <vector>

namespace dsjoin::dsp {

using Complex = std::complex<double>;

/// True iff n is a power of two (n >= 1).
constexpr bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n) noexcept;

/// A transform plan for one fixed size. Construction precomputes twiddle
/// tables (and, for non-power-of-two sizes, the Bluestein chirp and its
/// convolution spectrum); execution is allocation-free for power-of-two
/// sizes and reuses internal scratch otherwise.
class Fft {
 public:
  /// @param size transform length, >= 1. Any size is accepted; power-of-two
  ///             sizes take the radix-2 fast path.
  explicit Fft(std::size_t size);

  std::size_t size() const noexcept { return size_; }

  /// In-place forward transform. data.size() must equal size().
  void forward(std::span<Complex> data) const;

  /// In-place inverse transform (includes the 1/N scaling).
  void inverse(std::span<Complex> data) const;

  /// Forward transform of a real signal; returns all N complex coefficients
  /// (the conjugate-symmetric upper half included, for caller convenience).
  /// For even power-of-two sizes this runs through a half-size complex
  /// transform (the classic real-FFT packing), roughly halving the work.
  std::vector<Complex> forward_real(std::span<const double> signal) const;

  /// A cached plan for `size`, built on first use. The cache is
  /// thread-local: hot paths that transform per tuple (membership probes
  /// reconstructing a window, correlation scoring) skip the O(N log N)
  /// table setup without any cross-thread synchronization, so it is safe
  /// from the simulator's parallel node strands.
  static const Fft& plan(std::size_t size);

 private:
  void transform_pow2(std::span<Complex> data, bool invert) const;
  void transform_bluestein(std::span<Complex> data, bool invert) const;

  std::size_t size_;
  bool pow2_;
  // Half-size plan backing the packed real transform (pow2 sizes >= 4).
  std::unique_ptr<Fft> half_;
  std::vector<Complex> real_twiddles_;  // e^{-2*pi*i*k/size_}, k <= size_/4
  // Radix-2 tables (also used by the Bluestein inner transform).
  std::vector<std::size_t> bit_reversal_;     // permutation for size_ (pow2 only)
  std::vector<Complex> twiddles_;             // e^{-2*pi*i*j/size_}, j < size_/2
  // Bluestein state (empty when pow2_).
  std::size_t conv_size_ = 0;                 // power-of-two convolution length
  std::vector<Complex> chirp_;                // e^{-pi*i*n^2/size_}
  std::vector<Complex> chirp_spectrum_;       // FFT of the padded conjugate chirp
  std::vector<std::size_t> conv_bit_reversal_;
  std::vector<Complex> conv_twiddles_;
};

/// Direct O(n^2) DFT; the ground truth used by tests and the Table 1
/// "recompute" baseline.
std::vector<Complex> direct_dft(std::span<const Complex> input);

/// Direct DFT of a real signal.
std::vector<Complex> direct_dft_real(std::span<const double> input);

}  // namespace dsjoin::dsp
