// DFT coefficient compression and tuple-value reconstruction (Section 5.3).
//
// A node ships W/kappa low-frequency DFT coefficients; the receiver inverts
// them (Eq. 10) to an estimate x_hat of the remote window's attribute
// sequence, rounds to the integer attribute domain, and uses the rounded
// multiset for local membership tests (the DFTT algorithm). The paper's
// lossless-after-rounding criterion is E[MSE] < 0.25 (deviation < 0.5 per
// value, Eq. 11-12 and Figures 5-6).
//
// Faithfulness note (see DESIGN.md §4): Eq. 10 as printed multiplies by
// kappa and keeps k < W/kappa one-sidedly; for real signals we instead keep
// the lowest frequencies *with* their implied conjugate mirrors and scale by
// 1/W — the textbook-lossless truncation the paper's Figures 5/6 behaviour
// requires.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dsjoin/dsp/fft.hpp"

namespace dsjoin::dsp {

/// A truncated spectrum: the K lowest-frequency coefficients of a length-W
/// real signal. The conjugate-symmetric upper half is implied.
struct CompressedSpectrum {
  std::uint32_t window = 0;       ///< W
  std::vector<Complex> coeffs;    ///< X[0..K-1], K <= W/2 + 1

  /// W / K, the paper's compression factor.
  double kappa() const noexcept {
    return coeffs.empty() ? 0.0
                          : static_cast<double>(window) /
                                static_cast<double>(coeffs.size());
  }
  /// Bytes this summary occupies on the wire (two f64 per coefficient).
  std::size_t wire_bytes() const noexcept { return coeffs.size() * 16; }
};

/// Number of retained coefficients for a window W and compression factor
/// kappa, clamped into [1, W/2 + 1].
std::size_t retained_for_kappa(std::size_t window, double kappa) noexcept;

/// Compresses a real signal: forward FFT, keep the W/kappa lowest
/// frequencies. `fft` must have size signal.size().
CompressedSpectrum compress(std::span<const double> signal, double kappa,
                            const Fft& fft);

/// Reconstructs all W samples from a truncated spectrum (conjugate-symmetric
/// zero-filled inverse FFT; real parts returned).
std::vector<double> reconstruct(const CompressedSpectrum& spectrum);

/// Reconstructs and rounds each sample to the nearest integer — the final
/// approximated attribute multiset of Section 5.3.
std::vector<std::int64_t> reconstruct_rounded(const CompressedSpectrum& spectrum);

/// Per-sample squared reconstruction errors (Figure 5's series).
std::vector<double> squared_errors(std::span<const double> original,
                                   std::span<const double> approx);

/// Mean squared error between a signal and its reconstruction (Eq. 11 with
/// the empirical distribution of the window as P).
double mean_squared_error(std::span<const double> original,
                          std::span<const double> approx);

/// Fraction of samples reproduced exactly after rounding (deviation < 0.5).
double lossless_fraction(std::span<const double> original,
                         std::span<const double> approx);

/// Largest power-of-two kappa whose reconstruction of `signal` keeps the
/// empirical MSE below `mse_bound` (the paper's threshold is 0.25). Returns
/// 1 if even kappa = 2 violates the bound. `fft` must match signal.size().
double recommend_kappa(std::span<const double> signal, double mse_bound,
                       const Fft& fft);

// ---------------------------------------------------------------------------
// Fixed-point coefficient quantization (wire format v4).
//
// A coefficient block travels as one f64 scale plus int8/int16 mantissas:
// m = lround(v / s * Q) with Q = 127 or 32767, decoded as m * (s / Q). The
// scale is the block's max |component|, so every ratio lies in [-1, 1] and
// the absolute error per component is at most s / (2Q).
//
// Section 5.3 calls a reconstruction lossless when E[MSE] < 0.25 (every
// rounded value within 0.5). Quantization must not consume that budget:
// with independent rounding errors (uniform on +/- s/2Q, variance
// s^2/12Q^2) across K complex coefficients, each mirrored once in the
// length-W inverse transform, the added reconstruction MSE is
//   E[dx^2] = (4 / W^2) * K * 2 * s^2 / (12 Q^2) = 2 K s^2 / (3 W^2 Q^2).
// The encoder picks the narrowest width whose predicted MSE stays below
// kQuantMseBudget (a quarter of the paper's 0.25 bound) and escalates
// int8 -> int16 -> f64 otherwise, so quantization can never push a
// reconstruction that was lossless at f64 past the rounding criterion.
// ---------------------------------------------------------------------------

/// Added-MSE budget granted to quantization: a quarter of the paper's 0.25
/// lossless-after-rounding bound.
inline constexpr double kQuantMseBudget = 0.0625;

/// Mantissa magnitude for a width: 127 (int8) or 32767 (int16).
std::int32_t quant_mantissa_max(unsigned bits) noexcept;

/// Per-block scale: max |component| over real and imaginary parts.
/// All-zero blocks give 0.0; non-finite components give +inf (forcing the
/// f64 fallback in choose_quant_bits).
double quant_scale(std::span<const Complex> values) noexcept;

/// Predicted reconstruction MSE added by quantizing K retained coefficients
/// of a length-W window at the given width (see the model above).
double predicted_quant_mse(double scale, std::size_t retained,
                           std::size_t window, unsigned bits) noexcept;

/// Narrowest width in {preferred_bits, ..., 16} whose predicted added MSE
/// stays below kQuantMseBudget; 0 means "ship f64". preferred_bits of 0
/// disables quantization outright.
unsigned choose_quant_bits(double scale, std::size_t retained,
                           std::size_t window, unsigned preferred_bits) noexcept;

/// Deterministic component quantization: lround(v / scale * Q), clamped to
/// [-Q, Q]. scale == 0 encodes as 0.
std::int32_t quantize_component(double v, double scale, unsigned bits) noexcept;

/// Inverse map m * (scale / Q); exact zero for scale == 0.
double dequantize_component(std::int32_t m, double scale, unsigned bits) noexcept;

}  // namespace dsjoin::dsp
