// DFT coefficient compression and tuple-value reconstruction (Section 5.3).
//
// A node ships W/kappa low-frequency DFT coefficients; the receiver inverts
// them (Eq. 10) to an estimate x_hat of the remote window's attribute
// sequence, rounds to the integer attribute domain, and uses the rounded
// multiset for local membership tests (the DFTT algorithm). The paper's
// lossless-after-rounding criterion is E[MSE] < 0.25 (deviation < 0.5 per
// value, Eq. 11-12 and Figures 5-6).
//
// Faithfulness note (see DESIGN.md §4): Eq. 10 as printed multiplies by
// kappa and keeps k < W/kappa one-sidedly; for real signals we instead keep
// the lowest frequencies *with* their implied conjugate mirrors and scale by
// 1/W — the textbook-lossless truncation the paper's Figures 5/6 behaviour
// requires.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dsjoin/dsp/fft.hpp"

namespace dsjoin::dsp {

/// A truncated spectrum: the K lowest-frequency coefficients of a length-W
/// real signal. The conjugate-symmetric upper half is implied.
struct CompressedSpectrum {
  std::uint32_t window = 0;       ///< W
  std::vector<Complex> coeffs;    ///< X[0..K-1], K <= W/2 + 1

  /// W / K, the paper's compression factor.
  double kappa() const noexcept {
    return coeffs.empty() ? 0.0
                          : static_cast<double>(window) /
                                static_cast<double>(coeffs.size());
  }
  /// Bytes this summary occupies on the wire (two f64 per coefficient).
  std::size_t wire_bytes() const noexcept { return coeffs.size() * 16; }
};

/// Number of retained coefficients for a window W and compression factor
/// kappa, clamped into [1, W/2 + 1].
std::size_t retained_for_kappa(std::size_t window, double kappa) noexcept;

/// Compresses a real signal: forward FFT, keep the W/kappa lowest
/// frequencies. `fft` must have size signal.size().
CompressedSpectrum compress(std::span<const double> signal, double kappa,
                            const Fft& fft);

/// Reconstructs all W samples from a truncated spectrum (conjugate-symmetric
/// zero-filled inverse FFT; real parts returned).
std::vector<double> reconstruct(const CompressedSpectrum& spectrum);

/// Reconstructs and rounds each sample to the nearest integer — the final
/// approximated attribute multiset of Section 5.3.
std::vector<std::int64_t> reconstruct_rounded(const CompressedSpectrum& spectrum);

/// Per-sample squared reconstruction errors (Figure 5's series).
std::vector<double> squared_errors(std::span<const double> original,
                                   std::span<const double> approx);

/// Mean squared error between a signal and its reconstruction (Eq. 11 with
/// the empirical distribution of the window as P).
double mean_squared_error(std::span<const double> original,
                          std::span<const double> approx);

/// Fraction of samples reproduced exactly after rounding (deviation < 0.5).
double lossless_fraction(std::span<const double> original,
                         std::span<const double> approx);

/// Largest power-of-two kappa whose reconstruction of `signal` keeps the
/// empirical MSE below `mse_bound` (the paper's threshold is 0.25). Returns
/// 1 if even kappa = 2 violates the bound. `fft` must match signal.size().
double recommend_kappa(std::span<const double> signal, double mse_bound,
                       const Fft& fft);

}  // namespace dsjoin::dsp
