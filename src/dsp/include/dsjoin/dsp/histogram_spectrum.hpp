// DFT of the key-frequency histogram: a deterministic join-size summary.
//
// Extension beyond the paper (DESIGN.md experiment A3). The paper computes
// its DFT over the *time sequence* of joining attributes; an alternative
// frequency-domain object is the DFT of the key *histogram* h (domain
// binned into D buckets). Its appeal: the equi-join size is exactly a
// histogram inner product,
//     |R join S| = sum_v f(v) * g(v),
// and by Parseval that inner product equals (1/D) * sum_k F(k) * conj(G(k))
// — computable from DFT coefficients alone, with truncation yielding a
// principled smooth approximation (it is AGMS's estimand, without AGMS's
// randomness). Updates are O(K) per tuple, the same cost as the paper's
// sliding DFT.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsjoin/dsp/fft.hpp"

namespace dsjoin::dsp {

/// Incrementally maintained truncated DFT of a bucketized key histogram.
class HistogramSpectrum {
 public:
  /// @param domain   keys lie in [1, domain].
  /// @param buckets  D, histogram resolution (keys map to key*D/domain).
  /// @param retained K, low-frequency coefficients maintained (k = 0..K-1);
  ///                 K <= D/2 + 1 (the conjugate half is implied).
  HistogramSpectrum(std::int64_t domain, std::uint32_t buckets,
                    std::size_t retained);

  /// Adds `weight` occurrences of `key` (negative weight = sliding-window
  /// eviction). O(retained).
  void add(std::int64_t key, std::int64_t weight = 1);

  std::span<const Complex> coefficients() const noexcept { return coeffs_; }
  std::uint32_t buckets() const noexcept { return buckets_; }
  std::int64_t domain() const noexcept { return domain_; }
  /// Total weight currently summarized (read off the DC coefficient).
  double total_weight() const noexcept { return coeffs_[0].real(); }
  /// Wire size: 16 bytes per retained coefficient.
  std::size_t wire_bytes() const noexcept { return coeffs_.size() * 16; }

  /// Join-size estimate between two histograms over the same geometry:
  /// (1/D) * sum over retained k (and implied conjugates) of F * conj(G).
  /// Exact when both spectra are untruncated.
  static double estimate_join(const HistogramSpectrum& f,
                              const HistogramSpectrum& g);

  /// Same estimate from raw coefficient spans (e.g. received summaries).
  static double estimate_join(std::span<const Complex> f,
                              std::span<const Complex> g,
                              std::uint32_t buckets);

  double estimate_self_join() const { return estimate_join(*this, *this); }

 private:
  std::uint32_t bucket_of(std::int64_t key) const noexcept;

  std::int64_t domain_;
  std::uint32_t buckets_;
  std::vector<Complex> coeffs_;
  std::vector<Complex> unit_;  // e^{-2*pi*i*k/D} for retained k
};

}  // namespace dsjoin::dsp
