// Cross/auto power spectra and correlation coefficients from DFTs.
//
// Section 5.2 of the paper derives the cross-correlation of two remote
// stream segments from their DFT coefficients alone (Eq. 5-8): the DFT
// cross-correlation R_XY(u,v) collapses to 2*pi*delta(u-v)*S_xy(u), i.e. the
// cross power spectrum, which each node can evaluate from its own DFT and
// the remote node's shipped coefficients. This module implements:
//
//  * cross_power_spectrum     - S_xy[k] = X[k] * conj(Y[k])
//  * spectral_energy          - auto-covariance proxy (Parseval, DC removed)
//  * lag_max_correlation      - Eq. 4's rho, maximized over circular lags
//                               (nodes' ring phases are not mutually
//                               aligned; the lag search makes rho invariant
//                               to that shift)
//  * spectral_magnitude_cosine- a cheaper shift-invariant similarity used
//                               as an ablation alternative
//
// All functions accept *truncated* spectra (the K retained low-frequency
// coefficients) — exactly the information a remote node possesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsjoin/dsp/fft.hpp"

namespace dsjoin::dsp {

/// Result of a lag-resolved correlation estimate.
struct CorrelationEstimate {
  double rho = 0.0;   ///< cross-correlation coefficient in [0, 1]
  std::size_t lag = 0;  ///< circular lag at which |r_xy| peaks
};

/// Pointwise cross power spectrum S_xy[k] = X[k] * conj(Y[k]).
/// Inputs must have equal length.
std::vector<Complex> cross_power_spectrum(std::span<const Complex> x,
                                          std::span<const Complex> y);

/// Sum of |X[k]|^2 over k >= 1 (DC excluded). By Parseval this equals
/// W^2 * Var proxy of the (low-passed) signal: the auto-covariance term
/// sigma_i of Eq. 4 evaluated in the frequency domain.
double spectral_energy(std::span<const Complex> x);

/// The paper's rho_{i,j} (Eq. 4) computed entirely from two truncated
/// spectra of a window of length `window`: the cross power spectrum is
/// mirrored to conjugate symmetry, inverse-transformed to the circular
/// cross-correlation sequence r_xy[n], and the peak |r_xy| is normalized by
/// sqrt(sigma_x * sigma_y). DC is excluded, so iid-unrelated segments score
/// near 0 and (lagged) copies score near 1.
///
/// @param x,y     truncated spectra (same length K <= window/2 + 1).
/// @param window  original window length W (power of two recommended).
CorrelationEstimate lag_max_correlation(std::span<const Complex> x,
                                        std::span<const Complex> y,
                                        std::size_t window);

/// Mean of the underlying window, read off the DC coefficient: Re(X[0])/W.
double spectral_mean(std::span<const Complex> x, std::size_t window) noexcept;

/// Standard deviation proxy of the (low-passed) window:
/// sqrt(spectral_energy)/W. Underestimates the true sigma by the discarded
/// high-frequency energy — fine for the affinity scaling it feeds.
double spectral_stddev(std::span<const Complex> x, std::size_t window) noexcept;

/// Cosine similarity of the coefficient magnitude vectors (DC excluded),
/// in [0, 1]. Invariant to circular shifts by construction (magnitudes drop
/// all phase), at the price of ignoring phase alignment entirely. Used by
/// the signal-choice ablation.
double spectral_magnitude_cosine(std::span<const Complex> x,
                                 std::span<const Complex> y);

}  // namespace dsjoin::dsp
