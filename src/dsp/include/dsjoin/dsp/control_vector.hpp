// Control vector for approximate incremental DFT maintenance.
//
// Section 4 of the paper cites Winograd & Nawab [28] for an analytic method
// that picks an application-specific "control vector" trading arithmetic
// cost against DFT approximation quality; the paper sets it so arithmetic
// drops by a factor of 10 with completion probability > 0.95.
//
// Our control vector has two knobs, matching how the incremental DFT is
// maintained here:
//   * retained_coefficients  K — per-tuple update touches K coefficients;
//   * recompute_interval     I — every I tuples the retained coefficients
//                                are recomputed exactly (O(W log W)).
// Cost model (per tuple, in complex multiply-adds):
//   exact baseline:  W * log2(W)          (full FFT on every tuple)
//   incremental:     K + W * log2(W) / I  (update plus amortized recompute)
// Quality model: the incremental update accrues floating-point error with
// standard deviation ~ eta * sqrt(u) per coefficient after u updates
// (random-walk model, eta ~ 1e-15 relative to coefficient scale). The
// completion probability is the probability that the drift of every
// retained coefficient stays below the reconstruction tolerance between
// recomputes, evaluated under a Gaussian drift model.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dsjoin::dsp {

/// A chosen operating point for approximate DFT maintenance.
struct ControlVector {
  std::size_t retained_coefficients = 0;  ///< K
  std::uint64_t recompute_interval = 0;   ///< I (tuples between exact passes)
  double completion_probability = 0.0;    ///< P(all drifts within tolerance)
  double arithmetic_reduction = 0.0;      ///< baseline cost / achieved cost
};

/// Parameters of the analytic model.
struct ControlVectorModel {
  double eta = 1e-15;        ///< per-update relative FP error scale
  double tolerance = 1e-6;   ///< allowed relative coefficient drift
};

/// Per-tuple cost (complex multiply-adds) of maintaining K coefficients of a
/// window-W DFT with exact recomputation every `interval` tuples.
double incremental_cost_per_tuple(std::size_t window, std::size_t retained,
                                  std::uint64_t interval) noexcept;

/// Per-tuple cost of the exact baseline (full FFT each tuple).
double exact_cost_per_tuple(std::size_t window) noexcept;

/// Probability that every retained coefficient's accumulated drift stays
/// within tolerance over one recompute interval, under the Gaussian
/// random-walk drift model.
double completion_probability(std::size_t retained, std::uint64_t interval,
                              const ControlVectorModel& model) noexcept;

/// Designs a control vector: the largest recompute interval (and the given
/// retained budget) such that the arithmetic reduction factor is at least
/// `min_reduction` and the completion probability is at least `min_completion`.
/// Mirrors the paper's choice of reduction 10 at completion > 0.95.
ControlVector design_control_vector(std::size_t window, std::size_t retained,
                                    double min_reduction, double min_completion,
                                    const ControlVectorModel& model = {});

}  // namespace dsjoin::dsp
