#include "dsjoin/dsp/control_vector.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace dsjoin::dsp {

namespace {

double log2d(std::size_t n) noexcept {
  return std::log2(static_cast<double>(std::max<std::size_t>(n, 2)));
}

// Standard normal CDF.
double phi(double z) noexcept { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

}  // namespace

double incremental_cost_per_tuple(std::size_t window, std::size_t retained,
                                  std::uint64_t interval) noexcept {
  const double recompute =
      interval == 0 ? 0.0
                    : static_cast<double>(window) * log2d(window) /
                          static_cast<double>(interval);
  return static_cast<double>(retained) + recompute;
}

double exact_cost_per_tuple(std::size_t window) noexcept {
  return static_cast<double>(window) * log2d(window);
}

double completion_probability(std::size_t retained, std::uint64_t interval,
                              const ControlVectorModel& model) noexcept {
  if (interval == 0) return 0.0;
  // Drift of one coefficient after `interval` updates ~ N(0, eta^2*interval).
  const double sigma = model.eta * std::sqrt(static_cast<double>(interval));
  if (sigma <= 0.0) return 1.0;
  const double p_one = 2.0 * phi(model.tolerance / sigma) - 1.0;
  // Independence across coefficients (conservative: errors are weakly
  // correlated through the shared input values).
  return std::pow(std::max(p_one, 0.0), static_cast<double>(retained));
}

ControlVector design_control_vector(std::size_t window, std::size_t retained,
                                    double min_reduction, double min_completion,
                                    const ControlVectorModel& model) {
  const double baseline = exact_cost_per_tuple(window);
  ControlVector best;
  // Grow the interval geometrically; cost falls and completion probability
  // falls with the interval, so take the largest interval still meeting the
  // completion constraint, provided the reduction constraint is met.
  for (std::uint64_t interval = 1; interval <= (1ull << 40); interval *= 2) {
    const double cost = incremental_cost_per_tuple(window, retained, interval);
    const double reduction = baseline / cost;
    const double completion = completion_probability(retained, interval, model);
    if (completion < min_completion) break;
    if (reduction >= min_reduction) {
      best = ControlVector{retained, interval, completion, reduction};
      return best;  // smallest interval already satisfying both: cheapest drift
    }
    best = ControlVector{retained, interval, completion, reduction};
  }
  return best;  // best effort when the reduction target is unreachable
}

}  // namespace dsjoin::dsp
