#include "dsjoin/dsp/histogram_spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dsjoin::dsp {

HistogramSpectrum::HistogramSpectrum(std::int64_t domain, std::uint32_t buckets,
                                     std::size_t retained)
    : domain_(domain), buckets_(buckets), coeffs_(retained, Complex{}),
      unit_(retained) {
  if (domain < 1 || buckets < 1) {
    throw std::invalid_argument("HistogramSpectrum geometry must be positive");
  }
  if (retained == 0 || retained > buckets / 2 + 1) {
    throw std::invalid_argument("retained must be in [1, buckets/2 + 1]");
  }
  for (std::size_t k = 0; k < retained; ++k) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(buckets);
    unit_[k] = Complex(std::cos(angle), std::sin(angle));
  }
}

std::uint32_t HistogramSpectrum::bucket_of(std::int64_t key) const noexcept {
  const std::int64_t clamped = std::clamp<std::int64_t>(key, 1, domain_);
  // (key-1) * D / domain, in [0, D).
  return static_cast<std::uint32_t>((clamped - 1) *
                                    static_cast<std::int64_t>(buckets_) / domain_);
}

void HistogramSpectrum::add(std::int64_t key, std::int64_t weight) {
  const std::uint32_t b = bucket_of(key);
  // F[k] += w * e^{-2*pi*i*k*b/D}; the phasor is built by repeated squaring
  // over the per-k unit steps via pow — but a simple direct evaluation is
  // clearer and the loop is short (K is small by construction).
  const double w = static_cast<double>(weight);
  const double base = -2.0 * std::numbers::pi * static_cast<double>(b) /
                      static_cast<double>(buckets_);
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    const double angle = base * static_cast<double>(k);
    coeffs_[k] += w * Complex(std::cos(angle), std::sin(angle));
  }
}

double HistogramSpectrum::estimate_join(std::span<const Complex> f,
                                        std::span<const Complex> g,
                                        std::uint32_t buckets) {
  const std::size_t k_max = std::min(f.size(), g.size());
  // Parseval over the retained low band plus its implied conjugate mirror:
  // sum_k F conj(G) is real for real histograms; mirrored terms contribute
  // the conjugate, i.e. 2*Re(...) for 0 < k < D/2.
  double acc = k_max > 0 ? (f[0] * std::conj(g[0])).real() : 0.0;
  for (std::size_t k = 1; k < k_max; ++k) {
    const bool self_mirrored = 2 * k == buckets;  // Nyquist bucket (even D)
    const double term = (f[k] * std::conj(g[k])).real();
    acc += self_mirrored ? term : 2.0 * term;
  }
  return acc / static_cast<double>(buckets);
}

double HistogramSpectrum::estimate_join(const HistogramSpectrum& f,
                                        const HistogramSpectrum& g) {
  return estimate_join(f.coefficients(), g.coefficients(), f.buckets_);
}

}  // namespace dsjoin::dsp
