#include "dsjoin/dsp/sliding_dft.hpp"

#include <algorithm>

#include "dsjoin/common/simd.hpp"
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dsjoin::dsp {

namespace {
// Phase tracking: rather than evaluating e^{-2*pi*i*k*p/W} with two trig
// calls per retained coefficient per push, each coefficient carries a unit
// phasor that is advanced by one unit step per push. Phasor magnitude drift
// is O(eps) per step; every ring wrap restores all phasors to exactly 1, and
// renormalization re-derives the table when enough incremental steps have
// accumulated (kPhaseResetSteps).
}  // namespace

SlidingDft::SlidingDft(std::size_t window, std::size_t retained)
    : window_(window),
      coeff_re_(retained, 0.0),
      coeff_im_(retained, 0.0),
      phase_re_(retained, 1.0),
      phase_im_(retained, 0.0),
      step_re_(retained),
      step_im_(retained),
      last_sent_(retained, Complex{}),
      ring_(window, 0.0),
      fft_(window) {
  if (window < 2) throw std::invalid_argument("SlidingDft window must be >= 2");
  if (retained == 0 || retained > window) {
    throw std::invalid_argument("SlidingDft retained must be in [1, window]");
  }
  for (std::size_t k = 0; k < retained; ++k) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(window_);
    step_re_[k] = std::cos(angle);
    step_im_[k] = std::sin(angle);
  }
}

void SlidingDft::backfill_first(double value) {
  // Backfill: treat the window as having always held the first value.
  // Avoids the artificial zero->signal step that would otherwise dominate
  // the spectrum (and any reconstruction) until the ring fills.
  std::fill(ring_.begin(), ring_.end(), value);
  std::fill(coeff_re_.begin(), coeff_re_.end(), 0.0);
  std::fill(coeff_im_.begin(), coeff_im_.end(), 0.0);
  coeff_re_[0] = value * static_cast<double>(window_);
  sum_ = value * static_cast<double>(window_);
  sum_sq_ = value * value * static_cast<double>(window_);
  ++count_;
  ++pushes_since_drain_;
  ++ring_pos_;
  for (std::size_t k = 0; k < phase_re_.size(); ++k) {
    Complex p(phase_re_[k], phase_im_[k]);
    p *= Complex(step_re_[k], step_im_[k]);
    phase_re_[k] = p.real();
    phase_im_[k] = p.imag();
  }
  ++phase_steps_;
  view_dirty_ = true;
}

void SlidingDft::reset_phases_exact() {
  // All phasors return to 1 exactly; resetting cancels magnitude drift.
  std::fill(phase_re_.begin(), phase_re_.end(), 1.0);
  std::fill(phase_im_.begin(), phase_im_.end(), 0.0);
  phase_steps_ = 0;
}

void SlidingDft::push(double value) {
  if (count_ == 0) {
    backfill_first(value);
    return;
  }
  const double old = ring_[ring_pos_];
  ring_[ring_pos_] = value;
  const double delta = value - old;
  if (delta != 0.0) {
    // Reference scalar formulation, kept in std::complex arithmetic: the
    // per-element operations (and therefore the results) are exactly those
    // of push_batch's fused structure-of-arrays loop.
    for (std::size_t k = 0; k < coeff_re_.size(); ++k) {
      Complex c(coeff_re_[k], coeff_im_[k]);
      c += delta * Complex(phase_re_[k], phase_im_[k]);
      coeff_re_[k] = c.real();
      coeff_im_[k] = c.imag();
    }
    view_dirty_ = true;
  }
  sum_ += delta;
  sum_sq_ += value * value - old * old;
  ++count_;
  ++pushes_since_drain_;
  ++ring_pos_;
  if (ring_pos_ == window_) {
    ring_pos_ = 0;
    reset_phases_exact();
  } else {
    for (std::size_t k = 0; k < phase_re_.size(); ++k) {
      Complex p(phase_re_[k], phase_im_[k]);
      p *= Complex(step_re_[k], step_im_[k]);
      phase_re_[k] = p.real();
      phase_im_[k] = p.imag();
    }
    ++phase_steps_;
  }
  if (renormalize_interval_ != 0 && count_ % renormalize_interval_ == 0) {
    renormalize();
  }
}

void SlidingDft::push_batch(std::span<const double> values) {
  std::size_t i = 0;
  if (values.empty()) return;
  if (count_ == 0) {
    backfill_first(values[0]);
    i = 1;
  }
  const std::size_t k_count = coeff_re_.size();
  double* const cr = coeff_re_.data();
  double* const ci = coeff_im_.data();
  double* const pr = phase_re_.data();
  double* const pi = phase_im_.data();
  const double* const ur = step_re_.data();
  const double* const ui = step_im_.data();
  for (; i < values.size(); ++i) {
    const double value = values[i];
    const double old = ring_[ring_pos_];
    ring_[ring_pos_] = value;
    const double delta = value - old;
    const bool wrap = ring_pos_ + 1 == window_;
    // One fused pass per push: coefficient delta-accumulation and phasor
    // advance touch each of the four SoA arrays once, via the runtime-
    // dispatched simd:: kernels. The kernel lanes evaluate the scalar
    // path's std::complex component formulas in the same operation order
    // with no FMA contraction, so results stay bit-identical at every
    // dispatch level (pinned by tests/core/batch_identity_test.cpp).
    if (delta != 0.0) {
      if (wrap) {
        common::simd::dft_accum(cr, ci, pr, pi, k_count, delta);
      } else {
        common::simd::dft_accum_rotate(cr, ci, pr, pi, ur, ui, k_count, delta);
      }
      view_dirty_ = true;
    } else if (!wrap) {
      common::simd::dft_rotate(pr, pi, ur, ui, k_count);
    }
    sum_ += delta;
    sum_sq_ += value * value - old * old;
    ++count_;
    ++pushes_since_drain_;
    if (wrap) {
      ring_pos_ = 0;
      reset_phases_exact();
    } else {
      ++ring_pos_;
      ++phase_steps_;
    }
    if (renormalize_interval_ != 0 && count_ % renormalize_interval_ == 0) {
      renormalize();
    }
  }
}

std::span<const Complex> SlidingDft::coefficients() const {
  if (view_dirty_) {
    coeff_view_.resize(coeff_re_.size());
    for (std::size_t k = 0; k < coeff_re_.size(); ++k) {
      coeff_view_[k] = Complex(coeff_re_[k], coeff_im_[k]);
    }
    view_dirty_ = false;
  }
  return coeff_view_;
}

double SlidingDft::mean() const noexcept {
  // The ring is value-backfilled from the first push, so all W slots are
  // meaningful as soon as count() > 0.
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(window_);
}

double SlidingDft::variance() const noexcept {
  if (count_ == 0) return 0.0;
  const double m = mean();
  const double var = sum_sq_ / static_cast<double>(window_) - m * m;
  return var > 0.0 ? var : 0.0;
}

void SlidingDft::renormalize() {
  std::vector<Complex> full(ring_.begin(), ring_.end());
  fft_.forward(full);
  for (std::size_t k = 0; k < coeff_re_.size(); ++k) {
    coeff_re_[k] = full[k].real();
    coeff_im_[k] = full[k].imag();
  }
  view_dirty_ = true;
  // Re-derive the phasor table only once enough incremental multiplies have
  // accumulated for drift to matter; below the threshold the table is
  // already exact (phase_steps_ == 0 right after a ring wrap, which is
  // where interval renormalizations land for window-aligned intervals) or
  // within ~kPhaseResetSteps * eps of exact.
  if (phase_steps_ >= kPhaseResetSteps) {
    for (std::size_t k = 0; k < phase_re_.size(); ++k) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(ring_pos_) /
                           static_cast<double>(window_);
      phase_re_[k] = std::cos(angle);
      phase_im_[k] = std::sin(angle);
    }
    phase_steps_ = 0;
  }
  // The exact sums also refresh the running moments.
  double s = 0.0, sq = 0.0;
  for (double v : ring_) {
    s += v;
    sq += v * v;
  }
  sum_ = s;
  sum_sq_ = sq;
}

std::vector<CoeffDelta> SlidingDft::drain_dirty(double threshold) {
  std::vector<CoeffDelta> out;
  for (std::size_t k = 0; k < coeff_re_.size(); ++k) {
    const Complex current(coeff_re_[k], coeff_im_[k]);
    if (std::abs(current - last_sent_[k]) > threshold) {
      out.push_back(CoeffDelta{static_cast<std::uint32_t>(k), current});
      last_sent_[k] = current;
    }
  }
  pushes_since_drain_ = 0;
  return out;
}

}  // namespace dsjoin::dsp
