#include "dsjoin/dsp/sliding_dft.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dsjoin::dsp {

namespace {
// Phase tracking: rather than evaluating e^{-2*pi*i*k*p/W} with two trig
// calls per retained coefficient per push, each coefficient carries a unit
// phasor that is advanced by one unit step per push. Phasor magnitude drift
// is O(eps) per step and is reset on every ring wrap and renormalization.
}  // namespace

SlidingDft::SlidingDft(std::size_t window, std::size_t retained)
    : window_(window),
      coeffs_(retained, Complex{}),
      last_sent_(retained, Complex{}),
      unit_steps_(retained),
      ring_(window, 0.0),
      fft_(window) {
  if (window < 2) throw std::invalid_argument("SlidingDft window must be >= 2");
  if (retained == 0 || retained > window) {
    throw std::invalid_argument("SlidingDft retained must be in [1, window]");
  }
  for (std::size_t k = 0; k < retained; ++k) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(window_);
    unit_steps_[k] = Complex(std::cos(angle), std::sin(angle));
  }
  phases_.assign(retained, Complex(1.0, 0.0));
}

void SlidingDft::push(double value) {
  if (count_ == 0) {
    // Backfill: treat the window as having always held the first value.
    // Avoids the artificial zero->signal step that would otherwise dominate
    // the spectrum (and any reconstruction) until the ring fills.
    std::fill(ring_.begin(), ring_.end(), value);
    coeffs_.assign(coeffs_.size(), Complex{});
    coeffs_[0] = Complex(value * static_cast<double>(window_), 0.0);
    sum_ = value * static_cast<double>(window_);
    sum_sq_ = value * value * static_cast<double>(window_);
    ++count_;
    ++pushes_since_drain_;
    ++ring_pos_;
    for (std::size_t k = 0; k < phases_.size(); ++k) phases_[k] *= unit_steps_[k];
    return;
  }
  const double old = ring_[ring_pos_];
  ring_[ring_pos_] = value;
  const double delta = value - old;
  if (delta != 0.0) {
    for (std::size_t k = 0; k < coeffs_.size(); ++k) {
      coeffs_[k] += delta * phases_[k];
    }
  }
  sum_ += delta;
  sum_sq_ += value * value - old * old;
  ++count_;
  ++pushes_since_drain_;
  ++ring_pos_;
  if (ring_pos_ == window_) {
    ring_pos_ = 0;
    // All phasors return to 1 exactly; resetting cancels magnitude drift.
    for (auto& p : phases_) p = Complex(1.0, 0.0);
  } else {
    for (std::size_t k = 0; k < phases_.size(); ++k) phases_[k] *= unit_steps_[k];
  }
  if (renormalize_interval_ != 0 && count_ % renormalize_interval_ == 0) {
    renormalize();
  }
}

double SlidingDft::mean() const noexcept {
  // The ring is value-backfilled from the first push, so all W slots are
  // meaningful as soon as count() > 0.
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(window_);
}

double SlidingDft::variance() const noexcept {
  if (count_ == 0) return 0.0;
  const double m = mean();
  const double var = sum_sq_ / static_cast<double>(window_) - m * m;
  return var > 0.0 ? var : 0.0;
}

void SlidingDft::renormalize() {
  std::vector<Complex> full(ring_.begin(), ring_.end());
  fft_.forward(full);
  for (std::size_t k = 0; k < coeffs_.size(); ++k) coeffs_[k] = full[k];
  // Recompute phasors exactly for the current ring position.
  for (std::size_t k = 0; k < phases_.size(); ++k) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) *
                         static_cast<double>(ring_pos_) / static_cast<double>(window_);
    phases_[k] = Complex(std::cos(angle), std::sin(angle));
  }
  // The exact sums also refresh the running moments.
  double s = 0.0, sq = 0.0;
  for (double v : ring_) {
    s += v;
    sq += v * v;
  }
  sum_ = s;
  sum_sq_ = sq;
}

std::vector<CoeffDelta> SlidingDft::drain_dirty(double threshold) {
  std::vector<CoeffDelta> out;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (std::abs(coeffs_[k] - last_sent_[k]) > threshold) {
      out.push_back(CoeffDelta{static_cast<std::uint32_t>(k), coeffs_[k]});
      last_sent_[k] = coeffs_[k];
    }
  }
  pushes_since_drain_ = 0;
  return out;
}

}  // namespace dsjoin::dsp
