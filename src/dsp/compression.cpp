#include "dsjoin/dsp/compression.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace dsjoin::dsp {

std::size_t retained_for_kappa(std::size_t window, double kappa) noexcept {
  if (kappa <= 1.0) return window / 2 + 1;
  auto k = static_cast<std::size_t>(static_cast<double>(window) / kappa);
  k = std::max<std::size_t>(k, 1);
  return std::min(k, window / 2 + 1);
}

CompressedSpectrum compress(std::span<const double> signal, double kappa,
                            const Fft& fft) {
  assert(fft.size() == signal.size());
  const std::size_t keep = retained_for_kappa(signal.size(), kappa);
  std::vector<Complex> full = fft.forward_real(signal);
  CompressedSpectrum out;
  out.window = static_cast<std::uint32_t>(signal.size());
  out.coeffs.assign(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(keep));
  return out;
}

std::vector<double> reconstruct(const CompressedSpectrum& spectrum) {
  const std::size_t w = spectrum.window;
  assert(w >= 2);
  assert(spectrum.coeffs.size() <= w / 2 + 1);
  std::vector<Complex> full(w, Complex{});
  full[0] = spectrum.coeffs.empty() ? Complex{} : spectrum.coeffs[0];
  for (std::size_t k = 1; k < spectrum.coeffs.size(); ++k) {
    full[k] = spectrum.coeffs[k];
    // Mirror; at k == w/2 (Nyquist, even w) the mirror is the same slot and
    // the coefficient of a real signal is already real.
    if (w - k != k) full[w - k] = std::conj(spectrum.coeffs[k]);
  }
  const Fft& fft = Fft::plan(w);
  fft.inverse(full);
  std::vector<double> out(w);
  for (std::size_t n = 0; n < w; ++n) out[n] = full[n].real();
  return out;
}

std::vector<std::int64_t> reconstruct_rounded(const CompressedSpectrum& spectrum) {
  const std::vector<double> values = reconstruct(spectrum);
  std::vector<std::int64_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = static_cast<std::int64_t>(std::llround(values[i]));
  }
  return out;
}

std::vector<double> squared_errors(std::span<const double> original,
                                   std::span<const double> approx) {
  assert(original.size() == approx.size());
  std::vector<double> out(original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double d = original[i] - approx[i];
    out[i] = d * d;
  }
  return out;
}

double mean_squared_error(std::span<const double> original,
                          std::span<const double> approx) {
  assert(original.size() == approx.size());
  if (original.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double d = original[i] - approx[i];
    acc += d * d;
  }
  return acc / static_cast<double>(original.size());
}

double lossless_fraction(std::span<const double> original,
                         std::span<const double> approx) {
  assert(original.size() == approx.size());
  if (original.empty()) return 1.0;
  std::size_t exact = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (std::llround(original[i]) == std::llround(approx[i])) ++exact;
  }
  return static_cast<double>(exact) / static_cast<double>(original.size());
}

double recommend_kappa(std::span<const double> signal, double mse_bound,
                       const Fft& fft) {
  double best = 1.0;
  for (double kappa = 2.0; retained_for_kappa(signal.size(), kappa) >= 1;
       kappa *= 2.0) {
    const CompressedSpectrum cs = compress(signal, kappa, fft);
    const std::vector<double> approx = reconstruct(cs);
    if (mean_squared_error(signal, approx) < mse_bound) {
      best = kappa;
    } else {
      break;  // MSE grows monotonically with kappa for low-pass truncation
    }
    if (retained_for_kappa(signal.size(), kappa * 2.0) ==
        retained_for_kappa(signal.size(), kappa)) {
      break;  // reached the single-coefficient floor
    }
  }
  return best;
}

std::int32_t quant_mantissa_max(unsigned bits) noexcept {
  return bits == 8 ? 127 : 32767;
}

double quant_scale(std::span<const Complex> values) noexcept {
  double scale = 0.0;
  for (const Complex& v : values) {
    const double re = std::abs(v.real());
    const double im = std::abs(v.imag());
    // NaN components must poison the scale so choose_quant_bits falls back
    // to f64; max() alone would silently drop them.
    if (!(re <= scale)) scale = re;
    if (!(im <= scale)) scale = im;
    if (std::isnan(re) || std::isnan(im)) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return scale;
}

double predicted_quant_mse(double scale, std::size_t retained,
                           std::size_t window, unsigned bits) noexcept {
  if (window == 0) return std::numeric_limits<double>::infinity();
  const double q = static_cast<double>(quant_mantissa_max(bits));
  const double per_coeff = scale / (static_cast<double>(window) * q);
  return 2.0 / 3.0 * static_cast<double>(retained) * per_coeff * per_coeff;
}

unsigned choose_quant_bits(double scale, std::size_t retained,
                           std::size_t window, unsigned preferred_bits) noexcept {
  if (preferred_bits == 0) return 0;
  if (!std::isfinite(scale)) return 0;
  for (unsigned bits = preferred_bits; bits <= 16; bits *= 2) {
    if (predicted_quant_mse(scale, retained, window, bits) <= kQuantMseBudget) {
      return bits;
    }
  }
  return 0;
}

std::int32_t quantize_component(double v, double scale, unsigned bits) noexcept {
  if (scale <= 0.0) return 0;
  const std::int32_t q = quant_mantissa_max(bits);
  const long m = std::lround(v / scale * static_cast<double>(q));
  return static_cast<std::int32_t>(
      std::clamp(m, static_cast<long>(-q), static_cast<long>(q)));
}

double dequantize_component(std::int32_t m, double scale, unsigned bits) noexcept {
  if (scale <= 0.0) return 0.0;
  return static_cast<double>(m) *
         (scale / static_cast<double>(quant_mantissa_max(bits)));
}

}  // namespace dsjoin::dsp
