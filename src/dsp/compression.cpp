#include "dsjoin/dsp/compression.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dsjoin::dsp {

std::size_t retained_for_kappa(std::size_t window, double kappa) noexcept {
  if (kappa <= 1.0) return window / 2 + 1;
  auto k = static_cast<std::size_t>(static_cast<double>(window) / kappa);
  k = std::max<std::size_t>(k, 1);
  return std::min(k, window / 2 + 1);
}

CompressedSpectrum compress(std::span<const double> signal, double kappa,
                            const Fft& fft) {
  assert(fft.size() == signal.size());
  const std::size_t keep = retained_for_kappa(signal.size(), kappa);
  std::vector<Complex> full = fft.forward_real(signal);
  CompressedSpectrum out;
  out.window = static_cast<std::uint32_t>(signal.size());
  out.coeffs.assign(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(keep));
  return out;
}

std::vector<double> reconstruct(const CompressedSpectrum& spectrum) {
  const std::size_t w = spectrum.window;
  assert(w >= 2);
  assert(spectrum.coeffs.size() <= w / 2 + 1);
  std::vector<Complex> full(w, Complex{});
  full[0] = spectrum.coeffs.empty() ? Complex{} : spectrum.coeffs[0];
  for (std::size_t k = 1; k < spectrum.coeffs.size(); ++k) {
    full[k] = spectrum.coeffs[k];
    // Mirror; at k == w/2 (Nyquist, even w) the mirror is the same slot and
    // the coefficient of a real signal is already real.
    if (w - k != k) full[w - k] = std::conj(spectrum.coeffs[k]);
  }
  const Fft& fft = Fft::plan(w);
  fft.inverse(full);
  std::vector<double> out(w);
  for (std::size_t n = 0; n < w; ++n) out[n] = full[n].real();
  return out;
}

std::vector<std::int64_t> reconstruct_rounded(const CompressedSpectrum& spectrum) {
  const std::vector<double> values = reconstruct(spectrum);
  std::vector<std::int64_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = static_cast<std::int64_t>(std::llround(values[i]));
  }
  return out;
}

std::vector<double> squared_errors(std::span<const double> original,
                                   std::span<const double> approx) {
  assert(original.size() == approx.size());
  std::vector<double> out(original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double d = original[i] - approx[i];
    out[i] = d * d;
  }
  return out;
}

double mean_squared_error(std::span<const double> original,
                          std::span<const double> approx) {
  assert(original.size() == approx.size());
  if (original.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double d = original[i] - approx[i];
    acc += d * d;
  }
  return acc / static_cast<double>(original.size());
}

double lossless_fraction(std::span<const double> original,
                         std::span<const double> approx) {
  assert(original.size() == approx.size());
  if (original.empty()) return 1.0;
  std::size_t exact = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (std::llround(original[i]) == std::llround(approx[i])) ++exact;
  }
  return static_cast<double>(exact) / static_cast<double>(original.size());
}

double recommend_kappa(std::span<const double> signal, double mse_bound,
                       const Fft& fft) {
  double best = 1.0;
  for (double kappa = 2.0; retained_for_kappa(signal.size(), kappa) >= 1;
       kappa *= 2.0) {
    const CompressedSpectrum cs = compress(signal, kappa, fft);
    const std::vector<double> approx = reconstruct(cs);
    if (mean_squared_error(signal, approx) < mse_bound) {
      best = kappa;
    } else {
      break;  // MSE grows monotonically with kappa for low-pass truncation
    }
    if (retained_for_kappa(signal.size(), kappa * 2.0) ==
        retained_for_kappa(signal.size(), kappa)) {
      break;  // reached the single-coefficient floor
    }
  }
  return best;
}

}  // namespace dsjoin::dsp
