#include "dsjoin/core/config.hpp"

namespace dsjoin::core {

namespace {

// The policy enum travels as its name, not its ordinal, so a config is
// readable in logs and the encoding survives enum reordering.

void serialize_wan(const net::WanProfile& wan, common::BufferWriter& out) {
  out.write_f64(wan.latency_min_s);
  out.write_f64(wan.latency_max_s);
  out.write_f64(wan.bandwidth_bps);
  out.write_u8(static_cast<std::uint8_t>(wan.scope));
  out.write_u8(wan.pause_burst_shaping ? 1 : 0);
  out.write_u8(wan.unlimited_bandwidth ? 1 : 0);
  out.write_f64(wan.drop_probability);
  out.write_f64(wan.corrupt_probability);
}

common::Result<net::WanProfile> deserialize_wan(common::BufferReader& in) {
  net::WanProfile wan;
  auto lat_min = in.read_f64();
  if (!lat_min) return lat_min.status();
  auto lat_max = in.read_f64();
  if (!lat_max) return lat_max.status();
  auto bps = in.read_f64();
  if (!bps) return bps.status();
  auto scope = in.read_u8();
  if (!scope) return scope.status();
  if (scope.value() > 1) {
    return common::Status(common::ErrorCode::kDataLoss, "bad bandwidth scope");
  }
  auto pause = in.read_u8();
  if (!pause) return pause.status();
  auto unlimited = in.read_u8();
  if (!unlimited) return unlimited.status();
  auto drop = in.read_f64();
  if (!drop) return drop.status();
  auto corrupt = in.read_f64();
  if (!corrupt) return corrupt.status();
  wan.latency_min_s = lat_min.value();
  wan.latency_max_s = lat_max.value();
  wan.bandwidth_bps = bps.value();
  wan.scope = static_cast<net::WanProfile::BandwidthScope>(scope.value());
  wan.pause_burst_shaping = pause.value() != 0;
  wan.unlimited_bandwidth = unlimited.value() != 0;
  wan.drop_probability = drop.value();
  wan.corrupt_probability = corrupt.value();
  return wan;
}

}  // namespace

void serialize_config(const SystemConfig& config, common::BufferWriter& out) {
  out.write_u32(config.nodes);
  out.write_u64(config.seed);
  serialize_wan(config.wan, out);
  out.write_string(config.workload);
  out.write_u32(config.regions);
  out.write_f64(config.locality);
  out.write_f64(config.noise);
  out.write_i64(config.domain);
  out.write_f64(config.arrivals_per_second);
  out.write_u64(config.tuples_per_node);
  out.write_f64(config.join_half_width_s);
  out.write_f64(config.retention_margin_s);
  out.write_u32(config.dft_window);
  out.write_f64(config.kappa);
  out.write_u32(config.summary_epoch_tuples);
  out.write_f64(config.summary_sync_epoch_s);
  out.write_u32(config.stale_flush_epochs);
  out.write_u32(config.piggyback_max_coeffs);
  out.write_i64(config.membership_tolerance);
  out.write_f64(config.coeff_delta_threshold);
  out.write_string(to_string(config.policy));
  out.write_f64(config.throttle);
  out.write_f64(config.uniform_detection_cv);
  out.write_f64(config.max_backlog_s);
  out.write_u32(config.coalesce_frames);
  out.write_u32(config.coalesce_bytes);
  out.write_f64(config.coalesce_linger_s);
  out.write_u32(config.worker_threads);
  out.write_u8(config.oracle_enabled ? 1 : 0);
  out.write_f64(config.online_target_eps);
  out.write_f64(config.audit_probability);
  out.write_f64(config.controller_gain);
  out.write_u32(config.controller_interval_tuples);
  out.write_u32(config.summary_quant_bits);
  out.write_u32(config.sample_capacity);
  out.write_u32(config.sample_strata);
}

common::Result<SystemConfig> deserialize_config(common::BufferReader& in) {
  SystemConfig config;
#define DSJOIN_READ(field, reader)          \
  do {                                      \
    auto r = in.reader();                   \
    if (!r) return r.status();              \
    config.field = std::move(r).value();    \
  } while (0)
  DSJOIN_READ(nodes, read_u32);
  DSJOIN_READ(seed, read_u64);
  {
    auto wan = deserialize_wan(in);
    if (!wan) return wan.status();
    config.wan = wan.value();
  }
  DSJOIN_READ(workload, read_string);
  DSJOIN_READ(regions, read_u32);
  DSJOIN_READ(locality, read_f64);
  DSJOIN_READ(noise, read_f64);
  DSJOIN_READ(domain, read_i64);
  DSJOIN_READ(arrivals_per_second, read_f64);
  DSJOIN_READ(tuples_per_node, read_u64);
  DSJOIN_READ(join_half_width_s, read_f64);
  DSJOIN_READ(retention_margin_s, read_f64);
  DSJOIN_READ(dft_window, read_u32);
  DSJOIN_READ(kappa, read_f64);
  DSJOIN_READ(summary_epoch_tuples, read_u32);
  DSJOIN_READ(summary_sync_epoch_s, read_f64);
  if (!std::isfinite(config.summary_sync_epoch_s) ||
      config.summary_sync_epoch_s <= 0.0) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "summary sync epoch out of range");
  }
  DSJOIN_READ(stale_flush_epochs, read_u32);
  DSJOIN_READ(piggyback_max_coeffs, read_u32);
  DSJOIN_READ(membership_tolerance, read_i64);
  DSJOIN_READ(coeff_delta_threshold, read_f64);
  {
    auto policy = in.read_string();
    if (!policy) return policy.status();
    try {
      config.policy = policy_from_string(policy.value());
    } catch (const std::invalid_argument&) {
      return common::Status(common::ErrorCode::kDataLoss,
                            "unknown policy: " + policy.value());
    }
  }
  DSJOIN_READ(throttle, read_f64);
  DSJOIN_READ(uniform_detection_cv, read_f64);
  DSJOIN_READ(max_backlog_s, read_f64);
  DSJOIN_READ(coalesce_frames, read_u32);
  DSJOIN_READ(coalesce_bytes, read_u32);
  DSJOIN_READ(coalesce_linger_s, read_f64);
  DSJOIN_READ(worker_threads, read_u32);
  {
    auto oracle = in.read_u8();
    if (!oracle) return oracle.status();
    config.oracle_enabled = oracle.value() != 0;
  }
  DSJOIN_READ(online_target_eps, read_f64);
  DSJOIN_READ(audit_probability, read_f64);
  DSJOIN_READ(controller_gain, read_f64);
  DSJOIN_READ(controller_interval_tuples, read_u32);
  DSJOIN_READ(summary_quant_bits, read_u32);
  if (config.summary_quant_bits != 0 && config.summary_quant_bits != 8 &&
      config.summary_quant_bits != 16) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "summary quant bits must be 0, 8 or 16");
  }
  DSJOIN_READ(sample_capacity, read_u32);
  // The sample-summary wire format counts keys in a u16 and thinning can
  // briefly hold ~2x capacity, so the live sample must stay under 32768.
  if (config.sample_capacity > (1u << 15)) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "sample capacity out of range");
  }
  DSJOIN_READ(sample_strata, read_u32);
  if (config.sample_strata == 0 || config.sample_strata > 4096) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "sample strata must be in [1, 4096]");
  }
#undef DSJOIN_READ
  return config;
}

}  // namespace dsjoin::core
