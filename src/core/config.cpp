#include "dsjoin/core/config.hpp"

#include <set>
#include <stdexcept>

#include "dsjoin/common/strformat.hpp"

namespace dsjoin::core {

namespace {

// The policy enum travels as its name, not its ordinal, so a config is
// readable in logs and the encoding survives enum reordering.

void serialize_wan(const net::WanProfile& wan, common::BufferWriter& out) {
  out.write_f64(wan.latency_min_s);
  out.write_f64(wan.latency_max_s);
  out.write_f64(wan.bandwidth_bps);
  out.write_u8(static_cast<std::uint8_t>(wan.scope));
  out.write_u8(wan.pause_burst_shaping ? 1 : 0);
  out.write_u8(wan.unlimited_bandwidth ? 1 : 0);
  out.write_f64(wan.drop_probability);
  out.write_f64(wan.corrupt_probability);
}

common::Result<net::WanProfile> deserialize_wan(common::BufferReader& in) {
  net::WanProfile wan;
  auto lat_min = in.read_f64();
  if (!lat_min) return lat_min.status();
  auto lat_max = in.read_f64();
  if (!lat_max) return lat_max.status();
  auto bps = in.read_f64();
  if (!bps) return bps.status();
  auto scope = in.read_u8();
  if (!scope) return scope.status();
  if (scope.value() > 1) {
    return common::Status(common::ErrorCode::kDataLoss, "bad bandwidth scope");
  }
  auto pause = in.read_u8();
  if (!pause) return pause.status();
  auto unlimited = in.read_u8();
  if (!unlimited) return unlimited.status();
  auto drop = in.read_f64();
  if (!drop) return drop.status();
  auto corrupt = in.read_f64();
  if (!corrupt) return corrupt.status();
  wan.latency_min_s = lat_min.value();
  wan.latency_max_s = lat_max.value();
  wan.bandwidth_bps = bps.value();
  wan.scope = static_cast<net::WanProfile::BandwidthScope>(scope.value());
  wan.pause_burst_shaping = pause.value() != 0;
  wan.unlimited_bandwidth = unlimited.value() != 0;
  wan.drop_probability = drop.value();
  wan.corrupt_probability = corrupt.value();
  return wan;
}

}  // namespace

SummaryFamily family_of(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kBase:
    case PolicyKind::kRoundRobin:
      return SummaryFamily::kNone;
    case PolicyKind::kDft:
    case PolicyKind::kDftt:
      return SummaryFamily::kCoeff;
    case PolicyKind::kBloom:
      return SummaryFamily::kBloom;
    case PolicyKind::kSketch:
      return SummaryFamily::kSketch;
    case PolicyKind::kSpectrum:
      return SummaryFamily::kSpectrum;
    case PolicyKind::kSample:
      return SummaryFamily::kSample;
  }
  return SummaryFamily::kNone;
}

std::vector<QuerySpec> effective_queries(const SystemConfig& config) {
  if (!config.queries.empty()) return config.queries;
  QuerySpec spec;
  spec.id = 0;
  spec.policy = config.policy;
  spec.throttle = config.throttle;
  spec.join_half_width_s = config.join_half_width_s;
  return {spec};
}

bool multi_query_mode(const SystemConfig& config) {
  return config.queries.size() > 1;
}

SystemConfig query_config(const SystemConfig& base, const QuerySpec& spec) {
  SystemConfig view = base;
  view.policy = spec.policy;
  view.throttle = spec.throttle;
  view.join_half_width_s = spec.join_half_width_s;
  view.queries.clear();
  return view;
}

double max_join_half_width(const SystemConfig& config) {
  double width = 0.0;
  for (const auto& spec : effective_queries(config)) {
    width = std::max(width, spec.join_half_width_s);
  }
  return width;
}

common::Status validate_config(const SystemConfig& config) {
  using common::ErrorCode;
  using common::str_format;
  auto fail = [](std::string message) {
    return common::Status(ErrorCode::kInvalidArgument, std::move(message));
  };
  if (config.nodes < 2) {
    return fail(str_format("nodes must be >= 2, got %u", config.nodes));
  }
  if (config.coalesce_frames < 1 || config.coalesce_frames > 0xFFFF) {
    return fail(str_format("coalesce-frames must be in [1, 65535], got %u",
                           config.coalesce_frames));
  }
  if (config.coalesce_bytes < 1 || config.coalesce_bytes > (1u << 24)) {
    return fail(str_format("coalesce-bytes must be in [1, %d], got %u",
                           1 << 24, config.coalesce_bytes));
  }
  if (!std::isfinite(config.summary_sync_epoch_s) ||
      !(config.summary_sync_epoch_s > 0.0) ||
      config.summary_sync_epoch_s > 3600.0) {
    return fail(str_format("summary-sync-epoch must be in (0, 3600], got %g",
                           config.summary_sync_epoch_s));
  }
  if (config.summary_quant_bits != 0 && config.summary_quant_bits != 8 &&
      config.summary_quant_bits != 16) {
    return fail(str_format("quant-bits must be 0, 8 or 16, got %u",
                           config.summary_quant_bits));
  }
  // The sample-summary wire format counts keys in a u16 and thinning can
  // briefly hold ~2x capacity, so the live sample must stay under 32768.
  if (config.sample_capacity > (1u << 15)) {
    return fail(str_format("sample-capacity must be in [0, %d], got %u",
                           1 << 15, config.sample_capacity));
  }
  if (config.sample_strata == 0 || config.sample_strata > 4096) {
    return fail(str_format("sample-strata must be in [1, 4096], got %u",
                           config.sample_strata));
  }
  if (!std::isfinite(config.throttle) || config.throttle < 0.0 ||
      config.throttle > 1.0) {
    return fail(str_format("throttle must be in [0, 1], got %g",
                           config.throttle));
  }
  if (!std::isfinite(config.join_half_width_s) ||
      !(config.join_half_width_s > 0.0)) {
    return fail(str_format("half-width must be > 0, got %g",
                           config.join_half_width_s));
  }
  if (config.queries.size() > kMaxQueries) {
    return fail(str_format("at most %zu queries per run, got %zu",
                           kMaxQueries, config.queries.size()));
  }
  std::set<std::uint32_t> ids;
  for (const auto& spec : config.queries) {
    if (!ids.insert(spec.id).second) {
      return fail(str_format("duplicate query id %u", spec.id));
    }
    if (!std::isfinite(spec.throttle) || spec.throttle < 0.0 ||
        spec.throttle > 1.0) {
      return fail(str_format("query %u: throttle must be in [0, 1], got %g",
                             spec.id, spec.throttle));
    }
    if (!std::isfinite(spec.join_half_width_s) ||
        !(spec.join_half_width_s > 0.0)) {
      return fail(str_format("query %u: half-width must be > 0, got %g",
                             spec.id, spec.join_half_width_s));
    }
  }
  return common::Status::ok();
}

common::Result<std::vector<QuerySpec>> parse_queries(
    const std::string& text, const SystemConfig& base) {
  std::vector<QuerySpec> specs;
  if (text.empty()) return specs;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find(';', pos), text.size());
    std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) {
      return common::Status(common::ErrorCode::kInvalidArgument,
                            "empty query spec in --queries");
    }
    QuerySpec spec;
    spec.id = static_cast<std::uint32_t>(specs.size());
    spec.throttle = base.throttle;
    spec.join_half_width_s = base.join_half_width_s;
    // POLICY[:throttle[:half_width_s]]
    const std::size_t c1 = item.find(':');
    const std::string policy_name = item.substr(0, c1);
    try {
      spec.policy = policy_from_string(policy_name);
    } catch (const std::invalid_argument&) {
      return common::Status(
          common::ErrorCode::kInvalidArgument,
          "unknown policy '" + policy_name + "' in --queries (expected one of "
          + policy_names_csv() + ")");
    }
    try {
      if (c1 != std::string::npos) {
        const std::size_t c2 = item.find(':', c1 + 1);
        const std::string throttle_text =
            item.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                        : c2 - c1 - 1);
        if (!throttle_text.empty()) spec.throttle = std::stod(throttle_text);
        if (c2 != std::string::npos) {
          const std::string width_text = item.substr(c2 + 1);
          if (!width_text.empty()) {
            spec.join_half_width_s = std::stod(width_text);
          }
        }
      }
    } catch (const std::exception&) {
      return common::Status(common::ErrorCode::kInvalidArgument,
                            "malformed query spec '" + item +
                                "' in --queries (want POLICY[:throttle"
                                "[:half_width_s]])");
    }
    specs.push_back(spec);
    if (end == text.size()) break;
  }
  return specs;
}

void serialize_config(const SystemConfig& config, common::BufferWriter& out) {
  out.write_u32(config.nodes);
  out.write_u64(config.seed);
  serialize_wan(config.wan, out);
  out.write_string(config.workload);
  out.write_u32(config.regions);
  out.write_f64(config.locality);
  out.write_f64(config.noise);
  out.write_i64(config.domain);
  out.write_f64(config.arrivals_per_second);
  out.write_u64(config.tuples_per_node);
  out.write_f64(config.join_half_width_s);
  out.write_f64(config.retention_margin_s);
  out.write_u32(config.dft_window);
  out.write_f64(config.kappa);
  out.write_u32(config.summary_epoch_tuples);
  out.write_f64(config.summary_sync_epoch_s);
  out.write_u32(config.stale_flush_epochs);
  out.write_u32(config.piggyback_max_coeffs);
  out.write_i64(config.membership_tolerance);
  out.write_f64(config.coeff_delta_threshold);
  out.write_string(to_string(config.policy));
  out.write_f64(config.throttle);
  out.write_f64(config.uniform_detection_cv);
  out.write_f64(config.max_backlog_s);
  out.write_u32(config.coalesce_frames);
  out.write_u32(config.coalesce_bytes);
  out.write_f64(config.coalesce_linger_s);
  out.write_u32(config.worker_threads);
  out.write_u8(config.oracle_enabled ? 1 : 0);
  out.write_f64(config.online_target_eps);
  out.write_f64(config.audit_probability);
  out.write_f64(config.controller_gain);
  out.write_u32(config.controller_interval_tuples);
  out.write_u32(config.summary_quant_bits);
  out.write_u32(config.sample_capacity);
  out.write_u32(config.sample_strata);
  // Protocol v6: the registered query list (empty = single-query mode).
  out.write_u32(static_cast<std::uint32_t>(config.queries.size()));
  for (const auto& spec : config.queries) {
    out.write_u32(spec.id);
    out.write_string(to_string(spec.policy));
    out.write_f64(spec.throttle);
    out.write_f64(spec.join_half_width_s);
  }
}

common::Result<SystemConfig> deserialize_config(common::BufferReader& in) {
  SystemConfig config;
#define DSJOIN_READ(field, reader)          \
  do {                                      \
    auto r = in.reader();                   \
    if (!r) return r.status();              \
    config.field = std::move(r).value();    \
  } while (0)
  DSJOIN_READ(nodes, read_u32);
  DSJOIN_READ(seed, read_u64);
  {
    auto wan = deserialize_wan(in);
    if (!wan) return wan.status();
    config.wan = wan.value();
  }
  DSJOIN_READ(workload, read_string);
  DSJOIN_READ(regions, read_u32);
  DSJOIN_READ(locality, read_f64);
  DSJOIN_READ(noise, read_f64);
  DSJOIN_READ(domain, read_i64);
  DSJOIN_READ(arrivals_per_second, read_f64);
  DSJOIN_READ(tuples_per_node, read_u64);
  DSJOIN_READ(join_half_width_s, read_f64);
  DSJOIN_READ(retention_margin_s, read_f64);
  DSJOIN_READ(dft_window, read_u32);
  DSJOIN_READ(kappa, read_f64);
  DSJOIN_READ(summary_epoch_tuples, read_u32);
  DSJOIN_READ(summary_sync_epoch_s, read_f64);
  if (!std::isfinite(config.summary_sync_epoch_s) ||
      config.summary_sync_epoch_s <= 0.0) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "summary sync epoch out of range");
  }
  DSJOIN_READ(stale_flush_epochs, read_u32);
  DSJOIN_READ(piggyback_max_coeffs, read_u32);
  DSJOIN_READ(membership_tolerance, read_i64);
  DSJOIN_READ(coeff_delta_threshold, read_f64);
  {
    auto policy = in.read_string();
    if (!policy) return policy.status();
    try {
      config.policy = policy_from_string(policy.value());
    } catch (const std::invalid_argument&) {
      return common::Status(common::ErrorCode::kDataLoss,
                            "unknown policy: " + policy.value());
    }
  }
  DSJOIN_READ(throttle, read_f64);
  DSJOIN_READ(uniform_detection_cv, read_f64);
  DSJOIN_READ(max_backlog_s, read_f64);
  DSJOIN_READ(coalesce_frames, read_u32);
  DSJOIN_READ(coalesce_bytes, read_u32);
  DSJOIN_READ(coalesce_linger_s, read_f64);
  DSJOIN_READ(worker_threads, read_u32);
  {
    auto oracle = in.read_u8();
    if (!oracle) return oracle.status();
    config.oracle_enabled = oracle.value() != 0;
  }
  DSJOIN_READ(online_target_eps, read_f64);
  DSJOIN_READ(audit_probability, read_f64);
  DSJOIN_READ(controller_gain, read_f64);
  DSJOIN_READ(controller_interval_tuples, read_u32);
  DSJOIN_READ(summary_quant_bits, read_u32);
  if (config.summary_quant_bits != 0 && config.summary_quant_bits != 8 &&
      config.summary_quant_bits != 16) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "summary quant bits must be 0, 8 or 16");
  }
  DSJOIN_READ(sample_capacity, read_u32);
  // The sample-summary wire format counts keys in a u16 and thinning can
  // briefly hold ~2x capacity, so the live sample must stay under 32768.
  if (config.sample_capacity > (1u << 15)) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "sample capacity out of range");
  }
  DSJOIN_READ(sample_strata, read_u32);
  if (config.sample_strata == 0 || config.sample_strata > 4096) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "sample strata must be in [1, 4096]");
  }
  {
    auto count = in.read_u32();
    if (!count) return count.status();
    if (count.value() > kMaxQueries) {
      return common::Status(common::ErrorCode::kDataLoss,
                            "query count out of range");
    }
    config.queries.reserve(count.value());
    for (std::uint32_t i = 0; i < count.value(); ++i) {
      QuerySpec spec;
      auto id = in.read_u32();
      if (!id) return id.status();
      spec.id = id.value();
      auto policy = in.read_string();
      if (!policy) return policy.status();
      try {
        spec.policy = policy_from_string(policy.value());
      } catch (const std::invalid_argument&) {
        return common::Status(common::ErrorCode::kDataLoss,
                              "unknown query policy: " + policy.value());
      }
      auto throttle = in.read_f64();
      if (!throttle) return throttle.status();
      spec.throttle = throttle.value();
      auto width = in.read_f64();
      if (!width) return width.status();
      spec.join_half_width_s = width.value();
      config.queries.push_back(spec);
    }
  }
#undef DSJOIN_READ
  // One shared validity gate for everything the field-level checks above
  // do not cover (query ranges, throttle bounds, node count): a config
  // that decodes but fails validation is corrupt from the wire's view.
  if (auto valid = validate_config(config); !valid.is_ok()) {
    return common::Status(common::ErrorCode::kDataLoss, valid.message());
  }
  return config;
}

}  // namespace dsjoin::core
