#include "dsjoin/core/system.hpp"

#include <cassert>
#include <stdexcept>

namespace dsjoin::core {

namespace {
std::size_t slot(net::NodeId node, stream::StreamSide side) {
  return static_cast<std::size_t>(node) * 2 + static_cast<std::size_t>(side);
}
}  // namespace

DspSystem::DspSystem(const SystemConfig& config)
    : config_(config), oracle_(config.join_half_width_s) {
  if (config.nodes < 2) {
    throw std::invalid_argument("a distributed join needs at least 2 nodes");
  }
  transport_ = std::make_unique<net::SimTransport>(queue_, config.nodes,
                                                   config.wan, config.seed ^ 0x77);

  stream::WorkloadParams params;
  params.nodes = config.nodes;
  params.regions = config.regions;
  params.domain = config.domain;
  params.locality = config.locality;
  params.noise = config.noise;
  params.seed = config.seed;
  workload_ = stream::make_workload(config.workload, params);

  metrics_.set_node_count(config.nodes);
  nodes_.resize(config.nodes);
  arrival_scratch_.resize(config.nodes);
  for (net::NodeId id = 0; id < config.nodes; ++id) {
    install_node(id);
  }

  common::Xoshiro256 root(config.seed ^ 0xa771'7a1eULL);
  arrival_rngs_.reserve(static_cast<std::size_t>(config.nodes) * 2);
  for (std::uint32_t i = 0; i < config.nodes * 2; ++i) {
    arrival_rngs_.push_back(root.fork());
  }
  emitted_.assign(static_cast<std::size_t>(config.nodes) * 2, 0);
}

DspSystem::~DspSystem() = default;

void DspSystem::install_node(net::NodeId id) {
  nodes_[id] = std::make_unique<Node>(config_, id, *transport_, metrics_);
  transport_->register_handler(id, [this, id](net::Frame&& frame) {
    // The node is re-resolved when the deferred work runs, so frames still
    // in flight across a crash-and-restart reach the fresh instance.
    const double now = queue_.now();
    defer_node_task(id, now,
                    [this, id, now, f = std::move(frame)]() mutable {
                      nodes_[id]->on_frame(std::move(f), now);
                    });
  });
}

void DspSystem::defer_node_task(net::NodeId node, double when,
                                std::function<void()> task) {
  if (!epoch_open_) {
    task();
    return;
  }
  epoch_tasks_.push_back(EpochTask{node, when, std::move(task)});
}

void DspSystem::defer_arrival(net::NodeId node, double when,
                              const stream::Tuple& tuple) {
  if (!epoch_open_) {
    nodes_[node]->on_local_tuple(tuple, when);
    return;
  }
  epoch_tasks_.push_back(EpochTask{node, when, {}, true, tuple});
}

void DspSystem::schedule_restart(net::NodeId node, double at) {
  assert(!ran_ && "schedule restarts before run()");
  assert(node < config_.nodes);
  pending_restarts_.emplace_back(node, at);
}

void DspSystem::schedule_arrival(net::NodeId node, stream::StreamSide side,
                                 double at) {
  queue_.schedule_at(at, [this, node, side] {
    const std::size_t s = slot(node, side);
    if (emitted_[s] >= config_.tuples_per_node) return;

    // Backpressure: a node whose outgoing links are saturated stalls its
    // source (bounded send queue). This is what lets BASE's O(N^2) traffic
    // collapse its throughput in Figure 11 instead of queueing unboundedly.
    const double now = queue_.now();
    if (config_.max_backlog_s > 0.0) {
      const double backlog = transport_->send_backlog_seconds(node);
      if (backlog > config_.max_backlog_s) {
        schedule_arrival(node, side, now + (backlog - config_.max_backlog_s));
        return;
      }
    }

    stream::Tuple tuple;
    tuple.id = next_tuple_id_++;
    tuple.key = workload_->next_key(node, side, now);
    tuple.timestamp = now;
    tuple.origin = node;
    tuple.side = side;
    ++emitted_[s];
    ++total_arrivals_;

    // Arrival events fire in global time order, so the oracle sees tuples
    // in nondecreasing timestamp order. The oracle is global state and
    // therefore stays on the (serial) dispatch path; the node's per-tuple
    // work is what the parallel driver fans out.
    if (config_.oracle_enabled) oracle_.observe(tuple);
    defer_arrival(node, now, tuple);

    auto& rng = arrival_rngs_[s];
    schedule_arrival(node, side,
                     now + rng.next_exponential(config_.arrivals_per_second));
  });
}

ExperimentResult DspSystem::run() {
  assert(!ran_ && "DspSystem instances are single-run");
  ran_ = true;

  for (const auto& [node, at] : pending_restarts_) {
    // Restarts are *barrier* events: they replace a node object wholesale
    // and re-register its delivery handler, so the parallel driver must
    // fully quiesce the epoch in flight before one runs.
    queue_.schedule_barrier_at(at, [this, node = node] {
      // Crash-and-restart: every window, summary and policy state of the
      // node is lost; the fresh instance bootstraps from peers' summaries.
      install_node(node);
      ++restarts_executed_;
    });
  }
  for (net::NodeId id = 0; id < config_.nodes; ++id) {
    auto& rng_r = arrival_rngs_[slot(id, stream::StreamSide::kR)];
    auto& rng_s = arrival_rngs_[slot(id, stream::StreamSide::kS)];
    schedule_arrival(id, stream::StreamSide::kR,
                     rng_r.next_exponential(config_.arrivals_per_second));
    schedule_arrival(id, stream::StreamSide::kS,
                     rng_s.next_exponential(config_.arrivals_per_second));
  }
  if (config_.worker_threads == 0) {
    queue_.run_all();
  } else {
    run_parallel();
  }

  ExperimentResult result;
  result.exact_pairs = oracle_.total_pairs();
  result.reported_pairs = metrics_.distinct_pairs();
  result.total_arrivals = total_arrivals_;
  result.makespan_s = queue_.now();
  result.traffic = transport_->stats();
  result.summary_byte_fraction = result.traffic.summary_byte_fraction();
  result.epsilon =
      result.exact_pairs == 0
          ? 0.0
          : 1.0 - static_cast<double>(result.reported_pairs) /
                      static_cast<double>(result.exact_pairs);
  result.messages_per_result =
      result.reported_pairs == 0
          ? static_cast<double>(result.traffic.total_frames())
          : static_cast<double>(result.traffic.total_frames()) /
                static_cast<double>(result.reported_pairs);
  if (result.makespan_s > 0.0) {
    result.results_per_second =
        static_cast<double>(result.reported_pairs) / result.makespan_s;
    result.ingest_per_second =
        static_cast<double>(result.total_arrivals) / result.makespan_s;
  }
  for (const auto& node : nodes_) {
    result.fallback_engaged |= node->policy().fallback_active();
    result.decode_failures += node->decode_failures();
  }
  return result;
}

void DspSystem::run_parallel() {
  common::ThreadPool pool(config_.worker_threads - 1);
  // Conservative lookahead: any event dispatched at time t can schedule a
  // cross-node event no earlier than t + minimum link latency, so every
  // event inside a window of that width is causally independent of the
  // window's own outputs. Width 0 (ideal profiles) degenerates to
  // exact-timestamp ties, which the same argument covers.
  const double width = config_.wan.latency_min_s;
  std::vector<std::function<void()>> batch;
  std::vector<std::vector<std::size_t>> by_node(config_.nodes);
  while (!queue_.empty()) {
    if (queue_.next_is_barrier()) {
      // Node crash-restarts swap the node object out; they run alone,
      // serially, between epochs.
      queue_.run_one();
      continue;
    }
    const double t0 = queue_.next_when();
    epoch_open_ = true;
    if (width > 0.0) {
      const double t_end = t0 + width;
      // Strictly '<': an event at exactly t0 + width may tie with a send
      // flushed from this window and must be ordered against it by the
      // event queue, so it belongs to the next epoch.
      while (!queue_.empty() && !queue_.next_is_barrier() &&
             queue_.next_when() < t_end) {
        queue_.run_one();
      }
    } else {
      while (!queue_.empty() && !queue_.next_is_barrier() &&
             queue_.next_when() == t0) {
        queue_.run_one();
      }
    }
    epoch_open_ = false;
    execute_epoch(pool, batch, by_node);
  }
}

void DspSystem::execute_epoch(common::ThreadPool& pool,
                              std::vector<std::function<void()>>& batch,
                              std::vector<std::vector<std::size_t>>& by_node) {
  if (epoch_tasks_.empty()) return;
  transport_->begin_epoch(epoch_tasks_.size());
  metrics_.begin_epoch(epoch_tasks_.size());
  // One strand per node: tasks for the same node run sequentially in
  // dispatch order on one thread (nodes are stateful), tasks for distinct
  // nodes run concurrently (nodes are shared-nothing).
  for (auto& list : by_node) list.clear();
  for (std::size_t i = 0; i < epoch_tasks_.size(); ++i) {
    by_node[epoch_tasks_[i].node].push_back(i);
  }
  batch.clear();
  for (net::NodeId node_id = 0; node_id < by_node.size(); ++node_id) {
    auto& list = by_node[node_id];
    if (list.empty()) continue;
    batch.push_back([this, &list, node_id] {
      auto& scratch = arrival_scratch_[node_id];
      std::size_t li = 0;
      while (li < list.size()) {
        const std::size_t index = list[li];
        EpochTask& task = epoch_tasks_[index];
        if (!task.is_arrival) {
          transport_->bind_epoch_slot(index, task.when);
          metrics_.bind_epoch_slot(index);
          task.fn();
          ++li;
          continue;
        }
        // Consecutive local arrivals are handed to the node as one batch
        // call instead of one type-erased task each. Slot binding stays
        // per arrival (the flush-order contract), via the callback.
        std::size_t run_end = li;
        scratch.clear();
        while (run_end < list.size() && epoch_tasks_[list[run_end]].is_arrival) {
          const EpochTask& t = epoch_tasks_[list[run_end]];
          scratch.push_back(Node::LocalArrival{t.tuple, t.when});
          ++run_end;
        }
        nodes_[node_id]->on_local_batch(
            scratch, [this, &list, li](std::size_t j) {
              const std::size_t idx = list[li + j];
              transport_->bind_epoch_slot(idx, epoch_tasks_[idx].when);
              metrics_.bind_epoch_slot(idx);
            });
        li = run_end;
      }
    });
  }
  pool.run_batch(batch);
  // Barrier: flush buffered sends and reports in slot (= dispatch) order,
  // reproducing the serial event-queue sequence exactly.
  transport_->end_epoch();
  metrics_.end_epoch();
  epoch_tasks_.clear();
}

ExperimentResult run_experiment(const SystemConfig& config) {
  DspSystem system(config);
  return system.run();
}

}  // namespace dsjoin::core
