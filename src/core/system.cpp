#include "dsjoin/core/system.hpp"

#include <cassert>
#include <stdexcept>

#include "dsjoin/core/wire.hpp"

namespace dsjoin::core {

DspSystem::DspSystem(const SystemConfig& config)
    : config_(config), specs_(effective_queries(config)), source_(config) {
  if (config.nodes < 2) {
    throw std::invalid_argument("a distributed join needs at least 2 nodes");
  }
  transport_ = std::make_unique<net::SimTransport>(queue_, config.nodes,
                                                   config.wan, config.seed ^ 0x77);
  transport_->set_summary_sink(
      [this](const net::Frame& frame) { tee_summary(frame); });

  query_metrics_.reserve(specs_.size());
  metrics_ptrs_.reserve(specs_.size());
  oracles_.reserve(specs_.size());
  for (const QuerySpec& spec : specs_) {
    query_metrics_.push_back(std::make_unique<MetricsCollector>());
    query_metrics_.back()->set_node_count(config.nodes);
    query_metrics_.back()->set_epoch_group(this);
    metrics_ptrs_.push_back(query_metrics_.back().get());
    oracles_.emplace_back(spec.join_half_width_s);
  }
  hosts_.resize(config.nodes);
  arrival_scratch_.resize(config.nodes);
  for (net::NodeId id = 0; id < config.nodes; ++id) {
    install_node(id);
  }
}

DspSystem::~DspSystem() = default;

void DspSystem::install_node(net::NodeId id) {
  hosts_[id] = std::make_unique<NodeHost>(
      config_, id, *transport_,
      std::span<MetricsCollector* const>(metrics_ptrs_.data(),
                                         metrics_ptrs_.size()));
  // Summary content reaches the node through the transport's summary sink
  // (virtual-time plane); the arrival-time frame path must not apply it a
  // second time.
  hosts_[id]->node().set_external_summary_feed(true);
  transport_->register_handler(id, [this, id](net::Frame&& frame) {
    // The host is re-resolved when the deferred work runs, so frames still
    // in flight across a crash-and-restart reach the fresh instance.
    const double now = queue_.now();
    defer_node_task(id, now,
                    [this, id, now, f = std::move(frame)]() mutable {
                      hosts_[id]->deliver(std::move(f), now);
                    });
  });
}

void DspSystem::tee_summary(const net::Frame& frame) {
  // Hosts are re-resolved per call so blocks committed across a
  // crash-and-restart reach the live instance. Decode failures (corruption
  // injection) are counted by the receiver's frame path, not here.
  if (frame.kind == net::FrameKind::kSummary) {
    auto payload = SummaryPayload::decode(frame.payload);
    if (!payload) return;
    hosts_[frame.to]->node().queue_summary(frame.from, payload.value().stamp,
                                           std::move(payload.value().block));
  } else if (frame.kind == net::FrameKind::kTuple) {
    auto payload =
        TuplePayload::decode(frame.payload, multi_query_mode(config_));
    if (!payload || payload.value().piggyback.empty()) return;
    hosts_[frame.to]->node().queue_summary(
        frame.from, payload.value().stamp,
        std::move(payload.value().piggyback));
  }
}

void DspSystem::defer_node_task(net::NodeId node, double when,
                                std::function<void()> task) {
  if (!epoch_open_) {
    task();
    return;
  }
  epoch_tasks_.push_back(EpochTask{node, when, std::move(task)});
}

void DspSystem::defer_arrival(net::NodeId node, double when,
                              const stream::Tuple& tuple) {
  if (!epoch_open_) {
    hosts_[node]->ingest(tuple, when);
    return;
  }
  epoch_tasks_.push_back(EpochTask{node, when, {}, true, tuple});
}

void DspSystem::schedule_restart(net::NodeId node, double at) {
  assert(!ran_ && "schedule restarts before run()");
  assert(node < config_.nodes);
  pending_restarts_.emplace_back(node, at);
}

void DspSystem::schedule_arrival(net::NodeId node, stream::StreamSide side,
                                 double at) {
  queue_.schedule_at(at, [this, node, side] {
    if (source_.exhausted(node, side)) return;

    // Backpressure: a node whose outgoing links are saturated stalls its
    // source (bounded send queue). This is what lets BASE's O(N^2) traffic
    // collapse its throughput in Figure 11 instead of queueing unboundedly.
    const double now = queue_.now();
    if (config_.max_backlog_s > 0.0) {
      const double backlog = transport_->send_backlog_seconds(node);
      if (backlog > config_.max_backlog_s) {
        schedule_arrival(node, side, now + (backlog - config_.max_backlog_s));
        return;
      }
    }

    const stream::Tuple tuple = source_.emit(node, side, now);

    // Arrival events fire in global time order, so the oracle sees tuples
    // in nondecreasing timestamp order. The oracle is global state and
    // therefore stays on the (serial) dispatch path; the node's per-tuple
    // work is what the parallel driver fans out.
    if (config_.oracle_enabled) {
      for (ExactJoinOracle& oracle : oracles_) oracle.observe(tuple);
    }
    defer_arrival(node, now, tuple);

    schedule_arrival(node, side, now + source_.next_gap(node, side));
  });
}

ExperimentResult DspSystem::run() {
  assert(!ran_ && "DspSystem instances are single-run");
  ran_ = true;

  for (const auto& [node, at] : pending_restarts_) {
    // Restarts are *barrier* events: they replace a node object wholesale
    // and re-register its delivery handler, so the parallel driver must
    // fully quiesce the epoch in flight before one runs.
    queue_.schedule_barrier_at(at, [this, node = node] {
      // Crash-and-restart: every window, summary and policy state of the
      // node is lost; the fresh instance bootstraps from peers' summaries.
      install_node(node);
      ++restarts_executed_;
    });
  }
  for (net::NodeId id = 0; id < config_.nodes; ++id) {
    schedule_arrival(id, stream::StreamSide::kR,
                     source_.next_gap(id, stream::StreamSide::kR));
    schedule_arrival(id, stream::StreamSide::kS,
                     source_.next_gap(id, stream::StreamSide::kS));
  }
  if (config_.worker_threads == 0) {
    queue_.run_all();
  } else {
    run_parallel();
  }

  // The simulator needs no FIN handshake: the event queue running dry is
  // an exact statement that every frame has been delivered and processed.
  ExperimentResult result;
  result.clean = true;
  result.backend = Backend::kSim;
  result.nodes_admitted = config_.nodes;
  result.total_arrivals = source_.total_emitted();
  result.makespan_s = queue_.now();
  result.traffic = transport_->stats();
  for (const auto& host : hosts_) {
    result.decode_failures += host->node().decode_failures();
    result.late_summaries += host->node().late_summaries();
  }

  // Per-query outcomes; the run aggregates are their sums (each query is
  // its own join), with result.pairs keeping the cross-query union.
  result.per_query.resize(specs_.size());
  MetricsCollector unioned;
  unioned.set_node_count(config_.nodes);
  for (std::size_t q = 0; q < specs_.size(); ++q) {
    QueryResult& query = result.per_query[q];
    query.query_id = specs_[q].id;
    query.exact_pairs = oracles_[q].total_pairs();
    query.reported_pairs = query_metrics_[q]->distinct_pairs();
    query.pairs = query_metrics_[q]->pairs();
    for (const auto& pair : query.pairs) unioned.record_pair(pair, 0, 0.0);
    for (const auto& host : hosts_) {
      const QueryCounters counters = host->node().query_counters(q);
      query.received_tuples += counters.received_tuples;
      query.forwarded_tuples += counters.forwarded_tuples;
      query.result_frames += counters.result_frames;
      query.summary_frames += counters.summary_frames;
      result.fallback_engaged |=
          host->node().query_policy(q).fallback_active();
      const auto bound = host->node().query_policy(q).epsilon_bound_terms();
      query.predicted_missed_mass += bound.missed_mass;
      query.predicted_total_mass += bound.total_mass;
    }
    result.exact_pairs += query.exact_pairs;
    result.reported_pairs += query.reported_pairs;
    result.predicted_missed_mass += query.predicted_missed_mass;
    result.predicted_total_mass += query.predicted_total_mass;
  }
  result.pairs = unioned.pairs();
  finalize_derived_metrics(&result);
  return result;
}

void DspSystem::run_parallel() {
  common::ThreadPool pool(config_.worker_threads - 1);
  // Conservative lookahead: any event dispatched at time t can schedule a
  // cross-node event no earlier than t + minimum link latency, so every
  // event inside a window of that width is causally independent of the
  // window's own outputs. Width 0 (ideal profiles) degenerates to
  // exact-timestamp ties, which the same argument covers.
  const double width = config_.wan.latency_min_s;
  std::vector<std::function<void()>> batch;
  std::vector<std::vector<std::size_t>> by_node(config_.nodes);
  while (!queue_.empty()) {
    if (queue_.next_is_barrier()) {
      // Node crash-restarts swap the node object out; they run alone,
      // serially, between epochs.
      queue_.run_one();
      continue;
    }
    const double t0 = queue_.next_when();
    epoch_open_ = true;
    if (width > 0.0) {
      const double t_end = t0 + width;
      // Strictly '<': an event at exactly t0 + width may tie with a send
      // flushed from this window and must be ordered against it by the
      // event queue, so it belongs to the next epoch.
      while (!queue_.empty() && !queue_.next_is_barrier() &&
             queue_.next_when() < t_end) {
        queue_.run_one();
      }
    } else {
      while (!queue_.empty() && !queue_.next_is_barrier() &&
             queue_.next_when() == t0) {
        queue_.run_one();
      }
    }
    epoch_open_ = false;
    execute_epoch(pool, batch, by_node);
  }
}

void DspSystem::execute_epoch(common::ThreadPool& pool,
                              std::vector<std::function<void()>>& batch,
                              std::vector<std::vector<std::size_t>>& by_node) {
  if (epoch_tasks_.empty()) return;
  transport_->begin_epoch(epoch_tasks_.size());
  for (auto& collector : query_metrics_) {
    collector->begin_epoch(epoch_tasks_.size());
  }
  // One strand per node: tasks for the same node run sequentially in
  // dispatch order on one thread (nodes are stateful), tasks for distinct
  // nodes run concurrently (nodes are shared-nothing).
  for (auto& list : by_node) list.clear();
  for (std::size_t i = 0; i < epoch_tasks_.size(); ++i) {
    by_node[epoch_tasks_[i].node].push_back(i);
  }
  batch.clear();
  for (net::NodeId node_id = 0; node_id < by_node.size(); ++node_id) {
    auto& list = by_node[node_id];
    if (list.empty()) continue;
    batch.push_back([this, &list, node_id] {
      auto& scratch = arrival_scratch_[node_id];
      std::size_t li = 0;
      while (li < list.size()) {
        const std::size_t index = list[li];
        EpochTask& task = epoch_tasks_[index];
        if (!task.is_arrival) {
          transport_->bind_epoch_slot(index, task.when);
          // One bind covers every collector: they share this system's
          // epoch group, so the tls tag matches all of them.
          query_metrics_.front()->bind_epoch_slot(index);
          task.fn();
          ++li;
          continue;
        }
        // Consecutive local arrivals are handed to the node as one batch
        // call instead of one type-erased task each. Slot binding stays
        // per arrival (the flush-order contract), via the callback.
        std::size_t run_end = li;
        scratch.clear();
        while (run_end < list.size() && epoch_tasks_[list[run_end]].is_arrival) {
          const EpochTask& t = epoch_tasks_[list[run_end]];
          scratch.push_back(Node::LocalArrival{t.tuple, t.when});
          ++run_end;
        }
        hosts_[node_id]->node().on_local_batch(
            scratch, [this, &list, li](std::size_t j) {
              const std::size_t idx = list[li + j];
              transport_->bind_epoch_slot(idx, epoch_tasks_[idx].when);
              query_metrics_.front()->bind_epoch_slot(idx);
            });
        li = run_end;
      }
    });
  }
  pool.run_batch(batch);
  // Barrier: flush buffered sends and reports in slot (= dispatch) order,
  // reproducing the serial event-queue sequence exactly.
  transport_->end_epoch();
  for (auto& collector : query_metrics_) collector->end_epoch();
  epoch_tasks_.clear();
}

ExperimentResult run_experiment(const SystemConfig& config) {
  DspSystem system(config);
  return system.run();
}

}  // namespace dsjoin::core
