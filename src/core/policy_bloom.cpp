// BLOOM (the first competitor of Section 6): the shared BloomSummaryEngine
// (counting filters, snapshot broadcasts) and membership routing on top.
#include <cmath>

#include "policy_impl.hpp"

namespace dsjoin::core {

namespace {

std::size_t bloom_bits(const SystemConfig& config) {
  // Snapshot wire size is matched to the DFT summary budget (Section 6:
  // "we adjust the size of the Bloom filters, sketches and DFT coefficients
  // to be the same").
  return std::max<std::size_t>(config.summary_budget_bytes() * 8, 64);
}

}  // namespace

BloomSummaryEngine::BloomSummaryEngine(const SystemConfig& config,
                                       net::NodeId self)
    : config_(config), self_(self),
      counting_{sketch::CountingBloomFilter(
                    bloom_bits(config),
                    sketch::optimal_hash_count(bloom_bits(config), config.dft_window),
                    config.seed ^ 0xb100'0000ULL),
                sketch::CountingBloomFilter(
                    bloom_bits(config),
                    sketch::optimal_hash_count(bloom_bits(config), config.dft_window),
                    config.seed ^ 0xb100'0001ULL)},
      window_{stream::CountWindow(config.dft_window),
              stream::CountWindow(config.dft_window)},
      peers_(config.nodes) {}

void BloomSummaryEngine::observe_local(const stream::Tuple& tuple) {
  // Deferred: routing consults peer snapshots only, so the local counting
  // filter is not read until the next broadcast. The tuple joins the
  // pending batch; flush_pending applies it through the filter's two-pass
  // batch update at snapshot time.
  pending_[static_cast<std::size_t>(tuple.side)].push_back(tuple);
  ++local_tuples_;
}

void BloomSummaryEngine::flush_pending(std::size_t side) {
  auto& pending = pending_[side];
  if (pending.empty()) return;
  auto& window = window_[side];
  // Reconstruct the scalar insert/erase interleaving: the first `free`
  // inserts cannot evict; each later insert is immediately followed by the
  // eviction insert_batch reports for it (in order). The interleaving
  // matters because counting-Bloom clamps make updates order-dependent.
  const std::size_t free_slots =
      std::min(window.capacity() - window.size(), pending.size());
  evicted_scratch_.clear();
  window.insert_batch(pending, evicted_scratch_);
  key_scratch_.clear();
  delta_scratch_.clear();
  for (std::size_t j = 0; j < pending.size(); ++j) {
    key_scratch_.push_back(static_cast<std::uint64_t>(pending[j].key));
    delta_scratch_.push_back(+1);
    if (j >= free_slots) {
      key_scratch_.push_back(
          static_cast<std::uint64_t>(evicted_scratch_[j - free_slots].key));
      delta_scratch_.push_back(-1);
    }
  }
  counting_[side].apply_batch(key_scratch_, delta_scratch_);
  pending.clear();
}

void BloomSummaryEngine::apply_snapshot(net::NodeId peer, stream::StreamSide side,
                                        sketch::BloomFilter filter) {
  peers_[peer].remote[static_cast<std::size_t>(side)].update(std::move(filter));
}

std::vector<OutboundSummary> BloomSummaryEngine::maintenance(double /*now*/) {
  if (local_tuples_ - last_broadcast_tuple_ < config_.summary_epoch_tuples) {
    return {};
  }
  last_broadcast_tuple_ = local_tuples_;
  common::BufferWriter writer;
  for (std::size_t side = 0; side < 2; ++side) {
    flush_pending(side);
    summary_codec::encode_bloom(writer, static_cast<stream::StreamSide>(side),
                                counting_[side].snapshot());
  }
  SummaryBlock block{std::move(writer).take()};
  std::vector<OutboundSummary> out;
  for (net::NodeId j = 0; j < config_.nodes; ++j) {
    if (j != self_) out.push_back(OutboundSummary{j, block, SummaryFamily::kBloom});
  }
  return out;
}

BloomPolicy::BloomPolicy(const SystemConfig& config, net::NodeId self,
                         SummarySubstrate& substrate)
    : RoutingPolicy(substrate), config_(config), self_(self),
      throttle_(config.throttle), engine_(&substrate.bloom()),
      rng_(config.seed ^ (0xb100'beefULL + self)) {}

std::vector<net::NodeId> BloomPolicy::route(const stream::Tuple& tuple) {
  const std::uint32_t n = config_.nodes;
  const double budget = throttle_to_budget(throttle_, n);
  const auto opposite = static_cast<std::size_t>(stream::opposite(tuple.side));

  std::vector<net::NodeId> peer_ids;
  std::vector<double> scores;
  peer_ids.reserve(n - 1);
  for (net::NodeId j = 0; j < n; ++j) {
    if (j == self_) continue;
    peer_ids.push_back(j);
    if (!engine_->remote_seeded(j, opposite)) {
      scores.push_back(1.0);  // bootstrap exploration
    } else {
      // Bloom filters hold the exact remote keys, so the membership query is
      // the exact join predicate (no reconstruction slack).
      scores.push_back(engine_->remote_contains(j, opposite, tuple.key, 0)
                           ? 1.0
                           : 0.0);
    }
  }

  // Membership is key-dependent: non-hits are explored only lightly.
  const double floor = std::pow(throttle_, 6);
  const auto probs = allocate_flow_probabilities(scores, budget, floor);

  std::vector<net::NodeId> out;
  last_probs_.assign(n, 0.0);
  for (std::size_t idx = 0; idx < peer_ids.size(); ++idx) {
    last_probs_[peer_ids[idx]] = probs[idx];
    if (rng_.next_bool(probs[idx])) out.push_back(peer_ids[idx]);
  }
  return out;
}

}  // namespace dsjoin::core
