#include "dsjoin/core/wire.hpp"

#include <cmath>

namespace dsjoin::core {

using common::BufferReader;
using common::BufferWriter;
using common::ErrorCode;
using common::Result;
using common::Status;

std::uint32_t payload_checksum(std::span<const std::uint8_t> bytes) noexcept {
  // splitmix-style rolling mix; 32 bits is plenty against single-bit flips.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 31;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

namespace {

std::vector<std::uint8_t> seal(BufferWriter&& writer) {
  auto bytes = std::move(writer).take();
  const std::uint32_t sum = payload_checksum(bytes);
  bytes.push_back(static_cast<std::uint8_t>(sum));
  bytes.push_back(static_cast<std::uint8_t>(sum >> 8));
  bytes.push_back(static_cast<std::uint8_t>(sum >> 16));
  bytes.push_back(static_cast<std::uint8_t>(sum >> 24));
  return bytes;
}

// Verifies and strips the trailing checksum; empty on failure.
Result<std::span<const std::uint8_t>> unseal(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) {
    return Status(ErrorCode::kDataLoss, "payload too short for checksum");
  }
  const auto body = bytes.first(bytes.size() - 4);
  const auto tail = bytes.last(4);
  const std::uint32_t stored = static_cast<std::uint32_t>(tail[0]) |
                               (static_cast<std::uint32_t>(tail[1]) << 8) |
                               (static_cast<std::uint32_t>(tail[2]) << 16) |
                               (static_cast<std::uint32_t>(tail[3]) << 24);
  if (stored != payload_checksum(body)) {
    return Status(ErrorCode::kDataLoss, "payload checksum mismatch");
  }
  return body;
}

void write_stamp(const SummaryStamp& stamp, BufferWriter& out) {
  out.write_u8(kSummaryStampVersion);
  out.write_f64(stamp.emit_time);
  out.write_u32(stamp.seq);
}

Result<SummaryStamp> read_stamp(BufferReader& in) {
  auto version = in.read_u8();
  if (!version) return version.status();
  if (version.value() != kSummaryStampVersion) {
    return Status(ErrorCode::kDataLoss, "unsupported summary stamp version");
  }
  auto emit = in.read_f64();
  if (!emit) return emit.status();
  if (!std::isfinite(emit.value()) || emit.value() < 0.0) {
    return Status(ErrorCode::kDataLoss, "summary stamp emit time out of range");
  }
  auto seq = in.read_u32();
  if (!seq) return seq.status();
  SummaryStamp stamp;
  stamp.emit_time = emit.value();
  stamp.seq = seq.value();
  return stamp;
}

}  // namespace

std::vector<std::uint8_t> TuplePayload::encode(bool with_query_ids) const {
  BufferWriter out(64 + piggyback.size());
  tuple.serialize(out);
  if (with_query_ids) out.write_u64(query_mask);
  out.write_u32(static_cast<std::uint32_t>(piggyback.bytes.size()));
  // The stamp rides only alongside a piggybacked summary: tuple frames
  // without one carry zero stamp bytes (the bench acceptance bar).
  if (!piggyback.bytes.empty()) {
    write_stamp(stamp, out);
    out.write_raw(piggyback.bytes);
  }
  return seal(std::move(out));
}

Result<TuplePayload> TuplePayload::decode(std::span<const std::uint8_t> bytes,
                                          bool with_query_ids) {
  auto body = unseal(bytes);
  if (!body) return body.status();
  BufferReader in(body.value());
  auto tuple = stream::Tuple::deserialize(in);
  if (!tuple) return tuple.status();
  TuplePayload out;
  if (with_query_ids) {
    auto mask = in.read_u64();
    if (!mask) return mask.status();
    out.query_mask = mask.value();
  }
  auto piggy_len = in.read_u32();
  if (!piggy_len) return piggy_len.status();
  out.tuple = tuple.value();
  if (piggy_len.value() > 0) {
    auto stamp = read_stamp(in);
    if (!stamp) return stamp.status();
    out.stamp = stamp.value();
    if (in.remaining() < piggy_len.value()) {
      return Status(ErrorCode::kDataLoss, "truncated piggyback block");
    }
    out.piggyback.bytes.resize(piggy_len.value());
    for (auto& b : out.piggyback.bytes) {
      b = in.read_u8().value();  // length checked above
    }
  }
  return out;
}

std::vector<std::uint8_t> SummaryPayload::encode() const {
  BufferWriter out(25 + block.size());
  // Stamp first: the virtual-time header sits at a fixed offset so tooling
  // (and the fuzz corpus) can patch it without re-parsing the block.
  write_stamp(stamp, out);
  out.write_u32(static_cast<std::uint32_t>(block.bytes.size()));
  out.write_raw(block.bytes);
  return seal(std::move(out));
}

Result<SummaryPayload> SummaryPayload::decode(std::span<const std::uint8_t> bytes) {
  auto body = unseal(bytes);
  if (!body) return body.status();
  BufferReader in(body.value());
  auto stamp = read_stamp(in);
  if (!stamp) return stamp.status();
  auto len = in.read_u32();
  if (!len) return len.status();
  if (in.remaining() < len.value()) {
    return Status(ErrorCode::kDataLoss, "truncated summary block");
  }
  SummaryPayload out;
  out.stamp = stamp.value();
  out.block.bytes.resize(len.value());
  for (auto& b : out.block.bytes) b = in.read_u8().value();
  return out;
}

std::vector<std::uint8_t> ResultPayload::encode(bool with_query_ids) const {
  BufferWriter out(8 + pairs.size() * 16);
  if (with_query_ids) out.write_u32(query_id);
  out.write_u32(static_cast<std::uint32_t>(pairs.size()));
  for (const auto& p : pairs) {
    out.write_u64(p.r_id);
    out.write_u64(p.s_id);
  }
  return seal(std::move(out));
}

Result<ResultPayload> ResultPayload::decode(std::span<const std::uint8_t> bytes,
                                            bool with_query_ids) {
  auto body = unseal(bytes);
  if (!body) return body.status();
  BufferReader in(body.value());
  ResultPayload out;
  if (with_query_ids) {
    auto id = in.read_u32();
    if (!id) return id.status();
    out.query_id = id.value();
  }
  auto count = in.read_u32();
  if (!count) return count.status();
  if (in.remaining() < static_cast<std::size_t>(count.value()) * 16) {
    return Status(ErrorCode::kDataLoss, "truncated result payload");
  }
  out.pairs.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    const auto r = in.read_u64().value();
    const auto s = in.read_u64().value();
    out.pairs.push_back(stream::ResultPair{r, s});
  }
  return out;
}

}  // namespace dsjoin::core
