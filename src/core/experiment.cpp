#include "dsjoin/core/experiment.hpp"

#include <algorithm>

#include "dsjoin/core/config.hpp"
#include "dsjoin/core/metrics.hpp"
#include "dsjoin/core/schedule.hpp"

namespace dsjoin::core {

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::kSim:
      return "sim";
    case Backend::kTcpInprocess:
      return "tcp-inprocess";
    case Backend::kMultiprocess:
      return "multiprocess";
  }
  return "unknown";
}

common::Result<Backend> backend_from_string(const std::string& name) {
  if (name == "sim") return Backend::kSim;
  if (name == "tcp-inprocess") return Backend::kTcpInprocess;
  if (name == "multiprocess") return Backend::kMultiprocess;
  return common::Status(
      common::ErrorCode::kInvalidArgument,
      "unknown backend '" + name +
          "' (expected sim | tcp-inprocess | multiprocess)");
}

void aggregate_node_reports(std::span<const NodeReport> reports,
                            ExperimentResult* result, bool merge_traffic) {
  std::size_t nodes = reports.size();
  for (const auto& report : reports) {
    nodes = std::max(nodes, static_cast<std::size_t>(report.node_id) + 1);
  }
  MetricsCollector collector;
  collector.set_node_count(nodes);
  for (const auto& report : reports) {
    result->total_arrivals += report.local_tuples;
    result->decode_failures += report.decode_failures;
    result->late_summaries += report.late_summaries;
    result->predicted_missed_mass += report.predicted_missed_mass;
    result->predicted_total_mass += report.predicted_total_mass;
    if (merge_traffic) result->traffic.merge(report.traffic);
    for (const auto& pair : report.pairs) {
      collector.record_pair(pair, report.node_id, 0.0);
    }
  }
  result->reported_pairs = collector.distinct_pairs();
  result->pairs = collector.pairs();
}

void verify_against_schedule(const SystemConfig& config,
                             std::span<const stream::ResultPair> pairs,
                             ExperimentResult* result) {
  const auto schedule = ArrivalSchedule::build(config);
  result->exact_pairs = exact_pairs(schedule, config.join_half_width_s);
  result->false_pairs =
      count_false_pairs(schedule, config.join_half_width_s, pairs);
}

void finalize_derived_metrics(ExperimentResult* result) {
  result->epsilon =
      result->exact_pairs == 0
          ? 0.0
          : 1.0 - static_cast<double>(result->reported_pairs) /
                      static_cast<double>(result->exact_pairs);
  result->predicted_epsilon_bound =
      result->predicted_total_mass > 0.0
          ? std::min(1.0, std::max(0.0, result->predicted_missed_mass /
                                            result->predicted_total_mass))
          : -1.0;
  result->messages_per_result =
      result->reported_pairs == 0
          ? static_cast<double>(result->traffic.total_frames())
          : static_cast<double>(result->traffic.total_frames()) /
                static_cast<double>(result->reported_pairs);
  if (result->makespan_s > 0.0) {
    result->results_per_second =
        static_cast<double>(result->reported_pairs) / result->makespan_s;
    result->ingest_per_second =
        static_cast<double>(result->total_arrivals) / result->makespan_s;
  }
  result->summary_byte_fraction = result->traffic.summary_byte_fraction();
}

}  // namespace dsjoin::core
