#include "dsjoin/core/experiment.hpp"

#include <algorithm>
#include <map>

#include "dsjoin/core/config.hpp"
#include "dsjoin/core/metrics.hpp"
#include "dsjoin/core/schedule.hpp"

namespace dsjoin::core {

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::kSim:
      return "sim";
    case Backend::kTcpInprocess:
      return "tcp-inprocess";
    case Backend::kMultiprocess:
      return "multiprocess";
  }
  return "unknown";
}

common::Result<Backend> backend_from_string(const std::string& name) {
  if (name == "sim") return Backend::kSim;
  if (name == "tcp-inprocess") return Backend::kTcpInprocess;
  if (name == "multiprocess") return Backend::kMultiprocess;
  return common::Status(
      common::ErrorCode::kInvalidArgument,
      "unknown backend '" + name +
          "' (expected sim | tcp-inprocess | multiprocess)");
}

void aggregate_node_reports(std::span<const NodeReport> reports,
                            ExperimentResult* result, bool merge_traffic) {
  std::size_t nodes = reports.size();
  for (const auto& report : reports) {
    nodes = std::max(nodes, static_cast<std::size_t>(report.node_id) + 1);
  }
  MetricsCollector collector;
  collector.set_node_count(nodes);
  for (const auto& report : reports) {
    result->total_arrivals += report.local_tuples;
    result->decode_failures += report.decode_failures;
    result->late_summaries += report.late_summaries;
    result->predicted_missed_mass += report.predicted_missed_mass;
    result->predicted_total_mass += report.predicted_total_mass;
    if (merge_traffic) result->traffic.merge(report.traffic);
    for (const auto& pair : report.pairs) {
      collector.record_pair(pair, report.node_id, 0.0);
    }
  }
  result->pairs = collector.pairs();

  // Per-query fold: every report lists its queries in the same canonical
  // order, so entry i across reports is the same query. Each query's pair
  // set deduplicates independently (queries are distinct joins).
  std::vector<MetricsCollector> per_query;
  for (const auto& report : reports) {
    if (per_query.size() < report.queries.size()) {
      per_query.resize(report.queries.size());
      result->per_query.resize(report.queries.size());
    }
    for (std::size_t q = 0; q < report.queries.size(); ++q) {
      const QueryNodeReport& slice = report.queries[q];
      QueryResult& out = result->per_query[q];
      out.query_id = slice.query_id;
      out.received_tuples += slice.received_tuples;
      out.forwarded_tuples += slice.forwarded_tuples;
      out.result_frames += slice.result_frames;
      out.summary_frames += slice.summary_frames;
      out.predicted_missed_mass += slice.predicted_missed_mass;
      out.predicted_total_mass += slice.predicted_total_mass;
      for (const auto& pair : slice.pairs) {
        per_query[q].record_pair(pair, report.node_id, 0.0);
      }
    }
  }
  std::uint64_t reported = 0;
  for (std::size_t q = 0; q < per_query.size(); ++q) {
    result->per_query[q].reported_pairs = per_query[q].distinct_pairs();
    result->per_query[q].pairs = per_query[q].pairs();
    reported += per_query[q].distinct_pairs();
  }
  // Aggregate count: sum over queries (each its own join). With no
  // per-query sections (a pre-v6 report), fall back to the union.
  result->reported_pairs =
      per_query.empty() ? collector.distinct_pairs() : reported;
}

void verify_against_schedule(const SystemConfig& config,
                             std::span<const stream::ResultPair> pairs,
                             ExperimentResult* result) {
  const auto schedule = ArrivalSchedule::build(config);
  if (result->per_query.empty()) {
    result->exact_pairs = exact_pairs(schedule, config.join_half_width_s);
    result->false_pairs =
        count_false_pairs(schedule, config.join_half_width_s, pairs);
    return;
  }
  // Per-query verification: replay the one schedule against each query's
  // own window. Caching by half-width keeps N identical-width queries at
  // one oracle pass.
  const auto specs = effective_queries(config);
  std::map<double, std::uint64_t> exact_by_width;
  result->exact_pairs = 0;
  result->false_pairs = 0;
  for (std::size_t q = 0; q < result->per_query.size(); ++q) {
    QueryResult& query = result->per_query[q];
    const double width = q < specs.size() ? specs[q].join_half_width_s
                                          : config.join_half_width_s;
    auto [it, fresh] = exact_by_width.try_emplace(width, 0);
    if (fresh) it->second = exact_pairs(schedule, width);
    query.exact_pairs = it->second;
    query.false_pairs = count_false_pairs(schedule, width, query.pairs);
    result->exact_pairs += query.exact_pairs;
    result->false_pairs += query.false_pairs;
  }
}

void finalize_derived_metrics(ExperimentResult* result) {
  result->epsilon =
      result->exact_pairs == 0
          ? 0.0
          : 1.0 - static_cast<double>(result->reported_pairs) /
                      static_cast<double>(result->exact_pairs);
  result->predicted_epsilon_bound =
      result->predicted_total_mass > 0.0
          ? std::min(1.0, std::max(0.0, result->predicted_missed_mass /
                                            result->predicted_total_mass))
          : -1.0;
  result->messages_per_result =
      result->reported_pairs == 0
          ? static_cast<double>(result->traffic.total_frames())
          : static_cast<double>(result->traffic.total_frames()) /
                static_cast<double>(result->reported_pairs);
  if (result->makespan_s > 0.0) {
    result->results_per_second =
        static_cast<double>(result->reported_pairs) / result->makespan_s;
    result->ingest_per_second =
        static_cast<double>(result->total_arrivals) / result->makespan_s;
  }
  result->summary_byte_fraction = result->traffic.summary_byte_fraction();
  for (QueryResult& query : result->per_query) {
    query.epsilon = query.exact_pairs == 0
                        ? 0.0
                        : 1.0 - static_cast<double>(query.reported_pairs) /
                                    static_cast<double>(query.exact_pairs);
    query.predicted_epsilon_bound =
        query.predicted_total_mass > 0.0
            ? std::min(1.0, std::max(0.0, query.predicted_missed_mass /
                                              query.predicted_total_mass))
            : -1.0;
  }
}

}  // namespace dsjoin::core
