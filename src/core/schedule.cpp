#include "dsjoin/core/schedule.hpp"

#include <cmath>
#include <queue>
#include <unordered_map>

#include "dsjoin/core/oracle.hpp"

namespace dsjoin::core {

namespace {
std::size_t slot(net::NodeId node, stream::StreamSide side) {
  return static_cast<std::size_t>(node) * 2 + static_cast<std::size_t>(side);
}
}  // namespace

ArrivalSource::ArrivalSource(const SystemConfig& config)
    : quota_(config.tuples_per_node), rate_(config.arrivals_per_second) {
  stream::WorkloadParams params;
  params.nodes = config.nodes;
  params.regions = config.regions;
  params.domain = config.domain;
  params.locality = config.locality;
  params.noise = config.noise;
  params.seed = config.seed;
  workload_ = stream::make_workload(config.workload, params);

  common::Xoshiro256 root(config.seed ^ 0xa771'7a1eULL);
  const std::size_t slots = static_cast<std::size_t>(config.nodes) * 2;
  rngs_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) rngs_.push_back(root.fork());
  emitted_.assign(slots, 0);
}

bool ArrivalSource::exhausted(net::NodeId node, stream::StreamSide side) const {
  return emitted_[slot(node, side)] >= quota_;
}

double ArrivalSource::next_gap(net::NodeId node, stream::StreamSide side) {
  return rngs_[slot(node, side)].next_exponential(rate_);
}

stream::Tuple ArrivalSource::emit(net::NodeId node, stream::StreamSide side,
                                  double now) {
  stream::Tuple tuple;
  tuple.id = next_tuple_id_++;
  tuple.key = workload_->next_key(node, side, now);
  tuple.timestamp = now;
  tuple.origin = node;
  tuple.side = side;
  ++emitted_[slot(node, side)];
  ++total_emitted_;
  return tuple;
}

ArrivalSchedule ArrivalSchedule::build(const SystemConfig& config) {
  ArrivalSource source(config);

  // Per-slot arrival times: exponential inter-arrivals from t = 0. Each
  // slot's gap stream is independent, so generating slot-by-slot draws the
  // same variates the simulator draws interleaved.
  const std::size_t slots = static_cast<std::size_t>(config.nodes) * 2;
  std::vector<std::vector<double>> times(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    const auto node = static_cast<net::NodeId>(s / 2);
    const auto side = static_cast<stream::StreamSide>(s % 2);
    times[s].reserve(config.tuples_per_node);
    double t = 0.0;
    for (std::uint64_t i = 0; i < config.tuples_per_node; ++i) {
      t += source.next_gap(node, side);
      times[s].push_back(t);
    }
  }

  // Global merge in (time, slot) order. Emitting in merge order gives ids
  // dense from 1 and consumes each slot's workload key stream in its own
  // time order — the simulator's per-slot call sequence exactly.
  struct HeapItem {
    double time;
    std::size_t slot;
    std::size_t index;
  };
  auto later = [](const HeapItem& a, const HeapItem& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.slot > b.slot;
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(later)> heap(
      later);
  for (std::size_t s = 0; s < slots; ++s) {
    if (!times[s].empty()) heap.push({times[s][0], s, 0});
  }

  ArrivalSchedule schedule;
  schedule.tuples.reserve(slots * config.tuples_per_node);
  while (!heap.empty()) {
    const HeapItem item = heap.top();
    heap.pop();
    const auto node = static_cast<net::NodeId>(item.slot / 2);
    const auto side = static_cast<stream::StreamSide>(item.slot % 2);
    schedule.tuples.push_back(source.emit(node, side, item.time));
    schedule.makespan_s = item.time;
    if (item.index + 1 < times[item.slot].size()) {
      heap.push({times[item.slot][item.index + 1], item.slot, item.index + 1});
    }
  }
  return schedule;
}

std::vector<stream::Tuple> ArrivalSchedule::for_node(net::NodeId node) const {
  std::vector<stream::Tuple> mine;
  for (const auto& tuple : tuples) {
    if (tuple.origin == node) mine.push_back(tuple);
  }
  return mine;
}

std::uint64_t exact_pairs(const ArrivalSchedule& schedule, double half_width) {
  ExactJoinOracle oracle(half_width);
  for (const auto& tuple : schedule.tuples) oracle.observe(tuple);
  return oracle.total_pairs();
}

std::uint64_t count_false_pairs(const ArrivalSchedule& schedule,
                                double half_width,
                                std::span<const stream::ResultPair> pairs) {
  std::unordered_map<std::uint64_t, const stream::Tuple*> by_id;
  by_id.reserve(schedule.tuples.size());
  for (const auto& tuple : schedule.tuples) by_id.emplace(tuple.id, &tuple);

  std::uint64_t false_pairs = 0;
  for (const auto& pair : pairs) {
    const auto r_it = by_id.find(pair.r_id);
    const auto s_it = by_id.find(pair.s_id);
    if (r_it == by_id.end() || s_it == by_id.end()) {
      ++false_pairs;
      continue;
    }
    const stream::Tuple& r = *r_it->second;
    const stream::Tuple& s = *s_it->second;
    const bool genuine = r.side == stream::StreamSide::kR &&
                         s.side == stream::StreamSide::kS && r.key == s.key &&
                         std::abs(r.timestamp - s.timestamp) <= half_width;
    if (!genuine) ++false_pairs;
  }
  return false_pairs;
}

}  // namespace dsjoin::core
