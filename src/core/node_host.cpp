#include "dsjoin/core/node_host.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

#include "dsjoin/common/log.hpp"
#include "dsjoin/core/config.hpp"

namespace dsjoin::core {

namespace {
constexpr std::uint8_t kFinMagic[8] = {'D', 'S', 'J', 'N', '-', 'F', 'I', 'N'};
constexpr std::uint8_t kWatermarkMagic[8] = {'D', 'S', 'J', 'W',
                                             'M', 'A', 'R', 'K'};
}  // namespace

NodeHost::NodeHost(const SystemConfig& config, net::NodeId id,
                   net::Transport& transport)
    : id_(id),
      nodes_(config.nodes),
      transport_(&transport),
      wm_sync_epoch_s_(config.summary_sync_epoch_s),
      wm_sync_lead_s_(config.wan.latency_min_s) {
  const std::size_t query_count = effective_queries(config).size();
  owned_metrics_.reserve(query_count);
  metrics_.reserve(query_count);
  for (std::size_t q = 0; q < query_count; ++q) {
    owned_metrics_.push_back(std::make_unique<MetricsCollector>());
    owned_metrics_.back()->set_node_count(nodes_);
    metrics_.push_back(owned_metrics_.back().get());
  }
  node_ = std::make_unique<Node>(
      config, id_, *transport_,
      std::span<MetricsCollector* const>(metrics_.data(), metrics_.size()));
  if (multi_query_mode(config) && config.worker_threads > 0) {
    worker_pool_ = std::make_unique<common::ThreadPool>(config.worker_threads);
    node_->set_worker_pool(worker_pool_.get());
  }
  fin1_seen_.assign(nodes_, false);
  fin2_seen_.assign(nodes_, false);
  peer_dead_.assign(nodes_, false);
  // Emissions before virtual time -lead are impossible, so grid point 0
  // (threshold -lead) is pre-covered for every peer.
  wm_peer_.assign(nodes_, -wm_sync_lead_s_);
}

NodeHost::NodeHost(const SystemConfig& config, net::NodeId id,
                   net::Transport& transport,
                   std::span<MetricsCollector* const> shared_query_metrics)
    : id_(id),
      nodes_(config.nodes),
      transport_(&transport),
      metrics_(shared_query_metrics.begin(), shared_query_metrics.end()),
      wm_sync_epoch_s_(config.summary_sync_epoch_s),
      wm_sync_lead_s_(config.wan.latency_min_s) {
  node_ = std::make_unique<Node>(
      config, id_, *transport_,
      std::span<MetricsCollector* const>(metrics_.data(), metrics_.size()));
  fin1_seen_.assign(nodes_, false);
  fin2_seen_.assign(nodes_, false);
  peer_dead_.assign(nodes_, false);
  wm_peer_.assign(nodes_, -wm_sync_lead_s_);
}

NodeHost::NodeHost(const SystemConfig& config, net::NodeId id,
                   net::Transport& transport, MetricsCollector& shared_metrics)
    : NodeHost(config, id, transport,
               std::span<MetricsCollector* const>(
                   std::array<MetricsCollector* const, 1>{&shared_metrics})) {}

void NodeHost::ingest(const stream::Tuple& tuple, double now) {
  virtual_now_ = now;
  node_->on_local_tuple(tuple, now);
  ++arrivals_ingested_;
}

void NodeHost::ingest_batch(std::span<const stream::Tuple> tuples) {
  if (tuples.empty()) return;
  virtual_now_ = tuples.back().timestamp;
  node_->on_local_batch(tuples);
  arrivals_ingested_ += tuples.size();
}

void NodeHost::deliver(net::Frame&& frame, double now) {
  double watermark = 0.0;
  if (is_watermark(frame, &watermark)) {
    handle_watermark(frame.from, watermark);
    return;
  }
  std::uint8_t phase = 0;
  if (is_fin(frame, &phase)) {
    handle_fin(frame.from, phase);
    return;
  }
  node_->on_frame(std::move(frame), now);
}

void NodeHost::note_peer_dead(net::NodeId peer) {
  if (peer >= nodes_ || peer == id_) return;
  if (peer_death_hook_) peer_death_hook_(peer);
  {
    // A dead peer emits nothing further: release any summary-cover wait.
    std::lock_guard lock(wm_mutex_);
    wm_peer_[peer] = std::numeric_limits<double>::infinity();
    wm_cv_.notify_all();
  }
  std::lock_guard lock(fin_mutex_);
  if (!peer_dead_[peer]) {
    DSJOIN_LOG_INFO("node %u: treating peer %u as dead", id_, peer);
    peer_dead_[peer] = true;
  }
  advance_fin_locked();
}

void NodeHost::begin_drain(std::span<const net::NodeId> dead_peers) {
  for (const auto dead : dead_peers) note_peer_dead(dead);
  {
    std::lock_guard lock(fin_mutex_);
    fin1_sent_ = true;
  }
  send_fin(1);
  std::lock_guard lock(fin_mutex_);
  advance_fin_locked();
}

bool NodeHost::wait_drain(double timeout_s) {
  std::unique_lock lock(fin_mutex_);
  return fin_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                          [this] { return drain_complete_; });
}

bool NodeHost::drain_complete() const {
  std::lock_guard lock(fin_mutex_);
  return drain_complete_;
}

NodeReport NodeHost::report(net::TrafficCounters traffic) const {
  NodeReport report;
  report.node_id = id_;
  report.local_tuples = node_->local_tuples();
  report.received_tuples = node_->received_tuples();
  report.decode_failures = node_->decode_failures();
  report.late_summaries = node_->late_summaries();
  report.traffic = traffic;
  report.queries.reserve(node_->query_count());
  for (std::size_t q = 0; q < node_->query_count(); ++q) {
    const QueryCounters counters = node_->query_counters(q);
    const auto bound = node_->query_policy(q).epsilon_bound_terms();
    QueryNodeReport& slice = report.queries.emplace_back();
    slice.query_id = counters.query_id;
    slice.received_tuples = counters.received_tuples;
    slice.forwarded_tuples = counters.forwarded_tuples;
    slice.result_frames = counters.result_frames;
    slice.summary_frames = counters.summary_frames;
    slice.predicted_missed_mass = bound.missed_mass;
    slice.predicted_total_mass = bound.total_mass;
    slice.pairs = metrics_[q]->pairs();
    // Aggregate = sum of the exclusive per-query attributions.
    report.predicted_missed_mass += bound.missed_mass;
    report.predicted_total_mass += bound.total_mass;
  }
  // The node-level pair set stays the cross-query union (queries rarely
  // overlap, but identical registered queries do — single-query reports are
  // byte-identical to the historical shape).
  MetricsCollector unioned;
  unioned.set_node_count(nodes_);
  for (const MetricsCollector* collector : metrics_) {
    for (const auto& pair : collector->pairs()) {
      unioned.record_pair(pair, id_, 0.0);
    }
  }
  report.pairs = unioned.pairs();
  return report;
}

net::Frame NodeHost::make_fin(net::NodeId from, net::NodeId to,
                              std::uint8_t phase) {
  net::Frame frame;
  frame.from = from;
  frame.to = to;
  frame.kind = net::FrameKind::kControl;
  frame.payload.assign(std::begin(kFinMagic), std::end(kFinMagic));
  frame.payload.push_back(phase);
  return frame;
}

bool NodeHost::is_fin(const net::Frame& frame, std::uint8_t* phase) {
  if (frame.kind != net::FrameKind::kControl) return false;
  if (frame.payload.size() != sizeof(kFinMagic) + 1) return false;
  if (std::memcmp(frame.payload.data(), kFinMagic, sizeof(kFinMagic)) != 0) {
    return false;
  }
  *phase = frame.payload.back();
  return true;
}

void NodeHost::enable_summary_watermarks() {
  std::lock_guard lock(wm_mutex_);
  wm_enabled_ = true;
}

void NodeHost::announce_summary_watermark(double own_watermark) {
  const double grid = wm_sync_epoch_s_;
  const double lead = wm_sync_lead_s_;
  std::vector<double> values;
  {
    std::lock_guard lock(wm_mutex_);
    if (!wm_enabled_) return;
    if (std::isinf(own_watermark)) {
      if (wm_final_sent_) return;
      wm_final_sent_ = true;
      values.push_back(own_watermark);
    } else {
      // One frame per grid point k*grid - lead newly covered by the local
      // clock, so the announcement count depends only on the schedule.
      while (static_cast<double>(wm_announced_k_ + 1) * grid - lead <=
             own_watermark) {
        ++wm_announced_k_;
        values.push_back(static_cast<double>(wm_announced_k_) * grid - lead);
      }
    }
  }
  for (const double value : values) {
    for (net::NodeId peer = 0; peer < nodes_; ++peer) {
      if (peer == id_) continue;
      (void)transport_->send(make_watermark(id_, peer, value));
    }
  }
}

bool NodeHost::await_summary_cover(double ts, double timeout_s,
                                   const std::function<bool()>& cancelled) {
  const double grid = wm_sync_epoch_s_;
  const double lead = wm_sync_lead_s_;
  const double epoch = std::floor(ts / grid);
  if (epoch <= 0.0) return true;  // threshold <= -lead: pre-covered
  // Exactly the announcer's arithmetic, so the comparison is bit-exact.
  const double needed = epoch * grid - lead;
  std::unique_lock lock(wm_mutex_);
  if (!wm_enabled_) return true;
  const auto covered = [&] {
    for (net::NodeId peer = 0; peer < nodes_; ++peer) {
      if (peer != id_ && wm_peer_[peer] < needed) return false;
    }
    return true;
  };
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (!covered()) {
    if (cancelled && cancelled()) return false;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    wm_cv_.wait_until(lock,
                      std::min(deadline, now + std::chrono::milliseconds(100)));
  }
  return true;
}

net::Frame NodeHost::make_watermark(net::NodeId from, net::NodeId to,
                                    double value) {
  net::Frame frame;
  frame.from = from;
  frame.to = to;
  frame.kind = net::FrameKind::kControl;
  frame.payload.assign(std::begin(kWatermarkMagic), std::end(kWatermarkMagic));
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    frame.payload.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
  return frame;
}

bool NodeHost::is_watermark(const net::Frame& frame, double* value) {
  if (frame.kind != net::FrameKind::kControl) return false;
  if (frame.payload.size() != sizeof(kWatermarkMagic) + 8) return false;
  if (std::memcmp(frame.payload.data(), kWatermarkMagic,
                  sizeof(kWatermarkMagic)) != 0) {
    return false;
  }
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(frame.payload[8 + i]) << (8 * i);
  }
  std::memcpy(value, &bits, sizeof(*value));
  return true;
}

void NodeHost::handle_watermark(net::NodeId peer, double value) {
  if (peer >= nodes_ || peer == id_) return;
  std::lock_guard lock(wm_mutex_);
  if (value > wm_peer_[peer]) wm_peer_[peer] = value;
  wm_cv_.notify_all();
}

void NodeHost::handle_fin(net::NodeId peer, std::uint8_t phase) {
  if (peer >= nodes_ || peer == id_) return;
  std::lock_guard lock(fin_mutex_);
  if (phase == 1) {
    fin1_seen_[peer] = true;
  } else if (phase == 2) {
    fin2_seen_[peer] = true;
  }
  advance_fin_locked();
}

bool NodeHost::fin_phase_complete_locked(const std::vector<bool>& seen) const {
  for (net::NodeId peer = 0; peer < nodes_; ++peer) {
    if (peer == id_) continue;
    if (!seen[peer] && !peer_dead_[peer]) return false;
  }
  return true;
}

void NodeHost::advance_fin_locked() {
  if (!fin1_sent_) return;
  if (!fin2_sent_ && fin_phase_complete_locked(fin1_seen_)) {
    fin2_sent_ = true;
    send_fin(2);
  }
  if (fin2_sent_ && !drain_complete_ && fin_phase_complete_locked(fin2_seen_)) {
    drain_complete_ = true;
    fin_cv_.notify_all();
  }
}

void NodeHost::send_fin(std::uint8_t phase) {
  for (net::NodeId peer = 0; peer < nodes_; ++peer) {
    if (peer == id_) continue;
    // A failed send means the peer just died; its EOF path marks it dead.
    (void)transport_->send(make_fin(id_, peer, phase));
  }
}

}  // namespace dsjoin::core
