#include "dsjoin/core/node_host.hpp"

#include <chrono>
#include <cstring>

#include "dsjoin/common/log.hpp"
#include "dsjoin/core/config.hpp"

namespace dsjoin::core {

namespace {
constexpr std::uint8_t kFinMagic[8] = {'D', 'S', 'J', 'N', '-', 'F', 'I', 'N'};
}  // namespace

NodeHost::NodeHost(const SystemConfig& config, net::NodeId id,
                   net::Transport& transport)
    : id_(id),
      nodes_(config.nodes),
      transport_(&transport),
      owned_metrics_(std::make_unique<MetricsCollector>()),
      metrics_(owned_metrics_.get()) {
  metrics_->set_node_count(nodes_);
  node_ = std::make_unique<Node>(config, id_, *transport_, *metrics_);
  fin1_seen_.assign(nodes_, false);
  fin2_seen_.assign(nodes_, false);
  peer_dead_.assign(nodes_, false);
}

NodeHost::NodeHost(const SystemConfig& config, net::NodeId id,
                   net::Transport& transport, MetricsCollector& shared_metrics)
    : id_(id),
      nodes_(config.nodes),
      transport_(&transport),
      metrics_(&shared_metrics) {
  node_ = std::make_unique<Node>(config, id_, *transport_, *metrics_);
  fin1_seen_.assign(nodes_, false);
  fin2_seen_.assign(nodes_, false);
  peer_dead_.assign(nodes_, false);
}

void NodeHost::ingest(const stream::Tuple& tuple, double now) {
  virtual_now_ = now;
  node_->on_local_tuple(tuple, now);
  ++arrivals_ingested_;
}

void NodeHost::ingest_batch(std::span<const stream::Tuple> tuples) {
  if (tuples.empty()) return;
  virtual_now_ = tuples.back().timestamp;
  node_->on_local_batch(tuples);
  arrivals_ingested_ += tuples.size();
}

void NodeHost::deliver(net::Frame&& frame, double now) {
  std::uint8_t phase = 0;
  if (is_fin(frame, &phase)) {
    handle_fin(frame.from, phase);
    return;
  }
  node_->on_frame(std::move(frame), now);
}

void NodeHost::note_peer_dead(net::NodeId peer) {
  if (peer >= nodes_ || peer == id_) return;
  if (peer_death_hook_) peer_death_hook_(peer);
  std::lock_guard lock(fin_mutex_);
  if (!peer_dead_[peer]) {
    DSJOIN_LOG_INFO("node %u: treating peer %u as dead", id_, peer);
    peer_dead_[peer] = true;
  }
  advance_fin_locked();
}

void NodeHost::begin_drain(std::span<const net::NodeId> dead_peers) {
  for (const auto dead : dead_peers) note_peer_dead(dead);
  {
    std::lock_guard lock(fin_mutex_);
    fin1_sent_ = true;
  }
  send_fin(1);
  std::lock_guard lock(fin_mutex_);
  advance_fin_locked();
}

bool NodeHost::wait_drain(double timeout_s) {
  std::unique_lock lock(fin_mutex_);
  return fin_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                          [this] { return drain_complete_; });
}

bool NodeHost::drain_complete() const {
  std::lock_guard lock(fin_mutex_);
  return drain_complete_;
}

NodeReport NodeHost::report(net::TrafficCounters traffic) const {
  NodeReport report;
  report.node_id = id_;
  report.local_tuples = node_->local_tuples();
  report.received_tuples = node_->received_tuples();
  report.decode_failures = node_->decode_failures();
  report.traffic = traffic;
  report.pairs = metrics_->pairs();
  return report;
}

net::Frame NodeHost::make_fin(net::NodeId from, net::NodeId to,
                              std::uint8_t phase) {
  net::Frame frame;
  frame.from = from;
  frame.to = to;
  frame.kind = net::FrameKind::kControl;
  frame.payload.assign(std::begin(kFinMagic), std::end(kFinMagic));
  frame.payload.push_back(phase);
  return frame;
}

bool NodeHost::is_fin(const net::Frame& frame, std::uint8_t* phase) {
  if (frame.kind != net::FrameKind::kControl) return false;
  if (frame.payload.size() != sizeof(kFinMagic) + 1) return false;
  if (std::memcmp(frame.payload.data(), kFinMagic, sizeof(kFinMagic)) != 0) {
    return false;
  }
  *phase = frame.payload.back();
  return true;
}

void NodeHost::handle_fin(net::NodeId peer, std::uint8_t phase) {
  if (peer >= nodes_ || peer == id_) return;
  std::lock_guard lock(fin_mutex_);
  if (phase == 1) {
    fin1_seen_[peer] = true;
  } else if (phase == 2) {
    fin2_seen_[peer] = true;
  }
  advance_fin_locked();
}

bool NodeHost::fin_phase_complete_locked(const std::vector<bool>& seen) const {
  for (net::NodeId peer = 0; peer < nodes_; ++peer) {
    if (peer == id_) continue;
    if (!seen[peer] && !peer_dead_[peer]) return false;
  }
  return true;
}

void NodeHost::advance_fin_locked() {
  if (!fin1_sent_) return;
  if (!fin2_sent_ && fin_phase_complete_locked(fin1_seen_)) {
    fin2_sent_ = true;
    send_fin(2);
  }
  if (fin2_sent_ && !drain_complete_ && fin_phase_complete_locked(fin2_seen_)) {
    drain_complete_ = true;
    fin_cv_.notify_all();
  }
}

void NodeHost::send_fin(std::uint8_t phase) {
  for (net::NodeId peer = 0; peer < nodes_; ++peer) {
    if (peer == id_) continue;
    // A failed send means the peer just died; its EOF path marks it dead.
    (void)transport_->send(make_fin(id_, peer, phase));
  }
}

}  // namespace dsjoin::core
