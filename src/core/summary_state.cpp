#include "dsjoin/core/summary_state.hpp"

#include <cassert>
#include <cmath>

#include "dsjoin/core/config.hpp"

namespace dsjoin::core {

namespace summary_codec {

void encode_dft(common::BufferWriter& out, stream::StreamSide side,
                std::uint32_t window, std::uint32_t retained,
                std::span<const dsp::CoeffDelta> deltas) {
  out.write_u8(kTagDft);
  out.write_u8(static_cast<std::uint8_t>(side));
  out.write_u32(window);
  out.write_u32(retained);
  out.write_u16(static_cast<std::uint16_t>(deltas.size()));
  for (const auto& d : deltas) {
    out.write_u32(d.index);
    out.write_f64(d.value.real());
    out.write_f64(d.value.imag());
  }
}

void encode_dft_quant(common::BufferWriter& out, stream::StreamSide side,
                      std::uint32_t window, std::uint32_t retained,
                      std::span<const dsp::CoeffDelta> deltas, unsigned bits,
                      double scale) {
  assert(bits == 8 || bits == 16);
  out.write_u8(kTagDftQuant);
  out.write_u8(static_cast<std::uint8_t>(side));
  out.write_u32(window);
  out.write_u32(retained);
  out.write_u8(static_cast<std::uint8_t>(bits));
  out.write_f64(scale);
  out.write_u16(static_cast<std::uint16_t>(deltas.size()));
  for (const auto& d : deltas) {
    assert(d.index <= 0xffff);
    out.write_u16(static_cast<std::uint16_t>(d.index));
    const std::int32_t re = dsp::quantize_component(d.value.real(), scale, bits);
    const std::int32_t im = dsp::quantize_component(d.value.imag(), scale, bits);
    if (bits == 8) {
      out.write_u8(static_cast<std::uint8_t>(static_cast<std::int8_t>(re)));
      out.write_u8(static_cast<std::uint8_t>(static_cast<std::int8_t>(im)));
    } else {
      out.write_u16(static_cast<std::uint16_t>(static_cast<std::int16_t>(re)));
      out.write_u16(static_cast<std::uint16_t>(static_cast<std::int16_t>(im)));
    }
  }
}

void encode_bloom(common::BufferWriter& out, stream::StreamSide side,
                  const sketch::BloomFilter& snapshot) {
  out.write_u8(kTagBloom);
  out.write_u8(static_cast<std::uint8_t>(side));
  snapshot.serialize(out);
}

void encode_sketch(common::BufferWriter& out, stream::StreamSide side,
                   const sketch::AgmsSketch& sketch) {
  out.write_u8(kTagSketch);
  out.write_u8(static_cast<std::uint8_t>(side));
  out.write_u32(sketch.shape().s0);
  out.write_u32(sketch.shape().s1);
  out.write_u64(sketch.seed());
  for (std::int64_t c : sketch.counters()) {
    out.write_u32(static_cast<std::uint32_t>(static_cast<std::int32_t>(c)));
  }
}

void encode_hist_spectrum(common::BufferWriter& out, stream::StreamSide side,
                          std::uint32_t buckets,
                          std::span<const dsp::Complex> coeffs) {
  out.write_u8(kTagHistSpectrum);
  out.write_u8(static_cast<std::uint8_t>(side));
  out.write_u32(buckets);
  out.write_u16(static_cast<std::uint16_t>(coeffs.size()));
  for (const auto& c : coeffs) {
    out.write_f64(c.real());
    out.write_f64(c.imag());
  }
}

void encode_hist_spectrum_quant(common::BufferWriter& out,
                                stream::StreamSide side, std::uint32_t buckets,
                                std::span<const dsp::Complex> coeffs,
                                unsigned bits, double scale) {
  assert(bits == 8 || bits == 16);
  out.write_u8(kTagHistSpectrumQuant);
  out.write_u8(static_cast<std::uint8_t>(side));
  out.write_u32(buckets);
  out.write_u8(static_cast<std::uint8_t>(bits));
  out.write_f64(scale);
  out.write_u16(static_cast<std::uint16_t>(coeffs.size()));
  for (const auto& c : coeffs) {
    const std::int32_t re = dsp::quantize_component(c.real(), scale, bits);
    const std::int32_t im = dsp::quantize_component(c.imag(), scale, bits);
    if (bits == 8) {
      out.write_u8(static_cast<std::uint8_t>(static_cast<std::int8_t>(re)));
      out.write_u8(static_cast<std::uint8_t>(static_cast<std::int8_t>(im)));
    } else {
      out.write_u16(static_cast<std::uint16_t>(static_cast<std::int16_t>(re)));
      out.write_u16(static_cast<std::uint16_t>(static_cast<std::int16_t>(im)));
    }
  }
}

void encode_query_scope(common::BufferWriter& out,
                        std::span<const std::uint32_t> query_ids,
                        std::span<const std::uint8_t> inner) {
  assert(!query_ids.empty() && query_ids.size() <= kMaxQueries);
  out.write_u8(kTagQueryScope);
  out.write_u8(static_cast<std::uint8_t>(query_ids.size()));
  for (std::uint32_t id : query_ids) out.write_u32(id);
  out.write_bytes(inner);
}

void encode_sample(common::BufferWriter& out, stream::StreamSide side,
                   const sampling::SampleSummary& summary) {
  assert(summary.keys.size() <= 0xffff);
  out.write_u8(kTagSample);
  out.write_u8(static_cast<std::uint8_t>(side));
  out.write_u8(kSampleSummaryVersion);
  out.write_u32(summary.strata);
  out.write_u32(summary.capacity);
  out.write_u64(summary.population);
  out.write_u16(static_cast<std::uint16_t>(summary.keys.size()));
  for (const auto& mass : summary.keys) {
    out.write_i64(mass.key);
    out.write_f64(mass.weight);
    out.write_f64(mass.variance);
  }
}

namespace {

// Shared validation for the quantized sub-blocks: width and scale must be
// plausible before any mantissa is trusted (a hostile scale would otherwise
// smuggle inf/NaN into the coefficient stores past the f64 path's checks).
common::Status read_quant_header(common::BufferReader& in, unsigned& bits,
                                 double& scale) {
  auto b = in.read_u8();
  if (!b) return b.status();
  if (b.value() != 8 && b.value() != 16) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "bad quantization width");
  }
  auto s = in.read_f64();
  if (!s) return s.status();
  if (!std::isfinite(s.value()) || s.value() < 0.0) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "bad quantization scale");
  }
  bits = b.value();
  scale = s.value();
  return common::Status::ok();
}

// Reads one mantissa pair and dequantizes it.
common::Result<dsp::Complex> read_quant_pair(common::BufferReader& in,
                                             unsigned bits, double scale) {
  std::int32_t re = 0, im = 0;
  if (bits == 8) {
    auto r = in.read_u8();
    if (!r) return r.status();
    auto i = in.read_u8();
    if (!i) return i.status();
    re = static_cast<std::int8_t>(r.value());
    im = static_cast<std::int8_t>(i.value());
  } else {
    auto r = in.read_u16();
    if (!r) return r.status();
    auto i = in.read_u16();
    if (!i) return i.status();
    re = static_cast<std::int16_t>(r.value());
    im = static_cast<std::int16_t>(i.value());
  }
  return dsp::Complex(dsp::dequantize_component(re, scale, bits),
                      dsp::dequantize_component(im, scale, bits));
}

}  // namespace

common::Status decode_blocks(const SummaryBlock& block, const Visitor& visitor) {
  common::BufferReader in(block.bytes);
  while (!in.exhausted()) {
    auto tag = in.read_u8();
    if (!tag) return tag.status();
    if (tag.value() == kTagQueryScope) {
      // Wrapper sub-block: no side byte; the inner block is opaque here and
      // handed to the visitor whole (it decodes it with its own visitor —
      // wrappers do not nest).
      auto count = in.read_u8();
      if (!count) return count.status();
      if (count.value() == 0 || count.value() > kMaxQueries) {
        return common::Status(common::ErrorCode::kDataLoss,
                              "bad query-scope id count");
      }
      std::vector<std::uint32_t> ids;
      ids.reserve(count.value());
      for (std::uint8_t i = 0; i < count.value(); ++i) {
        auto id = in.read_u32();
        if (!id) return id.status();
        // Canonical form: strictly ascending, so subscriber sets have one
        // wire representation.
        if (!ids.empty() && id.value() <= ids.back()) {
          return common::Status(common::ErrorCode::kDataLoss,
                                "query-scope ids not strictly ascending");
        }
        ids.push_back(id.value());
      }
      auto inner = in.read_bytes();
      if (!inner) return inner.status();
      if (visitor.on_query_scope) {
        visitor.on_query_scope(ids, SummaryBlock{std::move(inner).value()});
      }
      continue;
    }
    auto side_raw = in.read_u8();
    if (!side_raw) return side_raw.status();
    if (side_raw.value() > 1) {
      return common::Status(common::ErrorCode::kDataLoss, "bad summary side");
    }
    const auto side = static_cast<stream::StreamSide>(side_raw.value());

    switch (tag.value()) {
      case kTagDft: {
        auto window = in.read_u32();
        if (!window) return window.status();
        auto retained = in.read_u32();
        if (!retained) return retained.status();
        auto count = in.read_u16();
        if (!count) return count.status();
        std::vector<dsp::CoeffDelta> deltas;
        deltas.reserve(count.value());
        for (std::uint16_t i = 0; i < count.value(); ++i) {
          auto idx = in.read_u32();
          if (!idx) return idx.status();
          auto re = in.read_f64();
          if (!re) return re.status();
          auto im = in.read_f64();
          if (!im) return im.status();
          deltas.push_back(dsp::CoeffDelta{
              idx.value(), dsp::Complex(re.value(), im.value())});
        }
        if (visitor.on_dft) {
          visitor.on_dft(side, window.value(), retained.value(), deltas);
        }
        break;
      }
      case kTagDftQuant: {
        auto window = in.read_u32();
        if (!window) return window.status();
        auto retained = in.read_u32();
        if (!retained) return retained.status();
        unsigned bits = 0;
        double scale = 0.0;
        if (auto st = read_quant_header(in, bits, scale); !st.is_ok()) return st;
        auto count = in.read_u16();
        if (!count) return count.status();
        std::vector<dsp::CoeffDelta> deltas;
        deltas.reserve(count.value());
        for (std::uint16_t i = 0; i < count.value(); ++i) {
          auto idx = in.read_u16();
          if (!idx) return idx.status();
          auto v = read_quant_pair(in, bits, scale);
          if (!v) return v.status();
          deltas.push_back(dsp::CoeffDelta{idx.value(), v.value()});
        }
        if (visitor.on_dft) {
          visitor.on_dft(side, window.value(), retained.value(), deltas);
        }
        break;
      }
      case kTagBloom: {
        auto filter = sketch::BloomFilter::deserialize(in);
        if (!filter) return filter.status();
        if (visitor.on_bloom) visitor.on_bloom(side, std::move(filter).value());
        break;
      }
      case kTagSketch: {
        auto s0 = in.read_u32();
        if (!s0) return s0.status();
        auto s1 = in.read_u32();
        if (!s1) return s1.status();
        auto seed = in.read_u64();
        if (!seed) return seed.status();
        if (s0.value() == 0 || s1.value() == 0 ||
            static_cast<std::size_t>(s0.value()) * s1.value() > (1u << 22)) {
          return common::Status(common::ErrorCode::kDataLoss,
                                "implausible sketch shape");
        }
        sketch::AgmsSketch decoded(sketch::AgmsShape{s0.value(), s1.value()},
                                   seed.value());
        // Counters travel as i32 (sign-extended on read).
        std::vector<std::int64_t> counters(
            static_cast<std::size_t>(s0.value()) * s1.value());
        for (auto& c : counters) {
          auto v = in.read_u32();
          if (!v) return v.status();
          c = static_cast<std::int32_t>(v.value());
        }
        decoded.set_counters(std::move(counters));
        if (visitor.on_sketch) visitor.on_sketch(side, std::move(decoded));
        break;
      }
      case kTagHistSpectrum: {
        auto buckets = in.read_u32();
        if (!buckets) return buckets.status();
        auto count = in.read_u16();
        if (!count) return count.status();
        std::vector<dsp::Complex> coeffs;
        coeffs.reserve(count.value());
        for (std::uint16_t i = 0; i < count.value(); ++i) {
          auto re = in.read_f64();
          if (!re) return re.status();
          auto im = in.read_f64();
          if (!im) return im.status();
          coeffs.emplace_back(re.value(), im.value());
        }
        if (visitor.on_hist_spectrum) {
          visitor.on_hist_spectrum(side, buckets.value(), std::move(coeffs));
        }
        break;
      }
      case kTagHistSpectrumQuant: {
        auto buckets = in.read_u32();
        if (!buckets) return buckets.status();
        unsigned bits = 0;
        double scale = 0.0;
        if (auto st = read_quant_header(in, bits, scale); !st.is_ok()) return st;
        auto count = in.read_u16();
        if (!count) return count.status();
        std::vector<dsp::Complex> coeffs;
        coeffs.reserve(count.value());
        for (std::uint16_t i = 0; i < count.value(); ++i) {
          auto v = read_quant_pair(in, bits, scale);
          if (!v) return v.status();
          coeffs.push_back(v.value());
        }
        if (visitor.on_hist_spectrum) {
          visitor.on_hist_spectrum(side, buckets.value(), std::move(coeffs));
        }
        break;
      }
      case kTagSample: {
        auto version = in.read_u8();
        if (!version) return version.status();
        if (version.value() != kSampleSummaryVersion) {
          return common::Status(common::ErrorCode::kDataLoss,
                                "unsupported sample summary version");
        }
        sampling::SampleSummary summary;
        auto strata = in.read_u32();
        if (!strata) return strata.status();
        auto capacity = in.read_u32();
        if (!capacity) return capacity.status();
        // Mirrors the deserialize_config ranges: a hostile geometry would
        // otherwise poison downstream budget arithmetic.
        if (strata.value() == 0 || strata.value() > 4096 ||
            capacity.value() == 0 || capacity.value() > (1u << 15)) {
          return common::Status(common::ErrorCode::kDataLoss,
                                "implausible sample geometry");
        }
        auto population = in.read_u64();
        if (!population) return population.status();
        if (population.value() > (1ULL << 48)) {
          return common::Status(common::ErrorCode::kDataLoss,
                                "implausible sample population");
        }
        summary.strata = strata.value();
        summary.capacity = capacity.value();
        summary.population = population.value();
        auto count = in.read_u16();
        if (!count) return count.status();
        summary.keys.reserve(count.value());
        for (std::uint16_t i = 0; i < count.value(); ++i) {
          auto key = in.read_i64();
          if (!key) return key.status();
          auto weight = in.read_f64();
          if (!weight) return weight.status();
          auto variance = in.read_f64();
          if (!variance) return variance.status();
          // Canonical form: strictly ascending keys, finite non-negative
          // masses. estimate_key_count binary-searches the list, so an
          // unsorted or NaN-carrying block must never reach a store.
          if (!summary.keys.empty() && key.value() <= summary.keys.back().key) {
            return common::Status(common::ErrorCode::kDataLoss,
                                  "sample keys not strictly ascending");
          }
          if (!std::isfinite(weight.value()) || weight.value() < 0.0 ||
              !std::isfinite(variance.value()) || variance.value() < 0.0) {
            return common::Status(common::ErrorCode::kDataLoss,
                                  "bad sample mass");
          }
          summary.keys.push_back(sampling::KeyMass{
              key.value(), weight.value(), variance.value()});
        }
        if (visitor.on_sample) visitor.on_sample(side, std::move(summary));
        break;
      }
      default:
        return common::Status(common::ErrorCode::kDataLoss,
                              "unknown summary sub-block tag");
    }
  }
  return common::Status::ok();
}

}  // namespace summary_codec

CoeffStore::CoeffStore(std::uint32_t window, std::uint32_t retained) {
  spectrum_.window = window;
  spectrum_.coeffs.assign(retained, dsp::Complex{});
}

void CoeffStore::apply(const std::vector<dsp::CoeffDelta>& deltas) {
  for (const auto& d : deltas) {
    if (d.index < spectrum_.coeffs.size()) {
      spectrum_.coeffs[d.index] = d.value;
      ++updates_;
      dirty_ = true;
    }
  }
}

void CoeffStore::rebuild() {
  counts_.clear();
  for (std::int64_t v : dsp::reconstruct_rounded(spectrum_)) {
    ++counts_[v];
  }
  dirty_ = false;
}

std::uint64_t CoeffStore::estimate_count(std::int64_t key, std::int64_t tolerance) {
  if (dirty_) rebuild();
  std::uint64_t total = 0;
  for (std::int64_t k = key - tolerance; k <= key + tolerance; ++k) {
    const auto it = counts_.find(k);
    if (it != counts_.end()) total += it->second;
  }
  return total;
}

bool BloomStore::contains(std::int64_t key, std::int64_t tolerance) const {
  if (!snapshot_) return false;
  for (std::int64_t k = key - tolerance; k <= key + tolerance; ++k) {
    if (snapshot_->contains(static_cast<std::uint64_t>(k))) return true;
  }
  return false;
}

}  // namespace dsjoin::core
