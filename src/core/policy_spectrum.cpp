// SPEC (ablation A3, ours): the shared SpectrumSummaryEngine (histogram-DFT
// spectra, periodic broadcasts, cached Parseval estimates) and the
// join-size-weighted routing on top — what SKCH becomes when its randomized
// sketches are replaced by the deterministic truncated histogram spectrum.
#include <algorithm>
#include <cmath>

#include "policy_impl.hpp"

namespace dsjoin::core {

namespace {

// Summary geometry: same wire budget as the other policies — K complex
// coefficients. Histogram resolution scales with the budget so the
// Parseval estimate keeps useful resolution.
std::uint32_t spectrum_buckets(const SystemConfig& config) {
  const auto k = static_cast<std::uint32_t>(config.dft_retained());
  return std::max<std::uint32_t>(64, k * 64);
}

std::size_t spectrum_retained(const SystemConfig& config) {
  const auto k = static_cast<std::size_t>(config.dft_retained());
  return std::min<std::size_t>(std::max<std::size_t>(k, 1),
                               spectrum_buckets(config) / 2 + 1);
}

}  // namespace

SpectrumSummaryEngine::SpectrumSummaryEngine(const SystemConfig& config,
                                             net::NodeId self)
    : config_(config), self_(self),
      buckets_(spectrum_buckets(config)),
      local_{dsp::HistogramSpectrum(config.domain, spectrum_buckets(config),
                                    spectrum_retained(config)),
             dsp::HistogramSpectrum(config.domain, spectrum_buckets(config),
                                    spectrum_retained(config))},
      window_{stream::CountWindow(config.dft_window),
              stream::CountWindow(config.dft_window)},
      peers_(config.nodes) {}

void SpectrumSummaryEngine::observe_local(const stream::Tuple& tuple) {
  const auto side = static_cast<std::size_t>(tuple.side);
  const auto evicted = window_[side].insert(tuple);
  local_[side].add(tuple.key, +1);
  if (evicted.valid) {
    local_[side].add(evicted.tuple.key, -1);
  }
  ++local_tuples_;
}

void SpectrumSummaryEngine::apply_spectrum(net::NodeId peer,
                                           stream::StreamSide side,
                                           std::uint32_t buckets,
                                           std::vector<dsp::Complex> coeffs) {
  if (buckets != buckets_) return;  // geometry must match the experiment
  auto& state = peers_[peer];
  const auto s = static_cast<std::size_t>(side);
  state.remote[s] = std::move(coeffs);
  state.seeded[s] = true;
  state.est_dirty = {true, true};
}

std::vector<OutboundSummary> SpectrumSummaryEngine::maintenance(double /*now*/) {
  if (local_tuples_ % config_.summary_epoch_tuples == 0) {
    for (auto& peer : peers_) peer.est_dirty = {true, true};
  }
  if (local_tuples_ - last_broadcast_tuple_ < config_.summary_epoch_tuples) {
    return {};
  }
  last_broadcast_tuple_ = local_tuples_;
  common::BufferWriter writer;
  for (std::size_t side = 0; side < 2; ++side) {
    const auto side_tag = static_cast<stream::StreamSide>(side);
    const auto coeffs = local_[side].coefficients();
    // Quantized encoding when enabled: the histogram spectrum reconstructs
    // bucket counts through a length-buckets_ inverse transform, so the
    // same MSE model applies with W = buckets_ and K = |coeffs|.
    unsigned bits = 0;
    double scale = 0.0;
    if (config_.summary_quant_bits != 0) {
      scale = dsp::quant_scale(coeffs);
      bits = dsp::choose_quant_bits(scale, coeffs.size(), buckets_,
                                    config_.summary_quant_bits);
    }
    if (bits != 0) {
      summary_codec::encode_hist_spectrum_quant(writer, side_tag, buckets_,
                                                coeffs, bits, scale);
    } else {
      summary_codec::encode_hist_spectrum(writer, side_tag, buckets_, coeffs);
    }
  }
  SummaryBlock block{std::move(writer).take()};
  std::vector<OutboundSummary> out;
  for (net::NodeId j = 0; j < config_.nodes; ++j) {
    if (j != self_) {
      out.push_back(OutboundSummary{j, block, SummaryFamily::kSpectrum});
    }
  }
  return out;
}

double SpectrumSummaryEngine::refreshed_estimate(net::NodeId peer,
                                                 std::size_t tuple_side) {
  auto& state = peers_[peer];
  if (state.est_dirty[tuple_side]) {
    const std::size_t opposite = 1 - tuple_side;
    state.est[tuple_side] =
        state.seeded[opposite]
            ? std::max(dsp::HistogramSpectrum::estimate_join(
                           local_[tuple_side].coefficients(),
                           state.remote[opposite], buckets_),
                       0.0)
            : 0.0;
    state.est_dirty[tuple_side] = false;
  }
  return state.est[tuple_side];
}

SpectrumPolicy::SpectrumPolicy(const SystemConfig& config, net::NodeId self,
                               SummarySubstrate& substrate)
    : RoutingPolicy(substrate), config_(config), self_(self),
      throttle_(config.throttle), engine_(&substrate.spectrum()),
      rng_(config.seed ^ (0x4e57'beefULL + self)) {}

std::vector<net::NodeId> SpectrumPolicy::route(const stream::Tuple& tuple) {
  const std::uint32_t n = config_.nodes;
  const double budget = throttle_to_budget(throttle_, n);
  const auto side = static_cast<std::size_t>(tuple.side);
  const std::size_t opposite = 1 - side;

  std::vector<net::NodeId> peer_ids;
  std::vector<double> scores;
  peer_ids.reserve(n - 1);
  for (net::NodeId j = 0; j < n; ++j) {
    if (j == self_) continue;
    peer_ids.push_back(j);
    if (!engine_->remote_seeded(j, opposite)) {
      scores.push_back(1.0);  // bootstrap exploration
    } else {
      scores.push_back(engine_->refreshed_estimate(j, side));
    }
  }

  // Key-independent weights, like SKCH; uniform spread when the estimates
  // carry no signal at all.
  double score_sum = 0.0;
  for (double v : scores) score_sum += v;
  if (score_sum <= 0.0) {
    std::fill(scores.begin(), scores.end(), 1.0);
  }
  const double floor = 0.05 * budget / static_cast<double>(n - 1);
  const auto probs = allocate_flow_probabilities(scores, budget, floor);

  std::vector<net::NodeId> out;
  last_probs_.assign(n, 0.0);
  for (std::size_t idx = 0; idx < peer_ids.size(); ++idx) {
    last_probs_[peer_ids[idx]] = probs[idx];
    if (rng_.next_bool(probs[idx])) out.push_back(peer_ids[idx]);
  }
  return out;
}

}  // namespace dsjoin::core
