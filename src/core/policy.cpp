#include "dsjoin/core/policy.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "dsjoin/core/substrate.hpp"
#include "policy_impl.hpp"

namespace dsjoin::core {

RoutingPolicy::RoutingPolicy(SummarySubstrate& substrate)
    : substrate_(&substrate) {}

RoutingPolicy::~RoutingPolicy() = default;

// The summary half of every policy lives in the substrate; the base class
// forwards the ingest-path calls so a standalone policy (2-arg factory)
// behaves exactly like the pre-substrate self-contained object. A node
// hosting several queries bypasses these and drives its substrate directly,
// once per tuple.
void RoutingPolicy::observe_local(const stream::Tuple& tuple) {
  substrate_->observe_local(tuple);
}

SummaryBlock RoutingPolicy::piggyback_for(net::NodeId peer) {
  return substrate_->piggyback_for(peer);
}

void RoutingPolicy::on_summary(net::NodeId peer, const SummaryBlock& block) {
  substrate_->on_summary(peer, block);
}

std::vector<OutboundSummary> RoutingPolicy::maintenance(double now) {
  return substrate_->maintenance(now);
}

bool RoutingPolicy::uses_summaries() const noexcept {
  return substrate_->uses_summaries();
}

double throttle_to_budget(double throttle, std::uint32_t nodes) noexcept {
  if (nodes < 2) return 0.0;
  const double peers = static_cast<double>(nodes - 1);
  const double t = std::clamp(throttle, 0.0, 1.0);
  return std::clamp(std::pow(peers, t), 1.0, peers);
}

std::vector<double> allocate_flow_probabilities(std::span<const double> scores,
                                                double budget, double floor) {
  const std::size_t n = scores.size();
  std::vector<double> probs(n, 0.0);
  if (n == 0) return probs;
  floor = std::clamp(floor, 0.0, 1.0);
  budget = std::clamp(budget, 0.0, static_cast<double>(n));

  double score_sum = 0.0;
  for (double s : scores) score_sum += std::max(s, 0.0);
  if (score_sum <= 0.0) {
    // No signal at all: only the exploration floor flows.
    std::fill(probs.begin(), probs.end(), floor);
    return probs;
  }

  // Water-fill p_j = min(1, floor + w * s_j) with sum p_j = budget.
  // Iteratively saturate: peers that hit 1 are fixed, the rest share the
  // remaining budget proportionally to score. Terminates in <= n rounds.
  std::vector<bool> saturated(n, false);
  double fixed = 0.0;        // mass already assigned to saturated peers
  std::size_t sat_count = 0;
  for (std::size_t round = 0; round < n; ++round) {
    const double active = static_cast<double>(n - sat_count);
    double remaining = budget - fixed - floor * active;
    if (remaining < 0.0) remaining = 0.0;
    double active_score = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!saturated[j]) active_score += std::max(scores[j], 0.0);
    }
    if (active_score <= 0.0) {
      for (std::size_t j = 0; j < n; ++j) {
        if (!saturated[j]) probs[j] = floor;
      }
      break;
    }
    const double w = remaining / active_score;
    bool newly_saturated = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (saturated[j]) continue;
      const double p = floor + w * std::max(scores[j], 0.0);
      if (p >= 1.0) {
        probs[j] = 1.0;
        saturated[j] = true;
        fixed += 1.0;
        ++sat_count;
        newly_saturated = true;
      } else {
        probs[j] = p;
      }
    }
    if (!newly_saturated) break;
  }
  return probs;
}

std::unique_ptr<RoutingPolicy> RoutingPolicy::create(const SystemConfig& config,
                                                     net::NodeId self) {
  auto substrate = std::make_unique<SummarySubstrate>(config, self);
  auto policy = create(config, self, *substrate);
  if (policy != nullptr) policy->owned_ = std::move(substrate);
  return policy;
}

std::unique_ptr<RoutingPolicy> RoutingPolicy::create(const SystemConfig& config,
                                                     net::NodeId self,
                                                     SummarySubstrate& substrate) {
  switch (config.policy) {
    case PolicyKind::kBase:
      return std::make_unique<BasePolicy>(config, self, substrate);
    case PolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>(config, self, substrate);
    case PolicyKind::kDft:
      return std::make_unique<DftFamilyPolicy>(config, self, substrate,
                                               /*reconstruct=*/false);
    case PolicyKind::kDftt:
      return std::make_unique<DftFamilyPolicy>(config, self, substrate,
                                               /*reconstruct=*/true);
    case PolicyKind::kBloom:
      return std::make_unique<BloomPolicy>(config, self, substrate);
    case PolicyKind::kSketch:
      return std::make_unique<SketchPolicy>(config, self, substrate);
    case PolicyKind::kSpectrum:
      return std::make_unique<SpectrumPolicy>(config, self, substrate);
    case PolicyKind::kSample:
      return std::make_unique<SamplePolicy>(config, self, substrate);
  }
  assert(false && "unknown policy kind");
  return nullptr;
}

namespace {

// The one registry every name lookup and every CLI help string reads.
constexpr PolicyName kPolicyNames[] = {
    {PolicyKind::kBase, "BASE"},     {PolicyKind::kRoundRobin, "RR"},
    {PolicyKind::kDft, "DFT"},       {PolicyKind::kDftt, "DFTT"},
    {PolicyKind::kBloom, "BLOOM"},   {PolicyKind::kSketch, "SKCH"},
    {PolicyKind::kSpectrum, "SPEC"}, {PolicyKind::kSample, "SMPL"},
};

}  // namespace

std::span<const PolicyName> policy_names() noexcept { return kPolicyNames; }

std::string policy_names_csv() {
  std::string out;
  for (const auto& entry : kPolicyNames) {
    if (!out.empty()) out += " | ";
    out += entry.name;
  }
  return out;
}

const char* to_string(PolicyKind kind) noexcept {
  for (const auto& entry : kPolicyNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "?";
}

PolicyKind policy_from_string(const std::string& name) {
  for (const auto& entry : kPolicyNames) {
    if (name == entry.name) return entry.kind;
  }
  throw std::invalid_argument("unknown policy: " + name +
                              " (expected " + policy_names_csv() + ")");
}

BasePolicy::BasePolicy(const SystemConfig& config, net::NodeId self,
                       SummarySubstrate& substrate)
    : RoutingPolicy(substrate), self_(self), nodes_(config.nodes) {}

std::vector<net::NodeId> BasePolicy::route(const stream::Tuple&) {
  std::vector<net::NodeId> out;
  out.reserve(nodes_ - 1);
  for (net::NodeId j = 0; j < nodes_; ++j) {
    if (j != self_) out.push_back(j);
  }
  return out;
}

RoundRobinPolicy::RoundRobinPolicy(const SystemConfig& config, net::NodeId self,
                                   SummarySubstrate& substrate)
    : RoutingPolicy(substrate), self_(self), nodes_(config.nodes),
      throttle_(config.throttle) {}

std::vector<net::NodeId> RoundRobinPolicy::route(const stream::Tuple&) {
  const auto budget = throttle_to_budget(throttle_, nodes_);
  const auto k = static_cast<std::uint32_t>(std::lround(budget));
  std::vector<net::NodeId> out;
  out.reserve(k);
  for (std::uint32_t step = 0; step < k && step + 1 < nodes_; ++step) {
    cursor_ = (cursor_ + 1) % nodes_;
    if (cursor_ == self_) cursor_ = (cursor_ + 1) % nodes_;
    out.push_back(cursor_);
  }
  return out;
}

}  // namespace dsjoin::core
