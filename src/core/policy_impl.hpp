// Concrete routing-policy classes (private to the core library; the public
// surface is RoutingPolicy::create in policy.hpp).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "dsjoin/core/policy.hpp"
#include "dsjoin/core/summary_state.hpp"
#include "dsjoin/dsp/histogram_spectrum.hpp"
#include "dsjoin/dsp/sliding_dft.hpp"
#include "dsjoin/sampling/reservoir.hpp"
#include "dsjoin/sketch/agms.hpp"
#include "dsjoin/sketch/bloom.hpp"
#include "dsjoin/stream/window.hpp"

namespace dsjoin::core {

/// BASE: exact join, broadcast everything (Section 5.1).
class BasePolicy final : public RoutingPolicy {
 public:
  BasePolicy(const SystemConfig& config, net::NodeId self);

  const char* name() const noexcept override { return "BASE"; }
  void observe_local(const stream::Tuple&) override {}
  std::vector<net::NodeId> route(const stream::Tuple&) override;
  SummaryBlock piggyback_for(net::NodeId) override { return {}; }
  void on_summary(net::NodeId, const SummaryBlock&) override {}
  std::vector<OutboundSummary> maintenance(double) override { return {}; }
  void set_throttle(double) override {}

 private:
  net::NodeId self_;
  std::uint32_t nodes_;
};

/// RR: round-robin to ~T_i peers per tuple — the paper's fallback heuristic
/// for the detected uniform worst case, also usable standalone.
class RoundRobinPolicy final : public RoutingPolicy {
 public:
  RoundRobinPolicy(const SystemConfig& config, net::NodeId self);

  const char* name() const noexcept override { return "RR"; }
  void observe_local(const stream::Tuple&) override {}
  std::vector<net::NodeId> route(const stream::Tuple&) override;
  SummaryBlock piggyback_for(net::NodeId) override { return {}; }
  void on_summary(net::NodeId, const SummaryBlock&) override {}
  std::vector<OutboundSummary> maintenance(double) override { return {}; }
  void set_throttle(double throttle) override { throttle_ = throttle; }

 private:
  net::NodeId self_;
  std::uint32_t nodes_;
  double throttle_;
  net::NodeId cursor_ = 0;
};

/// Shared implementation of DFT and DFTT (Sections 5.2-5.3). Maintains a
/// per-side sliding DFT of the local joining attributes, ships coefficient
/// deltas (piggybacked or standalone), tracks peers' coefficients, and
/// derives the flow filter from them.
class DftFamilyPolicy : public RoutingPolicy {
 public:
  DftFamilyPolicy(const SystemConfig& config, net::NodeId self, bool reconstruct);

  const char* name() const noexcept override { return reconstruct_ ? "DFTT" : "DFT"; }
  void observe_local(const stream::Tuple& tuple) override;
  std::vector<net::NodeId> route(const stream::Tuple& tuple) override;
  SummaryBlock piggyback_for(net::NodeId peer) override;
  void on_summary(net::NodeId peer, const SummaryBlock& block) override;
  std::vector<OutboundSummary> maintenance(double now) override;
  void set_throttle(double throttle) override { throttle_ = throttle; }
  bool fallback_active() const noexcept override { return fallback_; }
  bool uses_summaries() const noexcept override { return true; }
  std::vector<double> flow_probabilities() const override { return last_probs_; }

 private:
  struct PeerState {
    std::array<CoeffStore, 2> remote;           // by remote side
    std::array<std::vector<dsp::Complex>, 2> synced;  // last coeffs sent, by local side
    std::array<double, 2> rho{0.0, 0.0};        // corr(local side s, remote opp(s))
    std::array<bool, 2> rho_dirty{true, true};
    std::uint64_t tuples_since_contact = 0;
  };

  /// Deltas (vs what `peer` has been sent) for one local side; at most
  /// `max_entries` (0 = unlimited), largest changes first.
  std::vector<dsp::CoeffDelta> deltas_for(net::NodeId peer, std::size_t side,
                                          std::size_t max_entries);
  /// Encodes both sides' pending deltas for a peer into one block.
  SummaryBlock block_for(net::NodeId peer, std::size_t max_entries_per_side);
  double refreshed_rho(net::NodeId peer, std::size_t tuple_side);
  double delta_threshold(std::size_t side) const;

  /// Robust value band for outlier clipping (median +/- 10 MAD, refreshed
  /// each epoch from a sample of recent raw keys).
  struct ClipBand {
    double lo = -1e300;
    double hi = 1e300;
  };
  void refresh_clip_band(std::size_t side);

  /// Pushes the side's buffered (already clipped) values into the DFT as
  /// one batch. Called before any read of local_[side]; see observe_local.
  void flush_pending(std::size_t side);

  SystemConfig config_;
  net::NodeId self_;
  bool reconstruct_;
  double throttle_;
  std::array<dsp::SlidingDft, 2> local_;
  /// Clipped values observed since the last read of local_[side]. route()
  /// and piggyback_for() never read the local DFTs, so between summary
  /// refreshes the per-tuple pushes accumulate here and enter the DFT
  /// through the vectorized push_batch — with results identical to pushing
  /// each value at observation time, because nothing reads the coefficients
  /// in between.
  std::array<std::vector<double>, 2> pending_values_;
  std::array<ClipBand, 2> clip_;
  std::array<std::vector<double>, 2> recent_raw_;  // bounded sample buffer
  /// Epoch snapshot of the local coefficients — what peers are synced to.
  std::array<std::vector<dsp::Complex>, 2> published_;
  std::vector<PeerState> peers_;  // indexed by node id (self entry unused)
  common::Xoshiro256 rng_;
  std::uint64_t local_tuples_ = 0;
  bool fallback_ = false;
  net::NodeId rr_cursor_ = 0;
  std::vector<double> last_probs_;
};

/// BLOOM: counting Bloom filters over the per-side summary windows;
/// periodic bit-vector snapshots broadcast to peers; routing on membership.
class BloomPolicy final : public RoutingPolicy {
 public:
  BloomPolicy(const SystemConfig& config, net::NodeId self);

  const char* name() const noexcept override { return "BLOOM"; }
  void observe_local(const stream::Tuple& tuple) override;
  std::vector<net::NodeId> route(const stream::Tuple& tuple) override;
  SummaryBlock piggyback_for(net::NodeId) override { return {}; }
  void on_summary(net::NodeId peer, const SummaryBlock& block) override;
  std::vector<OutboundSummary> maintenance(double now) override;
  void set_throttle(double throttle) override { throttle_ = throttle; }
  bool uses_summaries() const noexcept override { return true; }
  std::vector<double> flow_probabilities() const override { return last_probs_; }

 private:
  struct PeerState {
    std::array<BloomStore, 2> remote;  // by remote side
  };

  /// Applies the side's buffered tuples to the window and counting filter
  /// as one batch. Called before any read of counting_[side] (which only
  /// happens at snapshot time; route() reads peer snapshots exclusively).
  void flush_pending(std::size_t side);

  SystemConfig config_;
  net::NodeId self_;
  double throttle_;
  std::array<sketch::CountingBloomFilter, 2> counting_;
  std::array<stream::CountWindow, 2> window_;
  /// Tuples observed since the last snapshot of counting_[side].
  std::array<std::vector<stream::Tuple>, 2> pending_;
  std::vector<stream::Tuple> evicted_scratch_;
  std::vector<std::uint64_t> key_scratch_;
  std::vector<std::int32_t> delta_scratch_;
  std::vector<PeerState> peers_;
  common::Xoshiro256 rng_;
  std::uint64_t local_tuples_ = 0;
  std::uint64_t last_broadcast_tuple_ = 0;
  std::vector<double> last_probs_;
};

/// SKCH: AGMS sketches over the per-side summary windows; periodic sketch
/// broadcasts; flow weights from pairwise join-size estimates.
class SketchPolicy final : public RoutingPolicy {
 public:
  SketchPolicy(const SystemConfig& config, net::NodeId self);

  const char* name() const noexcept override { return "SKCH"; }
  void observe_local(const stream::Tuple& tuple) override;
  std::vector<net::NodeId> route(const stream::Tuple& tuple) override;
  SummaryBlock piggyback_for(net::NodeId) override { return {}; }
  void on_summary(net::NodeId peer, const SummaryBlock& block) override;
  std::vector<OutboundSummary> maintenance(double now) override;
  void set_throttle(double throttle) override { throttle_ = throttle; }
  bool uses_summaries() const noexcept override { return true; }
  std::vector<double> flow_probabilities() const override { return last_probs_; }

 private:
  struct PeerState {
    std::array<SketchStore, 2> remote;
    std::array<double, 2> est{0.0, 0.0};  // join-size estimate by tuple side
    std::array<bool, 2> est_dirty{true, true};
  };

  double refreshed_estimate(net::NodeId peer, std::size_t tuple_side);

  /// Applies the side's buffered tuples to the window and sketch as one
  /// batch (AGMS updates commute, so insert/evict interleaving is free to
  /// reorder). Called before any read of local_[side]: the cached pairwise
  /// estimates only go stale at epoch boundaries, so between refreshes the
  /// per-tuple updates accumulate here.
  void flush_pending(std::size_t side);

  SystemConfig config_;
  net::NodeId self_;
  double throttle_;
  std::array<sketch::AgmsSketch, 2> local_;
  std::array<stream::CountWindow, 2> window_;
  /// Tuples observed since the last read of local_[side].
  std::array<std::vector<stream::Tuple>, 2> pending_;
  std::vector<stream::Tuple> evicted_scratch_;
  std::vector<std::uint64_t> key_scratch_;
  std::vector<PeerState> peers_;
  common::Xoshiro256 rng_;
  std::uint64_t local_tuples_ = 0;
  std::uint64_t last_broadcast_tuple_ = 0;
  std::vector<double> last_probs_;
};

/// SPEC (ablation A3, ours): histogram-DFT spectra over the per-side
/// summary windows; periodic broadcasts; flow weights from the truncated
/// Parseval join-size estimate. The deterministic counterpart of SKCH.
class SpectrumPolicy final : public RoutingPolicy {
 public:
  SpectrumPolicy(const SystemConfig& config, net::NodeId self);

  const char* name() const noexcept override { return "SPEC"; }
  void observe_local(const stream::Tuple& tuple) override;
  std::vector<net::NodeId> route(const stream::Tuple& tuple) override;
  SummaryBlock piggyback_for(net::NodeId) override { return {}; }
  void on_summary(net::NodeId peer, const SummaryBlock& block) override;
  std::vector<OutboundSummary> maintenance(double now) override;
  void set_throttle(double throttle) override { throttle_ = throttle; }
  bool uses_summaries() const noexcept override { return true; }
  std::vector<double> flow_probabilities() const override { return last_probs_; }

 private:
  struct PeerState {
    std::array<std::vector<dsp::Complex>, 2> remote;  // by remote side
    std::array<bool, 2> seeded{false, false};
    std::array<double, 2> est{0.0, 0.0};
    std::array<bool, 2> est_dirty{true, true};
  };

  double refreshed_estimate(net::NodeId peer, std::size_t tuple_side);

  SystemConfig config_;
  net::NodeId self_;
  double throttle_;
  std::uint32_t buckets_;
  std::array<dsp::HistogramSpectrum, 2> local_;
  std::array<stream::CountWindow, 2> window_;
  std::vector<PeerState> peers_;
  common::Xoshiro256 rng_;
  std::uint64_t local_tuples_ = 0;
  std::uint64_t last_broadcast_tuple_ = 0;
  std::vector<double> last_probs_;
};

/// SMPL (ours): stratified sliding-window reservoir samples per side;
/// periodic sample-summary broadcasts; per-key flow weights from
/// Horvitz–Thompson match estimates against peers' opposite-side samples,
/// plus an accumulated predicted-epsilon upper bound from the estimator's
/// variance (DESIGN.md §14).
class SamplePolicy final : public RoutingPolicy {
 public:
  SamplePolicy(const SystemConfig& config, net::NodeId self);

  const char* name() const noexcept override { return "SMPL"; }
  void observe_local(const stream::Tuple& tuple) override;
  std::vector<net::NodeId> route(const stream::Tuple& tuple) override;
  SummaryBlock piggyback_for(net::NodeId) override { return {}; }
  void on_summary(net::NodeId peer, const SummaryBlock& block) override;
  std::vector<OutboundSummary> maintenance(double now) override;
  void set_throttle(double throttle) override { throttle_ = throttle; }
  bool uses_summaries() const noexcept override { return true; }
  std::vector<double> flow_probabilities() const override { return last_probs_; }
  EpsilonBoundTerms epsilon_bound_terms() const noexcept override {
    return bound_;
  }

 private:
  struct PeerState {
    std::array<SampleStore, 2> remote;  // by remote side
  };

  /// Own sample aggregated for estimation, refreshed lazily per epoch
  /// (route() consults the own opposite-side summary for the bound's
  /// locally-found term).
  const sampling::SampleSummary& own_summary(std::size_t side);

  SystemConfig config_;
  net::NodeId self_;
  double throttle_;
  std::array<sampling::StratifiedReservoir, 2> reservoir_;
  std::array<sampling::SampleSummary, 2> own_;
  std::array<bool, 2> own_dirty_{true, true};
  std::vector<PeerState> peers_;
  common::Xoshiro256 rng_;
  std::uint64_t local_tuples_ = 0;
  std::uint64_t last_broadcast_tuple_ = 0;
  std::vector<double> last_probs_;
  EpsilonBoundTerms bound_;
};

}  // namespace dsjoin::core
