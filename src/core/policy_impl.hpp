// Concrete routing-policy classes (private to the core library; the public
// surface is RoutingPolicy::create in policy.hpp).
//
// Post-substrate (DESIGN.md §15) these classes hold routing state only:
// the per-query RNG stream, throttle, fallback bookkeeping and probability
// diagnostics. The summary state each consults lives in the family engine
// of the SummarySubstrate passed at construction, shared with every other
// query of the same family on the node.
#pragma once

#include <vector>

#include "dsjoin/core/policy.hpp"
#include "dsjoin/core/substrate.hpp"

namespace dsjoin::core {

/// BASE: exact join, broadcast everything (Section 5.1).
class BasePolicy final : public RoutingPolicy {
 public:
  BasePolicy(const SystemConfig& config, net::NodeId self,
             SummarySubstrate& substrate);

  const char* name() const noexcept override {
    return to_string(PolicyKind::kBase);
  }
  std::vector<net::NodeId> route(const stream::Tuple&) override;
  void set_throttle(double) override {}

 private:
  net::NodeId self_;
  std::uint32_t nodes_;
};

/// RR: round-robin to ~T_i peers per tuple — the paper's fallback heuristic
/// for the detected uniform worst case, also usable standalone.
class RoundRobinPolicy final : public RoutingPolicy {
 public:
  RoundRobinPolicy(const SystemConfig& config, net::NodeId self,
                   SummarySubstrate& substrate);

  const char* name() const noexcept override {
    return to_string(PolicyKind::kRoundRobin);
  }
  std::vector<net::NodeId> route(const stream::Tuple&) override;
  void set_throttle(double throttle) override { throttle_ = throttle; }

 private:
  net::NodeId self_;
  std::uint32_t nodes_;
  double throttle_;
  net::NodeId cursor_ = 0;
};

/// Shared routing logic of DFT and DFTT (Sections 5.2-5.3): derives the
/// flow filter from the shared DftSummaryEngine's coefficients.
class DftFamilyPolicy : public RoutingPolicy {
 public:
  DftFamilyPolicy(const SystemConfig& config, net::NodeId self,
                  SummarySubstrate& substrate, bool reconstruct);

  const char* name() const noexcept override {
    return to_string(reconstruct_ ? PolicyKind::kDftt : PolicyKind::kDft);
  }
  std::vector<net::NodeId> route(const stream::Tuple& tuple) override;
  void set_throttle(double throttle) override { throttle_ = throttle; }
  bool fallback_active() const noexcept override { return fallback_; }
  std::vector<double> flow_probabilities() const override { return last_probs_; }

 private:
  SystemConfig config_;
  net::NodeId self_;
  bool reconstruct_;
  double throttle_;
  DftSummaryEngine* engine_;
  common::Xoshiro256 rng_;
  bool fallback_ = false;
  net::NodeId rr_cursor_ = 0;
  std::vector<double> last_probs_;
};

/// BLOOM: routing on membership in peers' counting-Bloom snapshots.
class BloomPolicy final : public RoutingPolicy {
 public:
  BloomPolicy(const SystemConfig& config, net::NodeId self,
              SummarySubstrate& substrate);

  const char* name() const noexcept override {
    return to_string(PolicyKind::kBloom);
  }
  std::vector<net::NodeId> route(const stream::Tuple& tuple) override;
  void set_throttle(double throttle) override { throttle_ = throttle; }
  std::vector<double> flow_probabilities() const override { return last_probs_; }

 private:
  SystemConfig config_;
  net::NodeId self_;
  double throttle_;
  BloomSummaryEngine* engine_;
  common::Xoshiro256 rng_;
  std::vector<double> last_probs_;
};

/// SKCH: flow weights from pairwise AGMS join-size estimates.
class SketchPolicy final : public RoutingPolicy {
 public:
  SketchPolicy(const SystemConfig& config, net::NodeId self,
               SummarySubstrate& substrate);

  const char* name() const noexcept override {
    return to_string(PolicyKind::kSketch);
  }
  std::vector<net::NodeId> route(const stream::Tuple& tuple) override;
  void set_throttle(double throttle) override { throttle_ = throttle; }
  std::vector<double> flow_probabilities() const override { return last_probs_; }

 private:
  SystemConfig config_;
  net::NodeId self_;
  double throttle_;
  SketchSummaryEngine* engine_;
  common::Xoshiro256 rng_;
  std::vector<double> last_probs_;
};

/// SPEC (ablation A3, ours): flow weights from the truncated Parseval
/// join-size estimate — the deterministic counterpart of SKCH.
class SpectrumPolicy final : public RoutingPolicy {
 public:
  SpectrumPolicy(const SystemConfig& config, net::NodeId self,
                 SummarySubstrate& substrate);

  const char* name() const noexcept override {
    return to_string(PolicyKind::kSpectrum);
  }
  std::vector<net::NodeId> route(const stream::Tuple& tuple) override;
  void set_throttle(double throttle) override { throttle_ = throttle; }
  std::vector<double> flow_probabilities() const override { return last_probs_; }

 private:
  SystemConfig config_;
  net::NodeId self_;
  double throttle_;
  SpectrumSummaryEngine* engine_;
  common::Xoshiro256 rng_;
  std::vector<double> last_probs_;
};

/// SMPL (ours): per-key flow weights from Horvitz–Thompson match estimates
/// against peers' opposite-side samples, plus an accumulated predicted-
/// epsilon upper bound from the estimator's variance (DESIGN.md §14).
class SamplePolicy final : public RoutingPolicy {
 public:
  SamplePolicy(const SystemConfig& config, net::NodeId self,
               SummarySubstrate& substrate);

  const char* name() const noexcept override {
    return to_string(PolicyKind::kSample);
  }
  std::vector<net::NodeId> route(const stream::Tuple& tuple) override;
  void set_throttle(double throttle) override { throttle_ = throttle; }
  std::vector<double> flow_probabilities() const override { return last_probs_; }
  EpsilonBoundTerms epsilon_bound_terms() const noexcept override {
    return bound_;
  }

 private:
  SystemConfig config_;
  net::NodeId self_;
  double throttle_;
  SampleSummaryEngine* engine_;
  common::Xoshiro256 rng_;
  std::vector<double> last_probs_;
  EpsilonBoundTerms bound_;
};

}  // namespace dsjoin::core
