#include "dsjoin/core/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace dsjoin::core {

namespace {
// Which collector/slot the current thread buffers reports for (mirrors the
// SimTransport epoch binding; thread-local so node workers never share it).
struct EpochBinding {
  const void* collector = nullptr;
  std::size_t slot = 0;
};
thread_local EpochBinding tls_epoch_binding;
}  // namespace

void MetricsCollector::record_pair(const stream::ResultPair& pair,
                                   net::NodeId discoverer, double now) {
  if (epoch_open_ && tls_epoch_binding.collector == epoch_group_) {
    epoch_reports_[tls_epoch_binding.slot].push_back(
        PendingReport{pair, discoverer, now});
    return;
  }
  ++total_reports_;
  if (now > last_report_time_) last_report_time_ = now;
  if (reported_.insert(pair).second && discoverer < per_node_.size()) {
    ++per_node_[discoverer];
  }
}

std::vector<stream::ResultPair> MetricsCollector::pairs() const {
  std::vector<stream::ResultPair> snapshot(reported_.begin(), reported_.end());
  std::sort(snapshot.begin(), snapshot.end(),
            [](const stream::ResultPair& a, const stream::ResultPair& b) {
              if (a.r_id != b.r_id) return a.r_id < b.r_id;
              return a.s_id < b.s_id;
            });
  return snapshot;
}

void MetricsCollector::begin_epoch(std::size_t slots) {
  assert(!epoch_open_);
  if (epoch_reports_.size() < slots) epoch_reports_.resize(slots);
  epoch_open_ = true;
}

void MetricsCollector::bind_epoch_slot(std::size_t slot) {
  tls_epoch_binding = EpochBinding{epoch_group_, slot};
}

void MetricsCollector::end_epoch() {
  assert(epoch_open_);
  epoch_open_ = false;
  for (auto& slot : epoch_reports_) {
    for (const auto& report : slot) {
      record_pair(report.pair, report.discoverer, report.now);
    }
    slot.clear();
  }
}

}  // namespace dsjoin::core
