#include "dsjoin/core/metrics.hpp"

namespace dsjoin::core {

void MetricsCollector::record_pair(const stream::ResultPair& pair,
                                   net::NodeId discoverer, double now) {
  ++total_reports_;
  if (now > last_report_time_) last_report_time_ = now;
  if (reported_.insert(pair).second && discoverer < per_node_.size()) {
    ++per_node_[discoverer];
  }
}

}  // namespace dsjoin::core
