// DFT and DFTT (Sections 5.2-5.3, Figure 7): the shared DftSummaryEngine
// (coefficient maintenance, summary exchange, cached flow coefficients)
// and the per-query routing layered on top of it.
#include <algorithm>
#include <cassert>
#include <cmath>

#include "dsjoin/dsp/spectrum.hpp"
#include "policy_impl.hpp"

namespace dsjoin::core {

namespace {
std::size_t side_index(stream::StreamSide side) {
  return static_cast<std::size_t>(side);
}
}  // namespace

DftSummaryEngine::DftSummaryEngine(const SystemConfig& config, net::NodeId self)
    : config_(config), self_(self),
      local_{dsp::SlidingDft(config.dft_window, config.dft_retained()),
             dsp::SlidingDft(config.dft_window, config.dft_retained())} {
  // Control-vector style drift management: exact recompute every 4 windows.
  for (auto& dft : local_) {
    dft.set_renormalize_interval(static_cast<std::uint64_t>(config.dft_window) * 4);
  }
  const auto w = config.dft_window;
  const auto k = static_cast<std::uint32_t>(config.dft_retained());
  peers_.reserve(config.nodes);
  for (std::uint32_t j = 0; j < config.nodes; ++j) {
    PeerState state{{CoeffStore(w, k), CoeffStore(w, k)}, {}, {}, {}, 0};
    state.synced[0].assign(k, dsp::Complex{});
    state.synced[1].assign(k, dsp::Complex{});
    peers_.push_back(std::move(state));
  }
  published_[0].assign(k, dsp::Complex{});
  published_[1].assign(k, dsp::Complex{});
}

void DftSummaryEngine::refresh_clip_band(std::size_t side) {
  auto& sample = recent_raw_[side];
  if (sample.size() < 32) return;
  std::vector<double> sorted = sample;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2, sorted.end());
  const double med = sorted[sorted.size() / 2];
  for (auto& v : sorted) v = std::abs(v - med);
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2, sorted.end());
  const double mad = sorted[sorted.size() / 2];
  const double half = std::max(10.0 * mad, 256.0);
  clip_[side] = ClipBand{med - half, med + half};
}

void DftSummaryEngine::observe_local(const stream::Tuple& tuple) {
  const std::size_t side = side_index(tuple.side);
  // Robust summarization: background keys far outside the stream's typical
  // value band would dominate the spectral energy and wreck both the
  // compressed reconstruction and the correlation coefficient. Values are
  // clipped to a median +/- 10 MAD band (robust to heavy contamination,
  // unlike mean/sigma) before entering the DFT. The paper's stock data
  // needed no such step; arbitrary traces do.
  const double raw = static_cast<double>(tuple.key);
  auto& sample = recent_raw_[side];
  if (sample.size() < 512) {
    sample.push_back(raw);
  } else {
    sample[local_tuples_ % 512] = raw;
  }
  if (clip_[side].lo == -1e300 && sample.size() >= 64) refresh_clip_band(side);
  // Clipping happens at observation time (the band in force for *this*
  // tuple), but the DFT push is deferred: routing reads only cached rho
  // values and remote coefficient stores, so local_[side] is not consulted
  // until the next rho refresh or epoch republish. flush_pending then
  // drains the buffer through the vectorized push_batch — bit-identical to
  // pushing here, since nothing observed the coefficients in between.
  pending_values_[side].push_back(std::clamp(raw, clip_[side].lo, clip_[side].hi));
  ++local_tuples_;
}

void DftSummaryEngine::flush_pending(std::size_t side) {
  auto& pending = pending_values_[side];
  if (pending.empty()) return;
  local_[side].push_batch(pending);
  pending.clear();
}

std::vector<dsp::CoeffDelta> DftSummaryEngine::deltas_for(net::NodeId peer,
                                                          std::size_t side,
                                                          std::size_t max_entries) {
  auto& synced = peers_[peer].synced[side];
  const auto& published = published_[side];
  std::vector<dsp::CoeffDelta> out;
  for (std::size_t k = 0; k < published.size(); ++k) {
    if (std::abs(published[k] - synced[k]) > 1e-12) {
      out.push_back(dsp::CoeffDelta{static_cast<std::uint32_t>(k), published[k]});
      if (out.size() == 0xffff) break;  // u16 wire limit
    }
  }
  if (max_entries != 0 && out.size() > max_entries) {
    // Ship the most significant changes first; the rest stay pending.
    std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(max_entries),
                      out.end(), [&](const auto& a, const auto& b) {
                        return std::abs(a.value - synced[a.index]) >
                               std::abs(b.value - synced[b.index]);
                      });
    out.resize(max_entries);
  }
  for (const auto& d : out) synced[d.index] = d.value;
  return out;
}

SummaryBlock DftSummaryEngine::block_for(net::NodeId peer,
                                         std::size_t max_entries_per_side) {
  common::BufferWriter writer;
  for (std::size_t side = 0; side < 2; ++side) {
    const auto deltas = deltas_for(peer, side, max_entries_per_side);
    if (deltas.empty()) continue;
    const auto side_tag = static_cast<stream::StreamSide>(side);
    const auto window = static_cast<std::uint32_t>(config_.dft_window);
    const auto retained = static_cast<std::uint32_t>(config_.dft_retained());
    // Quantized encoding when enabled and safe: indices must fit the u16
    // wire field, and the width escalation must find one whose predicted
    // added reconstruction MSE stays within budget (f64 fallback otherwise).
    // synced[] keeps the exact published values either way — the receiver
    // holds dequantized coefficients with a bounded, budgeted error, and
    // comparing published vs synced exactly avoids a resend loop.
    unsigned bits = 0;
    double scale = 0.0;
    if (config_.summary_quant_bits != 0 && retained <= 0x10000) {
      std::vector<dsp::Complex> values;
      values.reserve(deltas.size());
      for (const auto& d : deltas) values.push_back(d.value);
      scale = dsp::quant_scale(values);
      bits = dsp::choose_quant_bits(scale, config_.dft_retained(),
                                    config_.dft_window,
                                    config_.summary_quant_bits);
    }
    if (bits != 0) {
      summary_codec::encode_dft_quant(writer, side_tag, window, retained,
                                      deltas, bits, scale);
    } else {
      summary_codec::encode_dft(writer, side_tag, window, retained, deltas);
    }
  }
  return SummaryBlock{std::move(writer).take()};
}

SummaryBlock DftSummaryEngine::piggyback_for(net::NodeId peer) {
  peers_[peer].tuples_since_contact = 0;
  return block_for(peer, config_.piggyback_max_coeffs);
}

void DftSummaryEngine::apply_deltas(net::NodeId peer, stream::StreamSide side,
                                    std::uint32_t window, std::uint32_t retained,
                                    const std::vector<dsp::CoeffDelta>& deltas) {
  // Geometry must match the experiment's global configuration.
  if (window != config_.dft_window ||
      retained != static_cast<std::uint32_t>(config_.dft_retained())) {
    return;
  }
  auto& state = peers_[peer];
  state.remote[side_index(side)].apply(deltas);
  state.rho_dirty[0] = state.rho_dirty[1] = true;
}

std::vector<OutboundSummary> DftSummaryEngine::maintenance(double /*now*/) {
  // Epoch boundary: re-publish the current coefficients (Figure 7 lines
  // 1-2: recalculate, extract changed coefficients).
  if (local_tuples_ % config_.summary_epoch_tuples == 0) {
    for (std::size_t side = 0; side < 2; ++side) {
      refresh_clip_band(side);
      flush_pending(side);
      const auto coeffs = local_[side].coefficients();
      published_[side].assign(coeffs.begin(), coeffs.end());
    }
    for (auto& peer : peers_) peer.rho_dirty = {true, true};
  }
  std::vector<OutboundSummary> out;
  for (net::NodeId j = 0; j < peers_.size(); ++j) {
    if (j == self_) continue;
    auto& state = peers_[j];
    ++state.tuples_since_contact;
    if (state.tuples_since_contact >
        static_cast<std::uint64_t>(config_.summary_epoch_tuples) *
            config_.stale_flush_epochs) {
      SummaryBlock block = block_for(j, 0);  // stale flush: ship everything
      if (!block.empty()) {
        out.push_back(OutboundSummary{j, std::move(block), SummaryFamily::kCoeff});
      }
      state.tuples_since_contact = 0;
    }
  }
  return out;
}

double DftSummaryEngine::refreshed_rho(net::NodeId peer, std::size_t tuple_side) {
  auto& state = peers_[peer];
  const std::size_t opposite = 1 - tuple_side;
  if (state.rho_dirty[tuple_side]) {
    flush_pending(tuple_side);
    const auto& remote = state.remote[opposite];
    double sample = 0.0;
    // The ring is value-backfilled, so the local spectrum is meaningful as
    // soon as a modest number of real values entered it.
    const bool local_ready =
        local_[tuple_side].count() >= config_.summary_epoch_tuples / 2;
    if (remote.seeded() && local_ready) {
      const auto local = local_[tuple_side].coefficients();
      const auto rho =
          dsp::lag_max_correlation(local, remote.coefficients(), config_.dft_window)
              .rho;
      // rho alone measures co-movement of the windows' fluctuations; at the
      // scaled window sizes used here every low-passed window is smooth, so
      // rho saturates for unrelated smooth streams too. The flow coefficient
      // therefore also weighs how far apart the two windows *sit* in the key
      // domain — read off the DC coefficients the summaries already carry
      // (Eq. 5 correlates the raw, not mean-removed, variables).
      const double mu_l = dsp::spectral_mean(local, config_.dft_window);
      const double mu_r =
          dsp::spectral_mean(remote.coefficients(), config_.dft_window);
      // Distance scale: the robust value band of the local stream (the
      // spectral sigma of the *retained* coefficients would underestimate a
      // white-noise spread by sqrt(W/K)). Until the band is known, treat
      // all peers as near (bootstrap).
      const double half_band =
          clip_[tuple_side].lo > -1e299
              ? 0.5 * (clip_[tuple_side].hi - clip_[tuple_side].lo)
              : 1e12;
      const double affinity = std::exp(-std::abs(mu_l - mu_r) / (half_band + 1.0));
      // Blend: the DC alignment (affinity) carries most of the join-locality
      // signal at these window sizes; the AC co-movement (rho) refines it.
      sample = affinity * (0.25 + 0.75 * std::max(rho, 0.0));
      // Exponential smoothing suppresses estimator noise so that the
      // uniform-case detector sees the persistent component of the scores.
      state.rho[tuple_side] = 0.7 * state.rho[tuple_side] + 0.3 * sample;
    }
    state.rho_dirty[tuple_side] = false;
  }
  return state.rho[tuple_side];
}

DftFamilyPolicy::DftFamilyPolicy(const SystemConfig& config, net::NodeId self,
                                 SummarySubstrate& substrate, bool reconstruct)
    : RoutingPolicy(substrate), config_(config), self_(self),
      reconstruct_(reconstruct), throttle_(config.throttle),
      engine_(&substrate.coeff()),
      rng_(config.seed ^ (0xd5f7'0000ULL + self)) {}

std::vector<net::NodeId> DftFamilyPolicy::route(const stream::Tuple& tuple) {
  const std::uint32_t n = config_.nodes;
  const double budget = throttle_to_budget(throttle_, n);
  const std::size_t side = side_index(tuple.side);
  const std::size_t opposite = 1 - side;

  // Gather per-peer scores (self excluded; compacted into peer order).
  std::vector<net::NodeId> peer_ids;
  std::vector<double> scores;
  std::vector<double> rhos;
  peer_ids.reserve(n - 1);
  scores.reserve(n - 1);
  bool all_seeded = true;
  for (net::NodeId j = 0; j < n; ++j) {
    if (j == self_) continue;
    peer_ids.push_back(j);
    if (!engine_->remote_seeded(j, opposite)) {
      all_seeded = false;
      scores.push_back(1.0);  // bootstrap: explore unseeded peers
      rhos.push_back(0.0);
      continue;
    }
    const double rho = engine_->refreshed_rho(j, side);
    rhos.push_back(rho);
    if (reconstruct_) {
      const auto est = engine_->estimate_count(j, opposite, tuple.key,
                                               config_.membership_tolerance);
      scores.push_back(static_cast<double>(est));
    } else {
      scores.push_back(std::max(rho, 0.0));
    }
  }

  // Worst-case detection (Theorem 1 discussion): vanishing variance of the
  // flow coefficients means the filter carries no signal; fall back to
  // round-robin at the same budget.
  const bool warmed_up =
      engine_->local_tuples() > 3ull * config_.summary_epoch_tuples;
  if (all_seeded && warmed_up && !peer_ids.empty()) {
    double mean = 0.0;
    for (double r : rhos) mean += r;
    mean /= static_cast<double>(rhos.size());
    double var = 0.0;
    for (double r : rhos) var += (r - mean) * (r - mean);
    var /= static_cast<double>(rhos.size());
    // Scale-free detection: equal correlation with all neighbors means the
    // scores' relative spread vanishes, not their absolute variance.
    fallback_ = mean > 0.0 && std::sqrt(var) < config_.uniform_detection_cv * mean;
  }
  if (fallback_) {
    const auto k = static_cast<std::uint32_t>(std::lround(budget));
    std::vector<net::NodeId> out;
    for (std::uint32_t step = 0; step < k && step + 1 < n; ++step) {
      rr_cursor_ = (rr_cursor_ + 1) % n;
      if (rr_cursor_ == self_) rr_cursor_ = (rr_cursor_ + 1) % n;
      out.push_back(rr_cursor_);
    }
    last_probs_.assign(n, budget / static_cast<double>(n - 1));
    last_probs_[self_] = 0.0;
    return out;
  }

  // DFTT explores non-matching peers only lightly (throttle^4 -> broadcast
  // as throttle -> 1); DFT's rho is key-independent, so it always spends its
  // full budget plus a small exploration floor.
  const double floor =
      reconstruct_ ? std::pow(throttle_, 6)
                   : 0.05 * budget / static_cast<double>(n - 1);
  const auto probs = allocate_flow_probabilities(scores, budget, floor);

  std::vector<net::NodeId> out;
  last_probs_.assign(n, 0.0);
  for (std::size_t idx = 0; idx < peer_ids.size(); ++idx) {
    last_probs_[peer_ids[idx]] = probs[idx];
    if (rng_.next_bool(probs[idx])) out.push_back(peer_ids[idx]);
  }
  return out;
}

}  // namespace dsjoin::core
