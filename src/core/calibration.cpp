#include "dsjoin/core/calibration.hpp"

#include <cmath>

namespace dsjoin::core {

namespace {

ExperimentResult run_at(const SystemConfig& base, double throttle) {
  SystemConfig config = base;
  config.throttle = throttle;
  return run_experiment(config);
}

}  // namespace

CalibrationResult calibrate_throttle(SystemConfig config, double target_epsilon,
                                     double tolerance, int max_bisections) {
  CalibrationResult out;
  if (config.policy == PolicyKind::kBase) {
    out.result = run_experiment(config);
    out.throttle = config.throttle;
    out.converged = std::abs(out.result.epsilon - target_epsilon) <= tolerance;
    out.runs = 1;
    return out;
  }

  // Bracket: epsilon is nonincreasing in the throttle.
  double lo = 0.0, hi = 1.0;
  ExperimentResult at_lo = run_at(config, lo);
  out.runs++;
  if (std::abs(at_lo.epsilon - target_epsilon) <= tolerance) {
    out = CalibrationResult{lo, at_lo, true, out.runs};
    return out;
  }
  if (at_lo.epsilon < target_epsilon) {
    // Even the stingiest setting reports too much: cannot reach the target.
    out = CalibrationResult{lo, at_lo, false, out.runs};
    return out;
  }
  ExperimentResult at_hi = run_at(config, hi);
  out.runs++;
  if (std::abs(at_hi.epsilon - target_epsilon) <= tolerance) {
    out = CalibrationResult{hi, at_hi, true, out.runs};
    return out;
  }
  if (at_hi.epsilon > target_epsilon) {
    // Even broadcasting misses too much (should not happen in practice).
    out = CalibrationResult{hi, at_hi, false, out.runs};
    return out;
  }

  double best_throttle = hi;
  ExperimentResult best = at_hi;
  for (int i = 0; i < max_bisections; ++i) {
    const double mid = 0.5 * (lo + hi);
    const ExperimentResult at_mid = run_at(config, mid);
    out.runs++;
    const double err = std::abs(at_mid.epsilon - target_epsilon);
    if (err < std::abs(best.epsilon - target_epsilon)) {
      best = at_mid;
      best_throttle = mid;
    }
    if (err <= tolerance) break;
    if (at_mid.epsilon > target_epsilon) {
      lo = mid;  // too many misses: open the throttle
    } else {
      hi = mid;
    }
  }
  out.throttle = best_throttle;
  out.result = best;
  out.converged = std::abs(best.epsilon - target_epsilon) <= tolerance;
  return out;
}

}  // namespace dsjoin::core
