// The transport-agnostic experiment engine's shared vocabulary.
//
// Three execution backplanes can drive one experiment — the deterministic
// WAN simulator (DspSystem), all nodes over the in-process loopback
// TcpTransport, and one OS process per node speaking the coordinator
// protocol. They differ only in how frames move and where nodes live;
// everything a figure reads from a run is defined here, once:
//
//   * Backend        — which backplane executed the run;
//   * NodeReport     — one node's final accounting (what a daemon ships
//                      home in METRICS_REPORT, and what the in-process
//                      backends assemble directly);
//   * ExperimentResult — the single result struct every backend returns,
//                      with the derived metrics (epsilon, messages per
//                      result, throughput) computed by the same code
//                      regardless of backplane.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dsjoin/common/status.hpp"
#include "dsjoin/net/frame.hpp"
#include "dsjoin/net/stats.hpp"
#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::core {

struct SystemConfig;

/// Execution backplanes of the experiment engine.
enum class Backend : std::uint8_t {
  kSim = 0,           ///< deterministic WAN simulator (virtual time)
  kTcpInprocess = 1,  ///< all nodes in-process over loopback TcpTransport
  kMultiprocess = 2,  ///< one forked process per node + coordinator protocol
};

/// CLI spelling: "sim" | "tcp-inprocess" | "multiprocess".
const char* to_string(Backend backend) noexcept;

/// Parses a backend name; kInvalidArgument (listing the valid spellings)
/// for anything else. Every CLI site funnels --backend through this.
common::Result<Backend> backend_from_string(const std::string& name);

/// One registered query's slice of a node's final accounting. Frame
/// attribution is exclusive (see core::QueryCounters), so summing any
/// counter over a node's queries reproduces the node aggregate exactly.
struct QueryNodeReport {
  std::uint32_t query_id = 0;
  std::uint64_t received_tuples = 0;   ///< inbound tuple frames attributed
  std::uint64_t forwarded_tuples = 0;  ///< outbound tuple frames attributed
  std::uint64_t result_frames = 0;     ///< outbound result frames
  std::uint64_t summary_frames = 0;    ///< outbound standalone summaries
  double predicted_missed_mass = 0.0;
  double predicted_total_mass = 0.0;
  std::vector<stream::ResultPair> pairs;  ///< this node's, this query's
};

/// One node's final accounting — the per-node half of metrics assembly.
/// NodeHost::report() produces it identically on every backplane; the
/// multiprocess runtime ships it over the wire as METRICS_REPORT.
struct NodeReport {
  net::NodeId node_id = 0;
  std::uint64_t local_tuples = 0;     ///< arrivals ingested from own source
  std::uint64_t received_tuples = 0;  ///< forwarded tuples from peers
  std::uint64_t decode_failures = 0;  ///< should be 0
  /// Summaries applied after their virtual-time visibility boundary had
  /// already passed (should be 0; non-zero voids exact parity).
  std::uint64_t late_summaries = 0;
  /// Predicted-epsilon bound terms accumulated by the node's routing
  /// policy ({0, 0} for policies with no error model). Both travel in
  /// METRICS_REPORT so the multiprocess coordinator aggregates the same
  /// numbers the in-process backends do.
  double predicted_missed_mass = 0.0;
  double predicted_total_mass = 0.0;
  net::TrafficCounters traffic;       ///< frames this node sent
  std::vector<stream::ResultPair> pairs;  ///< locally discovered, deduplicated
  /// Per-query breakdown in canonical (effective_queries) order. One entry
  /// even in single-query mode, where it restates the aggregates above.
  std::vector<QueryNodeReport> queries;
};

/// One registered query's global outcome. Multi-query runs treat each query
/// as its own join: pairs are deduplicated per query, epsilon is computed
/// against that query's exact join (its own window half-width), and the
/// attributed frame counters sum to the run aggregates.
struct QueryResult {
  std::uint32_t query_id = 0;
  std::uint64_t exact_pairs = 0;     ///< 0 when verify/oracle is off
  std::uint64_t reported_pairs = 0;  ///< globally deduplicated, this query
  std::uint64_t false_pairs = 0;
  std::uint64_t received_tuples = 0;
  std::uint64_t forwarded_tuples = 0;
  std::uint64_t result_frames = 0;
  std::uint64_t summary_frames = 0;
  double predicted_missed_mass = 0.0;
  double predicted_total_mass = 0.0;
  double epsilon = 0.0;
  double predicted_epsilon_bound = -1.0;
  /// The query's globally deduplicated pair set, sorted by (r_id, s_id) —
  /// what the multi-query parity tests compare element-wise per query.
  std::vector<stream::ResultPair> pairs;
};

/// Everything a figure needs from one run, whichever backend produced it.
struct ExperimentResult {
  // Outcome. The simulator always completes; socket backends may fail
  // setup (clean = false, see error) or degrade (nodes_failed > 0).
  bool clean = false;
  std::string error;
  Backend backend = Backend::kSim;
  std::uint32_t nodes_admitted = 0;
  std::uint32_t nodes_failed = 0;     ///< died after the run started

  // Raw counts.
  std::uint64_t exact_pairs = 0;      ///< |Psi| (oracle; 0 when verify off)
  std::uint64_t reported_pairs = 0;   ///< |Psi-hat| (globally deduplicated)
  std::uint64_t false_pairs = 0;      ///< reported but not in Psi (socket verify)
  std::uint64_t total_arrivals = 0;
  std::uint64_t decode_failures = 0;  ///< should be 0
  /// Sum of per-node late summary applications (0 = routing state was a
  /// pure function of virtual time; cross-backend parity holds).
  std::uint64_t late_summaries = 0;
  net::TrafficCounters traffic;       ///< frames/bytes by kind
  /// The globally deduplicated pair set, sorted by (r_id, s_id) — what
  /// verify_against_schedule audits and what the cross-backend parity
  /// tests compare element-wise.
  std::vector<stream::ResultPair> pairs;
  /// Simulator: virtual time to full drain. Socket backends: wall-clock
  /// seconds from run start to drain complete (real throughput).
  double makespan_s = 0.0;
  bool fallback_engaged = false;      ///< any node in round-robin fallback

  /// Summed predicted-epsilon bound terms (see NodeReport).
  double predicted_missed_mass = 0.0;
  double predicted_total_mass = 0.0;

  // Derived (finalize_derived_metrics).
  double epsilon = 0.0;               ///< Eq. 1: missed-result fraction
  /// Policy-reported upper confidence bound on epsilon, computed without
  /// the oracle (missed/total mass, clamped to [0, 1]); -1 when the policy
  /// has no error model (every policy but SMPL today). Acceptance target:
  /// covers the oracle epsilon in >= 95% of seeded runs (DESIGN.md §14).
  double predicted_epsilon_bound = -1.0;
  double messages_per_result = 0.0;   ///< total frames / |Psi-hat|
  double results_per_second = 0.0;    ///< |Psi-hat| / makespan
  double ingest_per_second = 0.0;     ///< arrivals / makespan
  double summary_byte_fraction = 0.0; ///< Figure 8's ratio

  /// Per-query outcomes in canonical (effective_queries) order. In
  /// multi-query mode the run aggregates above are sums over this list
  /// (reported/exact pairs are summed per query, NOT the union — every
  /// query is its own join); `pairs` keeps the cross-query union for the
  /// single-query-compatible surface. One entry in single-query mode.
  std::vector<QueryResult> per_query;
};

/// Folds per-node reports into `result`: sums arrivals and decode
/// failures, merges traffic, and deduplicates the pair sets globally into
/// result->pairs (sorted — ready for oracle verification). Callers with a
/// shared transport (one global counter, not per-node) pass
/// `merge_traffic = false` and install the union themselves.
void aggregate_node_reports(std::span<const NodeReport> reports,
                            ExperimentResult* result,
                            bool merge_traffic = true);

/// Recomputes the exact join from the deterministic arrival schedule and
/// fills exact_pairs / false_pairs — how the socket backends (which have
/// no in-run oracle) account epsilon honestly.
void verify_against_schedule(const SystemConfig& config,
                             std::span<const stream::ResultPair> pairs,
                             ExperimentResult* result);

/// Computes every derived metric from the raw counts. All backends call
/// this — the coordinator's REPORT line and DspSystem::run() are the same
/// arithmetic by construction.
void finalize_derived_metrics(ExperimentResult* result);

}  // namespace dsjoin::core
