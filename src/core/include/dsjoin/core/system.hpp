// The distributed stream-processing system driver (Figure 1).
//
// DspSystem wires N nodes to the WAN emulator, drives per-node tuple
// arrivals from a workload, feeds the exact-join oracle in parallel, and
// produces the metrics the paper's figures report: epsilon, messages per
// result tuple, throughput, and the summary-byte overhead share.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dsjoin/common/thread_pool.hpp"
#include "dsjoin/core/config.hpp"
#include "dsjoin/core/metrics.hpp"
#include "dsjoin/core/node.hpp"
#include "dsjoin/core/oracle.hpp"
#include "dsjoin/net/event_queue.hpp"
#include "dsjoin/net/sim_transport.hpp"
#include "dsjoin/stream/generator.hpp"

namespace dsjoin::core {

/// Everything a figure needs from one run.
struct ExperimentResult {
  double epsilon = 0.0;                 ///< Eq. 1: missed-result fraction
  double messages_per_result = 0.0;     ///< total frames / |Psi-hat|
  double results_per_second = 0.0;      ///< |Psi-hat| / makespan
  double ingest_per_second = 0.0;       ///< arrivals / makespan
  double makespan_s = 0.0;              ///< virtual time to full drain
  std::uint64_t exact_pairs = 0;        ///< |Psi| (oracle)
  std::uint64_t reported_pairs = 0;     ///< |Psi-hat| (deduplicated)
  std::uint64_t total_arrivals = 0;
  net::TrafficCounters traffic;         ///< frames/bytes by kind
  double summary_byte_fraction = 0.0;   ///< Figure 8's ratio
  bool fallback_engaged = false;        ///< any node in round-robin fallback
  std::uint64_t decode_failures = 0;    ///< should be 0
};

/// One experiment instance. Construct, run once, read the result.
class DspSystem {
 public:
  explicit DspSystem(const SystemConfig& config);
  ~DspSystem();

  DspSystem(const DspSystem&) = delete;
  DspSystem& operator=(const DspSystem&) = delete;

  /// Drives `config.tuples_per_node` arrivals per node per stream side,
  /// drains the network, and computes the metrics.
  ExperimentResult run();

  /// Schedules a crash-and-restart of `node` at virtual time `at` (call
  /// before run()): the node object is replaced wholesale, losing its
  /// windows and summary state — peers' summaries re-seed it afterwards.
  void schedule_restart(net::NodeId node, double at);

  /// Number of restarts executed during the run.
  std::uint64_t restarts_executed() const noexcept { return restarts_executed_; }

  /// Access for tests.
  Node& node(net::NodeId id) { return *nodes_[id]; }
  const net::SimTransport& transport() const { return *transport_; }
  const MetricsCollector& metrics() const { return metrics_; }
  const ExactJoinOracle& oracle() const { return oracle_; }

 private:
  void schedule_arrival(net::NodeId node, stream::StreamSide side, double at);
  void install_node(net::NodeId id);

  // --- Parallel epoch execution (worker_threads >= 1) ---
  //
  // The event queue is consumed in epochs: a serial *dispatch phase* runs
  // events in (time, insertion) order inside a lookahead window no wider
  // than the minimum link latency — so nothing dispatched can cause a
  // cross-node event inside the same window — doing only the cheap global
  // bookkeeping (tuple ids, arrival pacing, the oracle) and deferring each
  // node's per-tuple work; a *worker phase* then fans the deferred tasks
  // out across the pool, one strand per node (shared-nothing), with sends
  // and metric reports buffered per task; the *barrier* flushes those
  // buffers in dispatch order, reproducing the serial schedule exactly.

  /// Runs `task` now (serial mode) or defers it to the open epoch's worker
  /// phase, tagged with its owning node and event time.
  void defer_node_task(net::NodeId node, double when,
                       std::function<void()> task);
  /// Local-arrival variant: stores the tuple inline in the epoch task (no
  /// per-arrival closure), letting the worker phase feed each node its
  /// consecutive arrivals as one Node::on_local_batch call.
  void defer_arrival(net::NodeId node, double when, const stream::Tuple& tuple);
  void run_parallel();
  void execute_epoch(common::ThreadPool& pool,
                     std::vector<std::function<void()>>& batch,
                     std::vector<std::vector<std::size_t>>& by_node);

  struct EpochTask {
    net::NodeId node;
    double when;
    std::function<void()> fn;    // empty for arrival tasks
    bool is_arrival = false;
    stream::Tuple tuple;         // valid when is_arrival
  };

  SystemConfig config_;
  net::EventQueue queue_;
  std::unique_ptr<net::SimTransport> transport_;
  MetricsCollector metrics_;
  ExactJoinOracle oracle_;
  std::unique_ptr<stream::Workload> workload_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<common::Xoshiro256> arrival_rngs_;  // per (node, side)
  std::vector<std::uint64_t> emitted_;            // per (node, side)
  std::uint64_t next_tuple_id_ = 1;
  std::uint64_t total_arrivals_ = 0;
  std::vector<std::pair<net::NodeId, double>> pending_restarts_;
  std::uint64_t restarts_executed_ = 0;
  bool ran_ = false;
  bool epoch_open_ = false;
  std::vector<EpochTask> epoch_tasks_;
  /// Per-node scratch for assembling arrival runs (one strand writes each).
  std::vector<std::vector<Node::LocalArrival>> arrival_scratch_;
};

/// Runs a full experiment for a config (convenience for benches).
ExperimentResult run_experiment(const SystemConfig& config);

}  // namespace dsjoin::core
