// The distributed stream-processing system driver (Figure 1).
//
// DspSystem wires N nodes to the WAN emulator, drives per-node tuple
// arrivals from a workload, feeds the exact-join oracle in parallel, and
// produces the metrics the paper's figures report: epsilon, messages per
// result tuple, throughput, and the summary-byte overhead share.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dsjoin/common/thread_pool.hpp"
#include "dsjoin/core/config.hpp"
#include "dsjoin/core/experiment.hpp"
#include "dsjoin/core/metrics.hpp"
#include "dsjoin/core/node.hpp"
#include "dsjoin/core/node_host.hpp"
#include "dsjoin/core/oracle.hpp"
#include "dsjoin/core/schedule.hpp"
#include "dsjoin/net/event_queue.hpp"
#include "dsjoin/net/sim_transport.hpp"

namespace dsjoin::core {

/// One experiment instance. Construct, run once, read the result.
class DspSystem {
 public:
  explicit DspSystem(const SystemConfig& config);
  ~DspSystem();

  DspSystem(const DspSystem&) = delete;
  DspSystem& operator=(const DspSystem&) = delete;

  /// Drives `config.tuples_per_node` arrivals per node per stream side,
  /// drains the network, and computes the metrics.
  ExperimentResult run();

  /// Schedules a crash-and-restart of `node` at virtual time `at` (call
  /// before run()): the node object is replaced wholesale, losing its
  /// windows and summary state — peers' summaries re-seed it afterwards.
  void schedule_restart(net::NodeId node, double at);

  /// Number of restarts executed during the run.
  std::uint64_t restarts_executed() const noexcept { return restarts_executed_; }

  /// Access for tests. metrics()/oracle() are query 0's — the whole story
  /// in single-query mode; per-query instances via query_metrics(i) /
  /// query_oracle(i).
  Node& node(net::NodeId id) { return hosts_[id]->node(); }
  const net::SimTransport& transport() const { return *transport_; }
  const MetricsCollector& metrics() const { return *query_metrics_.front(); }
  const ExactJoinOracle& oracle() const { return oracles_.front(); }
  std::size_t query_count() const noexcept { return query_metrics_.size(); }
  const MetricsCollector& query_metrics(std::size_t q) const {
    return *query_metrics_[q];
  }
  const ExactJoinOracle& query_oracle(std::size_t q) const {
    return oracles_[q];
  }

 private:
  void schedule_arrival(net::NodeId node, stream::StreamSide side, double at);
  void install_node(net::NodeId id);
  /// SimTransport summary-sink target: decodes a committed summary-bearing
  /// frame and hands the block to the receiving node's virtual-time buffer
  /// (Node::queue_summary). The receiver's on_frame path is suppressed via
  /// set_external_summary_feed, so each block applies exactly once.
  void tee_summary(const net::Frame& frame);

  // --- Parallel epoch execution (worker_threads >= 1) ---
  //
  // The event queue is consumed in epochs: a serial *dispatch phase* runs
  // events in (time, insertion) order inside a lookahead window no wider
  // than the minimum link latency — so nothing dispatched can cause a
  // cross-node event inside the same window — doing only the cheap global
  // bookkeeping (tuple ids, arrival pacing, the oracle) and deferring each
  // node's per-tuple work; a *worker phase* then fans the deferred tasks
  // out across the pool, one strand per node (shared-nothing), with sends
  // and metric reports buffered per task; the *barrier* flushes those
  // buffers in dispatch order, reproducing the serial schedule exactly.

  /// Runs `task` now (serial mode) or defers it to the open epoch's worker
  /// phase, tagged with its owning node and event time.
  void defer_node_task(net::NodeId node, double when,
                       std::function<void()> task);
  /// Local-arrival variant: stores the tuple inline in the epoch task (no
  /// per-arrival closure), letting the worker phase feed each node its
  /// consecutive arrivals as one Node::on_local_batch call.
  void defer_arrival(net::NodeId node, double when, const stream::Tuple& tuple);
  void run_parallel();
  void execute_epoch(common::ThreadPool& pool,
                     std::vector<std::function<void()>>& batch,
                     std::vector<std::vector<std::size_t>>& by_node);

  struct EpochTask {
    net::NodeId node;
    double when;
    std::function<void()> fn;    // empty for arrival tasks
    bool is_arrival = false;
    stream::Tuple tuple;         // valid when is_arrival
  };

  SystemConfig config_;
  std::vector<QuerySpec> specs_;  ///< effective_queries(config), canonical
  net::EventQueue queue_;
  std::unique_ptr<net::SimTransport> transport_;
  /// One collector and one oracle per registered query, canonical order.
  /// All collectors share one epoch group (this), so the parallel driver
  /// binds worker slots once per task and every query's reports buffer.
  std::vector<std::unique_ptr<MetricsCollector>> query_metrics_;
  std::vector<MetricsCollector*> metrics_ptrs_;  ///< span over query_metrics_
  std::vector<ExactJoinOracle> oracles_;
  /// Streaming arrival truth: rng tree, key streams, quotas and the dense
  /// global tuple-id counter (ArrivalSchedule::build materializes the same
  /// generator for the socket backends).
  ArrivalSource source_;
  std::vector<std::unique_ptr<NodeHost>> hosts_;
  std::vector<std::pair<net::NodeId, double>> pending_restarts_;
  std::uint64_t restarts_executed_ = 0;
  bool ran_ = false;
  bool epoch_open_ = false;
  std::vector<EpochTask> epoch_tasks_;
  /// Per-node scratch for assembling arrival runs (one strand writes each).
  std::vector<std::vector<Node::LocalArrival>> arrival_scratch_;
};

/// Runs a full experiment for a config (convenience for benches).
ExperimentResult run_experiment(const SystemConfig& config);

}  // namespace dsjoin::core
