// Deterministic arrival generation — the single source of arrival truth.
//
// Every backend of the experiment engine must agree on the global tuple
// sequence: ids are the metrics dedup key, the oracle needs the full
// arrival order, and the distributed runtime regenerates each node's slice
// in-process from nothing but the config. Two views share one generator:
//
//   * ArrivalSource — the streaming form. Owns the rng tree (root seeded
//     seed ^ 0xa771'7a1e, one forked rng per (node, side) slot in slot
//     order), the workload's key streams, the per-slot quotas and the
//     dense global tuple-id counter. The simulator draws from it event by
//     event, which lets backpressure feedback shift arrival times (a
//     stalled source re-draws its next gap later, changing every
//     subsequent timestamp and key on that slot).
//
//   * ArrivalSchedule — the materialized form: the full global sequence as
//     a pure function of the SystemConfig, built by merging the source's
//     per-slot gap streams in (time, slot) order. Identical to what the
//     simulator emits whenever backpressure never engages
//     (max_backlog_s = 0, or traffic below the threshold).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/core/config.hpp"
#include "dsjoin/stream/generator.hpp"
#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::core {

/// Streaming arrival generator for one experiment. Single-run: draws are
/// consumed. Emission order across slots is the caller's responsibility
/// (global time order); each slot's gap stream is independent.
class ArrivalSource {
 public:
  explicit ArrivalSource(const SystemConfig& config);

  /// True once `node`'s `side` has emitted its full tuples_per_node quota.
  bool exhausted(net::NodeId node, stream::StreamSide side) const;

  /// Draws the next exponential inter-arrival gap for the slot.
  double next_gap(net::NodeId node, stream::StreamSide side);

  /// Emits the slot's next tuple at time `now`: assigns the next dense
  /// global id, draws the workload key, and counts it against the quota.
  /// Call in global time order — ids and key draws are order-sensitive.
  stream::Tuple emit(net::NodeId node, stream::StreamSide side, double now);

  /// Tuples emitted so far across all slots.
  std::uint64_t total_emitted() const noexcept { return total_emitted_; }

 private:
  std::uint64_t quota_;
  std::unique_ptr<stream::Workload> workload_;
  std::vector<common::Xoshiro256> rngs_;  // per (node, side) slot
  std::vector<std::uint64_t> emitted_;    // per (node, side) slot
  double rate_;
  std::uint64_t next_tuple_id_ = 1;
  std::uint64_t total_emitted_ = 0;
};

struct ArrivalSchedule {
  /// All arrivals of all nodes, in nondecreasing timestamp order (ties
  /// broken by (node, side) slot), with dense globally unique ids from 1.
  std::vector<stream::Tuple> tuples;
  /// Virtual time of the last arrival.
  double makespan_s = 0.0;

  /// Builds the schedule for `config` (workload, seed, rate, count).
  static ArrivalSchedule build(const SystemConfig& config);

  /// The subsequence originating at `node`, in timestamp order.
  std::vector<stream::Tuple> for_node(net::NodeId node) const;
};

/// Exact |Psi| for a schedule: distinct (r, s) pairs with equal keys and
/// |r.ts - s.ts| <= half_width, over all nodes' arrivals.
std::uint64_t exact_pairs(const ArrivalSchedule& schedule, double half_width);

/// Counts reported pairs that are NOT true join results of the schedule —
/// the graceful-degradation contract requires this to be zero even when
/// peers die mid-run (a lost peer may lose results, never invent them).
std::uint64_t count_false_pairs(const ArrivalSchedule& schedule,
                                double half_width,
                                std::span<const stream::ResultPair> pairs);

}  // namespace dsjoin::core
