// Routing policies (Section 5 and the Section 6 competitors).
//
// A policy decides, per locally arriving tuple, which peers receive a copy —
// the flow filtering of Figure 2 — and maintains the summaries that inform
// that decision. All approximate policies share one probabilistic scheme:
//
//   1. score every peer j for the tuple (policy-specific signal:
//      DFT   -> cross-correlation coefficient rho_{i,j} (Eq. 4),
//      DFTT  -> membership count of the key in the reconstructed remote
//               window (Section 5.3's JoinEstimate),
//      BLOOM -> membership in the remote Bloom snapshot,
//      SKCH  -> AGMS join-size estimate between the local and remote
//               windows);
//   2. water-fill forwarding probabilities p_{i,j} = min(1, w_i * score_j)
//      so that sum_j p_{i,j} equals the per-node budget T_i (Eq. 9), where
//      T_i = (N-1)^throttle spans O(1) (throttle 0) .. N-1 (throttle 1,
//      degenerating to BASE). The epsilon calibrator bisects the throttle.
//
// The DFT family additionally detects the uniform worst case (vanishing
// variance of the scores; Theorem 1 discussion) and falls back to
// round-robin.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/core/config.hpp"
#include "dsjoin/core/wire.hpp"
#include "dsjoin/net/frame.hpp"
#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::core {

/// A standalone summary destined for one peer.
struct OutboundSummary {
  net::NodeId peer;
  SummaryBlock block;
};

/// Accumulated terms for a run-level predicted epsilon upper bound
/// (policies that can derive one; SMPL today). Per routed tuple the policy
/// adds its confidence-inflated estimate of match mass it chose not to
/// chase to `missed_mass` and its estimate of the total match mass in play
/// to `total_mass`; the experiment engine aggregates both across nodes and
/// reports missed/total as predicted_epsilon_bound (DESIGN.md §14).
struct EpsilonBoundTerms {
  double missed_mass = 0.0;
  double total_mass = 0.0;
};

/// Per-node routing policy instance.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  RoutingPolicy(const RoutingPolicy&) = delete;
  RoutingPolicy& operator=(const RoutingPolicy&) = delete;

  virtual const char* name() const noexcept = 0;

  /// Feeds a locally arriving tuple into the policy's summaries (sliding
  /// DFTs / Bloom / sketch windows). Called before route().
  virtual void observe_local(const stream::Tuple& tuple) = 0;

  /// Destinations for the tuple (excluding self; possibly empty).
  virtual std::vector<net::NodeId> route(const stream::Tuple& tuple) = 0;

  /// Summary bytes to piggyback on a tuple frame to `peer` (may be empty).
  /// Marks the drained state as synced to that peer.
  virtual SummaryBlock piggyback_for(net::NodeId peer) = 0;

  /// Ingests a summary block received from `peer`.
  virtual void on_summary(net::NodeId peer, const SummaryBlock& block) = 0;

  /// Called once per local arrival after routing: standalone summaries for
  /// peers that have not heard from this node for a summary epoch
  /// (Figure 7: "if a tuple message was not sent to some site for a long
  /// period, the batch of updates are transmitted on their own").
  virtual std::vector<OutboundSummary> maintenance(double now) = 0;

  /// Sets forwarding aggressiveness in [0, 1] (see header comment).
  virtual void set_throttle(double throttle) = 0;

  /// True while the uniform-worst-case fallback (round-robin) is engaged.
  virtual bool fallback_active() const noexcept { return false; }

  /// True when routing consults peer summary state (DFT/DFTT/BLOOM/SKCH/
  /// SPEC). Drivers use this to decide whether virtual-time summary
  /// synchronization (watermarks, visibility buffering) is needed at all;
  /// BASE/RR runs pay zero overhead.
  virtual bool uses_summaries() const noexcept { return false; }

  /// Current p_{i,j} estimates indexed by peer id (self entry = 0), for
  /// diagnostics and tests. Empty if the policy has no such notion.
  virtual std::vector<double> flow_probabilities() const { return {}; }

  /// Accumulated predicted-epsilon bound terms ({0, 0} for policies with
  /// no error model — the engine reports "no bound" for those runs).
  virtual EpsilonBoundTerms epsilon_bound_terms() const noexcept { return {}; }

  /// Factory. `self` is this node's id.
  static std::unique_ptr<RoutingPolicy> create(const SystemConfig& config,
                                               net::NodeId self);

 protected:
  RoutingPolicy() = default;
};

/// Water-fills probabilities p_j = min(1, floor + w * score_j) with
/// sum_j p_j == min(budget, n) (n = scores.size()). Zero-score vectors get
/// the uniform allocation budget/n. Exposed for tests.
std::vector<double> allocate_flow_probabilities(std::span<const double> scores,
                                                double budget, double floor);

/// The per-node message budget T_i for a throttle in [0,1]:
/// T = (N-1)^throttle, clamped to [1, N-1].
double throttle_to_budget(double throttle, std::uint32_t nodes) noexcept;

}  // namespace dsjoin::core
