// Routing policies (Section 5 and the Section 6 competitors).
//
// A policy decides, per locally arriving tuple, which peers receive a copy —
// the flow filtering of Figure 2 — and maintains the summaries that inform
// that decision. All approximate policies share one probabilistic scheme:
//
//   1. score every peer j for the tuple (policy-specific signal:
//      DFT   -> cross-correlation coefficient rho_{i,j} (Eq. 4),
//      DFTT  -> membership count of the key in the reconstructed remote
//               window (Section 5.3's JoinEstimate),
//      BLOOM -> membership in the remote Bloom snapshot,
//      SKCH  -> AGMS join-size estimate between the local and remote
//               windows);
//   2. water-fill forwarding probabilities p_{i,j} = min(1, w_i * score_j)
//      so that sum_j p_{i,j} equals the per-node budget T_i (Eq. 9), where
//      T_i = (N-1)^throttle spans O(1) (throttle 0) .. N-1 (throttle 1,
//      degenerating to BASE). The epsilon calibrator bisects the throttle.
//
// The DFT family additionally detects the uniform worst case (vanishing
// variance of the scores; Theorem 1 discussion) and falls back to
// round-robin.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/core/config.hpp"
#include "dsjoin/core/wire.hpp"
#include "dsjoin/net/frame.hpp"
#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::core {

class SummarySubstrate;

/// A standalone summary destined for one peer. `family` identifies the
/// emitting engine so multi-query nodes can attribute the frame's traffic
/// to the family's lowest-id subscriber.
struct OutboundSummary {
  net::NodeId peer;
  SummaryBlock block;
  SummaryFamily family = SummaryFamily::kNone;
};

/// Accumulated terms for a run-level predicted epsilon upper bound
/// (policies that can derive one; SMPL today). Per routed tuple the policy
/// adds its confidence-inflated estimate of match mass it chose not to
/// chase to `missed_mass` and its estimate of the total match mass in play
/// to `total_mass`; the experiment engine aggregates both across nodes and
/// reports missed/total as predicted_epsilon_bound (DESIGN.md §14).
struct EpsilonBoundTerms {
  double missed_mass = 0.0;
  double total_mass = 0.0;
};

/// Per-query routing policy instance. Since the substrate refactor
/// (DESIGN.md §15) a policy holds only *routing* state — its RNG stream,
/// throttle, fallback flag and probability diagnostics. The summary state
/// it consults (windows, coefficient stores, filters, sketches, samples)
/// lives in a core::SummarySubstrate engine, either shared with other
/// queries of the same family (the 3-arg factory) or privately owned (the
/// 2-arg factory — the historical self-contained policy object).
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy();

  RoutingPolicy(const RoutingPolicy&) = delete;
  RoutingPolicy& operator=(const RoutingPolicy&) = delete;

  virtual const char* name() const noexcept = 0;

  /// Feeds a locally arriving tuple into the substrate's summaries
  /// (sliding DFTs / Bloom / sketch windows). Called before route().
  /// Forwards to the substrate — a node hosting several queries calls the
  /// substrate directly, once per tuple, instead.
  void observe_local(const stream::Tuple& tuple);

  /// Destinations for the tuple (excluding self; possibly empty).
  virtual std::vector<net::NodeId> route(const stream::Tuple& tuple) = 0;

  /// Summary bytes to piggyback on a tuple frame to `peer` (may be empty).
  /// Marks the drained state as synced to that peer. Substrate-forwarded.
  SummaryBlock piggyback_for(net::NodeId peer);

  /// Ingests a summary block received from `peer`. Substrate-forwarded.
  void on_summary(net::NodeId peer, const SummaryBlock& block);

  /// Called once per local arrival after routing: standalone summaries for
  /// peers that have not heard from this node for a summary epoch
  /// (Figure 7: "if a tuple message was not sent to some site for a long
  /// period, the batch of updates are transmitted on their own").
  /// Substrate-forwarded.
  std::vector<OutboundSummary> maintenance(double now);

  /// Sets forwarding aggressiveness in [0, 1] (see header comment).
  virtual void set_throttle(double throttle) = 0;

  /// True while the uniform-worst-case fallback (round-robin) is engaged.
  virtual bool fallback_active() const noexcept { return false; }

  /// True when routing consults peer summary state (DFT/DFTT/BLOOM/SKCH/
  /// SPEC/SMPL). Drivers use this to decide whether virtual-time summary
  /// synchronization (watermarks, visibility buffering) is needed at all;
  /// BASE/RR runs pay zero overhead.
  bool uses_summaries() const noexcept;

  /// Current p_{i,j} estimates indexed by peer id (self entry = 0), for
  /// diagnostics and tests. Empty if the policy has no such notion.
  virtual std::vector<double> flow_probabilities() const { return {}; }

  /// Accumulated predicted-epsilon bound terms ({0, 0} for policies with
  /// no error model — the engine reports "no bound" for those runs).
  virtual EpsilonBoundTerms epsilon_bound_terms() const noexcept { return {}; }

  /// The substrate this policy's summaries live in.
  SummarySubstrate& substrate() noexcept { return *substrate_; }

  /// Standalone factory: the policy owns a private substrate — the
  /// pre-refactor self-contained object tests and calibration use.
  static std::unique_ptr<RoutingPolicy> create(const SystemConfig& config,
                                               net::NodeId self);

  /// Shared-substrate factory (multi-query serving): the policy registers
  /// its summary family's engine in `substrate` and keeps only routing
  /// state of its own. `substrate` must outlive the policy.
  static std::unique_ptr<RoutingPolicy> create(const SystemConfig& config,
                                               net::NodeId self,
                                               SummarySubstrate& substrate);

 protected:
  explicit RoutingPolicy(SummarySubstrate& substrate);  // out-of-line:
  // keeps SummarySubstrate an incomplete type for policy.hpp includers

  SummarySubstrate* substrate_;

 private:
  std::unique_ptr<SummarySubstrate> owned_;  // set by the 2-arg factory
};

/// Water-fills probabilities p_j = min(1, floor + w * score_j) with
/// sum_j p_j == min(budget, n) (n = scores.size()). Zero-score vectors get
/// the uniform allocation budget/n. Exposed for tests.
std::vector<double> allocate_flow_probabilities(std::span<const double> scores,
                                                double budget, double floor);

/// The per-node message budget T_i for a throttle in [0,1]:
/// T = (N-1)^throttle, clamped to [1, N-1].
double throttle_to_budget(double throttle, std::uint32_t nodes) noexcept;

}  // namespace dsjoin::core
