// Processing node (Figure 1's N_i).
//
// A node holds its segments of both stream windows, runs the local join on
// every arriving tuple (local and forwarded), executes its routing policy,
// piggybacks/flushes summaries, and ships discovered result pairs back to
// the forwarded tuple's origin ("matching tuples must still be transmitted
// over the network in order to provide the complete result", Section 5.3).
//
// Multi-query serving (DESIGN.md §15): a node hosts every query of
// effective_queries(config). The local stream windows and the summary
// substrate are ingested once per tuple; each registered query keeps its
// own routing policy, received-tuple stores, online controller and
// MetricsCollector. With one query (the historical mode) every code path,
// RNG draw and wire byte is identical to the single-query engine.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dsjoin/common/thread_pool.hpp"
#include "dsjoin/core/config.hpp"
#include "dsjoin/core/metrics.hpp"
#include "dsjoin/core/policy.hpp"
#include "dsjoin/core/substrate.hpp"
#include "dsjoin/net/transport.hpp"
#include "dsjoin/stream/tuple.hpp"
#include "dsjoin/stream/window.hpp"

namespace dsjoin::core {

/// Per-query attribution counters a node exposes for reporting. Every sent
/// or received frame is attributed to exactly one query (tuple frames to
/// the lowest-index query in their mask, standalone summaries to the
/// family's lowest subscriber), so per-query counts sum to the node
/// aggregates by construction.
struct QueryCounters {
  std::uint32_t query_id = 0;
  std::uint64_t received_tuples = 0;   ///< inbound tuple frames attributed
  std::uint64_t forwarded_tuples = 0;  ///< outbound tuple frames attributed
  std::uint64_t result_frames = 0;     ///< outbound result frames (owned)
  std::uint64_t summary_frames = 0;    ///< outbound standalone summaries
  double throttle = 0.0;
  double eps_estimate = -1.0;
};

class Node {
 public:
  /// Multi-query constructor: one MetricsCollector per registered query, in
  /// effective_queries(config) order. The transport and every collector
  /// must outlive the node. The node registers no handler itself; the owner
  /// wires on_frame to the transport.
  Node(const SystemConfig& config, net::NodeId self, net::Transport& transport,
       std::span<MetricsCollector* const> query_metrics);

  /// Single-collector convenience (single-query mode only).
  Node(const SystemConfig& config, net::NodeId self, net::Transport& transport,
       MetricsCollector& metrics);

  net::NodeId id() const noexcept { return self_; }

  /// A tuple arrives from this node's own source at virtual time `now`
  /// (== tuple.timestamp).
  void on_local_tuple(const stream::Tuple& tuple, double now);

  /// One deferred local arrival (tuple plus its event time).
  struct LocalArrival {
    stream::Tuple tuple;
    double when;
  };

  /// Processes a run of local arrivals in order with one call — the
  /// parallel driver hands each node its epoch's consecutive arrivals as a
  /// batch instead of one type-erased task per tuple. `bind_slot(i)`, if
  /// set, runs before arrival i so the driver can point the transport and
  /// metrics buffers at that arrival's epoch slot. Results are identical
  /// to calling on_local_tuple per arrival.
  void on_local_batch(std::span<const LocalArrival> arrivals,
                      const std::function<void(std::size_t)>& bind_slot);

  /// Batch form for arrivals whose event time is their own timestamp (the
  /// socket drivers feed materialized ArrivalSchedule slices, where that
  /// always holds) — same results as on_local_tuple per arrival, without
  /// per-arrival scratch copies.
  void on_local_batch(std::span<const stream::Tuple> tuples);

  /// A frame arrives from the network at virtual time `now`.
  void on_frame(net::Frame&& frame, double now);

  /// When enabled, on_frame ignores summary content (piggyback blocks and
  /// kSummary frames): an external feed (the simulator's virtual-time tee)
  /// delivers summaries via queue_summary instead, exactly once, without
  /// transport latency deciding the application point.
  void set_external_summary_feed(bool enabled) noexcept {
    external_summary_feed_ = enabled;
  }

  /// Optional worker pool for multi-query evaluation: per-tuple query
  /// evaluation (joins + routing) is sharded by summary family — queries
  /// sharing an engine serialize in one shard, shards run concurrently,
  /// and all cross-query effects (frames, inserts) are applied afterwards
  /// in canonical query order. Results are bit-identical for every worker
  /// count, including none. Ignored in single-query mode. The pool must
  /// outlive the node.
  void set_worker_pool(common::ThreadPool* pool) noexcept { pool_ = pool; }

  /// Buffers a stamped summary from `from` until its visibility boundary
  /// (SystemConfig::summary_visible_time). A summary whose boundary already
  /// passed locally is applied immediately and counted late — the flag that
  /// cross-backend parity is no longer guaranteed.
  void queue_summary(net::NodeId from, const SummaryStamp& stamp,
                     SummaryBlock block);

  /// Query 0's policy — the whole story in single-query mode, diagnostics
  /// only with several queries registered.
  RoutingPolicy& policy() noexcept { return *queries_.front().policy; }
  const RoutingPolicy& policy() const noexcept {
    return *queries_.front().policy;
  }

  // Per-query surface.
  std::size_t query_count() const noexcept { return queries_.size(); }
  const QuerySpec& query_spec(std::size_t index) const noexcept {
    return queries_[index].spec;
  }
  RoutingPolicy& query_policy(std::size_t index) noexcept {
    return *queries_[index].policy;
  }
  const RoutingPolicy& query_policy(std::size_t index) const noexcept {
    return *queries_[index].policy;
  }
  QueryCounters query_counters(std::size_t index) const noexcept;

  /// True when any registered query consumes summaries. Drivers use this to
  /// decide whether virtual-time summary synchronization (watermarks,
  /// visibility buffering) is needed at all; all-BASE/RR runs pay zero.
  bool uses_summaries() const noexcept { return substrate_.uses_summaries(); }

  SummarySubstrate& substrate() noexcept { return substrate_; }
  const SummarySubstrate& substrate() const noexcept { return substrate_; }

  /// Tuples this node ingested from its own source.
  std::uint64_t local_tuples() const noexcept { return local_tuples_; }
  /// Forwarded tuples received from peers.
  std::uint64_t received_tuples() const noexcept { return received_tuples_; }
  /// Frames that failed to decode (should stay 0 in healthy runs).
  std::uint64_t decode_failures() const noexcept { return decode_failures_; }
  /// Summaries that arrived after their visibility boundary had already
  /// passed (should stay 0 when the driver's watermarks are working).
  std::uint64_t late_summaries() const noexcept { return late_summaries_; }

  /// Online controller diagnostics for query 0 (meaningful when
  /// online_target_eps >= 0); per-query values via query_counters().
  double current_throttle() const noexcept {
    return queries_.front().throttle;
  }
  /// Smoothed online estimate of the missed remote-match fraction; negative
  /// until the first audit window completes.
  double epsilon_estimate() const noexcept {
    return queries_.front().eps_estimate;
  }

 private:
  /// Everything one registered query owns: its routing policy (summary
  /// state shared via the substrate), the forwarded tuples routed to it,
  /// its online-controller state and its attribution counters.
  struct QueryRuntime {
    QuerySpec spec;
    SystemConfig config;  ///< base with the spec's fields overlaid
    std::unique_ptr<RoutingPolicy> policy;
    MetricsCollector* metrics = nullptr;
    std::array<stream::TupleStore, 2> received;  // forwarded tuples, by side

    // Online controller state (per query; identical cadence, own evidence).
    common::Xoshiro256 audit_rng;
    double throttle = 0.0;
    double eps_estimate = -1.0;
    std::unordered_map<std::uint64_t, bool> sent_class;  // id -> audited?
    std::deque<std::uint64_t> sent_order;                // FIFO cap
    std::uint64_t audit_sent = 0;
    std::uint64_t regular_sent = 0;
    double audit_matches = 0.0;
    double regular_matches = 0.0;
    /// Pairs already credited once — a pair covered via both directions
    /// (our forward and the partner's) must not count twice, or the
    /// estimate's numerator and denominator inflate asymmetrically.
    std::unordered_set<std::uint64_t> credited_pairs;
    std::deque<std::uint64_t> credited_order;

    // Frame attribution (see QueryCounters).
    std::uint64_t received_tuples = 0;
    std::uint64_t forwarded_tuples = 0;
    std::uint64_t result_frames = 0;
    std::uint64_t summary_frames = 0;

    QueryRuntime(const SystemConfig& base, const QuerySpec& spec,
                 net::NodeId self, SummarySubstrate& substrate,
                 MetricsCollector* metrics);
  };

  /// Per-tuple evaluation output of one query, produced (possibly on a
  /// worker strand) before any cross-query effect is applied. All vectors
  /// are cleared per tuple and keep their capacity — the result path is
  /// allocation-free in steady state.
  struct QueryEval {
    bool audited = false;
    std::vector<net::NodeId> destinations;
    /// Discovered pairs by the origin they ship to, indexed by NodeId
    /// (replaces the per-tuple std::map). Frames are emitted by scanning
    /// NodeIds in ascending order — the order the map iterated in.
    std::vector<std::vector<stream::ResultPair>> origin_pairs;
    /// Received-store probe scratch.
    std::vector<stream::StoredTuple> matches;
  };

  /// The audit draw plus routing decision for one query (thread-confined to
  /// the query's shard: touches only per-query and per-family state).
  void evaluate_routing(QueryRuntime& query, const stream::Tuple& tuple,
                        QueryEval& eval);
  /// Runs `task(q)` for every query, sharded by summary family when a pool
  /// is set (multi-query only); otherwise serial in query order.
  void for_each_query_sharded(const std::function<void(std::size_t)>& task);
  void send_result_frame(QueryRuntime& query, net::NodeId origin,
                         std::span<const stream::ResultPair> pairs);
  /// The full per-arrival pipeline behind on_local_tuple / on_local_batch.
  /// With `batch` empty the local windows are probed directly; otherwise
  /// arrival `batch_index`'s pre-collected matches (prepare_batch_probes)
  /// are replayed and corrected for in-batch predecessors.
  void local_tuple_impl(const stream::Tuple& tuple, double now,
                        std::span<const LocalArrival> batch,
                        std::size_t batch_index);
  /// Pre-collects every arrival's local-window matches per probe group with
  /// the store's batched scan. Returns false — leaving the scratch untouched
  /// — when the batch is not eligible (event time decoupled from tuple time,
  /// or timestamps going backwards), in which case the caller must fall back
  /// to the serial per-tuple path.
  bool prepare_batch_probes(std::span<const LocalArrival> arrivals);
  void evict(double now);
  void send_summary(net::NodeId peer, SummaryBlock block, double now);
  /// Applies every pending summary whose visibility boundary is <= now, in
  /// the canonical (visible_time, sender, seq) order. Advances the local
  /// summary frontier to `now` first.
  void apply_due_summaries(double now);
  /// Records a locally originated tuple's controller class (audit/regular).
  void track_sent(QueryRuntime& query, std::uint64_t id, bool audited);
  /// Attributes shipped result pairs to the controller classes.
  void absorb_result_feedback(QueryRuntime& query,
                              std::span<const stream::ResultPair> pairs);
  /// Periodic proportional throttle adjustment from the audit estimate.
  void run_controller(QueryRuntime& query);

  SystemConfig config_;
  net::NodeId self_;
  net::Transport& transport_;
  SummarySubstrate substrate_;
  std::vector<QueryRuntime> queries_;
  bool multi_query_ = false;
  double max_half_width_ = 0.0;  ///< retention horizon across queries
  common::ThreadPool* pool_ = nullptr;
  /// Query indices grouped by summary family: one shard per family (its
  /// queries share an engine and must serialize); BASE/RR queries share no
  /// state and get a shard each.
  std::vector<std::vector<std::size_t>> shards_;
  std::array<stream::TupleStore, 2> local_;  // own tuples, by side
  std::uint64_t local_tuples_ = 0;
  std::uint64_t received_tuples_ = 0;
  std::uint64_t decode_failures_ = 0;
  std::uint64_t late_summaries_ = 0;

  // Virtual-time summary synchronization (see DESIGN.md §12).
  struct PendingSummary {
    double visible;      // visibility boundary (grid multiple)
    std::uint32_t seq;   // per-link emission counter
    net::NodeId from;
    SummaryBlock block;
  };
  std::vector<PendingSummary> pending_summaries_;
  /// Latest local-arrival virtual time; summaries visible at or before it
  /// have been applied.
  double summary_frontier_;
  /// Per-destination emission counters for outgoing stamps.
  std::vector<std::uint32_t> summary_seq_;
  bool external_summary_feed_ = false;

  // Scratch for the per-tuple evaluation (avoids per-tuple allocation).
  std::vector<QueryEval> eval_scratch_;

  // Cross-query probe sharing (DESIGN.md §16): the shared local windows are
  // scanned once per distinct join half-width, and every query of that
  // half-width consumes the one match list. Received stores stay per-query
  // (their contents already differ per query).
  struct ProbeGroup {
    double half_width;
    std::vector<std::size_t> queries;
  };
  std::vector<ProbeGroup> probe_groups_;
  std::vector<std::size_t> group_of_query_;
  /// Per-group local-window matches for the tuple in flight; built serially
  /// before the sharded phase, read-only inside it.
  std::vector<std::vector<stream::StoredTuple>> group_matches_;
  /// Lazy per-frame collect flags (on_frame probes a group's window only
  /// when a masked query actually needs it).
  std::vector<bool> group_collected_;
  /// on_frame result-shipping scratch (one list per masked query in turn).
  std::vector<stream::ResultPair> frame_pairs_;

  // Batched-probe scratch (on_local_batch): per group, every arrival's
  // pre-batch local-window matches pooled with [begin, end) slices.
  struct BatchGroupMatches {
    std::vector<stream::StoredTuple> pool;
    std::vector<std::uint32_t> begin;
    std::vector<std::uint32_t> end;
  };
  std::vector<BatchGroupMatches> batch_groups_;
  /// Arrivals split by stream side (a tuple probes the opposite window), as
  /// the probe spans handed to TupleStore::for_each_match_batch, plus each
  /// probe's position in the arrival slice.
  std::array<std::vector<stream::Tuple>, 2> side_probes_;
  std::array<std::vector<std::uint32_t>, 2> side_arrival_;
  /// Tuple-span ingest adapter (when == tuple.timestamp for every arrival).
  std::vector<LocalArrival> arrivals_scratch_;
};

}  // namespace dsjoin::core
