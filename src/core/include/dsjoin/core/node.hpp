// Processing node (Figure 1's N_i).
//
// A node holds its segments of both stream windows, runs the local join on
// every arriving tuple (local and forwarded), executes its routing policy,
// piggybacks/flushes summaries, and ships discovered result pairs back to
// the forwarded tuple's origin ("matching tuples must still be transmitted
// over the network in order to provide the complete result", Section 5.3).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dsjoin/core/config.hpp"
#include "dsjoin/core/metrics.hpp"
#include "dsjoin/core/policy.hpp"
#include "dsjoin/net/transport.hpp"
#include "dsjoin/stream/tuple.hpp"
#include "dsjoin/stream/window.hpp"

namespace dsjoin::core {

class Node {
 public:
  /// The transport and metrics collector must outlive the node. The node
  /// registers no handler itself; the owner wires on_frame to the transport.
  Node(const SystemConfig& config, net::NodeId self, net::Transport& transport,
       MetricsCollector& metrics);

  net::NodeId id() const noexcept { return self_; }

  /// A tuple arrives from this node's own source at virtual time `now`
  /// (== tuple.timestamp).
  void on_local_tuple(const stream::Tuple& tuple, double now);

  /// One deferred local arrival (tuple plus its event time).
  struct LocalArrival {
    stream::Tuple tuple;
    double when;
  };

  /// Processes a run of local arrivals in order with one call — the
  /// parallel driver hands each node its epoch's consecutive arrivals as a
  /// batch instead of one type-erased task per tuple. `bind_slot(i)`, if
  /// set, runs before arrival i so the driver can point the transport and
  /// metrics buffers at that arrival's epoch slot. Results are identical
  /// to calling on_local_tuple per arrival.
  void on_local_batch(std::span<const LocalArrival> arrivals,
                      const std::function<void(std::size_t)>& bind_slot);

  /// Batch form for arrivals whose event time is their own timestamp (the
  /// socket drivers feed materialized ArrivalSchedule slices, where that
  /// always holds) — same results as on_local_tuple per arrival, without
  /// per-arrival scratch copies.
  void on_local_batch(std::span<const stream::Tuple> tuples);

  /// A frame arrives from the network at virtual time `now`.
  void on_frame(net::Frame&& frame, double now);

  /// When enabled, on_frame ignores summary content (piggyback blocks and
  /// kSummary frames): an external feed (the simulator's virtual-time tee)
  /// delivers summaries via queue_summary instead, exactly once, without
  /// transport latency deciding the application point.
  void set_external_summary_feed(bool enabled) noexcept {
    external_summary_feed_ = enabled;
  }

  /// Buffers a stamped summary from `from` until its visibility boundary
  /// (SystemConfig::summary_visible_time). A summary whose boundary already
  /// passed locally is applied immediately and counted late — the flag that
  /// cross-backend parity is no longer guaranteed.
  void queue_summary(net::NodeId from, const SummaryStamp& stamp,
                     SummaryBlock block);

  RoutingPolicy& policy() noexcept { return *policy_; }
  const RoutingPolicy& policy() const noexcept { return *policy_; }

  /// Tuples this node ingested from its own source.
  std::uint64_t local_tuples() const noexcept { return local_tuples_; }
  /// Forwarded tuples received from peers.
  std::uint64_t received_tuples() const noexcept { return received_tuples_; }
  /// Frames that failed to decode (should stay 0 in healthy runs).
  std::uint64_t decode_failures() const noexcept { return decode_failures_; }
  /// Summaries that arrived after their visibility boundary had already
  /// passed (should stay 0 when the driver's watermarks are working).
  std::uint64_t late_summaries() const noexcept { return late_summaries_; }

  /// Online controller diagnostics (meaningful when online_target_eps >= 0).
  double current_throttle() const noexcept { return throttle_; }
  /// Smoothed online estimate of the missed remote-match fraction; negative
  /// until the first audit window completes.
  double epsilon_estimate() const noexcept { return eps_estimate_; }

 private:
  /// Joins `tuple` against the given opposite-side store; reports pairs and
  /// returns the matches grouped for shipping.
  void join_and_report(
      const stream::Tuple& tuple, const stream::TupleStore& store, double now,
      std::vector<stream::ResultPair>* shipped,
      std::map<net::NodeId, std::vector<stream::ResultPair>>* by_origin);
  void evict(double now);
  void send_summary(net::NodeId peer, SummaryBlock block, double now);
  /// Applies every pending summary whose visibility boundary is <= now, in
  /// the canonical (visible_time, sender, seq) order. Advances the local
  /// summary frontier to `now` first.
  void apply_due_summaries(double now);
  /// Records a locally originated tuple's controller class (audit/regular).
  void track_sent(std::uint64_t id, bool audited);
  /// Attributes shipped result pairs to the controller classes.
  void absorb_result_feedback(const std::vector<stream::ResultPair>& pairs);
  /// Periodic proportional throttle adjustment from the audit estimate.
  void run_controller();

  SystemConfig config_;
  net::NodeId self_;
  net::Transport& transport_;
  MetricsCollector& metrics_;
  std::unique_ptr<RoutingPolicy> policy_;
  std::array<stream::TupleStore, 2> local_;     // own tuples, by side
  std::array<stream::TupleStore, 2> received_;  // forwarded tuples, by side
  std::uint64_t local_tuples_ = 0;
  std::uint64_t received_tuples_ = 0;
  std::uint64_t decode_failures_ = 0;
  std::uint64_t late_summaries_ = 0;

  // Virtual-time summary synchronization (see DESIGN.md §12).
  struct PendingSummary {
    double visible;      // visibility boundary (grid multiple)
    std::uint32_t seq;   // per-link emission counter
    net::NodeId from;
    SummaryBlock block;
  };
  std::vector<PendingSummary> pending_summaries_;
  /// Latest local-arrival virtual time; summaries visible at or before it
  /// have been applied.
  double summary_frontier_;
  /// Per-destination emission counters for outgoing stamps.
  std::vector<std::uint32_t> summary_seq_;
  bool external_summary_feed_ = false;

  // Online controller state.
  common::Xoshiro256 audit_rng_;
  double throttle_ = 0.0;
  double eps_estimate_ = -1.0;
  std::unordered_map<std::uint64_t, bool> sent_class_;  // id -> audited?
  std::deque<std::uint64_t> sent_order_;                // FIFO cap
  std::uint64_t audit_sent_ = 0;
  std::uint64_t regular_sent_ = 0;
  double audit_matches_ = 0.0;
  double regular_matches_ = 0.0;
  /// Pairs already credited once — a pair covered via both directions
  /// (our forward and the partner's) must not count twice, or the
  /// estimate's numerator and denominator inflate asymmetrically.
  std::unordered_set<std::uint64_t> credited_pairs_;
  std::deque<std::uint64_t> credited_order_;
};

}  // namespace dsjoin::core
