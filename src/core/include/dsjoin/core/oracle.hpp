// Exact-join oracle.
//
// Computes |Psi| of Eq. 1: the exact number of (r, s) pairs with equal keys
// and coexisting timestamps, over all tuples of all nodes, by streaming the
// arrivals in global timestamp order. The distributed system's deduplicated
// reports are measured against this total.
#pragma once

#include <array>
#include <cstdint>

#include "dsjoin/stream/tuple.hpp"
#include "dsjoin/stream/window.hpp"

namespace dsjoin::core {

class ExactJoinOracle {
 public:
  /// @param half_width  join window: |r.ts - s.ts| <= half_width.
  explicit ExactJoinOracle(double half_width);

  /// Feeds one arrival. Calls must be in nondecreasing timestamp order
  /// (the simulation's arrival events provide this for free).
  void observe(const stream::Tuple& tuple);

  /// Exact |Psi| over everything observed so far.
  std::uint64_t total_pairs() const noexcept { return pairs_; }

 private:
  double half_width_;
  std::array<stream::TupleStore, 2> store_;  // by side
  std::uint64_t pairs_ = 0;
  std::uint64_t observed_ = 0;
};

}  // namespace dsjoin::core
