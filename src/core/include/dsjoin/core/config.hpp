// Experiment configuration.
//
// One SystemConfig describes a complete distributed-join experiment: the
// cluster, the WAN profile, the workload, the window semantics, the routing
// policy under test and its summary budget. Every bench builds these and
// hands them to DspSystem.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dsjoin/common/serialize.hpp"
#include "dsjoin/net/sim_transport.hpp"

namespace dsjoin::core {

/// The routing policies of Section 6 (plus round-robin, the paper's
/// fallback for the detected worst case).
enum class PolicyKind {
  kBase,        ///< BASE: broadcast every tuple to all N-1 peers (exact)
  kRoundRobin,  ///< RR: one peer per tuple, cycled (the fallback heuristic)
  kDft,         ///< DFT: flow filtering on DFT cross-correlation coefficients
  kDftt,        ///< DFTT: DFT + membership tests on reconstructed tuples
  kBloom,       ///< BLOOM: membership tests on counting-Bloom snapshots
  kSketch,      ///< SKCH: flow weights from AGMS join-size estimates
  kSpectrum,    ///< SPEC (ours): flow weights from histogram-DFT join-size
                ///< estimates — deterministic counterpart of SKCH (ablation A3)
  kSample,      ///< SMPL (ours): stratified reservoir samples with
                ///< Horvitz–Thompson join-size estimates and confidence
                ///< bounds (the StreamApprox-style competitor)
};

/// One row of the policy registry: the enum value and its CLI spelling.
struct PolicyName {
  PolicyKind kind;
  const char* name;
};

/// Every policy with its canonical CLI name, in enum order. The single
/// source of truth for to_string / policy_from_string and for every CLI
/// site's `--policy` help text, so a new policy appears everywhere at once.
std::span<const PolicyName> policy_names() noexcept;

/// "BASE | RR | DFT | ..." — the registry rendered for help/error text.
std::string policy_names_csv();

const char* to_string(PolicyKind kind) noexcept;
PolicyKind policy_from_string(const std::string& name);

/// Summary-state family a policy consumes. Queries of the same family
/// share one ingest-side engine in core::SummarySubstrate (multi-query
/// serving, DESIGN.md §15); BASE and RR consume no summaries at all.
enum class SummaryFamily : std::uint8_t {
  kNone = 0,      ///< BASE / RR: pure routing, no summary state
  kCoeff = 1,     ///< DFT / DFTT: sliding-DFT coefficient stores
  kBloom = 2,     ///< BLOOM: counting-Bloom snapshots
  kSketch = 3,    ///< SKCH: AGMS sketches
  kSpectrum = 4,  ///< SPEC: histogram-DFT spectra
  kSample = 5,    ///< SMPL: stratified reservoir samples
};

inline constexpr std::size_t kSummaryFamilies = 6;

SummaryFamily family_of(PolicyKind kind) noexcept;

/// One registered sliding-window join query (multi-query serving,
/// DESIGN.md §15): its routing policy, forwarding aggressiveness and
/// window half-width. Everything else — summary geometry, WAN profile,
/// workload, batching — is base-config by construction, which is what
/// makes the ingest-side summary substrate shareable across queries.
struct QuerySpec {
  std::uint32_t id = 0;        ///< unique within the run; travels on the wire
  PolicyKind policy = PolicyKind::kDftt;
  double throttle = 0.5;       ///< forwarding aggressiveness in [0, 1]
  double join_half_width_s = 10.0;  ///< pair (r,s) joins iff |Δt| <= this
};

/// Hard cap on registered queries per run: the per-tuple wire mask is a
/// u64 bitmap, and the cap keeps control-plane messages bounded.
inline constexpr std::size_t kMaxQueries = 64;

/// Full experiment description. Defaults give a small, fast, paper-shaped
/// run; benches override what each figure sweeps.
struct SystemConfig {
  // Cluster.
  std::uint32_t nodes = 4;
  std::uint64_t seed = 42;
  net::WanProfile wan{};

  // Workload.
  std::string workload = "ZIPF";  ///< UNI | ZIPF | FIN | NWRK
  std::uint32_t regions = 2;
  double locality = 0.85;
  double noise = 0.20;  ///< background (cold-key) tuple fraction
  std::int64_t domain = 1 << 19;
  double arrivals_per_second = 25.0;  ///< per node per stream side
  std::uint64_t tuples_per_node = 4000;  ///< arrivals per node per side

  // Join semantics: pair (r, s) joins iff keys match and
  // |r.timestamp - s.timestamp| <= join_half_width_s.
  double join_half_width_s = 10.0;
  /// Extra retention beyond the window so delayed arrivals still match.
  double retention_margin_s = 120.0;

  // Summaries.
  std::uint32_t dft_window = 2048;    ///< W: values per per-side sliding DFT
  double kappa = 256.0;               ///< compression factor W/K
  std::uint32_t summary_epoch_tuples = 256;  ///< tuples between summary flushes
  /// Virtual-time grid (seconds) on which stamped summaries become visible
  /// to receivers. A summary emitted at virtual time tau is applied by the
  /// receiver at the first grid multiple strictly greater than
  /// tau + wan.latency_min_s (see summary_visible_time), on every backend.
  /// Must be > 0.
  double summary_sync_epoch_s = 0.25;
  /// Peers that received no tuple (hence no piggybacked update) for this
  /// many epochs get a standalone summary frame. Kept lazy: coefficient
  /// updates ride almost entirely on tuple traffic (Figure 7 line 5), so
  /// summary bytes track — rather than outgrow — the net data (Figure 8).
  std::uint32_t stale_flush_epochs = 8;
  /// At most this many coefficient deltas (per stream side) ride on one
  /// tuple frame; the largest-magnitude changes go first. Keeps piggyback
  /// overhead a bounded fraction of tuple traffic; standalone flushes are
  /// uncapped. 0 disables the cap.
  std::uint32_t piggyback_max_coeffs = 4;
  std::int64_t membership_tolerance = 32;  ///< +/- slack for reconstructed keys
  /// Coefficient-change threshold for piggybacked deltas, as a fraction of
  /// sqrt(spectral energy / W) (adaptive to signal scale).
  double coeff_delta_threshold = 0.05;
  /// Preferred fixed-point mantissa width for coefficient summaries
  /// (wire format v4): 0 disables quantization (coefficients ship as f64,
  /// the historical format), 8 or 16 quantize each coefficient block to
  /// int8/int16 mantissas behind one f64 scale. The encoder escalates
  /// 8 -> 16 -> f64 per block whenever the predicted added reconstruction
  /// MSE would exceed dsp::kQuantMseBudget, so the paper's Section 5.3
  /// lossless-after-rounding bound is never at risk.
  std::uint32_t summary_quant_bits = 0;

  // Stratified sampling (SMPL policy only; DESIGN.md §14).
  /// Target live sample size per stream side, split across strata. 0 keeps
  /// the Section 6 equal-budget discipline: the capacity is derived from
  /// summary_budget_bytes() so SMPL's wire summary costs what a DFT
  /// coefficient summary costs (see sample_capacity_effective()).
  std::uint32_t sample_capacity = 0;
  /// Key strata (hash(key) mod strata) so hot keys cannot crowd the whole
  /// sample; each stratum gets capacity/strata slots.
  std::uint32_t sample_strata = 8;

  // Policy under test.
  PolicyKind policy = PolicyKind::kDftt;
  /// Forwarding aggressiveness in [0, 1]; the epsilon calibrator bisects
  /// this. Maps to a per-node budget T in [1, N-1] (policy-specific).
  double throttle = 0.5;

  /// Registered join queries (multi-query serving, DESIGN.md §15). Empty
  /// keeps the historical single-query mode: one implicit query derived
  /// from `policy`, `throttle` and `join_half_width_s` above (see
  /// effective_queries()). A one-entry list is equivalent to overriding
  /// those three fields — the engine and wire formats stay byte-identical
  /// to single-query mode whenever the effective query count is 1.
  std::vector<QuerySpec> queries;
  /// Coefficient-of-variation threshold under which the flow filter
  /// declares the uniform worst case and falls back to round-robin
  /// (Section 5.2.2: "a very small variance in the filter probabilities
  /// indicates equal correlation with all neighbors"). Relative spread is
  /// used so the detector is scale-free in the score magnitudes.
  double uniform_detection_cv = 0.25;

  // Flow control.
  /// Ingestion stalls while the node's worst outgoing-link backlog exceeds
  /// this (models a bounded send queue); 0 disables backpressure.
  double max_backlog_s = 10.0;

  // Data-plane batching (socket backends only; the simulator models links,
  // not sockets). Logical traffic accounting is unaffected by batching —
  // these knobs change syscall count and header bytes, never frame counts.
  /// Max logical frames coalesced into one wire record per directed link.
  /// 1 = one record per frame (coalescing off); capped at 65535 (the batch
  /// record's count field is a u16).
  std::uint32_t coalesce_frames = 32;
  /// Payload-byte budget per coalesced record; a buffer holding at least
  /// this many pending payload bytes flushes immediately.
  std::uint32_t coalesce_bytes = 1 << 16;
  /// Max seconds the oldest buffered frame may wait before the next send
  /// on its link triggers a flush (bounds staleness under slow traffic;
  /// control frames always flush immediately regardless).
  double coalesce_linger_s = 0.005;

  // Parallel execution.
  /// Execution strands for the simulator driver. 0 (default) runs every
  /// event on the caller's thread — the historical serial path. k >= 1
  /// runs each epoch's per-node work on k strands (the caller plus k-1
  /// pool workers); nodes are shared-nothing and all cross-node effects
  /// are applied in canonical order at the epoch barrier, so results are
  /// bit-identical to the serial driver (see DESIGN.md §6; the one caveat
  /// is backpressure engaging mid-epoch, which the paper's approximate
  /// policies never trigger).
  std::uint32_t worker_threads = 0;

  /// Feed every arrival to the exact-join oracle (needed for epsilon /
  /// |Psi|). The oracle is inherently global and serial; large-scale
  /// throughput runs can switch it off and measure wall-clock honestly.
  bool oracle_enabled = true;

  // Online epsilon controller (extension; the paper calibrates offline).
  // Each node broadcasts a small audit sample of its tuples to all peers;
  // comparing the remote-match rate of audited vs policy-routed tuples
  // yields an unbiased online estimate of the missed-result fraction, which
  // a proportional controller drives to the target by adjusting the
  // throttle. Disabled when online_target_eps < 0.
  double online_target_eps = -1.0;
  double audit_probability = 0.05;   ///< P(tuple is broadcast as an audit)
  double controller_gain = 0.3;      ///< throttle step per unit of error
  std::uint32_t controller_interval_tuples = 512;  ///< adjustment cadence

  /// Summary budget per epoch in bytes (all policies are granted the same
  /// budget, Section 6). Derived from the DFT geometry: K complex coeffs.
  std::size_t summary_budget_bytes() const noexcept {
    const auto k = static_cast<std::size_t>(
        static_cast<double>(dft_window) / kappa < 1.0
            ? 1.0
            : static_cast<double>(dft_window) / kappa);
    return k * 16;
  }

  /// Retained coefficient count K for the DFT policies.
  std::size_t dft_retained() const noexcept { return summary_budget_bytes() / 16; }

  /// Live sample size the SMPL policy targets per stream side: the explicit
  /// knob when set, otherwise the summary byte budget divided by the
  /// per-key wire cost (24 bytes: i64 key + f64 weight + f64 variance), so
  /// a sample summary spends the same budget as a coefficient summary.
  std::uint32_t sample_capacity_effective() const noexcept {
    if (sample_capacity != 0) return sample_capacity;
    const auto derived = static_cast<std::uint32_t>(summary_budget_bytes() / 24);
    return std::max({derived, sample_strata, 2u});
  }

  /// Virtual time at which a summary stamped with `emit_time` becomes
  /// visible to its receiver: the first summary_sync_epoch_s multiple
  /// strictly greater than emit_time + wan.latency_min_s. Strictly greater
  /// keeps the parallel simulator driver deterministic — a summary emitted
  /// inside epoch [W, W + w) becomes visible only after W + w, i.e. never
  /// within the epoch that emitted it (this also holds when w == 0).
  double summary_visible_time(double emit_time) const noexcept {
    const double grid = summary_sync_epoch_s;
    return grid * (std::floor((emit_time + wan.latency_min_s) / grid) + 1.0);
  }
};

/// The query set an engine actually serves: `config.queries` when set,
/// otherwise the one implicit query the legacy scalar fields describe.
/// Never empty for a valid config.
std::vector<QuerySpec> effective_queries(const SystemConfig& config);

/// True when the effective query count exceeds one — the engine switches
/// to per-query wire fields, per-query metrics and substrate sharing.
bool multi_query_mode(const SystemConfig& config);

/// Projects one query onto the base config: the returned config has the
/// spec's policy/throttle/join_half_width_s in the legacy scalar fields
/// and an empty query list. RoutingPolicy::create seeds from this view, so
/// a query spec identical to the legacy fields routes bit-identically to
/// the historical single-query engine.
SystemConfig query_config(const SystemConfig& base, const QuerySpec& spec);

/// Max effective window half-width across registered queries — the shared
/// local windows retain to this horizon so every query can match.
double max_join_half_width(const SystemConfig& config);

/// The one validity gate for a SystemConfig, shared by every CLI site,
/// the control-plane decoder and the engine entry points (previously the
/// ranges were duplicated per flag in bench_util.hpp and dsjoin_coord).
/// kInvalidArgument with a human-readable message on the first violation.
common::Status validate_config(const SystemConfig& config);

/// Parses a `--queries` CLI value: semicolon-separated query specs, each
/// `POLICY[:throttle[:half_width_s]]` (e.g. "DFTT:0.5:10;SMPL:0.7:4").
/// Omitted fields default to the base config's legacy scalars. IDs are
/// assigned in order starting at 0. kInvalidArgument on syntax errors;
/// an empty string yields an empty list (single-query mode).
common::Result<std::vector<QuerySpec>> parse_queries(
    const std::string& text, const SystemConfig& base);

/// Wire encoding of a complete SystemConfig (every field, WAN profile
/// included), so a coordinator can ship one config to remote node daemons.
/// The layout is covered by the control-plane protocol version.
void serialize_config(const SystemConfig& config, common::BufferWriter& out);

/// Decodes a config, validating enum fields; kDataLoss on truncation or
/// out-of-range values.
common::Result<SystemConfig> deserialize_config(common::BufferReader& in);

}  // namespace dsjoin::core
