// Summary wire codecs and per-peer summary stores.
//
// Each policy describes its window to peers with a different summary type:
// DFT coefficient deltas (DFT/DFTT), counting-Bloom snapshots (BLOOM), or
// AGMS sketches (SKCH). One SummaryBlock may carry several sub-blocks (e.g.
// both stream sides). The codecs here are shared by the policies and the
// tests; the stores hold the most recent remote state per (peer, side) and,
// for DFTT, the reconstruction cache that turns coefficients back into an
// approximate attribute multiset (Section 5.3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dsjoin/common/serialize.hpp"
#include "dsjoin/dsp/compression.hpp"
#include "dsjoin/dsp/histogram_spectrum.hpp"
#include "dsjoin/dsp/sliding_dft.hpp"
#include "dsjoin/sampling/estimator.hpp"
#include "dsjoin/sketch/agms.hpp"
#include "dsjoin/sketch/bloom.hpp"
#include "dsjoin/core/wire.hpp"
#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::core {

/// Sub-block codecs. A sub-block starts with a one-byte tag; decode_blocks
/// dispatches until the block is exhausted.
namespace summary_codec {

inline constexpr std::uint8_t kTagDft = 'D';
inline constexpr std::uint8_t kTagBloom = 'B';
inline constexpr std::uint8_t kTagSketch = 'K';
inline constexpr std::uint8_t kTagHistSpectrum = 'H';
// Quantized counterparts (lowercase of the f64 tags, wire format v4): one
// f64 per-block scale plus int8/int16 mantissas and u16 coefficient
// indices. Decoding dequantizes and invokes the same visitor callbacks as
// the f64 forms, so receivers are format-agnostic.
inline constexpr std::uint8_t kTagDftQuant = 'd';
inline constexpr std::uint8_t kTagHistSpectrumQuant = 'h';
// Stratified-sample summary (SMPL, wire format v5). Carries its own
// version byte so the sample layout can evolve without a new tag.
inline constexpr std::uint8_t kTagSample = 'S';
// Query-scope wrapper (multi-query serving, wire format v6): the subscriber
// query ids of the summary's family plus an opaque inner block. Single-query
// runs never emit it, so their wire bytes are unchanged from v5.
inline constexpr std::uint8_t kTagQueryScope = 'Q';

/// Layout version inside a kTagSample sub-block.
inline constexpr std::uint8_t kSampleSummaryVersion = 1;

/// Appends a DFT coefficient-delta sub-block for one stream side.
void encode_dft(common::BufferWriter& out, stream::StreamSide side,
                std::uint32_t window, std::uint32_t retained,
                std::span<const dsp::CoeffDelta> deltas);

/// Appends a quantized DFT coefficient-delta sub-block: per-block f64
/// scale, u16 indices, int8/int16 component mantissas. `bits` must be 8 or
/// 16 (callers pick it via dsp::choose_quant_bits) and every delta index
/// must fit a u16; encode_dft is the fallback when either fails.
void encode_dft_quant(common::BufferWriter& out, stream::StreamSide side,
                      std::uint32_t window, std::uint32_t retained,
                      std::span<const dsp::CoeffDelta> deltas, unsigned bits,
                      double scale);

/// Appends a Bloom snapshot sub-block for one stream side.
void encode_bloom(common::BufferWriter& out, stream::StreamSide side,
                  const sketch::BloomFilter& snapshot);

/// Appends an AGMS sketch sub-block (counters as i32 on the wire, matching
/// the prototype-era budget arithmetic).
void encode_sketch(common::BufferWriter& out, stream::StreamSide side,
                   const sketch::AgmsSketch& sketch);

/// Appends a histogram-spectrum sub-block (ablation A3's summary).
void encode_hist_spectrum(common::BufferWriter& out, stream::StreamSide side,
                          std::uint32_t buckets,
                          std::span<const dsp::Complex> coeffs);

/// Quantized histogram-spectrum sub-block (dense: no indices, mantissa
/// pairs in coefficient order). `bits` must be 8 or 16.
void encode_hist_spectrum_quant(common::BufferWriter& out,
                                stream::StreamSide side, std::uint32_t buckets,
                                std::span<const dsp::Complex> coeffs,
                                unsigned bits, double scale);

/// Appends a stratified-sample sub-block for one stream side: the sampling
/// geometry plus per-key Horvitz–Thompson (weight, variance) masses in
/// strictly ascending key order (the decoder rejects anything else). At
/// most 65535 keys per sub-block (u16 count).
void encode_sample(common::BufferWriter& out, stream::StreamSide side,
                   const sampling::SampleSummary& summary);

/// Appends a query-scope wrapper around an already encoded block: the
/// strictly ascending subscriber query ids (at most kMaxQueries) followed by
/// the inner bytes. The inner block must itself be a valid sub-block
/// sequence; wrappers do not nest.
void encode_query_scope(common::BufferWriter& out,
                        std::span<const std::uint32_t> query_ids,
                        std::span<const std::uint8_t> inner);

/// Callbacks invoked per decoded sub-block.
struct Visitor {
  std::function<void(stream::StreamSide, std::uint32_t window,
                     std::uint32_t retained,
                     const std::vector<dsp::CoeffDelta>&)>
      on_dft;
  std::function<void(stream::StreamSide, sketch::BloomFilter)> on_bloom;
  std::function<void(stream::StreamSide, sketch::AgmsSketch)> on_sketch;
  std::function<void(stream::StreamSide, std::uint32_t buckets,
                     std::vector<dsp::Complex>)>
      on_hist_spectrum;
  std::function<void(stream::StreamSide, sampling::SampleSummary)> on_sample;
  std::function<void(const std::vector<std::uint32_t>& query_ids,
                     SummaryBlock inner)>
      on_query_scope;
};

/// Decodes every sub-block in `block`; unknown tags abort with kDataLoss.
common::Status decode_blocks(const SummaryBlock& block, const Visitor& visitor);

}  // namespace summary_codec

/// Remote DFT coefficients for one (peer, side), with a lazily rebuilt
/// reconstruction cache: the rounded inverse DFT as a key -> count multiset.
class CoeffStore {
 public:
  CoeffStore(std::uint32_t window, std::uint32_t retained);

  /// Applies one batch of coefficient updates and invalidates the cache.
  void apply(const std::vector<dsp::CoeffDelta>& deltas);

  std::span<const dsp::Complex> coefficients() const noexcept {
    return spectrum_.coeffs;
  }
  std::uint32_t window() const noexcept { return spectrum_.window; }
  /// Total updates applied (freshness diagnostic).
  std::uint64_t updates_applied() const noexcept { return updates_; }

  /// Estimated number of window values within [key - tolerance,
  /// key + tolerance] in the reconstructed remote window. Rebuilds the
  /// reconstruction cache if coefficients changed since the last call.
  std::uint64_t estimate_count(std::int64_t key, std::int64_t tolerance);

  /// True if any summary has ever been applied.
  bool seeded() const noexcept { return updates_ > 0; }

 private:
  void rebuild();

  dsp::CompressedSpectrum spectrum_;
  std::unordered_map<std::int64_t, std::uint32_t> counts_;
  bool dirty_ = true;
  std::uint64_t updates_ = 0;
};

/// Latest remote Bloom snapshot per (peer, side).
class BloomStore {
 public:
  void update(sketch::BloomFilter snapshot) { snapshot_ = std::move(snapshot); }
  bool seeded() const noexcept { return snapshot_.has_value(); }
  /// Membership with integer tolerance: true if any key in
  /// [key - tolerance, key + tolerance] hits the filter.
  bool contains(std::int64_t key, std::int64_t tolerance) const;

 private:
  std::optional<sketch::BloomFilter> snapshot_;
};

/// Latest remote AGMS sketch per (peer, side).
class SketchStore {
 public:
  void update(sketch::AgmsSketch sketch) { sketch_ = std::move(sketch); }
  bool seeded() const noexcept { return sketch_.has_value(); }
  const sketch::AgmsSketch* sketch() const noexcept {
    return sketch_ ? &*sketch_ : nullptr;
  }

 private:
  std::optional<sketch::AgmsSketch> sketch_;
};

/// Latest remote stratified-sample summary per (peer, side).
class SampleStore {
 public:
  void update(sampling::SampleSummary summary) {
    summary_ = std::move(summary);
  }
  bool seeded() const noexcept { return summary_.has_value(); }
  const sampling::SampleSummary* summary() const noexcept {
    return summary_ ? &*summary_ : nullptr;
  }

 private:
  std::optional<sampling::SampleSummary> summary_;
};

}  // namespace dsjoin::core
