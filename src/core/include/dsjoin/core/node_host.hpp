// NodeHost: the per-node lifecycle every backend shares.
//
// A Node knows how to process tuples and frames; a *backend* knows how to
// move frames and when arrivals happen. Everything in between — feeding
// arrivals into the node, dispatching incoming frames, the two-phase FIN
// drain that decides when a node's result set is complete, and assembling
// the node's final NodeReport — used to be re-implemented per driver.
// NodeHost owns that middle layer once; the simulator, the in-process TCP
// backend, and the node daemon differ only in the transport they plug in
// and the threads they call from.
//
// Drain protocol (two-phase FIN over the data plane, FrameKind::kControl):
// begin_drain() sends FIN-1 to every live peer. Receiving FIN-1 from a
// peer means — per-link FIFO — every tuple frame that peer sent us has
// been processed, and symmetrically our FIN-1 tells the peer all our
// tuples are in. A host holding FIN-1 from everyone has also *sent* every
// result frame it will ever send, so it then emits FIN-2; once FIN-2 is in
// from every live peer, every result frame addressed to us is in and the
// pair set is complete. A dead peer counts as implicitly FINished, and the
// wait_drain timeout proceeds with whatever arrived — partial coverage,
// never a hang. (The simulator does not use the FIN machinery: its event
// queue running dry is an exact, zero-cost statement of the same fact.)
//
// Threading contract: ingest(), deliver(), node() and report() touch the
// node and require external serialization by the caller (the simulator
// serializes per-node strands; socket backends hold their node mutex).
// note_peer_dead(), begin_drain(), wait_drain() and drain_complete() are
// internally synchronized and may race with deliveries; wait_drain() must
// be called *without* the caller's node lock or FIN frames can never be
// delivered. deliver() takes the FIN lock after the caller's node lock —
// never call back into the host from under the FIN lock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "dsjoin/common/thread_pool.hpp"
#include "dsjoin/core/experiment.hpp"
#include "dsjoin/core/metrics.hpp"
#include "dsjoin/core/node.hpp"

namespace dsjoin::core {

class NodeHost {
 public:
  /// Socket backends: the host owns one private MetricsCollector per
  /// registered query (this node's discoveries only; global dedup happens
  /// at aggregation). In multi-query mode with config.worker_threads >= 1
  /// the host also owns a ThreadPool and wires it into the node, sharding
  /// per-tuple query evaluation by summary family (results bit-identical
  /// for every worker count).
  NodeHost(const SystemConfig& config, net::NodeId id, net::Transport& transport);

  /// Simulator: all hosts share the system-wide collectors — one per
  /// registered query, in canonical order — which perform the global dedup
  /// and the epoch-buffered flush ordering in place.
  NodeHost(const SystemConfig& config, net::NodeId id, net::Transport& transport,
           std::span<MetricsCollector* const> shared_query_metrics);

  /// Single-collector convenience for the historical single-query
  /// simulator call shape.
  NodeHost(const SystemConfig& config, net::NodeId id, net::Transport& transport,
           MetricsCollector& shared_metrics);

  NodeHost(const NodeHost&) = delete;
  NodeHost& operator=(const NodeHost&) = delete;

  Node& node() noexcept { return *node_; }
  net::NodeId id() const noexcept { return id_; }

  /// Feeds one local arrival and advances the host's virtual clock to its
  /// timestamp.
  void ingest(const stream::Tuple& tuple, double now);

  /// Feeds a run of local arrivals in order with one call, each at its own
  /// timestamp — equivalent to ingest(t, t.timestamp) per tuple. The
  /// socket drivers use this to hand consecutive same-node slices of the
  /// materialized ArrivalSchedule to Node::on_local_batch, which probes
  /// the whole run against the partitioned window store in one batched
  /// pass (DESIGN.md §16.2) — bit-identical to per-tuple ingest.
  void ingest_batch(std::span<const stream::Tuple> tuples);

  /// Dispatches one incoming frame: FIN markers advance the drain state
  /// machine, everything else reaches the node at time `now`.
  void deliver(net::Frame&& frame, double now);

  /// Dispatch at the host's virtual clock (latest local arrival) — what a
  /// wall-clock backend uses, where forwarded work is timestamped with the
  /// tuple era it belongs to.
  void deliver(net::Frame&& frame) { deliver(std::move(frame), virtual_now_); }

  /// Dispatches every logical frame of one decoded wire record in order —
  /// the batch-delivery counterpart of deliver(frame). Same threading
  /// contract as deliver().
  void deliver_batch(std::vector<net::Frame>&& frames) {
    for (net::Frame& frame : frames) deliver(std::move(frame), virtual_now_);
  }

  /// Invoked (outside the FIN lock) when a peer is declared dead, before
  /// the drain stops waiting on it — the daemon points this at
  /// MeshTransport::mark_peer_dead so sends stop targeting the corpse.
  void set_peer_death_hook(std::function<void(net::NodeId)> hook) {
    peer_death_hook_ = std::move(hook);
  }

  /// Declares `peer` dead: runs the death hook and releases the drain from
  /// waiting on its FINs. Idempotent; callable from any thread.
  void note_peer_dead(net::NodeId peer);

  /// Starts the drain: marks `dead_peers` dead and sends FIN-1 to every
  /// live peer. Call once all local arrivals are ingested.
  void begin_drain(std::span<const net::NodeId> dead_peers);

  /// Blocks until the FIN handshake completes or `timeout_s` elapses.
  /// Returns whether the drain completed (false = partial results).
  bool wait_drain(double timeout_s);

  bool drain_complete() const;

  /// The node's final accounting. `traffic` is what this node sent — a
  /// backend with per-node links passes its snapshot; one with a shared
  /// transport passes {} and installs the union at aggregation instead.
  NodeReport report(net::TrafficCounters traffic) const;

  std::uint64_t arrivals_ingested() const noexcept { return arrivals_ingested_; }
  double virtual_now() const noexcept { return virtual_now_; }
  /// Distinct pairs across this host's collectors (heartbeat progress
  /// counter; queries are distinct joins, so the sum is the honest total).
  std::uint64_t pairs_discovered() const {
    std::uint64_t total = 0;
    for (const MetricsCollector* collector : metrics_) {
      total += collector->distinct_pairs();
    }
    return total;
  }

  /// FIN wire format, exposed for tests: an 8-byte magic + phase byte in a
  /// FrameKind::kControl payload (core::Node ignores kControl, so even a
  /// leaked FIN is harmless).
  static net::Frame make_fin(net::NodeId from, net::NodeId to,
                             std::uint8_t phase);
  static bool is_fin(const net::Frame& frame, std::uint8_t* phase);

  // --- Virtual-time summary watermarks (socket backends; DESIGN.md §12).
  //
  // The wall-clock backends cannot rely on transport latency to order
  // summary application, so each node announces how far its own virtual
  // clock (and therefore any future summary emission) has advanced, and a
  // driver about to ingest arrivals in visibility epoch k first waits until
  // every peer's announcement covers that epoch. Announcements are
  // quantized to the visibility grid so their count is a pure function of
  // the arrival schedule — identical across socket drivers, keeping
  // kControl frame counts comparable.

  /// Turns the watermark protocol on (summary-driven policies only; BASE
  /// and RR runs skip it entirely).
  void enable_summary_watermarks();

  /// Announces that every summary this node emits from now on has
  /// emit_time >= `own_watermark`: one threshold frame per newly covered
  /// grid point goes to every peer. Pass +infinity once the local arrival
  /// schedule is exhausted (sent once).
  void announce_summary_watermark(double own_watermark);

  /// Blocks until every live peer's announced watermark covers the
  /// visibility epoch containing `ts` — after which no summary that must
  /// apply before the epoch's end can still be in flight. Returns false on
  /// timeout or cancellation (the run degrades to counted late summaries,
  /// never a hang). Call WITHOUT the caller's node lock; `cancelled`, if
  /// set, is polled ~10x per second.
  bool await_summary_cover(double ts, double timeout_s,
                           const std::function<bool()>& cancelled = {});

  /// Watermark wire format, exposed for tests: 8-byte magic + f64 value in
  /// a FrameKind::kControl payload (distinct length from FIN frames).
  static net::Frame make_watermark(net::NodeId from, net::NodeId to,
                                   double value);
  static bool is_watermark(const net::Frame& frame, double* value);

 private:
  void handle_fin(net::NodeId peer, std::uint8_t phase);
  void handle_watermark(net::NodeId peer, double value);
  /// Sends FIN-2 once phase 1 completes; signals completion when phase 2
  /// does. Call with fin_mutex_ held.
  void advance_fin_locked();
  bool fin_phase_complete_locked(const std::vector<bool>& seen) const;
  void send_fin(std::uint8_t phase);

  net::NodeId id_;
  std::uint32_t nodes_;
  net::Transport* transport_;
  std::vector<std::unique_ptr<MetricsCollector>> owned_metrics_;  // empty when shared
  std::vector<MetricsCollector*> metrics_;  // one per query, canonical order
  std::unique_ptr<common::ThreadPool> worker_pool_;  // multi-query sockets only
  std::unique_ptr<Node> node_;

  double virtual_now_ = 0.0;  // latest local arrival timestamp
  std::uint64_t arrivals_ingested_ = 0;

  std::function<void(net::NodeId)> peer_death_hook_;

  // FIN / drain state (internally synchronized).
  mutable std::mutex fin_mutex_;
  std::condition_variable fin_cv_;
  std::vector<bool> fin1_seen_;
  std::vector<bool> fin2_seen_;
  std::vector<bool> peer_dead_;
  bool fin1_sent_ = false;
  bool fin2_sent_ = false;
  bool drain_complete_ = false;

  // Summary watermark state (internally synchronized; lock order is the
  // caller's node lock, then wm_mutex_ — never the reverse).
  mutable std::mutex wm_mutex_;
  std::condition_variable wm_cv_;
  bool wm_enabled_ = false;
  double wm_sync_epoch_s_;  // SystemConfig::summary_sync_epoch_s
  double wm_sync_lead_s_;   // wan.latency_min_s
  std::vector<double> wm_peer_;       // highest announcement per peer
  std::uint64_t wm_announced_k_ = 0;  // grid points already announced
  bool wm_final_sent_ = false;
};

}  // namespace dsjoin::core
