// Payload encodings for the core protocol.
//
// Three frame bodies ride on net::Frame:
//  * TuplePayload   — a forwarded tuple, optionally with a piggybacked
//                     summary block (Figure 7, line 5: coefficient updates
//                     ride on tuple messages);
//  * SummaryPayload — a standalone summary block (sent when a peer has not
//                     received a tuple for a while, or for policies whose
//                     summaries are periodic snapshots);
//  * ResultPayload  — join-result pairs shipped to the owning node
//                     ("matching tuples must still be transmitted").
//
// A summary block is opaque to the node: only the emitting policy reads it.
//
// Every payload carries a trailing 32-bit checksum; decoders verify it, so
// in-flight corruption is always detected (kDataLoss) rather than
// interpreted as a different tuple or coefficient.
#pragma once

#include <cstdint>
#include <vector>

#include "dsjoin/common/serialize.hpp"
#include "dsjoin/common/status.hpp"
#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::core {

/// An opaque, policy-defined summary block.
struct SummaryBlock {
  std::vector<std::uint8_t> bytes;

  bool empty() const noexcept { return bytes.empty(); }
  std::size_t size() const noexcept { return bytes.size(); }
};

/// Tuple frame body.
struct TuplePayload {
  stream::Tuple tuple;
  SummaryBlock piggyback;  ///< may be empty

  std::vector<std::uint8_t> encode() const;
  static common::Result<TuplePayload> decode(
      std::span<const std::uint8_t> bytes);
};

/// Standalone summary frame body.
struct SummaryPayload {
  SummaryBlock block;

  std::vector<std::uint8_t> encode() const;
  static common::Result<SummaryPayload> decode(
      std::span<const std::uint8_t> bytes);
};

/// Result-shipment frame body.
struct ResultPayload {
  std::vector<stream::ResultPair> pairs;

  std::vector<std::uint8_t> encode() const;
  static common::Result<ResultPayload> decode(
      std::span<const std::uint8_t> bytes);
};

/// 32-bit content checksum used by the payload codecs (exposed for tests).
std::uint32_t payload_checksum(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace dsjoin::core
