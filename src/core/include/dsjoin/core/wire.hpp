// Payload encodings for the core protocol.
//
// Three frame bodies ride on net::Frame:
//  * TuplePayload   — a forwarded tuple, optionally with a piggybacked
//                     summary block (Figure 7, line 5: coefficient updates
//                     ride on tuple messages);
//  * SummaryPayload — a standalone summary block (sent when a peer has not
//                     received a tuple for a while, or for policies whose
//                     summaries are periodic snapshots);
//  * ResultPayload  — join-result pairs shipped to the owning node
//                     ("matching tuples must still be transmitted").
//
// A summary block is opaque to the node: only the emitting policy reads it.
//
// Every summary exchange carries a SummaryStamp: the virtual time of the
// local tuple whose processing emitted it plus a per-link sequence number.
// Receivers buffer stamped summaries and apply them at the stamp's
// visibility boundary (SystemConfig::summary_visible_time), so routing
// state is a pure function of virtual time, never of transport latency.
// Tuple frames carry the stamp only when a piggyback block rides along —
// plain tuple traffic pays zero bytes for it.
//
// Every payload carries a trailing 32-bit checksum; decoders verify it, so
// in-flight corruption is always detected (kDataLoss) rather than
// interpreted as a different tuple or coefficient.
#pragma once

#include <cstdint>
#include <vector>

#include "dsjoin/common/serialize.hpp"
#include "dsjoin/common/status.hpp"
#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::core {

/// An opaque, policy-defined summary block.
struct SummaryBlock {
  std::vector<std::uint8_t> bytes;

  bool empty() const noexcept { return bytes.empty(); }
  std::size_t size() const noexcept { return bytes.size(); }
};

/// Version byte prefixed to every encoded SummaryStamp; decoders reject
/// stamps from a different stamp format outright.
inline constexpr std::uint8_t kSummaryStampVersion = 1;

/// Virtual-time stamp on a summary exchange.
struct SummaryStamp {
  /// Timestamp of the local tuple whose processing emitted the summary —
  /// backend-independent by construction. Must be finite and >= 0.
  double emit_time = 0.0;
  /// Emission counter per (sender -> receiver) link; orders same-boundary
  /// summaries from one peer canonically.
  std::uint32_t seq = 0;
};

/// Tuple frame body.
///
/// In multi-query mode (encode/decode with `with_query_ids` true, control
/// protocol v6) the frame additionally carries `query_mask`: bit k set means
/// the query at canonical index k in the sender's registered-query list
/// routed this tuple. Single-query traffic never pays the extra bytes and
/// stays byte-identical to the historical layout.
struct TuplePayload {
  stream::Tuple tuple;
  SummaryBlock piggyback;  ///< may be empty
  SummaryStamp stamp;      ///< on the wire only when piggyback is non-empty
  std::uint64_t query_mask = 0;  ///< on the wire only in multi-query mode

  std::vector<std::uint8_t> encode() const { return encode(false); }
  std::vector<std::uint8_t> encode(bool with_query_ids) const;
  static common::Result<TuplePayload> decode(
      std::span<const std::uint8_t> bytes, bool with_query_ids = false);
};

/// Standalone summary frame body.
struct SummaryPayload {
  SummaryBlock block;
  SummaryStamp stamp;

  std::vector<std::uint8_t> encode() const;
  static common::Result<SummaryPayload> decode(
      std::span<const std::uint8_t> bytes);
};

/// Result-shipment frame body. In multi-query mode each shipment belongs to
/// exactly one query (`query_id`), so the origin credits its controller for
/// that query only; single-query traffic omits the field.
struct ResultPayload {
  std::vector<stream::ResultPair> pairs;
  std::uint32_t query_id = 0;  ///< on the wire only in multi-query mode

  std::vector<std::uint8_t> encode() const { return encode(false); }
  std::vector<std::uint8_t> encode(bool with_query_ids) const;
  static common::Result<ResultPayload> decode(
      std::span<const std::uint8_t> bytes, bool with_query_ids = false);
};

/// 32-bit content checksum used by the payload codecs (exposed for tests).
std::uint32_t payload_checksum(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace dsjoin::core
