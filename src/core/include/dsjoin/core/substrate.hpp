// Shared summary substrate (multi-query serving, DESIGN.md §15).
//
// Before this layer existed, every routing policy privately owned the
// summary state it consulted: the sliding DFTs and coefficient stores, the
// counting-Bloom filters, the AGMS sketches, the histogram spectra, the
// stratified reservoirs. One query per run made that harmless. With N
// registered queries per node it would mean N copies of the same windows
// ingesting every tuple N times.
//
// SummarySubstrate lifts exactly that state out of the policies into one
// per-node object holding at most one *engine* per summary family
// (family_of(PolicyKind)). The node feeds each local tuple into the
// substrate once; every registered query's policy consults its family's
// engine read-mostly (the cached flow coefficients and join-size estimates
// are idempotent between summary applications, so query evaluation order
// cannot change them). Policies retain only routing state — their RNG
// stream, throttle, fallback and probability diagnostics — which is what
// makes per-query routing independent while the ingest-side maintenance
// cost stays per-family (bench_multiquery measures this amortization).
//
// The engine code is the former policy code moved verbatim: constructor
// seeds, epoch conditions and cache refresh logic are unchanged, so a
// single-query run is bit-identical to the pre-substrate pipeline.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "dsjoin/core/config.hpp"
#include "dsjoin/core/policy.hpp"
#include "dsjoin/core/summary_state.hpp"
#include "dsjoin/dsp/histogram_spectrum.hpp"
#include "dsjoin/dsp/sliding_dft.hpp"
#include "dsjoin/sampling/reservoir.hpp"
#include "dsjoin/sketch/agms.hpp"
#include "dsjoin/sketch/bloom.hpp"
#include "dsjoin/stream/window.hpp"

namespace dsjoin::core {

/// DFT/DFTT family engine: per-side sliding DFTs with robust clipping, the
/// published/synced coefficient bookkeeping, every peer's remote
/// coefficient store, and the cached flow coefficients rho (Eq. 4/5).
class DftSummaryEngine {
 public:
  DftSummaryEngine(const SystemConfig& config, net::NodeId self);

  void observe_local(const stream::Tuple& tuple);
  SummaryBlock piggyback_for(net::NodeId peer);
  std::vector<OutboundSummary> maintenance(double now);
  /// Applies one decoded coefficient-delta sub-block from `peer`.
  void apply_deltas(net::NodeId peer, stream::StreamSide side,
                    std::uint32_t window, std::uint32_t retained,
                    const std::vector<dsp::CoeffDelta>& deltas);

  // Routing-side queries. The caches they refresh are idempotent between
  // summary applications and epoch republishes, so concurrent queries of
  // the family read the same values regardless of evaluation order.
  double refreshed_rho(net::NodeId peer, std::size_t tuple_side);
  bool remote_seeded(net::NodeId peer, std::size_t remote_side) const {
    return peers_[peer].remote[remote_side].seeded();
  }
  std::uint64_t estimate_count(net::NodeId peer, std::size_t remote_side,
                               std::int64_t key, std::int64_t tolerance) {
    return peers_[peer].remote[remote_side].estimate_count(key, tolerance);
  }
  std::uint64_t local_tuples() const noexcept { return local_tuples_; }

 private:
  struct PeerState {
    std::array<CoeffStore, 2> remote;           // by remote side
    std::array<std::vector<dsp::Complex>, 2> synced;  // last coeffs sent, by local side
    std::array<double, 2> rho{0.0, 0.0};        // corr(local side s, remote opp(s))
    std::array<bool, 2> rho_dirty{true, true};
    std::uint64_t tuples_since_contact = 0;
  };

  /// Deltas (vs what `peer` has been sent) for one local side; at most
  /// `max_entries` (0 = unlimited), largest changes first.
  std::vector<dsp::CoeffDelta> deltas_for(net::NodeId peer, std::size_t side,
                                          std::size_t max_entries);
  /// Encodes both sides' pending deltas for a peer into one block.
  SummaryBlock block_for(net::NodeId peer, std::size_t max_entries_per_side);

  /// Robust value band for outlier clipping (median +/- 10 MAD, refreshed
  /// each epoch from a sample of recent raw keys).
  struct ClipBand {
    double lo = -1e300;
    double hi = 1e300;
  };
  void refresh_clip_band(std::size_t side);

  /// Pushes the side's buffered (already clipped) values into the DFT as
  /// one batch. Called before any read of local_[side]; see observe_local.
  void flush_pending(std::size_t side);

  SystemConfig config_;
  net::NodeId self_;
  std::array<dsp::SlidingDft, 2> local_;
  /// Clipped values observed since the last read of local_[side]. Routing
  /// never reads the local DFTs, so between summary refreshes the per-tuple
  /// pushes accumulate here and enter the DFT through the vectorized
  /// push_batch — with results identical to pushing each value at
  /// observation time, because nothing reads the coefficients in between.
  std::array<std::vector<double>, 2> pending_values_;
  std::array<ClipBand, 2> clip_;
  std::array<std::vector<double>, 2> recent_raw_;  // bounded sample buffer
  /// Epoch snapshot of the local coefficients — what peers are synced to.
  std::array<std::vector<dsp::Complex>, 2> published_;
  std::vector<PeerState> peers_;  // indexed by node id (self entry unused)
  std::uint64_t local_tuples_ = 0;
};

/// BLOOM engine: counting Bloom filters over the per-side summary windows
/// plus the latest remote snapshot per (peer, side).
class BloomSummaryEngine {
 public:
  BloomSummaryEngine(const SystemConfig& config, net::NodeId self);

  void observe_local(const stream::Tuple& tuple);
  std::vector<OutboundSummary> maintenance(double now);
  void apply_snapshot(net::NodeId peer, stream::StreamSide side,
                      sketch::BloomFilter filter);

  bool remote_seeded(net::NodeId peer, std::size_t remote_side) const {
    return peers_[peer].remote[remote_side].seeded();
  }
  bool remote_contains(net::NodeId peer, std::size_t remote_side,
                       std::int64_t key, std::int64_t tolerance) const {
    return peers_[peer].remote[remote_side].contains(key, tolerance);
  }

 private:
  struct PeerState {
    std::array<BloomStore, 2> remote;  // by remote side
  };

  /// Applies the side's buffered tuples to the window and counting filter
  /// as one batch (only read at snapshot time).
  void flush_pending(std::size_t side);

  SystemConfig config_;
  net::NodeId self_;
  std::array<sketch::CountingBloomFilter, 2> counting_;
  std::array<stream::CountWindow, 2> window_;
  std::array<std::vector<stream::Tuple>, 2> pending_;
  std::vector<stream::Tuple> evicted_scratch_;
  std::vector<std::uint64_t> key_scratch_;
  std::vector<std::int32_t> delta_scratch_;
  std::vector<PeerState> peers_;
  std::uint64_t local_tuples_ = 0;
  std::uint64_t last_broadcast_tuple_ = 0;
};

/// SKCH engine: AGMS sketches over the per-side summary windows, remote
/// sketches per (peer, side), and the cached pairwise join-size estimates.
class SketchSummaryEngine {
 public:
  SketchSummaryEngine(const SystemConfig& config, net::NodeId self);

  void observe_local(const stream::Tuple& tuple);
  std::vector<OutboundSummary> maintenance(double now);
  void apply_sketch(net::NodeId peer, stream::StreamSide side,
                    sketch::AgmsSketch sketch);

  bool remote_seeded(net::NodeId peer, std::size_t remote_side) const {
    return peers_[peer].remote[remote_side].seeded();
  }
  double refreshed_estimate(net::NodeId peer, std::size_t tuple_side);

 private:
  struct PeerState {
    std::array<SketchStore, 2> remote;
    std::array<double, 2> est{0.0, 0.0};  // join-size estimate by tuple side
    std::array<bool, 2> est_dirty{true, true};
  };

  void flush_pending(std::size_t side);

  SystemConfig config_;
  net::NodeId self_;
  std::array<sketch::AgmsSketch, 2> local_;
  std::array<stream::CountWindow, 2> window_;
  std::array<std::vector<stream::Tuple>, 2> pending_;
  std::vector<stream::Tuple> evicted_scratch_;
  std::vector<std::uint64_t> key_scratch_;
  std::vector<PeerState> peers_;
  std::uint64_t local_tuples_ = 0;
  std::uint64_t last_broadcast_tuple_ = 0;
};

/// SPEC engine: histogram-DFT spectra over the per-side summary windows,
/// remote coefficients per (peer, side), and cached Parseval estimates.
class SpectrumSummaryEngine {
 public:
  SpectrumSummaryEngine(const SystemConfig& config, net::NodeId self);

  void observe_local(const stream::Tuple& tuple);
  std::vector<OutboundSummary> maintenance(double now);
  void apply_spectrum(net::NodeId peer, stream::StreamSide side,
                      std::uint32_t buckets, std::vector<dsp::Complex> coeffs);

  bool remote_seeded(net::NodeId peer, std::size_t remote_side) const {
    return peers_[peer].seeded[remote_side];
  }
  double refreshed_estimate(net::NodeId peer, std::size_t tuple_side);

 private:
  struct PeerState {
    std::array<std::vector<dsp::Complex>, 2> remote;  // by remote side
    std::array<bool, 2> seeded{false, false};
    std::array<double, 2> est{0.0, 0.0};
    std::array<bool, 2> est_dirty{true, true};
  };

  SystemConfig config_;
  net::NodeId self_;
  std::uint32_t buckets_;
  std::array<dsp::HistogramSpectrum, 2> local_;
  std::array<stream::CountWindow, 2> window_;
  std::vector<PeerState> peers_;
  std::uint64_t local_tuples_ = 0;
  std::uint64_t last_broadcast_tuple_ = 0;
};

/// SMPL engine: stratified sliding-window reservoirs per side, the lazily
/// refreshed own-sample aggregates, and remote samples per (peer, side).
class SampleSummaryEngine {
 public:
  SampleSummaryEngine(const SystemConfig& config, net::NodeId self);

  void observe_local(const stream::Tuple& tuple);
  std::vector<OutboundSummary> maintenance(double now);
  void apply_sample(net::NodeId peer, stream::StreamSide side,
                    sampling::SampleSummary summary);

  /// Own sample aggregated for estimation, refreshed lazily per epoch.
  const sampling::SampleSummary& own_summary(std::size_t side);
  const sampling::SampleSummary* remote(net::NodeId peer,
                                        std::size_t remote_side) const {
    return peers_[peer].remote[remote_side].summary();
  }

 private:
  struct PeerState {
    std::array<SampleStore, 2> remote;  // by remote side
  };

  SystemConfig config_;
  net::NodeId self_;
  std::array<sampling::StratifiedReservoir, 2> reservoir_;
  std::array<sampling::SampleSummary, 2> own_;
  std::array<bool, 2> own_dirty_{true, true};
  std::vector<PeerState> peers_;
  std::uint64_t local_tuples_ = 0;
  std::uint64_t last_broadcast_tuple_ = 0;
};

/// The per-node summary substrate: at most one engine per family, shared
/// by every registered query of that family.
class SummarySubstrate {
 public:
  SummarySubstrate(const SystemConfig& config, net::NodeId self);

  // Lazy engine access: creates the family's engine on first use from the
  // base config (summary geometry is base-config by construction, so a
  // per-query config overlay never reaches an engine).
  DftSummaryEngine& coeff();
  BloomSummaryEngine& bloom();
  SketchSummaryEngine& sketch();
  SpectrumSummaryEngine& spectrum();
  SampleSummaryEngine& sample();

  /// Registers query `id` as a consumer of `family` (creates the engine;
  /// kNone registers nothing). The node calls this once per query.
  void subscribe(SummaryFamily family, std::uint32_t query_id);

  /// Lowest subscribed query id of a family, or 0 — the query a standalone
  /// summary frame's traffic is attributed to.
  std::uint32_t lowest_subscriber(SummaryFamily family) const;

  /// When on, outbound blocks are wrapped in a query-scope sub-block
  /// ('Q', wire format v6) carrying the family's subscriber ids.
  void set_multi_query(bool on) noexcept { multi_query_ = on; }

  /// True once any summary-bearing family is registered — what drivers
  /// consult to decide whether virtual-time summary synchronization
  /// (watermarks, visibility buffering) is needed at all.
  bool uses_summaries() const noexcept;

  // The ingest path the node calls ONCE per tuple / frame, regardless of
  // how many queries are registered.
  void observe_local(const stream::Tuple& tuple);
  SummaryBlock piggyback_for(net::NodeId peer);
  std::vector<OutboundSummary> maintenance(double now);
  void on_summary(net::NodeId from, const SummaryBlock& block);

  /// Engine observe_local calls performed so far — the ingest-side
  /// maintenance cost. Grows with registered *families*, not queries;
  /// bench_multiquery reports it to demonstrate the amortization.
  std::uint64_t ingest_ops() const noexcept { return ingest_ops_; }

 private:
  /// Decodes one (unwrapped) block and applies each sub-block to the
  /// owning engine. Sub-blocks of unregistered families are dropped.
  void dispatch(net::NodeId from, const SummaryBlock& block);
  /// Wraps `block` in a query-scope sub-block for `family`'s subscribers.
  SummaryBlock wrap(SummaryFamily family, SummaryBlock block) const;

  SystemConfig config_;
  net::NodeId self_;
  bool multi_query_ = false;
  std::unique_ptr<DftSummaryEngine> coeff_;
  std::unique_ptr<BloomSummaryEngine> bloom_;
  std::unique_ptr<SketchSummaryEngine> sketch_;
  std::unique_ptr<SpectrumSummaryEngine> spectrum_;
  std::unique_ptr<SampleSummaryEngine> sample_;
  std::array<std::vector<std::uint32_t>, kSummaryFamilies> subscribers_;
  std::uint64_t ingest_ops_ = 0;
};

}  // namespace dsjoin::core
