// Experiment metrics.
//
// MetricsCollector gathers the result pairs the distributed system reports
// (deduplicated globally — a pair may be discovered at both owners), so that
// epsilon (Eq. 1), messages per result tuple and throughput can be computed
// against the exact-join oracle.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dsjoin/net/frame.hpp"
#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::core {

/// Global (cross-node) result accounting.
///
/// Parallel epochs: the collector is shared by all nodes, so the parallel
/// driver opens an epoch around each worker phase; record_pair from a bound
/// worker thread is buffered per slot and end_epoch() applies the buffers
/// in slot order — the serial dispatch order — keeping the dedup set's
/// first-discoverer attribution bit-identical to a serial run.
class MetricsCollector {
 public:
  /// Records a discovered pair; duplicates (same r_id/s_id) count once.
  void record_pair(const stream::ResultPair& pair, net::NodeId discoverer,
                   double now);

  /// Opens an epoch with `slots` report buffers (one per deferred task).
  void begin_epoch(std::size_t slots);
  /// Binds the calling thread to `slot` for the current epoch — of this
  /// collector and of every collector sharing its epoch group.
  void bind_epoch_slot(std::size_t slot);
  /// Applies all buffered reports in slot order.
  void end_epoch();

  /// Joins an epoch group: collectors sharing a group tag buffer under one
  /// thread binding, so a driver with several collectors (one per query)
  /// opens their epochs together and binds slots through any one of them.
  /// Default group: the collector itself (single-collector drivers change
  /// nothing). Set before the first epoch.
  void set_epoch_group(const void* group) noexcept { epoch_group_ = group; }

  /// Distinct pairs reported by the system — |Psi-hat| of Eq. 1.
  std::uint64_t distinct_pairs() const noexcept { return reported_.size(); }

  /// Snapshot of every distinct pair recorded so far, sorted ascending by
  /// (r_id, s_id) — NOT the hash set's iteration order, so the snapshot
  /// (and anything serialized from it, like METRICS_REPORT) is identical
  /// across runs and across processes. This is the wire-metrics hook: a
  /// node daemon's local collector knows only the pairs *it* discovered,
  /// so it ships this snapshot to the coordinator, which feeds the pairs
  /// of all nodes through its own collector to perform the global dedup
  /// the one-process experiments get from sharing a single instance.
  std::vector<stream::ResultPair> pairs() const;

  /// Total (non-deduplicated) pair reports, for double-discovery diagnostics.
  std::uint64_t total_reports() const noexcept { return total_reports_; }

  /// Virtual time of the most recent report.
  double last_report_time() const noexcept { return last_report_time_; }

  /// Pairs first discovered by each node.
  const std::vector<std::uint64_t>& per_node_discoveries() const noexcept {
    return per_node_;
  }

  /// Sizes the per-node vector; call before the run starts.
  void set_node_count(std::size_t nodes) { per_node_.assign(nodes, 0); }

 private:
  struct PendingReport {
    stream::ResultPair pair;
    net::NodeId discoverer;
    double now;
  };

  std::unordered_set<stream::ResultPair, stream::ResultPairHash> reported_;
  const void* epoch_group_ = this;
  std::vector<std::uint64_t> per_node_;
  std::uint64_t total_reports_ = 0;
  double last_report_time_ = 0.0;
  bool epoch_open_ = false;
  std::vector<std::vector<PendingReport>> epoch_reports_;  // by slot
};

}  // namespace dsjoin::core
