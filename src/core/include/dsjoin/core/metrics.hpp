// Experiment metrics.
//
// MetricsCollector gathers the result pairs the distributed system reports
// (deduplicated globally — a pair may be discovered at both owners), so that
// epsilon (Eq. 1), messages per result tuple and throughput can be computed
// against the exact-join oracle.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dsjoin/net/frame.hpp"
#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::core {

/// Global (cross-node) result accounting.
class MetricsCollector {
 public:
  /// Records a discovered pair; duplicates (same r_id/s_id) count once.
  void record_pair(const stream::ResultPair& pair, net::NodeId discoverer,
                   double now);

  /// Distinct pairs reported by the system — |Psi-hat| of Eq. 1.
  std::uint64_t distinct_pairs() const noexcept { return reported_.size(); }

  /// Total (non-deduplicated) pair reports, for double-discovery diagnostics.
  std::uint64_t total_reports() const noexcept { return total_reports_; }

  /// Virtual time of the most recent report.
  double last_report_time() const noexcept { return last_report_time_; }

  /// Pairs first discovered by each node.
  const std::vector<std::uint64_t>& per_node_discoveries() const noexcept {
    return per_node_;
  }

  /// Sizes the per-node vector; call before the run starts.
  void set_node_count(std::size_t nodes) { per_node_.assign(nodes, 0); }

 private:
  std::unordered_set<stream::ResultPair, stream::ResultPairHash> reported_;
  std::vector<std::uint64_t> per_node_;
  std::uint64_t total_reports_ = 0;
  double last_report_time_ = 0.0;
};

}  // namespace dsjoin::core
