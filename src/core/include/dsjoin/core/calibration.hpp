// Epsilon calibration.
//
// Figures 9 and 11 of the paper compare algorithms at a *fixed* error rate
// (epsilon = 15%). The paper does not describe its controller; we calibrate
// offline: the per-node forwarding budget (the policy throttle, which maps
// to T_i = (N-1)^throttle) is bisected until the measured epsilon lands in
// the target band, then the operating point's traffic and throughput are
// reported. Epsilon is monotonically nonincreasing in the throttle, so
// bisection converges; residual simulation noise is absorbed by the band.
#pragma once

#include "dsjoin/core/config.hpp"
#include "dsjoin/core/system.hpp"

namespace dsjoin::core {

struct CalibrationResult {
  double throttle = 0.0;       ///< operating point found
  ExperimentResult result;     ///< full run at that operating point
  bool converged = false;      ///< measured epsilon within the band
  int runs = 0;                ///< experiments executed
};

/// Finds a throttle whose measured epsilon is within +/- `tolerance` of
/// `target_epsilon` (both in [0, 1]). BASE ignores the throttle and is
/// returned as-is after one run. If even throttle 1 / 0 cannot reach the
/// band (e.g. the policy's floor error exceeds the target), the closest
/// endpoint is returned with converged = false.
CalibrationResult calibrate_throttle(SystemConfig config, double target_epsilon,
                                     double tolerance = 0.015,
                                     int max_bisections = 6);

}  // namespace dsjoin::core
