#include "dsjoin/core/node.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "dsjoin/core/wire.hpp"

namespace dsjoin::core {

namespace {
stream::ResultPair make_pair(const stream::Tuple& tuple,
                             const stream::StoredTuple& match) {
  // ResultPair is (R id, S id) regardless of which member was processed.
  return tuple.side == stream::StreamSide::kR
             ? stream::ResultPair{tuple.id, match.id}
             : stream::ResultPair{match.id, tuple.id};
}
}  // namespace

Node::Node(const SystemConfig& config, net::NodeId self, net::Transport& transport,
           MetricsCollector& metrics)
    : config_(config), self_(self), transport_(transport), metrics_(metrics),
      policy_(RoutingPolicy::create(config, self)),
      audit_rng_(config.seed ^ (0xadd17000ULL + self)),
      throttle_(config.throttle),
      summary_frontier_(-std::numeric_limits<double>::infinity()),
      summary_seq_(config.nodes, 0) {}

void Node::join_and_report(const stream::Tuple& tuple,
                           const stream::TupleStore& store, double now,
                           std::vector<stream::ResultPair>* shipped,
                           std::map<net::NodeId, std::vector<stream::ResultPair>>*
                               by_origin) {
  store.for_each_match(
      tuple.key, tuple.timestamp, config_.join_half_width_s,
      [&](const stream::StoredTuple& match) {
        const auto pair = make_pair(tuple, match);
        metrics_.record_pair(pair, self_, now);
        if (shipped != nullptr) shipped->push_back(pair);
        if (by_origin != nullptr && match.origin != self_) {
          (*by_origin)[match.origin].push_back(pair);
        }
      });
}

void Node::on_local_tuple(const stream::Tuple& tuple, double now) {
  // Summary state advances on the local virtual clock, never on frame
  // arrival: everything visible by `now` must inform this tuple's routing.
  apply_due_summaries(now);
  ++local_tuples_;
  const auto side = static_cast<std::size_t>(tuple.side);
  const auto opposite = 1 - side;

  // Local-local pairs need no network at all. Local-received pairs were
  // made possible by a peer's earlier forward; the complete result is
  // shipped back to that peer (it owns the matched tuple), which also
  // closes the feedback loop the online controller relies on.
  join_and_report(tuple, local_[opposite], now, nullptr, nullptr);
  std::map<net::NodeId, std::vector<stream::ResultPair>> by_origin;
  join_and_report(tuple, received_[opposite], now, nullptr, &by_origin);
  local_[side].insert(tuple);
  for (auto& [origin, pairs] : by_origin) {
    ResultPayload results;
    results.pairs = std::move(pairs);
    net::Frame out;
    out.from = self_;
    out.to = origin;
    out.kind = net::FrameKind::kResult;
    out.payload = results.encode();
    (void)transport_.send(std::move(out));
  }

  policy_->observe_local(tuple);

  // Online controller: a small audit sample is broadcast to every peer; the
  // remote-match rate of audited tuples estimates the true match rate, and
  // comparing it with the policy-routed tuples' rate yields epsilon online.
  const bool controller_on = config_.online_target_eps >= 0.0;
  const bool audited =
      controller_on && audit_rng_.next_bool(config_.audit_probability);
  std::vector<net::NodeId> destinations;
  if (audited) {
    destinations.reserve(config_.nodes - 1);
    for (net::NodeId j = 0; j < config_.nodes; ++j) {
      if (j != self_) destinations.push_back(j);
    }
  } else {
    destinations = policy_->route(tuple);
  }
  if (controller_on) track_sent(tuple.id, audited);

  for (const net::NodeId dest : destinations) {
    TuplePayload payload;
    payload.tuple = tuple;
    payload.piggyback = policy_->piggyback_for(dest);
    if (!payload.piggyback.empty()) {
      payload.stamp.emit_time = now;
      payload.stamp.seq = summary_seq_[dest]++;
    }
    net::Frame frame;
    frame.from = self_;
    frame.to = dest;
    frame.kind = net::FrameKind::kTuple;
    frame.piggyback_bytes = static_cast<std::uint32_t>(payload.piggyback.size());
    frame.payload = payload.encode();
    (void)transport_.send(std::move(frame));
  }

  for (auto& summary : policy_->maintenance(now)) {
    send_summary(summary.peer, std::move(summary.block), now);
  }

  if (controller_on && local_tuples_ % config_.controller_interval_tuples == 0) {
    run_controller();
  }
  if (local_tuples_ % 128 == 0) evict(now);
}

void Node::on_local_batch(std::span<const LocalArrival> arrivals,
                          const std::function<void(std::size_t)>& bind_slot) {
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (bind_slot) bind_slot(i);
    on_local_tuple(arrivals[i].tuple, arrivals[i].when);
  }
}

void Node::on_local_batch(std::span<const stream::Tuple> tuples) {
  for (const stream::Tuple& tuple : tuples) {
    on_local_tuple(tuple, tuple.timestamp);
  }
}

void Node::on_frame(net::Frame&& frame, double now) {
  switch (frame.kind) {
    case net::FrameKind::kTuple: {
      auto payload = TuplePayload::decode(frame.payload);
      if (!payload) {
        ++decode_failures_;
        return;
      }
      const stream::Tuple& tuple = payload.value().tuple;
      if (!payload.value().piggyback.empty() && !external_summary_feed_) {
        queue_summary(frame.from, payload.value().stamp,
                      std::move(payload.value().piggyback));
      }
      ++received_tuples_;
      const auto side = static_cast<std::size_t>(tuple.side);
      const auto opposite = 1 - side;

      // Forwarded tuples join against this node's *local* segment only
      // (the R_i x S_j decomposition of Section 2); discovered pairs are
      // shipped back to the tuple's origin.
      std::vector<stream::ResultPair> shipped;
      join_and_report(tuple, local_[opposite], now, &shipped, nullptr);
      received_[side].insert(tuple);

      // Controller feedback, reverse path: our local tuples covered because
      // the *partner* was forwarded here. Without this credit the online
      // epsilon estimate would ignore half of the coverage and overshoot.
      if (config_.online_target_eps >= 0.0 && !shipped.empty()) {
        absorb_result_feedback(shipped);
      }

      if (!shipped.empty() && tuple.origin != self_) {
        ResultPayload results;
        results.pairs = std::move(shipped);
        net::Frame out;
        out.from = self_;
        out.to = tuple.origin;
        out.kind = net::FrameKind::kResult;
        out.payload = results.encode();
        (void)transport_.send(std::move(out));
      }
      break;
    }
    case net::FrameKind::kSummary: {
      auto payload = SummaryPayload::decode(frame.payload);
      if (!payload) {
        ++decode_failures_;
        return;
      }
      if (!external_summary_feed_) {
        queue_summary(frame.from, payload.value().stamp,
                      std::move(payload.value().block));
      }
      break;
    }
    case net::FrameKind::kResult: {
      // Pairs were recorded by the discovering node; the shipment feeds the
      // online controller's match-rate estimates.
      if (config_.online_target_eps >= 0.0) {
        auto payload = ResultPayload::decode(frame.payload);
        if (!payload) {
          ++decode_failures_;
          return;
        }
        absorb_result_feedback(payload.value().pairs);
      }
      break;
    }
    case net::FrameKind::kControl:
      break;
  }
}

void Node::evict(double now) {
  const double horizon =
      now - 2.0 * config_.join_half_width_s - config_.retention_margin_s;
  for (auto& store : local_) store.evict_before(horizon);
  for (auto& store : received_) store.evict_before(horizon);
}

void Node::track_sent(std::uint64_t id, bool audited) {
  sent_class_.emplace(id, audited);
  sent_order_.push_back(id);
  (audited ? audit_sent_ : regular_sent_) += 1;
  // Bound the attribution window; feedback for evicted ids is ignored.
  constexpr std::size_t kCap = 8192;
  while (sent_order_.size() > kCap) {
    sent_class_.erase(sent_order_.front());
    sent_order_.pop_front();
  }
}

void Node::absorb_result_feedback(const std::vector<stream::ResultPair>& pairs) {
  for (const auto& pair : pairs) {
    // One of the two ids is ours; the discovering node keyed the shipment
    // to the tuple it processed, and the reverse-path credit passes pairs
    // whose local member is ours.
    auto it = sent_class_.find(pair.r_id);
    if (it == sent_class_.end()) it = sent_class_.find(pair.s_id);
    if (it == sent_class_.end()) continue;
    const std::uint64_t pair_hash = stream::ResultPairHash{}(pair);
    if (!credited_pairs_.insert(pair_hash).second) continue;  // already seen
    credited_order_.push_back(pair_hash);
    constexpr std::size_t kCap = 1 << 15;
    while (credited_order_.size() > kCap) {
      credited_pairs_.erase(credited_order_.front());
      credited_order_.pop_front();
    }
    (it->second ? audit_matches_ : regular_matches_) += 1.0;
  }
}

void Node::run_controller() {
  if (audit_sent_ < 8 || audit_matches_ <= 0.0 || regular_sent_ == 0) {
    return;  // not enough audit evidence yet
  }
  const double audit_rate =
      audit_matches_ / static_cast<double>(audit_sent_);
  const double regular_rate =
      regular_matches_ / static_cast<double>(regular_sent_);
  const double sample = std::clamp(1.0 - regular_rate / audit_rate, 0.0, 1.0);
  eps_estimate_ = eps_estimate_ < 0.0
                      ? sample
                      : 0.7 * eps_estimate_ + 0.3 * sample;
  // Proportional control on the forwarding budget knob: too many misses ->
  // open the throttle; overshooting the accuracy target -> save messages.
  throttle_ = std::clamp(
      throttle_ + config_.controller_gain * (eps_estimate_ - config_.online_target_eps),
      0.0, 1.0);
  policy_->set_throttle(throttle_);
  // Decay the window so the estimate tracks the current operating point
  // without discarding too much evidence at once.
  audit_sent_ = static_cast<std::uint64_t>(0.7 * static_cast<double>(audit_sent_));
  regular_sent_ =
      static_cast<std::uint64_t>(0.7 * static_cast<double>(regular_sent_));
  audit_matches_ *= 0.7;
  regular_matches_ *= 0.7;
}

void Node::queue_summary(net::NodeId from, const SummaryStamp& stamp,
                         SummaryBlock block) {
  const double visible = config_.summary_visible_time(stamp.emit_time);
  if (visible <= summary_frontier_) {
    // The boundary already passed on the local clock — exact application
    // order is unrecoverable. Apply now, flag the run.
    ++late_summaries_;
    policy_->on_summary(from, block);
    return;
  }
  pending_summaries_.push_back(
      PendingSummary{visible, stamp.seq, from, std::move(block)});
}

void Node::apply_due_summaries(double now) {
  if (now > summary_frontier_) summary_frontier_ = now;
  if (pending_summaries_.empty()) return;
  const auto due = std::partition(
      pending_summaries_.begin(), pending_summaries_.end(),
      [&](const PendingSummary& p) { return p.visible > summary_frontier_; });
  if (due == pending_summaries_.end()) return;
  // (visible, sender, seq) is a strict total order over pending entries, so
  // the application sequence is independent of arrival interleaving.
  std::sort(due, pending_summaries_.end(),
            [](const PendingSummary& a, const PendingSummary& b) {
              if (a.visible != b.visible) return a.visible < b.visible;
              if (a.from != b.from) return a.from < b.from;
              return a.seq < b.seq;
            });
  for (auto it = due; it != pending_summaries_.end(); ++it) {
    policy_->on_summary(it->from, it->block);
  }
  pending_summaries_.erase(due, pending_summaries_.end());
}

void Node::send_summary(net::NodeId peer, SummaryBlock block, double now) {
  SummaryPayload payload;
  payload.block = std::move(block);
  payload.stamp.emit_time = now;
  payload.stamp.seq = summary_seq_[peer]++;
  net::Frame frame;
  frame.from = self_;
  frame.to = peer;
  frame.kind = net::FrameKind::kSummary;
  frame.payload = payload.encode();
  (void)transport_.send(std::move(frame));
}

}  // namespace dsjoin::core
