#include "dsjoin/core/node.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <limits>

#include "dsjoin/core/wire.hpp"

namespace dsjoin::core {

namespace {
stream::ResultPair make_pair(const stream::Tuple& tuple,
                             const stream::StoredTuple& match) {
  // ResultPair is (R id, S id) regardless of which member was processed.
  return tuple.side == stream::StreamSide::kR
             ? stream::ResultPair{tuple.id, match.id}
             : stream::ResultPair{match.id, tuple.id};
}
}  // namespace

Node::QueryRuntime::QueryRuntime(const SystemConfig& base,
                                 const QuerySpec& query_spec, net::NodeId self,
                                 SummarySubstrate& substrate,
                                 MetricsCollector* collector)
    : spec(query_spec), config(query_config(base, query_spec)),
      policy(RoutingPolicy::create(config, self, substrate)),
      metrics(collector),
      // Same stream for every query (and identical to the single-query
      // engine's): queries draw independently, so N copies of one query
      // audit — and thus route — exactly like N independent baseline runs.
      audit_rng(base.seed ^ (0xadd17000ULL + self)),
      throttle(query_spec.throttle) {
  substrate.subscribe(family_of(query_spec.policy), query_spec.id);
}

Node::Node(const SystemConfig& config, net::NodeId self,
           net::Transport& transport,
           std::span<MetricsCollector* const> query_metrics)
    : config_(config), self_(self), transport_(transport),
      substrate_(config, self),
      max_half_width_(max_join_half_width(config)),
      summary_frontier_(-std::numeric_limits<double>::infinity()),
      summary_seq_(config.nodes, 0) {
  const auto specs = effective_queries(config);
  assert(query_metrics.size() == specs.size() &&
         "one MetricsCollector per registered query");
  multi_query_ = specs.size() > 1;
  substrate_.set_multi_query(multi_query_);
  queries_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    queries_.emplace_back(config, specs[i], self, substrate_,
                          query_metrics[i]);
  }
  // Shard plan: queries of one summary family share an engine, so they
  // serialize in one shard; BASE/RR queries share nothing and shard alone.
  std::array<int, kSummaryFamilies> family_shard;
  family_shard.fill(-1);
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    const auto family = family_of(queries_[i].spec.policy);
    if (family == SummaryFamily::kNone) {
      shards_.push_back({i});
      continue;
    }
    auto& slot = family_shard[static_cast<std::size_t>(family)];
    if (slot < 0) {
      slot = static_cast<int>(shards_.size());
      shards_.push_back({});
    }
    shards_[static_cast<std::size_t>(slot)].push_back(i);
  }
  eval_scratch_.resize(queries_.size());
  for (auto& eval : eval_scratch_) eval.origin_pairs.resize(config_.nodes);

  // Probe groups: queries with the same half-width scan the shared local
  // windows once per tuple (exact double equality — query_config overlays
  // the same literal, so equal specs compare equal).
  group_of_query_.resize(queries_.size());
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    const double hw = queries_[i].config.join_half_width_s;
    std::size_t g = 0;
    while (g < probe_groups_.size() && probe_groups_[g].half_width != hw) ++g;
    if (g == probe_groups_.size()) probe_groups_.push_back(ProbeGroup{hw, {}});
    probe_groups_[g].queries.push_back(i);
    group_of_query_[i] = g;
  }
  group_matches_.resize(probe_groups_.size());
  group_collected_.resize(probe_groups_.size(), false);
  batch_groups_.resize(probe_groups_.size());
}

Node::Node(const SystemConfig& config, net::NodeId self,
           net::Transport& transport, MetricsCollector& metrics)
    : Node(config, self, transport,
           std::array<MetricsCollector* const, 1>{&metrics}) {}

void Node::evaluate_routing(QueryRuntime& query, const stream::Tuple& tuple,
                            QueryEval& eval) {
  // Online controller: a small audit sample is broadcast to every peer; the
  // remote-match rate of audited tuples estimates the true match rate, and
  // comparing it with the policy-routed tuples' rate yields epsilon online.
  const bool controller_on = config_.online_target_eps >= 0.0;
  eval.audited =
      controller_on && query.audit_rng.next_bool(config_.audit_probability);
  if (eval.audited) {
    eval.destinations.reserve(config_.nodes - 1);
    for (net::NodeId j = 0; j < config_.nodes; ++j) {
      if (j != self_) eval.destinations.push_back(j);
    }
  } else {
    eval.destinations = query.policy->route(tuple);
  }
  if (controller_on) track_sent(query, tuple.id, eval.audited);
}

void Node::for_each_query_sharded(
    const std::function<void(std::size_t)>& task) {
  if (!multi_query_ || pool_ == nullptr || shards_.size() <= 1) {
    for (std::size_t i = 0; i < queries_.size(); ++i) task(i);
    return;
  }
  // One pool task per shard; within a shard queries run in index order.
  // Every shard touches only its own queries' state plus its family's
  // engine, and engine cache refreshes are idempotent, so the interleaving
  // of shards cannot change any result.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    tasks.push_back([&task, &shard] {
      for (const std::size_t index : shard) task(index);
    });
  }
  pool_->run_batch(tasks);
}

void Node::send_result_frame(QueryRuntime& query, net::NodeId origin,
                             std::span<const stream::ResultPair> pairs) {
  ResultPayload results;
  // The copy into the payload is the result path's one unavoidable
  // allocation (the frame owns its bytes); the callers' scratch keeps its
  // capacity.
  results.pairs.assign(pairs.begin(), pairs.end());
  results.query_id = query.spec.id;
  net::Frame out;
  out.from = self_;
  out.to = origin;
  out.kind = net::FrameKind::kResult;
  out.payload = results.encode(multi_query_);
  (void)transport_.send(std::move(out));
  ++query.result_frames;
}

void Node::on_local_tuple(const stream::Tuple& tuple, double now) {
  local_tuple_impl(tuple, now, {}, 0);
}

void Node::local_tuple_impl(const stream::Tuple& tuple, double now,
                            std::span<const LocalArrival> batch,
                            std::size_t batch_index) {
  // Summary state advances on the local virtual clock, never on frame
  // arrival: everything visible by `now` must inform this tuple's routing.
  apply_due_summaries(now);
  ++local_tuples_;
  const auto side = static_cast<std::size_t>(tuple.side);
  const auto opposite = 1 - side;

  // Shared ingest: the substrate sees each tuple exactly once, no matter
  // how many queries are registered. (Engines are never read by the joins
  // below, so feeding them before the joins is unobservable.)
  substrate_.observe_local(tuple);

  // Shared local-window probe: one scan per distinct half-width, consumed
  // by every query of that group (probe sharing, DESIGN.md §16). Built
  // serially here, read-only inside the shards, so results are identical
  // for every worker count. In batch mode the store scan already ran
  // against the pre-batch windows (prepare_batch_probes); the in-batch
  // predecessors that landed in the opposite window are appended in
  // insertion order — together exactly what a direct probe at this point
  // in the serial schedule returns.
  for (std::size_t g = 0; g < probe_groups_.size(); ++g) {
    auto& matches = group_matches_[g];
    matches.clear();
    const double half_width = probe_groups_[g].half_width;
    if (batch.empty()) {
      local_[opposite].collect_matches(tuple.key, tuple.timestamp, half_width,
                                       matches);
    } else {
      const auto& pre = batch_groups_[g];
      matches.insert(matches.end(), pre.pool.begin() + pre.begin[batch_index],
                     pre.pool.begin() + pre.end[batch_index]);
      const double lo = tuple.timestamp - half_width;
      std::size_t j = batch_index;
      while (j > 0 && batch[j - 1].tuple.timestamp >= lo) --j;
      for (; j < batch_index; ++j) {
        const stream::Tuple& prior = batch[j].tuple;
        if (static_cast<std::size_t>(prior.side) == opposite &&
            prior.key == tuple.key) {
          matches.push_back(
              stream::StoredTuple{prior.id, prior.timestamp, prior.origin});
        }
      }
    }
  }

  // Per-query evaluation: the local joins under the query's window and the
  // query's routing decision. Thread-confined per shard; all cross-query
  // effects (inserts, frames) are applied afterwards in canonical order.
  //
  // Local-local pairs need no network at all. Local-received pairs were
  // made possible by a peer's earlier forward; the complete result is
  // shipped back to that peer (it owns the matched tuple), which also
  // closes the feedback loop the online controller relies on.
  const bool controller_on = config_.online_target_eps >= 0.0;
  for_each_query_sharded([&](std::size_t i) {
    QueryRuntime& query = queries_[i];
    QueryEval& eval = eval_scratch_[i];
    eval.audited = false;
    eval.destinations.clear();
    for (auto& pairs : eval.origin_pairs) pairs.clear();
    for (const auto& match : group_matches_[group_of_query_[i]]) {
      query.metrics->record_pair(make_pair(tuple, match), self_, now);
    }
    eval.matches.clear();
    query.received[opposite].collect_matches(tuple.key, tuple.timestamp,
                                             query.config.join_half_width_s,
                                             eval.matches);
    for (const auto& match : eval.matches) {
      const auto pair = make_pair(tuple, match);
      query.metrics->record_pair(pair, self_, now);
      if (match.origin != self_) eval.origin_pairs[match.origin].push_back(pair);
    }
    evaluate_routing(query, tuple, eval);
  });

  local_[side].insert(tuple);

  for (auto& query : queries_) {
    auto& origin_pairs = eval_scratch_[&query - queries_.data()].origin_pairs;
    for (net::NodeId origin = 0; origin < config_.nodes; ++origin) {
      if (!origin_pairs[origin].empty()) {
        send_result_frame(query, origin, origin_pairs[origin]);
      }
    }
  }

  // Destination union in canonical query order; each tuple frame carries
  // the mask of queries that routed it and is attributed to the lowest.
  std::vector<net::NodeId> destinations;
  std::vector<std::uint64_t> masks;
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    for (const net::NodeId dest : eval_scratch_[i].destinations) {
      const auto it = std::find(destinations.begin(), destinations.end(), dest);
      if (it == destinations.end()) {
        destinations.push_back(dest);
        masks.push_back(std::uint64_t{1} << i);
      } else {
        masks[static_cast<std::size_t>(it - destinations.begin())] |=
            std::uint64_t{1} << i;
      }
    }
  }

  for (std::size_t d = 0; d < destinations.size(); ++d) {
    const net::NodeId dest = destinations[d];
    TuplePayload payload;
    payload.tuple = tuple;
    payload.query_mask = masks[d];
    payload.piggyback = substrate_.piggyback_for(dest);
    if (!payload.piggyback.empty()) {
      payload.stamp.emit_time = now;
      payload.stamp.seq = summary_seq_[dest]++;
    }
    net::Frame frame;
    frame.from = self_;
    frame.to = dest;
    frame.kind = net::FrameKind::kTuple;
    frame.piggyback_bytes = static_cast<std::uint32_t>(payload.piggyback.size());
    frame.payload = payload.encode(multi_query_);
    (void)transport_.send(std::move(frame));
    ++queries_[static_cast<std::size_t>(std::countr_zero(masks[d]))]
          .forwarded_tuples;
  }

  for (auto& summary : substrate_.maintenance(now)) {
    // Standalone summary frames belong to the emitting family's lowest
    // subscriber (per-query counts must sum to the node totals).
    const std::uint32_t owner_id = substrate_.lowest_subscriber(summary.family);
    for (auto& query : queries_) {
      if (query.spec.id == owner_id) {
        ++query.summary_frames;
        break;
      }
    }
    send_summary(summary.peer, std::move(summary.block), now);
  }

  if (controller_on && local_tuples_ % config_.controller_interval_tuples == 0) {
    for (auto& query : queries_) run_controller(query);
  }
  if (local_tuples_ % 128 == 0) evict(now);
}

bool Node::prepare_batch_probes(std::span<const LocalArrival> arrivals) {
  if (arrivals.size() < 2) return false;
  // Eligibility: probes are pre-collected against the pre-batch windows.
  // That equals the serial schedule only when event time is tuple time and
  // never goes backwards — then for every m <= i the eviction horizon at
  // step m stays below arrival i's probe window (horizon_m = ts_m -
  // 2*hw_max - margin <= ts_i - hw for every registered hw), so the tuples
  // a mid-batch evict drops could not have matched any later in-batch
  // probe, and the in-batch contribution is exactly the predecessor
  // correction local_tuple_impl appends.
  double prev = -std::numeric_limits<double>::infinity();
  for (const LocalArrival& arrival : arrivals) {
    if (arrival.when != arrival.tuple.timestamp ||
        arrival.tuple.timestamp < prev) {
      return false;
    }
    prev = arrival.tuple.timestamp;
  }

  for (auto& probes : side_probes_) probes.clear();
  for (auto& indices : side_arrival_) indices.clear();
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto side = static_cast<std::size_t>(arrivals[i].tuple.side);
    side_probes_[side].push_back(arrivals[i].tuple);
    side_arrival_[side].push_back(static_cast<std::uint32_t>(i));
  }

  for (std::size_t g = 0; g < probe_groups_.size(); ++g) {
    BatchGroupMatches& pre = batch_groups_[g];
    pre.pool.clear();
    pre.begin.assign(arrivals.size(), 0);
    pre.end.assign(arrivals.size(), 0);
    for (std::size_t side = 0; side < 2; ++side) {
      const auto& indices = side_arrival_[side];
      if (indices.empty()) continue;
      // A tuple probes the opposite side's window. Matches arrive grouped
      // by probe in probe order, so slice boundaries fall out of one pass.
      std::size_t next = 0;  // probes [0, next) have an open slice
      local_[1 - side].for_each_match_batch(
          side_probes_[side], probe_groups_[g].half_width,
          [&](std::size_t probe, const stream::StoredTuple& match) {
            while (next <= probe) {
              pre.begin[indices[next]] = pre.end[indices[next]] =
                  static_cast<std::uint32_t>(pre.pool.size());
              ++next;
            }
            pre.pool.push_back(match);
            pre.end[indices[probe]] =
                static_cast<std::uint32_t>(pre.pool.size());
          });
      while (next < indices.size()) {
        pre.begin[indices[next]] = pre.end[indices[next]] =
            static_cast<std::uint32_t>(pre.pool.size());
        ++next;
      }
    }
  }
  return true;
}

void Node::on_local_batch(std::span<const LocalArrival> arrivals,
                          const std::function<void(std::size_t)>& bind_slot) {
  if (prepare_batch_probes(arrivals)) {
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      if (bind_slot) bind_slot(i);
      local_tuple_impl(arrivals[i].tuple, arrivals[i].when, arrivals, i);
    }
    return;
  }
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (bind_slot) bind_slot(i);
    on_local_tuple(arrivals[i].tuple, arrivals[i].when);
  }
}

void Node::on_local_batch(std::span<const stream::Tuple> tuples) {
  arrivals_scratch_.clear();
  arrivals_scratch_.reserve(tuples.size());
  for (const stream::Tuple& tuple : tuples) {
    arrivals_scratch_.push_back(LocalArrival{tuple, tuple.timestamp});
  }
  on_local_batch(arrivals_scratch_, {});
}

void Node::on_frame(net::Frame&& frame, double now) {
  switch (frame.kind) {
    case net::FrameKind::kTuple: {
      auto payload = TuplePayload::decode(frame.payload, multi_query_);
      if (!payload) {
        ++decode_failures_;
        return;
      }
      const stream::Tuple& tuple = payload.value().tuple;
      if (!payload.value().piggyback.empty() && !external_summary_feed_) {
        queue_summary(frame.from, payload.value().stamp,
                      std::move(payload.value().piggyback));
      }
      ++received_tuples_;
      const auto side = static_cast<std::size_t>(tuple.side);
      const auto opposite = 1 - side;

      // Which queries routed this copy here. A zero mask (single-query
      // traffic, or a sender that filled nothing in) means every query.
      std::uint64_t mask = multi_query_ ? payload.value().query_mask : 1;
      if (mask == 0) mask = ~std::uint64_t{0};
      bool attributed = false;

      // Forwarded tuples join against this node's *local* segment only
      // (the R_i x S_j decomposition of Section 2); discovered pairs are
      // shipped back to the tuple's origin, per query. The local windows
      // are scanned lazily, once per probe group the mask touches — masked
      // queries of one half-width share the match list (nothing inserts
      // into local_ during a frame).
      std::fill(group_collected_.begin(), group_collected_.end(), false);
      for (std::size_t i = 0; i < queries_.size(); ++i) {
        if ((mask & (std::uint64_t{1} << i)) == 0) continue;
        QueryRuntime& query = queries_[i];
        if (!attributed) {
          ++query.received_tuples;  // frame charged to its lowest query
          attributed = true;
        }
        const std::size_t g = group_of_query_[i];
        if (!group_collected_[g]) {
          group_matches_[g].clear();
          local_[opposite].collect_matches(tuple.key, tuple.timestamp,
                                           probe_groups_[g].half_width,
                                           group_matches_[g]);
          group_collected_[g] = true;
        }
        frame_pairs_.clear();
        for (const auto& match : group_matches_[g]) {
          const auto pair = make_pair(tuple, match);
          query.metrics->record_pair(pair, self_, now);
          frame_pairs_.push_back(pair);
        }
        query.received[side].insert(tuple);

        // Controller feedback, reverse path: our local tuples covered
        // because the *partner* was forwarded here. Without this credit the
        // online epsilon estimate would ignore half of the coverage and
        // overshoot.
        if (config_.online_target_eps >= 0.0 && !frame_pairs_.empty()) {
          absorb_result_feedback(query, frame_pairs_);
        }

        if (!frame_pairs_.empty() && tuple.origin != self_) {
          send_result_frame(query, tuple.origin, frame_pairs_);
        }
      }
      break;
    }
    case net::FrameKind::kSummary: {
      auto payload = SummaryPayload::decode(frame.payload);
      if (!payload) {
        ++decode_failures_;
        return;
      }
      if (!external_summary_feed_) {
        queue_summary(frame.from, payload.value().stamp,
                      std::move(payload.value().block));
      }
      break;
    }
    case net::FrameKind::kResult: {
      // Pairs were recorded by the discovering node; the shipment feeds the
      // online controller's match-rate estimates.
      if (config_.online_target_eps >= 0.0) {
        auto payload = ResultPayload::decode(frame.payload, multi_query_);
        if (!payload) {
          ++decode_failures_;
          return;
        }
        for (auto& query : queries_) {
          if (!multi_query_ || query.spec.id == payload.value().query_id) {
            absorb_result_feedback(query, payload.value().pairs);
            break;
          }
        }
      }
      break;
    }
    case net::FrameKind::kControl:
      break;
  }
}

QueryCounters Node::query_counters(std::size_t index) const noexcept {
  const QueryRuntime& query = queries_[index];
  QueryCounters out;
  out.query_id = query.spec.id;
  out.received_tuples = query.received_tuples;
  out.forwarded_tuples = query.forwarded_tuples;
  out.result_frames = query.result_frames;
  out.summary_frames = query.summary_frames;
  out.throttle = query.throttle;
  out.eps_estimate = query.eps_estimate;
  return out;
}

void Node::evict(double now) {
  // The shared local windows retain to the widest query's horizon; each
  // query's received store only needs its own.
  const double local_horizon =
      now - 2.0 * max_half_width_ - config_.retention_margin_s;
  for (auto& store : local_) store.evict_before(local_horizon);
  for (auto& query : queries_) {
    const double horizon =
        now - 2.0 * query.config.join_half_width_s - config_.retention_margin_s;
    for (auto& store : query.received) store.evict_before(horizon);
  }
}

void Node::track_sent(QueryRuntime& query, std::uint64_t id, bool audited) {
  query.sent_class.emplace(id, audited);
  query.sent_order.push_back(id);
  (audited ? query.audit_sent : query.regular_sent) += 1;
  // Bound the attribution window; feedback for evicted ids is ignored.
  constexpr std::size_t kCap = 8192;
  while (query.sent_order.size() > kCap) {
    query.sent_class.erase(query.sent_order.front());
    query.sent_order.pop_front();
  }
}

void Node::absorb_result_feedback(QueryRuntime& query,
                                  std::span<const stream::ResultPair> pairs) {
  for (const auto& pair : pairs) {
    // One of the two ids is ours; the discovering node keyed the shipment
    // to the tuple it processed, and the reverse-path credit passes pairs
    // whose local member is ours.
    auto it = query.sent_class.find(pair.r_id);
    if (it == query.sent_class.end()) it = query.sent_class.find(pair.s_id);
    if (it == query.sent_class.end()) continue;
    const std::uint64_t pair_hash = stream::ResultPairHash{}(pair);
    if (!query.credited_pairs.insert(pair_hash).second) continue;  // seen
    query.credited_order.push_back(pair_hash);
    constexpr std::size_t kCap = 1 << 15;
    while (query.credited_order.size() > kCap) {
      query.credited_pairs.erase(query.credited_order.front());
      query.credited_order.pop_front();
    }
    (it->second ? query.audit_matches : query.regular_matches) += 1.0;
  }
}

void Node::run_controller(QueryRuntime& query) {
  if (query.audit_sent < 8 || query.audit_matches <= 0.0 ||
      query.regular_sent == 0) {
    return;  // not enough audit evidence yet
  }
  const double audit_rate =
      query.audit_matches / static_cast<double>(query.audit_sent);
  const double regular_rate =
      query.regular_matches / static_cast<double>(query.regular_sent);
  const double sample = std::clamp(1.0 - regular_rate / audit_rate, 0.0, 1.0);
  query.eps_estimate = query.eps_estimate < 0.0
                           ? sample
                           : 0.7 * query.eps_estimate + 0.3 * sample;
  // Proportional control on the forwarding budget knob: too many misses ->
  // open the throttle; overshooting the accuracy target -> save messages.
  query.throttle = std::clamp(
      query.throttle +
          config_.controller_gain *
              (query.eps_estimate - config_.online_target_eps),
      0.0, 1.0);
  query.policy->set_throttle(query.throttle);
  // Decay the window so the estimate tracks the current operating point
  // without discarding too much evidence at once.
  query.audit_sent =
      static_cast<std::uint64_t>(0.7 * static_cast<double>(query.audit_sent));
  query.regular_sent =
      static_cast<std::uint64_t>(0.7 * static_cast<double>(query.regular_sent));
  query.audit_matches *= 0.7;
  query.regular_matches *= 0.7;
}

void Node::queue_summary(net::NodeId from, const SummaryStamp& stamp,
                         SummaryBlock block) {
  const double visible = config_.summary_visible_time(stamp.emit_time);
  if (visible <= summary_frontier_) {
    // The boundary already passed on the local clock — exact application
    // order is unrecoverable. Apply now, flag the run.
    ++late_summaries_;
    substrate_.on_summary(from, block);
    return;
  }
  pending_summaries_.push_back(
      PendingSummary{visible, stamp.seq, from, std::move(block)});
}

void Node::apply_due_summaries(double now) {
  if (now > summary_frontier_) summary_frontier_ = now;
  if (pending_summaries_.empty()) return;
  const auto due = std::partition(
      pending_summaries_.begin(), pending_summaries_.end(),
      [&](const PendingSummary& p) { return p.visible > summary_frontier_; });
  if (due == pending_summaries_.end()) return;
  // (visible, sender, seq) is a strict total order over pending entries, so
  // the application sequence is independent of arrival interleaving.
  std::sort(due, pending_summaries_.end(),
            [](const PendingSummary& a, const PendingSummary& b) {
              if (a.visible != b.visible) return a.visible < b.visible;
              if (a.from != b.from) return a.from < b.from;
              return a.seq < b.seq;
            });
  for (auto it = due; it != pending_summaries_.end(); ++it) {
    substrate_.on_summary(it->from, it->block);
  }
  pending_summaries_.erase(due, pending_summaries_.end());
}

void Node::send_summary(net::NodeId peer, SummaryBlock block, double now) {
  SummaryPayload payload;
  payload.block = std::move(block);
  payload.stamp.emit_time = now;
  payload.stamp.seq = summary_seq_[peer]++;
  net::Frame frame;
  frame.from = self_;
  frame.to = peer;
  frame.kind = net::FrameKind::kSummary;
  frame.payload = payload.encode();
  (void)transport_.send(std::move(frame));
}

}  // namespace dsjoin::core
