#include "dsjoin/core/node.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <limits>
#include <map>

#include "dsjoin/core/wire.hpp"

namespace dsjoin::core {

namespace {
stream::ResultPair make_pair(const stream::Tuple& tuple,
                             const stream::StoredTuple& match) {
  // ResultPair is (R id, S id) regardless of which member was processed.
  return tuple.side == stream::StreamSide::kR
             ? stream::ResultPair{tuple.id, match.id}
             : stream::ResultPair{match.id, tuple.id};
}
}  // namespace

Node::QueryRuntime::QueryRuntime(const SystemConfig& base,
                                 const QuerySpec& query_spec, net::NodeId self,
                                 SummarySubstrate& substrate,
                                 MetricsCollector* collector)
    : spec(query_spec), config(query_config(base, query_spec)),
      policy(RoutingPolicy::create(config, self, substrate)),
      metrics(collector),
      // Same stream for every query (and identical to the single-query
      // engine's): queries draw independently, so N copies of one query
      // audit — and thus route — exactly like N independent baseline runs.
      audit_rng(base.seed ^ (0xadd17000ULL + self)),
      throttle(query_spec.throttle) {
  substrate.subscribe(family_of(query_spec.policy), query_spec.id);
}

Node::Node(const SystemConfig& config, net::NodeId self,
           net::Transport& transport,
           std::span<MetricsCollector* const> query_metrics)
    : config_(config), self_(self), transport_(transport),
      substrate_(config, self),
      max_half_width_(max_join_half_width(config)),
      summary_frontier_(-std::numeric_limits<double>::infinity()),
      summary_seq_(config.nodes, 0) {
  const auto specs = effective_queries(config);
  assert(query_metrics.size() == specs.size() &&
         "one MetricsCollector per registered query");
  multi_query_ = specs.size() > 1;
  substrate_.set_multi_query(multi_query_);
  queries_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    queries_.emplace_back(config, specs[i], self, substrate_,
                          query_metrics[i]);
  }
  // Shard plan: queries of one summary family share an engine, so they
  // serialize in one shard; BASE/RR queries share nothing and shard alone.
  std::array<int, kSummaryFamilies> family_shard;
  family_shard.fill(-1);
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    const auto family = family_of(queries_[i].spec.policy);
    if (family == SummaryFamily::kNone) {
      shards_.push_back({i});
      continue;
    }
    auto& slot = family_shard[static_cast<std::size_t>(family)];
    if (slot < 0) {
      slot = static_cast<int>(shards_.size());
      shards_.push_back({});
    }
    shards_[static_cast<std::size_t>(slot)].push_back(i);
  }
  eval_scratch_.resize(queries_.size());
}

Node::Node(const SystemConfig& config, net::NodeId self,
           net::Transport& transport, MetricsCollector& metrics)
    : Node(config, self, transport,
           std::array<MetricsCollector* const, 1>{&metrics}) {}

void Node::join_and_report(QueryRuntime& query, const stream::Tuple& tuple,
                           const stream::TupleStore& store, double now,
                           std::vector<stream::ResultPair>* shipped,
                           std::map<net::NodeId, std::vector<stream::ResultPair>>*
                               by_origin) {
  store.for_each_match(
      tuple.key, tuple.timestamp, query.config.join_half_width_s,
      [&](const stream::StoredTuple& match) {
        const auto pair = make_pair(tuple, match);
        query.metrics->record_pair(pair, self_, now);
        if (shipped != nullptr) shipped->push_back(pair);
        if (by_origin != nullptr && match.origin != self_) {
          (*by_origin)[match.origin].push_back(pair);
        }
      });
}

void Node::evaluate_routing(QueryRuntime& query, const stream::Tuple& tuple,
                            QueryEval& eval) {
  // Online controller: a small audit sample is broadcast to every peer; the
  // remote-match rate of audited tuples estimates the true match rate, and
  // comparing it with the policy-routed tuples' rate yields epsilon online.
  const bool controller_on = config_.online_target_eps >= 0.0;
  eval.audited =
      controller_on && query.audit_rng.next_bool(config_.audit_probability);
  if (eval.audited) {
    eval.destinations.reserve(config_.nodes - 1);
    for (net::NodeId j = 0; j < config_.nodes; ++j) {
      if (j != self_) eval.destinations.push_back(j);
    }
  } else {
    eval.destinations = query.policy->route(tuple);
  }
  if (controller_on) track_sent(query, tuple.id, eval.audited);
}

void Node::for_each_query_sharded(
    const std::function<void(std::size_t)>& task) {
  if (!multi_query_ || pool_ == nullptr || shards_.size() <= 1) {
    for (std::size_t i = 0; i < queries_.size(); ++i) task(i);
    return;
  }
  // One pool task per shard; within a shard queries run in index order.
  // Every shard touches only its own queries' state plus its family's
  // engine, and engine cache refreshes are idempotent, so the interleaving
  // of shards cannot change any result.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    tasks.push_back([&task, &shard] {
      for (const std::size_t index : shard) task(index);
    });
  }
  pool_->run_batch(tasks);
}

void Node::send_result_frame(QueryRuntime& query, net::NodeId origin,
                             std::vector<stream::ResultPair> pairs) {
  ResultPayload results;
  results.pairs = std::move(pairs);
  results.query_id = query.spec.id;
  net::Frame out;
  out.from = self_;
  out.to = origin;
  out.kind = net::FrameKind::kResult;
  out.payload = results.encode(multi_query_);
  (void)transport_.send(std::move(out));
  ++query.result_frames;
}

void Node::on_local_tuple(const stream::Tuple& tuple, double now) {
  // Summary state advances on the local virtual clock, never on frame
  // arrival: everything visible by `now` must inform this tuple's routing.
  apply_due_summaries(now);
  ++local_tuples_;
  const auto side = static_cast<std::size_t>(tuple.side);
  const auto opposite = 1 - side;

  // Shared ingest: the substrate sees each tuple exactly once, no matter
  // how many queries are registered. (Engines are never read by the joins
  // below, so feeding them before the joins is unobservable.)
  substrate_.observe_local(tuple);

  // Per-query evaluation: the local joins under the query's window and the
  // query's routing decision. Thread-confined per shard; all cross-query
  // effects (inserts, frames) are applied afterwards in canonical order.
  //
  // Local-local pairs need no network at all. Local-received pairs were
  // made possible by a peer's earlier forward; the complete result is
  // shipped back to that peer (it owns the matched tuple), which also
  // closes the feedback loop the online controller relies on.
  const bool controller_on = config_.online_target_eps >= 0.0;
  for_each_query_sharded([&](std::size_t i) {
    QueryRuntime& query = queries_[i];
    QueryEval& eval = eval_scratch_[i];
    eval.audited = false;
    eval.destinations.clear();
    eval.by_origin.clear();
    join_and_report(query, tuple, local_[opposite], now, nullptr, nullptr);
    join_and_report(query, tuple, query.received[opposite], now, nullptr,
                    &eval.by_origin);
    evaluate_routing(query, tuple, eval);
  });

  local_[side].insert(tuple);

  for (auto& query : queries_) {
    auto& by_origin = eval_scratch_[&query - queries_.data()].by_origin;
    for (auto& [origin, pairs] : by_origin) {
      send_result_frame(query, origin, std::move(pairs));
    }
  }

  // Destination union in canonical query order; each tuple frame carries
  // the mask of queries that routed it and is attributed to the lowest.
  std::vector<net::NodeId> destinations;
  std::vector<std::uint64_t> masks;
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    for (const net::NodeId dest : eval_scratch_[i].destinations) {
      const auto it = std::find(destinations.begin(), destinations.end(), dest);
      if (it == destinations.end()) {
        destinations.push_back(dest);
        masks.push_back(std::uint64_t{1} << i);
      } else {
        masks[static_cast<std::size_t>(it - destinations.begin())] |=
            std::uint64_t{1} << i;
      }
    }
  }

  for (std::size_t d = 0; d < destinations.size(); ++d) {
    const net::NodeId dest = destinations[d];
    TuplePayload payload;
    payload.tuple = tuple;
    payload.query_mask = masks[d];
    payload.piggyback = substrate_.piggyback_for(dest);
    if (!payload.piggyback.empty()) {
      payload.stamp.emit_time = now;
      payload.stamp.seq = summary_seq_[dest]++;
    }
    net::Frame frame;
    frame.from = self_;
    frame.to = dest;
    frame.kind = net::FrameKind::kTuple;
    frame.piggyback_bytes = static_cast<std::uint32_t>(payload.piggyback.size());
    frame.payload = payload.encode(multi_query_);
    (void)transport_.send(std::move(frame));
    ++queries_[static_cast<std::size_t>(std::countr_zero(masks[d]))]
          .forwarded_tuples;
  }

  for (auto& summary : substrate_.maintenance(now)) {
    // Standalone summary frames belong to the emitting family's lowest
    // subscriber (per-query counts must sum to the node totals).
    const std::uint32_t owner_id = substrate_.lowest_subscriber(summary.family);
    for (auto& query : queries_) {
      if (query.spec.id == owner_id) {
        ++query.summary_frames;
        break;
      }
    }
    send_summary(summary.peer, std::move(summary.block), now);
  }

  if (controller_on && local_tuples_ % config_.controller_interval_tuples == 0) {
    for (auto& query : queries_) run_controller(query);
  }
  if (local_tuples_ % 128 == 0) evict(now);
}

void Node::on_local_batch(std::span<const LocalArrival> arrivals,
                          const std::function<void(std::size_t)>& bind_slot) {
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (bind_slot) bind_slot(i);
    on_local_tuple(arrivals[i].tuple, arrivals[i].when);
  }
}

void Node::on_local_batch(std::span<const stream::Tuple> tuples) {
  for (const stream::Tuple& tuple : tuples) {
    on_local_tuple(tuple, tuple.timestamp);
  }
}

void Node::on_frame(net::Frame&& frame, double now) {
  switch (frame.kind) {
    case net::FrameKind::kTuple: {
      auto payload = TuplePayload::decode(frame.payload, multi_query_);
      if (!payload) {
        ++decode_failures_;
        return;
      }
      const stream::Tuple& tuple = payload.value().tuple;
      if (!payload.value().piggyback.empty() && !external_summary_feed_) {
        queue_summary(frame.from, payload.value().stamp,
                      std::move(payload.value().piggyback));
      }
      ++received_tuples_;
      const auto side = static_cast<std::size_t>(tuple.side);
      const auto opposite = 1 - side;

      // Which queries routed this copy here. A zero mask (single-query
      // traffic, or a sender that filled nothing in) means every query.
      std::uint64_t mask = multi_query_ ? payload.value().query_mask : 1;
      if (mask == 0) mask = ~std::uint64_t{0};
      bool attributed = false;

      // Forwarded tuples join against this node's *local* segment only
      // (the R_i x S_j decomposition of Section 2); discovered pairs are
      // shipped back to the tuple's origin, per query.
      for (std::size_t i = 0; i < queries_.size(); ++i) {
        if ((mask & (std::uint64_t{1} << i)) == 0) continue;
        QueryRuntime& query = queries_[i];
        if (!attributed) {
          ++query.received_tuples;  // frame charged to its lowest query
          attributed = true;
        }
        std::vector<stream::ResultPair> shipped;
        join_and_report(query, tuple, local_[opposite], now, &shipped, nullptr);
        query.received[side].insert(tuple);

        // Controller feedback, reverse path: our local tuples covered
        // because the *partner* was forwarded here. Without this credit the
        // online epsilon estimate would ignore half of the coverage and
        // overshoot.
        if (config_.online_target_eps >= 0.0 && !shipped.empty()) {
          absorb_result_feedback(query, shipped);
        }

        if (!shipped.empty() && tuple.origin != self_) {
          send_result_frame(query, tuple.origin, std::move(shipped));
        }
      }
      break;
    }
    case net::FrameKind::kSummary: {
      auto payload = SummaryPayload::decode(frame.payload);
      if (!payload) {
        ++decode_failures_;
        return;
      }
      if (!external_summary_feed_) {
        queue_summary(frame.from, payload.value().stamp,
                      std::move(payload.value().block));
      }
      break;
    }
    case net::FrameKind::kResult: {
      // Pairs were recorded by the discovering node; the shipment feeds the
      // online controller's match-rate estimates.
      if (config_.online_target_eps >= 0.0) {
        auto payload = ResultPayload::decode(frame.payload, multi_query_);
        if (!payload) {
          ++decode_failures_;
          return;
        }
        for (auto& query : queries_) {
          if (!multi_query_ || query.spec.id == payload.value().query_id) {
            absorb_result_feedback(query, payload.value().pairs);
            break;
          }
        }
      }
      break;
    }
    case net::FrameKind::kControl:
      break;
  }
}

QueryCounters Node::query_counters(std::size_t index) const noexcept {
  const QueryRuntime& query = queries_[index];
  QueryCounters out;
  out.query_id = query.spec.id;
  out.received_tuples = query.received_tuples;
  out.forwarded_tuples = query.forwarded_tuples;
  out.result_frames = query.result_frames;
  out.summary_frames = query.summary_frames;
  out.throttle = query.throttle;
  out.eps_estimate = query.eps_estimate;
  return out;
}

void Node::evict(double now) {
  // The shared local windows retain to the widest query's horizon; each
  // query's received store only needs its own.
  const double local_horizon =
      now - 2.0 * max_half_width_ - config_.retention_margin_s;
  for (auto& store : local_) store.evict_before(local_horizon);
  for (auto& query : queries_) {
    const double horizon =
        now - 2.0 * query.config.join_half_width_s - config_.retention_margin_s;
    for (auto& store : query.received) store.evict_before(horizon);
  }
}

void Node::track_sent(QueryRuntime& query, std::uint64_t id, bool audited) {
  query.sent_class.emplace(id, audited);
  query.sent_order.push_back(id);
  (audited ? query.audit_sent : query.regular_sent) += 1;
  // Bound the attribution window; feedback for evicted ids is ignored.
  constexpr std::size_t kCap = 8192;
  while (query.sent_order.size() > kCap) {
    query.sent_class.erase(query.sent_order.front());
    query.sent_order.pop_front();
  }
}

void Node::absorb_result_feedback(QueryRuntime& query,
                                  const std::vector<stream::ResultPair>& pairs) {
  for (const auto& pair : pairs) {
    // One of the two ids is ours; the discovering node keyed the shipment
    // to the tuple it processed, and the reverse-path credit passes pairs
    // whose local member is ours.
    auto it = query.sent_class.find(pair.r_id);
    if (it == query.sent_class.end()) it = query.sent_class.find(pair.s_id);
    if (it == query.sent_class.end()) continue;
    const std::uint64_t pair_hash = stream::ResultPairHash{}(pair);
    if (!query.credited_pairs.insert(pair_hash).second) continue;  // seen
    query.credited_order.push_back(pair_hash);
    constexpr std::size_t kCap = 1 << 15;
    while (query.credited_order.size() > kCap) {
      query.credited_pairs.erase(query.credited_order.front());
      query.credited_order.pop_front();
    }
    (it->second ? query.audit_matches : query.regular_matches) += 1.0;
  }
}

void Node::run_controller(QueryRuntime& query) {
  if (query.audit_sent < 8 || query.audit_matches <= 0.0 ||
      query.regular_sent == 0) {
    return;  // not enough audit evidence yet
  }
  const double audit_rate =
      query.audit_matches / static_cast<double>(query.audit_sent);
  const double regular_rate =
      query.regular_matches / static_cast<double>(query.regular_sent);
  const double sample = std::clamp(1.0 - regular_rate / audit_rate, 0.0, 1.0);
  query.eps_estimate = query.eps_estimate < 0.0
                           ? sample
                           : 0.7 * query.eps_estimate + 0.3 * sample;
  // Proportional control on the forwarding budget knob: too many misses ->
  // open the throttle; overshooting the accuracy target -> save messages.
  query.throttle = std::clamp(
      query.throttle +
          config_.controller_gain *
              (query.eps_estimate - config_.online_target_eps),
      0.0, 1.0);
  query.policy->set_throttle(query.throttle);
  // Decay the window so the estimate tracks the current operating point
  // without discarding too much evidence at once.
  query.audit_sent =
      static_cast<std::uint64_t>(0.7 * static_cast<double>(query.audit_sent));
  query.regular_sent =
      static_cast<std::uint64_t>(0.7 * static_cast<double>(query.regular_sent));
  query.audit_matches *= 0.7;
  query.regular_matches *= 0.7;
}

void Node::queue_summary(net::NodeId from, const SummaryStamp& stamp,
                         SummaryBlock block) {
  const double visible = config_.summary_visible_time(stamp.emit_time);
  if (visible <= summary_frontier_) {
    // The boundary already passed on the local clock — exact application
    // order is unrecoverable. Apply now, flag the run.
    ++late_summaries_;
    substrate_.on_summary(from, block);
    return;
  }
  pending_summaries_.push_back(
      PendingSummary{visible, stamp.seq, from, std::move(block)});
}

void Node::apply_due_summaries(double now) {
  if (now > summary_frontier_) summary_frontier_ = now;
  if (pending_summaries_.empty()) return;
  const auto due = std::partition(
      pending_summaries_.begin(), pending_summaries_.end(),
      [&](const PendingSummary& p) { return p.visible > summary_frontier_; });
  if (due == pending_summaries_.end()) return;
  // (visible, sender, seq) is a strict total order over pending entries, so
  // the application sequence is independent of arrival interleaving.
  std::sort(due, pending_summaries_.end(),
            [](const PendingSummary& a, const PendingSummary& b) {
              if (a.visible != b.visible) return a.visible < b.visible;
              if (a.from != b.from) return a.from < b.from;
              return a.seq < b.seq;
            });
  for (auto it = due; it != pending_summaries_.end(); ++it) {
    substrate_.on_summary(it->from, it->block);
  }
  pending_summaries_.erase(due, pending_summaries_.end());
}

void Node::send_summary(net::NodeId peer, SummaryBlock block, double now) {
  SummaryPayload payload;
  payload.block = std::move(block);
  payload.stamp.emit_time = now;
  payload.stamp.seq = summary_seq_[peer]++;
  net::Frame frame;
  frame.from = self_;
  frame.to = peer;
  frame.kind = net::FrameKind::kSummary;
  frame.payload = payload.encode();
  (void)transport_.send(std::move(frame));
}

}  // namespace dsjoin::core
