#include "dsjoin/core/substrate.hpp"

#include <algorithm>

namespace dsjoin::core {

SummarySubstrate::SummarySubstrate(const SystemConfig& config, net::NodeId self)
    : config_(config), self_(self) {}

DftSummaryEngine& SummarySubstrate::coeff() {
  if (!coeff_) coeff_ = std::make_unique<DftSummaryEngine>(config_, self_);
  return *coeff_;
}

BloomSummaryEngine& SummarySubstrate::bloom() {
  if (!bloom_) bloom_ = std::make_unique<BloomSummaryEngine>(config_, self_);
  return *bloom_;
}

SketchSummaryEngine& SummarySubstrate::sketch() {
  if (!sketch_) sketch_ = std::make_unique<SketchSummaryEngine>(config_, self_);
  return *sketch_;
}

SpectrumSummaryEngine& SummarySubstrate::spectrum() {
  if (!spectrum_) {
    spectrum_ = std::make_unique<SpectrumSummaryEngine>(config_, self_);
  }
  return *spectrum_;
}

SampleSummaryEngine& SummarySubstrate::sample() {
  if (!sample_) sample_ = std::make_unique<SampleSummaryEngine>(config_, self_);
  return *sample_;
}

void SummarySubstrate::subscribe(SummaryFamily family, std::uint32_t query_id) {
  if (family == SummaryFamily::kNone) return;
  switch (family) {
    case SummaryFamily::kCoeff: (void)coeff(); break;
    case SummaryFamily::kBloom: (void)bloom(); break;
    case SummaryFamily::kSketch: (void)sketch(); break;
    case SummaryFamily::kSpectrum: (void)spectrum(); break;
    case SummaryFamily::kSample: (void)sample(); break;
    case SummaryFamily::kNone: break;
  }
  auto& subs = subscribers_[static_cast<std::size_t>(family)];
  const auto it = std::lower_bound(subs.begin(), subs.end(), query_id);
  if (it == subs.end() || *it != query_id) subs.insert(it, query_id);
}

std::uint32_t SummarySubstrate::lowest_subscriber(SummaryFamily family) const {
  const auto& subs = subscribers_[static_cast<std::size_t>(family)];
  return subs.empty() ? 0 : subs.front();
}

bool SummarySubstrate::uses_summaries() const noexcept {
  return coeff_ != nullptr || bloom_ != nullptr || sketch_ != nullptr ||
         spectrum_ != nullptr || sample_ != nullptr;
}

void SummarySubstrate::observe_local(const stream::Tuple& tuple) {
  // Per-family fan-in, in fixed family order: each live engine sees the
  // tuple exactly once no matter how many queries subscribed to it.
  if (coeff_) { coeff_->observe_local(tuple); ++ingest_ops_; }
  if (bloom_) { bloom_->observe_local(tuple); ++ingest_ops_; }
  if (sketch_) { sketch_->observe_local(tuple); ++ingest_ops_; }
  if (spectrum_) { spectrum_->observe_local(tuple); ++ingest_ops_; }
  if (sample_) { sample_->observe_local(tuple); ++ingest_ops_; }
}

SummaryBlock SummarySubstrate::piggyback_for(net::NodeId peer) {
  // Only the DFT family piggybacks on tuple frames (Figure 7, line 5); the
  // snapshot families broadcast from maintenance.
  if (!coeff_) return {};
  auto block = coeff_->piggyback_for(peer);
  if (block.empty() || !multi_query_) return block;
  return wrap(SummaryFamily::kCoeff, std::move(block));
}

std::vector<OutboundSummary> SummarySubstrate::maintenance(double now) {
  std::vector<OutboundSummary> out;
  const auto collect = [&](auto* engine) {
    if (engine == nullptr) return;
    auto blocks = engine->maintenance(now);
    for (auto& entry : blocks) {
      if (multi_query_) entry.block = wrap(entry.family, std::move(entry.block));
      out.push_back(std::move(entry));
    }
  };
  collect(coeff_.get());
  collect(bloom_.get());
  collect(sketch_.get());
  collect(spectrum_.get());
  collect(sample_.get());
  return out;
}

void SummarySubstrate::on_summary(net::NodeId from, const SummaryBlock& block) {
  if (!multi_query_) {
    dispatch(from, block);
    return;
  }
  // Multi-query wire: every sub-block arrives wrapped in a query scope.
  // The subscriber ids are attribution metadata (the receiver's registry
  // mirrors the sender's by config symmetry); the inner block is dispatched
  // to whichever engines exist here. A bare (unwrapped) block from a
  // sender that predates the wrapper dispatches as-is.
  summary_codec::Visitor visitor;
  bool saw_wrapper = false;
  visitor.on_query_scope = [&](const std::vector<std::uint32_t>&,
                               SummaryBlock inner) {
    saw_wrapper = true;
    dispatch(from, inner);
  };
  if (!summary_codec::decode_blocks(block, visitor).is_ok() || !saw_wrapper) {
    dispatch(from, block);
  }
}

void SummarySubstrate::dispatch(net::NodeId from, const SummaryBlock& block) {
  summary_codec::Visitor visitor;
  if (coeff_) {
    visitor.on_dft = [&](stream::StreamSide side, std::uint32_t window,
                         std::uint32_t retained,
                         const std::vector<dsp::CoeffDelta>& deltas) {
      coeff_->apply_deltas(from, side, window, retained, deltas);
    };
  }
  if (bloom_) {
    visitor.on_bloom = [&](stream::StreamSide side, sketch::BloomFilter filter) {
      bloom_->apply_snapshot(from, side, std::move(filter));
    };
  }
  if (sketch_) {
    visitor.on_sketch = [&](stream::StreamSide side, sketch::AgmsSketch sk) {
      sketch_->apply_sketch(from, side, std::move(sk));
    };
  }
  if (spectrum_) {
    visitor.on_hist_spectrum = [&](stream::StreamSide side,
                                   std::uint32_t buckets,
                                   std::vector<dsp::Complex> coeffs) {
      spectrum_->apply_spectrum(from, side, buckets, std::move(coeffs));
    };
  }
  if (sample_) {
    visitor.on_sample = [&](stream::StreamSide side,
                            sampling::SampleSummary summary) {
      sample_->apply_sample(from, side, std::move(summary));
    };
  }
  // Sub-blocks of families without a live engine fall through their null
  // callbacks; a malformed block aborts mid-way, matching the single-policy
  // decoder's behavior (the node counts the failure, state stays intact).
  (void)summary_codec::decode_blocks(block, visitor);
}

SummaryBlock SummarySubstrate::wrap(SummaryFamily family,
                                    SummaryBlock block) const {
  const auto& subs = subscribers_[static_cast<std::size_t>(family)];
  if (subs.empty() || block.empty()) return block;
  common::BufferWriter writer;
  summary_codec::encode_query_scope(writer, subs, block.bytes);
  return SummaryBlock{std::move(writer).take()};
}

}  // namespace dsjoin::core
