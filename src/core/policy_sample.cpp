// SMPL (ours): the shared SampleSummaryEngine (stratified sliding-window
// reservoirs, lazily refreshed own-sample aggregates, remote samples) and
// the Horvitz–Thompson match-estimate routing on top, plus the accumulated
// predicted-epsilon upper bound (DESIGN.md §14).
#include <algorithm>
#include <cmath>

#include "policy_impl.hpp"

namespace dsjoin::core {

namespace {

sampling::ReservoirOptions reservoir_options(const SystemConfig& config) {
  sampling::ReservoirOptions options;
  options.capacity = config.sample_capacity_effective();
  options.strata = config.sample_strata;
  // The other policies summarize a dft_window-tuple count window; the
  // reservoir tracks the same span expressed in time at the configured
  // arrival rate, so the sampled populations are comparable.
  options.window_s =
      config.arrivals_per_second > 0.0
          ? static_cast<double>(config.dft_window) / config.arrivals_per_second
          : 2.0 * config.join_half_width_s;
  return options;
}

std::uint64_t reservoir_seed(const SystemConfig& config, net::NodeId self,
                             std::size_t side) {
  // Per (node, side) streams; any two differ in the mixed-in constant.
  return config.seed ^ (0x5a3f'11e0ULL + self * 2 + side);
}

// A key absent from a peer's sample is weak evidence of absence: with
// sampling fraction f = capacity/population, a key of true count c escapes
// the sample with probability ~(1-f)^c, so the one-sided 95% bound given
// zero observations is c <= ln(0.05)/ln(1-f) ~= 3/f (the rule of three).
// Only a complete sample (population <= capacity) proves absence.
double unseen_upper(const sampling::SampleSummary& summary) {
  if (summary.population <= summary.capacity) return 0.0;
  return 3.0 * static_cast<double>(summary.population) /
         static_cast<double>(std::max(summary.capacity, 1u));
}

}  // namespace

SampleSummaryEngine::SampleSummaryEngine(const SystemConfig& config,
                                         net::NodeId self)
    : config_(config), self_(self),
      reservoir_{sampling::StratifiedReservoir(reservoir_options(config),
                                               reservoir_seed(config, self, 0)),
                 sampling::StratifiedReservoir(reservoir_options(config),
                                               reservoir_seed(config, self, 1))},
      peers_(config.nodes) {}

void SampleSummaryEngine::observe_local(const stream::Tuple& tuple) {
  reservoir_[static_cast<std::size_t>(tuple.side)].observe(tuple.key,
                                                           tuple.timestamp);
  ++local_tuples_;
}

const sampling::SampleSummary& SampleSummaryEngine::own_summary(std::size_t side) {
  if (own_dirty_[side]) {
    own_[side] = reservoir_[side].summary();
    own_dirty_[side] = false;
  }
  return own_[side];
}

void SampleSummaryEngine::apply_sample(net::NodeId peer, stream::StreamSide side,
                                       sampling::SampleSummary summary) {
  peers_[peer].remote[static_cast<std::size_t>(side)].update(std::move(summary));
}

std::vector<OutboundSummary> SampleSummaryEngine::maintenance(double /*now*/) {
  // The sample drifts every tuple; refresh the cached own aggregates once
  // per epoch so route()'s self-term tracks the window without paying an
  // aggregation per tuple.
  if (local_tuples_ % config_.summary_epoch_tuples == 0) {
    own_dirty_ = {true, true};
  }
  if (local_tuples_ - last_broadcast_tuple_ < config_.summary_epoch_tuples) {
    return {};
  }
  last_broadcast_tuple_ = local_tuples_;
  own_dirty_ = {true, true};
  common::BufferWriter writer;
  for (std::size_t side = 0; side < 2; ++side) {
    summary_codec::encode_sample(
        writer, static_cast<stream::StreamSide>(side), own_summary(side));
  }
  SummaryBlock block{std::move(writer).take()};
  std::vector<OutboundSummary> out;
  for (net::NodeId j = 0; j < config_.nodes; ++j) {
    if (j != self_) out.push_back(OutboundSummary{j, block, SummaryFamily::kSample});
  }
  return out;
}

SamplePolicy::SamplePolicy(const SystemConfig& config, net::NodeId self,
                           SummarySubstrate& substrate)
    : RoutingPolicy(substrate), config_(config), self_(self),
      throttle_(config.throttle), engine_(&substrate.sample()),
      rng_(config.seed ^ (0x5a3f'beefULL + self)) {}

std::vector<net::NodeId> SamplePolicy::route(const stream::Tuple& tuple) {
  const std::uint32_t n = config_.nodes;
  const double budget = throttle_to_budget(throttle_, n);
  const auto side = static_cast<std::size_t>(tuple.side);
  const std::size_t opposite = 1 - side;
  const std::int64_t tolerance = config_.membership_tolerance;

  // Matches this tuple finds locally regardless of routing — the bound's
  // denominator includes them, its numerator never does.
  const auto self_est = sampling::estimate_key_count(
      engine_->own_summary(opposite), tuple.key, tolerance);

  std::vector<net::NodeId> peer_ids;
  std::vector<double> scores;   // routing weight per peer
  std::vector<double> means;    // HT mean match mass credited to the bound
  std::vector<double> upper;    // confidence-inflated match mass per peer
  peer_ids.reserve(n - 1);
  for (net::NodeId j = 0; j < n; ++j) {
    if (j == self_) continue;
    peer_ids.push_back(j);
    const auto* remote = engine_->remote(j, opposite);
    if (remote == nullptr) {
      // Bootstrap: no sample from this peer yet. Explore with full weight,
      // credit the peer no found mass, and charge the bound as if it held
      // as much matching mass as our own window (at least one tuple) —
      // unseeded peers must never make the bound smaller.
      scores.push_back(1.0);
      means.push_back(0.0);
      upper.push_back(
          std::max(sampling::upper_confidence(self_est), 1.0));
    } else {
      const auto est = sampling::estimate_key_count(*remote, tuple.key,
                                                    tolerance);
      scores.push_back(est.mean);
      means.push_back(est.mean);
      upper.push_back(est.mean > 0.0 || est.variance > 0.0
                          ? sampling::upper_confidence(est)
                          : unseen_upper(*remote));
    }
  }

  // Membership-style semantics: when no peer shows matching mass, only the
  // exploration floor flows (unlike SKCH, SMPL can "send almost nothing").
  const double floor = 0.05 * budget / static_cast<double>(n - 1);
  const auto probs = allocate_flow_probabilities(scores, budget, floor);

  double missed = 0.0;
  double total = self_est.mean;
  std::vector<net::NodeId> out;
  last_probs_.assign(n, 0.0);
  for (std::size_t idx = 0; idx < peer_ids.size(); ++idx) {
    const double p = probs[idx];
    last_probs_[peer_ids[idx]] = p;
    missed += (1.0 - p) * upper[idx];
    total += means[idx];
    if (rng_.next_bool(p)) out.push_back(peer_ids[idx]);
  }
  bound_.missed_mass += missed;
  bound_.total_mass += total;
  return out;
}

}  // namespace dsjoin::core
