// SKCH (the second competitor of Section 6): the shared SketchSummaryEngine
// (AGMS sketches, periodic broadcasts, cached pairwise estimates) and the
// join-size-weighted routing on top.
#include <algorithm>
#include <cmath>

#include "policy_impl.hpp"

namespace dsjoin::core {

namespace {

// All nodes must build sketches from the same hash functions for the
// cross-node inner product to be meaningful.
std::uint64_t shared_sketch_seed(const SystemConfig& config) {
  return config.seed ^ 0x5ce7'c4f0ULL;
}

sketch::AgmsShape sketch_shape(const SystemConfig& config) {
  // i32 counters on the wire: budget/4 counters, s0:s1 = 5:1 (Section 6).
  return sketch::AgmsShape::for_budget(
      std::max<std::size_t>(config.summary_budget_bytes() / 4, 5));
}

}  // namespace

SketchSummaryEngine::SketchSummaryEngine(const SystemConfig& config,
                                         net::NodeId self)
    : config_(config), self_(self),
      local_{sketch::AgmsSketch(sketch_shape(config), shared_sketch_seed(config)),
             sketch::AgmsSketch(sketch_shape(config), shared_sketch_seed(config))},
      window_{stream::CountWindow(config.dft_window),
              stream::CountWindow(config.dft_window)},
      peers_(config.nodes) {}

void SketchSummaryEngine::observe_local(const stream::Tuple& tuple) {
  // Deferred: nothing reads local_[side] until the next estimate refresh or
  // broadcast, so the tuple only joins the pending batch here. flush_pending
  // runs the sketch's vectorized two-pass update at the first read.
  pending_[static_cast<std::size_t>(tuple.side)].push_back(tuple);
  ++local_tuples_;
}

void SketchSummaryEngine::flush_pending(std::size_t side) {
  auto& pending = pending_[side];
  if (pending.empty()) return;
  evicted_scratch_.clear();
  window_[side].insert_batch(pending, evicted_scratch_);
  key_scratch_.clear();
  key_scratch_.reserve(pending.size());
  for (const auto& t : pending) {
    key_scratch_.push_back(static_cast<std::uint64_t>(t.key));
  }
  local_[side].update_batch(key_scratch_, +1);
  key_scratch_.clear();
  for (const auto& t : evicted_scratch_) {
    key_scratch_.push_back(static_cast<std::uint64_t>(t.key));
  }
  local_[side].update_batch(key_scratch_, -1);
  pending.clear();
}

void SketchSummaryEngine::apply_sketch(net::NodeId peer, stream::StreamSide side,
                                       sketch::AgmsSketch sketch) {
  auto& state = peers_[peer];
  state.remote[static_cast<std::size_t>(side)].update(std::move(sketch));
  state.est_dirty = {true, true};
}

std::vector<OutboundSummary> SketchSummaryEngine::maintenance(double /*now*/) {
  // Local windows drift every tuple; refresh the cached pairwise estimates
  // once per epoch even without new remote snapshots.
  if (local_tuples_ % config_.summary_epoch_tuples == 0) {
    for (auto& peer : peers_) peer.est_dirty = {true, true};
  }
  if (local_tuples_ - last_broadcast_tuple_ < config_.summary_epoch_tuples) {
    return {};
  }
  last_broadcast_tuple_ = local_tuples_;
  common::BufferWriter writer;
  for (std::size_t side = 0; side < 2; ++side) {
    flush_pending(side);
    summary_codec::encode_sketch(writer, static_cast<stream::StreamSide>(side),
                                 local_[side]);
  }
  SummaryBlock block{std::move(writer).take()};
  std::vector<OutboundSummary> out;
  for (net::NodeId j = 0; j < config_.nodes; ++j) {
    if (j != self_) out.push_back(OutboundSummary{j, block, SummaryFamily::kSketch});
  }
  return out;
}

double SketchSummaryEngine::refreshed_estimate(net::NodeId peer,
                                               std::size_t tuple_side) {
  auto& state = peers_[peer];
  if (state.est_dirty[tuple_side]) {
    flush_pending(tuple_side);
    const std::size_t opposite = 1 - tuple_side;
    const auto* remote = state.remote[opposite].sketch();
    state.est[tuple_side] =
        remote == nullptr
            ? 0.0
            : std::max(sketch::AgmsSketch::estimate_join(local_[tuple_side], *remote),
                       0.0);
    state.est_dirty[tuple_side] = false;
  }
  return state.est[tuple_side];
}

SketchPolicy::SketchPolicy(const SystemConfig& config, net::NodeId self,
                           SummarySubstrate& substrate)
    : RoutingPolicy(substrate), config_(config), self_(self),
      throttle_(config.throttle), engine_(&substrate.sketch()),
      rng_(config.seed ^ (0x5ce7'beefULL + self)) {}

std::vector<net::NodeId> SketchPolicy::route(const stream::Tuple& tuple) {
  const std::uint32_t n = config_.nodes;
  const double budget = throttle_to_budget(throttle_, n);
  const auto side = static_cast<std::size_t>(tuple.side);
  const std::size_t opposite = 1 - side;

  std::vector<net::NodeId> peer_ids;
  std::vector<double> scores;
  peer_ids.reserve(n - 1);
  for (net::NodeId j = 0; j < n; ++j) {
    if (j == self_) continue;
    peer_ids.push_back(j);
    if (!engine_->remote_seeded(j, opposite)) {
      scores.push_back(1.0);  // bootstrap exploration
    } else {
      scores.push_back(engine_->refreshed_estimate(j, side));
    }
  }

  // Join-size estimates are key-independent, so the full budget is always
  // spent — the structural reason SKCH trails the membership-testing
  // policies in messages per result tuple (Figure 9's ordering). When every
  // estimate is zero (noisy sketches on weakly-joining streams) the budget
  // is spread uniformly: SKCH has no notion of "send nothing".
  double score_sum = 0.0;
  for (double v : scores) score_sum += v;
  if (score_sum <= 0.0) {
    std::fill(scores.begin(), scores.end(), 1.0);
  }
  const double floor = 0.05 * budget / static_cast<double>(n - 1);
  const auto probs = allocate_flow_probabilities(scores, budget, floor);

  std::vector<net::NodeId> out;
  last_probs_.assign(n, 0.0);
  for (std::size_t idx = 0; idx < peer_ids.size(); ++idx) {
    last_probs_[peer_ids[idx]] = probs[idx];
    if (rng_.next_bool(probs[idx])) out.push_back(peer_ids[idx]);
  }
  return out;
}

}  // namespace dsjoin::core
