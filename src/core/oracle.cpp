#include "dsjoin/core/oracle.hpp"

namespace dsjoin::core {

ExactJoinOracle::ExactJoinOracle(double half_width) : half_width_(half_width) {}

void ExactJoinOracle::observe(const stream::Tuple& tuple) {
  const auto opposite = static_cast<std::size_t>(stream::opposite(tuple.side));
  const auto side = static_cast<std::size_t>(tuple.side);
  // Arrivals come in timestamp order: every counted partner is earlier, so
  // each unordered pair is counted exactly once (when its later member
  // arrives).
  pairs_ += store_[opposite].count_matches(tuple.key, tuple.timestamp, half_width_);
  store_[side].insert(tuple);
  if (++observed_ % 512 == 0) {
    store_[0].evict_before(tuple.timestamp - half_width_ - 1.0);
    store_[1].evict_before(tuple.timestamp - half_width_ - 1.0);
  }
}

}  // namespace dsjoin::core
