#include "dsjoin/sampling/estimator.hpp"

#include <algorithm>
#include <cmath>

namespace dsjoin::sampling {

namespace {

bool key_less(const KeyMass& mass, std::int64_t key) noexcept {
  return mass.key < key;
}

}  // namespace

Estimate estimate_key_count(const SampleSummary& summary, std::int64_t key,
                            std::int64_t tolerance) noexcept {
  if (tolerance < 0) tolerance = 0;
  const auto first = std::lower_bound(summary.keys.begin(), summary.keys.end(),
                                      key - tolerance, key_less);
  Estimate out;
  for (auto it = first; it != summary.keys.end() && it->key <= key + tolerance;
       ++it) {
    out.mean += it->weight;
    out.variance += it->variance;
  }
  return out;
}

Estimate estimate_join_size(const SampleSummary& r,
                            const SampleSummary& s) noexcept {
  Estimate out;
  auto ri = r.keys.begin();
  auto si = s.keys.begin();
  while (ri != r.keys.end() && si != s.keys.end()) {
    if (ri->key < si->key) {
      ++ri;
    } else if (si->key < ri->key) {
      ++si;
    } else {
      // Independent samples: Var(XY) = m_x^2 v_y + m_y^2 v_x + v_x v_y.
      out.mean += ri->weight * si->weight;
      out.variance += ri->weight * ri->weight * si->variance +
                      si->weight * si->weight * ri->variance +
                      ri->variance * si->variance;
      ++ri;
      ++si;
    }
  }
  return out;
}

double upper_confidence(const Estimate& estimate, double z) noexcept {
  const double variance = std::max(estimate.variance, 0.0);
  return estimate.mean + z * std::sqrt(variance);
}

}  // namespace dsjoin::sampling
