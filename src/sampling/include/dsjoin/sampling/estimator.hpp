// Horvitz–Thompson estimation over stratified reservoir samples (the SMPL
// policy's math; StreamApprox-style bounded-error joins from samples).
//
// Every sampled item carries the inclusion probability p_i it was admitted
// (and possibly later thinned) with. The HT estimator of the live-window
// count of a key set S is sum_{i in sample, key_i in S} 1/p_i — unbiased
// for any admission schedule as long as p_i is recorded honestly. Under
// independent (Poisson-type) sampling its variance is
// sum_{i in S} (1 - p_i)/p_i^2, which the summary aggregates per key so a
// receiver can derive confidence bounds without the raw sample.
//
// Join sizes multiply two independent samples' counts: for X ~ (m_x, v_x)
// and Y ~ (m_y, v_y) independent, Var(XY) = m_x^2 v_y + m_y^2 v_x + v_x v_y
// (exact for independent X, Y). A one-sided normal bound mean + z*sd is the
// bound the SMPL policy reports (DESIGN.md section 14).
#pragma once

#include <cstdint>
#include <vector>

namespace dsjoin::sampling {

/// Aggregated HT mass for one join key: `weight` estimates the key's
/// live-window count, `variance` its HT estimation variance.
struct KeyMass {
  std::int64_t key = 0;
  double weight = 0.0;    ///< sum of 1/p_i over sampled items with this key
  double variance = 0.0;  ///< sum of (1 - p_i)/p_i^2 over the same items
};

/// One stream side's sample, aggregated for the wire: what a peer needs to
/// estimate join sizes against this node's window (plus the sampling
/// geometry for diagnostics and decode validation).
struct SampleSummary {
  std::uint32_t strata = 0;
  std::uint32_t capacity = 0;    ///< target live sample size (all strata)
  std::uint64_t population = 0;  ///< live-window arrivals sampled from
  std::vector<KeyMass> keys;     ///< strictly ascending by key
};

/// An estimate with its variance (both in squared-count units).
struct Estimate {
  double mean = 0.0;
  double variance = 0.0;
};

/// z for a one-sided 95% normal bound.
inline constexpr double kZ95 = 1.6448536269514722;

/// HT estimate of the number of live-window values in
/// [key - tolerance, key + tolerance] (the membership-tolerance band the
/// DFTT/BLOOM policies also use). Binary-searches the sorted key list.
Estimate estimate_key_count(const SampleSummary& summary, std::int64_t key,
                            std::int64_t tolerance) noexcept;

/// HT estimate of the equi-join size between two independently sampled
/// windows: sum over shared keys of the per-key count product, with the
/// independent-product variance.
Estimate estimate_join_size(const SampleSummary& r,
                            const SampleSummary& s) noexcept;

/// One-sided upper confidence bound mean + z * sqrt(variance), floored at
/// the mean (variance is clamped to >= 0 against decode-time noise).
double upper_confidence(const Estimate& estimate, double z = kZ95) noexcept;

}  // namespace dsjoin::sampling
