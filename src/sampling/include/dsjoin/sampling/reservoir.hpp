// Stratified sliding-window reservoir (the SMPL policy's local state).
//
// Arrivals are partitioned into key strata (hash(key) mod strata) so a hot
// key cannot evict the whole tail of the distribution from the sample —
// the StreamApprox argument for stratification under skew. Each stratum
// admits arrivals with probability p = min(1, capacity / live-population),
// records p with the admitted item, and evicts items whose timestamp has
// left the sliding window. The live population per stratum is tracked with
// a coarse ring of time buckets (kPopulationBuckets per window), so memory
// stays O(sample + buckets) rather than O(window).
//
// When a stratum's sample overshoots (the live population shrank after a
// burst), it is Bernoulli-thinned: every item survives with q = cap/size
// and a survivor's recorded inclusion probability becomes p_i * q — the
// composition of two independent Bernoulli trials, so the Horvitz–Thompson
// weights in estimator.hpp stay unbiased.
//
// All randomness comes from one seeded Xoshiro256 driven only by the
// observe() sequence, so two nodes fed the same arrivals produce identical
// samples on every backend (the cross-backend parity requirement).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/sampling/estimator.hpp"

namespace dsjoin::sampling {

struct ReservoirOptions {
  std::uint32_t capacity = 256;  ///< target live sample size across strata
  std::uint32_t strata = 8;
  double window_s = 60.0;        ///< sliding-window length being sampled
};

class StratifiedReservoir {
 public:
  StratifiedReservoir(const ReservoirOptions& options, std::uint64_t seed);

  /// Feeds one arrival. `now` is the arrival's (virtual) timestamp and
  /// must be non-decreasing across calls; eviction of expired sample items
  /// and population buckets happens here.
  void observe(std::int64_t key, double now);

  /// Currently retained sample items (all strata).
  std::size_t sample_size() const noexcept;

  /// Estimated arrivals still inside the window (bucket-quantized).
  std::uint64_t live_population() const noexcept;

  const ReservoirOptions& options() const noexcept { return options_; }

  /// Aggregates the current sample into per-key HT masses (sorted by key),
  /// ready for the wire.
  SampleSummary summary() const;

 private:
  struct Item {
    std::int64_t key;
    double timestamp;
    double inclusion_p;
  };
  struct Bucket {
    double start;
    std::uint64_t count;
  };
  struct Stratum {
    // Timestamp order (observe() is non-decreasing); evicted from the
    // front via `head`, compacted when the dead prefix dominates.
    std::vector<Item> items;
    std::size_t head = 0;
    std::deque<Bucket> buckets;  ///< coarse live-population history
    std::uint64_t live = 0;      ///< sum of bucket counts
  };

  std::size_t stratum_of(std::int64_t key) const noexcept;
  void evict(Stratum& stratum, double min_timestamp);
  void thin(Stratum& stratum);

  ReservoirOptions options_;
  std::uint32_t per_stratum_cap_;
  double bucket_width_s_;
  std::vector<Stratum> strata_;
  common::Xoshiro256 rng_;
};

}  // namespace dsjoin::sampling
