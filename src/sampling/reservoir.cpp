#include "dsjoin/sampling/reservoir.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace dsjoin::sampling {

namespace {

// Buckets per window for the live-population ring. Coarse on purpose: the
// population only scales inclusion probabilities, so quantization error
// shifts p slightly but never biases the HT weights (p is recorded as
// used).
constexpr std::uint32_t kPopulationBuckets = 16;

// Thinning engages when a stratum's sample overshoots its cap by this
// factor (population shrank after the items were admitted).
constexpr std::size_t kThinOvershoot = 2;

}  // namespace

StratifiedReservoir::StratifiedReservoir(const ReservoirOptions& options,
                                         std::uint64_t seed)
    : options_(options), rng_(seed) {
  if (options_.strata == 0) options_.strata = 1;
  if (options_.capacity == 0) options_.capacity = 1;
  if (!(options_.window_s > 0.0)) options_.window_s = 1.0;
  per_stratum_cap_ =
      std::max<std::uint32_t>(1, options_.capacity / options_.strata);
  bucket_width_s_ = options_.window_s / kPopulationBuckets;
  strata_.resize(options_.strata);
}

std::size_t StratifiedReservoir::stratum_of(std::int64_t key) const noexcept {
  std::uint64_t h = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return static_cast<std::size_t>(h % options_.strata);
}

void StratifiedReservoir::evict(Stratum& stratum, double min_timestamp) {
  while (!stratum.buckets.empty() &&
         stratum.buckets.front().start + bucket_width_s_ <= min_timestamp) {
    stratum.live -= stratum.buckets.front().count;
    stratum.buckets.pop_front();
  }
  auto& items = stratum.items;
  while (stratum.head < items.size() &&
         items[stratum.head].timestamp < min_timestamp) {
    ++stratum.head;
  }
  if (stratum.head > 64 && stratum.head * 2 > items.size()) {
    items.erase(items.begin(),
                items.begin() + static_cast<std::ptrdiff_t>(stratum.head));
    stratum.head = 0;
  }
}

void StratifiedReservoir::thin(Stratum& stratum) {
  const std::size_t live_items = stratum.items.size() - stratum.head;
  if (live_items <= kThinOvershoot * per_stratum_cap_) return;
  const double q = static_cast<double>(per_stratum_cap_) /
                   static_cast<double>(live_items);
  std::vector<Item> kept;
  kept.reserve(per_stratum_cap_ + 8);
  for (std::size_t i = stratum.head; i < stratum.items.size(); ++i) {
    if (rng_.next_bool(q)) {
      Item item = stratum.items[i];
      item.inclusion_p *= q;
      kept.push_back(item);
    }
  }
  stratum.items = std::move(kept);
  stratum.head = 0;
}

void StratifiedReservoir::observe(std::int64_t key, double now) {
  Stratum& stratum = strata_[stratum_of(key)];
  evict(stratum, now - options_.window_s);

  // Account the arrival in the population ring (quantized bucket starts so
  // the ring layout is a pure function of the timestamps).
  const double start =
      std::floor(now / bucket_width_s_) * bucket_width_s_;
  if (stratum.buckets.empty() || stratum.buckets.back().start < start) {
    stratum.buckets.push_back(Bucket{start, 0});
  }
  ++stratum.buckets.back().count;
  ++stratum.live;

  const double p = std::min(
      1.0, static_cast<double>(per_stratum_cap_) /
               static_cast<double>(stratum.live));
  if (rng_.next_bool(p)) {
    stratum.items.push_back(Item{key, now, p});
    thin(stratum);
  }
}

std::size_t StratifiedReservoir::sample_size() const noexcept {
  std::size_t total = 0;
  for (const auto& stratum : strata_) {
    total += stratum.items.size() - stratum.head;
  }
  return total;
}

std::uint64_t StratifiedReservoir::live_population() const noexcept {
  std::uint64_t total = 0;
  for (const auto& stratum : strata_) total += stratum.live;
  return total;
}

SampleSummary StratifiedReservoir::summary() const {
  // std::map keeps the aggregation order-independent of stratum layout and
  // yields the ascending key order the wire format requires.
  std::map<std::int64_t, KeyMass> masses;
  for (const auto& stratum : strata_) {
    for (std::size_t i = stratum.head; i < stratum.items.size(); ++i) {
      const Item& item = stratum.items[i];
      KeyMass& mass = masses[item.key];
      mass.key = item.key;
      const double inv = 1.0 / item.inclusion_p;
      mass.weight += inv;
      mass.variance += (1.0 - item.inclusion_p) * inv * inv;
    }
  }
  SampleSummary out;
  out.strata = options_.strata;
  out.capacity = options_.capacity;
  out.population = live_population();
  out.keys.reserve(masses.size());
  for (auto& [key, mass] : masses) out.keys.push_back(mass);
  return out;
}

}  // namespace dsjoin::sampling
