#include "dsjoin/common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dsjoin::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::population_variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets >= 1);
}

void Histogram::add(double x) noexcept {
  ++total_;
  std::size_t idx;
  if (x < lo_) {
    ++underflow_;
    idx = 0;
  } else if (x >= hi_) {
    ++overflow_;
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge at hi
  }
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double inside =
          counts_[i] > 0 ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return bucket_lo(i) + inside * width_;
    }
    cum = next;
  }
  return hi_;
}

double SampleSet::quantile(double q) const {
  assert(!samples_.empty());
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double SampleSet::fraction_below(double threshold) const noexcept {
  if (samples_.empty()) return 0.0;
  std::size_t below = 0;
  for (double x : samples_) {
    if (x < threshold) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(samples_.size());
}

}  // namespace dsjoin::common
