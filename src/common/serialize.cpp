#include "dsjoin/common/serialize.hpp"

namespace dsjoin::common {

void BufferWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  write_u32(static_cast<std::uint32_t>(bytes.size()));
  write_raw(bytes);
}

void BufferWriter::write_string(std::string_view s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  append(s.data(), s.size());
}

Result<std::vector<std::uint8_t>> BufferReader::read_bytes() {
  auto len = read_u32();
  if (!len) return len.status();
  if (remaining() < len.value()) {
    return Status(ErrorCode::kDataLoss, "truncated byte string");
  }
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
  pos_ += len.value();
  return out;
}

Result<std::string> BufferReader::read_string() {
  auto len = read_u32();
  if (!len) return len.status();
  if (remaining() < len.value()) {
    return Status(ErrorCode::kDataLoss, "truncated string");
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len.value());
  pos_ += len.value();
  return out;
}

}  // namespace dsjoin::common
