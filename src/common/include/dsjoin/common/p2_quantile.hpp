// P-square (P2) streaming quantile estimation (Jain & Chlamtac, 1985).
//
// SampleSet retains every observation for exact quantiles; fine at bench
// scale, wasteful inside long-running nodes. P2 tracks one quantile with
// five markers in O(1) memory and O(1) per observation — used by the
// long-run diagnostics and available to downstream users of the library.
#pragma once

#include <array>
#include <cstddef>

namespace dsjoin::common {

/// Streaming estimator of a single quantile q in (0, 1).
class P2Quantile {
 public:
  /// @param q the quantile to track, strictly between 0 and 1.
  explicit P2Quantile(double q);

  /// Incorporates one observation.
  void add(double x) noexcept;

  /// Current estimate. Exact while fewer than five observations have been
  /// seen (falls back to the sorted buffer).
  double value() const noexcept;

  std::size_t count() const noexcept { return count_; }
  double quantile() const noexcept { return q_; }

 private:
  void initialize() noexcept;
  /// Piecewise-parabolic (P2) marker height adjustment.
  static double parabolic(double d, double q_prev, double q_cur, double q_next,
                          double n_prev, double n_cur, double n_next) noexcept;

  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired positions
  std::array<double, 5> increments_{};
};

}  // namespace dsjoin::common
