// Zipfian random variates.
//
// The paper's synthetic skewed workload draws joining attributes from a
// Zipf distribution with parameter alpha = 0.4 over the domain [1, 2^19]
// (Section 6). This sampler supports any exponent >= 0 and large domains;
// it uses rejection-inversion (Hormann & Derflinger, 1996) so sampling is
// O(1) per draw with no O(domain) table.
#pragma once

#include <cstdint>

#include "dsjoin/common/rng.hpp"

namespace dsjoin::common {

/// Samples ranks in [1, n] with P(k) proportional to 1 / k^alpha.
///
/// alpha == 0 degenerates to the uniform distribution over [1, n];
/// alpha == 1 is handled via the logarithmic branch of the integral.
class ZipfDistribution {
 public:
  /// @param n      domain size (number of distinct ranks), n >= 1.
  /// @param alpha  skew exponent, alpha >= 0.
  ZipfDistribution(std::uint64_t n, double alpha);

  /// Draws one rank in [1, n].
  std::uint64_t operator()(Xoshiro256& rng) const;

  /// Probability mass of rank k (exact, normalized).
  double pmf(std::uint64_t k) const;

  std::uint64_t domain() const noexcept { return n_; }
  double alpha() const noexcept { return alpha_; }

 private:
  // H(x) is the antiderivative of the density envelope x^-alpha.
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double alpha_;
  double h_x1_;              // H(1.5) - 1
  double h_n_;               // H(n + 0.5)
  double s_;                 // shift making the envelope tight at k = 1, 2
  double harmonic_;          // generalized harmonic number H_{n,alpha} (for pmf)
};

/// Generalized harmonic number sum_{k=1..n} k^-alpha, computed directly for
/// small n and via the Euler-Maclaurin expansion for large n.
double generalized_harmonic(std::uint64_t n, double alpha);

}  // namespace dsjoin::common
